#!/bin/sh
# End-to-end exercise of the persistent artifact cache through the CLI:
# cold run -> warm run (byte-identical, hit counters advance) -> verify ->
# hand-corrupted entry (recovered, logged, evicted) -> --no-cache -> clear.
set -eu

# absolutize: dune hands us a build-dir-relative path that would not
# survive PATH lookup
CLI=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
CACHE="$TMP/cache"

# cold run populates the cache
"$CLI" surface --kernel 5.4 --cache-dir "$CACHE" > "$TMP/cold.out"
"$CLI" cache stats --cache-dir "$CACHE" > "$TMP/stats1.out"
grep -q "^entries " "$TMP/stats1.out"

# warm run: byte-identical output, lifetime hit counter advances
"$CLI" surface --kernel 5.4 --cache-dir "$CACHE" > "$TMP/warm.out"
cmp "$TMP/cold.out" "$TMP/warm.out"
DEPSURF_CACHE="$CACHE" "$CLI" cache stats > "$TMP/stats2.out"
hits1=$(sed -n 's/^lifetime: hits \([0-9]*\).*/\1/p' "$TMP/stats1.out")
hits2=$(sed -n 's/^lifetime: hits \([0-9]*\).*/\1/p' "$TMP/stats2.out")
[ "$hits2" -gt "$hits1" ]

# the generated images also round-trip through the cache bit-for-bit
"$CLI" gen-images --dir "$TMP/img1" --cache-dir "$CACHE" > /dev/null
"$CLI" gen-images --dir "$TMP/img2" --cache-dir "$CACHE" > /dev/null
for f in "$TMP/img1"/vmlinux-*; do
  cmp "$f" "$TMP/img2/$(basename "$f")"
done

# everything on disk is intact
"$CLI" cache verify --cache-dir "$CACHE" | grep -q "corrupt 0"

# hand-corrupt the surface entry: the run must recover with identical
# output, log the eviction, and drop the damaged file
entry=$(find "$CACHE/surface" -name '*.dsa' | head -n 1)
printf 'garbage' > "$entry"
"$CLI" surface --kernel 5.4 --cache-dir "$CACHE" \
  > "$TMP/recovered.out" 2> "$TMP/recovered.err"
cmp "$TMP/cold.out" "$TMP/recovered.out"
grep -qi "evict" "$TMP/recovered.err"

# --no-cache bypasses the store but computes the same answer
"$CLI" surface --kernel 5.4 --cache-dir "$CACHE" --no-cache > "$TMP/nocache.out"
cmp "$TMP/cold.out" "$TMP/nocache.out"

# clear empties the store
"$CLI" cache clear --cache-dir "$CACHE" | grep -q "^cleared "
"$CLI" cache stats --cache-dir "$CACHE" | grep -q "^entries 0 "

# --- doctor: ingestion health triage on corrupted images ---------------
IMG="$TMP/img1/vmlinux-5.4-x86-generic"

# clean image: exit 0, no diagnostics
"$CLI" doctor "$IMG" > "$TMP/doc_clean.out"
grep -q "clean: no diagnostics" "$TMP/doc_clean.out"
"$CLI" doctor --strict "$IMG" | grep -q ": clean"

# truncated to 3 bytes: nothing extractable, exit 1 with a fatal diagnostic
"$CLI" mutate "$IMG" "$TMP/img_fatal" --trunc 3
if "$CLI" doctor "$TMP/img_fatal" > "$TMP/doc_fatal.out"; then
  echo "doctor accepted a 3-byte image" >&2; exit 1
else
  [ $? -eq 1 ]
fi
grep -q "fatal" "$TMP/doc_fatal.out"

# zeroed mid-file region: partial extraction, exit 2 with degraded diagnostics
size=$(wc -c < "$IMG")
"$CLI" mutate "$IMG" "$TMP/img_degraded" --zero $((size / 3)):512
if "$CLI" doctor "$TMP/img_degraded" > "$TMP/doc_degr.out"; then
  echo "doctor called a corrupted image clean" >&2; exit 1
else
  [ $? -eq 2 ]
fi
grep -q "degraded" "$TMP/doc_degr.out"

# the same degraded image aborts under --strict
if "$CLI" doctor --strict "$TMP/img_degraded" > /dev/null 2>&1; then
  echo "--strict accepted a corrupted image" >&2; exit 1
else
  [ $? -eq 1 ]
fi

# --- flag validation: bad --jobs / --scale fail fast -------------------
# one-line usage error on stderr, exit 1 — before any work happens
check_rejected() {
  if "$CLI" "$@" > /dev/null 2> "$TMP/val.err"; then
    echo "accepted bad flags: $*" >&2; exit 1
  else
    [ $? -eq 1 ]
  fi
  [ "$(wc -l < "$TMP/val.err")" -eq 1 ]
}
check_rejected report --tool biotop --jobs 0
check_rejected report --tool biotop --jobs=-2
check_rejected corpus --jobs 0
check_rejected surface --scale huge

echo "cache CLI e2e: OK"
