#!/bin/sh
# End-to-end exercise of the dependency-graph engine through the CLI and
# the query service: `depsurf graph deps/rdeps/blast` tables and --json,
# determinism across --jobs, cold/warm byte-identity across two processes
# sharing a --cache-dir, and byte-identity between `depsurf graph --json`
# and the corresponding /v1/graph/... endpoint served over a Unix socket.
set -eu

CLI=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")

# hard timeout for every query leg: a wedged server fails fast
if command -v timeout > /dev/null 2>&1; then TO="timeout 60"; else TO=""; fi

TMP=$(mktemp -d)
SRV=""
cleanup() {
  # also runs on failure paths (set -e): kill hard, reap, then sweep
  if [ -n "$SRV" ]; then
    kill "$SRV" 2> /dev/null || true
    i=0
    while [ $i -lt 50 ] && kill -0 "$SRV" 2> /dev/null; do
      sleep 0.1
      i=$((i + 1))
    done
    kill -9 "$SRV" 2> /dev/null || true
    wait "$SRV" 2> /dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT
SOCK="$TMP/ds.sock"
CACHE="$TMP/cache"

# human tables render and carry the canonical node syntax
"$CLI" graph deps vfs_fsync > "$TMP/deps.tbl"
grep -q "func:" "$TMP/deps.tbl"
"$CLI" graph rdeps func:vfs_fsync --transitive > "$TMP/rdeps.tbl"
grep -q "func:" "$TMP/rdeps.tbl"

# malformed node syntax is a usage error, not a crash
if "$CLI" graph deps "bogus:x" > /dev/null 2>&1; then
  echo "bad node syntax accepted" >&2; exit 1
fi

# unknown nodes are a valid empty answer
"$CLI" graph rdeps no_such_fn_zzz --json | grep -q '"found": false'

# determinism: the JSON document is byte-identical whatever the pool size
"$CLI" graph rdeps func:vfs_fsync --transitive --json --jobs 1 > "$TMP/j1.json"
"$CLI" graph rdeps func:vfs_fsync --transitive --json --jobs 4 > "$TMP/j4.json"
cmp "$TMP/j1.json" "$TMP/j4.json"

# cold/warm: a second process loads the persisted graph frame from the
# shared cache dir and must answer byte-for-byte like the build that
# wrote it
"$CLI" graph rdeps func:vfs_fsync --transitive --json --cache-dir "$CACHE" > "$TMP/cold.json"
"$CLI" graph rdeps func:vfs_fsync --transitive --json --cache-dir "$CACHE" > "$TMP/warm.json"
cmp "$TMP/cold.json" "$TMP/warm.json"
cmp "$TMP/cold.json" "$TMP/j1.json"

# blast radius: biotop hooks blk_account_io_start, so it is always inside
# the symbol's blast radius at the release after v5.4
"$CLI" graph blast blk_account_io_start --release 5.8 > "$TMP/blast.tbl"
grep -q "biotop" "$TMP/blast.tbl"
"$CLI" graph blast blk_account_io_start --release 5.8 --json > "$TMP/blast.json"
grep -q '"program": "biotop"' "$TMP/blast.json"
grep -q '"prev": "v5.4"' "$TMP/blast.json"

# the first study release has no predecessor to diff against
if "$CLI" graph blast vfs_fsync --release 4.4 > /dev/null 2>&1; then
  echo "blast accepted the first study release" >&2; exit 1
else
  [ $? -eq 1 ]
fi

# serve leg: the CLI's --json output is byte-identical to the endpoint
"$CLI" serve --socket "$SOCK" --cache-dir "$CACHE" > "$TMP/serve.log" 2>&1 &
SRV=$!
i=0
while [ $i -lt 100 ]; do
  [ -S "$SOCK" ] && break
  sleep 0.1
  i=$((i + 1))
done
[ -S "$SOCK" ]

Q() { $TO "$CLI" query --socket "$SOCK" "$@"; }

Q '/v1/graph/rdeps/func:vfs_fsync?transitive=1' > "$TMP/srv-rdeps.json"
cmp "$TMP/srv-rdeps.json" "$TMP/j1.json"
"$CLI" graph deps vfs_fsync --json > "$TMP/cli-deps.json"
Q /v1/graph/deps/vfs_fsync > "$TMP/srv-deps.json"
cmp "$TMP/cli-deps.json" "$TMP/srv-deps.json"
Q '/v1/graph/blast/blk_account_io_start?release=5.8' > "$TMP/srv-blast.json"
cmp "$TMP/srv-blast.json" "$TMP/blast.json"

# the legacy alias answers byte-for-byte like the /v1 route
Q /graph/deps/vfs_fsync > "$TMP/srv-deps-legacy.json"
cmp "$TMP/srv-deps-legacy.json" "$TMP/srv-deps.json"

# graph endpoints are cacheable: a repeat is a response-cache hit with
# identical bytes
Q -i /v1/graph/deps/vfs_fsync > "$TMP/hit.http"
grep -q '^x-depsurf-cache: hit$' "$TMP/hit.http"
sed -e '1,/^$/d' "$TMP/hit.http" > "$TMP/hit.body"
cmp "$TMP/hit.body" "$TMP/srv-deps.json"

# SIGTERM drains gracefully and exits 0
kill "$SRV"
wait "$SRV"
SRV=""
grep -q "depsurf serve: stopped" "$TMP/serve.log"
echo "graph CLI e2e: OK"
