(* The depsurf command-line tool: generate the study dataset and query it.

     depsurf surface --version 5.4            dependency surface counts
     depsurf func --name vfs_fsync            one function's status history
     depsurf diff --from 4.4 --to 5.4         declaration diff summary
     depsurf report --tool biotop             Figure-4 style mismatch matrix
     depsurf corpus                           measured Table 7 summary

   All commands accept --seed and --scale (test or bench). *)

open Cmdliner
open Depsurf
open Ds_ksrc

let version_conv =
  let parse s =
    match String.split_on_char '.' s with
    | [ a; b ] -> (
        match int_of_string_opt a, int_of_string_opt b with
        | Some major, Some minor ->
            let v = Version.v major minor in
            if List.exists (Version.equal v) Version.all then Ok v
            else Error (`Msg ("not in the study: " ^ s))
        | _ -> Error (`Msg ("bad version: " ^ s)))
    | _ -> Error (`Msg ("bad version: " ^ s))
  in
  let print fmt v = Format.pp_print_string fmt (Version.to_string v) in
  Arg.conv (parse, print)

let arch_conv =
  let parse s =
    match List.find_opt (fun a -> Config.arch_to_string a = s) Config.arches with
    | Some a -> Ok a
    | None -> Error (`Msg ("unknown arch: " ^ s))
  in
  Arg.conv (parse, fun fmt a -> Format.pp_print_string fmt (Config.arch_to_string a))

let flavor_conv =
  let parse s =
    match List.find_opt (fun f -> Config.flavor_to_string f = s) Config.flavors with
    | Some f -> Ok f
    | None -> Error (`Msg ("unknown flavor: " ^ s))
  in
  Arg.conv (parse, fun fmt f -> Format.pp_print_string fmt (Config.flavor_to_string f))

let seed_arg =
  Arg.(value & opt int64 Pipeline.default_seed & info [ "seed" ] ~doc:"History seed.")

(* validated in the term (not an [Arg.conv]) so a bad value is a plain
   usage error: one line on stderr, exit 1 — not cmdliner's 124 *)
let scale_arg =
  let raw =
    Arg.(value & opt string "test"
         & info [ "scale" ] ~doc:"Kernel population scale: test or bench.")
  in
  let validate = function
    | "test" -> Calibration.test_scale
    | "bench" -> Calibration.bench_scale
    | s ->
        Printf.eprintf "depsurf: unknown --scale %s (expected test or bench)\n" s;
        exit 1
  in
  Term.(const validate $ raw)

let version_arg =
  Arg.(value & opt version_conv (Version.v 5 4) & info [ "kernel"; "k" ] ~doc:"Kernel version, e.g. 5.4.")

let arch_arg = Arg.(value & opt arch_conv Config.X86 & info [ "arch" ] ~doc:"Architecture.")
let flavor_arg =
  Arg.(value & opt flavor_conv Config.Generic & info [ "flavor" ] ~doc:"Configuration flavor.")

(* ---- persistent artifact cache (ds_store) -------------------------- *)

module Store = Ds_store.Store
module Trace = Ds_trace.Trace

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ]
        ~env:(Cmd.Env.info "DEPSURF_CACHE")
        ~doc:
          "On-disk artifact cache directory (also read from \\$DEPSURF_CACHE). When unset, \
           nothing is cached across runs.")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the on-disk artifact cache.")

(* the effective cache directory: --no-cache beats --cache-dir/$DEPSURF_CACHE *)
let cache_arg =
  let combine dir no_cache = if no_cache then None else dir in
  Term.(const combine $ cache_dir_arg $ no_cache_arg)

(* open the store (when configured) around a command, persisting the
   hit/miss counters into <dir>/stats.json on the way out *)
let with_store cache f =
  match cache with
  | None -> f None
  | Some dir ->
      let store = Store.open_ ~dir () in
      Fun.protect ~finally:(fun () -> Store.save_counters store) (fun () -> f (Some store))

let mk_ds seed scale store = Dataset.build ~seed ?store scale

let jobs_arg =
  let raw =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ]
             ~doc:"Worker domains for the parallel pipeline (default: \\$DEPSURF_JOBS, or all \
                   cores).")
  in
  let validate = function
    | Some n when n < 1 ->
        Printf.eprintf "depsurf: --jobs must be >= 1 (got %d)\n" n;
        exit 1
    | j -> j
  in
  Term.(const validate $ raw)

(* run [f] with a domain pool sized by --jobs, shut down on exit *)
let with_pool jobs f =
  let jobs = match jobs with Some n -> n | None -> Ds_util.Par.default_jobs () in
  Ds_util.Par.run ~jobs f

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ---- span tracing (--trace-out) ------------------------------------ *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the whole run and write it as Chrome trace_event JSON to \\$(docv) (load it in chrome://tracing or Perfetto, or feed it to depsurf trace).")

(* run [f] under a root span and dump the rings on the way out *)
let with_trace trace_out ~name f =
  match trace_out with
  | None -> f ()
  | Some path ->
      Trace.enable ();
      let result = Trace.span ~name f in
      let sps = Trace.spans () in
      write_file path (Ds_util.Json.to_string (Trace.chrome_json sps) ^ "\n");
      Printf.eprintf "depsurf: wrote %d spans to %s (%d dropped)\n" (List.length sps) path
        (Trace.drops ());
      result

(* ---- surface ------------------------------------------------------- *)

let surface_cmd =
  let run seed scale cache v arch flavor =
    with_store cache @@ fun store ->
    let ds = mk_ds seed scale store in
    let s = Dataset.surface ds v Config.{ arch; flavor } in
    let f, st, tp, sc = Surface.counts s in
    Printf.printf "%s (gcc %d.%d)\n" (Surface.tag s) (fst s.Surface.s_gcc) (snd s.Surface.s_gcc);
    Printf.printf "  functions:   %d\n  structs:     %d\n  tracepoints: %d\n  syscalls:    %d\n"
      f st tp sc;
    let ic = Func_status.inline_census s in
    Printf.printf "  fully inlined: %.1f%%  selectively inlined: %.1f%%\n"
      (Ds_util.Stats.percent ic.Func_status.ic_full ic.Func_status.ic_total)
      (Ds_util.Stats.percent ic.Func_status.ic_selective ic.Func_status.ic_total);
    let tc = Func_status.transform_census s in
    Printf.printf "  transformed: %.1f%%\n"
      (Ds_util.Stats.percent tc.Func_status.tc_any tc.Func_status.tc_total)
  in
  Cmd.v (Cmd.info "surface" ~doc:"Show a kernel image's dependency surface.")
    Term.(const run $ seed_arg $ scale_arg $ cache_arg $ version_arg $ arch_arg $ flavor_arg)

(* ---- func ---------------------------------------------------------- *)

let func_cmd =
  let name_arg =
    Arg.(required & opt (some string) None & info [ "name"; "n" ] ~doc:"Function name.")
  in
  let run seed scale cache name =
    with_store cache @@ fun store ->
    let ds = mk_ds seed scale store in
    List.iter
      (fun v ->
        let s = Dataset.surface ds v Config.x86_generic in
        match Surface.find_func s name with
        | None -> Printf.printf "%-8s absent\n" (Version.to_string v)
        | Some fe ->
            let status =
              match Func_status.inline_status fe with
              | Func_status.Fully_inlined -> "fully inlined"
              | Func_status.Selectively_inlined -> "selectively inlined"
              | Func_status.Not_inlined ->
                  if fe.Surface.fe_symbols <> [] then "attachable" else "no symbol"
            in
            let proto = Surface.representative_proto fe in
            Printf.printf "%-8s %-20s %s\n" (Version.to_string v) status
              (Ds_ctypes.Ctype.proto_to_string ~name proto))
      Version.all
  in
  Cmd.v (Cmd.info "func" ~doc:"Trace one kernel function across all versions.")
    Term.(const run $ seed_arg $ scale_arg $ cache_arg $ name_arg)

(* ---- diff ---------------------------------------------------------- *)

let diff_cmd =
  let from_arg =
    Arg.(value & opt version_conv (Version.v 4 4) & info [ "from" ] ~doc:"Old version.")
  in
  let to_arg =
    Arg.(value & opt version_conv (Version.v 5 4) & info [ "to" ] ~doc:"New version.")
  in
  let run seed scale cache vfrom vto =
    with_store cache @@ fun store ->
    let ds = mk_ds seed scale store in
    let a = Dataset.surface ds vfrom Config.x86_generic in
    let b = Dataset.surface ds vto Config.x86_generic in
    let d = Diff.compare_surfaces Diff.Across_versions a b in
    let pr : 'c. string -> 'c Diff.item_diff -> int -> unit =
     fun name id total ->
      Printf.printf "%-12s %5d -> added %d (%.0f%%), removed %d (%.0f%%), changed %d (%.0f%%)\n"
        name total (List.length id.Diff.d_added)
        (Ds_util.Stats.percent (List.length id.Diff.d_added) total)
        (List.length id.Diff.d_removed)
        (Ds_util.Stats.percent (List.length id.Diff.d_removed) total)
        (List.length id.Diff.d_changed)
        (Ds_util.Stats.percent (List.length id.Diff.d_changed) total)
    in
    let f, st, tp, _ = Surface.counts a in
    Printf.printf "%s -> %s\n" (Surface.tag a) (Surface.tag b);
    pr "functions" d.Diff.df_funcs f;
    pr "structs" d.Diff.df_structs st;
    pr "tracepoints" d.Diff.df_tracepoints tp;
    print_endline "\nsample function changes:";
    List.iteri
      (fun i (name, cs) ->
        if i < 8 then
          Printf.printf "  %-32s %s\n" name
            (String.concat "; " (List.map Diff.describe_func_change cs)))
      d.Diff.df_funcs.Diff.d_changed
  in
  Cmd.v (Cmd.info "diff" ~doc:"Diff two kernel versions' dependency surfaces.")
    Term.(const run $ seed_arg $ scale_arg $ cache_arg $ from_arg $ to_arg)

(* ---- report -------------------------------------------------------- *)

let report_cmd =
  let tool_arg =
    Arg.(required & opt (some string) None & info [ "tool"; "t" ] ~doc:"Corpus tool name (Table 7).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON (v1 envelope).")
  in
  let run seed scale cache jobs tool json trace_out =
    with_store cache @@ fun store ->
    match Ds_corpus.Table7.find tool with
    | None ->
        Printf.eprintf "unknown tool %s; pick one of: %s\n" tool
          (String.concat ", "
             (List.map (fun (p : Ds_corpus.Table7.profile) -> p.pr_name) Ds_corpus.Table7.programs));
        exit 1
    | Some _ ->
        with_trace trace_out ~name:"depsurf.report" @@ fun () ->
        let ds = Trace.span ~name:"report.dataset" (fun () -> mk_ds seed scale store) in
        with_pool jobs @@ fun pool ->
        Trace.span ~name:"report.warm" (fun () ->
            Dataset.warm_list ~pool ds
              ((Version.v 5 4, Config.x86_generic) :: Dataset.fig4_images));
        let built =
          Trace.span ~name:"report.corpus" (fun () -> Ds_corpus.Corpus.build_all ds ())
        in
        let _, obj =
          List.find (fun ((p : Ds_corpus.Table7.profile), _) -> p.pr_name = tool) built
        in
        let m = Trace.span ~name:"report.analyze" (fun () -> Pipeline.analyze ds obj) in
        Trace.span ~name:"report.render" (fun () ->
            if json then print_endline (Ds_util.Json.to_string (Api.envelope (Export.matrix m)))
            else print_string (Report.render_matrix m))
  in
  Cmd.v (Cmd.info "report" ~doc:"Figure-4 style mismatch matrix for a corpus tool.")
    Term.(
      const run $ seed_arg $ scale_arg $ cache_arg $ jobs_arg $ tool_arg $ json_arg
      $ trace_out_arg)

(* ---- dump ---------------------------------------------------------- *)

let dump_cmd =
  let tool_arg =
    Arg.(required & opt (some string) None & info [ "tool"; "t" ] ~doc:"Corpus tool name.")
  in
  let run seed scale cache tool =
    with_store cache @@ fun store ->
    let ds = mk_ds seed scale store in
    match Ds_corpus.Table7.find tool with
    | None ->
        Printf.eprintf "unknown tool %s\n" tool;
        exit 1
    | Some _ ->
        let built = Ds_corpus.Corpus.build_all ds () in
        let _, obj =
          List.find (fun ((p : Ds_corpus.Table7.profile), _) -> p.pr_name = tool) built
        in
        print_string (Ds_bpf.Disasm.obj obj)
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Disassemble a corpus tool's object (bpftool prog dump style).")
    Term.(const run $ seed_arg $ scale_arg $ cache_arg $ tool_arg)

(* ---- export -------------------------------------------------------- *)

let export_cmd =
  let name_arg =
    Arg.(value & opt (some string) None
         & info [ "func" ] ~doc:"Export one function's status instead of the whole surface.")
  in
  let run seed scale cache v arch flavor name =
    with_store cache @@ fun store ->
    let ds = mk_ds seed scale store in
    let s = Dataset.surface ds v Config.{ arch; flavor } in
    match name with
    | Some fn -> (
        match Surface.find_func s fn with
        | Some fe -> print_endline (Ds_util.Json.to_string (Export.func_status fe))
        | None ->
            Printf.eprintf "no function %s on %s\n" fn (Surface.tag s);
            exit 1)
    | None -> print_endline (Ds_util.Json.to_string (Export.surface s))
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export surface data as JSON in the DepSurf-dataset format (artifact appendix).")
    Term.(
      const run $ seed_arg $ scale_arg $ cache_arg $ version_arg $ arch_arg $ flavor_arg
      $ name_arg)

(* ---- vmlinux-h ------------------------------------------------------ *)

let vmlinux_h_cmd =
  let run seed scale cache v arch flavor =
    with_store cache @@ fun store ->
    let ds = mk_ds seed scale store in
    let k = Dataset.vmlinux ds v Config.{ arch; flavor } in
    print_string (Ds_btf.Btf_dump.vmlinux_h k.Ds_bpf.Vmlinux.v_btf)
  in
  Cmd.v
    (Cmd.info "vmlinux-h"
       ~doc:"Render the image's BTF as a vmlinux.h header (bpftool btf dump format c).")
    Term.(const run $ seed_arg $ scale_arg $ cache_arg $ version_arg $ arch_arg $ flavor_arg)

(* ---- probe --------------------------------------------------------- *)

let probe_cmd =
  let name_arg =
    Arg.(required & opt (some string) None
         & info [ "name"; "n" ] ~doc:"Stable probe name (e.g. block:io_start).")
  in
  let run seed scale cache name =
    with_store cache @@ fun store ->
    let ds = mk_ds seed scale store in
    match Compat.find_probe name with
    | None ->
        Printf.eprintf "unknown probe %s; registry has: %s\n" name
          (String.concat ", " (List.map (fun p -> p.Compat.pb_name) Compat.default_registry));
        exit 1
    | Some probe ->
        Printf.printf "%s -- %s\n" probe.Compat.pb_name probe.Compat.pb_doc;
        List.iter
          (fun (label, res) ->
            match res.Compat.rs_hook with
            | Some hook -> Printf.printf "  %-24s -> %s\n" label (Ds_bpf.Hook.to_string hook)
            | None -> Printf.printf "  %-24s -> UNRESOLVED\n" label)
          (Compat.coverage probe ds
             (List.map (fun v -> (v, Config.x86_generic)) Version.all))
  in
  Cmd.v
    (Cmd.info "probe"
       ~doc:"Resolve a stable probe (compatibility layer, paper §6) across kernel versions.")
    Term.(const run $ seed_arg $ scale_arg $ cache_arg $ name_arg)

(* ---- file-based workflows ------------------------------------------ *)

let export_dataset_cmd =
  let dir_arg =
    Arg.(value & opt string "dataset" & info [ "dir" ] ~doc:"Output directory.")
  in
  let run seed scale cache jobs dir =
    with_store cache @@ fun store ->
    let ds = mk_ds seed scale store in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    with_pool jobs (fun pool -> Dataset.warm_par ~pool ds);
    List.iter
      (fun (v, cfg) ->
        let s = Dataset.surface ds v cfg in
        let name =
          Printf.sprintf "%s/%d.%d-%s-%s.json" dir v.Version.major v.Version.minor
            (Config.arch_to_string cfg.Config.arch)
            (Config.flavor_to_string cfg.Config.flavor)
        in
        write_file name (Ds_util.Json.to_string (Export.surface s));
        Printf.printf "wrote %s\n" name)
      Dataset.study_images
  in
  Cmd.v
    (Cmd.info "export-dataset"
       ~doc:"Write every study surface as JSON (the public DepSurf-dataset layout).")
    Term.(const run $ seed_arg $ scale_arg $ cache_arg $ jobs_arg $ dir_arg)

let gen_images_cmd =
  let dir_arg =
    Arg.(value & opt string "images" & info [ "dir" ] ~doc:"Output directory for vmlinux files.")
  in
  let run seed scale cache jobs dir =
    with_store cache @@ fun store ->
    let ds = mk_ds seed scale store in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    with_pool jobs (fun pool ->
        ignore
          (Ds_util.Par.map_list_chunked pool
             (fun (v, cfg) -> ignore (Dataset.image ds v cfg))
             Dataset.study_images));
    List.iter
      (fun (v, cfg) ->
        let name =
          Printf.sprintf "%s/vmlinux-%d.%d-%s-%s" dir v.Version.major v.Version.minor
            (Config.arch_to_string cfg.Config.arch)
            (Config.flavor_to_string cfg.Config.flavor)
        in
        write_file name (Ds_elf.Elf.write (Dataset.image ds v cfg));
        Printf.printf "wrote %s\n" name)
      Dataset.study_images
  in
  Cmd.v
    (Cmd.info "gen-images" ~doc:"Write the 25 study vmlinux images to disk.")
    Term.(const run $ seed_arg $ scale_arg $ cache_arg $ jobs_arg $ dir_arg)

let mkobj_cmd =
  let tool_arg =
    Arg.(required & opt (some string) None & info [ "tool"; "t" ] ~doc:"Corpus tool name.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc:"Output path (default TOOL.bpf.o).")
  in
  let sabotage_arg =
    Arg.(value & flag
         & info [ "sabotage" ]
             ~doc:"Rewrite the first program's instructions into a known verifier-rejected \
                   sequence (a scalar dereference), for exercising the doctor//v1/verify \
                   rejection paths.")
  in
  let run seed scale cache tool out sabotage =
    with_store cache @@ fun store ->
    let ds = mk_ds seed scale store in
    match Ds_corpus.Table7.find tool with
    | None ->
        Printf.eprintf "unknown tool %s\n" tool;
        exit 1
    | Some _ ->
        let built = Ds_corpus.Corpus.build_all ds () in
        let _, obj =
          List.find (fun ((p : Ds_corpus.Table7.profile), _) -> p.pr_name = tool) built
        in
        let obj =
          if not sabotage then obj
          else
            match obj.Ds_bpf.Obj.o_progs with
            | [] -> obj
            | p :: rest ->
                (* r1 (the ctx pointer) overwritten with a scalar, then
                   dereferenced: rejected as unsafe-load-scalar *)
                let bad =
                  Ds_bpf.Insn.
                    [
                      Mov_imm { dst = 1; imm = 7 };
                      Ldx { dst = 2; src = 1; off = 0; size = DW };
                      Mov_imm { dst = 0; imm = 0 };
                      Exit;
                    ]
                in
                {
                  obj with
                  Ds_bpf.Obj.o_progs =
                    { p with Ds_bpf.Obj.p_insns = bad; p_relocs = [] } :: rest;
                }
        in
        let path = Option.value ~default:(tool ^ ".bpf.o") out in
        write_file path (Ds_bpf.Obj.write obj);
        Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "mkobj" ~doc:"Write a corpus tool's eBPF object file to disk.")
    Term.(const run $ seed_arg $ scale_arg $ cache_arg $ tool_arg $ out_arg $ sabotage_arg)

let analyze_cmd =
  let obj_arg =
    Arg.(required & opt (some string) None & info [ "obj" ] ~doc:"Path to an eBPF object file.")
  in
  let image_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "images" ] ~doc:"Directory of vmlinux files (from gen-images); default: the \
                                   in-memory study dataset.")
  in
  let dataset_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "dataset" ]
             ~doc:"Directory of surface JSON files (from export-dataset): analyze without any \
                   kernel images.")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Fail on the first malformed byte of an on-disk image instead of degrading.")
  in
  let run seed scale cache jobs obj_path image_dir dataset_dir strict trace_out =
    with_store cache @@ fun store ->
    with_trace trace_out ~name:"depsurf.analyze" @@ fun () ->
    let obj =
      try Ds_util.Diag.ok (Ds_bpf.Obj.read (read_file obj_path))
      with Ds_bpf.Obj.Bad_obj m | Sys_error m ->
        Printf.eprintf "cannot read %s: %s\n" obj_path m;
        exit 1
    in
    let analyze_surfaces surfaces =
      match surfaces with
      | [] ->
          prerr_endline "no surfaces found";
          exit 1
      | baseline :: _ ->
          let deps = Depset.of_obj obj in
          List.iter
            (fun target ->
              let cells =
                List.map
                  (fun dep ->
                    Report.status_letter (Report.worst (Report.statuses ~baseline ~target dep)))
                  deps
              in
              let tag =
                if Surface.degraded target then "~ " ^ Surface.tag target else Surface.tag target
              in
              Printf.printf "%-24s %s\n" tag (String.concat " " cells))
            surfaces;
          Printf.printf "deps: %s\n" (String.concat ", " (List.map Depset.dep_to_string deps));
          if List.exists Surface.degraded surfaces then exit 2
    in
    match image_dir, dataset_dir with
    | None, Some dir ->
        let entries = Sys.readdir dir in
        Array.sort compare entries;
        Array.to_list entries
        |> List.filter (fun f -> Filename.check_suffix f ".json")
        |> List.map (fun f -> Import.surface_of_string (read_file (Filename.concat dir f)))
        |> analyze_surfaces
    | None, None ->
        let ds = mk_ds seed scale store in
        with_pool jobs (fun pool ->
            Dataset.warm_list ~pool ds
              ((Version.v 5 4, Config.x86_generic) :: Dataset.fig4_images));
        print_string (Report.render_matrix (Pipeline.analyze ds obj))
    | Some dir, _ ->
        (* file-based: extract each surface from the on-disk image bytes *)
        let entries = Sys.readdir dir in
        Array.sort compare entries;
        let surfaces =
          Array.to_list entries
          |> List.filter (fun f -> String.length f > 8 && String.sub f 0 8 = "vmlinux-")
          |> List.map (fun f ->
                 let bytes = read_file (Filename.concat dir f) in
                 if strict then
                   try Ds_util.Diag.ok (Surface.extract bytes) with
                   | Ds_elf.Elf.Bad_elf m
                   | Ds_btf.Btf.Bad_btf m
                   | Ds_dwarf.Die.Bad_dwarf m
                   | Ds_bpf.Vmlinux.Bad_vmlinux m ->
                       Printf.eprintf "%s: %s\n" f m;
                       exit 1
                 else Ds_util.Diag.ok (Surface.extract ~mode:`Lenient bytes))
        in
        analyze_surfaces surfaces
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Analyze an on-disk eBPF object against kernel images.")
    Term.(
      const run $ seed_arg $ scale_arg $ cache_arg $ jobs_arg $ obj_arg $ image_dir_arg
      $ dataset_dir_arg $ strict_arg $ trace_out_arg)

(* ---- doctor -------------------------------------------------------- *)

(* an ELF relocatable with e_machine = EM_BPF (247): a BPF object, not a
   vmlinux image — doctor routes it to the verifier-diagnostics path *)
let is_bpf_object data =
  String.length data >= 20
  && String.sub data 0 4 = "\x7fELF"
  && Char.code data.[18] lor (Char.code data.[19] lsl 8) = 247

let doctor_cmd =
  let image_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"Path to a vmlinux image or a BPF object (or any candidate file).")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Strict mode: report only the first malformed byte, as the parsers did \
                   historically.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"BPF objects only: print the structured rejection report as the public \
                   envelope, byte-identical to POST /v1/verify.")
  in
  let run seed scale cache strict json kernel arch flavor path =
    let module Diag = Ds_util.Diag in
    let data =
      try read_file path
      with Sys_error m ->
        prerr_endline m;
        exit 1
    in
    if is_bpf_object data then begin
      (* per-program verifier-rejection sections, name-checked against
         the study kernel picked by --kernel/--arch/--flavor *)
      with_store cache @@ fun store ->
      let ds = mk_ds seed scale store in
      let rep = Ds_verify.Verify.of_dataset ds kernel Config.{ arch; flavor } data in
      if json then print_string (Ds_util.Json.to_string (Ds_verify.Verify.envelope rep) ^ "\n")
      else print_string (Ds_verify.Verify.render rep);
      exit (Diag.exit_code rep.Ds_verify.Verify.rp_diags)
    end
    else if json then begin
      prerr_endline "depsurf: --json applies to BPF objects only";
      exit 1
    end
    else if strict then begin
      match Ds_util.Diag.ok (Surface.extract data) with
      | s ->
          Printf.printf "%s: clean\n" (Surface.tag s);
          exit 0
      | exception Ds_elf.Elf.Bad_elf m ->
          Printf.printf "fatal elf: %s\n" m;
          exit 1
      | exception Ds_btf.Btf.Bad_btf m ->
          Printf.printf "fatal btf: %s\n" m;
          exit 1
      | exception Ds_dwarf.Die.Bad_dwarf m ->
          Printf.printf "fatal dwarf: %s\n" m;
          exit 1
      | exception Ds_bpf.Vmlinux.Bad_vmlinux m ->
          Printf.printf "fatal vmlinux: %s\n" m;
          exit 1
    end
    else begin
      let s = Ds_util.Diag.ok (Surface.extract ~mode:`Lenient data) in
      let health = Surface.health s in
      let tag =
        if Diag.worst health = Some Diag.Fatal then "unidentified image" else Surface.tag s
      in
      let f, st, tp, sc = Surface.counts s in
      Printf.printf "%s: functions %d, structs %d, tracepoints %d, syscalls %d\n" tag f st tp sc;
      (match health with
      | [] -> print_endline "clean: no diagnostics"
      | diags -> List.iter (fun d -> print_endline ("  " ^ Diag.to_string d)) diags);
      exit (Diag.exit_code health)
    end
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:"Diagnose a file's ingestion health: a vmlinux image's surface extraction, or a \
             BPF object's per-program verifier rejections (structured taxonomy reports; \
             --json prints the /v1/verify envelope). Exit 0 when clean, 1 when nothing \
             usable could be extracted, 2 when degraded (including rejected programs).")
    Term.(
      const run $ seed_arg $ scale_arg $ cache_arg $ strict_arg $ json_arg $ version_arg
      $ arch_arg $ flavor_arg $ image_arg)

(* ---- mutate -------------------------------------------------------- *)

let mutate_cmd =
  let in_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"IN" ~doc:"Input file.")
  in
  let out_arg =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"OUT" ~doc:"Output file (required unless --survey).")
  in
  let survey_arg =
    Arg.(value & flag
         & info [ "survey" ]
             ~doc:"Run the full seeded mutation corpus against IN and tally the outcomes \
                   instead of writing one mutant. BPF objects tally verifier rejections by \
                   taxonomy rule id; other inputs tally lenient-extraction health. Exits 1 \
                   on any crash or unclassified rejection.")
  in
  let count_arg =
    Arg.(value & opt int 500 & info [ "count" ] ~doc:"Minimum mutants per survey corpus.")
  in
  let trunc_arg =
    Arg.(value & opt (some int) None & info [ "trunc" ] ~doc:"Keep only the first N bytes.")
  in
  let flip_arg =
    Arg.(value & opt (some int) None & info [ "flip" ] ~doc:"Flip the low bit of byte OFFSET.")
  in
  let zero_arg =
    Arg.(value & opt (some string) None
         & info [ "zero" ] ~docv:"POS:LEN" ~doc:"Zero LEN bytes starting at POS.")
  in
  let survey seed count data =
    if is_bpf_object data then begin
      let module V = Ds_verify.Verify in
      (* whole-object mutants through the lenient loader+verifier, plus
         per-program instruction-stream mutants through the verifier;
         one tally, aggregated by taxonomy rule id *)
      let obj = Ds_util.Diag.ok (Ds_bpf.Obj.read ~mode:`Lenient data) in
      let c =
        List.fold_left
          (fun acc p -> V.merge acc (V.campaign_insns ~count ~seed p))
          (V.campaign_obj ~count ~seed data)
          obj.Ds_bpf.Obj.o_progs
      in
      Printf.printf "mutants %d: accepted %d, rejected %d, crashed %d, unclassified %d\n"
        c.V.cp_total c.V.cp_accepted c.V.cp_rejected
        (List.length c.V.cp_crashed) c.V.cp_unclassified;
      List.iter (fun (id, n) -> Printf.printf "  %-28s %d\n" id n) c.V.cp_rules;
      List.iter
        (fun (name, e) -> Printf.printf "  CRASH %s: %s\n" name e)
        c.V.cp_crashed;
      exit (if c.V.cp_crashed <> [] || c.V.cp_unclassified > 0 then 1 else 0)
    end
    else begin
      let muts = Ds_faultgen.Faultgen.mutations ~count ~seed data in
      let health bytes =
        Surface.health (Ds_util.Diag.ok (Surface.extract ~mode:`Lenient bytes))
      in
      let t, crashed = Ds_faultgen.Faultgen.survey health muts in
      Printf.printf "mutants %d: clean %d, degraded %d, fatal %d, crashed %d\n"
        t.Ds_faultgen.Faultgen.n_total t.Ds_faultgen.Faultgen.n_clean
        t.Ds_faultgen.Faultgen.n_degraded t.Ds_faultgen.Faultgen.n_fatal
        t.Ds_faultgen.Faultgen.n_crashed;
      List.iter (fun (name, e) -> Printf.printf "  CRASH %s: %s\n" name e) crashed;
      exit (if t.Ds_faultgen.Faultgen.n_crashed > 0 then 1 else 0)
    end
  in
  let run seed inp outp trunc flip zero do_survey count =
    let data =
      try read_file inp
      with Sys_error m ->
        prerr_endline m;
        exit 1
    in
    if do_survey then survey seed count data;
    let outp =
      match outp with
      | Some p -> p
      | None ->
          prerr_endline "depsurf: OUT is required unless --survey is given";
          exit 1
    in
    let data =
      match trunc with Some n -> Ds_faultgen.Faultgen.truncate data ~len:n | None -> data
    in
    let data =
      match flip with
      | Some b -> Ds_faultgen.Faultgen.flip_bit data ~byte:b ~bit:0
      | None -> data
    in
    let data =
      match zero with
      | None -> data
      | Some spec -> (
          match String.split_on_char ':' spec with
          | [ p; l ] -> (
              match (int_of_string_opt p, int_of_string_opt l) with
              | Some pos, Some len -> Ds_faultgen.Faultgen.zero_range data ~pos ~len
              | _ ->
                  prerr_endline ("bad --zero spec: " ^ spec);
                  exit 1)
          | _ ->
              prerr_endline ("bad --zero spec: " ^ spec);
              exit 1)
    in
    write_file outp data
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:"Deterministically corrupt a file (for exercising doctor and the lenient \
             parsers), or --survey a whole seeded mutation corpus and tally outcomes — for \
             BPF objects, by verifier-rejection taxonomy rule.")
    Term.(
      const run $ seed_arg $ in_arg $ out_arg $ trunc_arg $ flip_arg $ zero_arg $ survey_arg
      $ count_arg)

(* ---- corpus -------------------------------------------------------- *)

let corpus_cmd =
  let run seed scale cache jobs trace_out =
    with_store cache @@ fun store ->
    with_trace trace_out ~name:"depsurf.corpus" @@ fun () ->
    let ds = mk_ds seed scale store in
    with_pool jobs @@ fun pool ->
    let built = Ds_corpus.Corpus.build_all ds () in
    let results = Ds_corpus.Corpus.analyze_all ds ~pool built in
    let impacted = List.filter (fun (_, s) -> not (Report.clean s)) results in
    List.iter
      (fun ((pr : Ds_corpus.Table7.profile), s) ->
        Printf.printf "%-12s %s\n" pr.pr_name
          (if Report.clean s then "clean"
           else
             Printf.sprintf
               "absent fn:%d st:%d fld:%d tp:%d sc:%d | changed fn:%d fld:%d tp:%d | F:%d S:%d T:%d D:%d"
               s.Report.ms_absent.Depset.n_funcs s.Report.ms_absent.Depset.n_structs
               s.Report.ms_absent.Depset.n_fields s.Report.ms_absent.Depset.n_tracepoints
               s.Report.ms_absent.Depset.n_syscalls s.Report.ms_changed.Depset.n_funcs
               s.Report.ms_changed.Depset.n_fields s.Report.ms_changed.Depset.n_tracepoints
               s.Report.ms_full_inline s.Report.ms_selective_inline s.Report.ms_transformed
               s.Report.ms_duplicated))
      results;
    Printf.printf "\n%d/%d programs impacted (%.0f%%; paper: 83%%)\n" (List.length impacted)
      (List.length results)
      (Ds_util.Stats.percent (List.length impacted) (List.length results))
  in
  Cmd.v (Cmd.info "corpus" ~doc:"Analyze all 53 Table-7 programs.")
    Term.(const run $ seed_arg $ scale_arg $ cache_arg $ jobs_arg $ trace_out_arg)

(* ---- serve / query -------------------------------------------------- *)

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Serve over a Unix domain socket at \\$(docv).")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port"; "p" ] ~doc:"Serve over TCP on this port (0 = kernel-chosen).")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"TCP bind/connect address.")

let addr_of ~socket ~port ~host =
  match socket, port with
  | Some p, _ -> Ds_serve.Serve.Unix_sock p
  | None, Some port -> Ds_serve.Serve.Tcp (host, port)
  | None, None -> Ds_serve.Serve.Unix_sock "depsurf.sock"

let addr_to_string = function
  | Ds_serve.Serve.Unix_sock p -> "unix:" ^ p
  | Ds_serve.Serve.Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let serve_cmd =
  let images_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "images" ]
             ~doc:"Also serve surfaces for every vmlinux-* file in this directory (extracted \
                   leniently, keyed by file name).")
  in
  let no_legacy_arg =
    Arg.(value & flag
         & info [ "no-legacy-routes" ]
             ~doc:"Disable the unprefixed legacy aliases: they answer 404 with a pointer \
                   to the /v1 spelling. Without this flag they still work but carry \
                   Deprecation and Sunset headers.")
  in
  let run seed scale cache jobs socket port host images_dir no_legacy =
    (* one worker owns the accept loop, so serving needs at least 2 *)
    let jobs =
      match jobs with
      | Some n when n < 2 ->
          Printf.eprintf "depsurf: serve needs --jobs >= 2 (got %d)\n" n;
          exit 1
      | Some n -> Some n
      | None -> Some (max 2 (Ds_util.Par.default_jobs ()))
    in
    with_store cache @@ fun store ->
    let ds = mk_ds seed scale store in
    with_pool jobs @@ fun pool ->
    let t = Ds_serve.Serve.create ?images_dir ~legacy:(not no_legacy) ~ds ~pool () in
    let h =
      try Ds_serve.Serve.start t (addr_of ~socket ~port ~host)
      with Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "depsurf: cannot listen on %s: %s (%s)\n"
          (addr_to_string (addr_of ~socket ~port ~host))
          (Unix.error_message e) arg;
        exit 1
    in
    Printf.printf "depsurf serve: listening on %s\n"
      (addr_to_string (Ds_serve.Serve.bound_addr h));
    flush stdout;
    (* serve until SIGTERM/SIGINT, then drain gracefully: in-flight
       requests finish (up to the drain deadline) before the listener
       closes and the process exits 0 *)
    let stopping = Atomic.make false in
    let on_signal _ = Atomic.set stopping true in
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
     with Invalid_argument _ | Sys_error _ -> ());
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
     with Invalid_argument _ | Sys_error _ -> ());
    while not (Atomic.get stopping) do
      try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Printf.printf "depsurf serve: draining (%d in flight)\n"
      (Ds_serve.Admission.inflight (Ds_serve.Serve.admission t));
    flush stdout;
    Ds_serve.Serve.stop h;
    Printf.printf "depsurf serve: stopped\n";
    flush stdout
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the dependency-surface query service (GET /v1/healthz, /v1/images, \
             /v1/surface/IMAGE, /v1/diff/A/B, /v1/metrics, /v1/trace/recent; POST \
             /v1/mismatch, /v1/verify; unprefixed legacy aliases).")
    Term.(
      const run $ seed_arg $ scale_arg $ cache_arg $ jobs_arg $ socket_arg $ port_arg
      $ host_arg $ images_dir_arg $ no_legacy_arg)

let query_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PATH" ~doc:"Request path, e.g. /healthz or /surface/5.4-x86-generic.")
  in
  let data_arg =
    Arg.(value & opt (some string) None
         & info [ "data"; "d" ] ~docv:"FILE"
             ~doc:"Send \\$(docv)'s bytes as the request body (implies POST).")
  in
  let meth_arg =
    Arg.(value & opt (some string) None
         & info [ "method"; "X" ] ~doc:"HTTP method (default: GET, or POST with --data).")
  in
  let header_arg =
    Arg.(value & opt_all string []
         & info [ "header"; "H" ] ~docv:"NAME: VALUE"
             ~doc:"Add a request header (repeatable), e.g. -H 'If-None-Match: \"abc\"'.")
  in
  let include_arg =
    Arg.(value & flag
         & info [ "include"; "i" ]
             ~doc:"Print the response status line and headers before the body.")
  in
  let retries_arg =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry GETs up to \\$(docv) times on connection errors and 503s, with \
                   capped exponential backoff honouring Retry-After. Non-GET requests are \
                   never retried.")
  in
  let run socket port host path data meth hdrs incl retries =
    let addr = addr_of ~socket ~port ~host in
    let body =
      Option.map
        (fun f ->
          try read_file f
          with Sys_error m ->
            prerr_endline m;
            exit 1)
        data
    in
    let meth =
      match meth with Some m -> m | None -> if body = None then "GET" else "POST"
    in
    let headers =
      List.map
        (fun h ->
          match Ds_util.Strutil.cut ~on:':' h with
          | Some (name, value) -> (String.trim name, String.trim value)
          | None ->
              Printf.eprintf "depsurf: bad --header %S (want 'Name: value')\n" h;
              exit 1)
        hdrs
    in
    let do_request () =
      if retries > 0 && meth = "GET" && body = None then
        Ds_serve.Serve.Client.request_retry ~headers ~retries addr ~meth ~path
      else Ds_serve.Serve.Client.request_full ?body ~headers addr ~meth ~path
    in
    match do_request () with
    | status, rheaders, response ->
        if incl then begin
          Printf.printf "HTTP/1.1 %d\n" status;
          List.iter (fun (k, v) -> Printf.printf "%s: %s\n" k v) rheaders;
          print_newline ()
        end;
        print_string response;
        if status >= 400 then exit 1
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "depsurf: cannot reach %s: %s\n" (addr_to_string addr)
          (Unix.error_message e);
        exit 1
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Send one request to a running depsurf serve instance.")
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ path_arg $ data_arg $ meth_arg
      $ header_arg $ include_arg $ retries_arg)


(* ---- watch (release subscriptions over a running serve) ------------- *)

let watch_request ?body ?(meth = "GET") ~socket ~port ~host path =
  let addr = addr_of ~socket ~port ~host in
  match Ds_serve.Serve.Client.request_full ?body addr ~meth ~path with
  | resp -> resp
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "depsurf: cannot reach %s: %s\n" (addr_to_string addr)
        (Unix.error_message e);
      exit 1

let watch_fail body =
  (* surface the server's structured diagnostics, not raw JSON *)
  (match Ds_util.Json.of_string body with
  | exception Ds_util.Json.Parse_error _ -> prerr_endline body
  | j -> (
      (match Ds_util.Json.member "diagnostics" j with
      | Some (Ds_util.Json.List l) ->
          List.iter
            (function Ds_util.Json.String m -> Printf.eprintf "depsurf: %s\n" m | _ -> ())
            l
      | _ -> ());
      match Ds_util.Json.member "data" j with
      | Some (Ds_util.Json.Obj fs) -> (
          match List.assoc_opt "error" fs with
          | Some (Ds_util.Json.String m) -> Printf.eprintf "depsurf: %s\n" m
          | _ -> ())
      | _ -> prerr_endline body));
  exit 1

let watch_dep_arg =
  Arg.(value & opt_all string []
       & info [ "dep" ] ~docv:"KIND:NAME"
           ~doc:"Depend on this construct, e.g. func:vfs_read, struct:task_struct, \
                 tracepoint:sched_switch, syscall:openat, field:file.f_op (repeatable).")

let watch_label_arg =
  Arg.(value & opt (some string) None
       & info [ "label" ] ~doc:"Human-readable subscription label.")

(* the registration body travels as the v1 mutation envelope — the CLI
   is the reference client for the enveloped spelling *)
let register_body deps label =
  let fields =
    ("deps", Ds_util.Json.List (List.map (fun d -> Ds_util.Json.String d) deps))
    :: (match label with Some l -> [ ("label", Ds_util.Json.String l) ] | None -> [])
  in
  Ds_util.Json.to_string
    (Ds_util.Json.Obj
       [ ("v", Ds_util.Json.Int 1); ("body", Ds_util.Json.Obj fields) ])

let register_sub ~socket ~port ~host deps label =
  let body = register_body deps label in
  let status, _, rbody =
    watch_request ~meth:"POST" ~body ~socket ~port ~host "/v1/subscriptions"
  in
  if status <> 200 then watch_fail rbody;
  match
    Option.bind (Ds_util.Json.member "data" (Ds_util.Json.of_string rbody))
      (Ds_util.Json.member "id")
  with
  | Some (Ds_util.Json.String id) -> (id, rbody)
  | _ ->
      prerr_endline rbody;
      exit 1

let watch_register_cmd =
  let run socket port host deps label =
    if deps = [] then begin
      Printf.eprintf "depsurf: watch register needs at least one --dep\n";
      exit 1
    end;
    let _, rbody = register_sub ~socket ~port ~host deps label in
    print_endline rbody
  in
  Cmd.v
    (Cmd.info "register"
       ~doc:"Register a depset subscription (idempotent: the id is a content digest of \
             the canonical depset).")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ watch_dep_arg $ watch_label_arg)

let watch_list_cmd =
  let run socket port host =
    let status, _, rbody = watch_request ~socket ~port ~host "/v1/subscriptions" in
    if status <> 200 then watch_fail rbody;
    print_endline rbody
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List registered subscriptions and the current event cursor.")
    Term.(const run $ socket_arg $ port_arg $ host_arg)

let watch_sub_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SUB-ID")

let watch_unregister_cmd =
  let run socket port host id =
    let status, _, rbody =
      watch_request ~meth:"DELETE" ~socket ~port ~host ("/v1/subscriptions/" ^ id)
    in
    if status <> 200 then watch_fail rbody;
    print_endline rbody
  in
  Cmd.v
    (Cmd.info "unregister" ~doc:"Delete a subscription (and its recorded events).")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ watch_sub_pos)

let watch_ingest_cmd =
  let base_arg =
    Arg.(required & opt (some string) None
         & info [ "base" ] ~docv:"IMAGE"
             ~doc:"Study-matrix base image the release evolves from, e.g. 5.4-x86-generic.")
  in
  let name_arg =
    Arg.(value & opt string "release"
         & info [ "name" ] ~doc:"Label for the ingested release in recorded events.")
  in
  let kind_arg =
    Arg.(value & opt string "image"
         & info [ "kind" ] ~docv:"image|surface"
             ~doc:"Payload kind: a raw vmlinux image (extracted leniently) or \
                   pre-encoded surface codec bytes.")
  in
  let file_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"The release payload.")
  in
  let run socket port host base name kind file =
    let body =
      try read_file file
      with Sys_error m ->
        prerr_endline m;
        exit 1
    in
    let path =
      Printf.sprintf "/v1/watch/ingest?base=%s&name=%s&kind=%s" base name kind
    in
    let status, _, rbody = watch_request ~meth:"POST" ~body ~socket ~port ~host path in
    if status <> 200 then watch_fail rbody;
    print_endline rbody
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:"Ingest an evolved release against a base image: delta-encode it into the \
             store and notify matching subscriptions.")
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ base_arg $ name_arg $ kind_arg
      $ file_pos)

let watch_follow_cmd =
  let sub_pos =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"SUB-ID" ~doc:"Subscription to follow (or use --dep to \
                                        register-and-follow).")
  in
  let since_arg =
    Arg.(value & opt int 0
         & info [ "since" ] ~docv:"CURSOR" ~doc:"Replay events after this cursor first.")
  in
  let wait_arg =
    Arg.(value & opt float 25.
         & info [ "wait" ] ~docv:"SECONDS" ~doc:"Long-poll park time per request.")
  in
  let polls_arg =
    Arg.(value & opt int 0
         & info [ "polls" ] ~docv:"N"
             ~doc:"Stop after \\$(docv) polls (0 = follow forever). A poll that delivers \
                   events and one that times out both count.")
  in
  let run socket port host sub deps label since wait polls =
    let id =
      match (sub, deps) with
      | Some id, [] -> id
      | None, _ :: _ ->
          let id, _ = register_sub ~socket ~port ~host deps label in
          Printf.printf "depsurf watch: following %s\n" id;
          flush stdout;
          id
      | Some _, _ :: _ ->
          Printf.eprintf "depsurf: pass either SUB-ID or --dep, not both\n";
          exit 1
      | None, [] ->
          Printf.eprintf "depsurf: watch follow needs a SUB-ID or --dep flags\n";
          exit 1
    in
    let cursor = ref since in
    let n = ref 0 in
    let stop = ref false in
    while not !stop do
      incr n;
      let path = Printf.sprintf "/v1/watch/%s?since=%d&wait=%g" id !cursor wait in
      let status, _, rbody = watch_request ~socket ~port ~host path in
      (match status with
      | 200 -> (
          print_endline rbody;
          flush stdout;
          match
            Option.bind (Ds_util.Json.member "data" (Ds_util.Json.of_string rbody))
              (Ds_util.Json.member "cursor")
          with
          | Some (Ds_util.Json.Int c) -> cursor := max !cursor c
          | _ -> ())
      | 204 -> () (* park timed out (or the server drained): poll again *)
      | _ -> watch_fail rbody);
      if polls > 0 && !n >= polls then stop := true
    done
  in
  Cmd.v
    (Cmd.info "follow"
       ~doc:"Long-poll a subscription's mismatch events, resuming from a cursor. With \
             --dep, registers the depset first (idempotent) and follows it.")
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ sub_pos $ watch_dep_arg
      $ watch_label_arg $ since_arg $ wait_arg $ polls_arg)

let watch_cmd =
  Cmd.group
    (Cmd.info "watch"
       ~doc:"Standing release monitoring against a running depsurf serve: register \
             depset subscriptions, ingest evolved releases, follow mismatch events.")
    [ watch_register_cmd; watch_list_cmd; watch_unregister_cmd; watch_ingest_cmd;
      watch_follow_cmd ]

(* ---- trace analysis ------------------------------------------------- *)

let trace_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TRACE" ~doc:"Chrome trace_event JSON file written by --trace-out.")

let load_trace path =
  let data =
    try read_file path
    with Sys_error m ->
      prerr_endline m;
      exit 1
  in
  match Trace.of_chrome (Ds_util.Json.of_string data) with
  | sps -> sps
  | exception Ds_util.Json.Parse_error m ->
      Printf.eprintf "%s: bad JSON: %s\n" path m;
      exit 1
  | exception Trace.Bad_trace m ->
      Printf.eprintf "%s: bad trace: %s\n" path m;
      exit 1

let trace_top_cmd =
  let run path = print_string (Trace.top_table (load_trace path)) in
  Cmd.v
    (Cmd.info "top" ~doc:"Per-span-name self-time table (hottest first).")
    Term.(const run $ trace_file_arg)

let trace_flame_cmd =
  let run path = print_string (Trace.collapsed (load_trace path)) in
  Cmd.v
    (Cmd.info "flame"
       ~doc:"Collapsed-stack flamegraph text (one 'root;..;leaf self_us' line per path; feed              to flamegraph.pl).")
    Term.(const run $ trace_file_arg)

let trace_validate_cmd =
  let min_coverage_arg =
    Arg.(
      value & opt float 0.90
      & info [ "min-coverage" ]
          ~doc:"Minimum fraction of the root span's wall time that must be attributed to its                 descendants.")
  in
  let run min_coverage path =
    let sps = load_trace path in
    if sps = [] then begin
      Printf.eprintf "%s: empty trace\n" path;
      exit 1
    end;
    (match Trace.well_nested sps with
    | Some (child, parent) ->
        Printf.eprintf "%s: span %d escapes its parent %d's interval\n" path child parent;
        exit 1
    | None -> ());
    let cov = Trace.coverage sps in
    Printf.printf "%s: %d spans, well nested, coverage %.3f\n" path (List.length sps) cov;
    if cov < min_coverage then begin
      Printf.eprintf "%s: coverage %.3f below the %.2f floor\n" path cov min_coverage;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Check a trace file: non-empty, well-nested spans, root coverage above the floor.              Exit 1 on any failure.")
    Term.(const run $ min_coverage_arg $ trace_file_arg)

let trace_cmd =
  let default = Term.(ret (const (`Help (`Pager, Some "trace")))) in
  Cmd.group
    (Cmd.info "trace" ~doc:"Analyze span traces recorded with --trace-out.")
    ~default
    [ trace_top_cmd; trace_flame_cmd; trace_validate_cmd ]

(* ---- dependency graph ----------------------------------------------- *)

let node_conv =
  let parse s =
    match Depset.dep_of_string s with
    | Some d -> Ok d
    | None ->
        Error (`Msg ("bad node (want kind:name, e.g. func:vfs_fsync or struct:request): " ^ s))
  in
  Arg.conv (parse, fun fmt d -> Format.pp_print_string fmt (Depset.dep_to_string d))

let node_arg =
  Arg.(
    required
    & pos 0 (some node_conv) None
    & info [] ~docv:"NODE"
        ~doc:
          "Graph node in kind:name syntax (func:, struct:, field:STRUCT::FIELD, tracepoint:, \
           syscall:); a bare name means func:.")

let graph_image_arg =
  Arg.(
    value & opt string "5.4-x86-generic"
    & info [ "image" ] ~doc:"Study image, e.g. 5.4-x86-generic.")

let graph_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the v1 envelope JSON, byte-identical to the /v1/graph/... endpoint.")

let graph_query_cmd name doc dir =
  let transitive_arg =
    Arg.(value & flag
         & info [ "transitive" ] ~doc:"Full transitive closure instead of direct neighbours.")
  in
  let run seed scale cache jobs image transitive json node =
    with_store cache @@ fun store ->
    let v, cfg =
      match Ds_serve.Serve.image_of_name image with
      | Some i -> i
      | None ->
          Printf.eprintf "depsurf: unknown image %s (want e.g. 5.4-x86-generic)\n" image;
          exit 1
    in
    let ds = mk_ds seed scale store in
    with_pool jobs @@ fun pool ->
    let g = Ds_graph.Graph.of_dataset ~pool ds v cfg in
    if json then
      print_endline
        (Ds_util.Json.to_string (Api.envelope (Ds_graph.Graph.query_json g ~dir ~transitive node)))
    else print_string (Ds_graph.Graph.query_table g ~dir ~transitive node)
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ seed_arg $ scale_arg $ cache_arg $ jobs_arg $ graph_image_arg $ transitive_arg
      $ graph_json_arg $ node_arg)

let graph_blast_cmd =
  let release_arg =
    Arg.(
      required
      & opt (some version_conv) None
      & info [ "release"; "r" ] ~doc:"The release the change lands in, e.g. 5.4.")
  in
  let run seed scale cache jobs release json node =
    with_store cache @@ fun store ->
    let ds = mk_ds seed scale store in
    with_pool jobs @@ fun pool ->
    match Ds_graph.Blast.query ~pool ds ~release node with
    | Error m ->
        Printf.eprintf "depsurf: %s\n" m;
        exit 1
    | Ok r ->
        if json then
          print_endline (Ds_util.Json.to_string (Api.envelope (Ds_graph.Blast.json r)))
        else print_string (Ds_graph.Blast.table r)
  in
  Cmd.v
    (Cmd.info "blast"
       ~doc:
         "Blast radius: the corpus programs transitively affected if NODE changes (or \
          disappears) in --release, via the reverse closure on the previous release's graph.")
    Term.(
      const run $ seed_arg $ scale_arg $ cache_arg $ jobs_arg $ release_arg $ graph_json_arg
      $ node_arg)

let graph_cmd =
  let default = Term.(ret (const (`Help (`Pager, Some "graph")))) in
  Cmd.group
    (Cmd.info "graph"
       ~doc:
         "Query the transitive dependency graph (deps, rdeps, blast radius) of the study \
          images.")
    ~default
    [
      graph_query_cmd "deps" "Direct (or --transitive) dependencies of a node." `Deps;
      graph_query_cmd "rdeps"
        "Reverse dependencies: what depends on a node (the blast direction)." `Rdeps;
      graph_blast_cmd;
    ]

(* ---- cache maintenance --------------------------------------------- *)

(* maintenance needs an actual directory; --no-cache makes no sense here *)
let require_cache_dir cache =
  match cache with
  | Some dir -> dir
  | None ->
      prerr_endline "no cache directory: pass --cache-dir or set DEPSURF_CACHE";
      exit 1

let cache_stats_cmd =
  let run cache =
    let dir = require_cache_dir cache in
    let c = Store.lifetime ~dir in
    Printf.printf "lifetime: hits %d misses %d evictions %d writes %d bytes_read %d bytes_written %d\n"
      c.Store.c_hits c.Store.c_misses c.Store.c_evictions c.Store.c_writes c.Store.c_bytes_read
      c.Store.c_bytes_written;
    let es = Store.entries ~dir in
    let total = List.fold_left (fun a (e : Store.entry) -> a + e.Store.e_bytes) 0 es in
    Printf.printf "entries %d bytes %d\n" (List.length es) total;
    let by_ns = Hashtbl.create 8 in
    List.iter
      (fun (e : Store.entry) ->
        let n, b = Option.value ~default:(0, 0) (Hashtbl.find_opt by_ns e.Store.e_ns) in
        Hashtbl.replace by_ns e.Store.e_ns (n + 1, b + e.Store.e_bytes))
      es;
    List.iter
      (fun ns ->
        match Hashtbl.find_opt by_ns ns with
        | Some (n, b) -> Printf.printf "  %-8s %5d entries %10d bytes\n" ns n b
        | None -> ())
      (List.sort compare (Hashtbl.fold (fun ns _ acc -> ns :: acc) by_ns []))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Show lifetime hit/miss counters and per-namespace entry counts.")
    Term.(const run $ cache_arg)

let cache_verify_cmd =
  let run cache =
    let dir = require_cache_dir cache in
    let ok, evicted = Store.verify ~dir in
    Printf.printf "verified %d entries, corrupt %d (evicted)\n" ok evicted
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Re-check every entry's frame; evict the broken ones.")
    Term.(const run $ cache_arg)

let cache_gc_cmd =
  let max_mb_arg =
    Arg.(value & opt int 256 & info [ "max-mb" ] ~doc:"Target store size in MiB (oldest evicted first).")
  in
  let run cache max_mb =
    let dir = require_cache_dir cache in
    let evicted = Store.gc ~dir ~max_bytes:(max_mb * 1024 * 1024) in
    Printf.printf "evicted %d entries\n" evicted
  in
  Cmd.v
    (Cmd.info "gc" ~doc:"Evict oldest entries until the store fits the size budget.")
    Term.(const run $ cache_arg $ max_mb_arg)

let cache_clear_cmd =
  let run cache =
    let dir = require_cache_dir cache in
    let n = Store.clear ~dir in
    Printf.printf "cleared %d entries\n" n
  in
  Cmd.v (Cmd.info "clear" ~doc:"Delete every cache entry.") Term.(const run $ cache_arg)

let cache_cmd =
  let default = Term.(ret (const (`Help (`Pager, Some "cache")))) in
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect and maintain the on-disk artifact cache.")
    ~default
    [ cache_stats_cmd; cache_verify_cmd; cache_gc_cmd; cache_clear_cmd ]

let () =
  (* store evictions report through Logs; route them to stderr *)
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "depsurf" ~version:"1.0.0"
             ~doc:"Dependency-surface analysis for eBPF programs (EuroSys '25 reproduction).")
          ~default
          [ surface_cmd; func_cmd; diff_cmd; report_cmd; corpus_cmd; dump_cmd; export_cmd;
             probe_cmd; vmlinux_h_cmd; gen_images_cmd; mkobj_cmd; analyze_cmd; doctor_cmd;
             mutate_cmd; export_dataset_cmd; serve_cmd; query_cmd; watch_cmd; trace_cmd; graph_cmd;
             cache_cmd ]))
