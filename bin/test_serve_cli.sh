#!/bin/sh
# End-to-end exercise of the query service through the CLI: serve over a
# Unix socket, hit every endpoint with `depsurf query`, check that a
# degraded on-disk image answers HTTP 200 (with "health": "degraded",
# never a 500), compare /mismatch byte-for-byte with `depsurf report`,
# check every /v1 route is byte-identical to its legacy alias, check
# that the response-byte cache serves warm hits byte-identical to the
# first render and that If-None-Match answers 304, then a 50-request
# load smoke with /metrics accounting for every one; finally a TCP leg
# on a kernel-chosen port (--port 0) parsed from serve's stdout.
set -eu

CLI=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")

# every query leg runs under a hard timeout so a wedged server fails the
# test instead of hanging the build forever
if command -v timeout > /dev/null 2>&1; then TO="timeout 60"; else TO=""; fi

TMP=$(mktemp -d)
SRV=""
cleanup() {
  # also runs on failure paths (set -e): kill hard, reap, then sweep —
  # a SIGKILL'd server can't linger holding the socket or the tmp dir
  if [ -n "$SRV" ]; then
    kill "$SRV" 2> /dev/null || true
    i=0
    while [ $i -lt 50 ] && kill -0 "$SRV" 2> /dev/null; do
      sleep 0.1
      i=$((i + 1))
    done
    kill -9 "$SRV" 2> /dev/null || true
    wait "$SRV" 2> /dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT
SOCK="$TMP/ds.sock"

# serving needs a worker for the accept loop on top of one handler
if "$CLI" serve --socket "$SOCK" --jobs 1 > /dev/null 2> "$TMP/jobs.err"; then
  echo "serve accepted --jobs 1" >&2; exit 1
else
  [ $? -eq 1 ]
fi
grep -q "jobs" "$TMP/jobs.err"

# a degraded on-disk image: zero a mid-file region of a study vmlinux
"$CLI" gen-images --dir "$TMP/img" > /dev/null
IMG="$TMP/img/vmlinux-5.4-x86-generic"
size=$(wc -c < "$IMG")
mkdir "$TMP/served"
"$CLI" mutate "$IMG" "$TMP/served/vmlinux-degraded" --zero $((size / 3)):512

"$CLI" serve --socket "$SOCK" --images "$TMP/served" --cache-dir "$TMP/cache" \
  > "$TMP/serve.log" 2>&1 &
SRV=$!
i=0
while [ $i -lt 100 ]; do
  [ -S "$SOCK" ] && break
  sleep 0.1
  i=$((i + 1))
done
[ -S "$SOCK" ]

Q() { $TO "$CLI" query --socket "$SOCK" "$@"; }

# every endpoint answers
Q /healthz | grep -q '"status": "ok"'
Q /images > "$TMP/images.json"
grep -q '"5.4-x86-generic"' "$TMP/images.json"
grep -q '"vmlinux-degraded"' "$TMP/images.json"
Q /surface/5.4-x86-generic | grep -q '"health": "clean"'
Q "/surface/4.4-x86-generic?kind=func&name=vfs_fsync" | grep -q '"vfs_fsync"'
Q /diff/4.4-x86-generic/5.4-x86-generic | grep -q '"across_versions"'

# the degraded image is HTTP 200 (query exits 0) with its health visible
Q /surface/vmlinux-degraded > "$TMP/degraded.json"
grep -q '"health": "degraded"' "$TMP/degraded.json"
grep -q '"diagnostics"' "$TMP/degraded.json"

# errors are still errors: unknown image -> 404 -> exit 1
if Q /surface/9.9-x86-generic > /dev/null 2>&1; then
  echo "unknown image did not fail" >&2; exit 1
else
  [ $? -eq 1 ]
fi

# /v1/<route> answers byte-for-byte like its legacy alias
for route in /healthz /images /surface/5.4-x86-generic \
  /diff/4.4-x86-generic/5.4-x86-generic /surface/vmlinux-degraded; do
  Q "$route" > "$TMP/legacy.json"
  Q "/v1$route" > "$TMP/v1.json"
  cmp "$TMP/legacy.json" "$TMP/v1.json"
done

# the envelope carries the API version on every JSON endpoint
Q /v1/healthz | grep -q '"v": 1'

# every request is traced: /v1/trace/recent reports finished spans
Q /v1/trace/recent > "$TMP/trace.json"
grep -q '"serve.request"' "$TMP/trace.json"
grep -q '"dropped"' "$TMP/trace.json"

# ?trace=1 inlines the request's own spans into the body
Q '/v1/surface/5.4-x86-generic?trace=1' | grep -q '"trace"'

# /mismatch is byte-identical to the CLI report for the same object
"$CLI" mkobj --tool biotop --out "$TMP/biotop.bpf.o" > /dev/null
"$CLI" report --tool biotop > "$TMP/report.cli"
Q --data "$TMP/biotop.bpf.o" /mismatch > "$TMP/report.srv"
cmp "$TMP/report.cli" "$TMP/report.srv"

# /v1/verify is byte-identical to `doctor --json` for the same object,
# and the clean corpus object is accepted (doctor exits 0)
"$CLI" doctor --json "$TMP/biotop.bpf.o" > "$TMP/verify.cli"
Q --data "$TMP/biotop.bpf.o" /v1/verify > "$TMP/verify.srv"
cmp "$TMP/verify.cli" "$TMP/verify.srv"
grep -q '"health": "clean"' "$TMP/verify.srv"

# a rejected program is data on both surfaces: the server answers 200
# with "health": "degraded" and the named taxonomy rule, the doctor
# exits 2 (degraded) with the same envelope
"$CLI" mkobj --tool biotop --sabotage --out "$TMP/bad.bpf.o" > /dev/null
Q --data "$TMP/bad.bpf.o" /v1/verify > "$TMP/verify.bad.srv"
grep -q '"health": "degraded"' "$TMP/verify.bad.srv"
grep -q '"unsafe-load-scalar"' "$TMP/verify.bad.srv"
set +e
"$CLI" doctor --json "$TMP/bad.bpf.o" > "$TMP/verify.bad.cli"
rc=$?
set -e
[ "$rc" -eq 2 ]
cmp "$TMP/verify.bad.cli" "$TMP/verify.bad.srv"

# a corrupted object still answers structured JSON, never a crash
size=$(wc -c < "$TMP/biotop.bpf.o")
"$CLI" mutate "$TMP/biotop.bpf.o" "$TMP/mut.bpf.o" --zero $((size / 2)):64
Q --data "$TMP/mut.bpf.o" /v1/verify > "$TMP/verify.mut.srv"
grep -q '"health"' "$TMP/verify.mut.srv"
grep -q '"programs"' "$TMP/verify.mut.srv"

# repeat POSTs of the same digest hit the response cache, and the ETag
# supports conditional POSTs (304 with an empty body)
Q -i --data "$TMP/biotop.bpf.o" /v1/verify > "$TMP/verify1.http"
Q -i --data "$TMP/biotop.bpf.o" /v1/verify > "$TMP/verify2.http"
grep -q '^x-depsurf-cache: hit$' "$TMP/verify2.http"
VETAG=$(sed -n 's/^etag: \(.*\)$/\1/p' "$TMP/verify2.http" | head -n 1)
[ -n "$VETAG" ]
Q -i -H "If-None-Match: $VETAG" --data "$TMP/biotop.bpf.o" /v1/verify > "$TMP/verify304.http"
grep -q '^HTTP/1.1 304$' "$TMP/verify304.http"
[ -z "$(sed -e '1,/^$/d' "$TMP/verify304.http")" ]
# a different object is a different digest: no false sharing
Q -i --data "$TMP/bad.bpf.o" /v1/verify > "$TMP/verify.other.http"
sed -e '1,/^$/d' "$TMP/verify.other.http" > "$TMP/verify.other.body"
cmp "$TMP/verify.other.body" "$TMP/verify.bad.srv"

# response-byte cache: the first hit renders (miss), every later hit is
# served from the cache — and the cached bytes are identical to the
# rendered ones
Q -i /surface/4.8-x86-generic > "$TMP/first.http"
grep -q '^x-depsurf-cache: miss$' "$TMP/first.http"
Q -i /surface/4.8-x86-generic > "$TMP/second.http"
grep -q '^x-depsurf-cache: hit$' "$TMP/second.http"
sed -e '1,/^$/d' "$TMP/first.http" > "$TMP/first.body"
sed -e '1,/^$/d' "$TMP/second.http" > "$TMP/cached.body"
cmp "$TMP/first.body" "$TMP/cached.body"

# conditional requests: send the ETag back, get an empty-bodied 304
ETAG=$(sed -n 's/^etag: \(.*\)$/\1/p' "$TMP/second.http" | head -n 1)
[ -n "$ETAG" ]
Q -i -H "If-None-Match: $ETAG" /surface/4.8-x86-generic > "$TMP/cond.http"
grep -q '^HTTP/1.1 304$' "$TMP/cond.http"
grep -q "^etag: " "$TMP/cond.http"
# nothing after the blank line: the 304 body is empty
[ -z "$(sed -e '1,/^$/d' "$TMP/cond.http")" ]
# a stale validator still gets the full representation
Q -i -H 'If-None-Match: "stale"' /surface/4.8-x86-generic > "$TMP/stale.http"
grep -q '^HTTP/1.1 200$' "$TMP/stale.http"

# load smoke: 50 warm requests, then /metrics must account for them;
# warm traffic is absorbed by the response cache (the index was hit only
# while filling it)
i=0
while [ $i -lt 50 ]; do
  Q /surface/5.4-x86-generic > /dev/null
  i=$((i + 1))
done
Q /metrics > "$TMP/metrics.json"
total=$(sed -n 's/^ *"requests_total": \([0-9]*\).*/\1/p' "$TMP/metrics.json" | head -n 1)
[ "$total" -ge 58 ]
chits=$(sed -n 's/^ *"cache.hit": \([0-9]*\).*/\1/p' "$TMP/metrics.json" | head -n 1)
[ "$chits" -ge 50 ]
notmod=$(sed -n 's/^ *"cache.notmod": \([0-9]*\).*/\1/p' "$TMP/metrics.json" | head -n 1)
[ "$notmod" -ge 1 ]
fills=$(sed -n 's/^ *"index.fill.surface": \([0-9]*\).*/\1/p' "$TMP/metrics.json" | head -n 1)
[ "$fills" -le 3 ]
grep -q '"response_cache"' "$TMP/metrics.json"
grep -q '"latency_ms"' "$TMP/metrics.json"

# SIGTERM is a graceful drain: the server logs the stop, exits 0, and
# unlinks its socket on the way out
kill "$SRV"
wait "$SRV"
SRV=""
grep -q "depsurf serve: stopped" "$TMP/serve.log"
[ ! -S "$SOCK" ]

# TCP leg: --port 0 binds a kernel-chosen port, printed on stdout as
# tcp:HOST:PORT before any request is answered
"$CLI" serve --port 0 --cache-dir "$TMP/cache" > "$TMP/tcp.log" 2>&1 &
SRV=$!
i=0
while [ $i -lt 100 ]; do
  grep -q "listening on tcp:" "$TMP/tcp.log" 2> /dev/null && break
  sleep 0.1
  i=$((i + 1))
done
PORT=$(sed -n 's/.*listening on tcp:127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$TMP/tcp.log" | head -n 1)
[ -n "$PORT" ] && [ "$PORT" -gt 0 ]
$TO "$CLI" query --port "$PORT" /v1/healthz | grep -q '"status": "ok"'
$TO "$CLI" query --port "$PORT" /healthz > "$TMP/tcp-legacy.json"
$TO "$CLI" query --port "$PORT" /v1/healthz > "$TMP/tcp-v1.json"
cmp "$TMP/tcp-legacy.json" "$TMP/tcp-v1.json"

# --retries rides out a restart window: against a dead address it must
# fail only after backing off (not instantly, not forever)
kill "$SRV"
wait "$SRV"
SRV=""
if $TO "$CLI" query --port "$PORT" --retries 2 /v1/healthz > /dev/null 2>&1; then
  echo "query --retries succeeded against a stopped server" >&2; exit 1
else
  [ $? -eq 1 ]
fi
echo "serve CLI e2e: OK"
