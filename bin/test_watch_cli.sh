#!/bin/sh
# End-to-end exercise of the release-watch tier through the CLI:
# register a depset subscription (enveloped via `depsurf watch register`
# and bare via `depsurf query`, same content-addressed id), park a
# long-poll follower, ingest a sabotaged release whose delta removes the
# subscribed func, check the follower is woken with the mismatch event,
# replay the cursor byte-identically, check the warm re-ingest performs
# zero new extractions, then the legacy-sunset legs: Deprecation +
# Sunset headers and the http.legacy_hits counter on unprefixed routes,
# and a --no-legacy-routes restart (same store: subscriptions persist)
# where legacy spellings answer 404 and /v1 still works.
set -eu

CLI=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")

if command -v timeout > /dev/null 2>&1; then TO="timeout 120"; else TO=""; fi

TMP=$(mktemp -d)
SRV=""
stop_server() {
  if [ -n "$SRV" ]; then
    kill "$SRV" 2> /dev/null || true
    i=0
    while [ $i -lt 100 ] && kill -0 "$SRV" 2> /dev/null; do
      sleep 0.1
      i=$((i + 1))
    done
    kill -9 "$SRV" 2> /dev/null || true
    wait "$SRV" 2> /dev/null || true
    SRV=""
  fi
}
cleanup() {
  stop_server
  rm -rf "$TMP"
}
trap cleanup EXIT
SOCK="$TMP/ds.sock"

Q() { $TO "$CLI" query --socket "$SOCK" "$@"; }

start_server() {
  "$CLI" serve --socket "$SOCK" --cache-dir "$TMP/cache" "$@" > "$TMP/serve.log" 2>&1 &
  SRV=$!
  i=0
  while [ $i -lt 200 ]; do
    [ -S "$SOCK" ] && break
    sleep 0.1
    i=$((i + 1))
  done
  [ -S "$SOCK" ]
}

json_id() { sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$1" | head -n 1; }

echo "== watch e2e: images"
$TO "$CLI" gen-images --dir "$TMP/img" > /dev/null
RELEASE="$TMP/img/vmlinux-4.15-x86-generic"
[ -f "$RELEASE" ]

start_server

# a func the 4.15 "release" lacks relative to base 5.4: its delta will
# report it removed, which is the mismatch the subscription must catch.
# Fall back to a changed func (a Change op notifies the same way).
Q /v1/diff/5.4-x86-generic/4.15-x86-generic > "$TMP/diff.json"
VICTIM=$(awk '
  /"funcs": \{/ { infuncs = 1 }
  infuncs && /"structs": \{/ { exit }
  infuncs && /"removed": \[$/ { getline; gsub(/[ ",]/, ""); print; exit }
' "$TMP/diff.json")
if [ -z "$VICTIM" ]; then
  VICTIM=$(awk '
    /"funcs": \{/ { infuncs = 1 }
    infuncs && /"structs": \{/ { exit }
    infuncs && /"name": "/ { sub(/.*"name": "/, ""); sub(/".*/, ""); print; exit }
  ' "$TMP/diff.json")
fi
[ -n "$VICTIM" ] || { echo "no func differs between 5.4 and 4.15" >&2; exit 1; }
echo "== watch e2e: victim func $VICTIM"

echo "== watch e2e: register (enveloped CLI vs bare query, one id)"
$TO "$CLI" watch register --socket "$SOCK" --dep "func:$VICTIM" --label e2e \
  > "$TMP/reg.json"
ID=$(json_id "$TMP/reg.json")
[ -n "$ID" ]
printf '{"deps": ["func:%s"], "label": "e2e"}' "$VICTIM" > "$TMP/sub.json"
Q -d "$TMP/sub.json" /v1/subscriptions > "$TMP/reg2.json"
ID2=$(json_id "$TMP/reg2.json")
[ "$ID" = "$ID2" ] || { echo "envelope vs bare ids differ: $ID vs $ID2" >&2; exit 1; }
$TO "$CLI" watch list --socket "$SOCK" | grep -q "$ID"

echo "== watch e2e: park a follower, ingest the sabotaged release"
$TO "$CLI" watch follow --socket "$SOCK" "$ID" --wait 60 --polls 1 \
  > "$TMP/follow.out" 2>&1 &
FOL=$!
sleep 1
$TO "$CLI" watch ingest --socket "$SOCK" --base 5.4-x86-generic --name sabotaged \
  "$RELEASE" > "$TMP/ingest.json"
grep -q '"warm": false' "$TMP/ingest.json"
grep -q '"matched": 1' "$TMP/ingest.json"
wait "$FOL"
grep -q '"release": "sabotaged"' "$TMP/follow.out"
grep -q "func:$VICTIM" "$TMP/follow.out"

echo "== watch e2e: cursor replay is byte-identical"
Q "/v1/watch/$ID?since=0" > "$TMP/replay1.json"
Q "/v1/watch/$ID?since=0" > "$TMP/replay2.json"
cmp "$TMP/replay1.json" "$TMP/replay2.json"
CURSOR=$(sed -n 's/^ *"cursor": \([0-9]*\).*/\1/p' "$TMP/replay1.json" | head -n 1)
[ -n "$CURSOR" ]
# past the cursor there is nothing yet: 204, empty body (query prints nothing)
PAST=$(Q "/v1/watch/$ID?since=$CURSOR")
[ -z "$PAST" ]

echo "== watch e2e: warm re-ingest, no new extraction"
Q /v1/metrics | grep -q '"extractions": 1'
$TO "$CLI" watch ingest --socket "$SOCK" --base 5.4-x86-generic --name sabotaged \
  "$RELEASE" > "$TMP/ingest2.json"
grep -q '"warm": true' "$TMP/ingest2.json"
Q /v1/metrics | grep -q '"extractions": 1'

echo "== watch e2e: legacy sunset headers + counter"
Q -i /healthz > "$TMP/legacy.out"
grep -qi '^deprecation: true' "$TMP/legacy.out"
grep -qi '^sunset: ' "$TMP/legacy.out"
Q -i /v1/healthz > "$TMP/v1.out"
if grep -qi '^deprecation:' "$TMP/v1.out"; then
  echo "/v1 route carries a Deprecation header" >&2; exit 1
fi
Q /v1/metrics | grep -q '"http.legacy_hits"'

echo "== watch e2e: --no-legacy-routes restart (store persists)"
Q "/v1/watch/$ID?since=0" > "$TMP/final.json"
stop_server
start_server --no-legacy-routes
# the subscription and its recorded events survive the restart
$TO "$CLI" watch list --socket "$SOCK" | grep -q "$ID"
Q "/v1/watch/$ID?since=0" > "$TMP/replayed.json"
cmp "$TMP/final.json" "$TMP/replayed.json"
if Q /healthz > "$TMP/legacy404.out" 2>&1; then
  echo "legacy route answered under --no-legacy-routes" >&2; exit 1
fi
grep -q '/v1/healthz' "$TMP/legacy404.out"
Q /v1/healthz | grep -q '"status": "ok"'

echo "== watch e2e: unregister"
$TO "$CLI" watch unregister --socket "$SOCK" "$ID" > /dev/null
if $TO "$CLI" watch list --socket "$SOCK" | grep -q "$ID"; then
  echo "subscription survived unregister" >&2; exit 1
fi

echo "watch e2e: all legs passed"
