(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation from the synthetic 25-image dataset, then runs
   Bechamel micro-benchmarks for the §3.4 performance claims, plus the
   ablations called out in DESIGN.md.

   Counts are at the calibrated bench scale (≈1/25 of the real kernel for
   functions); all percentages are scale-invariant and are the numbers to
   compare against the paper. Set DEPSURF_SCALE=test for a quick run.

   Run with: dune exec bench/main.exe *)

open Depsurf
open Ds_ksrc
open Ds_util
module T7 = Ds_corpus.Table7

let scale =
  match Sys.getenv_opt "DEPSURF_SCALE" with
  | Some "test" -> Calibration.test_scale
  | _ -> Calibration.bench_scale

(* jobs=1 vs jobs=N pipeline comparison; N from DEPSURF_JOBS/cores, but
   at least 4 so the pool machinery is always exercised *)
let par_jobs =
  let n = Par.default_jobs () in
  if n > 1 then n else 4

let now = Unix.gettimeofday
let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* Persistent artifact store on a fresh directory: the main (cold) run
   populates it, the store-timing section replays the pipeline warm from
   it. A pre-existing DEPSURF_CACHE reuses that directory instead (so a
   second bench invocation is itself warm). *)
module Store = Ds_store.Store

let cache_dir =
  match Sys.getenv_opt "DEPSURF_CACHE" with
  | Some dir when dir <> "" -> dir
  | _ ->
      let f = Filename.temp_file "depsurf-bench-cache" "" in
      Sys.remove f;
      f

let store = Store.open_ ~dir:cache_dir ()
let ds, t_evolve = time (fun () -> Pipeline.dataset ~store scale)
let pool = Par.create ~jobs:par_jobs ()
let cached = Pipeline.cached ~pool ds
let x86 v = Dataset.surface ds v Config.x86_generic
let section title = Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Every BENCH_*.json is a series, not a snapshot: each harness run
   appends one {pr, timestamp, metric} record to the file's "trajectory"
   list (carried over from the previous file) before overwriting it, so
   stacked PRs accumulate a per-PR perf history. PR number from
   DEPSURF_PR; timestamp is unix seconds. *)
let pr_number =
  match Option.bind (Sys.getenv_opt "DEPSURF_PR") int_of_string_opt with
  | Some n -> n
  | None -> 10

let with_trajectory path ~metric fields =
  let open Json in
  let previous =
    if not (Sys.file_exists path) then []
    else
      match Json.of_string (read_file path) with
      | exception _ -> []
      | j -> ( match Json.member "trajectory" j with Some (List l) -> l | _ -> [])
  in
  let record =
    Obj [ ("pr", Int pr_number); ("timestamp", Float (Unix.time ())); ("metric", Float metric) ]
  in
  Obj (fields @ [ ("trajectory", List (previous @ [ record ])) ])

let write_json_file path j =
  let oc = open_out path in
  output_string oc (Json.to_string j);
  output_char oc '\n';
  close_out oc

(* capture stdout produced by [f], for byte-identity checks *)
let capture f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let tmp = Filename.temp_file "depsurf-capture" ".txt" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  (match f () with
  | () -> restore ()
  | exception e ->
      restore ();
      raise e);
  let s = read_file tmp in
  Sys.remove tmp;
  s

let pct = Texttable.pct
let count = Texttable.count

(* Shared computations, memoized across sections (Pipeline.cached
   computes each diff fan-out once, through the pool). *)
let lts_diffs = lazy (Pipeline.lts_diffs cached)
let release_diffs = lazy (Pipeline.release_diffs cached)
let config_diffs = lazy (Pipeline.config_diffs cached)

let corpus = lazy (Ds_corpus.Corpus.build_all ds ())
let corpus_analysis = lazy (Ds_corpus.Corpus.analyze_all_matrices ds ~pool (Lazy.force corpus))

(* Tables 1, 3 and 7 are rendered twice — once from the cold dataset and
   once from the warm (store-backed) replay — and must agree byte for
   byte, so they read everything through this environment record. *)
type env = {
  e_ds : Dataset.t;
  e_cached : Pipeline.cached;
  e_analysis : (T7.profile * Report.matrix * Report.mismatch_summary) list Lazy.t;
}

let env = { e_ds = ds; e_cached = cached; e_analysis = corpus_analysis }
let ex86 e v = Dataset.surface e.e_ds v Config.x86_generic

(* ------------------------------------------------------------------ *)
(* Table 3                                                              *)
(* ------------------------------------------------------------------ *)

let rates_row (d : 'c Diff.item_diff) old_total =
  ( Stats.percent (List.length d.Diff.d_added) old_total,
    Stats.percent (List.length d.Diff.d_removed) old_total,
    Stats.percent (List.length d.Diff.d_changed) old_total )

let table3 env () =
  section "Table 3: kernel source code differences (x86/generic)";
  let headers =
    [
      ("", Texttable.L);
      ("fn#", Texttable.R); ("fn+%", Texttable.R); ("fn-%", Texttable.R); ("fnC%", Texttable.R);
      ("st#", Texttable.R); ("st+%", Texttable.R); ("st-%", Texttable.R); ("stC%", Texttable.R);
      ("tp#", Texttable.R); ("tp+%", Texttable.R); ("tp-%", Texttable.R); ("tpC%", Texttable.R);
    ]
  in
  let emit title diffs =
    let t = Texttable.create ~title headers in
    List.iter
      (fun ((a, b), (d : Diff.t)) ->
        let fo, so, tpo, _ = Surface.counts (ex86 env a) in
        let fa, fr, fc = rates_row d.Diff.df_funcs fo in
        let sa, sr, sc = rates_row d.Diff.df_structs so in
        let ta, tr, tc = rates_row d.Diff.df_tracepoints tpo in
        Texttable.row t
          [
            Version.to_string a ^ "->" ^ Version.to_string b;
            count fo; pct fa; pct fr; pct fc;
            count so; pct sa; pct sr; pct sc;
            count tpo; pct ta; pct tr; pct tc;
          ])
      diffs;
    let last = ex86 env (Version.v 6 8) in
    let f, s, tp, _ = Surface.counts last in
    Texttable.row t
      [ "v6.8 (#)"; count f; "-"; "-"; "-"; count s; "-"; "-"; "-"; count tp; "-"; "-"; "-" ];
    print_string (Texttable.render t)
  in
  emit "across LTS versions (paper maxima: fn +24/-10/C6, st +24/-4/C18, tp +39/-5/C16)"
    (Pipeline.lts_diffs env.e_cached);
  print_newline ();
  emit "across consecutive releases" (Pipeline.release_diffs env.e_cached)

(* ------------------------------------------------------------------ *)
(* Table 4                                                              *)
(* ------------------------------------------------------------------ *)

let table4 () =
  section "Table 4: breakdown of kernel source code changes (LTS pairs)";
  let t =
    Texttable.create
      [
        ("change kind", Texttable.L);
        ("4.4-4.15", Texttable.R); ("4.15-5.4", Texttable.R); ("5.4-5.15", Texttable.R);
        ("5.15-6.8", Texttable.R);
      ]
  in
  let bks = List.map (fun (_, d) -> Diff.breakdown d) (Lazy.force lts_diffs) in
  let fb f = List.map (fun (x, _, _) -> f x) bks in
  let sb f = List.map (fun (_, x, _) -> f x) bks in
  let tb f = List.map (fun (_, _, x) -> f x) bks in
  let row label values = Texttable.row t (label :: List.map string_of_int values) in
  let prow label values totals =
    Texttable.row t
      (label :: List.map2 (fun v tot -> pct (Stats.percent v tot)) values totals)
  in
  let ftot = fb (fun x -> x.Diff.fb_changed) in
  row "func changed" ftot;
  prow "- param added (paper 51-60%)" (fb (fun x -> x.Diff.fb_param_added)) ftot;
  prow "- param removed (36-48%)" (fb (fun x -> x.Diff.fb_param_removed)) ftot;
  prow "- param reordered (19-25%)" (fb (fun x -> x.Diff.fb_param_reordered)) ftot;
  prow "- param type changed (23-26%)" (fb (fun x -> x.Diff.fb_param_type)) ftot;
  prow "- return type changed (13-21%)" (fb (fun x -> x.Diff.fb_ret_type)) ftot;
  Texttable.sep t;
  let stot = sb (fun x -> x.Diff.sb_changed) in
  row "struct changed" stot;
  prow "- field added (72-75%)" (sb (fun x -> x.Diff.sb_field_added)) stot;
  prow "- field removed (40-42%)" (sb (fun x -> x.Diff.sb_field_removed)) stot;
  prow "- field type changed (32-37%)" (sb (fun x -> x.Diff.sb_field_type)) stot;
  Texttable.sep t;
  let ttot = tb (fun x -> x.Diff.tb_changed) in
  row "tracept changed" ttot;
  prow "- event changed (81-95%)" (tb (fun x -> x.Diff.tb_event)) ttot;
  prow "- func changed (32-54%)" (tb (fun x -> x.Diff.tb_func)) ttot;
  print_string (Texttable.render t)

(* ------------------------------------------------------------------ *)
(* Table 5                                                              *)
(* ------------------------------------------------------------------ *)

let table5 () =
  section "Table 5: configuration differences vs x86/generic at v5.4";
  let cfg_diffs = Lazy.force config_diffs in
  let configs = List.map fst cfg_diffs in
  let t =
    Texttable.create
      (("", Texttable.L)
      :: ("x86", Texttable.R)
      :: List.map
           (fun cfg ->
             ( (if cfg.Config.arch <> Config.X86 then Config.arch_to_string cfg.Config.arch
                else Config.flavor_to_string cfg.Config.flavor),
               Texttable.R ))
           configs)
  in
  let base = x86 (Version.v 5 4) in
  let fo, so, tpo, sco = Surface.counts base in
  Texttable.row t
    ("config #"
    :: string_of_int (Config.option_count Config.x86_generic)
    :: List.map (fun cfg -> string_of_int (Config.option_count cfg)) configs);
  Texttable.sep t;
  let counts_of cfg = Surface.counts (Dataset.surface ds (Version.v 5 4) cfg) in
  let row_counts label pick base_v =
    Texttable.row t
      (label :: string_of_int base_v :: List.map (fun cfg -> string_of_int (pick (counts_of cfg))) configs)
  in
  let row_diff label get =
    Texttable.row t
      (label :: "-" :: List.map (fun (_, d) -> string_of_int (get d)) cfg_diffs)
  in
  row_counts "func #" (fun (f, _, _, _) -> f) fo;
  row_diff "func +" (fun d -> List.length d.Diff.df_funcs.Diff.d_added);
  row_diff "func -" (fun d -> List.length d.Diff.df_funcs.Diff.d_removed);
  row_diff "func C" (fun d -> List.length d.Diff.df_funcs.Diff.d_changed);
  Texttable.sep t;
  row_counts "struct #" (fun (_, s, _, _) -> s) so;
  row_diff "struct +" (fun d -> List.length d.Diff.df_structs.Diff.d_added);
  row_diff "struct -" (fun d -> List.length d.Diff.df_structs.Diff.d_removed);
  row_diff "struct C" (fun d -> List.length d.Diff.df_structs.Diff.d_changed);
  Texttable.sep t;
  row_counts "tracept #" (fun (_, _, tp, _) -> tp) tpo;
  row_diff "tracept +" (fun d -> List.length d.Diff.df_tracepoints.Diff.d_added);
  row_diff "tracept -" (fun d -> List.length d.Diff.df_tracepoints.Diff.d_removed);
  row_diff "tracept C" (fun d -> List.length d.Diff.df_tracepoints.Diff.d_changed);
  Texttable.sep t;
  row_counts "syscall #" (fun (_, _, _, sc) -> sc) sco;
  row_diff "syscall +" (fun d -> List.length d.Diff.df_syscalls.Diff.d_added);
  row_diff "syscall -" (fun d -> List.length d.Diff.df_syscalls.Diff.d_removed);
  Texttable.sep t;
  Texttable.row t
    ("register C" :: "-"
    :: List.map (fun cfg -> if cfg.Config.arch <> Config.X86 then "Yes" else "-") configs);
  Texttable.row t
    ("compat traceable" :: "No"
    :: List.map
         (fun cfg ->
           if Ds_ksrc.Construct.compat_syscall_traceable cfg.Config.arch then "Yes" else "No")
         configs);
  print_string (Texttable.render t)

(* ------------------------------------------------------------------ *)
(* Table 6                                                              *)
(* ------------------------------------------------------------------ *)

let table6 () =
  section "Table 6: function duplication and name collision (LTS images)";
  let t =
    Texttable.create
      (("", Texttable.L) :: List.map (fun v -> (Version.to_string v, Texttable.R)) Version.lts)
  in
  let censuses = List.map (fun v -> Func_status.collision_census (x86 v)) Version.lts in
  let row label get = Texttable.row t (label :: List.map (fun c -> count (get c)) censuses) in
  row "unique global (paper 17.2k->31.5k)" (fun c -> c.Func_status.cc_unique_global);
  row "unique static (35.7k->60.2k)" (fun c -> c.Func_status.cc_unique_static);
  row "static duplication (4.0k->7.4k)" (fun c -> c.Func_status.cc_duplication);
  row "static-static collision (404->498)" (fun c -> c.Func_status.cc_static_static);
  row "static-global collision (10->29)" (fun c -> c.Func_status.cc_static_global);
  print_string (Texttable.render t)

(* ------------------------------------------------------------------ *)
(* Figures 5 and 6                                                      *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "Figure 5: % functions fully and selectively inlined";
  let t =
    Texttable.create
      [
        ("image", Texttable.L); ("full%", Texttable.R); ("", Texttable.L);
        ("selective%", Texttable.R); ("", Texttable.L);
      ]
  in
  let emit label s =
    let c = Func_status.inline_census s in
    let full = Stats.percent c.Func_status.ic_full c.Func_status.ic_total in
    let sel = Stats.percent c.Func_status.ic_selective c.Func_status.ic_total in
    Texttable.row t
      [ label; pct full; Texttable.bar full ~max:40.; pct sel; Texttable.bar sel ~max:40. ]
  in
  List.iter (fun v -> emit (Version.to_string v) (x86 v)) Version.all;
  Texttable.sep t;
  List.iter
    (fun arch ->
      emit
        ("v5.4 " ^ Config.arch_to_string arch)
        (Dataset.surface ds (Version.v 5 4) Config.{ arch; flavor = Generic }))
    [ Config.Arm64; Config.Arm32; Config.Ppc; Config.Riscv ];
  print_string (Texttable.render t);
  print_endline "(paper: 32-36% fully inlined, 9-11% selectively inlined)"

let fig6 () =
  section "Figure 6: % functions transformed by the compiler";
  let t =
    Texttable.create
      [
        ("image (gcc)", Texttable.L); ("any%", Texttable.R); ("isra", Texttable.R);
        ("constprop", Texttable.R); ("part", Texttable.R); ("cold", Texttable.R);
        (">=2", Texttable.R);
      ]
  in
  let emit label s =
    let c = Func_status.transform_census s in
    let p n = pct (Stats.percent n c.Func_status.tc_total) in
    Texttable.row t
      [
        label; p c.Func_status.tc_any; p c.Func_status.tc_isra; p c.Func_status.tc_constprop;
        p c.Func_status.tc_part; p c.Func_status.tc_cold; p c.Func_status.tc_multi;
      ]
  in
  List.iter
    (fun v ->
      let gmaj, gmin = Version.gcc_of v in
      emit (Printf.sprintf "%s (gcc %d.%d)" (Version.to_string v) gmaj gmin) (x86 v))
    Version.all;
  Texttable.sep t;
  List.iter
    (fun arch ->
      emit
        ("v5.4 " ^ Config.arch_to_string arch)
        (Dataset.surface ds (Version.v 5 4) Config.{ arch; flavor = Generic }))
    [ Config.Arm64; Config.Arm32; Config.Ppc; Config.Riscv ];
  print_string (Texttable.render t);
  print_endline "(paper: up to 16% transformed; cold appears at GCC >= 8; no isra on arm32)"

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2                                                       *)
(* ------------------------------------------------------------------ *)

let table1 env () =
  section "Table 1: summary of dependency mismatches";
  let lts = List.map snd (Pipeline.lts_diffs env.e_cached) in
  let cfgs = List.map snd (Pipeline.config_diffs env.e_cached) in
  let t =
    Texttable.create
      [
        ("layer", Texttable.L); ("type", Texttable.L); ("cause", Texttable.L);
        ("freq", Texttable.R); ("paper", Texttable.R); ("consequence", Texttable.L);
      ]
  in
  let pop_of which (d : Diff.t) =
    match which with
    | `Fn ->
        ( d.Diff.df_funcs.Diff.d_common,
          List.length d.Diff.df_funcs.Diff.d_added,
          List.length d.Diff.df_funcs.Diff.d_removed,
          List.length d.Diff.df_funcs.Diff.d_changed )
    | `St ->
        ( d.Diff.df_structs.Diff.d_common,
          List.length d.Diff.df_structs.Diff.d_added,
          List.length d.Diff.df_structs.Diff.d_removed,
          List.length d.Diff.df_structs.Diff.d_changed )
    | `Tp ->
        ( d.Diff.df_tracepoints.Diff.d_common,
          List.length d.Diff.df_tracepoints.Diff.d_added,
          List.length d.Diff.df_tracepoints.Diff.d_removed,
          List.length d.Diff.df_tracepoints.Diff.d_changed )
  in
  let freq diffs which part =
    Stats.max_over
      (fun d ->
        let common, a, r, c = pop_of which d in
        let old_total = common + r in
        Stats.percent (match part with `A -> a | `R -> r | `C -> c) (max 1 old_total))
      diffs
  in
  let row layer ty cause v paper consequence =
    Texttable.row t [ layer; ty; cause; pct v; paper; consequence ]
  in
  row "source" "function" "addition" (freq lts `Fn `A) "24%" "Attachment Error";
  row "source" "function" "removal" (freq lts `Fn `R) "10%" "Attachment Error";
  row "source" "function" "change" (freq lts `Fn `C) "6%" "Stray Read";
  row "source" "struct" "addition" (freq lts `St `A) "24%" "Compilation Error";
  row "source" "struct" "removal" (freq lts `St `R) "4%" "Compilation Error";
  row "source" "struct" "change" (freq lts `St `C) "18%" "Stray Read or CE";
  row "source" "tracepoint" "addition" (freq lts `Tp `A) "39%" "Attachment Error";
  row "source" "tracepoint" "removal" (freq lts `Tp `R) "5%" "Attachment Error";
  row "source" "tracepoint" "change" (freq lts `Tp `C) "16%" "Stray Read or CE";
  Texttable.sep t;
  row "config" "function" "addition" (freq cfgs `Fn `A) "26%" "Attachment Error";
  row "config" "function" "removal" (freq cfgs `Fn `R) "25%" "Attachment Error";
  row "config" "function" "change" (freq cfgs `Fn `C) "0.3%" "Stray Read";
  row "config" "struct" "addition" (freq cfgs `St `A) "24%" "Compilation Error";
  row "config" "struct" "removal" (freq cfgs `St `R) "22%" "Compilation Error";
  row "config" "struct" "change" (freq cfgs `St `C) "1.8%" "Stray Read or CE";
  row "config" "tracepoint" "addition" (freq cfgs `Tp `A) "8%" "Attachment Error";
  row "config" "tracepoint" "removal" (freq cfgs `Tp `R) "34%" "Attachment Error";
  Texttable.row t
    [ "config"; "syscall"; "availability"; "by arch"; "by arch"; "Attachment Error" ];
  Texttable.row t
    [ "config"; "syscall"; "traceability"; "by arch"; "by arch"; "Missing Invocation" ];
  Texttable.row t
    [ "config"; "register"; "difference"; "by arch"; "by arch"; "Relocation Error" ];
  Texttable.sep t;
  let s54 = ex86 env (Version.v 5 4) in
  let ic = Func_status.inline_census s54 in
  let tc = Func_status.transform_census s54 in
  let cc = Func_status.collision_census s54 in
  let total = ic.Func_status.ic_total in
  row "compile" "function" "full inline"
    (Stats.percent ic.Func_status.ic_full total)
    "36%" "Attachment Error";
  row "compile" "function" "selective inline"
    (Stats.percent ic.Func_status.ic_selective total)
    "11%" "Missing Invocation";
  row "compile" "function" "transformation"
    (Stats.percent tc.Func_status.tc_any total)
    "16%" "Attachment Error";
  row "compile" "function" "duplication"
    (Stats.percent cc.Func_status.cc_duplication total)
    "12%" "Missing Invocation";
  row "compile" "function" "name collision"
    (Stats.percent (cc.Func_status.cc_static_static + cc.Func_status.cc_static_global) total)
    "0.6%" "Stray Read";
  print_string (Texttable.render t)

let table2 () =
  section "Table 2: consequences and implications";
  let t = Texttable.create [ ("consequence", Texttable.L); ("implication", Texttable.L) ] in
  List.iter
    (fun c ->
      Texttable.row t
        [ Report.consequence_to_string c; Report.implication_to_string (Report.implication_of c) ])
    Report.
      [ Compilation_error; Relocation_error; Attachment_error; Stray_read; Missing_invocation ];
  print_string (Texttable.render t)

(* ------------------------------------------------------------------ *)
(* Figure 2 + Figure 4                                                  *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "Figure 2: the biotop timeline (replayed)";
  List.iter print_endline
    [
      "  v5.15  blk_account_io_{start,done} attachable; biotop works";
      "  v5.19  be6bfe3-era change: both become static inline wrappers -> FULL INLINE";
      "         (biotop: \"failed to attach\"; issue #4261)";
      "         first fix attempt __blk_account_io_start is itself fully inlined";
      "  v6.5   5a80bd0: block_io_{start,done} tracepoints added";
      "  v6.8   biotop (tracepoint version) works; v5.17-v6.4 remain broken";
      "  (run `dune exec examples/biotop_case_study.exe` for the live replay)";
    ]

let fig4 () =
  section "Figure 4: dependency reports for biotop and readahead";
  let find name =
    let _, m, _ =
      List.find
        (fun ((pr : T7.profile), _, _) -> pr.T7.pr_name = name)
        (Lazy.force corpus_analysis)
    in
    m
  in
  print_string (Report.render_matrix (find "biotop"));
  print_newline ();
  print_string (Report.render_matrix (find "readahead"))

(* ------------------------------------------------------------------ *)
(* Tables 7 and 8                                                       *)
(* ------------------------------------------------------------------ *)

let table7 env () =
  section "Table 7: dependency sets and mismatches of the 53-program corpus";
  let t =
    Texttable.create
      [
        ("program", Texttable.L);
        ("fnS", Texttable.R); ("a", Texttable.R); ("c", Texttable.R); ("F", Texttable.R);
        ("S", Texttable.R); ("T", Texttable.R); ("D", Texttable.R);
        ("stS", Texttable.R); ("a", Texttable.R);
        ("fldS", Texttable.R); ("a", Texttable.R); ("c", Texttable.R);
        ("tpS", Texttable.R); ("a", Texttable.R); ("c", Texttable.R);
        ("scS", Texttable.R); ("a", Texttable.R);
        ("clean", Texttable.L);
      ]
  in
  let n x = if x = 0 then "-" else string_of_int x in
  List.iter
    (fun ((pr : T7.profile), m, s) ->
      let count_fn p =
        List.length
          (List.filter
             (fun row ->
               match row.Report.r_dep with
               | Depset.Dep_func _ ->
                   List.exists (fun c -> List.exists p c.Report.c_statuses) row.Report.r_cells
               | _ -> false)
             m.Report.m_rows)
      in
      let tp_changed =
        List.length
          (List.filter
             (fun row ->
               match row.Report.r_dep with
               | Depset.Dep_tracepoint _ ->
                   List.exists
                     (fun c ->
                       List.exists
                         (function Report.St_changed _ -> true | _ -> false)
                         c.Report.c_statuses)
                     row.Report.r_cells
               | _ -> false)
             m.Report.m_rows)
      in
      Texttable.row t
        [
          pr.T7.pr_name;
          n s.Report.ms_total.Depset.n_funcs;
          n s.Report.ms_absent.Depset.n_funcs;
          n s.Report.ms_changed.Depset.n_funcs;
          n (count_fn (function Report.St_full_inline -> true | _ -> false));
          n (count_fn (function Report.St_selective_inline -> true | _ -> false));
          n (count_fn (function Report.St_transformed -> true | _ -> false));
          n (count_fn (function Report.St_duplicated -> true | _ -> false));
          n s.Report.ms_total.Depset.n_structs;
          n s.Report.ms_absent.Depset.n_structs;
          n s.Report.ms_total.Depset.n_fields;
          n s.Report.ms_absent.Depset.n_fields;
          n s.Report.ms_changed.Depset.n_fields;
          n s.Report.ms_total.Depset.n_tracepoints;
          n s.Report.ms_absent.Depset.n_tracepoints;
          n tp_changed;
          n s.Report.ms_total.Depset.n_syscalls;
          n s.Report.ms_absent.Depset.n_syscalls;
          (if Report.clean s then "yes" else "");
        ])
    (Lazy.force env.e_analysis);
  print_string (Texttable.render t);
  print_endline "(columns: S=total, a=absent somewhere, c=changed; F/S/T/D as in Fig. 4)";
  let impacted =
    List.length
      (List.filter (fun (_, _, s) -> not (Report.clean s)) (Lazy.force env.e_analysis))
  in
  Printf.printf "\n%d/53 programs impacted: %.0f%% (paper: 83%%)\n" impacted
    (Stats.percent impacted 53)

let table8 () =
  section "Table 8: summary of Table 7 (programs and unique dependencies)";
  let analysis = Lazy.force corpus_analysis in
  let t =
    Texttable.create
      [
        ("construct", Texttable.L); ("class", Texttable.L);
        ("# programs", Texttable.R); ("# uniq deps", Texttable.R); ("paper", Texttable.L);
      ]
  in
  let classify kinds klabel test paper_progs =
    let uniq = Hashtbl.create 64 in
    let progs = ref 0 in
    List.iter
      (fun (_, m, _) ->
        let hit = ref false in
        List.iter
          (fun row ->
            if kinds row.Report.r_dep then
              let affected =
                List.exists (fun c -> List.exists test c.Report.c_statuses) row.Report.r_cells
              in
              if affected then begin
                hit := true;
                Hashtbl.replace uniq row.Report.r_dep ()
              end)
          m.Report.m_rows;
        if !hit then incr progs)
      analysis;
    Texttable.row t
      [ ""; klabel; string_of_int !progs; string_of_int (Hashtbl.length uniq); paper_progs ]
  in
  let kind_header kinds label paper =
    let uniq = Hashtbl.create 64 in
    let progs = ref 0 in
    List.iter
      (fun (_, m, _) ->
        let any = ref false in
        List.iter
          (fun row ->
            if kinds row.Report.r_dep then begin
              any := true;
              Hashtbl.replace uniq row.Report.r_dep ()
            end)
          m.Report.m_rows;
        if !any then incr progs)
      analysis;
    Texttable.row t
      [ label; "total"; string_of_int !progs; string_of_int (Hashtbl.length uniq); paper ]
  in
  let is_fn = function Depset.Dep_func _ -> true | _ -> false in
  let is_st = function Depset.Dep_struct _ -> true | _ -> false in
  let is_fld = function Depset.Dep_field _ -> true | _ -> false in
  let is_tp = function Depset.Dep_tracepoint _ -> true | _ -> false in
  let is_sc = function Depset.Dep_syscall _ -> true | _ -> false in
  let absent = function Report.St_absent -> true | _ -> false in
  let changed = function Report.St_changed _ -> true | _ -> false in
  kind_header is_fn "func" "25 progs / 126 deps";
  classify is_fn "absent" absent "10 / 29";
  classify is_fn "changed" changed "14 / 31";
  classify is_fn "full inline" (function Report.St_full_inline -> true | _ -> false) "6 / 11";
  classify is_fn "selective" (function Report.St_selective_inline -> true | _ -> false) "14 / 32";
  classify is_fn "transformed" (function Report.St_transformed -> true | _ -> false) "14 / 28";
  classify is_fn "duplicated" (function Report.St_duplicated -> true | _ -> false) "2 / 3";
  Texttable.sep t;
  kind_header is_st "struct" "43 / 135";
  classify is_st "absent" absent "13 / 31";
  Texttable.sep t;
  kind_header is_fld "field" "43 / 342";
  classify is_fld "absent" absent "22 / 102";
  classify is_fld "changed" changed "10 / 13";
  Texttable.sep t;
  kind_header is_tp "tracepoint" "25 / 44";
  classify is_tp "absent" absent "10 / 15";
  classify is_tp "changed" changed "18 / 23";
  Texttable.sep t;
  kind_header is_sc "syscall" "8 / 448";
  classify is_sc "absent" absent "4 / 204";
  print_string (Texttable.render t)

(* ------------------------------------------------------------------ *)
(* §4.1 special kernel functions                                        *)
(* ------------------------------------------------------------------ *)

let special_functions () =
  section "Special kernel functions (paper §4.1): LSM hooks and kfuncs";
  let t =
    Texttable.create
      [
        ("", Texttable.L); ("LSM hooks", Texttable.R); ("kfuncs", Texttable.R);
        ("LSM +%", Texttable.R); ("LSM -%", Texttable.R);
      ]
  in
  let prev = ref None in
  List.iter
    (fun v ->
      let s = x86 v in
      let c = Func_status.special_census s in
      let lsm_names surf =
        List.filter_map
          (fun fe ->
            if Func_status.is_lsm_hook fe.Surface.fe_name then Some fe.Surface.fe_name else None)
          surf.Surface.s_funcs
      in
      let add_pct, rm_pct =
        match !prev with
        | None -> ("-", "-")
        | Some prev_s ->
            let old_l = lsm_names prev_s and new_l = lsm_names s in
            let added = List.filter (fun n -> not (List.mem n old_l)) new_l in
            let removed = List.filter (fun n -> not (List.mem n new_l)) old_l in
            ( pct (Stats.percent (List.length added) (List.length old_l)),
              pct (Stats.percent (List.length removed) (List.length old_l)) )
      in
      prev := Some s;
      Texttable.row t
        [
          Version.to_string v; string_of_int c.Func_status.sp_lsm;
          string_of_int c.Func_status.sp_kfunc; add_pct; rm_pct;
        ])
    Version.lts;
  print_string (Texttable.render t);
  print_endline "(paper: >150 LSM hooks, ~9% added / 2% removed per LTS; ~100 kfuncs by v6.8)"

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let ablation_scale () =
  section "Ablation A1: scale invariance of the calibrated rates";
  let small = Pipeline.dataset Calibration.test_scale in
  let row ds' label =
    let a = Dataset.surface ds' (Version.v 4 4) Config.x86_generic in
    let b = Dataset.surface ds' (Version.v 4 15) Config.x86_generic in
    let s = Diff.summary Diff.Across_versions a b in
    Printf.printf "  %-6s fn +%.0f%% -%.0f%% C%.0f%% | st +%.0f%% -%.0f%% C%.0f%%\n" label
      s.Diff.sum_funcs.Diff.t_added_pct s.Diff.sum_funcs.Diff.t_removed_pct
      s.Diff.sum_funcs.Diff.t_changed_pct s.Diff.sum_structs.Diff.t_added_pct
      s.Diff.sum_structs.Diff.t_removed_pct s.Diff.sum_structs.Diff.t_changed_pct
  in
  print_endline "v4.4 -> v4.15 rates at two population scales (should agree):";
  row ds "bench";
  row small "test"

let ablation_core () =
  section "Ablation A2: what CO-RE relocation absorbs";
  let base = x86 (Version.v 5 4) in
  let field_deps =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, obj) ->
           List.filter_map
             (function Depset.Dep_field (s, f) -> Some (s, f) | _ -> None)
             (Depset.of_obj obj))
         (Lazy.force corpus))
  in
  let moved = ref 0 and checked = ref 0 in
  List.iter
    (fun v ->
      let target = x86 v in
      List.iter
        (fun (sname, fname) ->
          match Surface.find_field base sname fname, Surface.find_field target sname fname with
          | Some a, Some b ->
              incr checked;
              if a.Ds_ctypes.Decl.bits_offset <> b.Ds_ctypes.Decl.bits_offset then incr moved
          | _ -> ())
        field_deps)
    Version.all;
  Printf.printf
    "  %d unique field deps x 17 versions: %d/%d present-on-both accesses sit at a\n\
    \  DIFFERENT offset than at build time (%.0f%%). Each is a silent misread without\n\
    \  CO-RE, and exactly 0 with it (the loader resolves against the target BTF).\n"
    (List.length field_deps) !moved !checked
    (Stats.percent !moved (max 1 !checked))

let ablation_composition () =
  section "Ablation A3: per-release vs LTS-composed churn";
  let d_lts = List.assoc (Version.v 4 4, Version.v 4 15) (Lazy.force lts_diffs) in
  let singles =
    List.filter
      (fun ((a, _), _) ->
        Version.compare a (Version.v 4 4) >= 0 && Version.compare a (Version.v 4 15) < 0)
      (Lazy.force release_diffs)
  in
  let sum f = List.fold_left (fun acc (_, d) -> acc + f d) 0 singles in
  Printf.printf
    "  removals 4.4->4.15: union (LTS diff) = %d, sum of per-release = %d\n\
    \  changes  4.4->4.15: union = %d, sum = %d\n\
    \  (the union is smaller: churn concentrates in hot constructs, which is why\n\
    \   LTS-level percentages sit below the naive sum of releases)\n"
    (List.length d_lts.Diff.df_funcs.Diff.d_removed)
    (sum (fun d -> List.length d.Diff.df_funcs.Diff.d_removed))
    (List.length d_lts.Diff.df_funcs.Diff.d_changed)
    (sum (fun d -> List.length d.Diff.df_funcs.Diff.d_changed))

let ablation_threshold () =
  section "Ablation A4: inline-threshold sensitivity (Figure 5)";
  print_endline "  full/selective inline fractions on v5.4/x86 as the compiler's";
  print_endline "  size threshold sweeps (the band real GCC versions move within):";
  let src = Dataset.source ds (Version.v 5 4) in
  List.iter
    (fun threshold ->
      let model = Ds_kcc.Compile.compile ~inline_threshold:threshold src Config.x86_generic in
      let s =
        Ds_util.Diag.ok (Surface.extract (Ds_elf.Elf.write (Ds_kcc.Emit.emit model)))
      in
      let c = Func_status.inline_census s in
      Printf.printf "  threshold %2d: full %4.1f%%  selective %4.1f%%\n" threshold
        (Stats.percent c.Func_status.ic_full c.Func_status.ic_total)
        (Stats.percent c.Func_status.ic_selective c.Func_status.ic_total))
    [ 10; 20; 26; 31; 36; 60 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (§3.4 performance)                         *)
(* ------------------------------------------------------------------ *)

let perf () =
  section "Performance (paper §3.4): Bechamel micro-benchmarks";
  let open Bechamel in
  let image_bytes = Ds_elf.Elf.write (Dataset.image ds (Version.v 5 4) Config.x86_generic) in
  let obj = snd (List.hd (Lazy.force corpus)) in
  let obj_bytes = Ds_bpf.Obj.write obj in
  let s44 = x86 (Version.v 4 4) and s68 = x86 (Version.v 6 8) in
  let tests =
    [
      Test.make ~name:"surface-extraction (1 image)"
        (Staged.stage (fun () -> ignore (Surface.extract image_bytes)));
      Test.make ~name:"surface-diff (LTS pair)"
        (Staged.stage (fun () -> ignore (Diff.compare_surfaces Diff.Across_versions s44 s68)));
      Test.make ~name:"depset-analysis (1 obj)"
        (Staged.stage
           (fun () -> ignore (Depset.of_obj (Ds_util.Diag.ok (Ds_bpf.Obj.read obj_bytes)))));
      (* Report.matrix directly: Pipeline.analyze would serve the cached
         matrix after the first iteration and we'd be timing the decoder *)
      Test.make ~name:"report-matrix (tracee, 21 images)"
        (Staged.stage (fun () ->
             ignore
               (Report.matrix ds ~images:Dataset.fig4_images
                  ~baseline:(Version.v 5 4, Config.x86_generic)
                  obj)));
    ]
  in
  List.iter
    (fun test ->
      let instance = Toolkit.Instance.monotonic_clock in
      let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg [ instance ] test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-42s %12.3f ms/run\n" name (est /. 1e6)
          | _ -> Printf.printf "  %-42s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* End-to-end pipeline timing: jobs=1 vs jobs=N, per stage, persisted   *)
(* as BENCH_PIPELINE.json so later PRs have a perf trajectory.          *)
(* ------------------------------------------------------------------ *)

type stage_times = {
  st_compile : float;  (** compile + emit *)
  st_parse : float;  (** ELF roundtrip + BTF/DWARF parse *)
  st_surface : float;
  st_diff : float;
  st_corpus : float;
}

let stage_total st = st.st_compile +. st.st_parse +. st.st_surface +. st.st_diff +. st.st_corpus

(* Warm stage by stage (images, then vmlinuxes, then surfaces) so each
   layer of the chain gets its own wall-clock number; the diff and corpus
   fan-outs then run on the warmed dataset. *)
let staged_run ?pool ds' c corpus_thunk =
  let force f =
    let chain (v, cfg) = ignore (f ds' v cfg) in
    match pool with
    | None -> List.iter chain Dataset.study_images
    | Some p -> ignore (Par.map_list_chunked p chain Dataset.study_images)
  in
  let (), st_compile = time (fun () -> force Dataset.image) in
  let (), st_parse = time (fun () -> force Dataset.vmlinux) in
  let (), st_surface = time (fun () -> force Dataset.surface) in
  let (), st_diff =
    time (fun () ->
        ignore (Pipeline.lts_diffs c);
        ignore (Pipeline.release_diffs c);
        ignore (Pipeline.config_diffs c))
  in
  let analysis, st_corpus = time corpus_thunk in
  ({ st_compile; st_parse; st_surface; st_diff; st_corpus }, analysis)

(* Satellite: regression guard. Parse the previous BENCH_PIPELINE.json
   (written by an earlier run of this harness) before overwriting it, so
   slowdowns against the recorded baseline are visible in the output. *)
let jfloat = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let jstr = function Json.String s -> Some s | _ -> None

let read_pipeline_baseline () =
  if not (Sys.file_exists "BENCH_PIPELINE.json") then None
  else
    match Json.of_string (read_file "BENCH_PIPELINE.json") with
    | exception _ -> None
    | j -> (
        match Json.member "stages" j with
        | Some (Json.List stages) ->
            let scale_label = Option.bind (Json.member "scale" j) jstr in
            Some
              ( scale_label,
                List.filter_map
                  (fun st ->
                    match
                      ( Option.bind (Json.member "stage" st) jstr,
                        Option.bind (Json.member "seq_s" st) jfloat,
                        Option.bind (Json.member "par_s" st) jfloat )
                    with
                    | Some name, Some s, Some p -> Some (name, (s, p))
                    | _ -> None)
                  stages )
        | _ -> None)

let regression_guard baseline seq par =
  match baseline with
  | None -> print_endline "(no BENCH_PIPELINE.json baseline; skipping regression check)"
  | Some (scale_label, stages) ->
      let this_scale = if scale = Calibration.bench_scale then "bench" else "test" in
      if scale_label <> Some this_scale then
        Printf.printf "(baseline BENCH_PIPELINE.json is at scale %s, this run is %s; delta \
                       table skipped)\n"
          (Option.value ~default:"?" scale_label)
          this_scale
      else begin
        let t =
          Texttable.create
            [
              ("stage", Texttable.L); ("baseline par (s)", Texttable.R);
              ("now par (s)", Texttable.R); ("delta", Texttable.R);
            ]
        in
        let slow = ref [] in
        let row name now_p =
          match List.assoc_opt name stages with
          | None -> ()
          | Some (_, base_p) ->
              let ratio = now_p /. Float.max 1e-9 base_p in
              if ratio > 2. && now_p -. base_p > 0.05 then slow := name :: !slow;
              Texttable.row t
                [
                  name; Printf.sprintf "%.2f" base_p; Printf.sprintf "%.2f" now_p;
                  Printf.sprintf "%+.0f%%" ((ratio -. 1.) *. 100.);
                ]
        in
        row "evolve" t_evolve;
        row "compile_emit" par.st_compile;
        row "parse" par.st_parse;
        row "surface" par.st_surface;
        row "diff" par.st_diff;
        row "corpus" par.st_corpus;
        ignore seq;
        print_endline "Per-stage delta vs the previous BENCH_PIPELINE.json:";
        print_string (Texttable.render t);
        (* a >2x slowdown against the committed baseline is a hard
           failure, not a warning: trajectory files only stay meaningful
           if regressions cannot land silently *)
        List.iter
          (fun name ->
            Printf.printf "regression guard: FAILED (stage %s is >2x slower than baseline)\n"
              name)
          (List.rev !slow);
        if !slow <> [] then exit 1
      end

(* Tentpole gate: with the active-execution budget and chunked
   submission, a pooled fan-out must cost at most 20% over plain
   List.map even when the host has a single CPU (jobs=N used to lose
   3x on 1 core to stop-the-world rendezvous between spinning
   domains). Measured on a CPU-bound task big enough to dwarf queue
   noise; best-of-3 on both sides. *)
let chunking_overhead () =
  section
    (Printf.sprintf "Par chunking: map_list_chunked overhead vs List.map (jobs=%d, %d cores)"
       par_jobs
       (Domain.recommended_domain_count ()));
  let xs = List.init 4000 (fun i -> Printf.sprintf "payload-%d-%d" i (i * i)) in
  let work s =
    let h = ref 5381 in
    for _ = 1 to 50 do
      String.iter (fun c -> h := (!h * 33) lxor Char.code c) s
    done;
    !h
  in
  let best f =
    let rec go n acc = if n = 0 then acc else go (n - 1) (Float.min acc (snd (time f))) in
    go 3 infinity
  in
  let t_seq = best (fun () -> ignore (List.map work xs)) in
  let t_chunked = best (fun () -> ignore (Par.map_list_chunked pool work xs)) in
  let t_unchunked = best (fun () -> ignore (Par.map_list pool work xs)) in
  let overhead = (t_chunked /. Float.max 1e-9 t_seq) -. 1. in
  Printf.printf "List.map %.4fs  map_list %.4fs  map_list_chunked %.4fs  (chunked overhead %+.0f%%)\n"
    t_seq t_unchunked t_chunked (overhead *. 100.);
  (* 20% plus a 5ms absolute floor so micro-jitter cannot fail the gate *)
  if t_chunked > (t_seq *. 1.2) +. 0.005 then begin
    Printf.printf "chunking gate: FAILED (map_list_chunked is %+.0f%% over List.map, budget 20%%)\n"
      (overhead *. 100.);
    exit 1
  end
  else print_endline "chunking gate: pooled fan-out within 20% of sequential: OK";
  Json.Obj
    [
      ("list_map_s", Json.Float t_seq);
      ("map_list_s", Json.Float t_unchunked);
      ("map_list_chunked_s", Json.Float t_chunked);
      ("chunked_overhead", Json.Float overhead);
    ]

let write_bench_json ~chunking seq par =
  let open Json in
  let stage name s p =
    Obj
      [
        ("stage", String name);
        ("seq_s", Float s);
        ("par_s", Float p);
        ("speedup", Float (s /. Float.max 1e-9 p));
      ]
  in
  let total_seq = t_evolve +. stage_total seq and total_par = t_evolve +. stage_total par in
  let j =
    with_trajectory "BENCH_PIPELINE.json" ~metric:total_par
      [
        ("schema", String "depsurf-bench-pipeline/2");
        ("chunking", chunking);
        ("scale", String (if scale = Calibration.bench_scale then "bench" else "test"));
        ("image_count", Int (List.length Dataset.study_images));
        ("corpus_programs", Int (List.length T7.programs));
        ("jobs_seq", Int 1);
        ("jobs_par", Int par_jobs);
        ( "stages",
          List
            [
              stage "evolve" t_evolve t_evolve;
              stage "compile_emit" seq.st_compile par.st_compile;
              stage "parse" seq.st_parse par.st_parse;
              stage "surface" seq.st_surface par.st_surface;
              stage "diff" seq.st_diff par.st_diff;
              stage "corpus" seq.st_corpus par.st_corpus;
            ] );
        ("total_seq_s", Float total_seq);
        ("total_par_s", Float total_par);
        ("speedup", Float (total_seq /. Float.max 1e-9 total_par));
      ]
  in
  write_json_file "BENCH_PIPELINE.json" j;
  total_seq, total_par

let biotop_matrix analysis =
  let _, m, _ = List.find (fun ((pr : T7.profile), _, _) -> pr.T7.pr_name = "biotop") analysis in
  Report.render_matrix m

(* cold per-stage wall clock, kept for the store-timing comparison *)
let cold_times : stage_times option ref = ref None

let pipeline_timing () =
  section (Printf.sprintf "Pipeline timing: jobs=1 vs jobs=%d (%d images)" par_jobs
             (List.length Dataset.study_images));
  let baseline = read_pipeline_baseline () in
  let chunking = chunking_overhead () in
  (* jobs=1 reference run on its own dataset, with its own throwaway
     store so both sides of the speedup column pay the same cold
     artifact writes (the jobs=N run below populates the persistent
     store; comparing it against a store-less run would book the write
     cost as pool overhead) *)
  let seq_store =
    let d = Filename.temp_file "depsurf-bench-seqcache" "" in
    Sys.remove d;
    Store.open_ ~dir:d ()
  in
  let ds1 = Pipeline.dataset ~store:seq_store scale in
  let seq, seq_analysis =
    staged_run ds1 (Pipeline.cached ds1) (fun () ->
        Ds_corpus.Corpus.analyze_all_matrices ds1 (Ds_corpus.Corpus.build_all ds1 ()))
  in
  (* capture the jobs=1 fingerprints for the determinism check now and
     drop [ds1], so the reference dataset is not live heap the timed
     parallel run has to mark on every collection *)
  let seq_matrix = biotop_matrix seq_analysis in
  let seq_surface =
    Json.to_string (Export.surface (Dataset.surface ds1 (Version.v 6 8) Config.x86_generic))
  in
  Gc.compact ();
  (* jobs=N run on the dataset every table below reads *)
  let par, par_analysis = staged_run ~pool ds cached (fun () -> Lazy.force corpus_analysis) in
  let t =
    Texttable.create
      [
        ("stage", Texttable.L); ("jobs=1 (s)", Texttable.R);
        (Printf.sprintf "jobs=%d (s)" par_jobs, Texttable.R); ("speedup", Texttable.R);
      ]
  in
  let row name s p =
    Texttable.row t
      [ name; Printf.sprintf "%.2f" s; Printf.sprintf "%.2f" p;
        Printf.sprintf "%.2fx" (s /. Float.max 1e-9 p) ]
  in
  row "evolve (sequential)" t_evolve t_evolve;
  row "compile+emit" seq.st_compile par.st_compile;
  row "parse" seq.st_parse par.st_parse;
  row "surface" seq.st_surface par.st_surface;
  row "diff" seq.st_diff par.st_diff;
  row "corpus" seq.st_corpus par.st_corpus;
  Texttable.sep t;
  let total_seq, total_par = write_bench_json ~chunking seq par in
  row "total" total_seq total_par;
  print_string (Texttable.render t);
  print_endline "(written to BENCH_PIPELINE.json)";
  regression_guard baseline seq par;
  cold_times := Some par;
  (* tentpole gate: with the execution budget, jobs=N must never cost a
     stage more than 20% over jobs=1 — even on a single CPU, where the
     pool used to lose 3x to domain rendezvous. The 50ms absolute slack
     keeps sub-100ms stages from tripping the gate on scheduler noise. *)
  let stage_gate = ref [] in
  List.iter
    (fun (name, s, p) ->
      if s /. Float.max 1e-9 p < 0.8 && p -. s > 0.05 then stage_gate := name :: !stage_gate)
    [
      ("compile_emit", seq.st_compile, par.st_compile);
      ("parse", seq.st_parse, par.st_parse);
      ("surface", seq.st_surface, par.st_surface);
      ("diff", seq.st_diff, par.st_diff);
      ("corpus", seq.st_corpus, par.st_corpus);
    ];
  if !stage_gate <> [] then begin
    List.iter
      (fun name ->
        Printf.printf "par overhead gate: FAILED (stage %s speedup < 0.8 at jobs=%d)\n" name
          par_jobs)
      (List.rev !stage_gate);
    exit 1
  end
  else
    Printf.printf "par overhead gate: every stage within 20%% of jobs=1 at jobs=%d: OK\n"
      par_jobs;
  (* determinism contract: the parallel run must be byte-identical *)
  let par_surface = Json.to_string (Export.surface (x86 (Version.v 6 8))) in
  if
    String.equal seq_matrix (biotop_matrix par_analysis)
    && String.equal seq_surface par_surface
  then print_endline "determinism check: jobs=1 and parallel outputs byte-identical: OK"
  else begin
    print_endline "determinism check: FAILED (parallel output differs from jobs=1)";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Robustness: lenient-ingestion overhead + fault survival              *)
(* ------------------------------------------------------------------ *)

module Faultgen = Ds_faultgen.Faultgen

let robustness () =
  section "Robustness: lenient ingestion overhead and mutation survival";
  let img = Dataset.image ds (Version.v 5 4) Config.x86_generic in
  let image_bytes = Ds_elf.Elf.write img in
  let sec name =
    match Ds_elf.Elf.find_section img name with Some s -> s.Ds_elf.Elf.sec_data | None -> ""
  in
  (* clean-image overhead: the lenient path must cost no more than the
     strict path it shadows (budget: 5%) *)
  let reps = 20 in
  let avg f =
    Stats.mean
      (List.init reps (fun _ ->
           let (), dt = time (fun () -> ignore (f ())) in
           dt))
  in
  (* interleave so neither side soaks up a GC bias *)
  let t_strict0 = avg (fun () -> Surface.extract image_bytes) in
  let t_lenient0 = avg (fun () -> Surface.extract ~mode:`Lenient image_bytes) in
  let t_strict = Float.min t_strict0 (avg (fun () -> Surface.extract image_bytes)) in
  let t_lenient =
    Float.min t_lenient0 (avg (fun () -> Surface.extract ~mode:`Lenient image_bytes))
  in
  let overhead_pct = ((t_lenient /. Float.max 1e-9 t_strict) -. 1.) *. 100. in
  Printf.printf "  clean-image extraction: strict %.2f ms, lenient %.2f ms (%+.1f%%)\n"
    (t_strict *. 1000.) (t_lenient *. 1000.) overhead_pct;
  if overhead_pct > 5. then
    Printf.printf "WARNING: lenient ingestion %.1f%% slower than strict on clean images (>5%% budget)\n"
      overhead_pct;
  (* clean images must come out byte-identical with zero diagnostics *)
  let strict_json =
    Json.to_string (Export.surface (Ds_util.Diag.ok (Surface.extract image_bytes)))
  in
  let lenient_s = Ds_util.Diag.ok (Surface.extract ~mode:`Lenient image_bytes) in
  let lenient_json = Json.to_string (Export.surface lenient_s) in
  let identical = String.equal strict_json lenient_json && Surface.health lenient_s = [] in
  if identical then
    print_endline "  clean-image check: lenient surface byte-identical to strict, zero diagnostics: OK"
  else print_endline "  clean-image check: FAILED (lenient differs from strict on a clean image)";
  (* seeded mutation survival, per parser and end-to-end *)
  let seed = Dataset.seed ds in
  let dwarf_abbrev = sec ".debug_abbrev" in
  let obj_bytes = Ds_bpf.Obj.write (snd (List.hd (Lazy.force corpus))) in
  let pipeline_count = if scale = Calibration.bench_scale then 100 else 500 in
  let surveys =
    [
      ( "elf", 500, image_bytes,
        fun bytes -> Ds_util.Diag.diags (Ds_elf.Elf.read ~mode:`Lenient bytes) );
      ( "btf", 500, sec ".BTF",
        fun bytes -> Ds_util.Diag.diags (Ds_btf.Btf.decode ~mode:`Lenient bytes) );
      ( "dwarf", 500, sec ".debug_info",
        fun bytes ->
          Ds_util.Diag.diags
            (Ds_dwarf.Info.decode ~mode:`Lenient ~info:bytes ~abbrev:dwarf_abbrev ()) );
      ( "bpf_obj", 500, obj_bytes,
        fun bytes -> Ds_util.Diag.diags (Ds_bpf.Obj.read ~mode:`Lenient bytes) );
      ( "pipeline", pipeline_count, image_bytes,
        fun bytes -> Surface.health (Ds_util.Diag.ok (Surface.extract ~mode:`Lenient bytes)) );
    ]
  in
  let t =
    Texttable.create
      [
        ("parser", Texttable.L); ("mutations", Texttable.R); ("clean", Texttable.R);
        ("degraded", Texttable.R); ("fatal", Texttable.R); ("crashed", Texttable.R);
      ]
  in
  let crashed_total = ref 0 in
  let results =
    List.map
      (fun (name, mut_count, bytes, health) ->
        let muts = Faultgen.mutations ~count:mut_count ~seed bytes in
        let tally, crashed = Faultgen.survey health muts in
        List.iter
          (fun (mname, e) -> Printf.printf "  CRASH %s %s: %s\n" name mname e)
          crashed;
        crashed_total := !crashed_total + tally.Faultgen.n_crashed;
        Texttable.row t
          [
            name;
            string_of_int tally.Faultgen.n_total; string_of_int tally.Faultgen.n_clean;
            string_of_int tally.Faultgen.n_degraded; string_of_int tally.Faultgen.n_fatal;
            string_of_int tally.Faultgen.n_crashed;
          ];
        (name, tally))
      surveys
  in
  print_string (Texttable.render t);
  let open Json in
  let j =
    with_trajectory "BENCH_ROBUST.json" ~metric:overhead_pct
      [
        ("schema", String "depsurf-bench-robust/1");
        ("scale", String (if scale = Calibration.bench_scale then "bench" else "test"));
        ("strict_ms", Float (t_strict *. 1000.));
        ("lenient_ms", Float (t_lenient *. 1000.));
        ("overhead_pct", Float overhead_pct);
        ("clean_identical", Bool identical);
        ( "surveys",
          List
            (List.map
               (fun (name, (ta : Faultgen.tally)) ->
                 Obj
                   [
                     ("parser", String name);
                     ("total", Int ta.Faultgen.n_total);
                     ("clean", Int ta.Faultgen.n_clean);
                     ("degraded", Int ta.Faultgen.n_degraded);
                     ("fatal", Int ta.Faultgen.n_fatal);
                     ("crashed", Int ta.Faultgen.n_crashed);
                   ])
               results) );
      ]
  in
  write_json_file "BENCH_ROBUST.json" j;
  print_endline "(written to BENCH_ROBUST.json)";
  if !crashed_total > 0 || not identical then begin
    Printf.printf "robustness check: FAILED (%d uncaught exceptions)\n" !crashed_total;
    exit 1
  end
  else print_endline "robustness check: every mutation survived with typed diagnostics: OK"

(* ------------------------------------------------------------------ *)
(* Tracing: span overhead, enabled vs disabled                          *)
(* ------------------------------------------------------------------ *)

module Trace = Ds_trace.Trace

let tracing () =
  section "Tracing: span overhead (enabled vs disabled)";
  let img = Dataset.image ds (Version.v 5 4) Config.x86_generic in
  let image_bytes = Ds_elf.Elf.write img in
  (* the traced workload: a full lenient extraction, which crosses every
     instrumented parser (elf, dwarf, btf, vmlinux, surface) *)
  let workload () = Surface.extract ~mode:`Lenient image_bytes in
  (* Interleaved single runs: the process heap drifts across a long
     bench run (major-GC state moves extraction times by 10-20% between
     sections), so a before/after split would measure the drift, not
     the tracing. Alternating run-by-run gives both sides the same
     noise environment. *)
  let time1 f =
    let (), dt = time (fun () -> ignore (f ())) in
    dt
  in
  let run_on () =
    Trace.enable ();
    let d = time1 workload in
    Trace.disable ();
    d
  in
  Gc.compact ();
  let reps = 20 in
  let offs = ref [] and ons = ref [] in
  for i = 0 to (2 * reps) - 1 do
    if i mod 2 = 0 then offs := time1 workload :: !offs
    else ons := run_on () :: !ons
  done;
  (* min, not mean: GC and scheduler noise is strictly additive, so the
     fastest run of each side is the honest per-run cost and the ratio
     of minima isolates what tracing itself adds *)
  let t_off = List.fold_left Float.min infinity !offs in
  let t_on = List.fold_left Float.min infinity !ons in
  let sps = Trace.spans () in
  let dropped = Trace.drops () in
  let overhead_pct = ((t_on /. Float.max 1e-9 t_off) -. 1.) *. 100. in
  Printf.printf "  extraction: disabled %.2f ms, enabled %.2f ms (min-of-%d %+.1f%%)\n"
    (t_off *. 1000.) (t_on *. 1000.) reps overhead_pct;
  Printf.printf "  spans recorded: %d (dropped %d)\n" (List.length sps) dropped;
  let nested_ok = Trace.well_nested sps = None in
  if not nested_ok then print_endline "  tracing check: FAILED (spans not well nested)";
  let names = List.sort_uniq compare (List.map (fun sp -> sp.Trace.sp_name) sps) in
  let expect = [ "btf.decode"; "elf.read"; "surface.extract" ] in
  let missing = List.filter (fun n -> not (List.mem n names)) expect in
  if missing <> [] then
    Printf.printf "  tracing check: FAILED (no %s spans recorded)\n"
      (String.concat ", " missing);
  Trace.clear ();
  let open Json in
  let j =
    with_trajectory "BENCH_TRACE.json" ~metric:overhead_pct
      [
        ("schema", String "depsurf-bench-trace/1");
        ("scale", String (if scale = Calibration.bench_scale then "bench" else "test"));
        ("disabled_ms", Float (t_off *. 1000.));
        ("enabled_ms", Float (t_on *. 1000.));
        ("overhead_pct", Float overhead_pct);
        ("spans", Int (List.length sps));
        ("dropped", Int dropped);
        ("span_names", List (List.map (fun n2 -> String n2) names));
      ]
  in
  write_json_file "BENCH_TRACE.json" j;
  print_endline "(written to BENCH_TRACE.json)";
  if overhead_pct > 5. || not nested_ok || missing <> [] then begin
    Printf.printf "tracing check: FAILED (overhead %+.1f%%, budget 5%%)\n" overhead_pct;
    exit 1
  end
  else
    Printf.printf
      "tracing check: enabled tracing cost %+.1f%% (< 5%% budget), spans well nested: OK\n"
      overhead_pct

(* ------------------------------------------------------------------ *)
(* Store timing: cold vs warm                                           *)
(* ------------------------------------------------------------------ *)

let write_store_json ~warm ~(wstats : Store.counters) ~cold_total ~warm_total ~identical =
  let open Json in
  let es = Store.entries ~dir:cache_dir in
  let j =
    with_trajectory "BENCH_STORE.json" ~metric:warm_total
      [
        ("schema", String "depsurf-bench-store/1");
        ("scale", String (if scale = Calibration.bench_scale then "bench" else "test"));
        ("image_count", Int (List.length Dataset.study_images));
        ("entries", Int (List.length es));
        ("bytes", Int (List.fold_left (fun a e -> a + e.Store.e_bytes) 0 es));
        ("cold_total_s", Float cold_total);
        ( "warm",
          Obj
            [
              ("evolve_s", Float (List.assoc "evolve" warm));
              ("surface_s", Float (List.assoc "surface" warm));
              ("diff_s", Float (List.assoc "diff" warm));
              ("corpus_s", Float (List.assoc "corpus" warm));
              ("total_s", Float warm_total);
              ("hits", Int wstats.Store.c_hits);
              ("misses", Int wstats.Store.c_misses);
              ("evictions", Int wstats.Store.c_evictions);
              ("bytes_read", Int wstats.Store.c_bytes_read);
            ] );
        ("speedup", Float (cold_total /. Float.max 1e-9 warm_total));
        ("tables_identical", Bool identical);
      ]
  in
  write_json_file "BENCH_STORE.json" j

let store_timing () =
  section "Store timing: cold vs warm (persistent artifact cache)";
  Store.save_counters store;
  let cold = Store.stats store in
  (* re-render the cold tables from the already-memoized main dataset;
     table1/3/7 are pure views, so this equals what was printed above *)
  let cold_tables = capture (fun () -> table1 env (); table3 env (); table7 env ()) in
  (* a fresh handle + dataset replays what a second process would do over
     the same cache directory *)
  let store_w = Store.open_ ~dir:cache_dir () in
  let ds_w, w_evolve = time (fun () -> Pipeline.dataset ~store:store_w scale) in
  let cached_w = Pipeline.cached ds_w in
  let (), w_surface =
    time (fun () ->
        List.iter (fun (v, cfg) -> ignore (Dataset.surface ds_w v cfg)) Dataset.study_images)
  in
  let (), w_diff =
    time (fun () ->
        ignore (Pipeline.lts_diffs cached_w);
        ignore (Pipeline.release_diffs cached_w);
        ignore (Pipeline.config_diffs cached_w))
  in
  let analysis_w, w_corpus =
    time (fun () ->
        Ds_corpus.Corpus.analyze_all_matrices ds_w (Ds_corpus.Corpus.build_all ds_w ()))
  in
  let env_w = { e_ds = ds_w; e_cached = cached_w; e_analysis = lazy analysis_w } in
  let warm_tables = capture (fun () -> table1 env_w (); table3 env_w (); table7 env_w ()) in
  let wstats = Store.stats store_w in
  Store.save_counters store_w;
  let cold_total =
    t_evolve +. match !cold_times with Some c -> stage_total c | None -> 0.
  in
  let warm_total = w_evolve +. w_surface +. w_diff +. w_corpus in
  let t =
    Texttable.create
      [ ("stage", Texttable.L); ("cold (s)", Texttable.R); ("warm (s)", Texttable.R) ]
  in
  let row name c w =
    Texttable.row t [ name; Printf.sprintf "%.2f" c; Printf.sprintf "%.2f" w ]
  in
  row "evolve" t_evolve w_evolve;
  (match !cold_times with
  | Some c ->
      row "compile+parse+surface" (c.st_compile +. c.st_parse +. c.st_surface) w_surface;
      row "diff" c.st_diff w_diff;
      row "corpus" c.st_corpus w_corpus
  | None -> ());
  Texttable.sep t;
  row "total" cold_total warm_total;
  print_string (Texttable.render t);
  Printf.printf "warm store counters: hits %d misses %d evictions %d bytes_read %d\n"
    wstats.Store.c_hits wstats.Store.c_misses wstats.Store.c_evictions wstats.Store.c_bytes_read;
  Printf.printf "cold store counters: misses %d writes %d bytes_written %d\n"
    cold.Store.c_misses cold.Store.c_writes cold.Store.c_bytes_written;
  Printf.printf "warm kernel compiles: %d (cold: %d)\n" (Dataset.compile_count ds_w)
    (Dataset.compile_count ds);
  let identical = String.equal cold_tables warm_tables in
  write_store_json
    ~warm:
      [ ("evolve", w_evolve); ("surface", w_surface); ("diff", w_diff); ("corpus", w_corpus) ]
    ~wstats ~cold_total ~warm_total ~identical;
  print_endline "(written to BENCH_STORE.json)";
  if identical && Dataset.compile_count ds_w = 0 && wstats.Store.c_misses = 0 then
    print_endline
      "store check: warm run hit every artifact (0 compiles, 0 misses); Tables 1/3/7 \
       byte-identical: OK"
  else begin
    if not identical then
      print_endline "store check: FAILED (warm tables differ from cold tables)";
    if Dataset.compile_count ds_w <> 0 then
      Printf.printf "store check: FAILED (%d image compiles on the warm run)\n"
        (Dataset.compile_count ds_w);
    if wstats.Store.c_misses <> 0 then
      Printf.printf "store check: FAILED (%d store misses on the warm run)\n"
        wstats.Store.c_misses;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Query service: cold vs warm latency under concurrent load            *)
(* ------------------------------------------------------------------ *)

module Serve = Ds_serve.Serve

(* pull an int out of a nested JSON document; 0 when absent *)
let jint j path =
  let rec go j = function
    | [] -> ( match j with Json.Int n -> n | Json.Float f -> int_of_float f | _ -> 0)
    | k :: rest -> ( match Json.member k j with Some j' -> go j' rest | None -> 0)
  in
  go j path

let rec adjacent_pairs = function
  | a :: (b :: _ as tl) -> (a, b) :: adjacent_pairs tl
  | _ -> []

(* previous committed BENCH_SERVE.json, for the serve regression guard *)
let read_serve_baseline () =
  if not (Sys.file_exists "BENCH_SERVE.json") then None
  else
    match Json.of_string (read_file "BENCH_SERVE.json") with
    | exception _ -> None
    | j -> (
        match
          (Option.bind (Json.member "scale" j) jstr, Option.bind (Json.member "warm_p95_ms" j) jfloat)
        with
        | Some sc, Some p95 -> Some (sc, p95)
        | _ -> None)

let serve_bench () =
  section "Query service: cold vs warm latency under concurrent load";
  let baseline = read_serve_baseline () in
  (* a private dataset + cache dir so the cold phase is honestly cold:
     nothing the main bench computed leaks into the server's tiers *)
  let sdir =
    let f = Filename.temp_file "depsurf-bench-serve" "" in
    Sys.remove f;
    f
  in
  let sstore = Store.open_ ~dir:sdir () in
  let sds = Pipeline.dataset ~store:sstore scale in
  let srv = Serve.create ~ds:sds ~pool () in
  let sock = Filename.temp_file "depsurf-bench-serve" ".sock" in
  Sys.remove sock;
  let h = Serve.start srv (Serve.Unix_sock sock) in
  let addr = Serve.bound_addr h in
  let failed = Atomic.make false in
  let get path =
    let t0 = now () in
    let status, _body = Serve.Client.request addr ~meth:"GET" ~path in
    if status <> 200 then begin
      Printf.printf "serve check: FAILED (GET %s -> %d)\n" path status;
      Atomic.set failed true
    end;
    (now () -. t0) *. 1000.
  in
  (* the counters that must not move during a warm phase *)
  let snapshot () =
    let status, body = Serve.Client.request addr ~meth:"GET" ~path:"/metrics" in
    if status <> 200 then failwith "metrics endpoint failed";
    let j = Api.data (Json.of_string body) in
    ( jint j [ "compiles" ],
      jint j [ "store"; "misses" ],
      jint j [ "counters"; "index.fill.surface" ],
      jint j [ "counters"; "index.fill.diff" ] )
  in
  (* conditional GET: send the validator back, demand an empty 304 *)
  let get_cond (path, etag) =
    let t0 = now () in
    let status, _, body =
      Serve.Client.request_full ~headers:[ ("If-None-Match", etag) ] addr ~meth:"GET" ~path
    in
    if status <> 304 || body <> "" then begin
      Printf.printf "serve check: FAILED (conditional GET %s -> %d with %d body bytes)\n" path
        status (String.length body);
      Atomic.set failed true
    end;
    (now () -. t0) *. 1000.
  in
  let etag_of path =
    let _, hdrs, _ = Serve.Client.request_full addr ~meth:"GET" ~path in
    match List.assoc_opt "etag" hdrs with
    | Some e -> e
    | None ->
        Printf.printf "serve check: FAILED (GET %s carries no ETag)\n" path;
        Atomic.set failed true;
        "\"missing\""
  in
  let run_clients clients reqs ~f =
    let doms = List.init clients (fun _ -> Domain.spawn (fun () -> List.map f reqs)) in
    List.concat_map Domain.join doms
  in
  let warm_reps = 20 in
  let t =
    Texttable.create
      [
        ("clients", Texttable.R); ("phase", Texttable.L); ("reqs", Texttable.R);
        ("mean ms", Texttable.R); ("p50 ms", Texttable.R); ("p95 ms", Texttable.R);
        ("p99 ms", Texttable.R); ("max ms", Texttable.R);
      ]
  in
  let reservoir_of samples =
    let r = Stats.Reservoir.create () in
    List.iter (Stats.Reservoir.add r) samples;
    r
  in
  let phase_cells r =
    let q p = Stats.Reservoir.quantile r p in
    ( Stats.Reservoir.count r, Stats.Reservoir.mean r, q 0.5, q 0.95, q 0.99,
      Stats.Reservoir.max_seen r )
  in
  let phase_row clients phase r =
    let n, mean, p50, p95, p99 , mx = phase_cells r in
    Texttable.row t
      [
        string_of_int clients; phase; string_of_int n;
        Printf.sprintf "%.2f" mean; Printf.sprintf "%.2f" p50; Printf.sprintf "%.2f" p95;
        Printf.sprintf "%.2f" p99; Printf.sprintf "%.2f" mx;
      ]
  in
  let phase_json r =
    let n, mean, p50, p95, p99, mx = phase_cells r in
    Json.Obj
      [
        ("requests", Json.Int n); ("mean_ms", Json.Float mean);
        ("p50_ms", Json.Float p50); ("p95_ms", Json.Float p95);
        ("p99_ms", Json.Float p99); ("max_ms", Json.Float mx);
      ]
  in
  (* response-cache identity probe, on an image outside every level's
     slice: the first (rendered, cache-miss) response and the second
     (cache-hit) response must be byte-identical and share one ETag *)
  let expected_fills = ref (0, 0) in
  (match List.nth_opt Dataset.study_images 6 with
  | None -> ()
  | Some img ->
      let path = "/surface/" ^ Serve.image_name img in
      let state hdrs = Option.value ~default:"?" (List.assoc_opt "x-depsurf-cache" hdrs) in
      let s1, h1, b1 = Serve.Client.request_full addr ~meth:"GET" ~path in
      let s2, h2, b2 = Serve.Client.request_full addr ~meth:"GET" ~path in
      (* the probe hydrated one surface; the per-level single-flight
         accounting below starts from that *)
      expected_fills := (1, 0);
      if
        s1 <> 200 || s2 <> 200 || state h1 <> "miss" || state h2 <> "hit"
        || not (String.equal b1 b2)
        || List.assoc_opt "etag" h1 <> List.assoc_opt "etag" h2
        || List.assoc_opt "etag" h1 = None
      then begin
        Printf.printf
          "serve check: FAILED (cache identity: %d/%s then %d/%s, bodies %s, etags %s)\n" s1
          (state h1) s2 (state h2)
          (if String.equal b1 b2 then "equal" else "DIFFER")
          (if List.assoc_opt "etag" h1 = List.assoc_opt "etag" h2 then "equal" else "DIFFER");
        Atomic.set failed true
      end
      else
        print_endline
          "serve check: cached response byte-identical to the rendered one (miss -> hit): OK");
  let warm_all = ref [] in
  let cond_1client = ref [] in
  let levels_json =
    List.mapi
      (fun li clients ->
        (* each level queries its own disjoint slice of the study matrix,
           so its cold phase never rides an earlier level's hot index *)
        let images =
          List.filteri (fun i _ -> i >= li * 3 && i < (li + 1) * 3) Dataset.study_images
        in
        let names = List.map Serve.image_name images in
        let reqs =
          List.map (fun n -> "/surface/" ^ n) names
          @ List.map (fun (a, b) -> "/diff/" ^ a ^ "/" ^ b) (adjacent_pairs names)
        in
        let cold = run_clients clients reqs ~f:get in
        (* every client raced the same uncached keys: single-flight means
           each key was computed exactly once, no matter the concurrency *)
        let exp_s, exp_d = !expected_fills in
        let exp_s = exp_s + List.length names
        and exp_d = exp_d + List.length (adjacent_pairs names) in
        expected_fills := (exp_s, exp_d);
        let c0, m0, fs0, fd0 = snapshot () in
        if fs0 <> exp_s || fd0 <> exp_d then begin
          Printf.printf
            "serve check: FAILED (single-flight: %d surface / %d diff fills, expected %d / %d)\n"
            fs0 fd0 exp_s exp_d;
          Atomic.set failed true
        end;
        let warm =
          run_clients clients (List.concat (List.init warm_reps (fun _ -> reqs))) ~f:get
        in
        let c1, m1, fs1, fd1 = snapshot () in
        if c1 <> c0 || m1 <> m0 || fs1 <> fs0 || fd1 <> fd0 then begin
          Printf.printf
            "serve check: FAILED (warm phase touched the slow tiers: +%d compiles, +%d store \
             misses, +%d index fills)\n"
            (c1 - c0) (m1 - m0) (fs1 - fs0 + fd1 - fd0);
          Atomic.set failed true
        end;
        (* conditional warm phase: clients that already hold the
           representation revalidate with If-None-Match and get an
           empty-bodied 304 — the steady state of a polling consumer,
           and the latency the warm gate is about *)
        let etags = List.map (fun p -> (p, etag_of p)) reqs in
        let cond =
          run_clients clients (List.concat (List.init warm_reps (fun _ -> etags))) ~f:get_cond
        in
        let c2, m2, fs2, fd2 = snapshot () in
        if c2 <> c1 || m2 <> m1 || fs2 <> fs1 || fd2 <> fd1 then begin
          Printf.printf
            "serve check: FAILED (conditional phase touched the slow tiers: +%d compiles, +%d \
             store misses, +%d index fills)\n"
            (c2 - c1) (m2 - m1) (fs2 - fs1 + fd2 - fd1);
          Atomic.set failed true
        end;
        warm_all := warm @ !warm_all;
        if clients = 1 then cond_1client := cond @ !cond_1client;
        let rc = reservoir_of cold and rw = reservoir_of warm and rn = reservoir_of cond in
        phase_row clients "cold" rc;
        phase_row clients "warm full" rw;
        phase_row clients "warm 304" rn;
        Texttable.sep t;
        Json.Obj
          [
            ("clients", Json.Int clients);
            ("distinct_requests", Json.Int (List.length reqs));
            ("warm_reps", Json.Int warm_reps);
            ("cold", phase_json rc);
            ("warm_full", phase_json rw);
            ("warm_conditional", phase_json rn);
            ("warm_compile_delta", Json.Int (c2 - c0));
            ("warm_store_miss_delta", Json.Int (m2 - m0));
          ])
      [ 1; 4 ]
  in
  Serve.stop h;
  print_string (Texttable.render t);
  (* ---- overload: 4x the admission capacity -------------------------- *)
  (* a deliberately small server (4 slots) under 16 hammering clients:
     every answer must be a 200 or a 503-with-Retry-After (no other
     5xx, no dropped connections), shedding must actually engage, the
     accepted requests must keep their tail, no fd may leak, and the
     final drain must abandon nothing *)
  let overload_json =
    let limits = { (Serve.default_limits ()) with Serve.li_max_inflight = 4 } in
    let srv2 = Serve.create ~limits ~ds:sds ~pool () in
    let sock2 = Filename.temp_file "depsurf-bench-overload" ".sock" in
    Sys.remove sock2;
    let h2 = Serve.start srv2 (Serve.Unix_sock sock2) in
    let addr2 = Serve.bound_addr h2 in
    (* warm the route so the burst measures admission, not hydration *)
    (match Serve.Client.request addr2 ~meth:"GET" ~path:"/healthz" with
    | 200, _ -> ()
    | st, _ -> failwith (Printf.sprintf "overload warmup: healthz -> %d" st));
    let fd_before = Ds_util.Fdcount.count () in
    let clients = 4 * limits.Serve.li_max_inflight and per_client = 25 in
    let ok = Atomic.make 0 and shed = Atomic.make 0 and bad = Atomic.make 0 in
    let doms =
      List.init clients (fun _ ->
          Domain.spawn (fun () ->
              for _ = 1 to per_client do
                match Serve.Client.request_full addr2 ~meth:"GET" ~path:"/healthz" with
                | 200, _, _ -> Atomic.incr ok
                | 503, hdrs, _ ->
                    if List.assoc_opt "retry-after" hdrs = None then Atomic.incr bad
                    else Atomic.incr shed
                | _, _, _ -> Atomic.incr bad
                | exception _ -> Atomic.incr bad
              done))
    in
    List.iter Domain.join doms;
    let ok = Atomic.get ok and shed = Atomic.get shed and bad = Atomic.get bad in
    if ok + shed + bad <> clients * per_client then begin
      Printf.printf "serve overload: FAILED (%d answers for %d requests)\n" (ok + shed + bad)
        (clients * per_client);
      Atomic.set failed true
    end;
    if bad > 0 then begin
      Printf.printf
        "serve overload: FAILED (%d responses were neither 200 nor 503-with-Retry-After)\n" bad;
      Atomic.set failed true
    end;
    if ok = 0 || shed = 0 then begin
      Printf.printf
        "serve overload: FAILED (degenerate mix: %d served, %d shed — overload must both \
         shed and keep serving)\n"
        ok shed;
      Atomic.set failed true
    end;
    (* server-side tail of the accepted requests (client-side numbers
       would fold in our own scheduler noise): /metrics .latency_ms *)
    let _, mbody = Serve.Client.request addr2 ~meth:"GET" ~path:"/metrics" in
    let mj = Api.data (Json.of_string mbody) in
    let accepted_p95 =
      match
        Option.bind (Json.member "latency_ms" mj) (fun l ->
            Option.bind (Json.member "/healthz" l) (fun h ->
                Option.bind (Json.member "p95" h) jfloat))
      with
      | Some f -> f
      | None -> nan
    in
    if not (accepted_p95 < 5.) then begin
      Printf.printf "serve overload: FAILED (accepted p95 = %.2fms, budget 5ms)\n" accepted_p95;
      Atomic.set failed true
    end;
    let sheds_metric = jint mj [ "counters"; "overload.shed" ] in
    (* drain with one request mid-flight: the burst is over, so a lone
       client keeps issuing requests while we stop — every answer it
       already holds must be complete, and the server must abandon
       nothing *)
    let drained_ok = Atomic.make 0 and drained_dropped = Atomic.make 0 in
    let late_client =
      Domain.spawn (fun () ->
          let rec go n =
            if n = 0 then ()
            else
              match Serve.Client.request addr2 ~meth:"GET" ~path:"/healthz" with
              | 200, _ -> Atomic.incr drained_ok; go (n - 1)
              | 503, _ -> go (n - 1)
              | _, _ -> Atomic.incr drained_dropped
              | exception _ ->
                  (* connect refused after the listener closed: not a
                     drop, the request was never accepted *)
                  ()
          in
          go 200)
    in
    Unix.sleepf 0.05;
    Serve.stop h2;
    Domain.join late_client;
    if Atomic.get drained_dropped > 0 then begin
      Printf.printf "serve overload: FAILED (%d accepted requests dropped by the drain)\n"
        (Atomic.get drained_dropped);
      Atomic.set failed true
    end;
    let abandoned = Ds_util.Metrics.counter (Serve.metrics srv2) "drain.abandoned" in
    if abandoned > 0 then begin
      Printf.printf "serve overload: FAILED (drain abandoned %d connections)\n" abandoned;
      Atomic.set failed true
    end;
    let fd_after = Ds_util.Fdcount.count () in
    if not (Ds_util.Fdcount.no_growth ~slack:2 ~before:fd_before ~after:fd_after ()) then begin
      Printf.printf "serve overload: FAILED (fd growth %d -> %d)\n" fd_before fd_after;
      Atomic.set failed true
    end;
    if not (Atomic.get failed) then
      Printf.printf
        "serve overload gate: %d served / %d shed of %d at 4x capacity, accepted p95 %.2fms, \
         fd %d -> %d, drain clean: OK\n"
        ok shed (clients * per_client) accepted_p95 fd_before fd_after;
    Json.Obj
      [
        ("clients", Json.Int clients);
        ("max_inflight", Json.Int limits.Serve.li_max_inflight);
        ("requests", Json.Int (clients * per_client));
        ("served", Json.Int ok);
        ("shed", Json.Int shed);
        ("shed_metric", Json.Int sheds_metric);
        ("accepted_p95_ms", Json.Float accepted_p95);
        ("drain_abandoned", Json.Int abandoned);
        ("drained_late_ok", Json.Int (Atomic.get drained_ok));
      ]
  in
  let rw_all = reservoir_of !warm_all in
  let _, _, _, warm_full_p95, _, _ = phase_cells rw_all in
  (* the headline warm metric: conditional revalidation at 1 client *)
  let rn1 = reservoir_of !cond_1client in
  let _, _, _, warm_p95, _, _ = phase_cells rn1 in
  let j =
    with_trajectory "BENCH_SERVE.json" ~metric:warm_p95
      [
        ("schema", Json.String "depsurf-bench-serve/2");
        ("scale", Json.String (if scale = Calibration.bench_scale then "bench" else "test"));
        ("warm_p95_ms", Json.Float warm_p95);
        ("warm_full_p95_ms", Json.Float warm_full_p95);
        ("levels", Json.List levels_json);
        ("overload", overload_json);
      ]
  in
  write_json_file "BENCH_SERVE.json" j;
  print_endline "(written to BENCH_SERVE.json)";
  (* hard gate: a warm conditional round-trip must be sub-5ms at 1
     client — the response cache plus 304 leaves only socket plumbing *)
  if warm_p95 >= 5. then begin
    Printf.printf "serve warm gate: FAILED (1-client conditional p95 = %.2fms, budget 5ms)\n"
      warm_p95;
    Atomic.set failed true
  end
  else Printf.printf "serve warm gate: 1-client conditional p95 = %.2fms < 5ms: OK\n" warm_p95;
  (* regression guard against the committed trajectory, like the
     pipeline's: >2x slower (and >1ms absolute) is a hard failure *)
  (match baseline with
  | None -> print_endline "(no BENCH_SERVE.json baseline; skipping regression check)"
  | Some (base_scale, base_p95) ->
      let this_scale = if scale = Calibration.bench_scale then "bench" else "test" in
      if base_scale <> this_scale then
        Printf.printf "(baseline BENCH_SERVE.json is at scale %s, this run is %s; regression \
                       check skipped)\n"
          base_scale this_scale
      else if warm_p95 > 2. *. base_p95 && warm_p95 -. base_p95 > 1. then begin
        Printf.printf
          "serve regression guard: FAILED (warm p95 %.2fms is >2x the baseline %.2fms)\n"
          warm_p95 base_p95;
        Atomic.set failed true
      end
      else
        Printf.printf "serve regression guard: warm p95 %.2fms vs baseline %.2fms: OK\n" warm_p95
          base_p95);
  if Atomic.get failed then begin
    print_endline "serve check: FAILED";
    exit 1
  end
  else
    print_endline
      "serve check: warm phases answered every repeat with 0 compiles, 0 store misses and 0 \
       index fills; single-flight hydration held under concurrency: OK"

(* ------------------------------------------------------------------ *)
(* Dependency graph: build determinism, warm load, closure latency,    *)
(* blast radius over the corpus                                        *)
(* ------------------------------------------------------------------ *)

module Graph = Ds_graph.Graph
module Blast = Ds_graph.Blast

let graph_bench () =
  section "Dependency graph: build, warm load, reverse-closure latency, blast radius";
  let failed = Atomic.make false in
  let v = Version.v 5 4 and cfg = Config.x86_generic in
  let s = x86 v in
  (* determinism: the pooled chunked build must produce the same bytes
     as the sequential one, whatever the chunking *)
  let g_seq, t_seq = time (fun () -> Graph.build s) in
  let g_par, t_par = time (fun () -> Graph.build ~pool s) in
  let b_seq = Graph.encode g_seq and b_par = Graph.encode g_par in
  Printf.printf "  %s: %d nodes, %d edges; build jobs=1 %.1fms, jobs=%d %.1fms\n"
    (Graph.tag g_par) (Graph.n_nodes g_par) (Graph.n_edges g_par) (t_seq *. 1000.) par_jobs
    (t_par *. 1000.);
  if String.equal b_seq b_par then
    print_endline "  graph determinism: jobs=1 and pooled encodings byte-identical: OK"
  else begin
    print_endline "  graph determinism: FAILED (pooled build differs from sequential)";
    Atomic.set failed true
  end;
  if not (String.equal (Graph.encode (Graph.decode b_par)) b_par) then begin
    print_endline "  graph codec: FAILED (decode . encode is not the identity)";
    Atomic.set failed true
  end;
  (* cold persist through of_dataset, then a warm probe the way a second
     process would come in: a fresh store handle on the same directory,
     a raw Store.find + decode, and build_count must not move *)
  let _, t_cold = time (fun () -> Graph.of_dataset ~pool ds v cfg) in
  let builds0 = Graph.build_count () in
  let store_w = Store.open_ ~dir:cache_dir () in
  let warm, t_warm =
    time (fun () ->
        Store.find store_w ~ns:Graph.ns ~key:(Graph.store_key ds v cfg) ~decode:Graph.decode)
  in
  let warm_rebuilds = Graph.build_count () - builds0 in
  (match warm with
  | Some g_warm when String.equal (Graph.encode g_warm) b_par && warm_rebuilds = 0 ->
      Printf.printf
        "  warm load: %.1fms from the store, 0 rebuilds, byte-identical to the cold build: OK\n"
        (t_warm *. 1000.)
  | Some _ ->
      Printf.printf
        "  warm load gate: FAILED (stored graph differs from the cold build, or %d rebuilds)\n"
        warm_rebuilds;
      Atomic.set failed true
  | None ->
      print_endline "  warm load gate: FAILED (no stored graph under the graph namespace)";
      Atomic.set failed true);
  (* warm reverse-closure latency: the serve/CLI hot-path unit *)
  let g = Graph.of_dataset ~pool ds v cfg in
  let probe =
    let d = Depset.Dep_func "vfs_fsync" in
    if Graph.mem g d then d
    else Depset.Dep_func (List.hd s.Surface.s_funcs).Surface.fe_name
  in
  let r = Stats.Reservoir.create () in
  for _ = 1 to 200 do
    let _, dt = time (fun () -> ignore (Graph.rclosure g probe)) in
    Stats.Reservoir.add r (dt *. 1000.)
  done;
  let rclosure_p95 = Stats.Reservoir.quantile r 0.95 in
  Printf.printf "  rclosure(%s): closure %d, p50 %.3fms, p95 %.3fms over 200 runs\n"
    (Depset.dep_to_string probe)
    (List.length (Graph.rclosure g probe))
    (Stats.Reservoir.quantile r 0.5) rclosure_p95;
  if rclosure_p95 >= 5. then begin
    Printf.printf "  rclosure gate: FAILED (warm p95 %.3fms, budget 5ms)\n" rclosure_p95;
    Atomic.set failed true
  end
  else Printf.printf "  rclosure gate: warm p95 %.3fms < 5ms: OK\n" rclosure_p95;
  (* blast radius: take symbols the release diffs actually changed and
     find one whose reverse closure reaches the corpus — the paper's
     "which programs break next release" question end to end *)
  let changed_funcs =
    List.concat_map
      (fun ((_, b), (d : Diff.t)) ->
        List.map (fun (n, _) -> (b, n)) d.Diff.df_funcs.Diff.d_changed
        @ List.map (fun n -> (b, n)) d.Diff.df_funcs.Diff.d_removed)
      (Lazy.force release_diffs)
  in
  let blast_hit =
    let rec go tries = function
      | [] -> None
      | _ when tries = 0 -> None
      | (release, name) :: rest -> (
          match Blast.query ~pool ds ~release (Depset.Dep_func name) with
          | Ok r when r.Blast.bl_affected <> [] -> Some r
          | _ -> go (tries - 1) rest)
    in
    go 25 changed_funcs
  in
  (match blast_hit with
  | Some r ->
      Printf.printf
        "  blast: %s in %s -> closure %d, %d corpus program(s) transitively affected: OK\n"
        (Depset.dep_to_string r.Blast.bl_node)
        (Version.to_string r.Blast.bl_release)
        r.Blast.bl_closure_size
        (List.length r.Blast.bl_affected)
  | None ->
      print_endline
        "  blast gate: FAILED (no changed symbol with a non-empty corpus blast radius in 25 \
         probes)";
      Atomic.set failed true);
  let open Json in
  let j =
    with_trajectory "BENCH_GRAPH.json" ~metric:rclosure_p95
      [
        ("schema", String "depsurf-bench-graph/1");
        ("scale", String (if scale = Calibration.bench_scale then "bench" else "test"));
        ("image", String (Graph.tag g_par));
        ("nodes", Int (Graph.n_nodes g_par));
        ("edges", Int (Graph.n_edges g_par));
        ("build_seq_ms", Float (t_seq *. 1000.));
        ("build_par_ms", Float (t_par *. 1000.));
        ("cold_of_dataset_ms", Float (t_cold *. 1000.));
        ("warm_load_ms", Float (t_warm *. 1000.));
        ("warm_rebuilds", Int warm_rebuilds);
        ("rclosure_p95_ms", Float rclosure_p95);
        ( "blast",
          match blast_hit with
          | None -> Null
          | Some r ->
              Obj
                [
                  ("node", String (Depset.dep_to_string r.Blast.bl_node));
                  ("release", String (Version.to_string r.Blast.bl_release));
                  ("closure_size", Int r.Blast.bl_closure_size);
                  ("affected", Int (List.length r.Blast.bl_affected));
                ] );
      ]
  in
  write_json_file "BENCH_GRAPH.json" j;
  print_endline "(written to BENCH_GRAPH.json)";
  if Atomic.get failed then begin
    print_endline "graph check: FAILED";
    exit 1
  end
  else
    print_endline
      "graph check: deterministic build, warm store load with 0 rebuilds, sub-5ms closures, \
       non-empty corpus blast radius: OK"

(* ------------------------------------------------------------------ *)
(* Verifier diagnostics: cold verify, warm decode-only re-verify, fuzz  *)
(* survival                                                             *)
(* ------------------------------------------------------------------ *)

module Verify = Ds_verify.Verify

let verify_bench () =
  section "Verifier diagnostics: cold verify, warm re-verify, fuzz survival";
  let failed = Atomic.make false in
  let v = Version.v 5 4 and cfg = Config.x86_generic in
  let obj =
    snd (List.find (fun ((p : T7.profile), _) -> p.T7.pr_name = "biotop") (Lazy.force corpus))
  in
  let bytes = Ds_bpf.Obj.write obj in
  let cold, t_cold = time (fun () -> Verify.of_dataset ds v cfg bytes) in
  Printf.printf "  %s: %d program(s), %d rejected; cold verify %.1fms\n" cold.Verify.rp_obj
    (List.length cold.Verify.rp_progs)
    (List.length (Verify.findings cold))
    (t_cold *. 1000.);
  if Verify.findings cold <> [] then begin
    print_endline "  clean-object gate: FAILED (corpus object rejected)";
    Atomic.set failed true
  end;
  (* warm re-verify the way a second process would come in: a fresh
     store handle on the same directory, a raw Store.find + decode, and
     build_count must not move — decode-only, zero recomputes *)
  let image = Ds_bpf.Vmlinux.tag (Dataset.vmlinux ds v cfg) in
  let key = Verify.store_key ds ~image ~digest:(Verify.digest bytes) in
  let builds0 = Atomic.get Verify.build_count in
  let store_w = Store.open_ ~dir:cache_dir () in
  let r = Stats.Reservoir.create () in
  let warm = ref None in
  for _ = 1 to 200 do
    let w, dt =
      time (fun () -> Store.find store_w ~ns:Verify.ns ~key ~decode:Verify.decode)
    in
    warm := w;
    Stats.Reservoir.add r (dt *. 1000.)
  done;
  let warm_recomputes = Atomic.get Verify.build_count - builds0 in
  let warm_p95 = Stats.Reservoir.quantile r 0.95 in
  (match !warm with
  | Some w when w = cold && warm_recomputes = 0 ->
      Printf.printf
        "  warm re-verify: p50 %.3fms, p95 %.3fms over 200 decode-only loads, 0 recomputes: OK\n"
        (Stats.Reservoir.quantile r 0.5) warm_p95
  | Some _ ->
      Printf.printf
        "  warm re-verify gate: FAILED (stored report differs from the cold verify, or %d \
         recomputes)\n"
        warm_recomputes;
      Atomic.set failed true
  | None ->
      print_endline "  warm re-verify gate: FAILED (no stored report under the verify namespace)";
      Atomic.set failed true);
  if warm_p95 >= 10. then begin
    Printf.printf "  warm re-verify gate: FAILED (p95 %.3fms, budget 10ms)\n" warm_p95;
    Atomic.set failed true
  end;
  (* fuzz survival: instruction-stream mutants per program plus
     whole-object mutants, all through the diagnostic pipeline — zero
     crashes, every rejection classified to a taxonomy rule *)
  let campaign =
    List.fold_left
      (fun acc prog -> Verify.merge acc (Verify.campaign_insns ~count:200 ~seed:42L prog))
      (Verify.campaign_obj ~count:200 ~seed:42L bytes)
      obj.Ds_bpf.Obj.o_progs
  in
  let crashed = List.length campaign.Verify.cp_crashed in
  let survival =
    100. *. float_of_int (campaign.Verify.cp_total - crashed)
    /. float_of_int campaign.Verify.cp_total
  in
  Printf.printf
    "  fuzz: %d mutants -> %d accepted, %d rejected across %d rule(s); survival %.1f%%, \
     unclassified %d\n"
    campaign.Verify.cp_total campaign.Verify.cp_accepted campaign.Verify.cp_rejected
    (List.length campaign.Verify.cp_rules)
    survival campaign.Verify.cp_unclassified;
  if crashed > 0 || campaign.Verify.cp_unclassified > 0 then begin
    Printf.printf
      "  fuzz gate: FAILED (%d crash(es), %d unclassified rejection(s); survival and \
       classification must be 100%%)\n"
      crashed campaign.Verify.cp_unclassified;
    Atomic.set failed true
  end
  else print_endline "  fuzz gate: 100% survival, every rejection classified: OK";
  let open Json in
  let j =
    with_trajectory "BENCH_VERIFY.json" ~metric:warm_p95
      [
        ("schema", String "depsurf-bench-verify/1");
        ("scale", String (if scale = Calibration.bench_scale then "bench" else "test"));
        ("image", String image);
        ("object", String cold.Verify.rp_obj);
        ("programs", Int (List.length cold.Verify.rp_progs));
        ("cold_verify_ms", Float (t_cold *. 1000.));
        ("warm_p95_ms", Float warm_p95);
        ("warm_recomputes", Int warm_recomputes);
        ("fuzz_mutants", Int campaign.Verify.cp_total);
        ("fuzz_rejected", Int campaign.Verify.cp_rejected);
        ("fuzz_crashed", Int crashed);
        ("fuzz_unclassified", Int campaign.Verify.cp_unclassified);
        ("fuzz_survival_pct", Float survival);
        ( "fuzz_rules",
          Obj (List.map (fun (id, n) -> (id, Int n)) campaign.Verify.cp_rules) );
      ]
  in
  write_json_file "BENCH_VERIFY.json" j;
  print_endline "(written to BENCH_VERIFY.json)";
  if Atomic.get failed then begin
    print_endline "verify check: FAILED";
    exit 1
  end
  else
    print_endline
      "verify check: clean corpus object accepted, warm re-verify decode-only with 0 \
       recomputes, 100% fuzz survival, every rejection classified: OK"

(* ------------------------------------------------------------------ *)
(* Release watch: warm delta ingest vs full re-extraction, O(changed)  *)
(* ops, long-poll notification latency over a live socket              *)
(* ------------------------------------------------------------------ *)

module Watch = Ds_watch.Watch

let watch_bench () =
  section "Release watch: delta ingest, O(changed) ops, long-poll latency";
  let failed = Atomic.make false in
  let v = Version.v 5 4 and cfg = Config.x86_generic in
  let base = (v, cfg) in
  let s = x86 v in
  let victim, next =
    match s.Surface.s_funcs with
    | f :: fs ->
        ( f.Surface.fe_name,
          Surface.v ~version:s.Surface.s_version ~arch:s.Surface.s_arch
            ~flavor:s.Surface.s_flavor ~gcc:s.Surface.s_gcc ~funcs:fs
            ~structs:s.Surface.s_structs ~tracepoints:s.Surface.s_tracepoints
            ~syscalls:s.Surface.s_syscalls )
    | [] -> failwith "bench surface has no funcs"
  in
  let payload = Codec.encode_surface next in
  let w = Watch.create ~pool ds in
  let bsub = Watch.subscribe w ~label:"bench" [ Depset.Dep_func victim ] in
  (* image ingest: the cold pass pays one full surface extraction, the
     warm pass must be decode-only — 0 extractions, served from the
     store's delta tier *)
  let img = Ds_elf.Elf.write (Dataset.image ds (Version.v 4 15) cfg) in
  let ex0 = Watch.extractions w in
  let r_cold, t_cold =
    time (fun () -> Watch.ingest w ~base ~name:"evolved" (`Image img))
  in
  let cold_extractions = Watch.extractions w - ex0 in
  (match r_cold with
  | Ok r when (not r.Watch.ig_warm) && cold_extractions = 1 ->
      Printf.printf "  cold image ingest: %.1fms, %d extraction, ops +%d -%d ~%d\n"
        (t_cold *. 1000.) cold_extractions r.Watch.ig_ops.Delta.dc_adds
        r.Watch.ig_ops.Delta.dc_removes r.Watch.ig_ops.Delta.dc_changes
  | Ok _ ->
      Printf.printf "  watch gate: FAILED (cold ingest warm=? extractions=%d)\n"
        cold_extractions;
      Atomic.set failed true
  | Error e ->
      Printf.printf "  watch gate: FAILED (cold ingest: %s)\n" e;
      Atomic.set failed true);
  let ex1 = Watch.extractions w in
  let r_warm, t_warm =
    time (fun () -> Watch.ingest w ~base ~name:"evolved" (`Image img))
  in
  let warm_extractions = Watch.extractions w - ex1 in
  (match r_warm with
  | Ok r when r.Watch.ig_warm && warm_extractions = 0 ->
      Printf.printf
        "  warm re-ingest gate: %.1fms vs %.1fms cold, 0 re-extractions: OK\n"
        (t_warm *. 1000.) (t_cold *. 1000.)
  | Ok r ->
      Printf.printf "  warm re-ingest gate: FAILED (warm=%b, %d extraction(s))\n"
        r.Watch.ig_warm warm_extractions;
      Atomic.set failed true
  | Error e ->
      Printf.printf "  warm re-ingest gate: FAILED (%s)\n" e;
      Atomic.set failed true);
  (* O(changed): a release that drops exactly one func must cost exactly
     one delta op (and no extraction at all for surface payloads), and
     its event must reach the subscription *)
  let one_ops, one_matched =
    match Watch.ingest w ~base ~name:"one-symbol" (`Surface payload) with
    | Ok r ->
        let c = r.Watch.ig_ops in
        ( c.Delta.dc_adds + c.Delta.dc_removes + c.Delta.dc_changes,
          List.exists (fun (e : Watch.event) -> e.Watch.ev_sub = bsub.Watch.sb_id)
            r.Watch.ig_events )
    | Error e ->
        Printf.printf "  one-symbol ingest: FAILED (%s)\n" e;
        Atomic.set failed true;
        (-1, false)
  in
  if one_ops = 1 && one_matched then
    print_endline "  O(changed) gate: one dropped func = 1 delta op, event delivered: OK"
  else begin
    Printf.printf "  O(changed) gate: FAILED (%d op(s), matched=%b)\n" one_ops one_matched;
    Atomic.set failed true
  end;
  (* byte-identical reconstruction through the wire format *)
  let d = Delta.diff_surfaces ~base:s next in
  let rebuilt = Delta.apply ~base:s (Delta.decode (Delta.encode d)) in
  if String.equal (Codec.encode_surface rebuilt) payload then
    print_endline "  reconstruction gate: apply(base, delta) byte-identical: OK"
  else begin
    print_endline "  reconstruction gate: FAILED (reconstructed surface differs)";
    Atomic.set failed true
  end;
  (* long-poll notification latency over a live unix socket: park a
     poller at the current cursor, ingest (warm), measure park-to-200.
     The budget is 50ms — wakeup is the on_change listener, not the
     accept loop's periodic sweep. *)
  let srv = Serve.create ~ds ~pool () in
  let sock = Filename.temp_file "depsurf-bench-watch" ".sock" in
  Sys.remove sock;
  let h = Serve.start srv (Serve.Unix_sock sock) in
  let addr = Serve.bound_addr h in
  let wsrv = Serve.watch srv in
  let lsub = Watch.subscribe wsrv [ Depset.Dep_func victim ] in
  let iters = 30 in
  let r_lat = Stats.Reservoir.create () in
  (try
     for i = 1 to iters do
       let since = Watch.cursor wsrv in
       let poller =
         Domain.spawn (fun () ->
             let status, _, _ =
               Serve.Client.request_full addr ~meth:"GET"
                 ~path:(Printf.sprintf "/v1/watch/%s?since=%d&wait=5" lsub.Watch.sb_id since)
             in
             (status, now ()))
       in
       let deadline = now () +. 2. in
       while Serve.parked_count srv = 0 && now () < deadline do
         Unix.sleepf 0.002
       done;
       if Serve.parked_count srv = 0 then begin
         Printf.printf "  long-poll gate: FAILED (poller %d never parked)\n" i;
         Atomic.set failed true
       end;
       let t0 = now () in
       let status, _, _ =
         Serve.Client.request_full ~body:payload addr ~meth:"POST"
           ~path:"/v1/watch/ingest?base=5.4-x86-generic&name=lp&kind=surface"
       in
       if status <> 200 then begin
         Printf.printf "  long-poll gate: FAILED (ingest %d -> %d)\n" i status;
         Atomic.set failed true
       end;
       let pstatus, t_recv = Domain.join poller in
       if pstatus <> 200 then begin
         Printf.printf "  long-poll gate: FAILED (poller %d -> %d)\n" i pstatus;
         Atomic.set failed true
       end;
       Stats.Reservoir.add r_lat (Float.max 0. (t_recv -. t0) *. 1000.)
     done
   with e ->
     Serve.stop h;
     raise e);
  Serve.stop h;
  let notify_p50 = Stats.Reservoir.quantile r_lat 0.5 in
  let notify_p95 = Stats.Reservoir.quantile r_lat 0.95 in
  Printf.printf "  long-poll delivery: p50 %.2fms, p95 %.2fms over %d parked polls\n"
    notify_p50 notify_p95 iters;
  if notify_p95 >= 50. then begin
    Printf.printf "  long-poll gate: FAILED (notification p95 %.2fms, budget 50ms)\n"
      notify_p95;
    Atomic.set failed true
  end
  else Printf.printf "  long-poll gate: notification p95 %.2fms < 50ms: OK\n" notify_p95;
  let open Json in
  let j =
    with_trajectory "BENCH_WATCH.json" ~metric:notify_p95
      [
        ("schema", String "depsurf-bench-watch/1");
        ("scale", String (if scale = Calibration.bench_scale then "bench" else "test"));
        ("base", String (Watch.image_name base));
        ("cold_image_ingest_ms", Float (t_cold *. 1000.));
        ("warm_image_ingest_ms", Float (t_warm *. 1000.));
        ("warm_extractions", Int warm_extractions);
        ("one_symbol_ops", Int one_ops);
        ("notify_p50_ms", Float notify_p50);
        ("notify_p95_ms", Float notify_p95);
        ("polls", Int iters);
      ]
  in
  write_json_file "BENCH_WATCH.json" j;
  print_endline "(written to BENCH_WATCH.json)";
  if Atomic.get failed then begin
    print_endline "watch check: FAILED";
    exit 1
  end
  else
    print_endline
      "watch check: warm delta ingest with 0 re-extractions, 1 op per dropped symbol, \
       byte-identical reconstruction, sub-50ms long-poll delivery: OK"

(* ------------------------------------------------------------------ *)

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  let t0 = now () in
  Printf.printf "DepSurf benchmark harness (seed %Ld, scale: %s)\n" (Dataset.seed ds)
    (if scale = Calibration.bench_scale then "bench (~1/25 of a real kernel)" else "test");
  pipeline_timing ();
  Printf.printf "\ndataset: %d images generated, compiled and parsed (evolve %.2fs)\n"
    (List.length Dataset.study_images) t_evolve;
  table1 env ();
  table2 ();
  table3 env ();
  table4 ();
  table5 ();
  table6 ();
  fig2 ();
  fig4 ();
  fig5 ();
  fig6 ();
  table7 env ();
  table8 ();
  special_functions ();
  ablation_scale ();
  ablation_core ();
  ablation_composition ();
  ablation_threshold ();
  perf ();
  robustness ();
  tracing ();
  store_timing ();
  serve_bench ();
  graph_bench ();
  verify_bench ();
  watch_bench ();
  Par.shutdown pool;
  Printf.printf "\ntotal: %.1fs\n" (now () -. t0)
