(* The watch tier: content-addressed subscriptions, delta-driven ingest
   of evolved releases, per-subscription mismatch events with a monotone
   replay cursor, and persistence through the store's "watch"
   namespace. *)

open Ds_ksrc
open Depsurf
module Watch = Ds_watch.Watch
module Store = Ds_store.Store
module Metrics = Ds_util.Metrics

let ds = lazy (Dataset.build ~seed:Testenv.seed Calibration.test_scale)
let base_img = (Version.v 5 4, Config.x86_generic)
let base_surface = lazy (Dataset.surface (Lazy.force ds) (fst base_img) (snd base_img))

let fresh_dir () =
  let dir = Filename.temp_file "dswatch" ".store" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let store_ds () =
  Store.open_ ~dir:(fresh_dir ()) () |> fun store ->
  Dataset.build ~seed:Testenv.seed ~store Calibration.test_scale

(* a next surface with one registered-upon func gone: the minimal
   breaking release *)
let drop_func (s : Surface.t) name =
  Surface.v ~version:s.Surface.s_version ~arch:s.Surface.s_arch
    ~flavor:s.Surface.s_flavor ~gcc:s.Surface.s_gcc
    ~funcs:(List.filter (fun f -> f.Surface.fe_name <> name) s.Surface.s_funcs)
    ~structs:s.Surface.s_structs ~tracepoints:s.Surface.s_tracepoints
    ~syscalls:s.Surface.s_syscalls

let test_subscribe_content_addressed () =
  let w = Watch.create (Lazy.force ds) in
  let a = Watch.subscribe w [ Depset.Dep_func "vfs_read"; Depset.Dep_struct "file" ] in
  (* same set, different order, duplicated: the id is the canonical set *)
  let b =
    Watch.subscribe w
      [ Depset.Dep_struct "file"; Depset.Dep_func "vfs_read"; Depset.Dep_struct "file" ]
  in
  Alcotest.(check string) "idempotent id" a.Watch.sb_id b.Watch.sb_id;
  Alcotest.(check int) "one subscription" 1 (List.length (Watch.subs w));
  Alcotest.(check int) "canonical deps" 2 (List.length b.Watch.sb_deps);
  let c = Watch.subscribe w [ Depset.Dep_func "vfs_fsync" ] in
  Alcotest.(check bool) "distinct sets get distinct ids" true (a.Watch.sb_id <> c.Watch.sb_id);
  Alcotest.(check bool) "find_sub" true (Watch.find_sub w a.Watch.sb_id <> None);
  Alcotest.(check bool) "unsubscribe" true (Watch.unsubscribe w c.Watch.sb_id);
  Alcotest.(check bool) "gone after unsubscribe" true (Watch.find_sub w c.Watch.sb_id = None);
  Alcotest.(check bool) "unsubscribe is not idempotent" false
    (Watch.unsubscribe w c.Watch.sb_id)

let test_ingest_surface_events () =
  (* store-backed: the warm re-ingest leg needs the delta tier *)
  let ds = store_ds () in
  let w = Watch.create ds in
  let base = Lazy.force base_surface in
  let victim =
    match base.Surface.s_funcs with
    | f :: _ -> f.Surface.fe_name
    | [] -> Alcotest.fail "base surface has no funcs"
  in
  let hit_sub = Watch.subscribe w ~label:"direct" [ Depset.Dep_func victim ] in
  let miss_sub = Watch.subscribe w ~label:"bystander" [ Depset.Dep_syscall "openat" ] in
  let next = drop_func base victim in
  let payload = `Surface (Codec.encode_surface next) in
  let r =
    match Watch.ingest w ~base:base_img ~name:"r1" payload with
    | Ok r -> r
    | Error m -> Alcotest.fail ("ingest failed: " ^ m)
  in
  Alcotest.(check bool) "cold ingest" false r.Watch.ig_warm;
  Alcotest.(check int) "surface payloads never extract" 0 (Watch.extractions w);
  Alcotest.(check int) "one op" 1
    (let c = r.Watch.ig_ops in
     c.Delta.dc_adds + c.Delta.dc_removes + c.Delta.dc_changes);
  Alcotest.(check int) "one event" 1 (List.length r.Watch.ig_events);
  (match r.Watch.ig_events with
  | [ e ] ->
      Alcotest.(check string) "event for the direct sub" hit_sub.Watch.sb_id e.Watch.ev_sub;
      Alcotest.(check string) "release label" "r1" e.Watch.ev_release;
      Alcotest.(check bool) "hit is the victim" true
        (e.Watch.ev_hits = [ Depset.Dep_func victim ]);
      Alcotest.(check int) "one reason per hit" (List.length e.Watch.ev_hits)
        (List.length e.Watch.ev_reasons)
  | _ -> Alcotest.fail "expected exactly one event");
  Alcotest.(check int) "cursor advanced" 1 (Watch.cursor w);
  (* replay is deterministic and per-subscription *)
  let replay () = Watch.events_after w ~sub:hit_sub.Watch.sb_id ~since:0 in
  Alcotest.(check bool) "replay equal" true (replay () = replay ());
  Alcotest.(check int) "bystander sees nothing" 0
    (List.length (Watch.events_after w ~sub:miss_sub.Watch.sb_id ~since:0));
  Alcotest.(check int) "past-cursor replay empty" 0
    (List.length (Watch.events_after w ~sub:hit_sub.Watch.sb_id ~since:(Watch.cursor w)));
  (* warm re-ingest: same payload, delta served from the store, no new
     events recorded twice for the same bytes is NOT promised — but
     warmness and op counts are *)
  match Watch.ingest w ~base:base_img ~name:"r1" payload with
  | Ok r2 -> Alcotest.(check bool) "warm re-ingest" true r2.Watch.ig_warm
  | Error m -> Alcotest.fail ("warm re-ingest failed: " ^ m)

let test_ingest_image_warm_path () =
  let ds = store_ds () in
  let w = Watch.create ds in
  let bytes = Ds_elf.Elf.write (Testenv.image (Version.v 5 4)) in
  (match Watch.ingest w ~base:base_img ~name:"same" (`Image bytes) with
  | Ok r ->
      Alcotest.(check bool) "cold first" false r.Watch.ig_warm;
      Alcotest.(check int) "one extraction" 1 (Watch.extractions w);
      Alcotest.(check int) "identical release has no ops" 0
        (let c = r.Watch.ig_ops in
         c.Delta.dc_adds + c.Delta.dc_removes + c.Delta.dc_changes);
      Alcotest.(check int) "no events" 0 (List.length r.Watch.ig_events)
  | Error m -> Alcotest.fail ("image ingest failed: " ^ m));
  (* the delta tier absorbs the repeat: 0 further extractions *)
  (match Watch.ingest w ~base:base_img ~name:"same" (`Image bytes) with
  | Ok r ->
      Alcotest.(check bool) "warm second" true r.Watch.ig_warm;
      Alcotest.(check int) "still one extraction" 1 (Watch.extractions w)
  | Error m -> Alcotest.fail ("warm image ingest failed: " ^ m));
  (* a second handle over the same store is warm from the start *)
  let w2 = Watch.create ds in
  match Watch.ingest w2 ~base:base_img ~name:"same" (`Image bytes) with
  | Ok r ->
      Alcotest.(check bool) "warm across handles" true r.Watch.ig_warm;
      Alcotest.(check int) "zero extractions on fresh handle" 0 (Watch.extractions w2)
  | Error m -> Alcotest.fail ("cross-handle ingest failed: " ^ m)

let test_transitive_hit () =
  let ds = Lazy.force ds in
  let w = Watch.create ds in
  let base = Lazy.force base_surface in
  let g = Ds_graph.Graph.of_dataset ds (fst base_img) (snd base_img) in
  (* find a construct whose removal reaches some *other* construct
     through the reverse closure, and subscribe to that other one *)
  let pick =
    List.find_map
      (fun (f : Surface.func_entry) ->
        let node = Depset.Dep_func f.Surface.fe_name in
        match Ds_graph.Blast.closure g node with
        | _ :: (_ :: _ as rest) ->
            Some (f.Surface.fe_name, List.find (fun d -> d <> node) rest)
        | _ -> None)
      base.Surface.s_funcs
  in
  match pick with
  | None -> Alcotest.fail "no func with a non-trivial reverse closure in the test graph"
  | Some (victim, dependant) -> (
      let sub = Watch.subscribe w [ dependant ] in
      let next = drop_func base victim in
      match Watch.ingest w ~base:base_img ~name:"r2" (`Surface (Codec.encode_surface next)) with
      | Error m -> Alcotest.fail ("ingest failed: " ^ m)
      | Ok r -> (
          match
            List.find_opt (fun e -> e.Watch.ev_sub = sub.Watch.sb_id) r.Watch.ig_events
          with
          | None -> Alcotest.fail "transitive dependant got no event"
          | Some e ->
              Alcotest.(check bool) "hit is the subscribed dep" true
                (List.mem dependant e.Watch.ev_hits)))

let test_persistence () =
  let ds = store_ds () in
  let base = Lazy.force base_surface in
  let victim =
    match base.Surface.s_funcs with
    | f :: _ -> f.Surface.fe_name
    | [] -> Alcotest.fail "no funcs"
  in
  let id =
    let w = Watch.create ds in
    let sub = Watch.subscribe w ~label:"durable" [ Depset.Dep_func victim ] in
    (match
       Watch.ingest w ~base:base_img ~name:"r3"
         (`Surface (Codec.encode_surface (drop_func base victim)))
     with
    | Ok r -> Alcotest.(check int) "event recorded" 1 (List.length r.Watch.ig_events)
    | Error m -> Alcotest.fail m);
    sub.Watch.sb_id
  in
  (* a fresh handle over the same store sees the registry and the events *)
  let w = Watch.create ds in
  (match Watch.find_sub w id with
  | Some s -> Alcotest.(check string) "label survives" "durable" s.Watch.sb_label
  | None -> Alcotest.fail "subscription lost across handles");
  Alcotest.(check int) "cursor survives" 1 (Watch.cursor w);
  (match Watch.events_after w ~sub:id ~since:0 with
  | [ e ] -> Alcotest.(check string) "event release survives" "r3" e.Watch.ev_release
  | _ -> Alcotest.fail "events lost across handles");
  (* unsubscribing prunes the events, persistently *)
  Alcotest.(check bool) "unsubscribe" true (Watch.unsubscribe w id);
  let w2 = Watch.create ds in
  Alcotest.(check bool) "gone after reopen" true (Watch.find_sub w2 id = None);
  Alcotest.(check int) "events pruned" 0 (List.length (Watch.events_after w2 ~sub:id ~since:0))

let test_ingest_errors () =
  let w = Watch.create (Lazy.force ds) in
  (match Watch.ingest w ~base:(Version.v 9 9, Config.x86_generic) ~name:"x" (`Surface "") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown base accepted");
  match Watch.ingest w ~base:base_img ~name:"x" (`Surface "garbage") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage surface accepted"

let test_on_change_listener () =
  let ds = Lazy.force ds in
  let w = Watch.create ds in
  let base = Lazy.force base_surface in
  let victim =
    match base.Surface.s_funcs with
    | f :: _ -> f.Surface.fe_name
    | [] -> Alcotest.fail "no funcs"
  in
  let fired = ref 0 in
  Watch.on_change w (fun () -> incr fired);
  ignore (Watch.subscribe w [ Depset.Dep_func victim ]);
  (match
     Watch.ingest w ~base:base_img ~name:"r4"
       (`Surface (Codec.encode_surface (drop_func base victim)))
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "listener fired on new events" 1 !fired

let suites =
  [
    ( "watch",
      [
        Alcotest.test_case "content-addressed subscriptions" `Quick
          test_subscribe_content_addressed;
        Alcotest.test_case "surface ingest records events" `Quick test_ingest_surface_events;
        Alcotest.test_case "image ingest warm path" `Quick test_ingest_image_warm_path;
        Alcotest.test_case "transitive graph hit" `Quick test_transitive_hit;
        Alcotest.test_case "persistence across handles" `Quick test_persistence;
        Alcotest.test_case "ingest errors" `Quick test_ingest_errors;
        Alcotest.test_case "on_change listener" `Quick test_on_change_listener;
      ] );
  ]
