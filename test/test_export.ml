(* Golden pins for the public JSON shapes served to clients and written
   by `depsurf --json`: Export.func_status, Export.struct_def and
   Export.tracepoint over fixed synthetic inputs, plus the v1 envelope
   that wraps them on the wire. A field rename or reorder here is a
   breaking API change and must fail loudly. *)

open Depsurf
open Ds_ctypes
module Json = Ds_util.Json
module Diag = Ds_util.Diag

let int_t = Ctype.Int { name = "int"; bits = 32; signed = true }

let check_json name expected actual =
  Alcotest.(check string) name (Json.to_string expected) (Json.to_string actual)

(* ---- struct_def ----------------------------------------------------- *)

let sample_struct =
  Decl.
    {
      sname = "request";
      skind = `Struct;
      byte_size = 16;
      fields =
        [
          { fname = "q"; ftype = Ctype.Ptr (Ctype.Struct_ref "request_queue"); bits_offset = 0 };
          { fname = "tag"; ftype = int_t; bits_offset = 64 };
        ];
    }

let test_struct_def_golden () =
  check_json "struct_def"
    (Json.Obj
       [
         ("kind", Json.String "STRUCT");
         ("name", Json.String "request");
         ("size", Json.Int 16);
         ( "members",
           Json.List
             [
               Json.Obj
                 [
                   ("name", Json.String "q");
                   ("bits_offset", Json.Int 0);
                   ( "type",
                     Json.Obj
                       [
                         ("kind", Json.String "PTR");
                         ( "type",
                           Json.Obj
                             [
                               ("kind", Json.String "STRUCT");
                               ("name", Json.String "request_queue");
                             ] );
                       ] );
                 ];
               Json.Obj
                 [
                   ("name", Json.String "tag");
                   ("bits_offset", Json.Int 64);
                   ( "type",
                     Json.Obj [ ("kind", Json.String "INT"); ("name", Json.String "int") ] );
                 ];
             ] );
       ])
    (Export.struct_def sample_struct)

(* ---- func_status ----------------------------------------------------- *)

let sample_proto =
  Ctype.{ ret = int_t; params = [ { pname = "fd"; ptype = int_t } ]; variadic = false }

let sample_func =
  Surface.
    {
      fe_name = "vfs_fsync";
      fe_decls =
        [
          {
            di_tu = "fs/sync.c";
            di_file = "fs/sync.c";
            di_line = 220;
            di_proto = sample_proto;
            di_external = true;
            di_declared_inline = false;
            di_low_pc = Some 0x1000L;
          };
        ];
      fe_symbols =
        [
          Ds_elf.Elf.
            {
              sym_name = "vfs_fsync";
              sym_value = 0x1000L;
              sym_size = 64;
              sym_bind = Ds_elf.Elf.Global;
              sym_section = ".text";
            };
        ];
      fe_suffixed = [];
      fe_inline_sites = [];
      fe_callers = [ "do_fsync" ];
    }

let int_json = Json.Obj [ ("kind", Json.String "INT"); ("name", Json.String "int") ]

let proto_json =
  Json.Obj
    [
      ("kind", Json.String "FUNC_PROTO");
      ( "params",
        Json.List [ Json.Obj [ ("name", Json.String "fd"); ("type", int_json) ] ] );
      ("ret_type", int_json);
    ]

let test_func_status_golden () =
  check_json "func_status"
    (Json.Obj
       [
         ("name", Json.String "vfs_fsync");
         ("collision_type", Json.String "Unique Global");
         ("inline_type", Json.String "Not inlined");
         ( "decl",
           Json.Obj
             [
               ("kind", Json.String "FUNC");
               ("name", Json.String "vfs_fsync");
               ("type", proto_json);
             ] );
         ( "funcs",
           Json.List
             [
               Json.Obj
                 [
                   ("addr", Json.Int 0x1000);
                   ("name", Json.String "vfs_fsync");
                   ("external", Json.Bool true);
                   ("loc", Json.String "fs/sync.c:220");
                   ("file", Json.String "fs/sync.c");
                   ("inline", Json.String "not declared, not inlined");
                   ("caller_inline", Json.List []);
                   ("caller_func", Json.List [ Json.String "do_fsync" ]);
                 ];
             ] );
         ( "symbols",
           Json.List
             [
               Json.Obj
                 [
                   ("addr", Json.Int 0x1000);
                   ("name", Json.String "vfs_fsync");
                   ("section", Json.String ".text");
                   ("bind", Json.String "STB_GLOBAL");
                   ("size", Json.Int 64);
                 ];
             ] );
       ])
    (Export.func_status sample_func)

(* ---- tracepoint ------------------------------------------------------ *)

let sample_tp =
  Surface.
    {
      te_name = "block_rq_issue";
      te_class = "block_rq";
      te_event_struct = Some sample_struct;
      te_func = Some Decl.{ fname = "trace_block_rq_issue"; proto = sample_proto };
    }

let test_tracepoint_golden () =
  check_json "tracepoint"
    (Json.Obj
       [
         ("class_name", Json.String "block_rq");
         ("event_name", Json.String "block_rq_issue");
         ("func_name", Json.String "trace_event_raw_event_block_rq");
         ("struct_name", Json.String "trace_event_raw_block_rq");
         ( "func",
           Json.Obj
             [
               ("kind", Json.String "FUNC");
               ("name", Json.String "trace_block_rq_issue");
               ("type", proto_json);
             ] );
         ("struct", Export.struct_def sample_struct);
       ])
    (Export.tracepoint sample_tp)

(* ---- the v1 envelope -------------------------------------------------- *)

let test_envelope_shape () =
  let doc = Json.Obj [ ("answer", Json.Int 42) ] in
  check_json "clean envelope"
    (Json.Obj
       [
         ("v", Json.Int 1);
         ("health", Json.String "clean");
         ("data", doc);
         ("diagnostics", Json.List []);
       ])
    (Api.envelope doc);
  check_json "data unwraps" doc (Api.data (Api.envelope doc));
  check_json "non-envelope passes through" doc (Api.data doc);
  let degraded = Api.of_diags ~data:doc [ Diag.v Diag.Degraded ~component:"d1" "lost a section" ] in
  Alcotest.(check string) "degraded health" "degraded"
    (match Json.member "health" degraded with Some (Json.String s) -> s | _ -> "<missing>");
  (match Json.member "diagnostics" degraded with
  | Some (Json.List [ _ ]) -> ()
  | _ -> Alcotest.fail "envelope must carry the diagnostics list");
  match Json.member "v" (Api.error ~status:404 "nope") with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "errors are enveloped too"

let suites =
  [
    ( "export.golden",
      [
        Alcotest.test_case "struct_def" `Quick test_struct_def_golden;
        Alcotest.test_case "func_status" `Quick test_func_status_golden;
        Alcotest.test_case "tracepoint" `Quick test_tracepoint_golden;
        Alcotest.test_case "v1 envelope" `Quick test_envelope_shape;
      ] );
  ]
