open Ds_util

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let root = Prng.create 7L in
  (* Consuming the parent must not change what a split child produces. *)
  let c1 = Prng.split root "child" in
  let v1 = Prng.next_int64 c1 in
  let root' = Prng.create 7L in
  ignore (Prng.next_int64 root');
  ignore (Prng.next_int64 root');
  let c2 = Prng.split root' "child" in
  Alcotest.(check int64) "split ignores consumption" v1 (Prng.next_int64 c2)

let test_prng_split_labels_differ () =
  let root = Prng.create 7L in
  let a = Prng.next_int64 (Prng.split root "a") in
  let b = Prng.next_int64 (Prng.split root "b") in
  Alcotest.(check bool) "different labels, different streams" true (a <> b)

let test_prng_int_bounds () =
  let t = Prng.create 1L in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_sample () =
  let t = Prng.create 3L in
  let xs = List.init 20 Fun.id in
  let s = Prng.sample t 5 xs in
  Alcotest.(check int) "size" 5 (List.length s);
  Alcotest.(check bool) "sorted (order preserved)" true (List.sort compare s = s);
  Alcotest.(check bool) "distinct" true (List.sort_uniq compare s = List.sort compare s);
  Alcotest.(check (list int)) "oversample returns all" xs (Prng.sample t 100 xs)

let test_prng_binomial () =
  let t = Prng.create 9L in
  Alcotest.(check int) "p=0" 0 (Prng.binomial t 100 0.);
  Alcotest.(check int) "p=1" 100 (Prng.binomial t 100 1.);
  let v = Prng.binomial t 10000 0.3 in
  Alcotest.(check bool) "roughly np" true (v > 2700 && v < 3300)

let roundtrip_uleb v =
  let w = Bytesio.Writer.create () in
  Bytesio.Writer.uleb128 w v;
  let r = Bytesio.Reader.of_string (Bytesio.Writer.contents w) in
  Alcotest.(check int) (Printf.sprintf "uleb %d" v) v (Bytesio.Reader.uleb128 r)

let roundtrip_sleb v =
  let w = Bytesio.Writer.create () in
  Bytesio.Writer.sleb128 w v;
  let r = Bytesio.Reader.of_string (Bytesio.Writer.contents w) in
  Alcotest.(check int) (Printf.sprintf "sleb %d" v) v (Bytesio.Reader.sleb128 r)

let test_leb128 () =
  List.iter roundtrip_uleb [ 0; 1; 127; 128; 300; 16384; 1 lsl 40 ];
  List.iter roundtrip_sleb [ 0; 1; -1; 63; 64; -64; -65; 8191; -8192; 1 lsl 40; -(1 lsl 40) ]

let test_endianness () =
  List.iter
    (fun endian ->
      let w = Bytesio.Writer.create ~endian () in
      Bytesio.Writer.u16 w 0xBEEF;
      Bytesio.Writer.u32 w 0xDEADBEEF;
      Bytesio.Writer.u64 w 0x0123456789ABCDEFL;
      let r = Bytesio.Reader.of_string ~endian (Bytesio.Writer.contents w) in
      Alcotest.(check int) "u16" 0xBEEF (Bytesio.Reader.u16 r);
      Alcotest.(check int) "u32" 0xDEADBEEF (Bytesio.Reader.u32 r);
      Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Bytesio.Reader.u64 r))
    [ Bytesio.Little; Bytesio.Big ]

let test_cstring () =
  let w = Bytesio.Writer.create () in
  Bytesio.Writer.cstring w "hello";
  Bytesio.Writer.cstring w "";
  Bytesio.Writer.cstring w "world";
  let r = Bytesio.Reader.of_string (Bytesio.Writer.contents w) in
  Alcotest.(check string) "first" "hello" (Bytesio.Reader.cstring r);
  Alcotest.(check string) "empty" "" (Bytesio.Reader.cstring r);
  Alcotest.(check string) "at" "world" (Bytesio.Reader.cstring_at r (Bytesio.Reader.pos r));
  Alcotest.(check string) "third" "world" (Bytesio.Reader.cstring r)

let test_truncated () =
  let r = Bytesio.Reader.of_string "ab" in
  Alcotest.check_raises "u32 past end" (Bytesio.Truncated "need 4 at 0/2") (fun () ->
      ignore (Bytesio.Reader.u32 r))

let test_align () =
  let w = Bytesio.Writer.create () in
  Bytesio.Writer.u8 w 1;
  Bytesio.Writer.align w 8;
  Alcotest.(check int) "aligned" 8 (Bytesio.Writer.pos w);
  Bytesio.Writer.align w 8;
  Alcotest.(check int) "idempotent" 8 (Bytesio.Writer.pos w)

let test_sub_reader () =
  let r = Bytesio.Reader.of_string "0123456789" in
  let s = Bytesio.Reader.sub r ~pos:2 ~len:4 in
  Alcotest.(check string) "window" "2345" (Bytesio.Reader.bytes s 4);
  Alcotest.check_raises "sub out of range" (Bytesio.Truncated "sub") (fun () ->
      ignore (Bytesio.Reader.sub r ~pos:8 ~len:4))

let test_slice () =
  let s = Bytesio.Slice.of_string "  Hello-World  " in
  Alcotest.(check int) "length" 15 (Bytesio.Slice.length s);
  let t = Bytesio.Slice.trim s in
  Alcotest.(check string) "trim" "Hello-World" (Bytesio.Slice.to_string t);
  Alcotest.(check bool) "trim copies nothing" true (Bytesio.Slice.length t = 11);
  Alcotest.(check char) "get" 'H' (Bytesio.Slice.get t 0);
  (match Bytesio.Slice.index_opt t '-' with
  | Some 5 -> ()
  | other ->
      Alcotest.failf "index_opt: expected Some 5, got %s"
        (match other with Some i -> string_of_int i | None -> "None"));
  Alcotest.(check bool) "index outside window" true
    (Bytesio.Slice.index_opt t ' ' = None);
  let head = Bytesio.Slice.sub t ~pos:0 ~len:5 in
  Alcotest.(check string) "sub" "Hello" (Bytesio.Slice.to_string head);
  Alcotest.(check bool) "equal_string" true (Bytesio.Slice.equal_string head "Hello");
  Alcotest.(check bool) "equal_string mismatch" false (Bytesio.Slice.equal_string head "World");
  Alcotest.(check bool) "caseless" true (Bytesio.Slice.equal_caseless_string head "hELLo");
  Alcotest.(check string) "lowercase" "hello" (Bytesio.Slice.lowercase_string head);
  Alcotest.(check bool) "empty trim" true
    (Bytesio.Slice.is_empty (Bytesio.Slice.trim (Bytesio.Slice.of_string "   ")));
  Alcotest.check_raises "out of bounds" (Invalid_argument "Bytesio.Slice.make") (fun () ->
      ignore (Bytesio.Slice.make "abc" ~pos:2 ~len:5))

let test_reader_slice_expect () =
  let r = Bytesio.Reader.of_string "\x7fELFrest" in
  Alcotest.(check bool) "expect consumes on match" true (Bytesio.Reader.expect r "\x7fELF");
  let s = Bytesio.Reader.slice r 4 in
  Alcotest.(check string) "slice reads without copy" "rest" (Bytesio.Slice.to_string s);
  let r = Bytesio.Reader.of_string "XYZW" in
  Alcotest.(check bool) "expect rejects without consuming" false (Bytesio.Reader.expect r "ABCD");
  Alcotest.(check string) "position unchanged" "XYZW" (Bytesio.Reader.bytes r 4);
  let r = Bytesio.Reader.of_string "ab" in
  Alcotest.check_raises "expect past end" (Bytesio.Truncated "need 4 at 0/2") (fun () ->
      ignore (Bytesio.Reader.expect r "ABCD"))

let test_strutil () =
  Alcotest.(check (option (pair string string))) "cut" (Some ("a", "b=c"))
    (Strutil.cut ~on:'=' "a=b=c");
  Alcotest.(check (option (pair string string))) "cut missing" None (Strutil.cut ~on:'=' "abc");
  Alcotest.(check (option (pair string string))) "cut leading" (Some ("", "x"))
    (Strutil.cut ~on:':' ":x");
  Alcotest.(check (option (pair string string))) "cut trailing" (Some ("x", ""))
    (Strutil.cut ~on:':' "x:");
  Alcotest.(check string) "prefix_before" "block"
    (Strutil.prefix_before ~on:'_' ~default:"misc" "block_rq_issue");
  Alcotest.(check string) "prefix_before default" "misc"
    (Strutil.prefix_before ~on:'_' ~default:"misc" "plainname");
  Alcotest.(check (option int)) "find_sub" (Some 5) (Strutil.find_sub "gcc is gcc" ~sub:"s g");
  Alcotest.(check (option int)) "find_sub first hit" (Some 0) (Strutil.find_sub "gcc is gcc" ~sub:"gcc");
  Alcotest.(check (option int)) "find_sub from" (Some 7)
    (Strutil.find_sub ~from:1 "gcc is gcc" ~sub:"gcc");
  Alcotest.(check (option int)) "find_sub missing" None (Strutil.find_sub "short" ~sub:"missing");
  Alcotest.(check (option int)) "find_sub empty" (Some 2) (Strutil.find_sub ~from:2 "abc" ~sub:"")

let test_json_escapes () =
  (* \u escapes decode positionally, including surrogateless BMP chars,
     and bad hex is a parse error, not an exception from int_of_string *)
  (match Json.of_string {|"a\u0041\u0021b"|} with
  | Json.String s -> Alcotest.(check string) "ascii \\u escapes" "aA!b" s
  | _ -> Alcotest.fail "expected a string");
  (* >= 0x80 is passed through verbatim as the escape text (BMP-only parser) *)
  (match Json.of_string {|"\u00e9"|} with
  | Json.String s -> Alcotest.(check string) "non-ascii \\u passthrough" {|\u00e9|} s
  | _ -> Alcotest.fail "expected a string");
  (match Json.of_string {|"tab\tquote\"slash\\"|} with
  | Json.String s -> Alcotest.(check string) "simple escapes" "tab\tquote\"slash\\" s
  | _ -> Alcotest.fail "expected a string");
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %s" bad)
    [ {|"\uzzzz"|}; {|"\u00"|}; "tru"; "truX"; "nul"; "[true, fa]" ]

let test_json_literals_numbers () =
  Alcotest.(check bool) "true" true (Json.of_string "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (Json.of_string "false" = Json.Bool false);
  Alcotest.(check bool) "null" true (Json.of_string "null" = Json.Null);
  Alcotest.(check bool) "int" true (Json.of_string "-42" = Json.Int (-42));
  (match Json.of_string "2.5e2" with
  | Json.Float f -> Alcotest.(check (float 1e-9)) "float" 250. f
  | _ -> Alcotest.fail "expected a float");
  (match Json.of_string "0.125" with
  | Json.Float f -> Alcotest.(check (float 1e-9)) "decimal" 0.125 f
  | _ -> Alcotest.fail "expected a float");
  (* large integers stay exact ints *)
  Alcotest.(check bool) "big int" true (Json.of_string "123456789012345" = Json.Int 123456789012345)

let test_table_render () =
  let t = Texttable.create ~title:"T" [ ("a", Texttable.L); ("b", Texttable.R) ] in
  Texttable.row t [ "x"; "1" ];
  Texttable.row t [ "longer"; "22" ];
  let s = Texttable.render t in
  Alcotest.(check bool) "contains title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "right-aligns" true
    (List.exists (fun line -> line = "x        1") (String.split_on_char '\n' s))

let test_table_bar () =
  Alcotest.(check string) "empty at zero" "" (Texttable.bar 0. ~max:10.);
  Alcotest.(check string) "empty at no max" "" (Texttable.bar 5. ~max:0.);
  Alcotest.(check string) "full" "########" (Texttable.bar 10. ~max:10.);
  Alcotest.(check string) "half" "####" (Texttable.bar 5. ~max:10.);
  Alcotest.(check string) "tiny values still visible" "#" (Texttable.bar 0.1 ~max:100.)

let test_table_formats () =
  Alcotest.(check string) "pct zero" "-" (Texttable.pct 0.);
  Alcotest.(check string) "pct small" "0.3" (Texttable.pct 0.3);
  Alcotest.(check string) "pct big" "24" (Texttable.pct 24.2);
  Alcotest.(check string) "count k" "36k" (Texttable.count 36000);
  Alcotest.(check string) "count 6.2k" "6.2k" (Texttable.count 6200);
  Alcotest.(check string) "count small" "502" (Texttable.count 502)

let test_stats () =
  Alcotest.(check (float 1e-9)) "percent" 25. (Stats.percent 1 4);
  Alcotest.(check (float 1e-9)) "percent zero whole" 0. (Stats.percent 1 0);
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check int) "ratio" 24 (Stats.ratio_scaled 100 0.24);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (2. /. 3.)) (Stats.stddev [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "max_over" 3. (Stats.max_over Float.abs [ 1.; -3.; 2. ])

let test_quantile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.quantile 0.5 xs);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.quantile 0. xs);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.quantile 1. xs);
  Alcotest.(check (float 1e-9)) "interpolated p75" 4. (Stats.quantile 0.75 xs);
  Alcotest.(check (float 1e-9)) "clamped above" 5. (Stats.quantile 2. xs);
  Alcotest.(check (float 1e-9)) "clamped below" 1. (Stats.quantile (-1.) xs);
  Alcotest.(check (float 1e-9)) "unsorted input" 3. (Stats.quantile 0.5 [ 5.; 1.; 3.; 2.; 4. ]);
  Alcotest.(check (float 1e-9)) "empty" 0. (Stats.quantile 0.5 []);
  Alcotest.(check (float 1e-9)) "singleton" 7. (Stats.quantile 0.99 [ 7. ])

let test_reservoir () =
  let r = Stats.Reservoir.create ~capacity:16 () in
  for i = 1 to 10 do
    Stats.Reservoir.add r (float_of_int i)
  done;
  (* under capacity: exact *)
  Alcotest.(check int) "count" 10 (Stats.Reservoir.count r);
  Alcotest.(check int) "kept all" 10 (Stats.Reservoir.kept r);
  Alcotest.(check (float 1e-9)) "mean" 5.5 (Stats.Reservoir.mean r);
  Alcotest.(check (float 1e-9)) "max" 10. (Stats.Reservoir.max_seen r);
  Alcotest.(check (float 1e-9)) "median" 5.5 (Stats.Reservoir.quantile r 0.5);
  (* over capacity: the sample is bounded but mean/max stay exact *)
  let r = Stats.Reservoir.create ~capacity:8 ~seed:1L () in
  for i = 1 to 1000 do
    Stats.Reservoir.add r (float_of_int i)
  done;
  Alcotest.(check int) "count over capacity" 1000 (Stats.Reservoir.count r);
  Alcotest.(check int) "kept bounded" 8 (Stats.Reservoir.kept r);
  Alcotest.(check (float 1e-9)) "exact mean" 500.5 (Stats.Reservoir.mean r);
  Alcotest.(check (float 1e-9)) "exact max" 1000. (Stats.Reservoir.max_seen r);
  List.iter
    (fun v -> Alcotest.(check bool) "samples from the stream" true (v >= 1. && v <= 1000.))
    (Stats.Reservoir.values r);
  (* deterministic under a fixed seed *)
  let run () =
    let r = Stats.Reservoir.create ~capacity:4 ~seed:9L () in
    for i = 1 to 100 do
      Stats.Reservoir.add r (float_of_int i)
    done;
    Stats.Reservoir.values r
  in
  Alcotest.(check bool) "seeded determinism" true (run () = run ())

let test_metrics () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr ~by:3 m "a";
  Metrics.incr m "b";
  Alcotest.(check int) "counter" 4 (Metrics.counter m "a");
  Alcotest.(check int) "unknown counter" 0 (Metrics.counter m "zzz");
  Alcotest.(check bool) "sorted counters" true (Metrics.counters m = [ ("a", 4); ("b", 1) ]);
  Metrics.record m "lat" 0.010;
  Metrics.record m "lat" 0.020;
  (match Metrics.latency m "lat" with
  | None -> Alcotest.fail "latency lost"
  | Some l ->
      Alcotest.(check int) "latency count" 2 l.Metrics.l_count;
      Alcotest.(check (float 1e-6)) "latency mean ms" 15. l.Metrics.l_mean_ms;
      Alcotest.(check (float 1e-6)) "latency max ms" 20. l.Metrics.l_max_ms);
  Alcotest.(check bool) "no such histogram" true (Metrics.latency m "zzz" = None);
  let v = Metrics.time m "timed" (fun () -> 42) in
  Alcotest.(check int) "time passes value through" 42 v;
  Alcotest.(check int) "time bumps count" 1 (Metrics.counter m "timed.count");
  (match Metrics.time m "boom" (fun () -> failwith "x") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  Alcotest.(check bool) "failed run still recorded" true (Metrics.latency m "boom" <> None);
  match Metrics.to_json m with
  | Json.Obj [ ("counters", Json.Obj _); ("latency_ms", Json.Obj _) ] -> ()
  | _ -> Alcotest.fail "metrics json shape"

(* Strutil properties vs character-by-character reference
   implementations, over a 3-letter alphabet so needles actually occur *)

let naive_cut ~on s =
  let rec go i =
    if i >= String.length s then None
    else if s.[i] = on then
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    else go (i + 1)
  in
  go 0

let naive_find_sub ~from s ~sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then if from <= n then Some from else None
  else
    let rec go i =
      if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
    in
    go from

let abc_string max_len =
  QCheck.string_gen_of_size (QCheck.Gen.int_bound max_len) (QCheck.Gen.oneofl [ 'a'; 'b'; 'c' ])

let qcheck_cut =
  QCheck.Test.make ~name:"cut matches reference" ~count:1000
    QCheck.(pair (abc_string 16) (oneofl [ 'a'; 'b'; 'c'; 'z' ]))
    (fun (s, on) -> Strutil.cut ~on s = naive_cut ~on s)

let qcheck_prefix_before =
  QCheck.Test.make ~name:"prefix_before consistent with cut" ~count:1000
    QCheck.(pair (abc_string 16) (oneofl [ 'a'; 'b'; 'c'; 'z' ]))
    (fun (s, on) ->
      Strutil.prefix_before ~on ~default:"DFLT" s
      = (match Strutil.cut ~on s with Some (before, _) -> before | None -> "DFLT"))

let qcheck_find_sub =
  QCheck.Test.make ~name:"find_sub matches reference (incl. empty needle)" ~count:1000
    QCheck.(triple (abc_string 16) (abc_string 4) (int_bound 20))
    (fun (s, sub, from) -> Strutil.find_sub ~from s ~sub = naive_find_sub ~from s ~sub)

let qcheck_find_sub_at_end =
  (* a needle planted exactly at the end must be found, and never past
     its own position *)
  QCheck.Test.make ~name:"find_sub finds a needle at the end" ~count:1000
    QCheck.(pair (abc_string 12) (abc_string 4))
    (fun (s, sub) ->
      let hay = s ^ sub in
      match Strutil.find_sub hay ~sub with
      | None -> false
      | Some i -> i <= String.length s && naive_find_sub ~from:0 hay ~sub = Some i)

let qcheck_leb128 =
  QCheck.Test.make ~name:"uleb128 roundtrip" ~count:500
    QCheck.(int_bound ((1 lsl 50) - 1))
    (fun v ->
      let w = Bytesio.Writer.create () in
      Bytesio.Writer.uleb128 w v;
      let r = Bytesio.Reader.of_string (Bytesio.Writer.contents w) in
      Bytesio.Reader.uleb128 r = v)

let qcheck_sleb128 =
  QCheck.Test.make ~name:"sleb128 roundtrip" ~count:500 QCheck.int (fun v ->
      let w = Bytesio.Writer.create () in
      Bytesio.Writer.sleb128 w v;
      let r = Bytesio.Reader.of_string (Bytesio.Writer.contents w) in
      Bytesio.Reader.sleb128 r = v)

let qcheck_prng_int =
  QCheck.Test.make ~name:"prng int in bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let v = Prng.int (Prng.create seed) bound in
      v >= 0 && v < bound)

(* ---- diag severity lattice (properties) ----------------------------- *)

let severity_gen = QCheck.oneofl [ Diag.Warning; Diag.Degraded; Diag.Fatal ]
let diag_of sev = Diag.v sev ~component:"test" "msg"

let qcheck_severity_total_order =
  QCheck.Test.make ~name:"severity_compare is a total order" ~count:500
    QCheck.(triple severity_gen severity_gen severity_gen)
    (fun (a, b, c) ->
      let ( <= ) x y = Diag.severity_compare x y <= 0 in
      (* antisymmetry + transitivity on the 3-point chain *)
      (if a <= b && b <= a then a = b else true)
      && (if a <= b && b <= c then a <= c else true)
      && (a <= b || b <= a))

let qcheck_worst_is_join =
  (* [worst] is the lattice join: order- and duplication-insensitive,
     and every element is <= the join *)
  QCheck.Test.make ~name:"worst is the lattice join" ~count:500
    QCheck.(list_of_size (QCheck.Gen.int_bound 8) severity_gen)
    (fun sevs ->
      let diags = List.map diag_of sevs in
      match (Diag.worst diags, sevs) with
      | None, [] -> true
      | None, _ :: _ | Some _, [] -> false
      | Some w, _ :: _ ->
          List.mem w sevs
          && List.for_all (fun s -> Diag.severity_compare s w <= 0) sevs
          && Diag.worst (List.rev diags) = Some w
          && Diag.worst (diags @ diags) = Some w)

let qcheck_admission_classify_monotone =
  (* pressure never decreases as the queue deepens, and the lattice
     bands sit exactly at their documented thresholds *)
  QCheck.Test.make ~name:"admission classify is monotone in depth" ~count:500
    QCheck.(pair (int_range 1 64) (int_range 0 128))
    (fun (limit, depth) ->
      let sev_rank = function
        | None -> 0
        | Some Diag.Warning -> 1
        | Some Diag.Degraded -> 2
        | Some Diag.Fatal -> 3
      in
      let c d = Ds_serve.Admission.classify ~limit d in
      sev_rank (c depth) <= sev_rank (c (depth + 1))
      && c 0 = None
      && c (limit + 1) = Some Diag.Fatal
      && (limit < 2 || c (limit / 2 - 1) <> Some Diag.Fatal))

let qcheck_demote_never_raises_severity =
  QCheck.Test.make ~name:"demote lowers Fatal, never raises severity" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_bound 6) severity_gen)
    (fun sevs ->
      let diags = List.map diag_of sevs in
      let demoted = List.map Diag.demote diags in
      List.for_all (fun d -> d.Diag.d_severity <> Diag.Fatal) demoted
      && List.for_all2
           (fun d d' -> Diag.severity_compare d'.Diag.d_severity d.Diag.d_severity <= 0)
           diags demoted
      (* demotion can only lower the join, and exit codes follow:
         demoted runs never exit 1 *)
      && (match (Diag.worst diags, Diag.worst demoted) with
         | None, None -> true
         | Some w, Some w' -> Diag.severity_compare w' w <= 0
         | _ -> false)
      && Diag.exit_code demoted <> 1)

(* ---- metrics under domain contention -------------------------------- *)

let test_metrics_domain_hammer () =
  let m = Metrics.create () in
  let domains = 4 and per_domain = 5_000 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Metrics.incr m "hammer.total";
              if i mod 2 = 0 then Metrics.incr ~by:3 m "hammer.even";
              Metrics.incr m (Printf.sprintf "hammer.domain.%d" d);
              if i mod 50 = 0 then Metrics.record m "hammer.lat" 0.001
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "total exact under contention" (domains * per_domain)
    (Metrics.counter m "hammer.total");
  Alcotest.(check int) "by:3 exact" (domains * per_domain / 2 * 3)
    (Metrics.counter m "hammer.even");
  for d = 0 to domains - 1 do
    Alcotest.(check int)
      (Printf.sprintf "domain %d private counter" d)
      per_domain
      (Metrics.counter m (Printf.sprintf "hammer.domain.%d" d))
  done;
  match Metrics.latency m "hammer.lat" with
  | Some l -> Alcotest.(check int) "latency count exact" (domains * (per_domain / 50)) l.l_count
  | None -> Alcotest.fail "histogram lost under contention"

(* ---- cooperative deadlines ------------------------------------------ *)

let test_deadline_basics () =
  Alcotest.(check bool) "unarmed by default" false (Deadline.armed ());
  Alcotest.(check bool) "unarmed remaining infinite" true
    (Deadline.remaining () = infinity);
  Deadline.check ();  (* no-op unarmed *)
  let r =
    Deadline.with_timeout ~label:"outer" 60. (fun () ->
        Alcotest.(check bool) "armed inside" true (Deadline.armed ());
        let rem = Deadline.remaining () in
        Alcotest.(check bool) "remaining near budget" true (rem > 50. && rem <= 60.);
        Deadline.check ();
        17)
  in
  Alcotest.(check int) "value through" 17 r;
  Alcotest.(check bool) "disarmed after" false (Deadline.armed ())

let test_deadline_expiry_raises () =
  match
    Deadline.with_timeout ~label:"tiny" 1e-9 (fun () ->
        Unix.sleepf 0.002;
        Deadline.check ();
        `Unreachable)
  with
  | `Unreachable -> Alcotest.fail "expired deadline must raise"
  | exception Deadline.Expired (label, over) ->
      Alcotest.(check string) "label carried" "tiny" label;
      Alcotest.(check bool) "over-by positive" true (over > 0.)

let test_deadline_nesting_tightens () =
  (* an inner with_timeout can only tighten: the outer (tighter) budget
     wins over a looser inner request *)
  Deadline.with_timeout ~label:"outer" 0.05 (fun () ->
      Deadline.with_timeout ~label:"inner" 3600. (fun () ->
          Alcotest.(check bool) "outer budget kept" true (Deadline.remaining () <= 0.05));
      (* and a tighter inner applies, then unwinds back to the outer *)
      Deadline.with_timeout ~label:"tight" 0.001 (fun () ->
          Alcotest.(check bool) "tightened" true (Deadline.remaining () <= 0.001));
      Alcotest.(check bool) "restored after inner" true (Deadline.remaining () > 0.001))

let suites =
  [
    ( "util.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "split independent" `Quick test_prng_split_independent;
        Alcotest.test_case "split labels differ" `Quick test_prng_split_labels_differ;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "sample" `Quick test_prng_sample;
        Alcotest.test_case "binomial" `Quick test_prng_binomial;
        QCheck_alcotest.to_alcotest qcheck_prng_int;
      ] );
    ( "util.bytesio",
      [
        Alcotest.test_case "leb128" `Quick test_leb128;
        Alcotest.test_case "endianness" `Quick test_endianness;
        Alcotest.test_case "cstring" `Quick test_cstring;
        Alcotest.test_case "truncated" `Quick test_truncated;
        Alcotest.test_case "align" `Quick test_align;
        Alcotest.test_case "sub reader" `Quick test_sub_reader;
        Alcotest.test_case "slice" `Quick test_slice;
        Alcotest.test_case "reader slice + expect" `Quick test_reader_slice_expect;
        QCheck_alcotest.to_alcotest qcheck_leb128;
        QCheck_alcotest.to_alcotest qcheck_sleb128;
      ] );
    ( "util.strutil",
      [
        Alcotest.test_case "cut / prefix_before / find_sub" `Quick test_strutil;
        QCheck_alcotest.to_alcotest qcheck_cut;
        QCheck_alcotest.to_alcotest qcheck_prefix_before;
        QCheck_alcotest.to_alcotest qcheck_find_sub;
        QCheck_alcotest.to_alcotest qcheck_find_sub_at_end;
      ] );
    ( "util.json",
      [
        Alcotest.test_case "string escapes" `Quick test_json_escapes;
        Alcotest.test_case "literals and numbers" `Quick test_json_literals_numbers;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "bar" `Quick test_table_bar;
        Alcotest.test_case "formats" `Quick test_table_formats;
        Alcotest.test_case "stats" `Quick test_stats;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "quantile" `Quick test_quantile;
        Alcotest.test_case "reservoir" `Quick test_reservoir;
        Alcotest.test_case "metrics" `Quick test_metrics;
        Alcotest.test_case "metrics domain hammer" `Quick test_metrics_domain_hammer;
      ] );
    ( "util.diag",
      [
        QCheck_alcotest.to_alcotest qcheck_severity_total_order;
        QCheck_alcotest.to_alcotest qcheck_worst_is_join;
        QCheck_alcotest.to_alcotest qcheck_admission_classify_monotone;
        QCheck_alcotest.to_alcotest qcheck_demote_never_raises_severity;
      ] );
    ( "util.deadline",
      [
        Alcotest.test_case "basics" `Quick test_deadline_basics;
        Alcotest.test_case "expiry raises" `Quick test_deadline_expiry_raises;
        Alcotest.test_case "nesting tightens" `Quick test_deadline_nesting_tightens;
      ] );
  ]
