(* ds_verify: the closed rejection taxonomy, the structured report's
   window/regs/trail anatomy, suggestion wiring (including the compat
   stable-probe hint on dependency-induced rules), the report codec, and
   the never-raise/always-classify properties the @verify-fuzz campaign
   gates at scale. *)

open Ds_bpf
module V = Ds_verify.Verify
module T = Ds_verify.Taxonomy
module Diag = Ds_util.Diag

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let rule_of insns =
  match V.verify_insns insns with
  | None -> "accepted"
  | Some f -> T.id f.V.fd_rule

(* ---- golden negative corpus: one program per taxonomy rule ---------- *)

let ret0 = Insn.[ Mov_imm { dst = 0; imm = 0 }; Exit ]

(* 512 register-file combinations (r0, r2..r9 each Uninit or Scalar)
   flowing into a 200-branch tail: ~100k forked states, past the 65536
   budget, with no other rule reachable on any path *)
let explosive =
  let diamonds =
    List.concat_map
      (fun r -> Insn.[ Jeq_imm { reg = 1; imm = 7; target = 1 }; Mov_imm { dst = r; imm = 1 } ])
      [ 0; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  let tail = List.init 200 (fun _ -> Insn.Jeq_imm { reg = 1; imm = 0; target = 0 }) in
  diamonds @ tail @ ret0

let golden =
  [
    ("empty-program", []);
    ("size-cap", List.init (Verifier.max_insns + 1) (fun _ -> Insn.Mov_imm { dst = 0; imm = 0 }));
    ("no-exit", Insn.[ Mov_imm { dst = 0; imm = 0 } ]);
    ("invalid-register", Insn.[ Mov_imm { dst = 11; imm = 0 }; Exit ]);
    ("uninit-register", Insn.[ Mov_reg { dst = 0; src = 3 }; Exit ]);
    ("write-to-r10", Insn.[ Mov_imm { dst = 10; imm = 0 }; Exit ]);
    ("ctx-out-of-bounds", Insn.[ Ldx { dst = 0; src = 1; off = 5000; size = DW }; Exit ]);
    ("stack-read-out-of-frame", Insn.[ Ldx { dst = 0; src = 10; off = -600; size = DW }; Exit ]);
    ( "stack-write-out-of-frame",
      Insn.[ Mov_imm { dst = 0; imm = 0 }; Stx { dst = 10; src = 0; off = -600; size = DW }; Exit ] );
    ( "unsafe-load-scalar",
      Insn.[ Mov_imm { dst = 2; imm = 7 }; Ldx { dst = 0; src = 2; off = 0; size = DW }; Exit ] );
    ( "write-into-ctx",
      Insn.[ Mov_imm { dst = 0; imm = 0 }; Stx { dst = 1; src = 0; off = 0; size = DW }; Exit ] );
    ( "bad-store-target",
      Insn.
        [
          Mov_imm { dst = 2; imm = 7 };
          Mov_imm { dst = 0; imm = 0 };
          Stx { dst = 2; src = 0; off = 0; size = DW };
          Exit;
        ] );
    ("unknown-helper", Insn.[ Call 9999; Exit ]);
    ( "backward-jump",
      Insn.[ Mov_imm { dst = 0; imm = 0 }; Jeq_imm { reg = 0; imm = 0; target = -2 }; Exit ] );
    ( "jump-out-of-range",
      Insn.[ Mov_imm { dst = 0; imm = 0 }; Jeq_imm { reg = 0; imm = 0; target = 10 }; Exit ] );
    ("uninit-r0-at-exit", Insn.[ Exit ]);
    ("path-explosion", explosive);
  ]

let test_golden_corpus () =
  List.iter
    (fun (expected, insns) ->
      Alcotest.(check string) expected expected (rule_of insns))
    golden;
  Alcotest.(check string) "clean program accepted" "accepted" (rule_of ret0)

let mkprog ?(section = "kprobe/do_unlinkat") ?(kfuncs = []) insns =
  { Obj.p_name = "t"; p_section = section; p_insns = insns; p_relocs = []; p_kfuncs = kfuncs }

let test_kfunc_rules () =
  (* index past the kfunc table: structurally wrong on every kernel *)
  (match V.verify_prog (mkprog Insn.[ Kfunc_call 3; Exit ]) with
  | Some f ->
      Alcotest.(check string) "oob rule" "kfunc-index-out-of-range" (T.id f.V.fd_rule);
      Alcotest.(check int) "oob insn" 0 f.V.fd_insn;
      Alcotest.(check string) "oob msg" "kfunc index out of range" f.V.fd_msg
  | None -> Alcotest.fail "kfunc index oob accepted");
  (* without a kernel, a well-indexed kfunc is accepted (name-checking
     is a load-time concern) *)
  (match V.verify_prog (mkprog ~kfuncs:[ "whatever" ] Insn.[ Kfunc_call 0; Exit ]) with
  | None -> ()
  | Some f -> Alcotest.fail ("kernel-less kfunc rejected: " ^ T.id f.V.fd_rule));
  (* against a real study kernel's BTF, an unknown name is the paper's
     dependency-induced rejection *)
  let kernel = Ds_bpf.Vmlinux.load (Testenv.image (Ds_ksrc.Version.v 5 4)) in
  match
    V.verify_prog ~kernel (mkprog ~kfuncs:[ "no_such_kfunc_xyz" ] Insn.[ Kfunc_call 0; Exit ])
  with
  | Some f ->
      Alcotest.(check string) "unknown kfunc rule" "unknown-kfunc" (T.id f.V.fd_rule);
      Alcotest.(check string) "loader wording preserved"
        "calling kernel function no_such_kfunc_xyz is not allowed" f.V.fd_msg;
      Alcotest.(check bool) "dependency induced" true (T.dependency_induced f.V.fd_rule)
  | None -> Alcotest.fail "unknown kfunc accepted"

let test_malformed_stream () =
  (match V.verify_stream "\xff\x00\x00\x00\x00\x00\x00\x00" with
  | Some f -> Alcotest.(check string) "unknown opcode" "malformed-insn" (T.id f.V.fd_rule)
  | None -> Alcotest.fail "bogus opcode accepted");
  (match V.verify_stream "\xb7\x00\x00" with
  | Some f ->
      Alcotest.(check string) "ragged stream" "malformed-insn" (T.id f.V.fd_rule);
      Alcotest.(check string) "decoder wording" "instruction stream not 8-aligned" f.V.fd_msg
  | None -> Alcotest.fail "ragged stream accepted");
  match V.verify_stream (Insn.encode ret0) with
  | None -> ()
  | Some f -> Alcotest.fail ("clean stream rejected: " ^ T.id f.V.fd_rule)

(* ---- finding anatomy: offset, window, regs, trail ------------------- *)

let test_finding_anatomy () =
  let insns =
    Insn.
      [
        Mov_imm { dst = 0; imm = 0 };
        Jeq_imm { reg = 0; imm = 0; target = 1 };
        Exit;
        Ldx { dst = 1; src = 0; off = 0; size = DW };
        Exit;
      ]
  in
  match V.verify_insns insns with
  | None -> Alcotest.fail "taken-path scalar deref accepted"
  | Some f ->
      Alcotest.(check string) "rule" "unsafe-load-scalar" (T.id f.V.fd_rule);
      Alcotest.(check int) "offending insn" 3 f.V.fd_insn;
      (* the trail records the one branch decision that reached it *)
      Alcotest.(check bool) "trail" true (f.V.fd_trail = [ (1, true) ]);
      (* the window is centred on the offending insn and rendered by
         Disasm.line *)
      Alcotest.(check bool) "window covers insn" true (List.mem_assoc 3 f.V.fd_window);
      Alcotest.(check string) "window line"
        (Disasm.line 3 (Insn.Ldx { dst = 1; src = 0; off = 0; size = DW }))
        (List.assoc 3 f.V.fd_window);
      (* the abstract register file at the failure point *)
      Alcotest.(check string) "r0 state" "scalar" (List.assoc "r0" f.V.fd_regs);
      Alcotest.(check string) "r1 state" "ctx" (List.assoc "r1" f.V.fd_regs);
      Alcotest.(check string) "r10 state" "stack" (List.assoc "r10" f.V.fd_regs);
      Alcotest.(check bool) "suggestion names bpf_probe_read" true
        (contains f.V.fd_suggestion "bpf_probe_read")

(* whole-program rejections carry no window/regs and insn -1 *)
let test_whole_program_shape () =
  match V.verify_insns [] with
  | None -> Alcotest.fail "empty program accepted"
  | Some f ->
      Alcotest.(check int) "insn -1" (-1) f.V.fd_insn;
      Alcotest.(check bool) "no window" true (f.V.fd_window = []);
      Alcotest.(check bool) "no regs" true (f.V.fd_regs = [])

(* ---- suggestions & compat wiring ------------------------------------ *)

let test_compat_suggestion () =
  (* unknown helper in a section the compat registry covers: the hint
     names the stable probe that resolves per kernel *)
  let s = T.suggestion ~section:"kprobe/blk_account_io_start" T.Unknown_helper in
  Alcotest.(check bool) "names block:io_start" true
    (contains s "block:io_start");
  (* same rule without a covered section: no probe claim *)
  let s' = T.suggestion ~section:"kprobe/not_a_registered_hook" T.Unknown_helper in
  Alcotest.(check bool) "no stray probe claim" false
    (contains s' "compat registry");
  (* program-induced rules never get a probe hint, covered section or not *)
  let s'' = T.suggestion ~section:"kprobe/blk_account_io_start" T.Scalar_deref in
  Alcotest.(check bool) "program-induced: no probe" false
    (contains s'' "block:io_start")

let test_taxonomy_closed () =
  Alcotest.(check int) "20 rules" 20 (List.length T.all);
  List.iter
    (fun r ->
      (match T.of_id (T.id r) with
      | Some r' -> Alcotest.(check bool) (T.id r) true (r = r')
      | None -> Alcotest.fail ("id does not round-trip: " ^ T.id r));
      Alcotest.(check bool) (T.id r ^ " described") true (T.describe r <> "");
      Alcotest.(check bool) (T.id r ^ " suggests") true (T.suggestion r <> ""))
    T.all;
  Alcotest.(check bool) "unknown id" true (T.of_id "no-such-rule" = None);
  (* the verifier's rules embed injectively *)
  let ids =
    List.sort_uniq compare
      (List.map (fun (_, insns) -> rule_of insns) golden)
  in
  Alcotest.(check int) "17 verifier rules distinguished" 17 (List.length ids)

(* ---- reports, codec, json ------------------------------------------- *)

let sample_report () =
  let prog = mkprog ~section:"kprobe/do_unlinkat" Insn.[ Call 9999; Exit ] in
  let obj =
    {
      Obj.o_name = "neg";
      o_built_for = "v5.4/x86";
      o_progs = [ prog; { prog with Obj.p_name = "ok"; p_section = "perf_event"; p_insns = ret0 } ];
      o_maps = [];
      o_btf = Ds_btf.Btf.create ();
    }
  in
  V.verify_bytes (Obj.write obj)

let test_report_and_codec () =
  let r = sample_report () in
  Alcotest.(check int) "two programs" 2 (List.length r.V.rp_progs);
  Alcotest.(check int) "one rejection" 1 (List.length (V.findings r));
  Alcotest.(check int) "degraded exit" 2 (Diag.exit_code r.V.rp_diags);
  (* codec roundtrip is exact, and the envelope (the /v1/verify and
     doctor --json payload) is byte-stable across it *)
  let r' = V.decode (V.encode r) in
  Alcotest.(check bool) "codec roundtrip" true (r = r');
  Alcotest.(check string) "envelope bytes stable"
    (Ds_util.Json.to_string (V.envelope r))
    (Ds_util.Json.to_string (V.envelope r'));
  (* corrupt payloads surface as Decode_error, never a crash *)
  (match V.decode "garbage" with
  | _ -> Alcotest.fail "garbage decoded"
  | exception Depsurf.Codec.Decode_error _ -> ());
  (* the human rendering names the rule and the hint *)
  let txt = V.render r in
  Alcotest.(check bool) "render names rule" true
    (contains txt "unknown-helper");
  Alcotest.(check bool) "render has hint" true (contains txt "hint:")

let test_garbage_bytes_report () =
  let r = V.verify_bytes "not an object at all" in
  Alcotest.(check int) "no programs" 0 (List.length r.V.rp_progs);
  Alcotest.(check bool) "fatal diag" true (Diag.worst r.V.rp_diags = Some Diag.Fatal);
  Alcotest.(check int) "fatal exit" 1 (Diag.exit_code r.V.rp_diags)

(* ---- properties: never raise, always classify ----------------------- *)

(* arbitrary instruction lists, biased to straddle every rule boundary:
   registers beyond r10, wild offsets, unknown helpers, jumps in both
   directions *)
let insn_gen =
  QCheck.Gen.(
    let reg = int_range 0 12 in
    let off = int_range (-700) 6000 in
    let size = oneofl [ Insn.B; Insn.H; Insn.W; Insn.DW ] in
    let insn =
      frequency
        [
          (3, map2 (fun dst imm -> Insn.Mov_imm { dst; imm }) reg small_int);
          (2, map2 (fun dst src -> Insn.Mov_reg { dst; src }) reg reg);
          (2, map2 (fun dst imm -> Insn.Add_imm { dst; imm }) reg small_int);
          ( 2,
            map2
              (fun (dst, src) (off, size) -> Insn.Ldx { dst; src; off; size })
              (pair reg reg) (pair off size) );
          ( 2,
            map2
              (fun (dst, src) (off, size) -> Insn.Stx { dst; src; off; size })
              (pair reg reg) (pair off size) );
          ( 2,
            map2
              (fun (reg, imm) target -> Insn.Jeq_imm { reg; imm; target })
              (pair reg small_int) (int_range (-5) 20) );
          (2, map (fun h -> Insn.Call h) (int_range 0 20));
          (1, map (fun i -> Insn.Kfunc_call i) (int_range 0 3));
          (1, return Insn.Exit);
        ]
    in
    list_size (int_range 0 40) insn)

let classified f =
  T.of_id (T.id f.V.fd_rule) = Some f.V.fd_rule
  && f.V.fd_suggestion <> ""
  && f.V.fd_insn >= -1

let qcheck_verify_total =
  QCheck.Test.make ~name:"verify on arbitrary insns never raises, always classifies"
    ~count:500
    (QCheck.make ~print:(fun l -> string_of_int (List.length l) ^ " insns") insn_gen)
    (fun insns ->
      match V.verify_insns insns with
      | None -> true
      | Some f -> classified f
      | exception _ -> false)

let qcheck_stream_total =
  QCheck.Test.make ~name:"verify_stream on arbitrary bytes never raises" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 0 256))
    (fun bytes ->
      match V.verify_stream bytes with
      | None -> true
      | Some f -> classified f
      | exception _ -> false)

let qcheck_bytes_total =
  QCheck.Test.make ~name:"verify_bytes on arbitrary bytes never raises" ~count:100
    QCheck.(string_of_size (QCheck.Gen.int_range 0 512))
    (fun bytes ->
      match V.verify_bytes bytes with
      | r -> List.for_all (fun (_, f) -> classified f) (V.findings r)
      | exception _ -> false)

(* ---- campaign plumbing ---------------------------------------------- *)

let test_campaign_smoke () =
  let prog = mkprog ret0 in
  let c = V.campaign_insns ~count:200 ~seed:7L prog in
  Alcotest.(check bool) "enough mutants" true (c.V.cp_total >= 200);
  Alcotest.(check bool) "no crashes" true (c.V.cp_crashed = []);
  Alcotest.(check int) "no unclassified" 0 c.V.cp_unclassified;
  Alcotest.(check int) "tally adds up" c.V.cp_total (c.V.cp_accepted + c.V.cp_rejected);
  Alcotest.(check int) "rule tally matches rejections" c.V.cp_rejected
    (List.fold_left (fun a (_, n) -> a + n) 0 c.V.cp_rules);
  (* determinism: same seed, same corpus, same tally *)
  let c' = V.campaign_insns ~count:200 ~seed:7L prog in
  Alcotest.(check bool) "deterministic" true (c = c');
  let m = V.merge c c' in
  Alcotest.(check int) "merge totals" (2 * c.V.cp_total) m.V.cp_total

let suites =
  [
    ( "verify",
      [
        Alcotest.test_case "golden negative corpus" `Quick test_golden_corpus;
        Alcotest.test_case "kfunc rules" `Quick test_kfunc_rules;
        Alcotest.test_case "malformed stream" `Quick test_malformed_stream;
        Alcotest.test_case "finding anatomy" `Quick test_finding_anatomy;
        Alcotest.test_case "whole-program shape" `Quick test_whole_program_shape;
        Alcotest.test_case "compat suggestion wiring" `Quick test_compat_suggestion;
        Alcotest.test_case "taxonomy closed" `Quick test_taxonomy_closed;
        Alcotest.test_case "report + codec" `Quick test_report_and_codec;
        Alcotest.test_case "garbage bytes" `Quick test_garbage_bytes_report;
        Alcotest.test_case "campaign smoke" `Quick test_campaign_smoke;
        QCheck_alcotest.to_alcotest qcheck_verify_total;
        QCheck_alcotest.to_alcotest qcheck_stream_total;
        QCheck_alcotest.to_alcotest qcheck_bytes_total;
      ] );
  ]
