(* The delta tier: a release surface stored as base-reference +
   per-symbol ops. The load-bearing guarantee is byte-identity —
   [Codec.encode_surface (apply ~base (diff_surfaces ~base next))] must
   equal the non-delta encoding of [next] — property-tested across the
   release corpus and under random section perturbations. *)

open Ds_ksrc
open Depsurf

let ds = lazy (Dataset.build ~seed:Testenv.seed Calibration.test_scale)

let surfaces =
  lazy
    (List.map
       (fun (v, cfg) -> Dataset.surface (Lazy.force ds) v cfg)
       Dataset.study_images)

(* consecutive release pairs per config: the deltas the store would hold *)
let pairs =
  lazy
    (let images = Dataset.study_images in
     List.filter_map
       (fun (v, cfg) ->
         let next =
           List.find_opt
             (fun (v', cfg') -> cfg' = cfg && Version.compare v v' < 0)
             (List.sort
                (fun (a, _) (b, _) -> Version.compare a b)
                (List.filter (fun (_, cfg') -> cfg' = cfg) images))
         in
         Option.map
           (fun (v', _) ->
             let ds = Lazy.force ds in
             (Dataset.surface ds v cfg, Dataset.surface ds v' cfg))
           next)
       images)

let check_identity name base next =
  let d = Delta.diff_surfaces ~base next in
  let wire = Delta.encode d in
  let d' = Delta.decode wire in
  let rebuilt = Delta.apply ~base d' in
  Alcotest.(check bool)
    (name ^ ": byte-identical reconstruction")
    true
    (Codec.encode_surface rebuilt = Codec.encode_surface next);
  (* the wire form itself roundtrips *)
  Alcotest.(check bool) (name ^ ": wire roundtrip") true (Delta.encode d' = wire)

let test_corpus_identity () =
  let pairs = Lazy.force pairs in
  Alcotest.(check bool) "corpus has release pairs" true (pairs <> []);
  List.iteri
    (fun i (base, next) ->
      check_identity (Printf.sprintf "pair %d" i) base next)
    pairs

let test_self_delta () =
  List.iter
    (fun s ->
      let d = Delta.diff_surfaces ~base:s s in
      let c = Delta.counts d in
      Alcotest.(check int) "no adds" 0 c.Delta.dc_adds;
      Alcotest.(check int) "no removes" 0 c.Delta.dc_removes;
      Alcotest.(check int) "no changes" 0 c.Delta.dc_changes;
      Alcotest.(check bool) "identity applies" true
        (Codec.encode_surface (Delta.apply ~base:s d) = Codec.encode_surface s))
    (Lazy.force surfaces)

(* the delta-derived diff must agree with the full two-surface diff —
   same populations, same change detection, section by section *)
let test_to_diff_agrees () =
  List.iter
    (fun (base, next) ->
      let full = Diff.compare_surfaces Diff.Across_versions base next in
      let d = Delta.diff_surfaces ~base next in
      let derived = Delta.to_diff ~base d in
      let check_sec name (a : _ Diff.item_diff) (b : _ Diff.item_diff) =
        Alcotest.(check (list string)) (name ^ " added") a.Diff.d_added b.Diff.d_added;
        Alcotest.(check (list string)) (name ^ " removed") a.Diff.d_removed b.Diff.d_removed;
        Alcotest.(check (list string))
          (name ^ " changed")
          (List.map fst a.Diff.d_changed)
          (List.map fst b.Diff.d_changed);
        Alcotest.(check int) (name ^ " common") a.Diff.d_common b.Diff.d_common
      in
      check_sec "funcs" full.Diff.df_funcs derived.Diff.df_funcs;
      check_sec "structs" full.Diff.df_structs derived.Diff.df_structs;
      check_sec "tracepoints" full.Diff.df_tracepoints derived.Diff.df_tracepoints;
      check_sec "syscalls" full.Diff.df_syscalls derived.Diff.df_syscalls)
    (Lazy.force pairs)

let test_wrong_base_rejected () =
  match Lazy.force pairs with
  | [] -> Alcotest.fail "no pairs"
  | (base, next) :: _ ->
      let d = Delta.diff_surfaces ~base next in
      (* applying to the surface the delta produces, instead of the one
         it was computed against, is a corrupt store entry *)
      (match Delta.apply ~base:next d with
      | _ -> Alcotest.fail "wrong base accepted"
      | exception Codec.Decode_error _ -> ())

let test_truncation_rejected () =
  match Lazy.force pairs with
  | [] -> Alcotest.fail "no pairs"
  | (base, next) :: _ ->
      let wire = Delta.encode (Delta.diff_surfaces ~base next) in
      let truncated = String.sub wire 0 (String.length wire - 1) in
      (match Delta.decode truncated with
      | _ -> Alcotest.fail "truncated delta decoded"
      | exception _ -> ());
      (* trailing junk is as corrupt as missing bytes *)
      match Delta.decode (wire ^ "\x00") with
      | _ -> Alcotest.fail "oversized delta decoded"
      | exception _ -> ()

(* O(changed): dropping exactly one func and one syscall costs exactly
   two ops, never a resync of the untouched sections *)
let test_ops_proportional () =
  let s = List.hd (Lazy.force surfaces) in
  match (s.Surface.s_funcs, s.Surface.s_syscalls) with
  | f :: fs, _ :: sys ->
      let next =
        Surface.v ~version:s.Surface.s_version ~arch:s.Surface.s_arch
          ~flavor:s.Surface.s_flavor ~gcc:s.Surface.s_gcc ~funcs:fs
          ~structs:s.Surface.s_structs ~tracepoints:s.Surface.s_tracepoints
          ~syscalls:sys
      in
      let d = Delta.diff_surfaces ~base:s next in
      let c = Delta.counts d in
      Alcotest.(check int) "two removes" 2 c.Delta.dc_removes;
      Alcotest.(check int) "no adds" 0 c.Delta.dc_adds;
      Alcotest.(check int) "no changes" 0 c.Delta.dc_changes;
      Alcotest.(check bool) "func removal surfaces as a dep" true
        (List.mem (Depset.Dep_func f.Surface.fe_name) (Delta.changed_deps d));
      check_identity "one-symbol" s next
  | _ -> Alcotest.fail "test surface has no funcs/syscalls"

let test_changed_deps_excludes_adds () =
  let s = List.hd (Lazy.force surfaces) in
  match s.Surface.s_funcs with
  | f :: fs ->
      (* base lacks [f]; the next surface adds it back: no dep changes *)
      let base =
        Surface.v ~version:s.Surface.s_version ~arch:s.Surface.s_arch
          ~flavor:s.Surface.s_flavor ~gcc:s.Surface.s_gcc ~funcs:fs
          ~structs:s.Surface.s_structs ~tracepoints:s.Surface.s_tracepoints
          ~syscalls:s.Surface.s_syscalls
      in
      let d = Delta.diff_surfaces ~base s in
      let c = Delta.counts d in
      Alcotest.(check int) "one add" 1 c.Delta.dc_adds;
      Alcotest.(check bool) "adds are not breaking deps" false
        (List.mem (Depset.Dep_func f.Surface.fe_name) (Delta.changed_deps d))
  | _ -> Alcotest.fail "test surface has no funcs"

(* random perturbations: drop a seeded subset of every section and check
   the reconstruction invariant holds for surfaces the corpus never
   produces naturally *)
let qcheck_perturbed_identity =
  QCheck.Test.make ~name:"apply (diff base next) is byte-identical for perturbed next"
    ~count:40
    QCheck.(pair (int_range 0 1000) (int_range 0 2))
    (fun (seed, which) ->
      let surfaces = Lazy.force surfaces in
      let s = List.nth surfaces (which mod List.length surfaces) in
      let st = Random.State.make [| seed; which |] in
      let keep l = List.filter (fun _ -> Random.State.int st 4 <> 0) l in
      let next =
        Surface.v ~version:s.Surface.s_version ~arch:s.Surface.s_arch
          ~flavor:s.Surface.s_flavor ~gcc:s.Surface.s_gcc
          ~funcs:(keep s.Surface.s_funcs)
          ~structs:(keep s.Surface.s_structs)
          ~tracepoints:(keep s.Surface.s_tracepoints)
          ~syscalls:(keep s.Surface.s_syscalls)
      in
      let d = Delta.diff_surfaces ~base:s next in
      let rebuilt = Delta.apply ~base:s (Delta.decode (Delta.encode d)) in
      Codec.encode_surface rebuilt = Codec.encode_surface next)

let suites =
  [
    ( "delta",
      [
        Alcotest.test_case "corpus byte-identity" `Quick test_corpus_identity;
        Alcotest.test_case "self delta is empty" `Quick test_self_delta;
        Alcotest.test_case "to_diff agrees with compare_surfaces" `Quick test_to_diff_agrees;
        Alcotest.test_case "wrong base rejected" `Quick test_wrong_base_rejected;
        Alcotest.test_case "truncation rejected" `Quick test_truncation_rejected;
        Alcotest.test_case "ops proportional to change" `Quick test_ops_proportional;
        Alcotest.test_case "adds excluded from changed deps" `Quick
          test_changed_deps_excludes_adds;
        QCheck_alcotest.to_alcotest qcheck_perturbed_identity;
      ] );
  ]
