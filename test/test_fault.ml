(* Fault-injection tests for the lenient ingestion path: mutated images
   must never escape an uncaught exception, anything lost must surface
   as a typed diagnostic, and a clean image must come out byte-identical
   to the strict path. The heavyweight >=500-mutation-per-image sweep
   lives in fuzz_main.ml under the @fuzz alias; this suite keeps the
   structured corpus and exhaustive header sweeps inside `dune runtest`. *)

open Ds_util
open Ds_elf
open Ds_ksrc
open Depsurf
module Faultgen = Ds_faultgen.Faultgen

let v54 = Version.v 5 4
let image_bytes = lazy (Elf.write (Testenv.image v54))

let section name =
  match Elf.find_section (Testenv.image v54) name with
  | Some s -> s.Elf.sec_data
  | None -> Alcotest.fail ("study image lacks " ^ name)

(* health functions for Faultgen.classify, one per pipeline level *)
let elf_health bytes = Ds_util.Diag.diags (Elf.read ~mode:`Lenient bytes)
let btf_health bytes = Ds_util.Diag.diags (Ds_btf.Btf.decode ~mode:`Lenient bytes)
let surface_health bytes = Surface.health (Ds_util.Diag.ok (Surface.extract ~mode:`Lenient bytes))
let obj_health bytes = Ds_util.Diag.diags (Ds_bpf.Obj.read ~mode:`Lenient bytes)

let no_crash name health bytes =
  match Faultgen.classify health bytes with
  | Faultgen.Crashed e -> Alcotest.fail (Printf.sprintf "%s crashed: %s" name e)
  | Faultgen.Clean | Faultgen.Degraded | Faultgen.Fatal -> ()

(* Flip every bit of the first [limit] bytes and feed each mutant to
   both modes: lenient must not raise at all, strict must raise only
   the parser's typed exception (never a bare Invalid_argument or
   Failure from a raw read). *)
let sweep_header ~limit ~health ~strict_ok data =
  let limit = min limit (String.length data) in
  for byte = 0 to limit - 1 do
    for bit = 0 to 7 do
      let m = Faultgen.flip_bit data ~byte ~bit in
      let name = Printf.sprintf "flip %d.%d" byte bit in
      no_crash name health m;
      match strict_ok m with
      | () -> ()
      | exception e ->
          Alcotest.fail
            (Printf.sprintf "%s: strict raised untyped %s" name (Printexc.to_string e))
    done
  done

let test_elf_header_sweep () =
  let data = Lazy.force image_bytes in
  sweep_header ~limit:64 ~health:elf_health data ~strict_ok:(fun m ->
      match Elf.read m with
      | _ -> ()
      | exception Elf.Bad_elf _ | (exception Bytesio.Truncated _) -> ())

let test_btf_header_sweep () =
  let data = section ".BTF" in
  sweep_header ~limit:24 ~health:btf_health data ~strict_ok:(fun m ->
      match Ds_btf.Btf.decode m with
      | _ -> ()
      | exception Ds_btf.Btf.Bad_btf _ | (exception Bytesio.Truncated _) -> ())

let test_dwarf_header_sweep () =
  let info = section ".debug_info" in
  let abbrev = section ".debug_abbrev" in
  (* unit header is 11 bytes; sweep past it into the first DIEs *)
  let sweep_info m = Ds_util.Diag.diags (Ds_dwarf.Info.decode ~mode:`Lenient ~info:m ~abbrev ())
  and sweep_abbrev m = Ds_util.Diag.diags (Ds_dwarf.Info.decode ~mode:`Lenient ~info ~abbrev:m ()) in
  let strict_ok decode m =
    match decode m with
    | _ -> ()
    | exception Ds_dwarf.Die.Bad_dwarf _ | (exception Bytesio.Truncated _) -> ()
  in
  sweep_header ~limit:32 ~health:sweep_info info
    ~strict_ok:(strict_ok (fun m -> ignore (Ds_dwarf.Info.decode ~info:m ~abbrev ())));
  sweep_header ~limit:32 ~health:sweep_abbrev abbrev
    ~strict_ok:(strict_ok (fun m -> ignore (Ds_dwarf.Info.decode ~info ~abbrev:m ())))

(* The full structured corpus (boundary truncations, zeroed/corrupted
   section headers, bogus string-table indices...) through the complete
   image -> surface pipeline: zero crashes, and every non-clean outcome
   is backed by at least one typed diagnostic. *)
let test_structured_corpus_pipeline () =
  let data = Lazy.force image_bytes in
  let muts = Faultgen.mutations ~count:0 ~seed:Testenv.seed data in
  Alcotest.(check bool) "corpus non-trivial" true (List.length muts > 50);
  let tally, crashed = Faultgen.survey surface_health muts in
  List.iter
    (fun (name, e) -> Printf.eprintf "crashed %s: %s\n" name e)
    crashed;
  Alcotest.(check int) "zero crashes" 0 tally.Faultgen.n_crashed;
  (* the corpus must actually exercise both failure classes: zeroed
     debug sections degrade, header truncations are fatal *)
  Alcotest.(check bool) "some mutations degrade" true (tally.Faultgen.n_degraded > 0);
  Alcotest.(check bool) "some mutations are fatal" true (tally.Faultgen.n_fatal > 0)

let test_obj_structured_corpus () =
  let obj = Test_bpf.build_obj ~v:v54 Test_bpf.biotop_spec in
  let data = Ds_bpf.Obj.write obj in
  let muts = Faultgen.mutations ~count:100 ~seed:Testenv.seed data in
  let tally, crashed = Faultgen.survey obj_health muts in
  List.iter
    (fun (name, e) -> Printf.eprintf "crashed %s: %s\n" name e)
    crashed;
  Alcotest.(check int) "zero crashes" 0 tally.Faultgen.n_crashed

(* ------------------------------------------------------------------ *)
(* Golden: clean images unchanged by the lenient machinery             *)
(* ------------------------------------------------------------------ *)

let test_clean_image_zero_diags () =
  let s = Ds_util.Diag.ok (Surface.extract ~mode:`Lenient (Lazy.force image_bytes)) in
  Alcotest.(check int) "no diagnostics" 0 (List.length (Surface.health s));
  Alcotest.(check bool) "not degraded" false (Surface.degraded s)

let test_clean_lenient_equals_strict () =
  let data = Lazy.force image_bytes in
  let lenient = Ds_util.Diag.ok (Surface.extract ~mode:`Lenient data) in
  let strict = Ds_util.Diag.ok (Surface.extract data) in
  Alcotest.(check string) "identical export JSON"
    (Json.to_string (Export.surface strict))
    (Json.to_string (Export.surface lenient))

let test_determinism () =
  let data = Lazy.force image_bytes in
  (* ask for more than the structured base so the seeded random tail is
     actually exercised *)
  let count = List.length (Faultgen.mutations ~count:0 ~seed:7L data) + 25 in
  let a = Faultgen.mutations ~count ~seed:7L data in
  let b = Faultgen.mutations ~count ~seed:7L data in
  let c = Faultgen.mutations ~count ~seed:8L data in
  Alcotest.(check int) "count honoured" count (List.length a);
  Alcotest.(check bool) "same seed, same corpus" true (a = b);
  Alcotest.(check bool) "different seed, different flips" true (a <> c)

(* ------------------------------------------------------------------ *)
(* Random mutations (structure-blind)                                  *)
(* ------------------------------------------------------------------ *)

let qcheck_random_flip_no_crash =
  QCheck.Test.make ~name:"random bit flip never crashes surface extraction" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_bound 7))
    (fun (pos, bit) ->
      let data = Lazy.force image_bytes in
      let m = Faultgen.flip_bit data ~byte:(pos mod String.length data) ~bit in
      match Faultgen.classify surface_health m with
      | Faultgen.Crashed _ -> false
      | _ -> true)

let qcheck_random_truncation_no_crash =
  QCheck.Test.make ~name:"random truncation never crashes surface extraction" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun len ->
      let data = Lazy.force image_bytes in
      let m = Faultgen.truncate data ~len:(len mod (String.length data + 1)) in
      match Faultgen.classify surface_health m with
      | Faultgen.Crashed _ -> false
      | _ -> true)

let qcheck_garbage_input_fatal_not_crash =
  QCheck.Test.make ~name:"arbitrary bytes yield a diagnostic, not a crash" ~count:50
    QCheck.(string_of_size (QCheck.Gen.int_range 0 4096))
    (fun data ->
      match Faultgen.classify surface_health data with
      | Faultgen.Crashed _ -> false
      | Faultgen.Clean ->
          (* only the empty prefix of a valid image could be clean, and
             arbitrary bytes never are: garbage must carry a diagnostic *)
          false
      | Faultgen.Degraded | Faultgen.Fatal -> true)

(* A degraded surface must be visible in the mismatch report: the image
   row (and the legend) carry the [~] marker end-to-end, from
   [Surface.s_health] through [Report.matrix_of_surfaces] to the
   rendered matrix — the same path [depsurf serve]'s /mismatch uses. *)
let test_degraded_matrix_marker () =
  let ds = Dataset.build ~seed:Testenv.seed Calibration.test_scale in
  let obj =
    snd
      (List.find
         (fun ((p : Ds_corpus.Table7.profile), _) -> p.pr_name = "biotop")
         (Ds_corpus.Corpus.build_all ds ()))
  in
  let base_img = (Version.v 5 4, Config.x86_generic) in
  let target_img = (Version.v 4 4, Config.x86_generic) in
  let base = Dataset.surface ds (fst base_img) (snd base_img) in
  let clean_target = Dataset.surface ds (fst target_img) (snd target_img) in
  let degraded_target =
    Surface.with_health
      [ Diag.v Diag.Degraded ~component:"surface" "dwarf section truncated" ]
      clean_target
  in
  let render target =
    Report.render_matrix
      (Report.matrix_of_surfaces
         ~baseline:(base_img, base)
         ~targets:[ (target_img, target) ]
         obj)
  in
  let clean_report = render clean_target in
  let degraded_report = render degraded_target in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "degraded row marked" true (contains degraded_report "~ v4.4");
  Alcotest.(check bool) "legend explains the marker" true
    (contains degraded_report "~ degraded image");
  Alcotest.(check bool) "clean row unmarked" false (contains clean_report "~ v4.4");
  Alcotest.(check bool) "clean legend unmarked" false (contains clean_report "~ degraded image");
  (* apart from the marker and legend, the statuses are the same: a
     degraded image changes presentation, never the analysis *)
  Alcotest.(check bool) "same width modulo marker" true
    (String.length degraded_report >= String.length clean_report)

(* ------------------------------------------------------------------ *)
(* Deprecated wrappers: thin, equivalent forwards to read ?mode        *)
(* ------------------------------------------------------------------ *)

(* the *_lenient entrypoints are deprecated aliases of the unified
   [read ~mode:`Lenient] API; until they are removed they must stay
   byte-equivalent to it *)
module Legacy = struct
  [@@@ocaml.alert "-deprecated"]
  [@@@ocaml.warning "-3"]

  let test_wrappers_equivalent () =
    let data = Lazy.force image_bytes in
    let m = Faultgen.zero_range data ~pos:(String.length data / 2) ~len:512 in
    let strings ds = List.map Diag.to_string ds in
    let r = Elf.read_lenient m and u = Elf.read ~mode:`Lenient m in
    Alcotest.(check (list string)) "elf diags" (strings (Diag.diags u)) (strings r.Elf.r_diags);
    Alcotest.(check string) "elf image" (Elf.write (Diag.ok u)) (Elf.write r.Elf.r_elf);
    let surface_json s = Json.to_string (Export.surface s) in
    Alcotest.(check string) "surface"
      (surface_json (Diag.ok (Surface.extract ~mode:`Lenient m)))
      (surface_json (Surface.extract_lenient m));
    let btf_bytes = "\x9f\xeb\x01\x00" in
    let b = Ds_btf.Btf.decode_lenient btf_bytes
    and ub = Ds_btf.Btf.decode ~mode:`Lenient btf_bytes in
    Alcotest.(check (list string)) "btf diags"
      (strings (Diag.diags ub)) (strings b.Ds_btf.Btf.b_diags);
    let o = Ds_bpf.Obj.read_lenient "garbage"
    and uo = Ds_bpf.Obj.read ~mode:`Lenient "garbage" in
    Alcotest.(check (list string)) "obj diags"
      (strings (Diag.diags uo)) (strings o.Ds_bpf.Obj.o_diags);
    let cus, ds = Ds_dwarf.Info.decode_lenient ~info:"\x01" ~abbrev:"" in
    let ud = Ds_dwarf.Info.decode ~mode:`Lenient ~info:"\x01" ~abbrev:"" () in
    Alcotest.(check int) "dwarf cus" (List.length (Diag.ok ud)) (List.length cus);
    Alcotest.(check (list string)) "dwarf diags" (strings (Diag.diags ud)) (strings ds)
end

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "elf header sweep" `Quick test_elf_header_sweep;
        Alcotest.test_case "btf header sweep" `Quick test_btf_header_sweep;
        Alcotest.test_case "dwarf header sweep" `Quick test_dwarf_header_sweep;
        Alcotest.test_case "structured corpus, full pipeline" `Slow
          test_structured_corpus_pipeline;
        Alcotest.test_case "bpf object structured corpus" `Quick test_obj_structured_corpus;
        Alcotest.test_case "clean image: zero diagnostics" `Quick test_clean_image_zero_diags;
        Alcotest.test_case "clean image: lenient == strict" `Quick
          test_clean_lenient_equals_strict;
        Alcotest.test_case "corpus determinism" `Quick test_determinism;
        Alcotest.test_case "degraded matrix carries ~ marker" `Quick
          test_degraded_matrix_marker;
        QCheck_alcotest.to_alcotest qcheck_random_flip_no_crash;
        QCheck_alcotest.to_alcotest qcheck_random_truncation_no_crash;
        QCheck_alcotest.to_alcotest qcheck_garbage_input_fatal_not_crash;
        Alcotest.test_case "deprecated wrappers forward" `Quick
          Legacy.test_wrappers_equivalent;
      ] );
  ]
