(* The parallel execution layer: pool determinism, exactly-once
   memoization under concurrent access, exception propagation, shutdown,
   and the jobs=1 vs jobs=N golden-equality guarantee. *)

open Ds_util
open Ds_ksrc

let test_map_list_deterministic () =
  let xs = List.init 200 Fun.id in
  let f x = (x * x) + 1 in
  let expected = List.map f xs in
  Par.run ~jobs:4 (fun p ->
      Alcotest.(check (list int)) "parallel equals sequential" expected (Par.map_list p f xs));
  Par.run ~jobs:1 (fun p ->
      Alcotest.(check int) "size-1 pool" 1 (Par.jobs p);
      Alcotest.(check (list int)) "sequential fallback" expected (Par.map_list p f xs))

let test_map_reduce_ordered () =
  (* string concat is not commutative: any reordering would show *)
  let xs = List.init 60 Fun.id in
  let expected = List.fold_left (fun acc x -> acc ^ string_of_int x) "" xs in
  Par.run ~jobs:4 (fun p ->
      let got = Par.map_reduce p ~map:string_of_int ~reduce:( ^ ) ~init:"" xs in
      Alcotest.(check string) "left-to-right fold" expected got)

let test_map_list_chunked () =
  let xs = List.init 203 Fun.id in
  let f x = (x * 3) - 1 in
  let expected = List.map f xs in
  Par.run ~jobs:4 (fun p ->
      (* auto chunk, explicit chunk sizes (including ones that do not
         divide the list length), and the degenerate chunk=1 all keep
         input order *)
      Alcotest.(check (list int)) "auto chunk" expected (Par.map_list_chunked p f xs);
      List.iter
        (fun c ->
          Alcotest.(check (list int))
            (Printf.sprintf "chunk=%d" c)
            expected
            (Par.map_list_chunked ~chunk:c p f xs))
        [ 1; 2; 7; 50; 203; 1000 ];
      Alcotest.(check (list int)) "empty list" [] (Par.map_list_chunked p f []);
      Alcotest.check_raises "chunk=0 rejected"
        (Invalid_argument "Par.map_list_chunked: chunk must be >= 1") (fun () ->
          ignore (Par.map_list_chunked ~chunk:0 p f xs)));
  Par.run ~jobs:1 (fun p ->
      Alcotest.(check (list int)) "jobs=1" expected (Par.map_list_chunked p f xs))

let test_map_list_chunked_exception () =
  Par.run ~jobs:4 (fun p ->
      Alcotest.check_raises "chunked re-raises" (Failure "bad 42") (fun () ->
          ignore
            (Par.map_list_chunked ~chunk:10 p
               (fun x -> if x = 42 then failwith "bad 42" else x)
               (List.init 100 Fun.id))))

let test_map_list_chunked_edges_no_queue () =
  (* the empty-input and chunk >= length edges short-circuit before the
     queue: they must keep working on a pool that is already shut down
     (submitting there raises), proving no future is ever created *)
  let p = Par.create ~jobs:2 () in
  Par.shutdown p;
  Alcotest.(check (list int)) "empty on a shut-down pool" [] (Par.map_list_chunked p succ []);
  Alcotest.(check (list int))
    "chunk >= length on a shut-down pool" [ 2; 3; 4 ]
    (Par.map_list_chunked ~chunk:10 p succ [ 1; 2; 3 ]);
  Alcotest.(check (list int))
    "explicit chunk = length on a shut-down pool" [ 0; 2; 4 ]
    (Par.map_list_chunked ~chunk:3 p (fun x -> 2 * x) [ 0; 1; 2 ])

let test_future_exception () =
  Par.run ~jobs:4 (fun p ->
      let fut = Par.submit p (fun () -> failwith "boom") in
      Alcotest.check_raises "await re-raises" (Failure "boom") (fun () ->
          ignore (Par.await fut));
      Alcotest.check_raises "map_list re-raises" (Failure "bad 7") (fun () ->
          ignore
            (Par.map_list p
               (fun x -> if x = 7 then failwith "bad 7" else x)
               (List.init 20 Fun.id))))

let test_shutdown () =
  let p = Par.create ~jobs:4 () in
  let futs = List.init 10 (fun i -> Par.submit p (fun () -> i * 2)) in
  Par.shutdown p;
  (* queued work is drained, not dropped *)
  Alcotest.(check (list int)) "drained on shutdown" (List.init 10 (fun i -> i * 2))
    (List.map Par.await futs);
  Par.shutdown p;
  Alcotest.check_raises "submit after shutdown" (Invalid_argument "Par.submit: pool is shut down")
    (fun () -> ignore (Par.submit p (fun () -> ())));
  (* repeated create/shutdown must not leak or wedge domains *)
  for _ = 1 to 10 do
    Par.run ~jobs:4 (fun p ->
        Alcotest.(check (list int)) "fresh pool works" [ 1; 2; 3 ] (Par.map_list p Fun.id [ 1; 2; 3 ]))
  done

let in_domains n f =
  let ds = List.init n (fun i -> Domain.spawn (fun () -> f i)) in
  List.map Domain.join ds

let test_memo_exactly_once () =
  let memo = Par.Memo.create 8 in
  let hits = Atomic.make 0 in
  let results =
    in_domains 4 (fun _ ->
        List.init 50 (fun _ ->
            Par.Memo.find_or_compute memo "k" (fun () ->
                Atomic.incr hits;
                42)))
  in
  Alcotest.(check int) "computed once" 1 (Atomic.get hits);
  List.iter (Alcotest.(check (list int)) "all callers see it" (List.init 50 (fun _ -> 42))) results;
  (* many keys, each exactly once *)
  let memo = Par.Memo.create 8 in
  let per_key = Array.make 20 0 in
  let counts = Array.init 20 (fun _ -> Atomic.make 0) in
  ignore
    (in_domains 4 (fun _ ->
         List.init 20 (fun k ->
             Par.Memo.find_or_compute memo k (fun () ->
                 Atomic.incr counts.(k);
                 k * 10))));
  Array.iteri (fun k _ -> per_key.(k) <- Atomic.get counts.(k)) per_key;
  Alcotest.(check (array int)) "each key once" (Array.make 20 1) per_key;
  Alcotest.(check int) "completed entries" 20 (Par.Memo.length memo)

let test_memo_exception () =
  let memo = Par.Memo.create 4 in
  let attempts = Atomic.make 0 in
  let get () =
    Par.Memo.find_or_compute memo "broken" (fun () ->
        Atomic.incr attempts;
        failwith "cannot")
  in
  Alcotest.check_raises "first lookup raises" (Failure "cannot") (fun () -> ignore (get ()));
  Alcotest.check_raises "failed fill evicted: retry raises afresh" (Failure "cannot") (fun () ->
      ignore (get ()));
  Alcotest.(check int) "thunk re-ran after eviction" 2 (Atomic.get attempts);
  Alcotest.(check int) "no completed entry" 0 (Par.Memo.length memo);
  (* a later successful fill heals the key permanently *)
  let v = Par.Memo.find_or_compute memo "broken" (fun () -> 7) in
  Alcotest.(check int) "healed" 7 v;
  Alcotest.(check int) "healed value cached" 7
    (Par.Memo.find_or_compute memo "broken" (fun () -> 8));
  Alcotest.(check int) "one completed entry" 1 (Par.Memo.length memo)

let test_memo_deadline_not_poisoned () =
  (* regression: an over-budget request that is first to compute a key
     must not cache Deadline.Expired for every later full-budget caller *)
  let memo = Par.Memo.create 4 in
  let fill () =
    Par.Memo.find_or_compute memo "hot" (fun () ->
        Ds_util.Deadline.check ();
        42)
  in
  (try Ds_util.Deadline.with_deadline (Unix.gettimeofday () -. 1.) (fun () -> ignore (fill ()))
   with Ds_util.Deadline.Expired _ -> ());
  Alcotest.(check int) "fresh caller recomputes after expiry" 42 (fill ());
  Alcotest.(check (option int)) "key completed" (Some 42) (Par.Memo.find_opt memo "hot")

let test_dataset_concurrent_surface () =
  let ds = Depsurf.Dataset.build ~seed:42L Calibration.test_scale in
  let v54 = Version.v 5 4 in
  (* >= 4 domains race on the same cold (version, config) chain *)
  let surfaces = in_domains 4 (fun _ -> Depsurf.Dataset.surface ds v54 Config.x86_generic) in
  (match surfaces with
  | first :: rest ->
      List.iter
        (fun s -> Alcotest.(check bool) "one shared surface" true (s == first))
        rest
  | [] -> Alcotest.fail "no results");
  (* distinct keys from several domains memoize independently *)
  let versions = [ Version.v 4 4; Version.v 4 15; Version.v 5 4; Version.v 5 15 ] in
  let per_domain =
    in_domains 4 (fun _ ->
        List.map (fun v -> Depsurf.Dataset.surface ds v Config.x86_generic) versions)
  in
  List.iter
    (fun ss ->
      List.iter2
        (fun a b -> Alcotest.(check bool) "same object across domains" true (a == b))
        (List.hd per_domain) ss)
    per_domain

let diff_names (d : Depsurf.Diff.t) =
  let names id =
    (id.Depsurf.Diff.d_added, id.Depsurf.Diff.d_removed, List.map fst id.Depsurf.Diff.d_changed)
  in
  ( names d.Depsurf.Diff.df_funcs,
    names d.Depsurf.Diff.df_structs,
    names d.Depsurf.Diff.df_tracepoints )

let test_cached_diffs_parallel_equal () =
  let seq = Depsurf.Pipeline.dataset_cached Calibration.test_scale in
  let par =
    Par.run ~jobs:4 (fun p ->
        let c = Depsurf.Pipeline.dataset_cached ~pool:p Calibration.test_scale in
        ( List.map (fun (pair, d) -> (pair, diff_names d)) (Depsurf.Pipeline.lts_diffs c),
          List.map (fun (cfg, d) -> (cfg, diff_names d)) (Depsurf.Pipeline.config_diffs c) ))
  in
  let seq_lts = List.map (fun (pair, d) -> (pair, diff_names d)) (Depsurf.Pipeline.lts_diffs seq) in
  let seq_cfg = List.map (fun (cfg, d) -> (cfg, diff_names d)) (Depsurf.Pipeline.config_diffs seq) in
  Alcotest.(check bool) "lts diffs identical" true (seq_lts = fst par);
  Alcotest.(check bool) "config diffs identical" true (seq_cfg = snd par)

(* DEPSURF_JOBS=1 and DEPSURF_JOBS=4 must render the same Report.matrix
   for the seed dataset (the golden-equality guard of the bench). *)
let test_golden_matrix_jobs () =
  let baseline = (Version.v 5 4, Config.x86_generic) in
  let matrix_render ~jobs =
    let ds = Depsurf.Pipeline.dataset Calibration.test_scale in
    Par.run ~jobs (fun p ->
        Depsurf.Dataset.warm_list ~pool:p ds (baseline :: Depsurf.Dataset.fig4_images));
    let pools = Ds_corpus.Pools.compute ds ~baseline () in
    let profile = Option.get (Ds_corpus.Table7.find "biotop") in
    let spec = Ds_corpus.Corpus.spec_for pools profile in
    let obj = Depsurf.Pipeline.build_program ds spec in
    ( Depsurf.Report.render_matrix (Depsurf.Pipeline.analyze ds obj),
      Ds_util.Json.to_string
        (Depsurf.Export.surface (Depsurf.Dataset.surface ds (Version.v 6 8) Config.x86_generic)) )
  in
  let m1, s1 = matrix_render ~jobs:1 in
  let m4, s4 = matrix_render ~jobs:4 in
  Alcotest.(check string) "report matrix byte-identical" m1 m4;
  Alcotest.(check string) "surface export byte-identical" s1 s4

let suites =
  [
    ( "par",
      [
        Alcotest.test_case "map_list deterministic" `Quick test_map_list_deterministic;
        Alcotest.test_case "map_reduce ordered" `Quick test_map_reduce_ordered;
        Alcotest.test_case "map_list_chunked deterministic" `Quick test_map_list_chunked;
        Alcotest.test_case "map_list_chunked exception" `Quick test_map_list_chunked_exception;
        Alcotest.test_case "map_list_chunked edges skip the queue" `Quick
          test_map_list_chunked_edges_no_queue;
        Alcotest.test_case "future exception" `Quick test_future_exception;
        Alcotest.test_case "shutdown" `Quick test_shutdown;
        Alcotest.test_case "memo exactly-once" `Quick test_memo_exactly_once;
        Alcotest.test_case "memo exception" `Quick test_memo_exception;
        Alcotest.test_case "memo deadline not poisoned" `Quick test_memo_deadline_not_poisoned;
        Alcotest.test_case "dataset concurrent surface" `Quick test_dataset_concurrent_surface;
        Alcotest.test_case "cached diffs parallel equal" `Quick test_cached_diffs_parallel_equal;
        Alcotest.test_case "golden matrix jobs=1 vs 4" `Slow test_golden_matrix_jobs;
      ] );
  ]
