(* The heavyweight fault-injection sweep behind the @fuzz alias: >=500
   seeded mutations against every study image, each driven through the
   full image -> surface pipeline, plus the same corpus against a
   representative BPF object. Exits non-zero on any uncaught exception
   or on a mutated run that loses data without leaving a diagnostic.
   `dune build @fuzz` runs it; the root @check alias includes it. *)

open Ds_ksrc
open Depsurf
module Faultgen = Ds_faultgen.Faultgen

let mutation_count =
  match Sys.getenv_opt "DEPSURF_FUZZ_COUNT" with
  | Some n -> int_of_string n
  | None -> 500

let seed = 42L

let surface_health bytes = Surface.health (Ds_util.Diag.ok (Surface.extract ~mode:`Lenient bytes))
let obj_health bytes = Ds_util.Diag.diags (Ds_bpf.Obj.read ~mode:`Lenient bytes)

let failures = ref 0

let report label (tally, crashed) =
  Printf.printf "%-28s total %4d  clean %4d  degraded %4d  fatal %4d  crashed %d\n%!" label
    tally.Faultgen.n_total tally.Faultgen.n_clean tally.Faultgen.n_degraded
    tally.Faultgen.n_fatal tally.Faultgen.n_crashed;
  List.iter
    (fun (name, e) ->
      incr failures;
      Printf.printf "  CRASH %s: %s\n%!" name e)
    crashed

let check_clean label health bytes =
  match Faultgen.classify health bytes with
  | Faultgen.Clean -> ()
  | Faultgen.Crashed e ->
      incr failures;
      Printf.printf "  CRASH on clean %s: %s\n%!" label e
  | Faultgen.Degraded | Faultgen.Fatal ->
      incr failures;
      Printf.printf "  clean image %s reported diagnostics\n%!" label

let () =
  let ds = Dataset.build ~seed Calibration.test_scale in
  List.iter
    (fun (v, cfg) ->
      let label =
        Printf.sprintf "%s/%s" (Version.to_string v) (Config.to_string cfg)
      in
      let bytes = Ds_elf.Elf.write (Dataset.image ds v cfg) in
      check_clean label surface_health bytes;
      let muts = Faultgen.mutations ~count:mutation_count ~seed bytes in
      report label (Faultgen.survey surface_health muts))
    Dataset.study_images;
  (* one representative BPF object through the same corpus *)
  (match Ds_corpus.Table7.find "biotop" with
  | None ->
      incr failures;
      print_endline "corpus tool biotop missing"
  | Some profile ->
      let v54 = Version.v 5 4 in
      let pools = Ds_corpus.Pools.compute ds () in
      let spec = Ds_corpus.Corpus.spec_for pools profile in
      let k = Ds_bpf.Vmlinux.load (Dataset.image ds v54 Config.x86_generic) in
      let obj =
        Ds_bpf.Progbuild.build ~build_btf:k.Ds_bpf.Vmlinux.v_btf ~build_arch:Config.X86
          ~tag:(Ds_bpf.Vmlinux.tag k) spec
      in
      let bytes = Ds_bpf.Obj.write obj in
      check_clean "bpf object biotop" obj_health bytes;
      let muts = Faultgen.mutations ~count:mutation_count ~seed bytes in
      report "bpf object biotop" (Faultgen.survey obj_health muts));
  if !failures > 0 then begin
    Printf.printf "FUZZ FAILED: %d failure(s)\n" !failures;
    exit 1
  end
  else print_endline "fuzz: all mutations survived with typed diagnostics"
