open Depsurf
open Ds_ksrc
module Store = Ds_store.Store

(* Each test gets its own store directory under the system temp dir. *)
let fresh_dir () =
  let f = Filename.temp_file "ds-store-test" "" in
  Sys.remove f;
  f

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let entry_path dir (e : Store.entry) =
  Filename.concat (Filename.concat dir e.Store.e_ns) (e.Store.e_key ^ ".dsa")

(* ------------------------------------------------------------------ *)
(* Hash                                                                *)
(* ------------------------------------------------------------------ *)

let digest feed =
  let h = Store.Hash.create () in
  feed h;
  Store.Hash.hex h

let test_hash_determinism () =
  let feed h =
    Store.Hash.string h "surface";
    Store.Hash.int h 42;
    Store.Hash.int64 h 57427189485L;
    Store.Hash.float h 0.04
  in
  Alcotest.(check string) "same inputs, same digest" (digest feed) (digest feed);
  let d = digest feed in
  Alcotest.(check int) "32 hex chars" 32 (String.length d);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex alphabet" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    d

let test_hash_separation () =
  let one f = digest f in
  let distinct =
    [
      one (fun h -> Store.Hash.string h "ab"; Store.Hash.string h "c");
      one (fun h -> Store.Hash.string h "a"; Store.Hash.string h "bc");
      one (fun h -> Store.Hash.string h "abc");
      one (fun h -> Store.Hash.int h 1);
      one (fun h -> Store.Hash.float h 1.0);
      one (fun h -> Store.Hash.int h 1; Store.Hash.int h 2);
      one (fun h -> Store.Hash.int h 2; Store.Hash.int h 1);
      one (fun _ -> ());
    ]
  in
  Alcotest.(check int) "no collisions between distinct feeds"
    (List.length distinct)
    (List.length (List.sort_uniq compare distinct));
  (* ints are hashed through their 64-bit widening, by design *)
  Alcotest.(check string) "int and int64 agree"
    (digest (fun h -> Store.Hash.int h 7))
    (digest (fun h -> Store.Hash.int64 h 7L))

(* ------------------------------------------------------------------ *)
(* Frame                                                               *)
(* ------------------------------------------------------------------ *)

let check_frame_ok ns payload =
  match Store.Frame.decode ~ns (Store.Frame.encode ~ns payload) with
  | Store.Frame.Ok p -> Alcotest.(check string) "payload roundtrips" payload p
  | Store.Frame.Corrupt why -> Alcotest.fail ("intact frame rejected: " ^ why)

let test_frame_roundtrip () =
  check_frame_ok "surface" "";
  check_frame_ok "image" "x";
  check_frame_ok "diff" (String.init 256 Char.chr);
  check_frame_ok "matrix" (String.concat "" (List.init 4096 (fun i -> string_of_int i)))

let is_corrupt = function Store.Frame.Corrupt _ -> true | Store.Frame.Ok _ -> false

let test_frame_ns_mismatch () =
  Alcotest.(check bool) "wrong namespace is corrupt" true
    (is_corrupt (Store.Frame.decode ~ns:"image" (Store.Frame.encode ~ns:"surface" "p")))

let test_frame_truncation_and_garbage () =
  let frame = Store.Frame.encode ~ns:"surface" "some payload bytes" in
  for len = 0 to String.length frame - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "prefix of %d bytes is corrupt" len)
      true
      (is_corrupt (Store.Frame.decode ~ns:"surface" (String.sub frame 0 len)))
  done;
  Alcotest.(check bool) "trailing byte is corrupt" true
    (is_corrupt (Store.Frame.decode ~ns:"surface" (frame ^ "\x00")));
  Alcotest.(check bool) "garbage is corrupt" true
    (is_corrupt (Store.Frame.decode ~ns:"surface" "garbage that is no frame"))

(* Flip every byte of a frame, with several masks: the decoder must reject
   every variant — a damaged entry can never decode to a wrong value. *)
let test_frame_single_byte_flips () =
  let payload = "payload under test \x00\x01\xff" in
  let frame = Store.Frame.encode ~ns:"surface" payload in
  List.iter
    (fun mask ->
      for i = 0 to String.length frame - 1 do
        let b = Bytes.of_string frame in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
        match Store.Frame.decode ~ns:"surface" (Bytes.to_string b) with
        | Store.Frame.Corrupt _ -> ()
        | Store.Frame.Ok p ->
            Alcotest.(check bool)
              (Printf.sprintf "flip mask %#x at byte %d yields the original or corrupt" mask i)
              true (String.equal p payload)
      done)
    [ 0x01; 0x80; 0xff ]

let qcheck_frame_flip =
  QCheck.Test.make ~name:"flipping any byte of any frame never yields a wrong payload"
    ~count:300
    QCheck.(triple (string_of_size (QCheck.Gen.int_range 0 200)) small_nat (int_range 1 255))
    (fun (payload, pos, mask) ->
      let frame = Store.Frame.encode ~ns:"surface" payload in
      let pos = pos mod String.length frame in
      let b = Bytes.of_string frame in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
      match Store.Frame.decode ~ns:"surface" (Bytes.to_string b) with
      | Store.Frame.Corrupt _ -> true
      | Store.Frame.Ok p -> String.equal p payload)

(* ------------------------------------------------------------------ *)
(* Store: lookup, memoization, eviction, maintenance                   *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip_and_counters () =
  let dir = fresh_dir () in
  let s = Store.open_ ~dir () in
  Alcotest.(check bool) "dir recorded" true (Store.dir s = dir);
  Alcotest.(check bool) "miss on empty store" true
    (Store.find s ~ns:"surface" ~key:"k1" ~decode:Fun.id = None);
  Store.add s ~ns:"surface" ~key:"k1" "payload-one";
  Alcotest.(check (option string)) "hit after add" (Some "payload-one")
    (Store.find s ~ns:"surface" ~key:"k1" ~decode:Fun.id);
  Alcotest.(check (option string)) "namespaces are disjoint" None
    (Store.find s ~ns:"image" ~key:"k1" ~decode:Fun.id);
  let c = Store.stats s in
  Alcotest.(check int) "hits" 1 c.Store.c_hits;
  Alcotest.(check int) "misses" 2 c.Store.c_misses;
  Alcotest.(check int) "writes" 1 c.Store.c_writes;
  Alcotest.(check int) "no evictions" 0 c.Store.c_evictions;
  Alcotest.(check bool) "bytes counted" true
    (c.Store.c_bytes_written > 0 && c.Store.c_bytes_read > 0)

let test_store_sanitized_keys () =
  let dir = fresh_dir () in
  let s = Store.open_ ~dir () in
  (* real pipeline keys contain '/' and other non-filename characters *)
  let key = "surface-v5.4/x86:generic weird\tkey-abcdef" in
  Store.add s ~ns:"surface" ~key "v";
  Alcotest.(check (option string)) "odd key roundtrips" (Some "v")
    (Store.find s ~ns:"surface" ~key ~decode:Fun.id);
  List.iter
    (fun (e : Store.entry) ->
      String.iter
        (fun ch ->
          Alcotest.(check bool) "filename is sanitized" true
            ((ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')
            || ch = '.' || ch = '_' || ch = '-'))
        e.Store.e_key)
    (Store.entries ~dir)

let test_store_memo () =
  let dir = fresh_dir () in
  let s = Store.open_ ~dir () in
  let computes = ref 0 in
  let compute () = incr computes; "value" in
  let memo store =
    Store.memo store ~ns:"diff" ~key:"m" ~encode:Fun.id ~decode:Fun.id compute
  in
  Alcotest.(check string) "memo computes on miss" "value" (memo (Some s));
  Alcotest.(check string) "memo decodes on hit" "value" (memo (Some s));
  Alcotest.(check int) "computed exactly once" 1 !computes;
  Alcotest.(check string) "no store: plain compute" "value" (memo None);
  Alcotest.(check int) "no store always computes" 2 !computes

(* Corrupt the single cache entry at every byte position in turn: every
   find must either miss (evict + recompute path) or return the original
   payload — never a wrong value. *)
let test_store_corruption_everywhere () =
  let dir = fresh_dir () in
  let s = Store.open_ ~dir () in
  let payload = "the artifact payload" in
  Store.add s ~ns:"obj" ~key:"prog" payload;
  let path =
    match Store.entries ~dir with
    | [ e ] -> entry_path dir e
    | es -> Alcotest.failf "expected 1 entry, found %d" (List.length es)
  in
  let pristine = read_file path in
  for i = 0 to String.length pristine - 1 do
    let b = Bytes.of_string pristine in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    write_file path (Bytes.to_string b);
    (match Store.find s ~ns:"obj" ~key:"prog" ~decode:Fun.id with
    | None ->
        Alcotest.(check bool)
          (Printf.sprintf "corrupt entry (byte %d) evicted from disk" i)
          false (Sys.file_exists path)
    | Some v ->
        Alcotest.(check string)
          (Printf.sprintf "corruption at byte %d never yields a wrong value" i)
          payload v);
    write_file path pristine
  done;
  let c = Store.stats s in
  Alcotest.(check bool) "evictions were counted" true (c.Store.c_evictions > 0)

let test_store_truncation_and_decode_failure () =
  let dir = fresh_dir () in
  let s = Store.open_ ~dir () in
  Store.add s ~ns:"obj" ~key:"t" "0123456789";
  let path = entry_path dir (List.hd (Store.entries ~dir)) in
  write_file path (String.sub (read_file path) 0 5);
  Alcotest.(check (option string)) "truncated entry misses" None
    (Store.find s ~ns:"obj" ~key:"t" ~decode:Fun.id);
  Alcotest.(check bool) "truncated entry deleted" false (Sys.file_exists path);
  (* a frame that verifies but whose payload no longer decodes must also
     degrade to a miss (schema drift) *)
  Store.add s ~ns:"obj" ~key:"t" "not-decodable";
  Alcotest.(check (option string)) "decoder exception degrades to a miss" None
    (Store.find s ~ns:"obj" ~key:"t" ~decode:(fun _ -> failwith "schema mismatch"));
  let c = Store.stats s in
  Alcotest.(check int) "both failures evicted" 2 c.Store.c_evictions

let test_store_counters_lifetime () =
  let dir = fresh_dir () in
  let s = Store.open_ ~dir () in
  Store.add s ~ns:"surface" ~key:"a" "aa";
  ignore (Store.find s ~ns:"surface" ~key:"a" ~decode:Fun.id);
  Store.save_counters s;
  Alcotest.(check bool) "lifetime after one save" true
    (Store.lifetime ~dir = Store.stats s);
  ignore (Store.find s ~ns:"surface" ~key:"a" ~decode:Fun.id);
  Store.save_counters s;
  Store.save_counters s;
  (* repeated saves merge deltas, they do not double-count *)
  Alcotest.(check bool) "lifetime tracks stats across saves" true
    (Store.lifetime ~dir = Store.stats s);
  (* a second handle on the same directory accumulates on top *)
  let s2 = Store.open_ ~dir () in
  ignore (Store.find s2 ~ns:"surface" ~key:"a" ~decode:Fun.id);
  Store.save_counters s2;
  Alcotest.(check int) "two handles accumulate"
    ((Store.stats s).Store.c_hits + (Store.stats s2).Store.c_hits)
    (Store.lifetime ~dir).Store.c_hits

let test_store_entries_verify_gc_clear () =
  let dir = fresh_dir () in
  let s = Store.open_ ~dir () in
  Store.add s ~ns:"surface" ~key:"old" (String.make 100 'a');
  Store.add s ~ns:"image" ~key:"mid" (String.make 100 'b');
  Store.add s ~ns:"diff" ~key:"new" (String.make 100 'c');
  let es = Store.entries ~dir in
  Alcotest.(check int) "three entries" 3 (List.length es);
  (* pin mtimes so "oldest" is well-defined even on coarse clocks *)
  let set_mtime key t =
    let e = List.find (fun (e : Store.entry) -> e.Store.e_key = key) es in
    Unix.utimes (entry_path dir e) t t
  in
  set_mtime "old" 1000.;
  set_mtime "mid" 2000.;
  set_mtime "new" 3000.;
  Alcotest.(check (pair int int)) "verify: all intact" (3, 0) (Store.verify ~dir);
  (* corrupt one entry on disk: verify detects and evicts exactly it *)
  let mid = List.find (fun (e : Store.entry) -> e.Store.e_key = "mid") es in
  write_file (entry_path dir mid) "scribbled over";
  Alcotest.(check (pair int int)) "verify: one corrupt evicted" (2, 1) (Store.verify ~dir);
  Store.add s ~ns:"image" ~key:"mid" (String.make 100 'b');
  set_mtime "mid" 2000.;
  (* gc to a budget that only fits the newest entry *)
  let newest = List.find (fun (e : Store.entry) -> e.Store.e_key = "new") es in
  Alcotest.(check int) "gc evicts the two oldest" 2
    (Store.gc ~dir ~max_bytes:(newest.Store.e_bytes + 1));
  Alcotest.(check (option string)) "newest survives gc"
    (Some (String.make 100 'c'))
    (Store.find s ~ns:"diff" ~key:"new" ~decode:Fun.id);
  Alcotest.(check (option string)) "oldest evicted by gc" None
    (Store.find s ~ns:"surface" ~key:"old" ~decode:Fun.id);
  Store.save_counters s;
  Alcotest.(check int) "clear removes the rest" 1 (Store.clear ~dir);
  Alcotest.(check int) "store empty after clear" 0 (List.length (Store.entries ~dir));
  Alcotest.(check bool) "clear drops persisted counters" true
    (Store.lifetime ~dir = Store.zero_counters)

(* ------------------------------------------------------------------ *)
(* Codec: binary serialization of real pipeline artifacts              *)
(* ------------------------------------------------------------------ *)

let ds = lazy (Dataset.build ~seed:Testenv.seed Calibration.test_scale)
let surf v = Dataset.surface (Lazy.force ds) v Config.x86_generic

let test_codec_surface_roundtrip () =
  let s = surf (Version.v 5 4) in
  let b = Codec.encode_surface s in
  let s' = Codec.decode_surface b in
  Alcotest.(check string) "encode is stable across a roundtrip" b (Codec.encode_surface s');
  Alcotest.(check bool) "counts survive" true (Surface.counts s = Surface.counts s');
  let fe = Option.get (Surface.find_func s' "vfs_fsync") in
  let fe0 = Option.get (Surface.find_func s "vfs_fsync") in
  Alcotest.(check bool) "func entry survives" true (fe = fe0);
  Alcotest.(check bool) "index rebuilt: struct lookup works" true
    (Surface.find_struct s' "task_struct" <> None)

let test_codec_surface_all_images () =
  (* every study image's surface must roundtrip byte-stably — this is the
     exact payload set the pipeline persists *)
  List.iter
    (fun (v, cfg) ->
      let s = Dataset.surface (Lazy.force ds) v cfg in
      let b = Codec.encode_surface s in
      Alcotest.(check string)
        (Printf.sprintf "surface %s/%s" (Version.to_string v) (Config.to_string cfg))
        b
        (Codec.encode_surface (Codec.decode_surface b)))
    Dataset.study_images

let test_codec_diff_roundtrip () =
  let d =
    Diff.compare_surfaces Diff.Across_versions (surf (Version.v 4 4)) (surf (Version.v 5 4))
  in
  let b = Codec.encode_diff d in
  let d' = Codec.decode_diff b in
  Alcotest.(check string) "diff encode is stable" b (Codec.encode_diff d');
  let vb = Codec.encode_version_diffs [ ((Version.v 4 4, Version.v 5 4), d) ] in
  Alcotest.(check string) "version-diff list encode is stable" vb
    (Codec.encode_version_diffs (Codec.decode_version_diffs vb));
  let cb = Codec.encode_config_diffs [ (Config.x86_generic, d) ] in
  Alcotest.(check string) "config-diff list encode is stable" cb
    (Codec.encode_config_diffs (Codec.decode_config_diffs cb))

let test_codec_matrix_roundtrip () =
  let d = Lazy.force ds in
  let _, obj = List.hd (Ds_corpus.Corpus.build_all d ()) in
  let m =
    Report.matrix d ~images:Dataset.fig4_images
      ~baseline:(Version.v 5 4, Config.x86_generic) obj
  in
  let b = Codec.encode_matrix m in
  let m' = Codec.decode_matrix b in
  Alcotest.(check string) "matrix encode is stable" b (Codec.encode_matrix m');
  Alcotest.(check string) "rendered matrix identical" (Report.render_matrix m)
    (Report.render_matrix m')

let test_codec_rejects_garbage () =
  Alcotest.(check bool) "garbage raises" true
    (match Codec.decode_surface "garbage" with
    | exception _ -> true
    | _ -> false)

(* The end-to-end robustness property: frame a real encoded surface, flip
   any byte — the store layer reports Corrupt, it never hands the decoder
   a payload that silently produces a different surface. *)
let framed_surface =
  lazy (Store.Frame.encode ~ns:"surface" (Codec.encode_surface (surf (Version.v 5 4))))

let qcheck_framed_surface_flip =
  QCheck.Test.make ~name:"flipping any byte of a framed surface is detected" ~count:300
    QCheck.(pair small_nat (int_range 1 255))
    (fun (pos, mask) ->
      let frame = Lazy.force framed_surface in
      let pos = pos mod String.length frame in
      let b = Bytes.of_string frame in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
      is_corrupt (Store.Frame.decode ~ns:"surface" (Bytes.to_string b)))

(* ------------------------------------------------------------------ *)
(* Integration: two datasets sharing one store directory               *)
(* ------------------------------------------------------------------ *)

let test_store_cross_dataset_hit () =
  let dir = fresh_dir () in
  let sa = Store.open_ ~dir () in
  let dsa = Dataset.build ~seed:Testenv.seed ~store:sa Calibration.test_scale in
  let s1 = Dataset.surface dsa (Version.v 5 4) Config.x86_generic in
  Alcotest.(check bool) "cold build compiles" true (Dataset.compile_count dsa > 0);
  (* a second dataset over the same directory: pure cache hits, no compiles *)
  let sb = Store.open_ ~dir () in
  let dsb = Dataset.build ~seed:Testenv.seed ~store:sb Calibration.test_scale in
  let s2 = Dataset.surface dsb (Version.v 5 4) Config.x86_generic in
  Alcotest.(check int) "warm build: zero compiles" 0 (Dataset.compile_count dsb);
  let c = Store.stats sb in
  Alcotest.(check bool) "warm build: store hit" true (c.Store.c_hits >= 1);
  Alcotest.(check int) "warm build: no misses" 0 c.Store.c_misses;
  Alcotest.(check string) "surfaces byte-identical"
    (Codec.encode_surface s1) (Codec.encode_surface s2);
  (* a different seed must key differently: no false hit *)
  let sc = Store.open_ ~dir () in
  let dsc = Dataset.build ~seed:43L ~store:sc Calibration.test_scale in
  ignore (Dataset.surface dsc (Version.v 5 4) Config.x86_generic);
  Alcotest.(check bool) "different seed misses" true ((Store.stats sc).Store.c_misses > 0)

let suites =
  [
    ( "store.hash",
      [
        Alcotest.test_case "determinism" `Quick test_hash_determinism;
        Alcotest.test_case "separation" `Quick test_hash_separation;
      ] );
    ( "store.frame",
      [
        Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
        Alcotest.test_case "namespace mismatch" `Quick test_frame_ns_mismatch;
        Alcotest.test_case "truncation + garbage" `Quick test_frame_truncation_and_garbage;
        Alcotest.test_case "single-byte flips" `Quick test_frame_single_byte_flips;
        QCheck_alcotest.to_alcotest qcheck_frame_flip;
      ] );
    ( "store.store",
      [
        Alcotest.test_case "roundtrip + counters" `Quick test_store_roundtrip_and_counters;
        Alcotest.test_case "sanitized keys" `Quick test_store_sanitized_keys;
        Alcotest.test_case "memo" `Quick test_store_memo;
        Alcotest.test_case "corruption everywhere" `Quick test_store_corruption_everywhere;
        Alcotest.test_case "truncation + decode failure" `Quick
          test_store_truncation_and_decode_failure;
        Alcotest.test_case "lifetime counters" `Quick test_store_counters_lifetime;
        Alcotest.test_case "entries/verify/gc/clear" `Quick test_store_entries_verify_gc_clear;
      ] );
    ( "store.codec",
      [
        Alcotest.test_case "surface roundtrip" `Quick test_codec_surface_roundtrip;
        Alcotest.test_case "all study surfaces" `Quick test_codec_surface_all_images;
        Alcotest.test_case "diff roundtrips" `Quick test_codec_diff_roundtrip;
        Alcotest.test_case "matrix roundtrip" `Quick test_codec_matrix_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        QCheck_alcotest.to_alcotest qcheck_framed_surface_flip;
      ] );
    ( "store.integration",
      [ Alcotest.test_case "cross-dataset cache hit" `Quick test_store_cross_dataset_hit ] );
  ]
