open Ds_btf.Btf
open Ds_ctypes

let base_env () =
  let env = Decl.empty_env ~ptr_size:8 in
  List.fold_left Decl.add_typedef env Decl.default_typedefs

let sample_env () =
  let env = base_env () in
  let file =
    Decl.layout_struct env ~name:"file" ~kind:`Struct
      [ ("f_count", Ctype.u64); ("f_flags", Ctype.uint) ]
  in
  let env = Decl.add_struct env file in
  let task =
    Decl.layout_struct env ~name:"task_struct" ~kind:`Struct
      [
        ("pid", Ctype.int_);
        ("comm", Ctype.Array (Ctype.char_, 16));
        ("parent", Ctype.Ptr (Ctype.Struct_ref "task_struct"));
        ("utime", Ctype.u64);
      ]
  in
  let env = Decl.add_struct env task in
  let env = Decl.add_enum env { ename = "req_op"; values = [ ("READ", 0); ("WRITE", 1) ] } in
  env

let sample_funcs =
  [
    Decl.
      {
        fname = "vfs_fsync";
        proto =
          Ctype.
            {
              ret = int_;
              params =
                [
                  { pname = "file"; ptype = Ptr (Struct_ref "file") };
                  { pname = "datasync"; ptype = int_ };
                ];
              variadic = false;
            };
      };
    Decl.
      {
        fname = "printk";
        proto =
          Ctype.
            {
              ret = int_;
              params = [ { pname = "fmt"; ptype = Ptr (Const char_) } ];
              variadic = true;
            };
      };
  ]

let test_low_level_roundtrip () =
  let t = create () in
  let i = add t (Int { name = "int"; bits = 32; signed = true }) in
  let p = add t (Ptr i) in
  let s =
    add t
      (Struct
         {
           name = "pair";
           size = 16;
           members =
             [
               { m_name = "a"; m_type = i; m_offset_bits = 0 };
               { m_name = "b"; m_type = p; m_offset_bits = 64 };
             ];
         })
  in
  ignore s;
  let t' = Ds_util.Diag.ok (decode (encode t)) in
  Alcotest.(check int) "count" (length t) (length t');
  (match get t' 1 with
  | Int { name; bits; signed } ->
      Alcotest.(check string) "int name" "int" name;
      Alcotest.(check int) "bits" 32 bits;
      Alcotest.(check bool) "signed" true signed
  | _ -> Alcotest.fail "expected Int");
  match get t' 3 with
  | Struct { name; size; members } ->
      Alcotest.(check string) "struct name" "pair" name;
      Alcotest.(check int) "size" 16 size;
      Alcotest.(check int) "members" 2 (List.length members);
      let b = List.nth members 1 in
      Alcotest.(check int) "offset" 64 b.m_offset_bits
  | _ -> Alcotest.fail "expected Struct"

let test_all_kinds_roundtrip () =
  let t = create () in
  let i = add t (Int { name = "unsigned int"; bits = 32; signed = false }) in
  ignore (add t (Array { elem = i; index = i; nelems = 7 }));
  ignore
    (add t
       (Union { name = "u"; size = 4; members = [ { m_name = "x"; m_type = i; m_offset_bits = 0 } ] }));
  ignore (add t (Enum { name = "e"; size = 4; values = [ ("A", 0); ("B", 5) ] }));
  ignore (add t (Fwd { name = "opaque"; union = false }));
  ignore (add t (Fwd { name = "opaque_u"; union = true }));
  ignore (add t (Typedef { name = "u32"; typ = i }));
  ignore (add t (Volatile i));
  ignore (add t (Const i));
  ignore (add t (Restrict i));
  ignore (add t (Float { name = "double"; bits = 64 }));
  let proto = add t (Func_proto { ret = i; params = [ { p_name = "x"; p_type = i } ] }) in
  ignore (add t (Func { name = "f"; proto }));
  let t' = Ds_util.Diag.ok (decode (encode t)) in
  Alcotest.(check int) "all records survive" (length t) (length t');
  for id = 1 to length t do
    Alcotest.(check bool) (Printf.sprintf "record %d equal" id) true (get t id = get t' id)
  done;
  (match get t' 6 with
  | Fwd { union; _ } -> Alcotest.(check bool) "union kind_flag" true union
  | _ -> Alcotest.fail "expected Fwd")

let test_env_roundtrip () =
  let env = sample_env () in
  let t = of_env env sample_funcs in
  let t' = Ds_util.Diag.ok (decode (encode t)) in
  let env', funcs' = to_env ~ptr_size:8 t' in
  let task = Option.get (Decl.find_struct env' "task_struct") in
  let orig = Option.get (Decl.find_struct env "task_struct") in
  Alcotest.(check bool) "task_struct roundtrips" true (Decl.equal_struct orig task);
  let file' = Option.get (Decl.find_struct env' "file") in
  let file = Option.get (Decl.find_struct env "file") in
  Alcotest.(check bool) "file roundtrips" true (Decl.equal_struct file file');
  Alcotest.(check int) "funcs" 2 (List.length funcs');
  let vfs = List.find (fun (f : Decl.func_decl) -> f.fname = "vfs_fsync") funcs' in
  Alcotest.(check bool) "vfs_fsync decl" true (Decl.equal_func (List.hd sample_funcs) vfs);
  let printk = List.find (fun (f : Decl.func_decl) -> f.fname = "printk") funcs' in
  Alcotest.(check bool) "variadic preserved" true printk.proto.variadic

let test_member_offset () =
  let env = sample_env () in
  let t = of_env env sample_funcs in
  (match member_offset t ~struct_name:"task_struct" ~field:"utime" with
  | Some (off, _) ->
      let orig = Option.get (Decl.find_struct env "task_struct") in
      let f = List.find (fun (f : Decl.field) -> f.fname = "utime") orig.fields in
      Alcotest.(check int) "offset matches layout" f.bits_offset off
  | None -> Alcotest.fail "utime not found");
  Alcotest.(check bool) "missing field" true
    (member_offset t ~struct_name:"task_struct" ~field:"nope" = None);
  Alcotest.(check bool) "missing struct" true
    (member_offset t ~struct_name:"nope" ~field:"x" = None)

let test_find_func () =
  let t = of_env (sample_env ()) sample_funcs in
  (match find_func t "vfs_fsync" with
  | Some f -> Alcotest.(check int) "params" 2 (List.length f.proto.params)
  | None -> Alcotest.fail "vfs_fsync missing");
  Alcotest.(check bool) "absent func" true (find_func t "no_such" = None)

let test_fwd_for_opaque () =
  (* A pointer to an undefined struct must become a Fwd record. *)
  let env = base_env () in
  let funcs =
    [
      Decl.
        {
          fname = "sock_poll";
          proto =
            Ctype.
              {
                ret = int_;
                params = [ { pname = "sk"; ptype = Ptr (Struct_ref "socket") } ];
                variadic = false;
              };
        };
    ]
  in
  let t = Ds_util.Diag.ok (decode (encode (of_env env funcs))) in
  let has_fwd = ref false in
  iteri t (fun _ k -> match k with Fwd { name = "socket"; union = false } -> has_fwd := true | _ -> ());
  Alcotest.(check bool) "fwd emitted" true !has_fwd;
  let f = Option.get (find_func t "sock_poll") in
  match (List.hd f.proto.params).ptype with
  | Ctype.Ptr (Ctype.Struct_ref "socket") -> ()
  | t -> Alcotest.fail ("unexpected type " ^ Ctype.to_string t)

let test_bad_magic () =
  Alcotest.check_raises "bad magic" (Bad_btf "bad magic") (fun () ->
      ignore (decode "\x00\x00\x01\x00aaaaaaaaaaaaaaaaaaaaaaaaaaa"))

let test_self_referential () =
  let env = sample_env () in
  let t = of_env env [] in
  (* task_struct.parent is task_struct*; ensure decoding terminates and the
     pointer resolves back to a task_struct reference. *)
  let env', _ = to_env ~ptr_size:8 (Ds_util.Diag.ok (decode (encode t))) in
  let task = Option.get (Decl.find_struct env' "task_struct") in
  let parent = List.find (fun (f : Decl.field) -> f.fname = "parent") task.fields in
  match parent.ftype with
  | Ctype.Ptr (Ctype.Struct_ref "task_struct") -> ()
  | ty -> Alcotest.fail ("unexpected " ^ Ctype.to_string ty)

let test_type_name () =
  let t = of_env (sample_env ()) [] in
  match find_struct t "file" with
  | Some (id, _) -> Alcotest.(check (option string)) "name" (Some "file") (type_name t id)
  | None -> Alcotest.fail "file missing"

let contains hay needle =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_ctype_decl () =
  let open Ds_btf.Btf_dump in
  Alcotest.(check string) "int" "int x" (ctype_decl Ctype.int_ "x");
  Alcotest.(check string) "array" "char comm[16]" (ctype_decl (Ctype.Array (Ctype.char_, 16)) "comm");
  Alcotest.(check string) "ptr" "struct file *filp" (ctype_decl (Ctype.Ptr (Ctype.Struct_ref "file")) "filp");
  Alcotest.(check string) "ptr to const char" "const char *name"
    (ctype_decl (Ctype.Ptr (Ctype.Const Ctype.char_)) "name");
  Alcotest.(check string) "array of ptrs" "struct page **pages[4]"
    (ctype_decl (Ctype.Array (Ctype.Ptr (Ctype.Ptr (Ctype.Struct_ref "page")), 4)) "pages")

let test_struct_to_c () =
  let env = sample_env () in
  let task = Option.get (Decl.find_struct env "task_struct") in
  let c = Ds_btf.Btf_dump.struct_to_c task in
  Alcotest.(check bool) "header" true (contains c "struct task_struct {");
  Alcotest.(check bool) "array field" true (contains c "char comm[16];");
  Alcotest.(check bool) "self pointer" true (contains c "struct task_struct *parent;");
  Alcotest.(check bool) "offsets annotated" true (contains c "/* offset 0 */")

let test_vmlinux_h () =
  let t = of_env (sample_env ()) sample_funcs in
  let h = Ds_btf.Btf_dump.vmlinux_h (Ds_util.Diag.ok (decode (encode t))) in
  Alcotest.(check bool) "guard" true (contains h "#ifndef __VMLINUX_H__");
  Alcotest.(check bool) "typedefs" true (contains h "typedef long unsigned int size_t;");
  Alcotest.(check bool) "forward decls" true (contains h "struct task_struct;");
  Alcotest.(check bool) "full def" true (contains h "struct task_struct {");
  Alcotest.(check bool) "extern protos" true
    (contains h "extern int vfs_fsync(struct file * file, int datasync);")

let suites =
  [
    ( "btf",
      [
        Alcotest.test_case "low-level roundtrip" `Quick test_low_level_roundtrip;
        Alcotest.test_case "all kinds roundtrip" `Quick test_all_kinds_roundtrip;
        Alcotest.test_case "env roundtrip" `Quick test_env_roundtrip;
        Alcotest.test_case "member offset" `Quick test_member_offset;
        Alcotest.test_case "find func" `Quick test_find_func;
        Alcotest.test_case "fwd for opaque" `Quick test_fwd_for_opaque;
        Alcotest.test_case "bad magic" `Quick test_bad_magic;
        Alcotest.test_case "self-referential struct" `Quick test_self_referential;
        Alcotest.test_case "type name" `Quick test_type_name;
        Alcotest.test_case "ctype_decl" `Quick test_ctype_decl;
        Alcotest.test_case "struct_to_c" `Quick test_struct_to_c;
        Alcotest.test_case "vmlinux.h" `Quick test_vmlinux_h;
      ] );
  ]
