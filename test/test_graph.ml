(* The dependency-graph engine: node syntax, build determinism across
   pool shapes, codec roundtrip + corruption discipline, query/closure
   semantics against the surface's own edge sources, store-backed warm
   loads, and blast-radius queries over the corpus. *)

open Ds_ksrc
module Depset = Depsurf.Depset
module Surface = Depsurf.Surface
module Graph = Ds_graph.Graph
module Blast = Ds_graph.Blast

let ds = Depsurf.Dataset.build ~seed:Depsurf.Pipeline.default_seed Calibration.test_scale
let v54 = Version.v 5 4
let surface () = Depsurf.Dataset.surface ds v54 Config.x86_generic

let test_dep_of_string () =
  let roundtrip d =
    Alcotest.(check bool)
      (Depset.dep_to_string d ^ " roundtrips")
      true
      (Depset.dep_of_string (Depset.dep_to_string d) = Some d)
  in
  List.iter roundtrip
    [
      Depset.Dep_func "vfs_fsync";
      Depset.Dep_struct "request";
      Depset.Dep_field ("request", "rq_disk");
      Depset.Dep_tracepoint "sched_switch";
      Depset.Dep_syscall "fsync";
    ];
  Alcotest.(check bool)
    "bare name is func" true
    (Depset.dep_of_string "vfs_fsync" = Some (Depset.Dep_func "vfs_fsync"));
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true (Depset.dep_of_string s = None))
    [ ""; "func:"; "bogus:x"; "field:no_separator"; "field:::f"; "field:s::" ]

let test_build_deterministic () =
  let s = surface () in
  let b_seq = Graph.encode (Graph.build s) in
  Ds_util.Par.run ~jobs:4 (fun pool ->
      Alcotest.(check bool)
        "pooled build byte-identical" true
        (String.equal b_seq (Graph.encode (Graph.build ~pool s))));
  Ds_util.Par.run ~jobs:1 (fun pool ->
      Alcotest.(check bool)
        "jobs=1 pool byte-identical" true
        (String.equal b_seq (Graph.encode (Graph.build ~pool s))))

let test_codec_roundtrip () =
  let g = Graph.build (surface ()) in
  let bytes = Graph.encode g in
  let g2 = Graph.decode bytes in
  Alcotest.(check string) "tag survives" (Graph.tag g) (Graph.tag g2);
  Alcotest.(check int) "nodes survive" (Graph.n_nodes g) (Graph.n_nodes g2);
  Alcotest.(check int) "edges survive" (Graph.n_edges g) (Graph.n_edges g2);
  Alcotest.(check bool) "re-encode identical" true (String.equal bytes (Graph.encode g2))

let test_codec_corruption () =
  let bytes = Graph.encode (Graph.build (surface ())) in
  let expect_decode_error label data =
    match Graph.decode data with
    | _ -> Alcotest.failf "%s: decode accepted corrupt bytes" label
    | exception Depsurf.Codec.Decode_error _ -> ()
  in
  expect_decode_error "truncated" (String.sub bytes 0 (String.length bytes / 2));
  expect_decode_error "trailing garbage" (bytes ^ "\x00");
  expect_decode_error "empty" ""

let test_query_semantics () =
  let s = surface () in
  let g = Graph.build s in
  Alcotest.(check bool) "unknown node" true (Graph.query g ~dir:`Deps ~transitive:false (Depset.Dep_func "no_such_fn_xyz") = None);
  Alcotest.(check (list string)) "rclosure of unknown node" []
    (List.map Depset.dep_to_string (Graph.rclosure g (Depset.Dep_func "no_such_fn_xyz")));
  (* caller -> callee edges: every DWARF caller of a function must show
     up in its direct rdeps, and the function in the caller's deps *)
  let fe =
    match Surface.find_func s "vfs_fsync" with
    | Some fe -> fe
    | None -> Alcotest.fail "vfs_fsync missing from the test surface"
  in
  let self = Depset.Dep_func fe.Surface.fe_name in
  let rdeps = Option.value ~default:[] (Graph.query g ~dir:`Rdeps ~transitive:false self) in
  List.iter
    (fun caller ->
      Alcotest.(check bool)
        (caller ^ " in rdeps") true
        (List.mem (Depset.Dep_func caller) rdeps);
      let deps =
        Option.value ~default:[]
          (Graph.query g ~dir:`Deps ~transitive:false (Depset.Dep_func caller))
      in
      Alcotest.(check bool) (caller ^ " deps contain vfs_fsync") true (List.mem self deps))
    fe.Surface.fe_callers;
  (* the transitive closure contains the direct neighbours, excludes the
     start node, and is sorted *)
  let closure = Graph.rclosure g self in
  Alcotest.(check bool) "closure excludes start" true (not (List.mem self closure));
  List.iter
    (fun d -> Alcotest.(check bool) "direct rdep in closure" true (List.mem d closure))
    rdeps;
  Alcotest.(check bool) "closure sorted" true
    (closure = List.sort Depset.compare_dep closure);
  (* syscall -> arch implementation function *)
  match s.Surface.s_syscalls with
  | [] -> ()
  | sc :: _ ->
      let impl = Ds_kcc.Compile.syscall_symbol s.Surface.s_arch sc in
      if Surface.find_func s impl <> None then
        let deps =
          Option.value ~default:[]
            (Graph.query g ~dir:`Deps ~transitive:false (Depset.Dep_syscall sc))
        in
        Alcotest.(check bool)
          (Printf.sprintf "syscall %s -> %s" sc impl)
          true
          (List.mem (Depset.Dep_func impl) deps)

let test_store_warm_load () =
  let dir = Filename.temp_file "ds-graph-store" "" in
  Sys.remove dir;
  let store = Ds_store.Store.open_ ~dir () in
  let ds' = Depsurf.Dataset.build ~seed:7L ~store Calibration.test_scale in
  let builds0 = Graph.build_count () in
  let g = Graph.of_dataset ds' v54 Config.x86_generic in
  Alcotest.(check int) "cold call builds once" 1 (Graph.build_count () - builds0);
  (* same key again: served by the in-process memo, no new build *)
  let g' = Graph.of_dataset ds' v54 Config.x86_generic in
  Alcotest.(check bool) "memoized object" true (g == g');
  Alcotest.(check int) "no rebuild on the memo hit" 1 (Graph.build_count () - builds0);
  (* a second process: raw store read of the persisted frame, no build *)
  let store2 = Ds_store.Store.open_ ~dir () in
  (match
     Ds_store.Store.find store2 ~ns:Graph.ns
       ~key:(Graph.store_key ds' v54 Config.x86_generic)
       ~decode:Graph.decode
   with
  | Some g_warm ->
      Alcotest.(check bool)
        "stored graph byte-identical" true
        (String.equal (Graph.encode g_warm) (Graph.encode g))
  | None -> Alcotest.fail "graph not persisted under the graph namespace");
  Alcotest.(check int) "warm load is decode-only" 1 (Graph.build_count () - builds0)

let test_blast () =
  (* bad releases are rejected before any graph work *)
  (match Blast.query ds ~release:(List.hd Version.all) (Depset.Dep_func "vfs_fsync") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "first study release accepted");
  (* a corpus program is always inside the blast radius of its own
     direct dependencies: biotop hooks blk_account_io_start (the paper's
     Figure 2 symbol), so a blast on it at the release after v5.4 must
     list biotop *)
  let release = v54 |> Version.index |> fun i -> List.nth Version.all (i + 1) in
  match Blast.query ds ~release (Depset.Dep_func "blk_account_io_start") with
  | Error m -> Alcotest.failf "blast failed: %s" m
  | Ok r ->
      Alcotest.(check bool) "prev is v5.4" true (Version.equal r.Blast.bl_prev v54);
      Alcotest.(check bool) "closure includes the node" true (r.Blast.bl_closure_size >= 1);
      Alcotest.(check bool)
        "biotop transitively affected" true
        (List.exists (fun a -> a.Blast.af_name = "biotop") r.Blast.bl_affected);
      List.iter
        (fun a ->
          Alcotest.(check bool)
            (a.Blast.af_name ^ " has non-empty via") true
            (a.Blast.af_via <> []))
        r.Blast.bl_affected

let test_views () =
  let g = Graph.build (surface ()) in
  let j = Graph.query_json g ~dir:`Rdeps ~transitive:true (Depset.Dep_func "vfs_fsync") in
  let member k = Ds_util.Json.member k j in
  Alcotest.(check bool) "found" true (member "found" = Some (Ds_util.Json.Bool true));
  (match member "count", member "results" with
  | Some (Ds_util.Json.Int n), Some (Ds_util.Json.List l) ->
      Alcotest.(check int) "count matches results" n (List.length l)
  | _ -> Alcotest.fail "query_json shape");
  match Graph.stats_json g with
  | Ds_util.Json.Obj [ ("image", _); ("nodes", Ds_util.Json.Int n); ("edges", Ds_util.Json.Int e) ]
    ->
      Alcotest.(check int) "nodes" (Graph.n_nodes g) n;
      Alcotest.(check int) "edges" (Graph.n_edges g) e
  | _ -> Alcotest.fail "stats_json shape"

let suites =
  [
    ( "graph",
      [
        Alcotest.test_case "dep_of_string" `Quick test_dep_of_string;
        Alcotest.test_case "build deterministic across pools" `Quick test_build_deterministic;
        Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
        Alcotest.test_case "codec corruption" `Quick test_codec_corruption;
        Alcotest.test_case "query semantics" `Quick test_query_semantics;
        Alcotest.test_case "store warm load" `Quick test_store_warm_load;
        Alcotest.test_case "views" `Quick test_views;
        Alcotest.test_case "blast radius" `Slow test_blast;
      ] );
  ]
