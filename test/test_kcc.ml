open Ds_ksrc
open Ds_kcc
open Ds_elf
open Construct

let v44 = Version.v 4 4
let v519 = Version.v 5 19

let find_instances m name =
  List.filter (fun (i : Compile.instance) -> i.Compile.i_func.fn_name = name) m.Compile.m_instances

let test_model_invariants () =
  let m = Testenv.model v44 in
  List.iter
    (fun (i : Compile.instance) ->
      let f = i.Compile.i_func in
      (* globals always keep their symbol *)
      if not f.fn_static then
        Alcotest.(check bool) (f.fn_name ^ " global keeps symbol") true (i.Compile.i_symbols <> []);
      (* no symbol implies static and every site inlined *)
      if i.Compile.i_symbols = [] then begin
        Alcotest.(check bool) (f.fn_name ^ " symbol-less is static") true f.fn_static;
        Alcotest.(check bool)
          (f.fn_name ^ " symbol-less has all-inlined sites")
          true
          (i.Compile.i_sites <> [] && List.for_all (fun s -> s.Compile.sd_inlined) i.Compile.i_sites)
      end)
    m.Compile.m_instances

let test_selective_inline_vfs_fsync () =
  let m = Testenv.model v44 in
  match find_instances m "vfs_fsync" with
  | [ i ] ->
      Alcotest.(check bool) "symbol kept" true (i.Compile.i_symbols <> []);
      let inlined, direct = List.partition (fun s -> s.Compile.sd_inlined) i.Compile.i_sites in
      Alcotest.(check bool) "some sites inlined (same TU)" true (inlined <> []);
      Alcotest.(check bool) "some sites direct (other TU)" true (direct <> []);
      List.iter
        (fun s -> Alcotest.(check string) "inlined in own TU" "fs/sync.c" s.Compile.sd_tu)
        inlined
  | l -> Alcotest.fail (Printf.sprintf "expected 1 instance, got %d" (List.length l))

let test_full_inline_blk_account () =
  (* v4.4: attachable; v5.19: fully inlined (be6bfe3). *)
  let m44 = Testenv.model v44 in
  (match find_instances m44 "blk_account_io_start" with
  | [ i ] -> Alcotest.(check bool) "symbol at 4.4" true (i.Compile.i_symbols <> [])
  | _ -> Alcotest.fail "expected 1 instance at 4.4");
  let m519 = Testenv.model v519 in
  match find_instances m519 "blk_account_io_start" with
  | [ i ] ->
      Alcotest.(check bool) "no symbol at 5.19" true (i.Compile.i_symbols = []);
      Alcotest.(check bool) "sites inlined" true
        (List.for_all (fun s -> s.Compile.sd_inlined) i.Compile.i_sites)
  | _ -> Alcotest.fail "expected 1 instance at 5.19"

let test_header_duplication () =
  let m = Testenv.model v44 in
  let instances = find_instances m "get_order" in
  Alcotest.(check int) "one instance per includer" 8 (List.length instances);
  let with_sym = List.filter (fun i -> i.Compile.i_symbols <> []) instances in
  let without = List.filter (fun i -> i.Compile.i_symbols = []) instances in
  Alcotest.(check bool)
    (Printf.sprintf "mixed inline/dup (%d sym, %d inlined)" (List.length with_sym)
       (List.length without))
    true
    (List.length with_sym >= 1 && List.length without >= 1)

let test_transforms_present () =
  let m = Testenv.model v44 in
  let suffixed =
    List.concat_map
      (fun (i : Compile.instance) ->
        List.filter (fun (n, _) -> String.contains n '.') i.Compile.i_symbols)
      m.Compile.m_instances
  in
  Alcotest.(check bool)
    (Printf.sprintf "some transformed symbols (%d)" (List.length suffixed))
    true
    (List.length suffixed > 0)

let test_no_isra_on_arm32 () =
  let m = Testenv.model ~cfg:Config.{ arch = Arm32; flavor = Generic } (Version.v 5 4) in
  let isra =
    List.concat_map
      (fun (i : Compile.instance) ->
        List.filter
          (fun (n, _) ->
            let re = ".isra." in
            let rec contains i =
              i + String.length re <= String.length n
              && (String.sub n i (String.length re) = re || contains (i + 1))
            in
            contains 0)
          i.Compile.i_symbols)
      m.Compile.m_instances
  in
  Alcotest.(check int) "no isra symbols on arm32" 0 (List.length isra)

let test_syscall_symbols () =
  Alcotest.(check string) "x86" "__x64_sys_openat" (Compile.syscall_symbol Config.X86 "openat");
  Alcotest.(check (option string)) "roundtrip" (Some "openat")
    (Compile.syscall_of_symbol Config.X86 "__x64_sys_openat");
  Alcotest.(check (option string)) "non-syscall" None
    (Compile.syscall_of_symbol Config.X86 "vfs_read")

let test_emit_sections () =
  let img = Testenv.image v44 in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("has " ^ s) true (Elf.find_section img s <> None))
    [ ".text"; ".rodata"; ".data"; ".debug_info"; ".debug_abbrev"; ".BTF" ];
  Alcotest.(check bool) "banner symbol" true (Elf.find_symbol img "linux_banner" <> None);
  Alcotest.(check bool) "sys_call_table" true (Elf.find_symbol img "sys_call_table" <> None);
  Alcotest.(check bool) "ftrace markers" true
    (Elf.find_symbol img "__start_ftrace_events" <> None
    && Elf.find_symbol img "__stop_ftrace_events" <> None)

let test_emit_banner_readable () =
  let img = Testenv.image v44 in
  let d = Elf.Deref.make img in
  let sym = Option.get (Elf.find_symbol img "linux_banner") in
  let s = Elf.Deref.read_cstring d sym.Elf.sym_value in
  Alcotest.(check bool) ("banner: " ^ s) true
    (String.length s > 20
    && String.sub s 0 20 = "Linux version 4.4.0-");
  let img519 = Testenv.image v519 in
  let d = Elf.Deref.make img519 in
  let sym = Option.get (Elf.find_symbol img519 "linux_banner") in
  let s = Elf.Deref.read_cstring d sym.Elf.sym_value in
  Alcotest.(check bool) "gcc in banner" true
    (let re = "gcc version 12.1.0" in
     let rec contains i =
       i + String.length re <= String.length s && (String.sub s i (String.length re) = re || contains (i + 1))
     in
     contains 0)

let test_emit_ftrace_array () =
  let img = Testenv.image v44 in
  let d = Elf.Deref.make img in
  let start = (Option.get (Elf.find_symbol img "__start_ftrace_events")).Elf.sym_value in
  let stop = (Option.get (Elf.find_symbol img "__stop_ftrace_events")).Elf.sym_value in
  let n = Int64.to_int (Int64.sub stop start) / Elf.Deref.ptr_size d in
  let model = Testenv.model v44 in
  Alcotest.(check int) "one slot per tracepoint" (List.length model.Compile.m_tracepoints) n;
  (* walk the array like DepSurf does: deref each record, read the name *)
  let names =
    List.init n (fun i ->
        let slot = Int64.add start (Int64.of_int (i * Elf.Deref.ptr_size d)) in
        let rec_addr = Elf.Deref.read_ptr d slot in
        let name_ptr = Elf.Deref.read_ptr d rec_addr in
        Elf.Deref.read_cstring d name_ptr)
  in
  Alcotest.(check bool) "sched_switch found" true (List.mem "sched_switch" names);
  Alcotest.(check bool) "block_rq_issue found" true (List.mem "block_rq_issue" names)

let test_emit_syscall_table () =
  let img = Testenv.image v44 in
  let d = Elf.Deref.make img in
  let sym = Option.get (Elf.find_symbol img "sys_call_table") in
  let n = sym.Elf.sym_size / Elf.Deref.ptr_size d in
  Alcotest.(check bool) "table non-empty" true (n > 5);
  let names =
    List.init n (fun i ->
        let slot = Int64.add sym.Elf.sym_value (Int64.of_int (i * Elf.Deref.ptr_size d)) in
        let addr = Elf.Deref.read_ptr d slot in
        match Elf.symbols_at img addr with
        | s :: _ -> Compile.syscall_of_symbol Config.X86 s.Elf.sym_name
        | [] -> None)
  in
  let names = List.filter_map Fun.id names in
  Alcotest.(check int) "every slot resolves" n (List.length names);
  Alcotest.(check bool) "open present on x86" true (List.mem "open" names)

let test_emit_dwarf_decodes () =
  let img = Testenv.image v44 in
  let info = (Option.get (Elf.find_section img ".debug_info")).Elf.sec_data in
  let abbrev = (Option.get (Elf.find_section img ".debug_abbrev")).Elf.sec_data in
  let cus = Ds_util.Diag.ok (Ds_dwarf.Info.decode ~info ~abbrev ()) in
  Alcotest.(check bool) "many CUs" true (List.length cus > 10);
  let all_sps = List.concat_map (fun cu -> cu.Ds_dwarf.Info.cu_subprograms) cus in
  Alcotest.(check bool) "vfs_fsync subprogram" true
    (List.exists (fun sp -> sp.Ds_dwarf.Info.sp_name = "vfs_fsync") all_sps);
  let types_cu = List.find (fun cu -> cu.Ds_dwarf.Info.cu_name = "__vmlinux_types__") cus in
  Alcotest.(check bool) "task_struct in types CU" true
    (List.exists
       (fun (s : Ds_ctypes.Decl.struct_def) -> s.sname = "task_struct")
       types_cu.Ds_dwarf.Info.cu_structs)

let test_emit_btf_decodes () =
  let img = Testenv.image v44 in
  let btf = Ds_util.Diag.ok (Ds_btf.Btf.decode (Option.get (Elf.find_section img ".BTF")).Elf.sec_data) in
  Alcotest.(check bool) "task_struct in BTF" true (Ds_btf.Btf.find_struct btf "task_struct" <> None);
  Alcotest.(check bool) "vfs_fsync func in BTF" true (Ds_btf.Btf.find_func btf "vfs_fsync" <> None);
  (* fully-inlined statics never reach BTF *)
  let m = Testenv.model v519 in
  let btf519 = Ds_util.Diag.ok (Ds_btf.Btf.decode (Option.get (Elf.find_section (Testenv.image v519) ".BTF")).Elf.sec_data) in
  ignore m;
  Alcotest.(check bool) "inlined blk_account_io_start absent from 5.19 BTF" true
    (Ds_btf.Btf.find_func btf519 "blk_account_io_start" = None)

let test_emit_arm32_and_ppc () =
  let arm32 = Testenv.image ~cfg:Config.{ arch = Arm32; flavor = Generic } (Version.v 5 4) in
  let d = Elf.Deref.make arm32 in
  Alcotest.(check int) "arm32 ptr size" 4 (Elf.Deref.ptr_size d);
  let start = (Option.get (Elf.find_symbol arm32 "__start_ftrace_events")).Elf.sym_value in
  let rec_addr = Elf.Deref.read_ptr d start in
  let name = Elf.Deref.read_cstring d (Elf.Deref.read_ptr d rec_addr) in
  Alcotest.(check bool) ("arm32 tracepoint name " ^ name) true (String.length name > 2);
  let ppc = Testenv.image ~cfg:Config.{ arch = Ppc; flavor = Generic } (Version.v 5 4) in
  let d = Elf.Deref.make ppc in
  Alcotest.(check bool) "ppc big endian" true (Elf.Deref.endian d = Ds_util.Bytesio.Big);
  let start = (Option.get (Elf.find_symbol ppc "__start_ftrace_events")).Elf.sym_value in
  let rec_addr = Elf.Deref.read_ptr d start in
  let name = Elf.Deref.read_cstring d (Elf.Deref.read_ptr d rec_addr) in
  Alcotest.(check bool) ("ppc tracepoint name " ^ name) true (String.length name > 2)

let test_elf_write_read_roundtrip () =
  let img = Testenv.image v44 in
  let img' = Ds_util.Diag.ok (Elf.read (Elf.write img)) in
  Alcotest.(check int) "sections" (List.length img.Elf.sections) (List.length img'.Elf.sections);
  Alcotest.(check int) "symbols" (List.length img.Elf.symbols) (List.length img'.Elf.symbols)

let test_unique_symbol_addresses () =
  let img = Testenv.image v44 in
  let addrs =
    List.filter_map
      (fun (s : Elf.symbol) -> if s.Elf.sym_section = ".text" then Some s.Elf.sym_value else None)
      img.Elf.symbols
  in
  Alcotest.(check int) "text symbol addresses unique" (List.length addrs)
    (List.length (List.sort_uniq compare addrs))

let test_dwarf_symbols_consistent () =
  (* every DWARF subprogram with a low_pc has a text symbol at that
     address (possibly under a transformed name) *)
  let img = Testenv.image v44 in
  let info = (Option.get (Elf.find_section img ".debug_info")).Elf.sec_data in
  let abbrev = (Option.get (Elf.find_section img ".debug_abbrev")).Elf.sec_data in
  let cus = Ds_util.Diag.ok (Ds_dwarf.Info.decode ~info ~abbrev ()) in
  let addr_set = Hashtbl.create 1024 in
  List.iter
    (fun (s : Elf.symbol) ->
      if s.Elf.sym_section = ".text" then Hashtbl.replace addr_set s.Elf.sym_value ())
    img.Elf.symbols;
  List.iter
    (fun cu ->
      List.iter
        (fun (sp : Ds_dwarf.Info.subprogram) ->
          match sp.Ds_dwarf.Info.sp_low_pc with
          | Some pc ->
              Alcotest.(check bool)
                (Printf.sprintf "%s@0x%Lx has a symbol" sp.Ds_dwarf.Info.sp_name pc)
                true (Hashtbl.mem addr_set pc)
          | None -> ())
        cu.Ds_dwarf.Info.cu_subprograms)
    cus

let test_compile_deterministic () =
  let src = Testenv.source_at v44 in
  let a = Compile.compile src Config.x86_generic in
  let b = Compile.compile src Config.x86_generic in
  Alcotest.(check int) "same instance count" (List.length a.Compile.m_instances)
    (List.length b.Compile.m_instances);
  List.iter2
    (fun (x : Compile.instance) (y : Compile.instance) ->
      Alcotest.(check bool) "same symbols" true (x.Compile.i_symbols = y.Compile.i_symbols);
      Alcotest.(check bool) "same sites" true (x.Compile.i_sites = y.Compile.i_sites))
    a.Compile.m_instances b.Compile.m_instances

let test_threshold_override_monotone () =
  let src = Testenv.source_at v44 in
  let full_at threshold =
    let m = Compile.compile ~inline_threshold:threshold src Config.x86_generic in
    List.length
      (List.filter
         (fun (i : Compile.instance) ->
           i.Compile.i_symbols = [] && i.Compile.i_func.fn_static)
         m.Compile.m_instances)
  in
  let low = full_at 5 and mid = full_at 31 and high = full_at 500 in
  Alcotest.(check bool)
    (Printf.sprintf "inlining grows with threshold (%d <= %d <= %d)" low mid high)
    true
    (low <= mid && mid <= high && high > low)

let suites =
  [
    ( "kcc.compile",
      [
        Alcotest.test_case "model invariants" `Quick test_model_invariants;
        Alcotest.test_case "selective inline (vfs_fsync)" `Quick test_selective_inline_vfs_fsync;
        Alcotest.test_case "full inline (blk_account_io_start)" `Quick test_full_inline_blk_account;
        Alcotest.test_case "header duplication (get_order)" `Quick test_header_duplication;
        Alcotest.test_case "transforms present" `Quick test_transforms_present;
        Alcotest.test_case "no isra on arm32" `Quick test_no_isra_on_arm32;
        Alcotest.test_case "syscall symbols" `Quick test_syscall_symbols;
        Alcotest.test_case "unique symbol addresses" `Quick test_unique_symbol_addresses;
        Alcotest.test_case "dwarf/symtab consistency" `Quick test_dwarf_symbols_consistent;
        Alcotest.test_case "deterministic compile" `Quick test_compile_deterministic;
        Alcotest.test_case "threshold monotone" `Quick test_threshold_override_monotone;
      ] );
    ( "kcc.emit",
      [
        Alcotest.test_case "sections" `Quick test_emit_sections;
        Alcotest.test_case "banner" `Quick test_emit_banner_readable;
        Alcotest.test_case "ftrace array walk" `Quick test_emit_ftrace_array;
        Alcotest.test_case "syscall table walk" `Quick test_emit_syscall_table;
        Alcotest.test_case "dwarf decodes" `Quick test_emit_dwarf_decodes;
        Alcotest.test_case "btf decodes" `Quick test_emit_btf_decodes;
        Alcotest.test_case "arm32 + ppc images" `Quick test_emit_arm32_and_ppc;
        Alcotest.test_case "elf roundtrip" `Quick test_elf_write_read_roundtrip;
      ] );
  ]
