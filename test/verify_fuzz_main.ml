(* The seeded bytecode-fuzz campaigns behind the @verify-fuzz alias:
   every program of the 53-tool corpus has its encoded instruction
   stream mutated (structured per-field mutants + truncations, splices
   and random flips), and every tool's whole object bytes mutated, with
   each mutant driven through the verifier's diagnostic pipeline. Gates:
   zero uncaught exceptions, and every rejection classifies to a closed
   taxonomy rule carrying a suggestion — no "unclassified" escapes.
   `dune build @verify-fuzz` runs it; the root @check alias includes
   it. *)

open Ds_ksrc
module V = Ds_verify.Verify

let mutation_count =
  match Sys.getenv_opt "DEPSURF_FUZZ_COUNT" with
  | Some n -> int_of_string n
  | None -> 500

let seed = 42L
let failures = ref 0

let report label c =
  Printf.printf "%-24s mutants %5d  accepted %5d  rejected %5d  crashed %d  unclassified %d\n%!"
    label c.V.cp_total c.V.cp_accepted c.V.cp_rejected
    (List.length c.V.cp_crashed) c.V.cp_unclassified;
  List.iter
    (fun (name, e) ->
      incr failures;
      Printf.printf "  CRASH %s: %s\n%!" name e)
    c.V.cp_crashed;
  if c.V.cp_unclassified > 0 then begin
    incr failures;
    Printf.printf "  %d rejection(s) escaped the taxonomy\n%!" c.V.cp_unclassified
  end

let () =
  let ds = Depsurf.Dataset.build ~seed Calibration.test_scale in
  let corpus = Ds_corpus.Corpus.build_all ds () in
  Printf.printf "verify-fuzz: %d tools, %d mutants per stream, seed %Ld\n%!"
    (List.length corpus) mutation_count seed;
  (* per-program instruction-stream campaigns, merged per tool *)
  let total = ref V.{ cp_total = 0; cp_accepted = 0; cp_rejected = 0;
                      cp_crashed = []; cp_unclassified = 0; cp_rules = [] } in
  List.iter
    (fun (profile, obj) ->
      let per_tool =
        List.fold_left
          (fun acc prog -> V.merge acc (V.campaign_insns ~count:mutation_count ~seed prog))
          V.{ cp_total = 0; cp_accepted = 0; cp_rejected = 0; cp_crashed = [];
              cp_unclassified = 0; cp_rules = [] }
          obj.Ds_bpf.Obj.o_progs
      in
      report profile.Ds_corpus.Table7.pr_name per_tool;
      total := V.merge !total per_tool)
    corpus;
  (* whole-object campaigns: the loader + verifier pipeline end to end,
     name-checked against the v5.4 study kernel's BTF *)
  let kernel =
    Ds_bpf.Vmlinux.load (Depsurf.Dataset.image ds (Version.v 5 4) Config.x86_generic)
  in
  List.iter
    (fun (profile, obj) ->
      let c =
        V.campaign_obj ~count:mutation_count ~seed ~kernel (Ds_bpf.Obj.write obj)
      in
      report (profile.Ds_corpus.Table7.pr_name ^ " (obj)") c;
      total := V.merge !total c)
    corpus;
  let t = !total in
  Printf.printf "TOTAL: %d mutants, %d rejected across %d rules\n%!" t.V.cp_total
    t.V.cp_rejected (List.length t.V.cp_rules);
  List.iter (fun (rule, n) -> Printf.printf "  %-28s %6d\n" rule n)
    (List.sort (fun (_, a) (_, b) -> compare b a) t.V.cp_rules);
  if !failures > 0 then begin
    Printf.printf "VERIFY-FUZZ FAILED: %d failure(s)\n" !failures;
    exit 1
  end
  else
    print_endline
      "verify-fuzz: all mutants survived, every rejection classified with a suggestion"
