open Ds_dwarf
open Ds_ctypes
module Dw = Die.Dw

let mk_proto ret params =
  Ctype.{ ret; params = List.map (fun (n, t) -> { pname = n; ptype = t }) params; variadic = false }

let sample_cus () =
  let env = List.fold_left Decl.add_typedef (Decl.empty_env ~ptr_size:8) Decl.default_typedefs in
  let request =
    Decl.layout_struct env ~name:"request" ~kind:`Struct
      [ ("sector", Ctype.Typedef_ref "sector_t"); ("rq_disk", Ctype.Ptr (Ctype.Struct_ref "gendisk")) ]
  in
  [
    Info.
      {
        cu_name = "block/blk-core.c";
        cu_subprograms =
          [
            {
              sp_name = "blk_account_io_start";
              sp_proto =
                mk_proto Ctype.void
                  [
                    ("rq", Ctype.Ptr (Ctype.Struct_ref "request"));
                    ("new_io", Ctype.bool_);
                  ];
              sp_file = "block/blk-core.c";
              sp_line = 120;
              sp_external = true;
              sp_declared_inline = false;
              sp_low_pc = Some 0x10000L;
              sp_inlined = [];
              sp_calls = [ "blk_do_io_stat" ];
            };
            {
              sp_name = "submit_bio";
              sp_proto = mk_proto Ctype.void [ ("bio", Ctype.Ptr (Ctype.Struct_ref "bio")) ];
              sp_file = "block/blk-core.c";
              sp_line = 300;
              sp_external = true;
              sp_declared_inline = false;
              sp_low_pc = Some 0x10100L;
              sp_inlined =
                [
                  { ic_callee = "blk_account_io_start"; ic_pc = 0x10140L; ic_call_line = 310 };
                  { ic_callee = "bio_check_eod"; ic_pc = 0x10180L; ic_call_line = 315 };
                ];
              sp_calls = [];
            };
          ];
        cu_structs = [ request ];
        cu_enums = [ { ename = "req_opf"; values = [ ("REQ_OP_READ", 0); ("REQ_OP_WRITE", 1) ] } ];
        cu_typedefs = [ { tname = "sector_t"; aliased = Ctype.ulong } ];
      };
    Info.
      {
        cu_name = "fs/sync.c";
        cu_subprograms =
          [
            {
              sp_name = "do_fsync";
              sp_proto = mk_proto Ctype.long [ ("fd", Ctype.uint); ("datasync", Ctype.int_) ];
              sp_file = "fs/sync.c";
              sp_line = 200;
              sp_external = false;
              sp_declared_inline = true;
              sp_low_pc = None;
              sp_inlined = [];
              sp_calls = [];
            };
          ];
        cu_structs = [];
        cu_enums = [];
        cu_typedefs = [];
      };
  ]

let roundtrip cus =
  let info, abbrev = Info.encode cus in
  Ds_util.Diag.ok (Info.decode ~info ~abbrev ())

let test_cu_structure () =
  let cus = roundtrip (sample_cus ()) in
  Alcotest.(check int) "two CUs" 2 (List.length cus);
  let cu = List.hd cus in
  Alcotest.(check string) "cu name" "block/blk-core.c" cu.Info.cu_name;
  Alcotest.(check int) "subprograms" 2 (List.length cu.Info.cu_subprograms);
  Alcotest.(check int) "structs" 1 (List.length cu.Info.cu_structs);
  Alcotest.(check int) "enums" 1 (List.length cu.Info.cu_enums);
  Alcotest.(check int) "typedefs" 1 (List.length cu.Info.cu_typedefs)

let test_subprogram_decl () =
  let cus = roundtrip (sample_cus ()) in
  let cu = List.hd cus in
  let sp = List.hd cu.Info.cu_subprograms in
  Alcotest.(check string) "name" "blk_account_io_start" sp.Info.sp_name;
  Alcotest.(check int) "line" 120 sp.Info.sp_line;
  Alcotest.(check bool) "external" true sp.Info.sp_external;
  Alcotest.(check bool) "not declared inline" false sp.Info.sp_declared_inline;
  Alcotest.(check bool) "has low pc" true (sp.Info.sp_low_pc = Some 0x10000L);
  Alcotest.(check int) "params" 2 (List.length sp.Info.sp_proto.params);
  let p0 = List.hd sp.Info.sp_proto.params in
  Alcotest.(check string) "param name" "rq" p0.Ctype.pname;
  Alcotest.(check bool) "param type" true
    (Ctype.equal p0.Ctype.ptype (Ctype.Ptr (Ctype.Struct_ref "request")));
  Alcotest.(check (list string)) "call sites" [ "blk_do_io_stat" ] sp.Info.sp_calls

let test_inlined_subroutines () =
  let cus = roundtrip (sample_cus ()) in
  let cu = List.hd cus in
  let sp = List.nth cu.Info.cu_subprograms 1 in
  Alcotest.(check int) "two inlined" 2 (List.length sp.Info.sp_inlined);
  let ic = List.hd sp.Info.sp_inlined in
  Alcotest.(check string) "callee" "blk_account_io_start" ic.Info.ic_callee;
  Alcotest.(check int64) "pc" 0x10140L ic.Info.ic_pc;
  Alcotest.(check int) "call line" 310 ic.Info.ic_call_line

let test_static_inline_subprogram () =
  let cus = roundtrip (sample_cus ()) in
  let cu = List.nth cus 1 in
  let sp = List.hd cu.Info.cu_subprograms in
  Alcotest.(check bool) "static" false sp.Info.sp_external;
  Alcotest.(check bool) "declared inline" true sp.Info.sp_declared_inline;
  Alcotest.(check bool) "no low pc (fully inlined)" true (sp.Info.sp_low_pc = None);
  Alcotest.(check bool) "return type" true (Ctype.equal sp.Info.sp_proto.ret Ctype.long)

let test_struct_def_roundtrip () =
  let cus = roundtrip (sample_cus ()) in
  let cu = List.hd cus in
  let s = List.hd cu.Info.cu_structs in
  Alcotest.(check string) "name" "request" s.Decl.sname;
  Alcotest.(check int) "fields" 2 (List.length s.Decl.fields);
  let rq_disk = List.nth s.Decl.fields 1 in
  Alcotest.(check string) "field name" "rq_disk" rq_disk.Decl.fname;
  Alcotest.(check bool) "field type via opaque ref" true
    (Ctype.equal rq_disk.Decl.ftype (Ctype.Ptr (Ctype.Struct_ref "gendisk")));
  Alcotest.(check int) "offset" 64 rq_disk.Decl.bits_offset

let test_typedef_enum_roundtrip () =
  let cus = roundtrip (sample_cus ()) in
  let cu = List.hd cus in
  let td = List.hd cu.Info.cu_typedefs in
  Alcotest.(check string) "typedef name" "sector_t" td.Decl.tname;
  Alcotest.(check bool) "aliased" true (Ctype.equal td.Decl.aliased Ctype.ulong);
  let e = List.hd cu.Info.cu_enums in
  Alcotest.(check (list (pair string int))) "values"
    [ ("REQ_OP_READ", 0); ("REQ_OP_WRITE", 1) ]
    e.Decl.values

let test_die_low_level () =
  let b = Die.Builder.create () in
  let child = Die.Builder.add b ~tag:Dw.tag_member ~attrs:[ (Dw.at_name, Die.String "x") ] ~children:[] in
  let parent =
    Die.Builder.add b ~tag:Dw.tag_structure_type
      ~attrs:[ (Dw.at_name, Die.String "s"); (Dw.at_byte_size, Die.Int 8) ]
      ~children:[ child ]
  in
  let cu =
    Die.Builder.add b ~tag:Dw.tag_compile_unit
      ~attrs:[ (Dw.at_name, Die.String "a.c") ]
      ~children:[ parent ]
  in
  Die.Builder.add_root b cu;
  let arena = Die.Builder.finish b in
  let info, abbrev = Die.encode arena in
  let arena' = Ds_util.Diag.ok (Die.decode ~info ~abbrev ()) in
  Alcotest.(check int) "die count" (Die.size arena) (Die.size arena');
  let root = List.hd (Die.roots arena') in
  let cu_die = Die.get arena' root in
  Alcotest.(check int) "cu tag" Dw.tag_compile_unit cu_die.Die.tag;
  Alcotest.(check (option string)) "cu name" (Some "a.c") (Die.attr_string cu_die Dw.at_name)

let test_die_refs () =
  let b = Die.Builder.create () in
  let base =
    Die.Builder.add b ~tag:Dw.tag_base_type
      ~attrs:[ (Dw.at_name, Die.String "int"); (Dw.at_byte_size, Die.Int 4) ]
      ~children:[]
  in
  let ptr = Die.Builder.add b ~tag:Dw.tag_pointer_type ~attrs:[ (Dw.at_type, Die.Ref base) ] ~children:[] in
  let cu =
    Die.Builder.add b ~tag:Dw.tag_compile_unit
      ~attrs:[ (Dw.at_name, Die.String "x.c") ]
      ~children:[ base; ptr ]
  in
  Die.Builder.add_root b cu;
  let info, abbrev = Die.encode (Die.Builder.finish b) in
  let arena' = Ds_util.Diag.ok (Die.decode ~info ~abbrev ()) in
  let cu_die = Die.get arena' (List.hd (Die.roots arena')) in
  let ptr_die =
    List.find (fun id -> (Die.get arena' id).Die.tag = Dw.tag_pointer_type) cu_die.Die.children
  in
  match Die.attr_ref (Die.get arena' ptr_die) Dw.at_type with
  | Some target ->
      Alcotest.(check (option string)) "ref resolves" (Some "int")
        (Die.attr_string (Die.get arena' target) Dw.at_name)
  | None -> Alcotest.fail "missing type ref"

let test_bad_input () =
  Alcotest.check_raises "garbage abbrev" (Die.Bad_dwarf "truncated abbrev") (fun () ->
      ignore (Die.decode ~info:"" ~abbrev:"\x81" ()))

let test_empty_cu_list () =
  let info, abbrev = Info.encode [] in
  Alcotest.(check (list pass)) "no cus" [] (Ds_util.Diag.ok (Info.decode ~info ~abbrev ()))

(* random CU generator for the roundtrip property *)
let gen_ctype_simple =
  QCheck.Gen.oneofl
    Ctype.[ int_; uint; long; char_; u64; u32; Ptr (Struct_ref "request"); Ptr (Const char_) ]

let gen_proto =
  let open QCheck.Gen in
  let* nparams = int_range 0 4 in
  let* types = list_size (return nparams) gen_ctype_simple in
  let* ret = oneof [ return Ctype.Void; gen_ctype_simple ] in
  let* variadic = bool in
  return
    Ctype.
      {
        ret;
        params = List.mapi (fun i t -> { pname = Printf.sprintf "p%d" i; ptype = t }) types;
        variadic;
      }

let gen_subprogram =
  let open QCheck.Gen in
  let* name = string_size ~gen:(char_range 'a' 'z') (int_range 1 12) in
  let* proto = gen_proto in
  let* line = int_range 1 5000 in
  let* external_ = bool in
  let* declared_inline = bool in
  let* has_pc = bool in
  let* n_inlined = int_range 0 3 in
  let* inlined =
    list_size (return n_inlined)
      (let* callee = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
       let* pc = int_range 1 1000000 in
       let* l = int_range 1 9999 in
       return Info.{ ic_callee = callee; ic_pc = Int64.of_int (pc * 16); ic_call_line = l })
  in
  let* calls = list_size (int_range 0 3) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) in
  return
    Info.
      {
        sp_name = name;
        sp_proto = proto;
        sp_file = "gen/file.c";
        sp_line = line;
        sp_external = external_;
        sp_declared_inline = declared_inline;
        sp_low_pc = (if has_pc then Some 0x1000L else None);
        sp_inlined = inlined;
        sp_calls = calls;
      }

let gen_cu =
  let open QCheck.Gen in
  let* name = string_size ~gen:(char_range 'a' 'z') (int_range 1 10) in
  let* sps = list_size (int_range 0 5) gen_subprogram in
  return
    Info.
      { cu_name = name ^ ".c"; cu_subprograms = sps; cu_structs = []; cu_enums = []; cu_typedefs = [] }

let eq_sp (a : Info.subprogram) (b : Info.subprogram) =
  a.sp_name = b.sp_name
  && Ctype.equal_proto a.sp_proto b.sp_proto
  && a.sp_file = b.sp_file && a.sp_line = b.sp_line && a.sp_external = b.sp_external
  && a.sp_declared_inline = b.sp_declared_inline
  && a.sp_low_pc = b.sp_low_pc && a.sp_inlined = b.sp_inlined
  && a.sp_calls = b.sp_calls

let qcheck_info_roundtrip =
  QCheck.Test.make ~name:"dwarf Info roundtrip (random CUs)" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 0 4) gen_cu))
    (fun cus ->
      let info, abbrev = Info.encode cus in
      let cus' = Ds_util.Diag.ok (Info.decode ~info ~abbrev ()) in
      List.length cus = List.length cus'
      && List.for_all2
           (fun (a : Info.cu) (b : Info.cu) ->
             a.cu_name = b.cu_name
             && List.length a.cu_subprograms = List.length b.cu_subprograms
             && List.for_all2 eq_sp a.cu_subprograms b.cu_subprograms)
           cus cus')

let suites =
  [
    ( "dwarf",
      [
        Alcotest.test_case "cu structure" `Quick test_cu_structure;
        Alcotest.test_case "subprogram decl" `Quick test_subprogram_decl;
        Alcotest.test_case "inlined subroutines" `Quick test_inlined_subroutines;
        Alcotest.test_case "static inline subprogram" `Quick test_static_inline_subprogram;
        Alcotest.test_case "struct def" `Quick test_struct_def_roundtrip;
        Alcotest.test_case "typedef/enum" `Quick test_typedef_enum_roundtrip;
        Alcotest.test_case "die low level" `Quick test_die_low_level;
        Alcotest.test_case "die refs" `Quick test_die_refs;
        Alcotest.test_case "bad input" `Quick test_bad_input;
        Alcotest.test_case "empty cu list" `Quick test_empty_cu_list;
        QCheck_alcotest.to_alcotest qcheck_info_roundtrip;
      ] );
  ]
