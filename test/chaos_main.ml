(* The socket-level chaos harness behind the @serve-chaos alias: a
   seeded population of misbehaving clients (Ds_faultgen.Chaos) driven
   against a live in-process server with short limits. Invariants:

   - the server never crashes and stays answerable afterwards;
   - no fd leaks across the whole sweep (/proc/self/fd);
   - every answerable scenario gets one of its expected statuses;
   - every >= 400 answer is a structured JSON envelope with an error
     member — never a bare text fragment or a slammed connection
     without a status.

   Exits non-zero on any violation. `dune build @serve-chaos` runs it;
   the root @check alias includes it. *)

open Ds_ksrc
open Depsurf
module Serve = Ds_serve.Serve
module Chaos = Ds_faultgen.Chaos
module Par = Ds_util.Par
module Json = Ds_util.Json
module Fdcount = Ds_util.Fdcount

let scenario_count =
  match Sys.getenv_opt "DEPSURF_CHAOS_COUNT" with
  | Some n -> int_of_string n
  | None -> 60

let seed = 1337L
let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr failures;
      Printf.printf "  FAIL %s\n%!" m)
    fmt

(* run one scenario's steps against a fresh connection, returning the
   raw response bytes collected (possibly empty) *)
let run_scenario sockaddr sc =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let closed = ref false in
  let close () =
    if not !closed then begin
      closed := true;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let recv_some limit =
    (* 0 = to EOF; bound every read so a wedged server cannot wedge us *)
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    let want = if limit = 0 then max_int else limit in
    let rec go got =
      if got >= want then ()
      else
        match Unix.read fd chunk 0 (min 4096 (want - got)) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go (got + n)
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
          ->
            fail "%s: server neither answered nor closed within 5s" (Chaos.name sc)
    in
    go 0
  in
  Fun.protect ~finally:close (fun () ->
      Unix.connect fd sockaddr;
      (* a misbehaving client must never block the harness: the server
         closing on us mid-send (EPIPE) is an expected outcome *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
      List.iter
        (fun step ->
          if not !closed then
            match step with
            | Chaos.Send s -> (
                try
                  let n = Unix.write_substring fd s 0 (String.length s) in
                  ignore n
                with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ())
            | Chaos.Pause s -> Unix.sleepf s
            | Chaos.Recv n -> recv_some n
            | Chaos.Abort -> close ())
        (Chaos.steps sc));
  Buffer.contents buf

let status_of_response raw =
  if String.length raw < 12 || not (String.length raw >= 9 && String.sub raw 0 9 = "HTTP/1.1 ")
  then None
  else int_of_string_opt (String.sub raw 9 3)

let body_of_response raw =
  match Ds_util.Strutil.find_sub raw ~sub:"\r\n\r\n" with
  | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
  | None -> ""

(* every >= 400 must be a structured envelope: JSON, v member, and an
   error string under data *)
let check_envelope sc status body =
  match Json.of_string body with
  | exception _ -> fail "%s: %d body is not JSON: %S" (Chaos.name sc) status body
  | j -> (
      (match Json.member "v" j with
      | Some (Json.Int 1) -> ()
      | _ -> fail "%s: %d envelope lacks v=1" (Chaos.name sc) status);
      match Json.member "error" (Api.data j) with
      | Some (Json.String _) -> ()
      | _ -> fail "%s: %d envelope lacks data.error" (Chaos.name sc) status)

let allowed_statuses = [ 200; 204; 304; 400; 404; 405; 408; 413; 431; 503 ]

let check_scenario sc raw =
  match Chaos.expect sc with
  | Chaos.No_answer ->
      (* whatever came back (nothing, or a partial answer we aborted on)
         is fine; the global invariants cover the rest *)
      ()
  | Chaos.Any_status codes -> (
      match status_of_response raw with
      | None -> fail "%s: no parseable status line in %S" (Chaos.name sc) raw
      | Some st ->
          if not (List.mem st codes) then
            fail "%s: status %d not in expected %s" (Chaos.name sc) st
              (String.concat "," (List.map string_of_int codes));
          if not (List.mem st allowed_statuses) then
            fail "%s: status %d outside the allowed set" (Chaos.name sc) st;
          if st >= 400 then check_envelope sc st (body_of_response raw))

let () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let ds = Dataset.build ~seed:42L Calibration.test_scale in
  let dir = Filename.temp_file "depsurf-chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock_path = Filename.concat dir "chaos.sock" in
  Par.run ~jobs:4 (fun pool ->
      let limits =
        {
          (Serve.default_limits ()) with
          Serve.li_read_timeout_s = 0.5;
          li_handle_deadline_s = 5.0;
          li_write_timeout_s = 2.0;
          li_drain_deadline_s = 5.0;
        }
      in
      let t = Serve.create ~limits ~ds ~pool () in
      let h = Serve.start t (Serve.Unix_sock sock_path) in
      let sockaddr = Unix.ADDR_UNIX sock_path in
      (* warm the trivial endpoints so chaos latencies are not compile
         costs, then take the fd baseline *)
      List.iter
        (fun p -> ignore (Serve.Client.request (Serve.Unix_sock sock_path) ~meth:"GET" ~path:p))
        [ "/healthz"; "/v1/metrics" ];
      let fd_before = Fdcount.count () in
      let scenarios = Chaos.generate ~seed scenario_count in
      Printf.printf "chaos: %d scenarios against %s (fd baseline %d)\n%!"
        (List.length scenarios) sock_path fd_before;
      List.iter
        (fun sc ->
          match run_scenario sockaddr sc with
          | raw -> check_scenario sc raw
          | exception e ->
              fail "%s: harness exception %s" (Chaos.name sc) (Printexc.to_string e))
        scenarios;
      (* connection churn: a burst of connect/close from several domains *)
      let churners =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 25 do
                  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                  (try Unix.connect fd sockaddr with Unix.Unix_error _ -> ());
                  (try Unix.close fd with Unix.Unix_error _ -> ())
                done))
      in
      List.iter Domain.join churners;
      (* long-poll chaos: clients that park on /v1/watch and hang up
         mid-wait must not leak fds, wedge the parking lot, or crash the
         server; a well-behaved poller racing an ingest still gets its
         event. Runs before the fd accounting so parked-corpse leaks are
         caught by the global check. *)
      (let base = Dataset.surface ds (Version.v 5 4) Config.x86_generic in
       let victim =
         match base.Surface.s_funcs with f :: _ -> f.Surface.fe_name | [] -> "vfs_read"
       in
       match
         Serve.Client.request_full
           ~body:(Printf.sprintf {|{"deps": ["func:%s"]}|} victim)
           (Serve.Unix_sock sock_path) ~meth:"POST" ~path:"/v1/subscriptions"
       with
       | exception e -> fail "watch chaos: register: %s" (Printexc.to_string e)
       | st, _, _ when st <> 200 -> fail "watch chaos: register answered %d" st
       | _, _, sub_body -> (
           match Json.member "id" (Api.data (Json.of_string sub_body)) with
           | Some (Json.String sub_id) ->
               let quitters =
                 List.init 6 (fun i ->
                     Domain.spawn (fun () ->
                         let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                         (try
                            Unix.connect fd sockaddr;
                            let req =
                              Printf.sprintf
                                "GET /v1/watch/%s?wait=4 HTTP/1.1\r\nHost: x\r\n\r\n"
                                sub_id
                            in
                            ignore (Unix.write_substring fd req 0 (String.length req));
                            (* park, then slam the connection mid-wait *)
                            Unix.sleepf (0.05 +. (float_of_int i *. 0.03))
                          with Unix.Unix_error _ -> ());
                         try Unix.close fd with Unix.Unix_error _ -> ()))
               in
               let poller =
                 Domain.spawn (fun () ->
                     Serve.Client.request_full ~timeout_s:10.
                       (Serve.Unix_sock sock_path) ~meth:"GET"
                       ~path:(Printf.sprintf "/v1/watch/%s?wait=8&since=0" sub_id))
               in
               List.iter Domain.join quitters;
               (* an ingest that breaks the subscribed dep wakes the
                  honest poller *)
               let next =
                 Depsurf.Codec.encode_surface
                   (Surface.v ~version:base.Surface.s_version ~arch:base.Surface.s_arch
                      ~flavor:base.Surface.s_flavor ~gcc:base.Surface.s_gcc
                      ~funcs:
                        (List.filter
                           (fun f -> f.Surface.fe_name <> victim)
                           base.Surface.s_funcs)
                      ~structs:base.Surface.s_structs
                      ~tracepoints:base.Surface.s_tracepoints
                      ~syscalls:base.Surface.s_syscalls)
               in
               (match
                  Serve.Client.request_full ~body:next (Serve.Unix_sock sock_path)
                    ~meth:"POST"
                    ~path:"/v1/watch/ingest?base=5.4-x86-generic&name=chaos&kind=surface"
                with
               | 200, _, _ -> ()
               | st, _, _ -> fail "watch chaos: ingest answered %d" st
               | exception e -> fail "watch chaos: ingest: %s" (Printexc.to_string e));
               (match Domain.join poller with
               | 200, _, _ -> ()
               | st, _, _ -> fail "watch chaos: honest poller answered %d, wanted 200" st
               | exception e -> fail "watch chaos: poller: %s" (Printexc.to_string e));
               (* give the accept loop a sweep round to reap corpses *)
               let rec settle tries =
                 if Serve.parked_count t > 0 && tries > 0 then begin
                   Unix.sleepf 0.1;
                   settle (tries - 1)
                 end
               in
               settle 30;
               if Serve.parked_count t <> 0 then
                 fail "watch chaos: %d connections still parked" (Serve.parked_count t)
           | _ -> fail "watch chaos: no subscription id in %S" sub_body));
      (* the server must still be alive and answering *)
      (match Serve.Client.request (Serve.Unix_sock sock_path) ~meth:"GET" ~path:"/healthz" with
      | 200, _ -> ()
      | st, _ -> fail "healthz after chaos: %d" st
      | exception e -> fail "healthz after chaos: %s" (Printexc.to_string e));
      (* let evicted/timed-out handlers fully unwind before counting fds *)
      Unix.sleepf 0.6;
      let fd_after = Fdcount.count () in
      if not (Fdcount.no_growth ~slack:2 ~before:fd_before ~after:fd_after ()) then
        fail "fd leak: %d before, %d after" fd_before fd_after;
      Serve.stop h;
      let m = Serve.metrics t in
      Printf.printf
        "chaos: done  shed=%d timeouts=%d protocol=%d io=%d admitted=%d fd %d->%d\n%!"
        (Ds_util.Metrics.counter m "overload.shed")
        (Ds_util.Metrics.counter m "errors.timeout")
        (Ds_util.Metrics.counter m "errors.protocol")
        (Ds_util.Metrics.counter m "errors.io")
        (Ds_util.Metrics.counter m "admission.admitted")
        fd_before fd_after;
      Printf.printf "chaos: watch parked=%d notified=%d timeouts=%d disconnects=%d\n%!"
        (Ds_util.Metrics.counter m "watch.parked")
        (Ds_util.Metrics.counter m "watch.notify")
        (Ds_util.Metrics.counter m "watch.timeout")
        (Ds_util.Metrics.counter m "watch.disconnect"));
  (try Sys.remove sock_path with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if !failures > 0 then begin
    Printf.printf "chaos: %d FAILURES\n%!" !failures;
    exit 1
  end;
  print_endline "chaos: all invariants held"
