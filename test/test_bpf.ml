open Ds_bpf
open Ds_ksrc

let v44 = Version.v 4 4
let v54 = Version.v 5 4
let v519 = Version.v 5 19

let kernel_cache : (string, Vmlinux.t) Hashtbl.t = Hashtbl.create 8

let kernel ?(cfg = Config.x86_generic) v =
  let key = Version.to_string v ^ Config.to_string cfg in
  match Hashtbl.find_opt kernel_cache key with
  | Some k -> k
  | None ->
      let k = Vmlinux.load (Testenv.image ~cfg v) in
      Hashtbl.replace kernel_cache key k;
      k

(* ------------------------------------------------------------------ *)
(* Vmlinux banner parsing                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_banner () =
  let v, flavor, gcc =
    Vmlinux.parse_banner
      "Linux version 5.4.0-azure (buildd@x) (gcc version 9.2.0 (Ubuntu)) #1 SMP x86"
  in
  Alcotest.(check string) "version" "v5.4" (Version.to_string v);
  Alcotest.(check bool) "flavor" true (flavor = Config.Azure);
  Alcotest.(check bool) "gcc" true (gcc = (9, 2));
  List.iter
    (fun bad ->
      match Vmlinux.parse_banner bad with
      | exception Vmlinux.Bad_vmlinux _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ bad))
    [
      "not a banner";
      "Linux version x.y.z-generic";
      "Linux version 5.4.0-nosuchflavor (gcc version 9.2.0)";
      "Linux version 5.4.0-generic (no compiler here)";
    ]

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)
(* ------------------------------------------------------------------ *)

let sample_insns =
  Insn.
    [
      Mov_reg { dst = 6; src = 1 };
      Ldx { dst = 7; src = 6; off = 112; size = DW };
      Mov_imm { dst = 2; imm = 8 };
      Add_imm { dst = 7; imm = -4 };
      Jeq_imm { reg = 7; imm = 0; target = 1 };
      Call Insn.helper_probe_read;
      Mov_imm { dst = 0; imm = 0 };
      Exit;
    ]

let test_insn_roundtrip () =
  let bytes = Insn.encode sample_insns in
  Alcotest.(check int) "8 bytes per insn" (8 * List.length sample_insns) (String.length bytes);
  Alcotest.(check bool) "roundtrip" true (Insn.decode bytes = sample_insns)

let test_insn_negative_offsets () =
  let insns = Insn.[ Ldx { dst = 1; src = 10; off = -16; size = W }; Exit ] in
  Alcotest.(check bool) "negative off survives" true (Insn.decode (Insn.encode insns) = insns)

let test_insn_bad () =
  Alcotest.check_raises "bad length" (Insn.Bad_insn "instruction stream not 8-aligned")
    (fun () -> ignore (Insn.decode "abc"));
  Alcotest.check_raises "bad opcode" (Insn.Bad_insn "unknown opcode 0xff") (fun () ->
      ignore (Insn.decode "\xff\x00\x00\x00\x00\x00\x00\x00"))

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)
(* ------------------------------------------------------------------ *)

let ok = Alcotest.(check bool) "accepted" true
let rejected msg_part result =
  match result with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error { Verifier.ve_msg; _ } ->
      Alcotest.(check bool) (Printf.sprintf "reason %S contains %S" ve_msg msg_part) true
        (let n = String.length msg_part in
         let rec go i =
           i + n <= String.length ve_msg && (String.sub ve_msg i n = msg_part || go (i + 1))
         in
         go 0)

let test_verifier_accepts () =
  ok (Verifier.verify sample_insns = Ok ());
  ok (Verifier.verify Insn.[ Mov_imm { dst = 0; imm = 0 }; Exit ] = Ok ())

let test_verifier_branch_paths () =
  (* the TAKEN path must verify too: here the branch skips the
     initialization of r0, so the jump target exits with r0 uninit *)
  rejected "exit with uninitialized R0"
    (Verifier.verify
       Insn.
         [
           Mov_imm { dst = 2; imm = 0 };
           Jeq_imm { reg = 2; imm = 0; target = 1 };
           Mov_imm { dst = 0; imm = 1 };
           Exit;
         ]);
  (* ... and when both paths initialize r0, the program is fine *)
  ok
    (Verifier.verify
       Insn.
         [
           Mov_imm { dst = 0; imm = 0 };
           Jeq_imm { reg = 0; imm = 0; target = 1 };
           Mov_imm { dst = 0; imm = 1 };
           Exit;
         ]
    = Ok ());
  (* a register initialized on only one path cannot be used after *)
  rejected "uninitialized"
    (Verifier.verify
       Insn.
         [
           Mov_imm { dst = 0; imm = 0 };
           Jeq_imm { reg = 0; imm = 0; target = 1 };
           Mov_imm { dst = 3; imm = 7 };
           Mov_reg { dst = 4; src = 3 };
           Exit;
         ])

let test_verifier_rejects () =
  rejected "uninitialized" (Verifier.verify Insn.[ Mov_reg { dst = 0; src = 3 }; Exit ]);
  rejected "exit with uninitialized R0" (Verifier.verify Insn.[ Exit ]);
  rejected "does not end with exit"
    (Verifier.verify Insn.[ Mov_imm { dst = 0; imm = 1 } ]);
  rejected "invalid mem access"
    (Verifier.verify
       Insn.[ Mov_imm { dst = 3; imm = 8 }; Ldx { dst = 0; src = 3; off = 0; size = DW }; Exit ]);
  rejected "unknown func"
    (Verifier.verify Insn.[ Call 9999; Exit ]);
  rejected "ctx access out of bounds"
    (Verifier.verify Insn.[ Ldx { dst = 0; src = 1; off = 5000; size = DW }; Exit ]);
  rejected "back-edge"
    (Verifier.verify
       Insn.[ Mov_imm { dst = 0; imm = 0 }; Jeq_imm { reg = 0; imm = 0; target = -2 }; Exit ]);
  rejected "cannot write r10" (Verifier.verify Insn.[ Mov_imm { dst = 10; imm = 0 }; Exit ]);
  rejected "stack write out of frame"
    (Verifier.verify
       Insn.[ Mov_imm { dst = 2; imm = 0 }; Stx { dst = 10; src = 2; off = 16; size = DW }; Exit ]);
  rejected "empty program" (Verifier.verify [])

(* ------------------------------------------------------------------ *)
(* Hooks                                                               *)
(* ------------------------------------------------------------------ *)

let test_hook_sections () =
  let cases =
    [
      (Hook.Kprobe "do_unlinkat", "kprobe/do_unlinkat");
      (Hook.Kretprobe "vfs_read", "kretprobe/vfs_read");
      (Hook.Tracepoint { category = "block"; event = "block_rq_issue" },
       "tracepoint/block/block_rq_issue");
      (Hook.Raw_tracepoint "sched_switch", "raw_tp/sched_switch");
      (Hook.Lsm "file_open", "lsm/file_open");
      (Hook.Syscall_enter "openat", "tracepoint/syscalls/sys_enter_openat");
      (Hook.Syscall_exit "open", "tracepoint/syscalls/sys_exit_open");
    ]
  in
  List.iter
    (fun (h, s) ->
      Alcotest.(check string) "to_section" s (Hook.to_section h);
      Alcotest.(check bool) "of_section roundtrip" true (Hook.of_section s = Some h))
    cases;
  Alcotest.(check bool) "lsm target" true
    (Hook.target_function (Hook.Lsm "file_open") = Some "security_file_open");
  Alcotest.(check bool) "junk section" true (Hook.of_section "maps" = None)

(* ------------------------------------------------------------------ *)
(* Objects                                                             *)
(* ------------------------------------------------------------------ *)

let biotop_spec =
  Progbuild.
    {
      sp_tool = "biotop";
      sp_hooks =
        [
          {
            hs_hook = Hook.Kprobe "blk_account_io_start";
            hs_arg_indices = [ 0 ]; hs_kfuncs = [];
            hs_reads =
              [
                { rd_struct = "request"; rd_path = [ "__sector" ]; rd_exists_check = false };
                { rd_struct = "request"; rd_path = [ "rq_disk"; "major" ]; rd_exists_check = false };
              ];
          };
          {
            hs_hook = Hook.Kprobe "blk_account_io_done";
            hs_arg_indices = [ 0 ]; hs_kfuncs = [];
            hs_reads = [];
          };
        ];
    }

let build_obj ?(v = v44) spec =
  let k = kernel v in
  Progbuild.build ~build_btf:k.Vmlinux.v_btf ~build_arch:Config.X86 ~tag:(Vmlinux.tag k) spec

let test_obj_roundtrip () =
  let obj = build_obj biotop_spec in
  let obj' = Ds_util.Diag.ok (Obj.read (Obj.write obj)) in
  Alcotest.(check string) "name" "biotop" obj'.Obj.o_name;
  Alcotest.(check int) "progs" 2 (List.length obj'.Obj.o_progs);
  let p = List.hd obj'.Obj.o_progs in
  let p0 = List.hd obj.Obj.o_progs in
  Alcotest.(check string) "section" p0.Obj.p_section p.Obj.p_section;
  Alcotest.(check bool) "insns preserved" true (p.Obj.p_insns = p0.Obj.p_insns);
  Alcotest.(check bool) "relocs preserved" true (p.Obj.p_relocs = p0.Obj.p_relocs);
  Alcotest.(check int) "3 relocs (arg + 2 fields... chain counts once each)" 3
    (List.length p.Obj.p_relocs)

let test_obj_access_path () =
  let obj = build_obj biotop_spec in
  let p = List.hd obj.Obj.o_progs in
  let paths =
    List.filter_map (fun r -> Obj.access_path obj r.Obj.cr_type_id r.Obj.cr_access) p.Obj.p_relocs
  in
  Alcotest.(check bool) "pt_regs.di recorded" true (List.mem ("pt_regs", [ "di" ]) paths);
  Alcotest.(check bool) "request.__sector recorded" true
    (List.mem ("request", [ "__sector" ]) paths);
  Alcotest.(check bool) "chained rq_disk.major recorded" true
    (List.mem ("request", [ "rq_disk"; "major" ]) paths)

let test_obj_duplicate_sections_rejected () =
  let obj = build_obj biotop_spec in
  let p = List.hd obj.Obj.o_progs in
  let dup = { obj with Obj.o_progs = [ p; p ] } in
  (match Obj.write dup with
  | exception Obj.Bad_obj _ -> ()
  | _ -> Alcotest.fail "duplicate sections accepted");
  (* the builder silently drops duplicate hooks instead *)
  let spec =
    Progbuild.
      {
        sp_tool = "twice";
        sp_hooks =
          [
            { hs_hook = Hook.Kprobe "vfs_read"; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] };
            { hs_hook = Hook.Kprobe "vfs_read"; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] };
          ];
      }
  in
  Alcotest.(check int) "deduped" 1 (List.length (build_obj spec).Obj.o_progs)

let test_obj_bad_input () =
  Alcotest.check_raises "not elf" (Obj.Bad_obj "bad magic") (fun () ->
      ignore (Obj.read ("garbage" ^ String.make 100 'x')));
  let not_bpf = Ds_elf.Elf.write (Testenv.image v44) in
  Alcotest.check_raises "kernel image is not an obj" (Obj.Bad_obj "not a BPF object")
    (fun () -> ignore (Obj.read not_bpf))

(* random spec -> build -> wire roundtrip property *)
let gen_hook =
  let open QCheck.Gen in
  oneof
    [
      map (fun f -> Hook.Kprobe ("fn_" ^ f)) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8));
      map (fun f -> Hook.Kretprobe ("fn_" ^ f)) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8));
      map (fun e -> Hook.Tracepoint { category = "cat"; event = "ev_" ^ e })
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 8));
      map (fun e -> Hook.Raw_tracepoint ("raw_" ^ e)) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8));
      map (fun s -> Hook.Syscall_enter ("sc_" ^ s)) (string_size ~gen:(char_range 'a' 'z') (int_range 1 6));
      return Hook.Perf_event;
    ]

let gen_spec =
  let open QCheck.Gen in
  let* tool = string_size ~gen:(char_range 'a' 'z') (int_range 1 10) in
  let* hooks = list_size (int_range 1 4) gen_hook in
  let structs = [| "request"; "task_struct"; "sock"; "file" |] in
  let fields = [| "__sector"; "pid"; "sk_state"; "f_flags" |] in
  let* reads =
    list_size (int_range 0 3)
      (let* si = int_range 0 3 in
       let* fi = int_range 0 3 in
       let* ex = bool in
       return Progbuild.{ rd_struct = structs.(si); rd_path = [ fields.(fi) ]; rd_exists_check = ex })
  in
  return
    Progbuild.
      {
        sp_tool = tool;
        sp_hooks =
          List.mapi
            (fun i h ->
              {
                hs_hook = h;
                hs_arg_indices = (if i = 0 then [ 0 ] else []);
                hs_kfuncs = [];
                hs_reads = (if i = 0 then reads else []);
              })
            hooks;
      }

let qcheck_obj_roundtrip =
  QCheck.Test.make ~name:"random spec: object wire roundtrip" ~count:50 (QCheck.make gen_spec)
    (fun spec ->
      let k = kernel v44 in
      let obj =
        Progbuild.build ~build_btf:k.Vmlinux.v_btf ~build_arch:Config.X86 ~tag:"t" spec
      in
      let obj' = Ds_util.Diag.ok (Obj.read (Obj.write obj)) in
      obj'.Obj.o_name = obj.Obj.o_name
      && List.length obj'.Obj.o_progs = List.length obj.Obj.o_progs
      && List.for_all2
           (fun (a : Obj.prog) (b : Obj.prog) ->
             a.p_insns = b.p_insns && a.p_relocs = b.p_relocs && a.p_kfuncs = b.p_kfuncs)
           obj.Obj.o_progs obj'.Obj.o_progs
      (* every generated program passes the verifier *)
      && List.for_all (fun (p : Obj.prog) -> Verifier.verify p.Obj.p_insns = Ok ()) obj.Obj.o_progs)

(* ------------------------------------------------------------------ *)
(* Loader: verification, relocation, attachment                        *)
(* ------------------------------------------------------------------ *)

let test_load_on_build_kernel () =
  let obj = build_obj biotop_spec in
  match Loader.load_and_attach (kernel v44) obj with
  | Ok attachments ->
      Alcotest.(check int) "both attached" 2 (List.length attachments);
      let a = List.hd attachments in
      Alcotest.(check int) "one address" 1 (List.length a.Loader.at_addrs);
      (* relocated offsets match the build kernel's own layout *)
      List.iter
        (fun (st, path, off) ->
          match Loader.resolve_field (kernel v44).Vmlinux.v_btf ~struct_name:st ~path with
          | Ok off' -> Alcotest.(check int) (st ^ " offset") off' off
          | Error m -> Alcotest.fail m)
        a.Loader.at_field_offsets
  | Error e -> Alcotest.fail (Loader.error_to_string e)

let test_attach_error_after_inline () =
  (* attach-only spec: relocation succeeds everywhere, so the v5.19
     failure is precisely the "failed to attach" of issue #4261 *)
  let spec =
    Progbuild.
      {
        sp_tool = "biotop_attach_only";
        sp_hooks =
          [
            { hs_hook = Hook.Kprobe "blk_account_io_start"; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] };
            { hs_hook = Hook.Kprobe "blk_account_io_done"; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] };
          ];
      }
  in
  let obj = build_obj spec in
  (match Loader.load_and_attach (kernel v44) obj with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("v4.4 should attach: " ^ Loader.error_to_string e));
  match Loader.load_and_attach (kernel v519) obj with
  | Ok _ -> Alcotest.fail "expected attachment error on v5.19 (be6bfe3 inlined the target)"
  | Error (Loader.Attachment_error { reason; _ }) ->
      Alcotest.(check bool) ("reason: " ^ reason) true
        (String.length reason > 0 && String.sub reason 0 9 = "no symbol")
  | Error e -> Alcotest.fail ("unexpected error " ^ Loader.error_to_string e)

let test_core_relocation_adjusts_offsets () =
  (* task_struct.utime moves / retypes across versions; CO-RE must find
     the right offset on each target. *)
  let spec =
    Progbuild.
      {
        sp_tool = "cpudist_like";
        sp_hooks =
          [
            {
              hs_hook = Hook.Kprobe "finish_task_switch";
              hs_arg_indices = [ 0 ]; hs_kfuncs = [];
              hs_reads =
                [ { rd_struct = "task_struct"; rd_path = [ "utime" ]; rd_exists_check = false } ];
            };
          ];
      }
  in
  let obj = build_obj ~v:v44 spec in
  let offset_on v =
    match Loader.load_and_attach (kernel v) obj with
    | Ok [ a ] -> (
        match List.find_opt (fun (s, _, _) -> s = "task_struct") a.Loader.at_field_offsets with
        | Some (_, _, off) -> off
        | None -> Alcotest.fail "no task_struct reloc")
    | Ok _ -> Alcotest.fail "expected one attachment"
    | Error e -> Alcotest.fail (Loader.error_to_string e)
  in
  let o44 = offset_on v44 and o68 = offset_on (Version.v 6 8) in
  Alcotest.(check bool) "both resolve" true (o44 > 0 && o68 > 0);
  (* the Ldx/Add target in the relocated program carries the offset *)
  match Loader.load_and_attach (kernel v44) obj with
  | Ok [ a ] ->
      Alcotest.(check bool) "patched insn present" true
        (List.exists
           (function Insn.Add_imm { imm; _ } -> imm = o44 | _ -> false)
           a.Loader.at_insns)
  | _ -> Alcotest.fail "load failed"

let test_relocation_error_on_missing_field () =
  (* rq_disk disappears from struct request in v5.19. *)
  let spec =
    Progbuild.
      {
        sp_tool = "rq_disk_reader";
        sp_hooks =
          [
            {
              hs_hook = Hook.Kprobe "blk_mq_start_request";
              hs_arg_indices = [ 0 ]; hs_kfuncs = [];
              hs_reads =
                [ { rd_struct = "request"; rd_path = [ "rq_disk" ]; rd_exists_check = false } ];
            };
          ];
      }
  in
  let obj = build_obj ~v:v54 spec in
  (match Loader.load_and_attach (kernel v54) obj with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("should load on build kernel: " ^ Loader.error_to_string e));
  match Loader.load_and_attach (kernel v519) obj with
  | Error (Loader.Relocation_error { type_name = "request"; path = [ "rq_disk" ]; _ }) -> ()
  | Error e -> Alcotest.fail ("unexpected: " ^ Loader.error_to_string e)
  | Ok _ -> Alcotest.fail "expected relocation error on v5.19"

let test_field_exists_fallback () =
  (* the readahead fix: guard the access with bpf_core_field_exists *)
  let spec =
    Progbuild.
      {
        sp_tool = "guarded";
        sp_hooks =
          [
            {
              hs_hook = Hook.Kprobe "blk_mq_start_request";
              hs_arg_indices = []; hs_kfuncs = [];
              hs_reads =
                [ { rd_struct = "request"; rd_path = [ "rq_disk" ]; rd_exists_check = true } ];
            };
          ];
      }
  in
  let obj = build_obj ~v:v54 spec in
  let imm_on v =
    match Loader.load_and_attach (kernel v) obj with
    | Ok [ a ] ->
        List.find_map
          (function Insn.Mov_imm { dst = 8; imm } -> Some imm | _ -> None)
          a.Loader.at_insns
    | Ok _ -> None
    | Error e -> Alcotest.fail (Loader.error_to_string e)
  in
  Alcotest.(check (option int)) "exists on 5.4" (Some 1) (imm_on v54);
  Alcotest.(check (option int)) "gone on 5.19" (Some 0) (imm_on v519)

let test_tracepoint_attach () =
  let spec =
    Progbuild.
      {
        sp_tool = "biostacks_like";
        sp_hooks =
          [
            {
              hs_hook = Hook.Tracepoint { category = "block"; event = "block_io_start" };
              hs_arg_indices = []; hs_kfuncs = [];
              hs_reads = [];
            };
          ];
      }
  in
  let obj = build_obj ~v:(Version.v 6 8) spec in
  (match Loader.load_and_attach (kernel (Version.v 6 8)) obj with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("6.8 should attach: " ^ Loader.error_to_string e));
  match Loader.load_and_attach (kernel v519) obj with
  | Error (Loader.Attachment_error { reason = "no such tracepoint"; _ }) -> ()
  | Error e -> Alcotest.fail ("unexpected: " ^ Loader.error_to_string e)
  | Ok _ -> Alcotest.fail "block_io_start must not exist before v6.5"

let test_syscall_attach_arch () =
  let spec =
    Progbuild.
      {
        sp_tool = "opensnoop_like";
        sp_hooks =
          [ { hs_hook = Hook.Syscall_enter "open"; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] } ];
      }
  in
  let obj = build_obj ~v:v54 spec in
  (match Loader.load_and_attach (kernel v54) obj with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("x86 has open: " ^ Loader.error_to_string e));
  match Loader.load_and_attach (kernel ~cfg:Config.{ arch = Arm64; flavor = Generic } v54) obj with
  | Error (Loader.Attachment_error _) -> ()
  | Error e -> Alcotest.fail ("unexpected: " ^ Loader.error_to_string e)
  | Ok _ -> Alcotest.fail "open must be unavailable on arm64"

let test_pt_regs_cross_arch_relocation_error () =
  (* PT_REGS_PARM-style access compiled on x86 reads pt_regs.di, which
     does not exist on arm64: relocation error (paper §4.2, Register Δ). *)
  let obj = build_obj ~v:v54 biotop_spec in
  match Loader.load_and_attach (kernel ~cfg:Config.{ arch = Arm64; flavor = Generic } v54) obj with
  | Error (Loader.Relocation_error { type_name = "pt_regs"; _ }) -> ()
  | Error e -> Alcotest.fail ("unexpected: " ^ Loader.error_to_string e)
  | Ok _ -> Alcotest.fail "expected pt_regs relocation error on arm64"

let test_kfunc_resolution () =
  (* bpf_task_acquire exists only from v5.19; bpf_ct_insert_entry is
     removed again at v6.5 — the verifier's kfunc registry rejects
     programs calling functions the kernel no longer has (paper §4.1). *)
  let spec kfuncs =
    Progbuild.
      {
        sp_tool = "kfunc_user";
        sp_hooks =
          [
            {
              hs_hook = Hook.Kprobe "vfs_read";
              hs_arg_indices = [];
              hs_reads = [];
              hs_kfuncs = kfuncs;
            };
          ];
      }
  in
  let obj = build_obj ~v:(Version.v 5 19) (spec [ "bpf_task_acquire"; "bpf_task_from_pid" ]) in
  (* the kfunc table survives the wire format *)
  Alcotest.(check (list string)) "kfuncs roundtrip" [ "bpf_task_acquire"; "bpf_task_from_pid" ]
    (List.hd obj.Obj.o_progs).Obj.p_kfuncs;
  Alcotest.(check bool) "Kfunc_call insns present" true
    (List.exists
       (function Insn.Kfunc_call _ -> true | _ -> false)
       (List.hd obj.Obj.o_progs).Obj.p_insns);
  (match Loader.load_and_attach (kernel (Version.v 5 19)) obj with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("5.19 has both kfuncs: " ^ Loader.error_to_string e));
  (match Loader.load_and_attach (kernel v54) obj with
  | Error (Loader.Verifier_error { msg; _ }) ->
      Alcotest.(check string) "verifier wording"
        "calling kernel function bpf_task_acquire is not allowed" msg
  | Error e -> Alcotest.fail ("unexpected: " ^ Loader.error_to_string e)
  | Ok _ -> Alcotest.fail "bpf_task_acquire must be unknown on v5.4");
  let removed = build_obj ~v:(Version.v 5 19) (spec [ "bpf_ct_insert_entry" ]) in
  (match Loader.load_and_attach (kernel (Version.v 6 5)) removed with
  | Error (Loader.Verifier_error _) -> ()
  | Error e -> Alcotest.fail ("unexpected: " ^ Loader.error_to_string e)
  | Ok _ -> Alcotest.fail "bpf_ct_insert_entry was removed at v6.5 (f85671c pattern)");
  (* the dependency analysis sees kfuncs as function deps *)
  let deps = Depsurf.Depset.of_obj obj in
  Alcotest.(check bool) "kfunc in depset" true
    (List.mem (Depsurf.Depset.Dep_func "bpf_task_acquire") deps)

let test_lsm_and_fentry_attach () =
  let spec =
    Progbuild.
      {
        sp_tool = "lockc_like";
        sp_hooks =
          [
            { hs_hook = Hook.Lsm "file_open"; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] };
            { hs_hook = Hook.Fentry "vfs_read"; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] };
          ];
      }
  in
  let obj = build_obj spec in
  (match Loader.load_and_attach (kernel v44) obj with
  | Ok atts ->
      Alcotest.(check int) "both attach" 2 (List.length atts);
      let lsm = List.hd atts in
      Alcotest.(check bool) "lsm resolves security_file_open" true
        (lsm.Loader.at_addrs <> [])
  | Error e -> Alcotest.fail (Loader.error_to_string e));
  (* a hook for a nonexistent LSM hook must fail *)
  let bad =
    build_obj
      Progbuild.
        {
          sp_tool = "badlsm";
          sp_hooks = [ { hs_hook = Hook.Lsm "no_such_hook"; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] } ];
        }
  in
  match Loader.load_and_attach (kernel v44) bad with
  | Error (Loader.Attachment_error _) -> ()
  | Ok _ -> Alcotest.fail "nonexistent LSM hook attached"
  | Error e -> Alcotest.fail ("unexpected: " ^ Loader.error_to_string e)

let test_duplicate_symbol_policy () =
  let spec =
    Progbuild.
      {
        sp_tool = "colliding";
        sp_hooks =
          [
            {
              hs_hook = Hook.Kprobe "destroy_inodecache";
              hs_arg_indices = []; hs_kfuncs = [];
              hs_reads = [];
            };
          ];
      }
  in
  let obj = build_obj ~v:v54 spec in
  (match Loader.load_and_attach (kernel v54) obj with
  | Ok [ a ] ->
      Alcotest.(check int) "pre-6.6: silently attach first copy" 1
        (List.length a.Loader.at_addrs)
  | Ok _ -> Alcotest.fail "one attachment expected"
  | Error e -> Alcotest.fail (Loader.error_to_string e));
  match Loader.load_and_attach (kernel (Version.v 6 8)) obj with
  | Error (Loader.Attachment_error { reason; _ }) ->
      Alcotest.(check bool) ("6.8 rejects: " ^ reason) true
        (let m = "symbols with this name" in
         let rec go i =
           i + String.length m <= String.length reason
           && (String.sub reason i (String.length m) = m || go (i + 1))
         in
         go 0)
  | Error e -> Alcotest.fail ("unexpected: " ^ Loader.error_to_string e)
  | Ok _ -> Alcotest.fail "b022f0c behaviour expected on >= 6.6"

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

let test_runtime_selective_inline_misses () =
  (* vfs_fsync is selectively inlined: a kprobe observes only the
     non-inlined call sites. *)
  let spec =
    Progbuild.
      {
        sp_tool = "fsync_watcher";
        sp_hooks = [ { hs_hook = Hook.Kprobe "vfs_fsync"; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] } ];
      }
  in
  let obj = build_obj spec in
  match Loader.load_and_attach (kernel v44) obj with
  | Error e -> Alcotest.fail (Loader.error_to_string e)
  | Ok attachments ->
      let model = Testenv.model v44 in
      let report = Runtime.simulate model ~attachments ~expectations:[] ~rounds:5 in
      let ps = List.hd report.Runtime.r_per_prog in
      Alcotest.(check bool)
        (Printf.sprintf "missing invocations (logical=%d observed=%d)" ps.Runtime.ps_logical
           ps.Runtime.ps_observed)
        true
        (Runtime.missing_invocations ps > 0 && ps.Runtime.ps_observed > 0)

let test_runtime_stray_read () =
  (* do_unlinkat's 2nd argument changed from char* to struct filename* in
     v4.15; a program expecting char* reads stray data afterwards. *)
  let spec =
    Progbuild.
      {
        sp_tool = "unlink_snoop";
        sp_hooks =
          [ { hs_hook = Hook.Kprobe "do_unlinkat"; hs_arg_indices = [ 1 ]; hs_kfuncs = []; hs_reads = [] } ];
      }
  in
  let obj = build_obj ~v:v44 spec in
  let expectations =
    [ Runtime.{ ex_prog = "unlink_snoop__kprobe_do_unlinkat"; ex_arg = 1; ex_type = Ds_ctypes.Ctype.char_ptr } ]
  in
  let run v =
    match Loader.load_and_attach (kernel v) obj with
    | Error e -> Alcotest.fail (Loader.error_to_string e)
    | Ok attachments ->
        let report = Runtime.simulate (Testenv.model v) ~attachments ~expectations ~rounds:3 in
        (List.hd report.Runtime.r_per_prog).Runtime.ps_stray_reads
  in
  Alcotest.(check int) "no stray reads on 4.4" 0 (run v44);
  Alcotest.(check bool) "stray reads on 4.15 (filename*)" true (run (Version.v 4 15) > 0)

let test_runtime_return_stray_read () =
  (* __do_page_cache_readahead's return type changed in v4.18 (c534aa3):
     a kretprobe expecting the old unsigned long misreads afterwards. *)
  let spec =
    Progbuild.
      {
        sp_tool = "ra_ret";
        sp_hooks =
          [
            {
              hs_hook = Hook.Kretprobe "__do_page_cache_readahead";
              hs_arg_indices = []; hs_kfuncs = [];
              hs_reads = [];
            };
          ];
      }
  in
  let obj = build_obj ~v:v44 spec in
  let expectations =
    [
      Runtime.
        {
          ex_prog = "ra_ret__kretprobe___do_page_cache_readahead";
          ex_arg = -1;
          ex_type = Ds_ctypes.Ctype.ulong;
        };
    ]
  in
  let run v =
    match Loader.load_and_attach (kernel v) obj with
    | Error e -> Alcotest.fail (Loader.error_to_string e)
    | Ok attachments ->
        let report = Runtime.simulate (Testenv.model v) ~attachments ~expectations ~rounds:3 in
        (List.hd report.Runtime.r_per_prog).Runtime.ps_stray_reads
  in
  Alcotest.(check int) "no stray on 4.4 (ulong)" 0 (run v44);
  Alcotest.(check bool) "stray on 4.18 (now uint)" true (run (Version.v 4 18) > 0)

let test_runtime_duplication_misses () =
  (* get_order has several per-TU copies; pre-6.6 the kprobe silently
     attaches to the first one and misses the rest (Table 2, Missing
     Invocation via duplication). *)
  let spec =
    Progbuild.
      {
        sp_tool = "order_watch";
        sp_hooks =
          [ { hs_hook = Hook.Kprobe "get_order"; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] } ];
      }
  in
  let obj = build_obj spec in
  match Loader.load_and_attach (kernel v44) obj with
  | Error e -> Alcotest.fail (Loader.error_to_string e)
  | Ok attachments ->
      let a = List.hd attachments in
      Alcotest.(check int) "attached to exactly one copy" 1 (List.length a.Loader.at_addrs);
      let r = Runtime.simulate (Testenv.model v44) ~attachments ~expectations:[] ~rounds:4 in
      let ps = List.hd r.Runtime.r_per_prog in
      Alcotest.(check bool)
        (Printf.sprintf "copies missed (logical=%d observed=%d)" ps.Runtime.ps_logical
           ps.Runtime.ps_observed)
        true
        (Runtime.missing_invocations ps > 0)

let test_runtime_tracepoint_complete () =
  let spec =
    Progbuild.
      {
        sp_tool = "switch_count";
        sp_hooks =
          [
            {
              hs_hook = Hook.Tracepoint { category = "sched"; event = "sched_switch" };
              hs_arg_indices = []; hs_kfuncs = [];
              hs_reads = [];
            };
          ];
      }
  in
  let obj = build_obj spec in
  match Loader.load_and_attach (kernel v44) obj with
  | Error e -> Alcotest.fail (Loader.error_to_string e)
  | Ok attachments ->
      let report = Runtime.simulate (Testenv.model v44) ~attachments ~expectations:[] ~rounds:7 in
      let ps = List.hd report.Runtime.r_per_prog in
      Alcotest.(check int) "tracepoints are complete" 0 (Runtime.missing_invocations ps);
      Alcotest.(check int) "fired every round" 7 ps.Runtime.ps_observed

let suites =
  [
    ("bpf.vmlinux", [ Alcotest.test_case "parse banner" `Quick test_parse_banner ]);
    ( "bpf.insn",
      [
        Alcotest.test_case "roundtrip" `Quick test_insn_roundtrip;
        Alcotest.test_case "negative offsets" `Quick test_insn_negative_offsets;
        Alcotest.test_case "bad input" `Quick test_insn_bad;
      ] );
    ( "bpf.verifier",
      [
        Alcotest.test_case "accepts" `Quick test_verifier_accepts;
        Alcotest.test_case "rejects" `Quick test_verifier_rejects;
        Alcotest.test_case "branch paths" `Quick test_verifier_branch_paths;
      ] );
    ("bpf.hook", [ Alcotest.test_case "sections" `Quick test_hook_sections ]);
    ( "bpf.obj",
      [
        Alcotest.test_case "roundtrip" `Quick test_obj_roundtrip;
        Alcotest.test_case "access path" `Quick test_obj_access_path;
        Alcotest.test_case "bad input" `Quick test_obj_bad_input;
        Alcotest.test_case "duplicate sections rejected" `Quick
          test_obj_duplicate_sections_rejected;
        QCheck_alcotest.to_alcotest qcheck_obj_roundtrip;
      ] );
    ( "bpf.loader",
      [
        Alcotest.test_case "load on build kernel" `Quick test_load_on_build_kernel;
        Alcotest.test_case "attach error after inline" `Quick test_attach_error_after_inline;
        Alcotest.test_case "CO-RE adjusts offsets" `Quick test_core_relocation_adjusts_offsets;
        Alcotest.test_case "relocation error (missing field)" `Quick
          test_relocation_error_on_missing_field;
        Alcotest.test_case "field_exists fallback" `Quick test_field_exists_fallback;
        Alcotest.test_case "tracepoint attach" `Quick test_tracepoint_attach;
        Alcotest.test_case "syscall per arch" `Quick test_syscall_attach_arch;
        Alcotest.test_case "pt_regs cross-arch reloc error" `Quick
          test_pt_regs_cross_arch_relocation_error;
        Alcotest.test_case "kfunc resolution" `Quick test_kfunc_resolution;
        Alcotest.test_case "lsm + fentry attach" `Quick test_lsm_and_fentry_attach;
        Alcotest.test_case "duplicate symbol policy" `Quick test_duplicate_symbol_policy;
      ] );
    ( "bpf.runtime",
      [
        Alcotest.test_case "selective inline misses" `Quick test_runtime_selective_inline_misses;
        Alcotest.test_case "stray read" `Quick test_runtime_stray_read;
        Alcotest.test_case "return-value stray read" `Quick test_runtime_return_stray_read;
        Alcotest.test_case "duplication misses copies" `Quick test_runtime_duplication_misses;
        Alcotest.test_case "tracepoint complete" `Quick test_runtime_tracepoint_complete;
      ] );
  ]
