open Ds_elf
open Ds_util

let sample_image machine =
  let text = String.make 64 '\x90' in
  let data =
    let w = Bytesio.Writer.create ~endian:(Elf.machine_endian machine) () in
    Bytesio.Writer.u64 w 0x1122334455667788L;
    Bytesio.Writer.cstring w "payload";
    Bytesio.Writer.contents w
  in
  Elf.
    {
      machine;
      sections =
        [
          { sec_name = ".text"; sec_addr = 0xffff000000010000L; sec_data = text };
          { sec_name = ".data"; sec_addr = 0xffff000000020000L; sec_data = data };
          { sec_name = ".debug_info"; sec_addr = 0L; sec_data = "DEBUG" };
        ];
      symbols =
        [
          {
            sym_name = "vfs_fsync";
            sym_value = 0xffff000000010000L;
            sym_size = 32;
            sym_bind = Global;
            sym_section = ".text";
          };
          {
            sym_name = "do_fsync.isra.0";
            sym_value = 0xffff000000010020L;
            sym_size = 16;
            sym_bind = Local;
            sym_section = ".text";
          };
        ];
    }

let check_roundtrip machine () =
  let img = sample_image machine in
  let bytes = Elf.write img in
  let img' = Ds_util.Diag.ok (Elf.read bytes) in
  Alcotest.(check string) "machine" (Elf.machine_to_string machine)
    (Elf.machine_to_string img'.Elf.machine);
  Alcotest.(check int) "sections" 3 (List.length img'.Elf.sections);
  Alcotest.(check int) "symbols" 2 (List.length img'.Elf.symbols);
  let s = Option.get (Elf.find_section img' ".data") in
  let s0 = Option.get (Elf.find_section img ".data") in
  Alcotest.(check string) "data preserved" s0.Elf.sec_data s.Elf.sec_data;
  let sym = Option.get (Elf.find_symbol img' "vfs_fsync") in
  Alcotest.(check int64) "sym value" 0xffff000000010000L sym.Elf.sym_value;
  Alcotest.(check int) "sym size" 32 sym.Elf.sym_size;
  Alcotest.(check bool) "sym bind" true (sym.Elf.sym_bind = Elf.Global);
  Alcotest.(check string) "sym section" ".text" sym.Elf.sym_section

let test_magic_check () =
  Alcotest.check_raises "not elf" (Elf.Bad_elf "bad magic") (fun () ->
      ignore (Elf.read ("GARBAGE" ^ String.make 100 '\000')));
  Alcotest.check_raises "short" (Elf.Bad_elf "too short") (fun () ->
      ignore (Elf.read "x"))

let test_symbols_at () =
  let img = sample_image X86_64 in
  Alcotest.(check int) "one symbol at addr" 1
    (List.length (Elf.symbols_at img 0xffff000000010020L));
  Alcotest.(check int) "none" 0 (List.length (Elf.symbols_at img 0xdeadL))

let test_deref_ptr () =
  let img = Ds_util.Diag.ok (Elf.read (Elf.write (sample_image X86_64))) in
  let d = Elf.Deref.make img in
  Alcotest.(check int) "ptr size" 8 (Elf.Deref.ptr_size d);
  Alcotest.(check int64) "read ptr" 0x1122334455667788L
    (Elf.Deref.read_ptr d 0xffff000000020000L);
  Alcotest.(check string) "read cstring" "payload"
    (Elf.Deref.read_cstring d 0xffff000000020008L);
  Alcotest.(check bool) "in image" true (Elf.Deref.in_image d 0xffff000000010005L);
  Alcotest.(check bool) "not in image" false (Elf.Deref.in_image d 0x1234L)

let test_deref_big_endian () =
  let img = Ds_util.Diag.ok (Elf.read (Elf.write (sample_image Ppc64))) in
  let d = Elf.Deref.make img in
  Alcotest.(check int64) "big-endian ptr" 0x1122334455667788L
    (Elf.Deref.read_ptr d 0xffff000000020000L)

let test_deref_arm32 () =
  (* arm32 stores 4-byte pointers; the image above wrote a u64 (LE), so the
     first 4 bytes read back as the low word. *)
  let img = Ds_util.Diag.ok (Elf.read (Elf.write (sample_image Arm))) in
  let d = Elf.Deref.make img in
  Alcotest.(check int) "ptr size 4" 4 (Elf.Deref.ptr_size d);
  Alcotest.(check int64) "low word" 0x55667788L (Elf.Deref.read_ptr d 0xffff000000020000L)

let test_deref_unmapped () =
  let img = Ds_util.Diag.ok (Elf.read (Elf.write (sample_image X86_64))) in
  let d = Elf.Deref.make img in
  Alcotest.check_raises "unmapped" (Elf.Bad_elf "unmapped address 0x999") (fun () ->
      ignore (Elf.Deref.read_ptr d 0x999L));
  (* .debug_info has addr 0 and must not be treated as mapped at 0. *)
  Alcotest.(check bool) "addr 0 unmapped" false (Elf.Deref.in_image d 0L)

let test_empty_symbols () =
  let img = Elf.{ machine = X86_64; sections = [ { sec_name = ".x"; sec_addr = 0L; sec_data = "d" } ]; symbols = [] } in
  let img' = Ds_util.Diag.ok (Elf.read (Elf.write img)) in
  Alcotest.(check int) "no symbols" 0 (List.length img'.Elf.symbols);
  Alcotest.(check int) "one section" 1 (List.length img'.Elf.sections)

let qcheck_section_roundtrip =
  QCheck.Test.make ~name:"elf arbitrary section data roundtrip" ~count:100
    QCheck.(string_of_size (QCheck.Gen.int_range 0 2000))
    (fun data ->
      let img =
        Elf.
          {
            machine = X86_64;
            sections = [ { sec_name = ".blob"; sec_addr = 0x1000L; sec_data = data } ];
            symbols = [];
          }
      in
      let img' = Ds_util.Diag.ok (Elf.read (Elf.write img)) in
      match Elf.find_section img' ".blob" with
      | Some s -> s.Elf.sec_data = data
      | None -> false)

let qcheck_symbols_roundtrip =
  let arb_name = QCheck.(string_gen_of_size (QCheck.Gen.int_range 1 30) (QCheck.Gen.char_range 'a' 'z')) in
  QCheck.Test.make ~name:"elf symbol table roundtrip" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) arb_name)
    (fun names ->
      let symbols =
        List.mapi
          (fun i name ->
            Elf.
              {
                sym_name = name;
                sym_value = Int64.of_int (0x1000 + (i * 16));
                sym_size = i;
                sym_bind = (if i mod 2 = 0 then Elf.Global else Elf.Local);
                sym_section = ".text";
              })
          names
      in
      let img =
        Elf.
          {
            machine = Aarch64;
            sections = [ { sec_name = ".text"; sec_addr = 0x1000L; sec_data = String.make 2048 '\000' } ];
            symbols;
          }
      in
      let img' = Ds_util.Diag.ok (Elf.read (Elf.write img)) in
      List.length img'.Elf.symbols = List.length symbols
      && List.for_all2
           (fun (a : Elf.symbol) (b : Elf.symbol) ->
             a.sym_name = b.sym_name && a.sym_value = b.sym_value && a.sym_size = b.sym_size
             && a.sym_bind = b.sym_bind && a.sym_section = b.sym_section)
           img'.Elf.symbols symbols)

let suites =
  [
    ( "elf",
      [
        Alcotest.test_case "roundtrip x86" `Quick (check_roundtrip X86_64);
        Alcotest.test_case "roundtrip arm64" `Quick (check_roundtrip Aarch64);
        Alcotest.test_case "roundtrip ppc (big-endian)" `Quick (check_roundtrip Ppc64);
        Alcotest.test_case "roundtrip riscv" `Quick (check_roundtrip Riscv64);
        Alcotest.test_case "roundtrip arm32" `Quick (check_roundtrip Arm);
        Alcotest.test_case "magic check" `Quick test_magic_check;
        Alcotest.test_case "symbols_at" `Quick test_symbols_at;
        Alcotest.test_case "deref ptr" `Quick test_deref_ptr;
        Alcotest.test_case "deref big-endian" `Quick test_deref_big_endian;
        Alcotest.test_case "deref arm32 ptr size" `Quick test_deref_arm32;
        Alcotest.test_case "deref unmapped" `Quick test_deref_unmapped;
        Alcotest.test_case "empty symbols" `Quick test_empty_symbols;
        QCheck_alcotest.to_alcotest qcheck_section_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_symbols_roundtrip;
      ] );
  ]
