let () =
  Alcotest.run "depsurf"
    (Test_util.suites @ Test_par.suites @ Test_ctypes.suites @ Test_elf.suites
   @ Test_btf.suites @ Test_dwarf.suites @ Test_ksrc.suites @ Test_kcc.suites
   @ Test_bpf.suites @ Test_depsurf.suites @ Test_corpus.suites @ Test_ext.suites
   @ Test_store.suites @ Test_fault.suites @ Test_serve.suites @ Test_graph.suites
   @ Test_trace.suites @ Test_export.suites @ Test_verify.suites
   @ Test_delta.suites @ Test_watch.suites)
