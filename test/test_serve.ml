(* The query server: routing, the hot index's single-flight guarantee,
   /mismatch byte-identity with the CLI report path, and the socket
   front-end (Unix + TCP) with its minimal client. Sockets stay inside
   this process — the cross-process end-to-end lives in
   bin/test_serve_cli.sh under the @check alias. *)

open Ds_ksrc
open Depsurf
module Serve = Ds_serve.Serve
module Par = Ds_util.Par
module Json = Ds_util.Json
module Metrics = Ds_util.Metrics
module Diag = Ds_util.Diag
module Faultgen = Ds_faultgen.Faultgen

let ds = lazy (Dataset.build ~seed:Testenv.seed Calibration.test_scale)

let with_server ?images_dir f =
  Par.run ~jobs:4 (fun pool ->
      f (Serve.create ?images_dir ~ds:(Lazy.force ds) ~pool ()) pool)

let get4 t target = Serve.handle_request t ~meth:"GET" ~target ~body:""

let get t target =
  let st, ct, _, body = get4 t target in
  (st, ct, body)

let member_str name j =
  match Json.member name j with Some (Json.String s) -> s | _ -> "<missing>"

(* every JSON endpoint answers inside the v1 envelope; [payload] digs out
   the data member so the assertions below read the document itself *)
let payload body = Api.data (Json.of_string body)

(* ---- naming -------------------------------------------------------- *)

let test_image_names () =
  List.iter
    (fun img ->
      let name = Serve.image_name img in
      match Serve.image_of_name name with
      | Some img' -> Alcotest.(check bool) name true (img = img')
      | None -> Alcotest.fail ("image_of_name failed on " ^ name))
    Dataset.study_images;
  Alcotest.(check bool) "v5.4 x86 generic" true
    (Serve.image_of_name "5.4-x86-generic" = Some (Version.v 5 4, Config.x86_generic));
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("reject " ^ bad) true (Serve.image_of_name bad = None))
    [ "9.9-x86-generic"; "5.4-mips-generic"; "5.4-x86"; "5.4-x86-generic-extra"; "" ]

(* ---- routing ------------------------------------------------------- *)

let test_routing () =
  with_server @@ fun t _ ->
  let st, ct, body = get t "/healthz" in
  Alcotest.(check int) "healthz status" 200 st;
  Alcotest.(check string) "healthz type" "application/json" ct;
  Alcotest.(check string) "healthz ok" "ok" (member_str "status" (payload body));
  (match Json.member "v" (Json.of_string body) with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "healthz must carry the v1 envelope version");
  let st, _, _ = get t "/no/such/endpoint" in
  Alcotest.(check int) "unknown -> 404" 404 st;
  let st, _, _, _ = Serve.handle_request t ~meth:"POST" ~target:"/images" ~body:"" in
  Alcotest.(check int) "POST /images -> 405" 405 st;
  let st, _, _ = get t "/mismatch" in
  Alcotest.(check int) "GET /mismatch -> 405" 405 st;
  let st, _, _ = get t "/surface/4.4-x86-generic?kind=func" in
  Alcotest.(check int) "kind without name -> 400" 400 st;
  let st, _, _ = get t "/surface/9.9-x86-generic" in
  Alcotest.(check int) "unknown image -> 404" 404 st;
  let images = get t "/images" in
  let _, _, body = images in
  match Json.member "images" (payload body) with
  | Some (Json.List l) ->
      Alcotest.(check int) "25 study images" 25 (List.length l)
  | _ -> Alcotest.fail "/images lacks an images list"

let test_surface_queries () =
  with_server @@ fun t _ ->
  let st, _, body = get t "/surface/4.4-x86-generic" in
  Alcotest.(check int) "surface status" 200 st;
  let j = Json.of_string body in
  Alcotest.(check string) "clean health" "clean" (member_str "health" j);
  Alcotest.(check string) "version field" "v4.4" (member_str "version" (payload body));
  let st, _, body = get t "/surface/4.4-x86-generic?kind=func&name=vfs_fsync" in
  Alcotest.(check int) "filtered status" 200 st;
  let j = payload body in
  Alcotest.(check string) "filtered name" "vfs_fsync" (member_str "name" j);
  Alcotest.(check bool) "filtered entry present" true (Json.member "entry" j <> None);
  let st, _, _ = get t "/surface/4.4-x86-generic?kind=func&name=no_such_fn_zzz" in
  Alcotest.(check int) "absent construct -> 404" 404 st;
  let st, _, _ = get t "/surface/4.4-x86-generic?kind=gadget&name=x" in
  Alcotest.(check int) "bad kind -> 400" 400 st

(* ---- single-flight hydration ---------------------------------------- *)

let test_single_flight () =
  with_server @@ fun t pool ->
  let futures =
    List.init 8 (fun _ -> Par.submit pool (fun () -> get t "/surface/4.8-x86-generic"))
  in
  let responses = List.map Par.await futures in
  List.iter (fun (st, _, body) -> Alcotest.(check int) ("all 200: " ^ body) 200 st) responses;
  (match responses with
  | (_, _, first) :: rest ->
      List.iter
        (fun (_, _, body) -> Alcotest.(check bool) "identical bodies" true (body = first))
        rest
  | [] -> Alcotest.fail "no responses");
  let m = Serve.metrics t in
  Alcotest.(check int) "one index fill" 1 (Metrics.counter m "index.fill.surface");
  Alcotest.(check int) "one surface render" 1 (Metrics.counter m "compute.surface");
  (* a second wave is all index hits; ?trace=1 bypasses the response-byte
     cache, so this request must reach the hot index *)
  let hits0 = Metrics.counter m "index.hit.surface" in
  let _ = get t "/surface/4.8-x86-generic?trace=1" in
  Alcotest.(check int) "warm hit" (hits0 + 1) (Metrics.counter m "index.hit.surface");
  Alcotest.(check int) "still one fill" 1 (Metrics.counter m "index.fill.surface")

(* ---- /mismatch ------------------------------------------------------ *)

let corpus_obj name =
  let built = Ds_corpus.Corpus.build_all (Lazy.force ds) () in
  snd (List.find (fun ((p : Ds_corpus.Table7.profile), _) -> p.pr_name = name) built)

let test_mismatch_identity () =
  let obj = corpus_obj "biotop" in
  let bytes = Ds_bpf.Obj.write obj in
  with_server @@ fun t _ ->
  let st, ct, _, body = Serve.handle_request t ~meth:"POST" ~target:"/mismatch" ~body:bytes in
  Alcotest.(check int) "mismatch status" 200 st;
  Alcotest.(check string) "mismatch type" "text/plain" ct;
  let expected = Report.render_matrix (Pipeline.analyze (Lazy.force ds) obj) in
  Alcotest.(check string) "byte-identical to the CLI report" expected body;
  let _ = Serve.handle_request t ~meth:"POST" ~target:"/mismatch" ~body:bytes in
  let m = Serve.metrics t in
  Alcotest.(check int) "report rendered once" 1 (Metrics.counter m "compute.mismatch");
  Alcotest.(check int) "second POST hits the index" 1 (Metrics.counter m "index.hit.mismatch");
  let st, _, _, _ = Serve.handle_request t ~meth:"POST" ~target:"/mismatch" ~body:"garbage" in
  Alcotest.(check int) "garbage -> 400" 400 st;
  let st, _, _, _ = Serve.handle_request t ~meth:"POST" ~target:"/mismatch" ~body:"" in
  Alcotest.(check int) "empty -> 400" 400 st

(* ---- /verify -------------------------------------------------------- *)

let test_verify_endpoint () =
  let obj = corpus_obj "biotop" in
  let bytes = Ds_bpf.Obj.write obj in
  with_server @@ fun t _ ->
  let st, ct, hdrs, body =
    Serve.handle_request t ~meth:"POST" ~target:"/verify" ~body:bytes
  in
  Alcotest.(check int) "verify status" 200 st;
  Alcotest.(check string) "verify type" "application/json" ct;
  (* byte-identical to the CLI's `doctor --json` payload *)
  let expected =
    let v, cfg = (Version.v 5 4, Config.x86_generic) in
    Json.to_string
      (Ds_verify.Verify.envelope (Ds_verify.Verify.of_dataset (Lazy.force ds) v cfg bytes))
    ^ "\n"
  in
  Alcotest.(check string) "byte-identical to doctor --json" expected body;
  (match Json.member "accepted" (payload body) with
  | Some (Json.Int n) -> Alcotest.(check bool) "programs verified" true (n >= 1)
  | _ -> Alcotest.fail "no accepted count in verify payload");
  (* a repeat POST of the same digest is a cache hit with a matching ETag *)
  let m = Serve.metrics t in
  let st2, _, hdrs2, body2 =
    Serve.handle_request t ~meth:"POST" ~target:"/verify" ~body:bytes
  in
  Alcotest.(check int) "repeat status" 200 st2;
  Alcotest.(check bool) "repeat body identical" true (body = body2);
  Alcotest.(check int) "verified once" 1 (Metrics.counter m "compute.verify");
  Alcotest.(check string) "repeat is a cache hit" "hit"
    (List.assoc "x-depsurf-cache" hdrs2);
  let etag = List.assoc "ETag" hdrs in
  Alcotest.(check string) "stable etag" etag (List.assoc "ETag" hdrs2);
  let st3, _, _, body3 =
    Serve.handle_request t
      ~headers:[ ("if-none-match", etag) ]
      ~meth:"POST" ~target:"/verify" ~body:bytes
  in
  Alcotest.(check int) "if-none-match -> 304" 304 st3;
  Alcotest.(check string) "304 empty body" "" body3;
  (* an object the verifier rejects is data, not an error: 200 degraded *)
  let sabotage =
    let prog =
      {
        Ds_bpf.Obj.p_name = "bad";
        p_section = "kprobe/do_unlinkat";
        p_insns =
          Ds_bpf.Insn.
            [
              Mov_imm { dst = 1; imm = 7 };
              Ldx { dst = 2; src = 1; off = 0; size = DW };
              Mov_imm { dst = 0; imm = 0 };
              Exit;
            ];
        p_relocs = [];
        p_kfuncs = [];
      }
    in
    Ds_bpf.Obj.write { obj with Ds_bpf.Obj.o_name = "sabotaged"; o_progs = [ prog ] }
  in
  let st, _, _, body = Serve.handle_request t ~meth:"POST" ~target:"/verify" ~body:sabotage in
  Alcotest.(check int) "rejected object is 200" 200 st;
  Alcotest.(check string) "health degraded" "degraded"
    (member_str "health" (Json.of_string body));
  (match Json.member "rejected" (payload body) with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "rejected count missing");
  (* parameter validation *)
  let st, _, _, _ = Serve.handle_request t ~meth:"POST" ~target:"/verify" ~body:"" in
  Alcotest.(check int) "empty body -> 400" 400 st;
  let st, _, _, _ =
    Serve.handle_request t ~meth:"POST" ~target:"/verify?image=9.9-x86-generic" ~body:bytes
  in
  Alcotest.(check int) "unknown image -> 400" 400 st;
  let st, _, _, _ = Serve.handle_request t ~meth:"GET" ~target:"/verify" ~body:"" in
  Alcotest.(check int) "GET /verify -> 405" 405 st

(* ---- /metrics ------------------------------------------------------- *)

let test_metrics_document () =
  with_server @@ fun t _ ->
  let _ = get t "/healthz" in
  let _ = get t "/diff/4.4-x86-generic/5.4-x86-generic" in
  let st, _, body = get t "/metrics" in
  Alcotest.(check int) "metrics status" 200 st;
  let j = payload body in
  (match Json.member "requests_total" j with
  | Some (Json.Int n) -> Alcotest.(check bool) "requests counted" true (n >= 3)
  | _ -> Alcotest.fail "no requests_total");
  Alcotest.(check bool) "compiles exposed" true (Json.member "compiles" j <> None);
  Alcotest.(check bool) "index sizes exposed" true (Json.member "index" j <> None);
  match Json.member "latency_ms" j with
  | Some (Json.Obj labels) ->
      Alcotest.(check bool) "diff latency histogram" true (List.mem_assoc "/diff" labels)
  | _ -> Alcotest.fail "no latency_ms"

(* ---- sockets -------------------------------------------------------- *)

let temp_sock () =
  let path = Filename.temp_file "dsserve" ".sock" in
  Sys.remove path;
  path

let test_unix_socket_roundtrip () =
  with_server @@ fun t _ ->
  let path = temp_sock () in
  let addr = Serve.Unix_sock path in
  let h = Serve.start t addr in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop h;
      Serve.stop h (* idempotent *))
    (fun () ->
      let st, body = Serve.Client.request addr ~meth:"GET" ~path:"/healthz" in
      Alcotest.(check int) "healthz over unix socket" 200 st;
      Alcotest.(check string) "status ok" "ok" (member_str "status" (Api.data (Json.of_string body)));
      (* several sequential clients on fresh connections *)
      for _ = 1 to 5 do
        let st, _ = Serve.Client.request addr ~meth:"GET" ~path:"/images" in
        Alcotest.(check int) "images over unix socket" 200 st
      done);
  Alcotest.(check bool) "socket unlinked on stop" false (Sys.file_exists path)

let test_tcp_roundtrip () =
  with_server @@ fun t _ ->
  let h = Serve.start t (Serve.Tcp ("127.0.0.1", 0)) in
  Fun.protect
    ~finally:(fun () -> Serve.stop h)
    (fun () ->
      let addr = Serve.bound_addr h in
      (match addr with
      | Serve.Tcp (_, port) -> Alcotest.(check bool) "kernel-chosen port" true (port > 0)
      | _ -> Alcotest.fail "expected a TCP bound address");
      let st, _ = Serve.Client.request addr ~meth:"GET" ~path:"/healthz" in
      Alcotest.(check int) "healthz over tcp" 200 st)

(* golden pin of the server-side header parser's legacy-lenient behavior:
   bare-LF line endings, unusual whitespace around values, and mixed-case
   names must keep parsing exactly as the old three-allocation splitter
   did, now that the parser is single-pass *)
let raw_roundtrip addr data =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close sock)
    (fun () ->
      (match addr with
      | Serve.Unix_sock path -> Unix.connect sock (Unix.ADDR_UNIX path)
      | Serve.Tcp _ -> Alcotest.fail "raw_roundtrip wants a unix socket");
      ignore (Unix.write_substring sock data 0 (String.length data));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ();
      Buffer.contents buf)

let test_raw_header_parsing () =
  with_server @@ fun t _ ->
  let path = temp_sock () in
  let addr = Serve.Unix_sock path in
  let h = Serve.start t addr in
  Fun.protect
    ~finally:(fun () -> Serve.stop h)
    (fun () ->
      let status r =
        Scanf.sscanf r "HTTP/1.1 %d" (fun s -> s)
      in
      (* CRLF request *)
      let r = raw_roundtrip addr "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n" in
      Alcotest.(check int) "crlf request" 200 (status r);
      (* bare-LF line endings inside the head are accepted (legacy
         leniency: lines split on '\n', '\r' optional) as long as the
         head ends with the usual blank line *)
      let r = raw_roundtrip addr "GET /healthz HTTP/1.1\nHost: x\r\n\r\n" in
      Alcotest.(check int) "bare-lf request line" 200 (status r);
      (* mixed-case names and padded values still parse: grab an etag,
         then send the validator back with odd casing and spacing *)
      let r = raw_roundtrip addr "GET /images HTTP/1.1\r\nHost: x\r\n\r\n" in
      let etag =
        let tag_at i =
          let j = String.index_from r (i + 6) '"' in
          String.sub r i (j - i + 1)
        in
        match Ds_util.Strutil.find_sub r ~sub:"ETag: \"" with
        | Some i -> tag_at (i + 6)
        | None -> Alcotest.fail "no ETag in raw response"
      in
      let r =
        raw_roundtrip addr
          ("GET /images HTTP/1.1\r\nHost: x\r\nIF-NONE-MATCH:   " ^ etag ^ "  \r\n\r\n")
      in
      Alcotest.(check int) "case+padding conditional" 304 (status r);
      (* a headerless value after the colon is the empty string, not a crash *)
      let r = raw_roundtrip addr "GET /healthz HTTP/1.1\r\nX-Empty:\r\n\r\n" in
      Alcotest.(check int) "empty header value" 200 (status r);
      (* missing request-line spaces are a 400, connection still answered *)
      let r = raw_roundtrip addr "GARBAGE\r\n\r\n" in
      Alcotest.(check int) "bad request line" 400 (status r))

let test_start_requires_two_workers () =
  Par.run ~jobs:1 (fun pool ->
      let t = Serve.create ~ds:(Lazy.force ds) ~pool () in
      match Serve.start t (Serve.Tcp ("127.0.0.1", 0)) with
      | _ -> Alcotest.fail "start on a 1-worker pool must be rejected"
      | exception Invalid_argument _ -> ())

(* ---- degraded file-backed images ------------------------------------ *)

(* zero a mid-file region so lenient extraction is degraded — not clean,
   not fatal — and the served document must carry ["health": "degraded"]
   (same mutation the doctor e2e uses to trigger exit code 2) *)
let degraded_image_bytes () =
  let data = Ds_elf.Elf.write (Testenv.image (Version.v 5 4)) in
  let len = String.length data in
  let is_degraded m =
    Diag.worst (Surface.health (Diag.ok (Surface.extract ~mode:`Lenient m))) = Some Diag.Degraded
  in
  let rec go = function
    | [] -> Alcotest.fail "no degrading mutation found"
    | pos :: rest ->
        let m = Faultgen.zero_range data ~pos ~len:512 in
        if is_degraded m then m else go rest
  in
  go [ len / 3; len / 2; len / 4; 2 * len / 3 ]

let test_degraded_file_image_is_200 () =
  let dir = Filename.temp_file "dsserve" ".images" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let oc = open_out_bin (Filename.concat dir "vmlinux-broken") in
  output_string oc (degraded_image_bytes ());
  close_out oc;
  with_server ~images_dir:dir @@ fun t _ ->
  let st, _, body = get t "/images" in
  Alcotest.(check int) "images status" 200 st;
  Alcotest.(check bool) "file image listed" true
    (let rec mem = function
       | [] -> false
       | Json.Obj fields :: rest ->
           List.assoc_opt "name" fields = Some (Json.String "vmlinux-broken") || mem rest
       | _ :: rest -> mem rest
     in
     match Json.member "images" (payload body) with
     | Some (Json.List l) -> mem l
     | _ -> false);
  let st, _, body = get t "/surface/vmlinux-broken" in
  Alcotest.(check int) "degraded image answers 200" 200 st;
  let j = Json.of_string body in
  Alcotest.(check string) "health degraded" "degraded" (member_str "health" j);
  match Json.member "diagnostics" j with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "degraded surface must list its diagnostics"

(* ---- response-byte cache & conditional requests --------------------- *)

let cache_state hdrs = List.assoc_opt "x-depsurf-cache" hdrs
let etag_of hdrs = List.assoc_opt "ETag" hdrs

let test_response_cache_hit_identity () =
  with_server @@ fun t _ ->
  let st1, ct1, h1, b1 = get4 t "/surface/4.4-x86-generic" in
  Alcotest.(check int) "first 200" 200 st1;
  Alcotest.(check (option string)) "first is a miss" (Some "miss") (cache_state h1);
  let st2, ct2, h2, b2 = get4 t "/surface/4.4-x86-generic" in
  Alcotest.(check (option string)) "second is a hit" (Some "hit") (cache_state h2);
  (* the cached response must be byte-identical to the rendered one *)
  Alcotest.(check int) "same status" st1 st2;
  Alcotest.(check string) "same content-type" ct1 ct2;
  Alcotest.(check string) "same body bytes" b1 b2;
  Alcotest.(check bool) "stable etag" true (etag_of h1 <> None && etag_of h1 = etag_of h2);
  (* the v1 alias shares the cache entry (same key after prefix strip) *)
  let _, _, h3, b3 = get4 t "/v1/surface/4.4-x86-generic" in
  Alcotest.(check (option string)) "alias hits the same entry" (Some "hit") (cache_state h3);
  Alcotest.(check string) "alias body identical" b1 b3;
  let m = Serve.metrics t in
  Alcotest.(check bool) "miss counted" true (Metrics.counter m "cache.miss" >= 1);
  Alcotest.(check bool) "hits counted" true (Metrics.counter m "cache.hit" >= 2);
  (* counters and occupancy are visible in /metrics *)
  let _, _, body = get t "/metrics" in
  match Json.member "response_cache" (payload body) with
  | Some (Json.Obj fields) -> (
      match List.assoc_opt "entries" fields with
      | Some (Json.Int n) -> Alcotest.(check bool) "entries > 0" true (n > 0)
      | _ -> Alcotest.fail "response_cache lacks entries")
  | _ -> Alcotest.fail "/metrics lacks response_cache"

let test_conditional_requests () =
  with_server @@ fun t _ ->
  let _, _, h1, _ = get4 t "/images" in
  let etag = match etag_of h1 with Some e -> e | None -> Alcotest.fail "no ETag" in
  (* matching If-None-Match: 304, empty body, ETag still present *)
  let st, _, h, body =
    Serve.handle_request t ~headers:[ ("if-none-match", etag) ] ~meth:"GET" ~target:"/images"
      ~body:""
  in
  Alcotest.(check int) "if-none-match -> 304" 304 st;
  Alcotest.(check string) "304 body empty" "" body;
  Alcotest.(check (option string)) "304 carries the etag" (Some etag) (etag_of h);
  (* a list of candidates containing the etag also matches *)
  let st, _, _, _ =
    Serve.handle_request t
      ~headers:[ ("if-none-match", "\"deadbeef\", " ^ etag) ]
      ~meth:"GET" ~target:"/images" ~body:""
  in
  Alcotest.(check int) "etag list -> 304" 304 st;
  let st, _, _, _ =
    Serve.handle_request t ~headers:[ ("if-none-match", "*") ] ~meth:"GET" ~target:"/images"
      ~body:""
  in
  Alcotest.(check int) "star -> 304" 304 st;
  (* a stale validator gets the full response *)
  let st, _, _, body =
    Serve.handle_request t
      ~headers:[ ("if-none-match", "\"deadbeef\"") ]
      ~meth:"GET" ~target:"/images" ~body:""
  in
  Alcotest.(check int) "stale etag -> 200" 200 st;
  Alcotest.(check bool) "stale etag gets a body" true (String.length body > 0);
  let m = Serve.metrics t in
  Alcotest.(check int) "notmod counted" 3 (Metrics.counter m "cache.notmod")

let test_generation_invalidates () =
  with_server @@ fun t _ ->
  let _, _, h1, b1 = get4 t "/images" in
  Alcotest.(check (option string)) "cold miss" (Some "miss") (cache_state h1);
  let _, _, h2, _ = get4 t "/images" in
  Alcotest.(check (option string)) "warm hit" (Some "hit") (cache_state h2);
  let gen0 = Serve.generation t in
  Serve.invalidate t;
  Alcotest.(check int) "generation bumped" (gen0 + 1) (Serve.generation t);
  let _, _, h3, b3 = get4 t "/images" in
  Alcotest.(check (option string)) "invalidated -> miss" (Some "miss") (cache_state h3);
  (* the index itself did not change, so the re-rendered bytes — and
     therefore the content-digest ETag — are unchanged *)
  Alcotest.(check string) "re-rendered body identical" b1 b3;
  Alcotest.(check bool) "etag stable across generations" true (etag_of h1 = etag_of h3)

let test_cache_scope () =
  with_server @@ fun t _ ->
  (* dynamic endpoints are never cached *)
  let _, _, h, _ = get4 t "/healthz" in
  Alcotest.(check (option string)) "healthz uncached" None (cache_state h);
  let _, _, h, _ = get4 t "/metrics" in
  Alcotest.(check (option string)) "metrics uncached" None (cache_state h);
  (* ?trace=1 bypasses the cache: the trace member is per-request *)
  let _, _, h, _ = get4 t "/images?trace=1" in
  Alcotest.(check (option string)) "trace=1 uncached" None (cache_state h);
  (* errors are not cached either *)
  let _, _, h, _ = get4 t "/surface/9.9-x86-generic" in
  let first = cache_state h in
  let _, _, h, _ = get4 t "/surface/9.9-x86-generic" in
  Alcotest.(check bool) "404 never served from cache" true
    (first <> Some "hit" && cache_state h <> Some "hit")

let test_respcache_lru () =
  let module R = Ds_serve.Respcache in
  let e body = R.{ e_status = 200; e_ctype = "t"; e_body = body; e_etag = "\"x\"" } in
  let c = R.create ~max_entries:2 () in
  Alcotest.(check int) "no eviction" 0 (R.add c "a" (e "1"));
  Alcotest.(check int) "no eviction" 0 (R.add c "b" (e "2"));
  (* touch a so b is the LRU tail *)
  Alcotest.(check bool) "a present" true (R.find c "a" <> None);
  Alcotest.(check int) "one eviction" 1 (R.add c "c" (e "3"));
  Alcotest.(check bool) "b evicted" true (R.find c "b" = None);
  Alcotest.(check bool) "a survives" true (R.find c "a" <> None);
  Alcotest.(check bool) "c present" true (R.find c "c" <> None);
  (* byte-cap eviction: each entry is body + overhead, so a small cap
     admits only the newest entry *)
  let c = R.create ~max_bytes:400 () in
  ignore (R.add c "a" (e (String.make 200 'x')));
  Alcotest.(check int) "byte cap evicts" 1 (R.add c "b" (e (String.make 200 'y')));
  Alcotest.(check bool) "newest kept" true (R.find c "b" <> None);
  (* an entry larger than the whole cap is refused outright *)
  let c = R.create ~max_bytes:100 () in
  Alcotest.(check int) "oversized refused" 0 (R.add c "big" (e (String.make 500 'z')));
  Alcotest.(check (pair int int)) "nothing stored" (0, 0) (R.stats c)

(* ---- /graph/* -------------------------------------------------------- *)

let test_graph_endpoints () =
  with_server @@ fun t _ ->
  (* the served bytes are the shared query_json document in the v1
     envelope plus the trailing newline — the same expression the CLI's
     [depsurf graph ... --json] prints, so the two are byte-identical by
     construction; pin that contract here *)
  let st, ct, h1, body = get4 t "/v1/graph/deps/vfs_fsync" in
  Alcotest.(check int) "deps status" 200 st;
  Alcotest.(check string) "deps type" "application/json" ct;
  let expected =
    let g =
      Ds_graph.Graph.of_dataset (Lazy.force ds) (Version.v 5 4) Config.x86_generic
    in
    Json.to_string
      (Api.envelope
         (Ds_graph.Graph.query_json g ~dir:`Deps ~transitive:false
            (Depset.Dep_func "vfs_fsync")))
    ^ "\n"
  in
  Alcotest.(check string) "body is the CLI's --json bytes" expected body;
  (* cacheable: second request is a response-cache hit with a stable ETag *)
  let _, _, h2, body2 = get4 t "/v1/graph/deps/vfs_fsync" in
  Alcotest.(check (option string)) "second is a hit" (Some "hit") (cache_state h2);
  Alcotest.(check string) "hit body identical" body body2;
  Alcotest.(check bool) "stable etag" true (etag_of h1 <> None && etag_of h1 = etag_of h2);
  (* a matching validator answers 304 *)
  (match etag_of h1 with
  | Some etag ->
      let st, _, _, b =
        Serve.handle_request t
          ~headers:[ ("if-none-match", etag) ]
          ~meth:"GET" ~target:"/v1/graph/deps/vfs_fsync" ~body:""
      in
      Alcotest.(check int) "if-none-match -> 304" 304 st;
      Alcotest.(check string) "304 body empty" "" b
  | None -> Alcotest.fail "no ETag on /graph/deps");
  (* rdeps with ?transitive=1 reports the reverse closure's size *)
  let st, _, body = get t "/v1/graph/rdeps/func:vfs_fsync?transitive=1" in
  Alcotest.(check int) "rdeps status" 200 st;
  (match Json.member "count" (payload body) with
  | Some (Json.Int n) ->
      let g =
        Ds_graph.Graph.of_dataset (Lazy.force ds) (Version.v 5 4) Config.x86_generic
      in
      Alcotest.(check int) "count = rclosure size" n
        (List.length (Ds_graph.Graph.rclosure g (Depset.Dep_func "vfs_fsync")))
  | _ -> Alcotest.fail "rdeps lacks a count");
  (* unknown nodes are a valid (empty) answer, not an error *)
  let st, _, body = get t "/v1/graph/rdeps/no_such_fn_zzz" in
  Alcotest.(check int) "unknown node -> 200" 200 st;
  Alcotest.(check bool) "found false" true
    (Json.member "found" (payload body) = Some (Json.Bool false));
  (* malformed node syntax and unknown images are client errors *)
  let st, _, _ = get t "/v1/graph/deps/bogus:x" in
  Alcotest.(check int) "bad node syntax -> 400" 400 st;
  let st, _, _ = get t "/v1/graph/deps/vfs_fsync?image=9.9-x86-generic" in
  Alcotest.(check int) "unknown image -> 404" 404 st

let test_graph_blast_endpoint () =
  with_server @@ fun t _ ->
  let st, _, _ = get t "/v1/graph/blast/blk_account_io_start" in
  Alcotest.(check int) "missing release -> 400" 400 st;
  let st, _, _ = get t "/v1/graph/blast/blk_account_io_start?release=9.9" in
  Alcotest.(check int) "unknown release -> 404" 404 st;
  let st, _, _ = get t "/v1/graph/blast/blk_account_io_start?release=4.4" in
  Alcotest.(check int) "first study release -> 404" 404 st;
  let st, _, body = get t "/v1/graph/blast/blk_account_io_start?release=5.8" in
  Alcotest.(check int) "blast status" 200 st;
  let j = payload body in
  Alcotest.(check string) "prev release" "v5.4" (member_str "prev" j);
  (match Json.member "affected" j with
  | Some (Json.List l) ->
      Alcotest.(check bool) "biotop in the blast radius" true
        (List.exists
           (function
             | Json.Obj fields ->
                 List.assoc_opt "program" fields = Some (Json.String "biotop")
             | _ -> false)
           l)
  | _ -> Alcotest.fail "blast lacks an affected list");
  (* rendered once, then served from the hot index / response cache *)
  let _ = get t "/v1/graph/blast/blk_account_io_start?release=5.8" in
  let m = Serve.metrics t in
  Alcotest.(check int) "one blast compute" 1 (Metrics.counter m "compute.blast")

(* ---- store maintenance revalidation ---------------------------------- *)

(* [depsurf cache clear/gc/verify] against a live server's cache dir must
   not leave stale response bytes: the persisted maintenance generation
   moves, and the next revalidation drops every cached response *)
let test_store_revalidation () =
  let dir = Filename.temp_file "dsserve" ".store" in
  Sys.remove dir;
  let store = Ds_store.Store.open_ ~dir () in
  let ds' = Dataset.build ~seed:Testenv.seed ~store Calibration.test_scale in
  Par.run ~jobs:4 @@ fun pool ->
  let t = Serve.create ~ds:ds' ~pool () in
  let _, _, h, b1 = get4 t "/images" in
  Alcotest.(check (option string)) "cold miss" (Some "miss") (cache_state h);
  let _, _, h, _ = get4 t "/images" in
  Alcotest.(check (option string)) "warm hit" (Some "hit") (cache_state h);
  (* no maintenance happened: revalidation is a no-op *)
  let gen0 = Serve.generation t in
  Serve.revalidate_store t;
  Alcotest.(check int) "no-op without maintenance" gen0 (Serve.generation t);
  (* out-of-process maintenance: clear the store behind the server *)
  let _ = Ds_store.Store.clear ~dir in
  Serve.revalidate_store t;
  Alcotest.(check int) "maintenance bumps the generation" (gen0 + 1) (Serve.generation t);
  let m = Serve.metrics t in
  Alcotest.(check int) "invalidation counted" 1 (Metrics.counter m "cache.store_invalidate");
  let _, _, h, b2 = get4 t "/images" in
  Alcotest.(check (option string)) "cached bytes dropped" (Some "miss") (cache_state h);
  Alcotest.(check string) "re-rendered body identical" b1 b2;
  (* the generation is sticky: a second revalidation sees the new value *)
  Serve.revalidate_store t;
  Alcotest.(check int) "sticky after revalidation" (gen0 + 1) (Serve.generation t)

(* ---- v1 envelope, aliases, tracing ---------------------------------- *)

(* the /v1 prefix is the canonical spelling; the unprefixed legacy routes
   must answer byte-for-byte identically (golden aliasing contract) *)
let test_v1_aliases_byte_identical () =
  with_server @@ fun t _ ->
  List.iter
    (fun path ->
      let st_l, ct_l, body_l = get t path
      and st_v, ct_v, body_v = get t ("/v1" ^ path) in
      Alcotest.(check int) ("status " ^ path) st_l st_v;
      Alcotest.(check string) ("ctype " ^ path) ct_l ct_v;
      Alcotest.(check string) ("body " ^ path) body_l body_v)
    [
      "/healthz";
      "/images";
      "/surface/4.4-x86-generic";
      "/surface/4.4-x86-generic?kind=func&name=vfs_fsync";
      "/diff/4.4-x86-generic/5.4-x86-generic";
      "/graph/deps/vfs_fsync";
      "/graph/rdeps/func:vfs_fsync?transitive=1";
      "/no/such/endpoint";
    ];
  (* /metrics moves between two requests (counters, latency), so only the
     status and shape are comparable, not the bytes *)
  let st_l, ct_l, _ = get t "/metrics" and st_v, ct_v, _ = get t "/v1/metrics" in
  Alcotest.(check int) "metrics status" st_l st_v;
  Alcotest.(check string) "metrics ctype" ct_l ct_v

let test_trace_header_and_recent () =
  with_server @@ fun t _ ->
  let _, _, hdrs, _ = get4 t "/healthz" in
  (match List.assoc_opt "x-depsurf-trace" hdrs with
  | Some id -> Alcotest.(check bool) "span id positive" true (int_of_string id > 0)
  | None -> Alcotest.fail "response lacks x-depsurf-trace");
  (* ids must differ between requests *)
  let _, _, h1, _ = get4 t "/images" in
  let _, _, h2, _ = get4 t "/images" in
  Alcotest.(check bool) "fresh span per request" true
    (List.assoc_opt "x-depsurf-trace" h1 <> List.assoc_opt "x-depsurf-trace" h2);
  let st, _, body = get t "/v1/trace/recent" in
  Alcotest.(check int) "trace recent 200" 200 st;
  let j = payload body in
  (match Json.member "spans" j with
  | Some (Json.List (_ :: _ as l)) ->
      let has_request =
        List.exists
          (function
            | Json.Obj fields ->
                List.assoc_opt "name" fields = Some (Json.String "serve.request")
            | _ -> false)
          l
      in
      Alcotest.(check bool) "serve.request span recorded" true has_request
  | _ -> Alcotest.fail "trace recent must list spans");
  match Json.member "dropped" j with
  | Some (Json.Int _) -> ()
  | _ -> Alcotest.fail "trace recent must report the drop counter"

let test_trace_inline_query () =
  with_server @@ fun t _ ->
  let st, _, body = get t "/healthz?trace=1" in
  Alcotest.(check int) "traced healthz 200" 200 st;
  match Json.member "trace" (Json.of_string body) with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "?trace=1 must append the request's spans"

(* ---- overload, deadlines, drain ------------------------------------- *)

module Admission = Ds_serve.Admission
module Trace = Ds_trace.Trace

let mk_limits ?(max_inflight = 64) ?(read_s = 10.) ?(handle_s = 30.) () =
  {
    (Serve.default_limits ()) with
    Serve.li_max_inflight = max_inflight;
    li_read_timeout_s = read_s;
    li_handle_deadline_s = handle_s;
  }

let with_limited_server limits f =
  Par.run ~jobs:4 (fun pool ->
      f (Serve.create ~limits ~ds:(Lazy.force ds) ~pool ()) pool)

let span_recorded name attr =
  List.exists
    (fun sp -> sp.Trace.sp_name = name && List.mem attr sp.Trace.sp_attrs)
    (Trace.recent ~limit:500 ())

let test_admission_lattice () =
  let c = Admission.classify ~limit:8 in
  Alcotest.(check bool) "empty queue clean" true (c 0 = None);
  Alcotest.(check bool) "under half clean" true (c 3 = None);
  Alcotest.(check bool) "half is warning" true (c 4 = Some Diag.Warning);
  Alcotest.(check bool) "3/4 is degraded" true (c 6 = Some Diag.Degraded);
  Alcotest.(check bool) "at limit still admitted" true (c 8 = Some Diag.Degraded);
  Alcotest.(check bool) "over limit fatal" true (c 9 = Some Diag.Fatal);
  let a = Admission.create ~limit:2 () in
  (match Admission.admit a with
  | Admission.Admit _ -> ()
  | Admission.Shed _ -> Alcotest.fail "first connection shed");
  (match Admission.admit a with
  | Admission.Admit _ -> ()
  | Admission.Shed _ -> Alcotest.fail "second connection shed");
  (match Admission.admit a with
  | Admission.Shed ra -> Alcotest.(check bool) "retry-after >= 1" true (ra >= 1)
  | Admission.Admit _ -> Alcotest.fail "third connection must shed");
  Alcotest.(check int) "shed counted" 1 (Admission.shed_total a);
  Admission.release a ~service_s:0.01;
  (match Admission.admit a with
  | Admission.Admit _ -> ()
  | Admission.Shed _ -> Alcotest.fail "freed slot must admit");
  Alcotest.(check int) "inflight tracks" 2 (Admission.inflight a);
  Alcotest.(check int) "peak tracks" 2 (Admission.peak a)

(* stampede past the limit: the overflow is shed inline with a 503 and
   a Retry-After while admitted connections still get answered *)
let test_shed_under_overload () =
  with_limited_server (mk_limits ~max_inflight:2 ~read_s:1.0 ()) @@ fun t _ ->
  let path = temp_sock () in
  let h = Serve.start t (Serve.Unix_sock path) in
  Fun.protect
    ~finally:(fun () -> Serve.stop h)
    (fun () ->
      (* idle connections: each admitted one parks in the read until its
         timeout, holding its slot, so the later ones must shed *)
      let conns =
        List.init 6 (fun _ ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            fd)
      in
      let read_all fd =
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 1024 in
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.
         with Unix.Unix_error _ | Invalid_argument _ -> ());
        let rec go () =
          match Unix.read fd chunk 0 1024 with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
          | exception Unix.Unix_error _ -> ()
        in
        go ();
        Buffer.contents buf
      in
      let responses = List.map read_all conns in
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
      let statuses =
        List.map (fun r -> try Scanf.sscanf r "HTTP/1.1 %d" Fun.id with _ -> -1) responses
      in
      let sheds = List.filter (fun s -> s = 503) statuses in
      Alcotest.(check bool)
        ("at least 3 shed: " ^ String.concat "," (List.map string_of_int statuses))
        true
        (List.length sheds >= 3);
      (* every 503 carries Retry-After and a JSON envelope *)
      List.iter2
        (fun st r ->
          if st = 503 then begin
            (match Ds_util.Strutil.find_sub r ~sub:"Retry-After: " with
            | Some _ -> ()
            | None -> Alcotest.fail ("503 without Retry-After: " ^ r));
            match Ds_util.Strutil.find_sub r ~sub:"\r\n\r\n" with
            | Some i -> (
                let body = String.sub r (i + 4) (String.length r - i - 4) in
                match Json.member "error" (Api.data (Json.of_string body)) with
                | Some (Json.String _) -> ()
                | _ -> Alcotest.fail "503 body lacks data.error")
            | None -> Alcotest.fail "503 without body"
          end)
        statuses responses;
      let m = Serve.metrics t in
      Alcotest.(check bool) "shed metric" true (Metrics.counter m "overload.shed" >= 3);
      Alcotest.(check bool) "admitted metric" true
        (Metrics.counter m "admission.admitted" >= 2);
      Alcotest.(check bool) "serve.shed span pinned" true
        (span_recorded "serve.shed" ("pressure", "fatal"));
      (* the admission stats are part of /v1/metrics *)
      let _, _, body = get t "/v1/metrics" in
      match Json.member "admission" (payload body) with
      | Some (Json.Obj fields) ->
          Alcotest.(check bool) "admission.limit in metrics" true
            (List.assoc_opt "limit" fields = Some (Json.Int 2));
          Alcotest.(check bool) "admission.shed in metrics" true
            (match List.assoc_opt "shed" fields with
            | Some (Json.Int n) -> n >= 3
            | _ -> false)
      | _ -> Alcotest.fail "/v1/metrics lacks the admission object")

let test_degraded_pressure_header () =
  with_server @@ fun t _ ->
  let _, _, hdrs, _ =
    Serve.handle_request t ~pressure:Diag.Degraded ~meth:"GET" ~target:"/healthz" ~body:""
  in
  Alcotest.(check (option string))
    "pressure header" (Some "degraded")
    (List.assoc_opt "x-depsurf-pressure" hdrs);
  let _, _, hdrs, _ = get4 t "/healthz" in
  Alcotest.(check (option string)) "no header without pressure" None
    (List.assoc_opt "x-depsurf-pressure" hdrs)

(* an expired handling deadline answers 503 + Retry-After, not a hang
   and not a 500 *)
let test_deadline_expiry_503 () =
  with_limited_server (mk_limits ~handle_s:1e-9 ()) @@ fun t _ ->
  let st, _, hdrs, body = get4 t "/surface/4.4-x86-generic" in
  Alcotest.(check int) "deadline -> 503" 503 st;
  Alcotest.(check bool) "retry-after present" true
    (List.assoc_opt "Retry-After" hdrs <> None);
  (match Json.member "error" (Api.data (Json.of_string body)) with
  | Some (Json.String m) ->
      Alcotest.(check bool) ("mentions deadline: " ^ m) true
        (Ds_util.Strutil.find_sub m ~sub:"deadline" <> None)
  | _ -> Alcotest.fail "503 body lacks data.error");
  Alcotest.(check bool) "deadline metric" true
    (Metrics.counter (Serve.metrics t) "overload.deadline" >= 1);
  Alcotest.(check bool) "serve.timeout span pinned" true
    (span_recorded "serve.timeout" ("pressure", "deadline"))

(* a stalled client is evicted with a 408 envelope instead of pinning a
   pool worker forever *)
let test_stalled_client_408 () =
  with_limited_server (mk_limits ~read_s:0.3 ()) @@ fun t _ ->
  let path = temp_sock () in
  let h = Serve.start t (Serve.Unix_sock path) in
  Fun.protect
    ~finally:(fun () -> Serve.stop h)
    (fun () ->
      let r = raw_roundtrip (Serve.Unix_sock path) "GET /heal" in
      let st = try Scanf.sscanf r "HTTP/1.1 %d" Fun.id with _ -> -1 in
      Alcotest.(check int) "stall -> 408" 408 st;
      Alcotest.(check bool) "timeout metric" true
        (Metrics.counter (Serve.metrics t) "errors.timeout" >= 1);
      Alcotest.(check bool) "serve.timeout read span" true
        (span_recorded "serve.timeout" ("pressure", "read")))

let test_oversized_requests_rejected () =
  with_server @@ fun t _ ->
  let path = temp_sock () in
  let h = Serve.start t (Serve.Unix_sock path) in
  Fun.protect
    ~finally:(fun () -> Serve.stop h)
    (fun () ->
      let status r = try Scanf.sscanf r "HTTP/1.1 %d" Fun.id with _ -> -1 in
      let big =
        "GET /healthz HTTP/1.1\r\nX-Pad: " ^ String.make 70_000 'a' ^ "\r\n\r\n"
      in
      Alcotest.(check int) "oversized head -> 431" 431
        (status (raw_roundtrip (Serve.Unix_sock path) big));
      let fat =
        "POST /v1/mismatch HTTP/1.1\r\nContent-Length: 20000000\r\n\r\nxx"
      in
      Alcotest.(check int) "oversized body -> 413" 413
        (status (raw_roundtrip (Serve.Unix_sock path) fat)))

(* graceful drain: stop must wait for an in-flight connection to finish
   and answer it — zero dropped — before the listener closes *)
let test_drain_zero_dropped () =
  with_limited_server (mk_limits ~read_s:5.0 ()) @@ fun t _ ->
  let path = temp_sock () in
  let h = Serve.start t (Serve.Unix_sock path) in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Serve.stop h)
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      let part = "GET /healthz HTTP/1.1\r\nHost: x" in
      ignore (Unix.write_substring fd part 0 (String.length part));
      (* wait until the connection holds its admission slot *)
      let deadline = Unix.gettimeofday () +. 5. in
      while Admission.inflight (Serve.admission t) < 1 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.005
      done;
      Alcotest.(check int) "connection admitted" 1 (Admission.inflight (Serve.admission t));
      let stopper = Domain.spawn (fun () -> Serve.stop h) in
      (* the drain is now waiting on us; finish the request *)
      Unix.sleepf 0.1;
      ignore (Unix.write_substring fd "\r\n\r\n" 0 4);
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 256 in
      let rec go () =
        match Unix.read fd chunk 0 256 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
        | exception Unix.Unix_error _ -> ()
      in
      go ();
      Domain.join stopper;
      let r = Buffer.contents buf in
      let st = try Scanf.sscanf r "HTTP/1.1 %d" Fun.id with _ -> -1 in
      Alcotest.(check int) "in-flight request answered during drain" 200 st;
      Alcotest.(check int) "nothing abandoned" 0
        (Metrics.counter (Serve.metrics t) "drain.abandoned");
      Alcotest.(check bool) "serve.drain span pinned" true
        (span_recorded "serve.drain" ("pressure", "drain"));
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path))

let test_client_retry () =
  (* pure backoff shape first: exponential, capped, jittered in
     [c/2, c], honouring Retry-After *)
  let prng = Ds_util.Prng.create 7L in
  let d0 = Serve.Client.backoff_delay ~prng ~base_ms:50. ~cap_ms:2000. ~retry_after:None 0 in
  Alcotest.(check bool) "attempt 0 in [25,50]ms" true (d0 >= 0.025 && d0 <= 0.05);
  let d10 = Serve.Client.backoff_delay ~prng ~base_ms:50. ~cap_ms:2000. ~retry_after:None 10 in
  Alcotest.(check bool) "attempt 10 capped at 2s" true (d10 >= 1.0 && d10 <= 2.0);
  let dra =
    Serve.Client.backoff_delay ~prng ~base_ms:50. ~cap_ms:2000. ~retry_after:(Some 10.) 0
  in
  Alcotest.(check bool) "retry-after honoured in full above the cap" true
    (dra >= 5.0 && dra <= 10.0);
  (* a live server answers through request_retry unchanged *)
  with_server @@ fun t _ ->
  let path = temp_sock () in
  let h = Serve.start t (Serve.Unix_sock path) in
  Fun.protect
    ~finally:(fun () -> Serve.stop h)
    (fun () ->
      let st, _, _ =
        Serve.Client.request_retry (Serve.Unix_sock path) ~meth:"GET" ~path:"/healthz"
      in
      Alcotest.(check int) "request_retry 200" 200 st);
  (* a dead address exhausts its retries and re-raises *)
  let t0 = Unix.gettimeofday () in
  (match
     Serve.Client.request_retry ~retries:2 ~base_ms:5. ~cap_ms:20.
       (Serve.Unix_sock (path ^ ".gone"))
       ~meth:"GET" ~path:"/healthz"
   with
  | _ -> Alcotest.fail "request to a dead socket must raise"
  | exception Unix.Unix_error _ -> ());
  Alcotest.(check bool) "retries actually slept" true (Unix.gettimeofday () -. t0 >= 0.005)

let test_deadline_propagates_through_pool () =
  Par.run ~jobs:4 (fun pool ->
      Ds_util.Deadline.with_timeout ~label:"test" 60. (fun () ->
          let fut =
            Par.submit pool (fun () ->
                Alcotest.(check bool) "armed on worker" true (Ds_util.Deadline.armed ());
                Ds_util.Deadline.remaining ())
          in
          let rem = Par.await fut in
          Alcotest.(check bool) "remaining sane" true (rem > 0. && rem <= 60.));
      let fut = Par.submit pool (fun () -> Ds_util.Deadline.armed ()) in
      Alcotest.(check bool) "unarmed outside" false (Par.await fut))


(* ---- watch API, mutation envelope, legacy sunset -------------------- *)

let post t target body =
  let st, ct, _, rbody = Serve.handle_request t ~meth:"POST" ~target ~body in
  (st, ct, rbody)

let b64 s = Ds_util.B64.encode s

let test_subscriptions_crud () =
  with_server @@ fun t _ ->
  let st, _, body =
    post t "/v1/subscriptions" {|{"deps": ["func:vfs_read", "struct:file"], "label": "probe"}|}
  in
  Alcotest.(check int) "create 200" 200 st;
  let id = member_str "id" (payload body) in
  Alcotest.(check bool) "content-addressed id" true (String.length id > 8);
  (* re-registering the same set (different order) answers the same id *)
  let _, _, body2 = post t "/v1/subscriptions" {|{"deps": ["struct:file", "vfs_read"]}|} in
  Alcotest.(check string) "idempotent create" id (member_str "id" (payload body2));
  let st, _, body = get t ("/v1/subscriptions/" ^ id) in
  Alcotest.(check int) "get 200" 200 st;
  Alcotest.(check string) "label kept" "probe" (member_str "label" (payload body));
  let st, _, body = get t "/v1/subscriptions" in
  Alcotest.(check int) "list 200" 200 st;
  (match Json.member "subscriptions" (payload body) with
  | Some (Json.List [ _ ]) -> ()
  | _ -> Alcotest.fail "expected one listed subscription");
  let st, _, _, _ =
    Serve.handle_request t ~meth:"DELETE" ~target:("/v1/subscriptions/" ^ id) ~body:""
  in
  Alcotest.(check int) "delete 200" 200 st;
  let st, _, _ = get t ("/v1/subscriptions/" ^ id) in
  Alcotest.(check int) "gone 404" 404 st;
  (* bad deps are rejected with one diagnostic per offender *)
  let st, _, body = post t "/v1/subscriptions" {|{"deps": ["nosuchkind:x", "field:broken"]}|} in
  Alcotest.(check int) "bad deps 400" 400 st;
  (match Json.member "diagnostics" (Json.of_string body) with
  (* the envelope's top-line message plus one diagnostic per offender *)
  | Some (Json.List l) -> Alcotest.(check int) "per-dep diagnostics" 3 (List.length l)
  | _ -> Alcotest.fail "missing diagnostics");
  let st, _, _, _ = Serve.handle_request t ~meth:"PUT" ~target:"/v1/subscriptions" ~body:"" in
  Alcotest.(check int) "PUT 405" 405 st

let test_mutation_envelope_equivalence () =
  with_server @@ fun t _ ->
  let bytes = Ds_bpf.Obj.write (corpus_obj "biotop") in
  let bare = post t "/v1/verify?image=5.4-x86-generic" bytes in
  (* enveloped spelling 1: body as base64, image as an envelope param *)
  let env1 =
    Printf.sprintf {|{"v": 1, "params": {"image": "5.4-x86-generic"}, "body": "%s"}|}
      (b64 bytes)
  in
  let enveloped = post t "/v1/verify" env1 in
  let strip (st, ct, body) = (st, ct, body) in
  Alcotest.(check bool) "bare and enveloped verify agree" true (strip bare = strip enveloped);
  (* subscriptions: inline-JSON envelope body vs bare body *)
  let bare_sub = post t "/v1/subscriptions" {|{"deps": ["func:vfs_fsync"]}|} in
  let env_sub =
    post t "/v1/subscriptions" {|{"v": 1, "body": {"deps": ["func:vfs_fsync"]}}|}
  in
  Alcotest.(check bool) "bare and enveloped subscription agree" true (bare_sub = env_sub);
  (* malformed envelopes answer 400 with accumulated diagnostics *)
  let st, _, body =
    post t "/v1/subscriptions" {|{"v": 7, "params": {"a": []}, "junk": 1, "body": "%%%"}|}
  in
  Alcotest.(check int) "envelope 400" 400 st;
  (match Json.member "diagnostics" (Json.of_string body) with
  | Some (Json.List (_ :: _ :: _)) -> ()
  | _ -> Alcotest.fail "expected several envelope diagnostics");
  Alcotest.(check string) "envelope health fatal" "fatal"
    (member_str "health" (Json.of_string body))

(* golden pin of the error envelope's exact wire bytes: every non-2xx
   body is rendered by Api.error_envelope, so this is the contract
   error-handling clients parse against *)
let test_error_envelope_golden () =
  Alcotest.(check string) "error envelope bytes"
    "{\n\
    \  \"v\": 1,\n\
    \  \"health\": \"fatal\",\n\
    \  \"data\": {\n\
    \    \"error\": \"method not allowed\",\n\
    \    \"status\": 405\n\
    \  },\n\
    \  \"diagnostics\": [\n\
    \    \"method not allowed\",\n\
    \    \"use GET\"\n\
    \  ]\n\
     }"
    (Json.to_string
       (Api.error_envelope ~status:405 ~diagnostics:[ "use GET" ] "method not allowed"))

let test_error_envelope_uniform () =
  with_server @@ fun t _ ->
  (* every non-2xx body is the same envelope: v + health + diagnostics *)
  List.iter
    (fun (meth, target) ->
      let st, ct, _, body = Serve.handle_request t ~meth ~target ~body:"" in
      Alcotest.(check bool) (target ^ " is an error") true (st >= 400);
      Alcotest.(check string) (target ^ " json") "application/json" ct;
      let j = Json.of_string body in
      (match Json.member "v" j with
      | Some (Json.Int 1) -> ()
      | _ -> Alcotest.fail (target ^ ": missing v"));
      Alcotest.(check string) (target ^ " health") "fatal" (member_str "health" j);
      (match Json.member "diagnostics" j with
      | Some (Json.List (_ :: _)) -> ()
      | _ -> Alcotest.fail (target ^ ": missing diagnostics"));
      match Json.member "data" j with
      | Some (Json.Obj fields) ->
          (match List.assoc_opt "status" fields with
          | Some (Json.Int s) -> Alcotest.(check int) (target ^ " echoed status") st s
          | _ -> Alcotest.fail (target ^ ": no status"));
          if List.assoc_opt "error" fields = None then
            Alcotest.fail (target ^ ": no error message")
      | _ -> Alcotest.fail (target ^ ": no data"))
    [
      ("GET", "/v1/nosuch");
      ("POST", "/v1/images");
      ("POST", "/v1/mismatch");
      ("GET", "/v1/surface/9.9-x86-generic");
      ("GET", "/v1/watch/deadbeef");
      ("PATCH", "/v1/watch/ingest");
    ]

let test_legacy_sunset_headers () =
  with_server @@ fun t _ ->
  let _, _, headers, _ = Serve.handle_request t ~meth:"GET" ~target:"/healthz" ~body:"" in
  Alcotest.(check (option string)) "deprecation header" (Some "true")
    (List.assoc_opt "Deprecation" headers);
  Alcotest.(check bool) "sunset header" true (List.assoc_opt "Sunset" headers <> None);
  let _, _, headers, _ = Serve.handle_request t ~meth:"GET" ~target:"/v1/healthz" ~body:"" in
  Alcotest.(check (option string)) "no deprecation on /v1" None
    (List.assoc_opt "Deprecation" headers);
  let before = Metrics.counter (Serve.metrics t) "http.legacy_hits" in
  let _ = get t "/images" in
  let _ = get t "/v1/images" in
  Alcotest.(check int) "legacy counter counts only legacy" (before + 1)
    (Metrics.counter (Serve.metrics t) "http.legacy_hits")

let test_no_legacy_routes () =
  Par.run ~jobs:4 @@ fun pool ->
  let t = Serve.create ~legacy:false ~ds:(Lazy.force ds) ~pool () in
  let st, _, _, body = Serve.handle_request t ~meth:"GET" ~target:"/healthz" ~body:"" in
  Alcotest.(check int) "legacy 404" 404 st;
  Alcotest.(check bool) "404 points at /v1" true
    (let j = Json.of_string body in
     match Json.member "data" j with
     | Some (Json.Obj fields) -> (
         match List.assoc_opt "error" fields with
         | Some (Json.String m) ->
             Ds_util.Strutil.find_sub m ~sub:"/v1/healthz" <> None
         | _ -> false)
     | _ -> false);
  let st, _, _, _ = Serve.handle_request t ~meth:"GET" ~target:"/v1/healthz" ~body:"" in
  Alcotest.(check int) "/v1 still answers" 200 st;
  (* the shared response cache must not leak a /v1 body onto a disabled
     legacy spelling *)
  let st, _, _, _ = Serve.handle_request t ~meth:"GET" ~target:"/v1/images" ~body:"" in
  Alcotest.(check int) "prime /v1/images" 200 st;
  let st, _, _, _ = Serve.handle_request t ~meth:"GET" ~target:"/images" ~body:"" in
  Alcotest.(check int) "legacy images still 404" 404 st

let test_watch_poll_immediate () =
  with_server @@ fun t _ ->
  let st, _, _ = get t "/v1/watch/deadbeef" in
  Alcotest.(check int) "unknown sub 404" 404 st;
  let _, _, body = post t "/v1/subscriptions" {|{"deps": ["func:vfs_read"]}|} in
  let id = member_str "id" (payload body) in
  let st, _, rbody = get t ("/v1/watch/" ^ id) in
  Alcotest.(check int) "no events: 204" 204 st;
  Alcotest.(check string) "no body" "" rbody;
  (* ingest a release that removes the subscribed func, then poll again *)
  let base = Dataset.surface (Lazy.force ds) (Version.v 5 4) Config.x86_generic in
  let next =
    Surface.v ~version:base.Surface.s_version ~arch:base.Surface.s_arch
      ~flavor:base.Surface.s_flavor ~gcc:base.Surface.s_gcc
      ~funcs:(List.filter (fun f -> f.Surface.fe_name <> "vfs_read") base.Surface.s_funcs)
      ~structs:base.Surface.s_structs ~tracepoints:base.Surface.s_tracepoints
      ~syscalls:base.Surface.s_syscalls
  in
  let st, _, ibody =
    post t "/v1/watch/ingest?base=5.4-x86-generic&name=r1&kind=surface"
      (Codec.encode_surface next)
  in
  Alcotest.(check int) "ingest 200" 200 st;
  (match Json.member "matched" (payload ibody) with
  | Some (Json.Int n) -> Alcotest.(check int) "one matched sub" 1 n
  | _ -> Alcotest.fail "no matched count");
  let st, _, body1 = get t ("/v1/watch/" ^ id ^ "?since=0") in
  Alcotest.(check int) "events: 200" 200 st;
  let cursor =
    match Json.member "cursor" (payload body1) with
    | Some (Json.Int c) -> c
    | _ -> Alcotest.fail "no cursor"
  in
  Alcotest.(check bool) "cursor advanced" true (cursor >= 1);
  (* byte-identical replay from the same cursor *)
  let _, _, body2 = get t ("/v1/watch/" ^ id ^ "?since=0") in
  Alcotest.(check string) "replay byte-identical" body1 body2;
  let st, _, _ = get t ("/v1/watch/" ^ id ^ "?since=" ^ string_of_int cursor) in
  Alcotest.(check int) "past cursor: 204" 204 st


(* ---- long-poll parking over real sockets ---------------------------- *)

(* a release surface with the named func dropped, as codec bytes — the
   minimal breaking ingest payload *)
let sabotaged_surface_bytes victim =
  let base = Dataset.surface (Lazy.force ds) (Version.v 5 4) Config.x86_generic in
  Codec.encode_surface
    (Surface.v ~version:base.Surface.s_version ~arch:base.Surface.s_arch
       ~flavor:base.Surface.s_flavor ~gcc:base.Surface.s_gcc
       ~funcs:(List.filter (fun f -> f.Surface.fe_name <> victim) base.Surface.s_funcs)
       ~structs:base.Surface.s_structs ~tracepoints:base.Surface.s_tracepoints
       ~syscalls:base.Surface.s_syscalls)

let register_over addr victim =
  let st, _, body =
    Serve.Client.request_full
      ~body:(Printf.sprintf {|{"deps": ["func:%s"]}|} victim)
      addr ~meth:"POST" ~path:"/v1/subscriptions"
  in
  Alcotest.(check int) "subscription created" 200 st;
  match Json.member "id" (Api.data (Json.of_string body)) with
  | Some (Json.String id) -> id
  | _ -> Alcotest.fail "no subscription id"

let rec await_parked ?(tries = 100) t =
  if Serve.parked_count t = 0 then
    if tries = 0 then Alcotest.fail "poller never parked"
    else begin
      Unix.sleepf 0.05;
      await_parked ~tries:(tries - 1) t
    end

let test_long_poll_delivery () =
  with_server @@ fun t _ ->
  let base = Dataset.surface (Lazy.force ds) (Version.v 5 4) Config.x86_generic in
  let victim = (List.hd base.Surface.s_funcs).Surface.fe_name in
  let path = temp_sock () in
  let addr = Serve.Unix_sock path in
  let h = Serve.start t addr in
  Fun.protect
    ~finally:(fun () -> Serve.stop h)
    (fun () ->
      let id = register_over addr victim in
      (* the poller parks: no worker is held, and the answer arrives
         when the ingest lands, not at the wait deadline *)
      let poller =
        Domain.spawn (fun () ->
            let t0 = Unix.gettimeofday () in
            let resp =
              Serve.Client.request_full ~timeout_s:15. addr ~meth:"GET"
                ~path:(Printf.sprintf "/v1/watch/%s?wait=10&since=0" id)
            in
            (resp, Unix.gettimeofday () -. t0))
      in
      await_parked t;
      let st, _, _ =
        Serve.Client.request_full ~body:(sabotaged_surface_bytes victim) addr ~meth:"POST"
          ~path:"/v1/watch/ingest?base=5.4-x86-generic&name=chaos&kind=surface"
      in
      Alcotest.(check int) "ingest 200" 200 st;
      let (st, _, body), elapsed = Domain.join poller in
      Alcotest.(check int) "poller woken with events" 200 st;
      Alcotest.(check bool) "woken well before the wait deadline" true (elapsed < 8.);
      (match Json.member "events" (Api.data (Json.of_string body)) with
      | Some (Json.List (_ :: _)) -> ()
      | _ -> Alcotest.fail "empty long-poll delivery");
      Alcotest.(check int) "lot empty after delivery" 0 (Serve.parked_count t);
      (* with the cursor past the event, a bounded wait times out clean *)
      let cursor =
        match Json.member "cursor" (Api.data (Json.of_string body)) with
        | Some (Json.Int c) -> c
        | _ -> Alcotest.fail "no cursor"
      in
      let st, _, body =
        Serve.Client.request_full addr ~meth:"GET"
          ~path:(Printf.sprintf "/v1/watch/%s?wait=0.3&since=%d" id cursor)
      in
      Alcotest.(check int) "timed-out park is 204" 204 st;
      Alcotest.(check string) "204 has no body" "" body)

let test_drain_releases_parked () =
  with_server @@ fun t _ ->
  let path = temp_sock () in
  let addr = Serve.Unix_sock path in
  let h = Serve.start t addr in
  let id = register_over addr "vfs_read" in
  let poller =
    Domain.spawn (fun () ->
        Serve.Client.request_full ~timeout_s:15. addr ~meth:"GET"
          ~path:(Printf.sprintf "/v1/watch/%s?wait=12" id))
  in
  await_parked t;
  (* stop with a poller parked: the drain contract says it is answered —
     a clean 204, not a slammed connection *)
  Serve.stop h;
  let st, _, _ = Domain.join poller in
  Alcotest.(check int) "drained poller gets 204" 204 st;
  Alcotest.(check int) "lot empty after stop" 0 (Serve.parked_count t)

let suites =
  [
    ( "serve",
      [
        Alcotest.test_case "image names" `Quick test_image_names;
        Alcotest.test_case "routing" `Quick test_routing;
        Alcotest.test_case "surface queries" `Quick test_surface_queries;
        Alcotest.test_case "single-flight hydration" `Quick test_single_flight;
        Alcotest.test_case "mismatch byte-identity" `Slow test_mismatch_identity;
        Alcotest.test_case "verify endpoint" `Slow test_verify_endpoint;
        Alcotest.test_case "metrics document" `Quick test_metrics_document;
        Alcotest.test_case "cache hit identity" `Quick test_response_cache_hit_identity;
        Alcotest.test_case "conditional requests" `Quick test_conditional_requests;
        Alcotest.test_case "generation invalidates" `Quick test_generation_invalidates;
        Alcotest.test_case "cache scope" `Quick test_cache_scope;
        Alcotest.test_case "graph endpoints" `Quick test_graph_endpoints;
        Alcotest.test_case "graph blast endpoint" `Slow test_graph_blast_endpoint;
        Alcotest.test_case "store maintenance revalidation" `Quick test_store_revalidation;
        Alcotest.test_case "respcache lru" `Quick test_respcache_lru;
        Alcotest.test_case "v1 aliases byte-identical" `Quick test_v1_aliases_byte_identical;
        Alcotest.test_case "trace header and recent" `Quick test_trace_header_and_recent;
        Alcotest.test_case "inline trace query" `Quick test_trace_inline_query;
        Alcotest.test_case "subscriptions crud" `Quick test_subscriptions_crud;
        Alcotest.test_case "mutation envelope equivalence" `Slow
          test_mutation_envelope_equivalence;
        Alcotest.test_case "error envelope golden" `Quick test_error_envelope_golden;
        Alcotest.test_case "uniform error envelope" `Quick test_error_envelope_uniform;
        Alcotest.test_case "legacy sunset headers" `Quick test_legacy_sunset_headers;
        Alcotest.test_case "no-legacy-routes 404" `Quick test_no_legacy_routes;
        Alcotest.test_case "watch poll" `Quick test_watch_poll_immediate;
      ] );
    ( "serve.socket",
      [
        Alcotest.test_case "unix socket roundtrip" `Quick test_unix_socket_roundtrip;
        Alcotest.test_case "tcp roundtrip" `Quick test_tcp_roundtrip;
        Alcotest.test_case "raw header parsing" `Quick test_raw_header_parsing;
        Alcotest.test_case "1-worker pool rejected" `Quick test_start_requires_two_workers;
        Alcotest.test_case "degraded file image answers 200" `Quick
          test_degraded_file_image_is_200;
        Alcotest.test_case "long-poll delivery" `Quick test_long_poll_delivery;
        Alcotest.test_case "drain releases parked pollers" `Quick
          test_drain_releases_parked;
      ] );
    ( "serve.overload",
      [
        Alcotest.test_case "admission lattice" `Quick test_admission_lattice;
        Alcotest.test_case "shed under overload" `Quick test_shed_under_overload;
        Alcotest.test_case "degraded pressure header" `Quick test_degraded_pressure_header;
        Alcotest.test_case "deadline expiry 503" `Quick test_deadline_expiry_503;
        Alcotest.test_case "stalled client 408" `Quick test_stalled_client_408;
        Alcotest.test_case "oversized requests rejected" `Quick
          test_oversized_requests_rejected;
        Alcotest.test_case "drain zero dropped" `Quick test_drain_zero_dropped;
        Alcotest.test_case "client retry" `Quick test_client_retry;
        Alcotest.test_case "deadline through pool" `Quick
          test_deadline_propagates_through_pool;
      ] );
  ]
