(* ds_trace: span nesting and parentage, ring drop-oldest behaviour,
   cross-domain parent propagation through the Par pool, the Chrome
   trace_event export and its parser, and the analysis helpers backing
   `depsurf trace top|flame|validate`. *)

module Trace = Ds_trace.Trace
module Par = Ds_util.Par
module Json = Ds_util.Json

(* each test owns the (global) rings *)
let fresh () =
  Trace.enable ();
  Trace.clear ()

let find_span name = List.find (fun sp -> sp.Trace.sp_name = name)

let test_nesting () =
  fresh ();
  let inner_id = ref 0 in
  Trace.span ~name:"root" (fun () ->
      Trace.span ~name:"left" (fun () -> inner_id := Trace.current_id ());
      Trace.span ~name:"right" ignore);
  let sps = Trace.spans () in
  Alcotest.(check int) "three spans" 3 (List.length sps);
  let root = find_span "root" sps
  and left = find_span "left" sps
  and right = find_span "right" sps in
  Alcotest.(check int) "root is parentless" 0 root.Trace.sp_parent;
  Alcotest.(check int) "left under root" root.Trace.sp_id left.Trace.sp_parent;
  Alcotest.(check int) "right under root" root.Trace.sp_id right.Trace.sp_parent;
  Alcotest.(check int) "current_id saw the open span" left.Trace.sp_id !inner_id;
  Alcotest.(check int) "no open span left behind" 0 (Trace.current_id ());
  Alcotest.(check bool) "well nested" true (Trace.well_nested sps = None)

let test_attrs_and_error () =
  fresh ();
  Trace.span ~name:"tagged" ~attrs:[ ("k", "v") ] (fun () ->
      Trace.set_attr "late" "addition");
  (match Alcotest.check_raises "exception re-raised" Exit (fun () ->
             Trace.span ~name:"boom" (fun () -> raise Exit))
   with
  | () -> ());
  let sps = Trace.spans () in
  let tagged = find_span "tagged" sps and boom = find_span "boom" sps in
  Alcotest.(check (option string)) "literal attr" (Some "v")
    (List.assoc_opt "k" tagged.Trace.sp_attrs);
  Alcotest.(check (option string)) "set_attr lands" (Some "addition")
    (List.assoc_opt "late" tagged.Trace.sp_attrs);
  Alcotest.(check bool) "error attr recorded" true
    (List.mem_assoc "error" boom.Trace.sp_attrs)

let test_disabled_is_passthrough () =
  fresh ();
  Trace.disable ();
  let r = Trace.span ~name:"ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "value flows through" 42 r;
  Alcotest.(check int) "no ambient id" 0 (Trace.current_id ());
  Trace.enable ();
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans ()))

let test_ring_drop_oldest () =
  fresh ();
  let n = Trace.default_capacity + 64 in
  Trace.span ~name:"root" (fun () ->
      for _ = 1 to n do
        Trace.span ~name:"leaf" ignore
      done);
  Alcotest.(check bool) "drops counted" true (Trace.drops () > 0);
  let sps = Trace.spans () in
  Alcotest.(check bool) "ring stays bounded" true
    (List.length sps <= Trace.default_capacity);
  (* spans finish LIFO: the root closes last, so drop pressure evicts
     leaves, never the root *)
  Alcotest.(check bool) "root survives" true
    (List.exists (fun sp -> sp.Trace.sp_name = "root") sps);
  let recent = Trace.recent ~limit:5 () in
  Alcotest.(check int) "recent honours the limit" 5 (List.length recent);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Trace.sp_stop >= b.Trace.sp_stop && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "recent is newest-first" true (sorted recent);
  (* the root stops last of all, so it cannot age out of the top 100 *)
  Alcotest.(check bool) "root among the recent" true
    (List.exists (fun sp -> sp.Trace.sp_name = "root") (Trace.recent ()))

let test_cross_domain_parent () =
  fresh ();
  Par.run ~jobs:3 (fun pool ->
      Trace.span ~name:"root" (fun () ->
          let fs =
            List.init 4 (fun i ->
                Par.submit pool (fun () ->
                    Trace.span ~name:(Printf.sprintf "task%d" i) ignore;
                    Domain.self ()))
          in
          ignore (List.map Par.await fs)));
  let sps = Trace.spans () in
  let root = find_span "root" sps in
  let tasks = List.filter (fun sp -> sp.Trace.sp_name <> "root") sps in
  Alcotest.(check int) "all tasks recorded" 4 (List.length tasks);
  List.iter
    (fun sp ->
      Alcotest.(check int)
        ("task keeps its submitter's span as parent: " ^ sp.Trace.sp_name)
        root.Trace.sp_id sp.Trace.sp_parent)
    tasks

let test_chrome_roundtrip () =
  fresh ();
  Trace.span ~name:"root" ~attrs:[ ("phase", "x") ] (fun () ->
      Trace.span ~name:"child" (fun () -> Unix.sleepf 0.002));
  let sps = Trace.spans () in
  let doc = Trace.chrome_json sps in
  (* the document must be self-contained JSON text *)
  let sps' = Trace.of_chrome (Json.of_string (Json.to_string doc)) in
  Alcotest.(check int) "span count survives" (List.length sps) (List.length sps');
  let root' = find_span "root" sps' and child' = find_span "child" sps' in
  Alcotest.(check int) "parent link survives" root'.Trace.sp_id child'.Trace.sp_parent;
  Alcotest.(check bool) "durations in microseconds" true (Trace.dur_us child' >= 1_000);
  Alcotest.(check bool) "still well nested" true (Trace.well_nested sps' = None);
  List.iter
    (fun bad ->
      Alcotest.check_raises ("reject " ^ Json.to_string bad)
        (Trace.Bad_trace "missing traceEvents array")
        (fun () -> ignore (Trace.of_chrome bad)))
    [ Json.Int 3; Json.Obj [ ("traceEvents", Json.Int 1) ] ]

let test_analysis () =
  fresh ();
  Trace.span ~name:"root" (fun () ->
      Trace.span ~name:"work" (fun () -> Unix.sleepf 0.004);
      Trace.span ~name:"work" (fun () -> Unix.sleepf 0.004));
  let sps = Trace.spans () in
  (match Trace.top sps with
  | (name, count, total, self) :: _ ->
      (* both "work" spans sleep; root's self time is near zero, so the
         aggregate must lead with "work" *)
      Alcotest.(check string) "top by self time" "work" name;
      Alcotest.(check int) "aggregated count" 2 count;
      Alcotest.(check bool) "total >= self" true (total >= self)
  | [] -> Alcotest.fail "top is empty");
  let flame = Trace.collapsed sps in
  Alcotest.(check bool) "collapsed path" true
    (List.exists
       (fun line -> String.length line > 10 && String.sub line 0 10 = "root;work ")
       (String.split_on_char '\n' flame));
  let cov = Trace.coverage sps in
  Alcotest.(check bool) "children explain most of the root" true (cov > 0.5 && cov <= 1.0);
  let table = Trace.top_table sps in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "table mentions work" true (contains table "work")

let test_span_json_fields () =
  fresh ();
  Trace.span ~name:"one" ~attrs:[ ("a", "b") ] ignore;
  let sp = List.hd (Trace.spans ()) in
  match Trace.span_json sp with
  | Json.Obj fields ->
      List.iter
        (fun k ->
          Alcotest.(check bool) ("field " ^ k) true (List.mem_assoc k fields))
        [ "id"; "parent"; "name"; "dur_us"; "domain"; "attrs" ]
  | _ -> Alcotest.fail "span_json must be an object"

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "nesting and parentage" `Quick test_nesting;
        Alcotest.test_case "attrs and error capture" `Quick test_attrs_and_error;
        Alcotest.test_case "disabled passthrough" `Quick test_disabled_is_passthrough;
        Alcotest.test_case "ring drop-oldest" `Quick test_ring_drop_oldest;
        Alcotest.test_case "cross-domain parenting" `Quick test_cross_domain_parent;
        Alcotest.test_case "chrome roundtrip" `Quick test_chrome_roundtrip;
        Alcotest.test_case "top, flame, coverage" `Quick test_analysis;
        Alcotest.test_case "span json fields" `Quick test_span_json_fields;
      ] );
  ]
