(* Tests for the extension features: maps, JSON export, the compatibility
   layer, the disassembler, special-function censuses, plus failure
   injection against the binary codecs. *)

open Ds_ksrc
open Ds_bpf
open Depsurf

let ds = lazy (Dataset.build ~seed:Testenv.seed Calibration.test_scale)
let v54 = Version.v 5 4

(* ------------------------------------------------------------------ *)
(* Maps                                                                *)
(* ------------------------------------------------------------------ *)

let hash_def =
  Maps.{ md_name = "h"; md_type = Hash; md_key_size = 4; md_value_size = 8; md_max_entries = 4 }

let test_maps_hash () =
  let m = Maps.create hash_def in
  let k i = Maps.key_of_int m i in
  Alcotest.(check bool) "lookup empty" true (Maps.lookup m (k 1) = None);
  Alcotest.(check bool) "insert" true (Maps.update m (k 1) "AAAAAAAA" = Ok ());
  Alcotest.(check (option string)) "read back" (Some "AAAAAAAA") (Maps.lookup m (k 1));
  Alcotest.(check bool) "noexist fails on present" true
    (Maps.update ~flag:Maps.Noexist m (k 1) "BBBBBBBB" = Error "EEXIST");
  Alcotest.(check bool) "exist fails on absent" true
    (Maps.update ~flag:Maps.Exist m (k 2) "BBBBBBBB" = Error "ENOENT");
  ignore (Maps.update m (k 2) "BBBBBBBB");
  ignore (Maps.update m (k 3) "CCCCCCCC");
  ignore (Maps.update m (k 4) "DDDDDDDD");
  Alcotest.(check bool) "capacity (E2BIG)" true
    (Maps.update m (k 5) "EEEEEEEE" = Error "E2BIG");
  Alcotest.(check bool) "delete" true (Maps.delete m (k 1) = Ok ());
  Alcotest.(check bool) "delete absent" true (Maps.delete m (k 1) = Error "ENOENT");
  Alcotest.(check int) "entries" 3 (Maps.entries m)

let test_maps_array () =
  let m =
    Maps.create
      Maps.{ md_name = "a"; md_type = Array; md_key_size = 4; md_value_size = 8; md_max_entries = 3 }
  in
  Alcotest.(check int) "prepopulated" 3 (Maps.entries m);
  let k = Maps.key_of_int m 1 in
  Alcotest.(check (option string)) "zero value" (Some (String.make 8 '\000')) (Maps.lookup m k);
  Alcotest.(check bool) "in-range update" true (Maps.update m k "XXXXXXXX" = Ok ());
  Alcotest.(check bool) "out of range" true
    (Maps.update m (Maps.key_of_int m 7) "XXXXXXXX" = Error "E2BIG");
  Alcotest.(check bool) "array delete refused" true (Maps.delete m k = Error "EINVAL")

let test_maps_percpu () =
  let m =
    Maps.create
      Maps.
        {
          md_name = "p";
          md_type = Percpu_array 4;
          md_key_size = 4;
          md_value_size = 8;
          md_max_entries = 2;
        }
  in
  let k = Maps.key_of_int m 0 in
  ignore (Maps.update ~cpu:2 m k "22222222");
  (match Maps.lookup_percpu m k with
  | Some slots ->
      Alcotest.(check int) "4 cpus" 4 (List.length slots);
      Alcotest.(check string) "cpu2 slot" "22222222" (List.nth slots 2)
  | None -> Alcotest.fail "missing key");
  Alcotest.(check (option string)) "cpu0 view untouched" (Some (String.make 8 '\000'))
    (Maps.lookup m k)

let test_maps_bump_and_keys () =
  let m = Maps.create hash_def in
  let k = Maps.key_of_int m 42 in
  Maps.bump m k 5;
  Maps.bump m k 7;
  Alcotest.(check int) "accumulated" 12 (Maps.value_to_int (Option.get (Maps.lookup m k)));
  Alcotest.check_raises "bad key size" (Maps.Map_error "h: key size 2, want 4") (fun () ->
      ignore (Maps.lookup m "xx"))

let test_maps_obj_roundtrip () =
  let obj =
    Pipeline.build_program (Lazy.force ds)
      Progbuild.
        {
          sp_tool = "mapcheck";
          sp_hooks =
            [ { hs_hook = Hook.Kprobe "vfs_read"; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] } ];
        }
  in
  Alcotest.(check int) "events map survives the wire" 1 (List.length obj.Obj.o_maps);
  let d = List.hd obj.Obj.o_maps in
  Alcotest.(check string) "map name" "events" d.Maps.md_name;
  let instances = Loader.instantiate_maps obj in
  Alcotest.(check bool) "instantiable" true (List.mem_assoc "events" instances)

let test_runtime_fills_events_map () =
  let obj =
    Pipeline.build_program (Lazy.force ds)
      Progbuild.
        {
          sp_tool = "fsync_count";
          sp_hooks =
            [ { hs_hook = Hook.Kprobe "vfs_fsync"; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] } ];
        }
  in
  match Pipeline.load_on (Lazy.force ds) (Version.v 4 4) Config.x86_generic obj with
  | Error e -> Alcotest.fail (Loader.error_to_string e)
  | Ok attachments ->
      let events = List.assoc "events" (Loader.instantiate_maps obj) in
      let model = Dataset.model (Lazy.force ds) (Version.v 4 4) Config.x86_generic in
      let r = Runtime.simulate ~events_map:events model ~attachments ~expectations:[] ~rounds:10 in
      let observed = (List.hd r.Runtime.r_per_prog).Runtime.ps_observed in
      Alcotest.(check bool) "observed something" true (observed > 0);
      Alcotest.(check int) "map slot holds the count" observed
        (Maps.value_to_int (Option.get (Maps.lookup events (Maps.key_of_int events 0))))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let open Ds_util.Json in
  let v =
    Obj
      [
        ("name", String "vfs_fsync");
        ("null", Null);
        ("count", Int 42);
        ("neg", Int (-17));
        ("f", Float 1.5);
        ("ok", Bool true);
        ("items", List [ Int 1; String "two\nlines"; Obj []; List [] ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (of_string (to_string v) = v)

let test_json_parse_errors () =
  let open Ds_util.Json in
  List.iter
    (fun s ->
      match of_string s with
      | exception Parse_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ s))
    [ "{"; "[1,"; "\"unterminated"; "tru"; "{\"a\" 1}"; "1 2"; "" ]

let qcheck_json_roundtrip =
  let open Ds_util.Json in
  let rec gen depth st =
    let open QCheck.Gen in
    if depth = 0 then
      oneof
        [ map (fun i -> Int i) int; map (fun s -> String s) (string_size (int_range 0 10));
          return Null; map (fun b -> Bool b) bool ]
        st
    else
      frequency
        [
          (2, gen 0);
          (1, map (fun l -> List l) (list_size (int_range 0 4) (gen (depth - 1))));
          ( 1,
            map
              (fun l -> Obj (List.mapi (fun i v -> ("k" ^ string_of_int i, v)) l))
              (list_size (int_range 0 4) (gen (depth - 1))) );
        ]
        st
  in
  QCheck.Test.make ~name:"json roundtrip" ~count:200 (QCheck.make (gen 3)) (fun v ->
      of_string (to_string v) = v)

(* ------------------------------------------------------------------ *)
(* Export (artifact appendix format)                                   *)
(* ------------------------------------------------------------------ *)

let test_export_func_status () =
  let open Ds_util.Json in
  let s = Dataset.surface (Lazy.force ds) v54 Config.x86_generic in
  let fe = Option.get (Surface.find_func s "vfs_fsync") in
  let j = Export.func_status fe in
  Alcotest.(check (option string)) "name" (Some "vfs_fsync")
    (Option.map to_str (member "name" j));
  Alcotest.(check (option string)) "collision_type" (Some "Unique Global")
    (Option.map to_str (member "collision_type" j));
  Alcotest.(check (option string)) "inline_type (appendix wording)" (Some "Partially inlined")
    (Option.map to_str (member "inline_type" j));
  (match member "funcs" j with
  | Some (List [ inst ]) ->
      Alcotest.(check (option string)) "loc" (Some "fs/sync.c:213")
        (Option.map to_str (member "loc" inst));
      (match member "caller_inline" inst with
      | Some (List (_ :: _)) -> ()
      | _ -> Alcotest.fail "caller_inline empty")
  | _ -> Alcotest.fail "funcs shape");
  (* the export must be valid JSON text *)
  Alcotest.(check bool) "serializes and reparses" true
    (of_string (to_string j) = j)

let test_export_struct_and_decl () =
  let open Ds_util.Json in
  let s = Dataset.surface (Lazy.force ds) v54 Config.x86_generic in
  let task = Option.get (Surface.find_struct s "task_struct") in
  let j = Export.struct_def task in
  Alcotest.(check (option string)) "kind" (Some "STRUCT") (Option.map to_str (member "kind" j));
  (match member "members" j with
  | Some (List members) ->
      Alcotest.(check bool) "has members" true (List.length members > 5);
      let first = List.hd members in
      Alcotest.(check bool) "bits_offset present" true (member "bits_offset" first <> None)
  | _ -> Alcotest.fail "members shape");
  let fe = Option.get (Surface.find_func s "vfs_fsync") in
  let dj = Export.func_decl ~name:"vfs_fsync" (Surface.representative_proto fe) in
  match member "type" dj with
  | Some ty ->
      Alcotest.(check (option string)) "FUNC_PROTO" (Some "FUNC_PROTO")
        (Option.map to_str (member "kind" ty));
      (match member "params" ty with
      | Some (List [ p1; _ ]) ->
          Alcotest.(check (option string)) "param name" (Some "file")
            (Option.map to_str (member "name" p1))
      | _ -> Alcotest.fail "params shape")
  | None -> Alcotest.fail "missing type"

let test_export_tracepoint () =
  let open Ds_util.Json in
  let s = Dataset.surface (Lazy.force ds) v54 Config.x86_generic in
  let tp = Option.get (Surface.find_tracepoint s "sched_switch") in
  let j = Export.tracepoint tp in
  Alcotest.(check (option string)) "event_name" (Some "sched_switch")
    (Option.map to_str (member "event_name" j));
  Alcotest.(check (option string)) "struct_name" (Some "trace_event_raw_sched_switch")
    (Option.map to_str (member "struct_name" j));
  Alcotest.(check bool) "func decl embedded" true (member "func" j <> None);
  Alcotest.(check bool) "event struct embedded" true (member "struct" j <> None)

let test_export_matrix_json () =
  let open Ds_util.Json in
  let obj =
    Pipeline.build_program (Lazy.force ds)
      Progbuild.
        {
          sp_tool = "jsonable";
          sp_hooks =
            [
              {
                hs_hook = Hook.Kprobe "blk_account_io_start";
                hs_arg_indices = []; hs_kfuncs = [];
                hs_reads = [];
              };
            ];
        }
  in
  let m = Pipeline.analyze (Lazy.force ds) obj in
  let j = Export.matrix m in
  Alcotest.(check (option string)) "program" (Some "jsonable")
    (Option.map to_str (member "program" j));
  (* valid JSON text that reparses *)
  Alcotest.(check bool) "reparses" true (of_string (to_string j) = j);
  match member "dependencies" j with
  | Some (List (dep :: _)) -> (
      match member "images" dep with
      | Some (Obj cells) -> Alcotest.(check int) "21 images" 21 (List.length cells)
      | _ -> Alcotest.fail "images shape")
  | _ -> Alcotest.fail "dependencies shape"

(* ------------------------------------------------------------------ *)
(* Dataset import: export -> import round-trips the analyses           *)
(* ------------------------------------------------------------------ *)

let test_import_roundtrip_surface () =
  let s = Dataset.surface (Lazy.force ds) v54 Config.x86_generic in
  let s' = Import.surface_of_string (Ds_util.Json.to_string (Export.surface s)) in
  Alcotest.(check string) "identity preserved" (Surface.tag s) (Surface.tag s');
  let c1 = Surface.counts s and c2 = Surface.counts s' in
  Alcotest.(check bool) "same counts" true (c1 = c2);
  (* self-diff of the imported surface against the original is empty *)
  let d = Diff.compare_surfaces Diff.Across_versions s s' in
  Alcotest.(check (list string)) "no funcs added" [] d.Diff.df_funcs.Diff.d_added;
  Alcotest.(check (list string)) "no funcs removed" [] d.Diff.df_funcs.Diff.d_removed;
  Alcotest.(check int) "no funcs changed" 0 (List.length d.Diff.df_funcs.Diff.d_changed);
  Alcotest.(check int) "no structs changed" 0 (List.length d.Diff.df_structs.Diff.d_changed);
  Alcotest.(check int) "no tracepoints changed" 0
    (List.length d.Diff.df_tracepoints.Diff.d_changed);
  Alcotest.(check (list string)) "no syscalls changed" [] d.Diff.df_syscalls.Diff.d_added

let test_import_preserves_classification () =
  let s = Dataset.surface (Lazy.force ds) (Version.v 5 19) Config.x86_generic in
  let s' = Import.surface_of_string (Ds_util.Json.to_string (Export.surface s)) in
  let status name surf = Func_status.inline_status (Option.get (Surface.find_func surf name)) in
  Alcotest.(check bool) "full inline preserved" true
    (status "blk_account_io_start" s' = Func_status.Fully_inlined);
  Alcotest.(check bool) "selective preserved" true
    (status "vfs_fsync" s' = status "vfs_fsync" s);
  let ns name surf = Func_status.name_status (Option.get (Surface.find_func surf name)) in
  Alcotest.(check bool) "collision preserved" true
    (ns "destroy_inodecache" s' = Func_status.Static_static_collision);
  Alcotest.(check bool) "duplication preserved" true
    (ns "get_order" s' = ns "get_order" s && ns "get_order" s = Func_status.Duplication);
  (* dependency statuses agree between the live and the imported surface *)
  let baseline = Dataset.surface (Lazy.force ds) v54 Config.x86_generic in
  List.iter
    (fun dep ->
      Alcotest.(check bool)
        (Depset.dep_to_string dep ^ " statuses agree")
        true
        (Report.statuses ~baseline ~target:s dep = Report.statuses ~baseline ~target:s' dep))
    [
      Depset.Dep_func "blk_account_io_start";
      Depset.Dep_func "get_order";
      Depset.Dep_field ("request", "rq_disk");
      Depset.Dep_tracepoint "block_rq_issue";
      Depset.Dep_syscall "open";
    ]

let test_import_rejects_garbage () =
  (match Import.surface_of_string "{ not json" with
  | exception Import.Bad_dataset _ -> ()
  | _ -> Alcotest.fail "bad JSON accepted");
  match Import.surface_of_string "{\"version\": 42}" with
  | exception Import.Bad_dataset _ -> ()
  | _ -> Alcotest.fail "bad document accepted"

(* ------------------------------------------------------------------ *)
(* Compatibility layer                                                 *)
(* ------------------------------------------------------------------ *)

let test_compat_biotop_lineage () =
  let probe = Option.get (Compat.find_probe "block:io_start") in
  let hook_on v =
    (Compat.resolve probe (Dataset.surface (Lazy.force ds) v Config.x86_generic)).Compat.rs_hook
  in
  Alcotest.(check bool) "kprobe until 5.15" true
    (hook_on (Version.v 5 15) = Some (Hook.Kprobe "blk_account_io_start"));
  Alcotest.(check bool) "fallback at 5.19 (inline)" true
    (hook_on (Version.v 5 19) = Some (Hook.Kprobe "blk_mq_start_request"));
  Alcotest.(check bool) "tracepoint from 6.5" true
    (hook_on (Version.v 6 5)
    = Some (Hook.Tracepoint { category = "block"; event = "block_io_start" }));
  (* and the skipped candidates carry reasons *)
  let res = Compat.resolve probe (Dataset.surface (Lazy.force ds) (Version.v 5 19) Config.x86_generic) in
  Alcotest.(check bool) "skip reasons recorded" true
    (List.exists (fun (_, why) -> why = "function fully inlined") res.Compat.rs_skipped)

let test_compat_readahead_lineage () =
  let probe = Option.get (Compat.find_probe "mm:readahead") in
  let hook_on v =
    (Compat.resolve probe (Dataset.surface (Lazy.force ds) v Config.x86_generic)).Compat.rs_hook
  in
  Alcotest.(check bool) "old name until 5.8" true
    (hook_on (Version.v 4 4) = Some (Hook.Kprobe "__do_page_cache_readahead"));
  Alcotest.(check bool) "renamed at 5.11" true
    (hook_on (Version.v 5 13) = Some (Hook.Kprobe "do_page_cache_ra"));
  Alcotest.(check bool) "new symbol at 5.19" true
    (hook_on (Version.v 6 8) = Some (Hook.Kprobe "page_cache_ra_order"))

let test_compat_coverage_and_unresolved () =
  let probe = Option.get (Compat.find_probe "mm:readahead") in
  let cov =
    Compat.coverage probe (Lazy.force ds)
      (List.map (fun v -> (v, Config.x86_generic)) Version.all)
  in
  Alcotest.(check int) "17 rows" 17 (List.length cov);
  Alcotest.(check bool) "all x86 versions resolve" true
    (List.for_all (fun (_, r) -> r.Compat.rs_hook <> None) cov);
  (* a probe with no viable candidates yields None and a spec of None *)
  let dead =
    Compat.
      {
        pb_name = "dead:probe";
        pb_doc = "testing";
        pb_candidates = [ { ca_hook = Hook.Kprobe "no_such_function"; ca_since = None; ca_until = None } ];
      }
  in
  let res = Compat.resolve dead (Dataset.surface (Lazy.force ds) v54 Config.x86_generic) in
  Alcotest.(check bool) "unresolved" true (res.Compat.rs_hook = None);
  Alcotest.(check bool) "no spec" true (Compat.spec_of_resolution ~tool:"t" res = None)

let test_compat_spec_loads_everywhere () =
  (* the whole point: one stable probe, attachable on every kernel *)
  let probe = Option.get (Compat.find_probe "block:io_start") in
  List.iter
    (fun v ->
      let s = Dataset.surface (Lazy.force ds) v Config.x86_generic in
      match Compat.spec_of_resolution ~tool:"stable_biotop" (Compat.resolve probe s) with
      | None -> Alcotest.fail (Version.to_string v ^ ": unresolved")
      | Some spec -> (
          let obj = Pipeline.build_program (Lazy.force ds) spec in
          match Pipeline.load_on (Lazy.force ds) v Config.x86_generic obj with
          | Ok _ -> ()
          | Error e ->
              Alcotest.fail (Version.to_string v ^ ": " ^ Loader.error_to_string e)))
    Version.all

(* ------------------------------------------------------------------ *)
(* Disassembler                                                        *)
(* ------------------------------------------------------------------ *)

let test_disasm () =
  let contains hay needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check string) "mov" "r0 = 0" (Disasm.insn_to_string (Insn.Mov_imm { dst = 0; imm = 0 }));
  Alcotest.(check string) "ldx" "r7 = *(u64 *)(r6 + 112)"
    (Disasm.insn_to_string (Insn.Ldx { dst = 7; src = 6; off = 112; size = Insn.DW }));
  Alcotest.(check string) "neg off" "r1 = *(u32 *)(r10 - 16)"
    (Disasm.insn_to_string (Insn.Ldx { dst = 1; src = 10; off = -16; size = Insn.W }));
  Alcotest.(check string) "call named" "call bpf_probe_read#4"
    (Disasm.insn_to_string (Insn.Call 4));
  let obj =
    Pipeline.build_program (Lazy.force ds)
      Progbuild.
        {
          sp_tool = "dumpme";
          sp_hooks =
            [
              {
                hs_hook = Hook.Kprobe "blk_mq_start_request";
                hs_arg_indices = [ 0 ]; hs_kfuncs = [];
                hs_reads =
                  [ { rd_struct = "request"; rd_path = [ "__sector" ]; rd_exists_check = false } ];
              };
            ];
        }
  in
  let text = Disasm.obj obj in
  Alcotest.(check bool) "mentions section" true (contains text "SEC(\"kprobe/blk_mq_start_request\")");
  Alcotest.(check bool) "annotates CO-RE" true (contains text "CO-RE byte_off request::__sector");
  Alcotest.(check bool) "lists maps" true (contains text "map events: hash")

(* ------------------------------------------------------------------ *)
(* Special functions                                                   *)
(* ------------------------------------------------------------------ *)

let test_special_census () =
  let s = Dataset.surface (Lazy.force ds) v54 Config.x86_generic in
  let c = Func_status.special_census s in
  Alcotest.(check bool) "some LSM hooks" true (c.Func_status.sp_lsm >= 4);
  Alcotest.(check bool) "security_file_open classified" true
    (Func_status.is_lsm_hook "security_file_open");
  Alcotest.(check bool) "vfs_read not LSM" false (Func_status.is_lsm_hook "vfs_read");
  Alcotest.(check bool) "kfunc prefix" true (Func_status.is_kfunc "bpf_task_acquire")

(* ------------------------------------------------------------------ *)
(* Failure injection on the binary codecs                              *)
(* ------------------------------------------------------------------ *)

let corrupt bytes pos c =
  let b = Bytes.of_string bytes in
  Bytes.set b pos c;
  Bytes.to_string b

let test_truncated_image_sections () =
  (* a vmlinux missing its markers must fail loudly, not silently *)
  let img = Testenv.image (Version.v 4 4) in
  let no_banner =
    Ds_elf.Elf.
      { img with symbols = List.filter (fun s -> s.sym_name <> "linux_banner") img.symbols }
  in
  Alcotest.check_raises "missing banner" (Vmlinux.Bad_vmlinux "missing symbol linux_banner")
    (fun () -> ignore (Vmlinux.load no_banner));
  let no_btf =
    Ds_elf.Elf.
      { img with sections = List.filter (fun s -> s.sec_name <> ".BTF") img.sections }
  in
  Alcotest.check_raises "missing BTF" (Vmlinux.Bad_vmlinux "missing .BTF section") (fun () ->
      ignore (Vmlinux.load no_btf))

let test_corrupted_btf_rejected () =
  let img = Testenv.image (Version.v 4 4) in
  let sec = Option.get (Ds_elf.Elf.find_section img ".BTF") in
  let bad = corrupt sec.Ds_elf.Elf.sec_data 0 '\xFF' in
  match Ds_util.Diag.ok (Ds_btf.Btf.decode bad) with
  | exception Ds_btf.Btf.Bad_btf _ -> ()
  | _ -> Alcotest.fail "corrupted BTF accepted"

let test_corrupted_obj_rejected () =
  let obj = Pipeline.build_program (Lazy.force ds)
      Progbuild.{ sp_tool = "x"; sp_hooks = [ { hs_hook = Hook.Perf_event; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] } ] }
  in
  let bytes = Obj.write obj in
  (* truncating the file kills section parsing *)
  match Ds_util.Diag.ok (Obj.read (String.sub bytes 0 (String.length bytes / 2))) with
  | exception Obj.Bad_obj _ -> ()
  | exception Ds_elf.Elf.Bad_elf _ -> ()
  | _ -> Alcotest.fail "truncated object accepted"

let test_surface_deterministic_across_builds () =
  (* two independent datasets with the same seed produce identical
     surfaces, byte for byte through the serialization *)
  let d1 = Dataset.build ~seed:99L Calibration.test_scale in
  let d2 = Dataset.build ~seed:99L Calibration.test_scale in
  let b1 = Ds_elf.Elf.write (Dataset.image d1 v54 Config.x86_generic) in
  let b2 = Ds_elf.Elf.write (Dataset.image d2 v54 Config.x86_generic) in
  Alcotest.(check bool) "identical image bytes" true (String.equal b1 b2)

let suites =
  [
    ( "ext.maps",
      [
        Alcotest.test_case "hash semantics" `Quick test_maps_hash;
        Alcotest.test_case "array semantics" `Quick test_maps_array;
        Alcotest.test_case "percpu" `Quick test_maps_percpu;
        Alcotest.test_case "bump + key checks" `Quick test_maps_bump_and_keys;
        Alcotest.test_case "obj roundtrip" `Quick test_maps_obj_roundtrip;
        Alcotest.test_case "runtime fills events map" `Quick test_runtime_fills_events_map;
      ] );
    ( "ext.json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
      ] );
    ( "ext.export",
      [
        Alcotest.test_case "func status (appendix A)" `Quick test_export_func_status;
        Alcotest.test_case "struct + decl" `Quick test_export_struct_and_decl;
        Alcotest.test_case "tracepoint" `Quick test_export_tracepoint;
        Alcotest.test_case "matrix json" `Quick test_export_matrix_json;
        Alcotest.test_case "import roundtrip" `Quick test_import_roundtrip_surface;
        Alcotest.test_case "import preserves classification" `Quick
          test_import_preserves_classification;
        Alcotest.test_case "import rejects garbage" `Quick test_import_rejects_garbage;
      ] );
    ( "ext.compat",
      [
        Alcotest.test_case "biotop lineage" `Quick test_compat_biotop_lineage;
        Alcotest.test_case "readahead lineage" `Quick test_compat_readahead_lineage;
        Alcotest.test_case "coverage + unresolved" `Quick test_compat_coverage_and_unresolved;
        Alcotest.test_case "stable probe loads everywhere" `Quick
          test_compat_spec_loads_everywhere;
      ] );
    ("ext.disasm", [ Alcotest.test_case "dump" `Quick test_disasm ]);
    ("ext.special", [ Alcotest.test_case "census" `Quick test_special_census ]);
    ( "ext.failures",
      [
        Alcotest.test_case "missing image pieces" `Quick test_truncated_image_sections;
        Alcotest.test_case "corrupted BTF" `Quick test_corrupted_btf_rejected;
        Alcotest.test_case "corrupted object" `Quick test_corrupted_obj_rejected;
        Alcotest.test_case "deterministic builds" `Quick test_surface_deterministic_across_builds;
      ] );
  ]
