(* The biotop case study (paper §2.5 and Figure 2): a two-year journey
   from an innocuous kernel commit to a working fix, replayed against the
   synthetic kernel history.

   - v5.19 (be6bfe3-era): blk_account_io_{start,done} become static
     inline wrappers and biotop's kprobes stop attaching.
   - The first fix attempt targets __blk_account_io_{start,done}; the
     compiler happens to fully inline the start variant, so it fails too.
   - v6.5 (5a80bd0): dedicated block_io_{start,done} tracepoints land and
     the tool is finally fixed — but only on v6.5+ kernels.

   Run with: dune exec examples/biotop_case_study.exe *)

open Depsurf
open Ds_ksrc
open Ds_bpf

let ds = Pipeline.dataset Calibration.test_scale

let attach_only name funcs =
  Progbuild.
    {
      sp_tool = name;
      sp_hooks =
        List.map
          (fun f -> { hs_hook = Hook.Kprobe f; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] })
          funcs;
    }

let tp_version name events =
  Progbuild.
    {
      sp_tool = name;
      sp_hooks =
        List.map
          (fun e ->
            {
              hs_hook = Hook.Tracepoint { category = "block"; event = e };
              hs_arg_indices = []; hs_kfuncs = [];
              hs_reads = [];
            })
          events;
    }

let try_load label obj v =
  match Pipeline.load_on ds v Config.x86_generic obj with
  | Ok atts ->
      Printf.printf "  %-10s %-28s OK (%d programs attached)\n" (Version.to_string v) label
        (List.length atts)
  | Error e ->
      Printf.printf "  %-10s %-28s FAILED: %s\n" (Version.to_string v) label
        (Loader.error_to_string e)

let () =
  print_endline "== biotop: a two-year journey (paper Fig. 2) ==\n";
  let original = Pipeline.build_program ds (attach_only "biotop" [ "blk_account_io_start"; "blk_account_io_done" ]) in
  print_endline "1. the original tool, attaching to blk_account_io_{start,done}:";
  List.iter (try_load "kprobe original" original) [ Version.v 5 15; Version.v 5 19 ];

  print_endline "\n2. first fix attempt: __blk_account_io_{start,done} (issue #4261):";
  let attempt =
    Pipeline.build_program ds
      (attach_only "biotop_fix1" [ "__blk_account_io_start"; "__blk_account_io_done" ])
  in
  try_load "kprobe __blk variant" attempt (Version.v 5 19);
  (* Explain why, using DepSurf's surface analysis. *)
  let s519 = Dataset.surface ds (Version.v 5 19) Config.x86_generic in
  (match Surface.find_func s519 "__blk_account_io_start" with
  | Some fe ->
      let sites = fe.Surface.fe_inline_sites in
      Printf.printf
        "   DepSurf: __blk_account_io_start is %s; its body was copied into: %s\n"
        (match Func_status.inline_status fe with
        | Func_status.Fully_inlined -> "FULLY INLINED (no symbol)"
        | Func_status.Selectively_inlined -> "selectively inlined"
        | Func_status.Not_inlined -> "not inlined")
        (String.concat ", "
           (List.map (fun is -> is.Surface.is_caller) sites))
  | None -> print_endline "   (function not found)");

  print_endline "\n3. the eventual fix: block_io_{start,done} tracepoints (5a80bd0, v6.5):";
  let fixed = Pipeline.build_program ds (tp_version "biotop_fixed" [ "block_io_start"; "block_io_done" ]) in
  List.iter (try_load "tracepoint version" fixed) [ Version.v 5 19; Version.v 6 2; Version.v 6 5; Version.v 6 8 ];
  print_endline "   ... the tracepoints only exist on v6.5+: biotop stays broken on v5.17-v6.4.";

  print_endline "\n4. the silent variant: before the full inline, selective inlining was";
  print_endline "   already eating invocations. Runtime simulation on v4.4 (vfs_fsync):";
  let watcher = Pipeline.build_program ds ~build:(Version.v 4 4, Config.x86_generic) (attach_only "fsync_watch" [ "vfs_fsync" ]) in
  (match Pipeline.load_on ds (Version.v 4 4) Config.x86_generic watcher with
  | Ok attachments ->
      let model = Dataset.model ds (Version.v 4 4) Config.x86_generic in
      let r = Runtime.simulate model ~attachments ~expectations:[] ~rounds:100 in
      Runtime.pp_report Format.std_formatter r
  | Error e -> print_endline (Loader.error_to_string e));

  print_endline "\n5. what early detection would have shown (DepSurf's report):";
  let m =
    Pipeline.analyze ds
      ~images:(List.map (fun v -> (v, Config.x86_generic)) Version.all)
      ~baseline:(Version.v 5 15, Config.x86_generic)
      original
  in
  print_string (Report.render_matrix m)
