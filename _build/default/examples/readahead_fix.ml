(* Diagnosing and fixing readahead (paper §3.3, Figure 4-right, and the
   real fix in iovisor/bcc#5086): follow the function's rename/inline
   lineage with DepSurf, then build a portable version that attaches to
   the first available symbol and guards field accesses with
   bpf_core_field_exists.

   Run with: dune exec examples/readahead_fix.exe *)

open Depsurf
open Ds_ksrc
open Ds_bpf

let ds = Pipeline.dataset Calibration.test_scale

let x86_versions = List.map (fun v -> (v, Config.x86_generic)) Version.all

(* The attach-with-fallback pattern: try each candidate in order, exactly
   what the fixed readahead does in C. *)
let attach_with_fallback v candidates =
  let kernel = Dataset.vmlinux ds v Config.x86_generic in
  let rec go = function
    | [] -> Error "all candidates failed"
    | fn :: rest -> (
        let obj =
          Pipeline.build_program ds
            Progbuild.
              {
                sp_tool = "readahead_fixed";
                sp_hooks = [ { hs_hook = Hook.Kprobe fn; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] } ];
              }
        in
        match Loader.load_and_attach kernel obj with
        | Ok _ -> Ok fn
        | Error _ -> go rest)
  in
  go candidates

let () =
  print_endline "== readahead: diagnose, then fix ==\n";
  print_endline "1. the naive tool attaches to __do_page_cache_readahead only:";
  let naive =
    Pipeline.build_program ds ~build:(Version.v 4 4, Config.x86_generic)
      Progbuild.
        {
          sp_tool = "readahead";
          sp_hooks =
            [
              {
                hs_hook = Hook.Kprobe "__do_page_cache_readahead";
                hs_arg_indices = []; hs_kfuncs = [];
                hs_reads = [];
              };
              {
                hs_hook = Hook.Kprobe "__page_cache_alloc";
                hs_arg_indices = []; hs_kfuncs = [];
                hs_reads = [];
              };
            ];
        }
  in
  let m = Pipeline.analyze ds ~images:x86_versions ~baseline:(Version.v 4 4, Config.x86_generic) naive in
  print_string (Report.render_matrix m);

  print_endline "\n2. DepSurf explains each cell:";
  let explain v name =
    let s = Dataset.surface ds v Config.x86_generic in
    match Surface.find_func s name with
    | None -> Printf.printf "  %s %-28s absent\n" (Version.to_string v) name
    | Some fe ->
        Printf.printf "  %s %-28s %s\n" (Version.to_string v) name
          (match Func_status.inline_status fe with
          | Func_status.Fully_inlined -> "fully inlined"
          | Func_status.Selectively_inlined -> "selectively inlined"
          | Func_status.Not_inlined -> "attachable")
  in
  List.iter
    (fun v -> explain v "__do_page_cache_readahead")
    [ Version.v 4 4; Version.v 5 8; Version.v 5 11 ];
  List.iter (fun v -> explain v "do_page_cache_ra") [ Version.v 5 11; Version.v 5 19 ];
  List.iter (fun v -> explain v "page_cache_ra_order") [ Version.v 5 19; Version.v 6 8 ];

  print_endline "\n3. the fixed tool falls back through the lineage:";
  let candidates =
    [ "page_cache_ra_order"; "do_page_cache_ra"; "__do_page_cache_readahead" ]
  in
  List.iter
    (fun v ->
      match attach_with_fallback v candidates with
      | Ok fn -> Printf.printf "  %-8s attached to %s\n" (Version.to_string v) fn
      | Error m -> Printf.printf "  %-8s %s\n" (Version.to_string v) m)
    [ Version.v 4 4; Version.v 4 18; Version.v 5 8; Version.v 5 11; Version.v 5 19; Version.v 6 8 ];

  print_endline "\n4. field accesses guarded with bpf_core_field_exists:";
  let guarded =
    Pipeline.build_program ds
      Progbuild.
        {
          sp_tool = "readahead_guarded";
          sp_hooks =
            [
              {
                hs_hook = Hook.Kprobe "blk_mq_start_request";
                hs_arg_indices = []; hs_kfuncs = [];
                hs_reads =
                  [ { rd_struct = "request"; rd_path = [ "rq_disk" ]; rd_exists_check = true } ];
              };
            ];
        }
  in
  List.iter
    (fun v ->
      match Pipeline.load_on ds v Config.x86_generic guarded with
      | Ok [ a ] ->
          let exists =
            List.find_map
              (function Insn.Mov_imm { dst = 8; imm } -> Some imm | _ -> None)
              a.Loader.at_insns
          in
          Printf.printf "  %-8s loads fine; bpf_core_field_exists(request::rq_disk) = %s\n"
            (Version.to_string v)
            (match exists with Some 1 -> "true" | Some _ -> "false" | None -> "?")
      | Ok _ -> ()
      | Error e -> Printf.printf "  %-8s %s\n" (Version.to_string v) (Loader.error_to_string e))
    [ Version.v 5 4; Version.v 5 15; Version.v 5 19; Version.v 6 8 ];
  print_endline "\nSame binary, every kernel: CO-RE provides the mechanism, DepSurf the map."
