(* Quickstart: the whole DepSurf pipeline in one page.

   1. Generate the synthetic kernel history and compile two images.
   2. Extract their dependency surfaces and diff them.
   3. "Compile" a small eBPF tool, extract its dependency set, and report
      its mismatches across kernel versions.

   Run with: dune exec examples/quickstart.exe *)

open Depsurf
open Ds_ksrc

let () =
  print_endline "== DepSurf quickstart ==\n";
  (* A small-scale dataset keeps this instant; Calibration.bench_scale is
     what the benchmark harness uses. *)
  let ds = Pipeline.dataset Calibration.test_scale in

  (* --- dependency surfaces --------------------------------------- *)
  let s44 = Dataset.surface ds (Version.v 4 4) Config.x86_generic in
  let s54 = Dataset.surface ds (Version.v 5 4) Config.x86_generic in
  let pr_counts s =
    let f, st, tp, sc = Surface.counts s in
    Printf.printf "%-14s %5d funcs  %4d structs  %3d tracepoints  %3d syscalls\n"
      (Surface.tag s) f st tp sc
  in
  pr_counts s44;
  pr_counts s54;

  (* --- diffing ----------------------------------------------------- *)
  let d = Diff.summary Diff.Across_versions s44 s54 in
  Printf.printf
    "\nv4.4 -> v5.4: functions +%.0f%% -%.0f%% changed %.0f%% | structs +%.0f%% -%.0f%% \
     changed %.0f%%\n"
    d.Diff.sum_funcs.Diff.t_added_pct d.Diff.sum_funcs.Diff.t_removed_pct
    d.Diff.sum_funcs.Diff.t_changed_pct d.Diff.sum_structs.Diff.t_added_pct
    d.Diff.sum_structs.Diff.t_removed_pct d.Diff.sum_structs.Diff.t_changed_pct;

  (* --- a little tool ------------------------------------------------ *)
  let obj =
    Pipeline.build_program ds
      Ds_bpf.Progbuild.
        {
          sp_tool = "unlink_snoop";
          sp_hooks =
            [
              {
                hs_hook = Ds_bpf.Hook.Kprobe "do_unlinkat";
                hs_arg_indices = [ 1 ]; hs_kfuncs = [];
                hs_reads =
                  [ { rd_struct = "filename"; rd_path = [ "name" ]; rd_exists_check = false } ];
              };
            ];
        }
  in
  print_endline "\ndependency set of unlink_snoop:";
  List.iter
    (fun dep -> Printf.printf "  %s\n" (Depset.dep_to_string dep))
    (Depset.of_obj obj);

  (* --- the mismatch report ------------------------------------------ *)
  let images = List.map (fun v -> (v, Config.x86_generic)) Version.all in
  let m = Pipeline.analyze ds ~images obj in
  print_endline "";
  print_string (Report.render_matrix m);
  let s = Report.summarize m in
  Printf.printf "\nmismatch-free? %b\n" (Report.clean s)
