(* Auditing a large security tool: the corpus's Tracee stand-in has the
   paper's dependency-set shape (67 functions, ~100 structs, 250 fields,
   13 tracepoints, 446 syscalls). This example runs the full DepSurf
   report over it and highlights the security-specific findings: syscall
   availability per architecture and the 32-bit compat tracing blind spot
   (paper §4.2).

   Run with: dune exec examples/tracee_audit.exe *)

open Depsurf
open Ds_ksrc

let ds = Pipeline.dataset Calibration.test_scale

let () =
  print_endline "== tracee: dependency audit of a security tool ==\n";
  let built = Ds_corpus.Corpus.build_all ds () in
  let _, tracee =
    List.find (fun ((pr : Ds_corpus.Table7.profile), _) -> pr.pr_name = "tracee") built
  in
  let deps = Depset.of_obj tracee in
  let t = Depset.totals deps in
  Printf.printf "dependency set: %d funcs, %d structs, %d fields, %d tracepoints, %d syscalls\n"
    t.Depset.n_funcs t.Depset.n_structs t.Depset.n_fields t.Depset.n_tracepoints
    t.Depset.n_syscalls;

  let m = Pipeline.analyze ds tracee in
  let s = Report.summarize m in
  Printf.printf
    "\nmismatches across the 21 study images:\n\
    \  absent:  %d funcs, %d structs, %d fields, %d tracepoints, %d syscalls\n\
    \  changed: %d funcs, %d fields, %d tracepoints\n\
    \  inline:  %d full, %d selective; %d transformed; %d duplicated\n"
    s.Report.ms_absent.Depset.n_funcs s.Report.ms_absent.Depset.n_structs
    s.Report.ms_absent.Depset.n_fields s.Report.ms_absent.Depset.n_tracepoints
    s.Report.ms_absent.Depset.n_syscalls s.Report.ms_changed.Depset.n_funcs
    s.Report.ms_changed.Depset.n_fields s.Report.ms_changed.Depset.n_tracepoints
    s.Report.ms_full_inline s.Report.ms_selective_inline s.Report.ms_transformed
    s.Report.ms_duplicated;

  (* syscall availability per arch: the evasion surface *)
  print_endline "\nsyscall monitoring coverage at v5.4, by architecture:";
  let sc_deps =
    List.filter_map (function Depset.Dep_syscall s -> Some s | _ -> None) deps
  in
  List.iter
    (fun arch ->
      let s = Dataset.surface ds (Version.v 5 4) Config.{ arch; flavor = Generic } in
      let missing = List.filter (fun sc -> not (Surface.has_syscall s sc)) sc_deps in
      Printf.printf "  %-6s %3d/%d hooked syscalls exist%s%s\n"
        (Config.arch_to_string arch)
        (List.length sc_deps - List.length missing)
        (List.length sc_deps)
        (if missing = [] then "" else "; missing e.g. " ^ String.concat ", " (List.filteri (fun i _ -> i < 4) missing))
        (if s.Surface.s_compat_traceable then "" else "  [32-bit compat calls UNTRACEABLE]"))
    Config.arches;
  print_endline
    "\nA malicious 32-bit process can evade syscall tracing on the architectures\n\
     marked UNTRACEABLE — the paper's \"critical blind spot\" (§4.2)."
