(* The compatibility layer in action (paper §6, "Compatibility layer"):
   one *stable probe name* — "block:io_start" — resolves, per kernel, to
   whatever concrete hook actually works there, so the tool carries no
   version checks at all. The resolved program loads on every one of the
   17 kernels, accumulating its observations into its eBPF map like a
   real frontend would read them.

   Run with: dune exec examples/stable_probes.exe *)

open Depsurf
open Ds_ksrc
open Ds_bpf

let ds = Pipeline.dataset Calibration.test_scale

let () =
  print_endline "== stable probes: the compatibility layer ==\n";
  List.iter
    (fun probe ->
      Printf.printf "%-16s %s\n" probe.Compat.pb_name probe.Compat.pb_doc)
    Compat.default_registry;

  let probe = Option.get (Compat.find_probe "block:io_start") in
  print_endline "\nresolution of block:io_start across the study kernels:";
  List.iter
    (fun v ->
      let surface = Dataset.surface ds v Config.x86_generic in
      let res = Compat.resolve probe surface in
      match res.Compat.rs_hook with
      | None -> Printf.printf "  %-7s UNRESOLVED\n" (Version.to_string v)
      | Some hook ->
          Printf.printf "  %-7s %-36s%s\n" (Version.to_string v) (Hook.to_string hook)
            (match res.Compat.rs_skipped with
            | [] -> ""
            | skipped ->
                Printf.sprintf "  (skipped: %s)"
                  (String.concat "; "
                     (List.map
                        (fun (h, why) -> Printf.sprintf "%s - %s" (Hook.to_string h) why)
                        skipped))))
    Version.all;

  print_endline "\nload + run the resolved program on every kernel:";
  List.iter
    (fun v ->
      let surface = Dataset.surface ds v Config.x86_generic in
      match Compat.spec_of_resolution ~tool:"stable_biotop" (Compat.resolve probe surface) with
      | None -> Printf.printf "  %-7s no viable hook\n" (Version.to_string v)
      | Some spec -> (
          let obj = Pipeline.build_program ds spec in
          match Pipeline.load_on ds v Config.x86_generic obj with
          | Error e -> Printf.printf "  %-7s %s\n" (Version.to_string v) (Loader.error_to_string e)
          | Ok attachments ->
              let events = List.assoc "events" (Loader.instantiate_maps obj) in
              let model = Dataset.model ds v Config.x86_generic in
              let r =
                Runtime.simulate ~events_map:events model ~attachments ~expectations:[]
                  ~rounds:50
              in
              let ps = List.hd r.Runtime.r_per_prog in
              let counted =
                Maps.fold events ~init:0 ~f:(fun _ v acc -> acc + Maps.value_to_int v)
              in
              Printf.printf "  %-7s OK via %-36s events map holds %d hits (missing %d)\n"
                (Version.to_string v)
                (Hook.to_string ps.Runtime.ps_hook)
                counted
                (Runtime.missing_invocations ps)))
    Version.all;
  print_endline
    "\nOne stable name, zero per-tool version checks: the maintenance knowledge\n\
     DepSurf surfaces (Figure 4) lives in the registry instead of in every tool."
