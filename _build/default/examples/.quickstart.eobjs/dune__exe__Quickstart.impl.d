examples/quickstart.ml: Calibration Config Dataset Depset Depsurf Diff Ds_bpf Ds_ksrc List Pipeline Printf Report Surface Version
