examples/inline_tracer.ml: Calibration Config Dataset Depsurf Ds_bpf Ds_kcc Ds_ksrc Hook List Loader Pipeline Printf Progbuild Surface Version
