examples/tracee_audit.mli:
