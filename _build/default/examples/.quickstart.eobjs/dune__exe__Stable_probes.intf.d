examples/stable_probes.mli:
