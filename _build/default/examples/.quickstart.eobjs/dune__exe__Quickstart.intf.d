examples/quickstart.mli:
