examples/readahead_fix.mli:
