examples/biotop_case_study.mli:
