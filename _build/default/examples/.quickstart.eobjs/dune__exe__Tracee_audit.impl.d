examples/tracee_audit.ml: Calibration Config Dataset Depset Depsurf Ds_corpus Ds_ksrc List Pipeline Printf Report String Surface Version
