examples/readahead_fix.ml: Calibration Config Dataset Depsurf Ds_bpf Ds_ksrc Func_status Hook Insn List Loader Pipeline Printf Progbuild Report Surface Version
