examples/biotop_case_study.ml: Calibration Config Dataset Depsurf Ds_bpf Ds_ksrc Format Func_status Hook List Loader Pipeline Printf Progbuild Report Runtime String Surface Version
