examples/stable_probes.ml: Calibration Compat Config Dataset Depsurf Ds_bpf Ds_ksrc Hook List Loader Maps Option Pipeline Printf Runtime String Version
