examples/inline_tracer.mli:
