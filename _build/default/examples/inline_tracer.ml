(* Tracing inlined functions (paper §6, "Function inline", and the
   proof-of-concept in iovisor/bcc#5093): compilers emit a debug entry for
   every inlined instance, so a tracer can place probes at the inlined
   call sites inside the callers' bodies, recovering the invocations a
   plain kprobe misses.

   This example does exactly that against the v5.19 image, where
   blk_account_io_start is fully inlined and unattachable.

   Run with: dune exec examples/inline_tracer.exe *)

open Depsurf
open Ds_ksrc
open Ds_bpf

let ds = Pipeline.dataset Calibration.test_scale
let v = Version.v 5 19
let target = "blk_account_io_start"

let () =
  Printf.printf "== tracing the inlined %s on %s ==\n\n" target (Version.to_string v);
  let kernel = Dataset.vmlinux ds v Config.x86_generic in
  let surface = Dataset.surface ds v Config.x86_generic in

  (* 1. a plain kprobe fails *)
  let obj =
    Pipeline.build_program ds
      Progbuild.
        {
          sp_tool = "plain";
          sp_hooks = [ { hs_hook = Hook.Kprobe target; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] } ];
        }
  in
  (match Loader.load_and_attach kernel obj with
  | Ok _ -> print_endline "plain kprobe: attached (unexpected!)"
  | Error e -> Printf.printf "plain kprobe: %s\n" (Loader.error_to_string e));

  (* 2. the DWARF inlined-subroutine entries know where the body went *)
  match Surface.find_func surface target with
  | None -> print_endline "function not in debug info"
  | Some fe ->
      Printf.printf "\nDWARF records %d inlined instances:\n"
        (List.length fe.Surface.fe_inline_sites);
      List.iter
        (fun site ->
          Printf.printf "  inlined into %-28s (%s) at pc 0x%Lx\n" site.Surface.is_caller
            site.Surface.is_tu site.Surface.is_pc)
        fe.Surface.fe_inline_sites;

      (* 3. place address probes at each inlined call site; callers keep
         standard symbols, so the tracer also verifies each caller is
         itself attachable (otherwise recurse). *)
      print_endline "\nplacing address probes:";
      let placed =
        List.filter_map
          (fun site ->
            match Surface.find_func surface site.Surface.is_caller with
            | Some caller when caller.Surface.fe_symbols <> [] ->
                Printf.printf "  probe at 0x%Lx (inside %s) -- OK\n" site.Surface.is_pc
                  site.Surface.is_caller;
                Some site.Surface.is_pc
            | _ ->
                Printf.printf "  site in %s skipped (caller has no symbol)\n"
                  site.Surface.is_caller;
                None)
          fe.Surface.fe_inline_sites
      in
      (* 4. coverage check against the compiled model's ground truth *)
      let model = Dataset.model ds v Config.x86_generic in
      let total_sites =
        List.fold_left
          (fun acc (i : Ds_kcc.Compile.instance) ->
            if i.Ds_kcc.Compile.i_func.Ds_ksrc.Construct.fn_name = target then
              acc + List.length i.Ds_kcc.Compile.i_sites
            else acc)
          0 model.Ds_kcc.Compile.m_instances
      in
      Printf.printf
        "\ncoverage: %d/%d call sites instrumented (plain kprobe: 0/%d)\n"
        (List.length placed) total_sites total_sites;
      print_endline
        "\nCaveat (paper §6): inlined bodies do not follow the calling convention,\n\
         so argument access at these probes needs DWARF location lists — this is\n\
         the part the BTF/CO-RE ecosystem is still working out (lpc.events 1945)."
