open Depsurf
open Ds_ksrc
open Ds_ctypes

(* A shared dataset at test scale; surfaces are memoized inside. *)
let ds = lazy (Dataset.build ~seed:Testenv.seed Calibration.test_scale)
let surf ?(cfg = Config.x86_generic) v = Dataset.surface (Lazy.force ds) v cfg
let v44 = Version.v 4 4
let v54 = Version.v 5 4
let v519 = Version.v 5 19

(* ------------------------------------------------------------------ *)
(* Surface extraction                                                  *)
(* ------------------------------------------------------------------ *)

let test_surface_identity () =
  let s = surf v54 in
  Alcotest.(check string) "version" "v5.4" (Version.to_string s.Surface.s_version);
  Alcotest.(check bool) "arch" true (s.Surface.s_arch = Config.X86);
  Alcotest.(check bool) "gcc" true (s.Surface.s_gcc = (9, 2));
  let f, st, tp, sc = Surface.counts s in
  Alcotest.(check bool)
    (Printf.sprintf "counts look sane (%d funcs %d structs %d tps %d syscalls)" f st tp sc)
    true
    (f > 100 && st > 50 && tp > 20 && sc > 20)

let test_surface_func_entry () =
  let s = surf v44 in
  let fe = Option.get (Surface.find_func s "vfs_fsync") in
  Alcotest.(check int) "one decl" 1 (List.length fe.Surface.fe_decls);
  Alcotest.(check int) "one symbol" 1 (List.length fe.Surface.fe_symbols);
  Alcotest.(check bool) "selective: inline sites recorded" true
    (fe.Surface.fe_inline_sites <> []);
  Alcotest.(check bool) "direct callers recorded" true (fe.Surface.fe_callers <> []);
  let d = List.hd fe.Surface.fe_decls in
  Alcotest.(check string) "decl file" "fs/sync.c" d.Surface.di_file;
  Alcotest.(check bool) "external" true d.Surface.di_external;
  Alcotest.(check int) "params" 2 (List.length d.Surface.di_proto.Ctype.params)

let test_surface_structs_from_btf () =
  let s = surf v44 in
  let task = Option.get (Surface.find_struct s "task_struct") in
  Alcotest.(check bool) "has pid" true
    (List.exists (fun (f : Decl.field) -> f.fname = "pid") task.Decl.fields);
  Alcotest.(check bool) "event structs excluded" true
    (not
       (List.exists
          (fun (st : Decl.struct_def) ->
            String.starts_with ~prefix:"trace_event_raw_" st.sname)
          s.Surface.s_structs))

let test_surface_tracepoints () =
  let s = surf v44 in
  let tp = Option.get (Surface.find_tracepoint s "sched_switch") in
  Alcotest.(check bool) "event struct resolved" true (tp.Surface.te_event_struct <> None);
  Alcotest.(check bool) "tracing func resolved" true (tp.Surface.te_func <> None);
  (match tp.Surface.te_func with
  | Some f ->
      Alcotest.(check string) "func name" "trace_event_raw_event_sched_switch" f.Decl.fname;
      (* __data plus the two task_struct pointers *)
      Alcotest.(check int) "params" 3 (List.length f.Decl.proto.Ctype.params)
  | None -> ());
  Alcotest.(check bool) "tracing funcs not counted as surface functions" true
    (Surface.find_func s "trace_event_raw_event_sched_switch" = None)

let test_surface_syscalls () =
  let x86 = surf v54 in
  let arm64 = surf ~cfg:Config.{ arch = Arm64; flavor = Generic } v54 in
  Alcotest.(check bool) "x86 open" true (Surface.has_syscall x86 "open");
  Alcotest.(check bool) "arm64 lacks open" false (Surface.has_syscall arm64 "open");
  Alcotest.(check bool) "x86 compat untraceable" false x86.Surface.s_compat_traceable;
  let arm32 = surf ~cfg:Config.{ arch = Arm32; flavor = Generic } v54 in
  Alcotest.(check bool) "arm32 traceable" true arm32.Surface.s_compat_traceable

(* ------------------------------------------------------------------ *)
(* Func status                                                          *)
(* ------------------------------------------------------------------ *)

let test_inline_classification () =
  let s44 = surf v44 and s519 = surf v519 in
  let st name s =
    Func_status.inline_status (Option.get (Surface.find_func s name))
  in
  Alcotest.(check bool) "vfs_fsync selective" true
    (st "vfs_fsync" s44 = Func_status.Selectively_inlined);
  Alcotest.(check bool) "blk_account_io_start not inlined at 4.4" true
    (st "blk_account_io_start" s44 = Func_status.Not_inlined);
  Alcotest.(check bool) "blk_account_io_start fully inlined at 5.19" true
    (st "blk_account_io_start" s519 = Func_status.Fully_inlined)

let test_name_classification () =
  let s = surf v44 in
  let st name = Func_status.name_status (Option.get (Surface.find_func s name)) in
  Alcotest.(check bool) "vfs_fsync unique global" true (st "vfs_fsync" = Func_status.Unique_global);
  Alcotest.(check bool) "destroy_inodecache static-static collision" true
    (st "destroy_inodecache" = Func_status.Static_static_collision);
  Alcotest.(check bool) "get_order duplication" true (st "get_order" = Func_status.Duplication)

let test_censuses () =
  let s = surf v54 in
  let ic = Func_status.inline_census s in
  let full_pct = Ds_util.Stats.percent ic.Func_status.ic_full ic.Func_status.ic_total in
  let sel_pct = Ds_util.Stats.percent ic.Func_status.ic_selective ic.Func_status.ic_total in
  Alcotest.(check bool)
    (Printf.sprintf "full inline near paper's 32-36%% (got %.1f)" full_pct)
    true
    (full_pct > 20. && full_pct < 50.);
  Alcotest.(check bool)
    (Printf.sprintf "selective near paper's 9-11%% (got %.1f)" sel_pct)
    true
    (sel_pct > 4. && sel_pct < 20.);
  let tc = Func_status.transform_census s in
  Alcotest.(check bool) "some transformed" true (tc.Func_status.tc_any > 0);
  let cc = Func_status.collision_census s in
  Alcotest.(check bool) "statics dominate globals (Table 6)" true
    (cc.Func_status.cc_unique_static > cc.Func_status.cc_unique_global);
  Alcotest.(check bool) "collisions are rare" true
    (cc.Func_status.cc_static_static < cc.Func_status.cc_unique_static / 10)

let test_cold_only_on_gcc8 () =
  (* GCC 7.5 built v4.15: no .cold symbols; GCC 8.2 built v4.18: some. *)
  let tc415 = Func_status.transform_census (surf (Version.v 4 15)) in
  let tc418 = Func_status.transform_census (surf (Version.v 4 18)) in
  Alcotest.(check int) "no cold on gcc7" 0 tc415.Func_status.tc_cold;
  Alcotest.(check bool) "cold appears with gcc8" true (tc418.Func_status.tc_cold > 0)

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

let mk_proto ret params =
  Ctype.{ ret; params = List.map (fun (n, t) -> { pname = n; ptype = t }) params; variadic = false }

let test_func_changes_kinds () =
  let base = mk_proto Ctype.int_ [ ("a", Ctype.int_); ("b", Ctype.long) ] in
  Alcotest.(check (list pass)) "no change" [] (Diff.func_changes base base);
  let added = mk_proto Ctype.int_ [ ("a", Ctype.int_); ("b", Ctype.long); ("c", Ctype.uint) ] in
  Alcotest.(check bool) "added" true (Diff.func_changes base added = [ Diff.Param_added "c" ]);
  let removed = mk_proto Ctype.int_ [ ("a", Ctype.int_) ] in
  Alcotest.(check bool) "removed" true (Diff.func_changes base removed = [ Diff.Param_removed "b" ]);
  let front = mk_proto Ctype.int_ [ ("z", Ctype.uint); ("a", Ctype.int_); ("b", Ctype.long) ] in
  let cs = Diff.func_changes base front in
  Alcotest.(check bool) "front insert = added + reordered (vfs_create)" true
    (List.mem (Diff.Param_added "z") cs && List.mem Diff.Param_reordered cs);
  let retype = mk_proto Ctype.int_ [ ("a", Ctype.uint); ("b", Ctype.long) ] in
  (match Diff.func_changes base retype with
  | [ Diff.Param_type_changed ("a", _, _) ] -> ()
  | _ -> Alcotest.fail "expected type change");
  let ret = mk_proto Ctype.long [ ("a", Ctype.int_); ("b", Ctype.long) ] in
  (match Diff.func_changes base ret with
  | [ Diff.Return_type_changed _ ] -> ()
  | _ -> Alcotest.fail "expected return change");
  let swap = mk_proto Ctype.int_ [ ("b", Ctype.long); ("a", Ctype.int_) ] in
  Alcotest.(check bool) "swap = reordered" true (List.mem Diff.Param_reordered (Diff.func_changes base swap))

let test_change_is_silent () =
  Alcotest.(check bool) "add silent" true (Diff.change_is_silent (Diff.Param_added "x"));
  Alcotest.(check bool) "compatible retype silent" true
    (Diff.change_is_silent (Diff.Param_type_changed ("x", Ctype.int_, Ctype.uint)));
  Alcotest.(check bool) "incompatible retype loud" false
    (Diff.change_is_silent (Diff.Param_type_changed ("x", Ctype.int_, Ctype.void_ptr)))

let test_diff_self_empty () =
  let s = surf v54 in
  let d = Diff.compare_surfaces Diff.Across_versions s s in
  Alcotest.(check (list string)) "no funcs added" [] d.Diff.df_funcs.Diff.d_added;
  Alcotest.(check (list string)) "no funcs removed" [] d.Diff.df_funcs.Diff.d_removed;
  Alcotest.(check int) "no funcs changed" 0 (List.length d.Diff.df_funcs.Diff.d_changed);
  Alcotest.(check int) "no structs changed" 0 (List.length d.Diff.df_structs.Diff.d_changed);
  Alcotest.(check int) "no tps changed" 0 (List.length d.Diff.df_tracepoints.Diff.d_changed)

let test_diff_symmetry () =
  let a = surf v44 and b = surf (Version.v 4 8) in
  let ab = Diff.compare_surfaces Diff.Across_versions a b in
  let ba = Diff.compare_surfaces Diff.Across_versions b a in
  let sort = List.sort compare in
  Alcotest.(check (list string)) "added(a,b) = removed(b,a)"
    (sort ab.Diff.df_funcs.Diff.d_added)
    (sort ba.Diff.df_funcs.Diff.d_removed);
  Alcotest.(check (list string)) "removed(a,b) = added(b,a)"
    (sort ab.Diff.df_funcs.Diff.d_removed)
    (sort ba.Diff.df_funcs.Diff.d_added);
  Alcotest.(check int) "changed counts agree"
    (List.length ab.Diff.df_funcs.Diff.d_changed)
    (List.length ba.Diff.df_funcs.Diff.d_changed)

let test_diff_finds_scripted_changes () =
  let d =
    Diff.compare_surfaces Diff.Across_versions (surf (Version.v 5 4)) (surf (Version.v 5 8))
  in
  (match List.assoc_opt "blk_account_io_start" d.Diff.df_funcs.Diff.d_changed with
  | Some cs ->
      Alcotest.(check bool) "param removed detected" true
        (List.mem (Diff.Param_removed "new_io") cs)
  | None -> Alcotest.fail "blk_account_io_start change not detected");
  let d1113 =
    Diff.compare_surfaces Diff.Across_versions (surf (Version.v 5 8)) (surf (Version.v 5 11))
  in
  Alcotest.(check bool) "rename detected as remove+add" true
    (List.mem "__do_page_cache_readahead" d1113.Diff.df_funcs.Diff.d_removed
    && List.mem "do_page_cache_ra" d1113.Diff.df_funcs.Diff.d_added)

let test_diff_tracepoint_change () =
  let d =
    Diff.compare_surfaces Diff.Across_versions (surf (Version.v 5 8)) (surf (Version.v 5 11))
  in
  match List.assoc_opt "block_rq_issue" d.Diff.df_tracepoints.Diff.d_changed with
  | Some cs ->
      Alcotest.(check bool) "a54895f: tracing func changed" true
        (List.exists (function Diff.Tracing_func_changed _ -> true | _ -> false) cs)
  | None -> Alcotest.fail "block_rq_issue change not detected"

let test_diff_rates_plausible () =
  (* the calibrated Table 3 shape: the 4.4 -> 4.8 release *)
  let s = Diff.summary Diff.Across_versions (surf v44) (surf (Version.v 4 8)) in
  Alcotest.(check bool)
    (Printf.sprintf "func add %.1f%%" s.Diff.sum_funcs.Diff.t_added_pct)
    true
    (s.Diff.sum_funcs.Diff.t_added_pct > 2. && s.Diff.sum_funcs.Diff.t_added_pct < 16.);
  Alcotest.(check bool)
    (Printf.sprintf "func rm %.1f%%" s.Diff.sum_funcs.Diff.t_removed_pct)
    true
    (s.Diff.sum_funcs.Diff.t_removed_pct > 0.5 && s.Diff.sum_funcs.Diff.t_removed_pct < 8.);
  Alcotest.(check bool)
    (Printf.sprintf "struct ch %.1f%%" s.Diff.sum_structs.Diff.t_changed_pct)
    true
    (s.Diff.sum_structs.Diff.t_changed_pct > 2. && s.Diff.sum_structs.Diff.t_changed_pct < 20.)

let test_config_diff_normalizes_abi () =
  (* arm32 halves pointers; across-configs comparison must not flag every
     pointer-bearing struct as changed. *)
  let x86 = surf v54 and arm32 = surf ~cfg:Config.{ arch = Arm32; flavor = Generic } v54 in
  let d = Diff.compare_surfaces Diff.Across_configs x86 arm32 in
  let _, st_x86, _, _ = Surface.counts x86 in
  let changed = List.length d.Diff.df_structs.Diff.d_changed in
  Alcotest.(check bool)
    (Printf.sprintf "few structs changed across configs (%d of %d)" changed st_x86)
    true
    (Ds_util.Stats.percent changed st_x86 < 10.);
  Alcotest.(check bool) "pt_regs differs across arches" true
    (List.mem_assoc "pt_regs" d.Diff.df_structs.Diff.d_changed)

let test_breakdown () =
  let d = Diff.compare_surfaces Diff.Across_versions (surf v44) (surf (Version.v 4 15)) in
  let fb, sb, tb = Diff.breakdown d in
  Alcotest.(check bool) "funcs changed" true (fb.Diff.fb_changed > 0);
  Alcotest.(check bool) "adds dominate (Table 4)" true
    (fb.Diff.fb_param_added >= fb.Diff.fb_param_reordered);
  Alcotest.(check bool) "structs changed" true (sb.Diff.sb_changed > 0);
  Alcotest.(check bool) "field adds dominate" true
    (sb.Diff.sb_field_added >= sb.Diff.sb_field_type / 2);
  Alcotest.(check bool) "tp events change more than funcs (Table 4)" true
    (tb.Diff.tb_event >= tb.Diff.tb_func)

(* ------------------------------------------------------------------ *)
(* Depset + report                                                     *)
(* ------------------------------------------------------------------ *)

let biotop_obj =
  lazy
    (Pipeline.build_program (Lazy.force ds)
       ~build:(v54, Config.x86_generic)
       Ds_bpf.Progbuild.
         {
           sp_tool = "biotop";
           sp_hooks =
             [
               {
                 hs_hook = Ds_bpf.Hook.Kprobe "blk_account_io_start";
                 hs_arg_indices = [ 0 ]; hs_kfuncs = [];
                 hs_reads =
                   [
                     { rd_struct = "request"; rd_path = [ "__sector" ]; rd_exists_check = false };
                     {
                       rd_struct = "request";
                       rd_path = [ "rq_disk"; "major" ];
                       rd_exists_check = false;
                     };
                   ];
               };
               {
                 hs_hook = Ds_bpf.Hook.Kprobe "blk_account_io_done";
                 hs_arg_indices = [ 0 ]; hs_kfuncs = [];
                 hs_reads = [];
               };
               {
                 hs_hook = Ds_bpf.Hook.Kprobe "blk_mq_start_request";
                 hs_arg_indices = []; hs_kfuncs = [];
                 hs_reads = [];
               };
             ];
         })

let test_depset_extraction () =
  let deps = Depset.of_obj (Lazy.force biotop_obj) in
  let has d = List.mem d deps in
  Alcotest.(check bool) "func dep" true (has (Depset.Dep_func "blk_account_io_start"));
  Alcotest.(check bool) "struct dep" true (has (Depset.Dep_struct "request"));
  Alcotest.(check bool) "field dep" true (has (Depset.Dep_field ("request", "__sector")));
  Alcotest.(check bool) "chain intermediate struct" true (has (Depset.Dep_struct "gendisk"));
  Alcotest.(check bool) "chain final field" true (has (Depset.Dep_field ("gendisk", "major")));
  Alcotest.(check bool) "pt_regs recorded" true (has (Depset.Dep_struct "pt_regs"));
  let t = Depset.totals deps in
  Alcotest.(check int) "3 funcs" 3 t.Depset.n_funcs

let test_statuses_biotop_lineage () =
  let baseline = surf v54 in
  let dep = Depset.Dep_func "blk_account_io_start" in
  let st v = Report.worst (Report.statuses ~baseline ~target:(surf v) dep) in
  Alcotest.(check string) "ok at 5.4" "." (Report.status_letter (st v54));
  Alcotest.(check string) "same decl at 4.4" "." (Report.status_letter (st v44));
  Alcotest.(check string) "changed at 5.8 (b5af37a dropped new_io)" "C"
    (Report.status_letter (st (Version.v 5 8)));
  Alcotest.(check string) "still changed at 5.15" "C"
    (Report.status_letter (st (Version.v 5 15)));
  Alcotest.(check string) "full inline at 5.19" "F" (Report.status_letter (st v519));
  let tp_dep = Depset.Dep_tracepoint "block_io_start" in
  Alcotest.(check string) "tracepoint absent before 6.5" "x"
    (Report.status_letter (Report.worst (Report.statuses ~baseline ~target:(surf v519) tp_dep)));
  Alcotest.(check string) "tracepoint present at 6.8" "."
    (Report.status_letter
       (Report.worst (Report.statuses ~baseline ~target:(surf (Version.v 6 8)) tp_dep)))

let test_statuses_fields () =
  let baseline = surf v54 in
  let dep = Depset.Dep_field ("request", "rq_disk") in
  let letter v = Report.status_letter (Report.worst (Report.statuses ~baseline ~target:(surf v) dep)) in
  Alcotest.(check string) "present at 5.15" "." (letter (Version.v 5 15));
  Alcotest.(check string) "absent at 5.19" "x" (letter v519);
  let state = Depset.Dep_field ("task_struct", "utime") in
  Alcotest.(check string) "utime type changed vs 4.4 baseline" "C"
    (Report.status_letter
       (Report.worst (Report.statuses ~baseline:(surf v44) ~target:(surf v54) state)))

let test_matrix_and_summary () =
  let m = Pipeline.analyze (Lazy.force ds) (Lazy.force biotop_obj) in
  Alcotest.(check int) "21 images per row" 21
    (List.length (List.hd m.Report.m_rows).Report.r_cells);
  let rendered = Report.render_matrix m in
  Alcotest.(check bool) "render mentions tool" true
    (String.length rendered > 0
    &&
    let re = "biotop" in
    let rec go i =
      i + String.length re <= String.length rendered
      && (String.sub rendered i (String.length re) = re || go (i + 1))
    in
    go 0);
  let s = Report.summarize m in
  Alcotest.(check bool) "not clean" false (Report.clean s);
  Alcotest.(check int) "3 funcs total" 3 s.Report.ms_total.Depset.n_funcs;
  Alcotest.(check bool) "full inline seen" true (s.Report.ms_full_inline >= 1);
  Alcotest.(check bool) "some field absent somewhere" true
    (s.Report.ms_absent.Depset.n_fields >= 1)

let test_clean_program () =
  (* a program with a single rock-stable dependency *)
  let obj =
    Pipeline.build_program (Lazy.force ds)
      Ds_bpf.Progbuild.
        {
          sp_tool = "stable_watcher";
          sp_hooks =
            [
              {
                hs_hook = Ds_bpf.Hook.Kprobe "blk_mq_start_request";
                hs_arg_indices = []; hs_kfuncs = [];
                hs_reads = [];
              };
            ];
        }
  in
  let m =
    Pipeline.analyze (Lazy.force ds)
      ~images:(List.map (fun v -> (v, Config.x86_generic)) Version.all)
      obj
  in
  Alcotest.(check bool) "clean across x86 versions" true (Report.clean (Report.summarize m))

let test_consequences_taxonomy () =
  let open Report in
  Alcotest.(check bool) "func absent -> attach error" true
    (consequence_of (Depset.Dep_func "f") St_absent = [ Attachment_error ]);
  Alcotest.(check bool) "field absent -> CE + reloc" true
    (consequence_of (Depset.Dep_field ("s", "f")) St_absent
    = [ Compilation_error; Relocation_error ]);
  Alcotest.(check bool) "selective -> missing invocation" true
    (consequence_of (Depset.Dep_func "f") St_selective_inline = [ Missing_invocation ]);
  Alcotest.(check bool) "implication mapping" true
    (implication_of Stray_read = Incorrect_result
    && implication_of Missing_invocation = Incomplete_result
    && implication_of Attachment_error = Explicit_error)

(* property: the differ detects every mutation the generator can plant *)
let qcheck_mutation_always_detected =
  QCheck.Test.make ~name:"every generated proto mutation is detected" ~count:200
    QCheck.(int_range 0 1000)
    (fun seed ->
      let ctx = Genpool.create ~seed:(Int64.of_int seed) Calibration.test_scale in
      let proto =
        Ctype.
          {
            ret = int_;
            params =
              [ { pname = "a"; ptype = int_ }; { pname = "b"; ptype = Ptr (Struct_ref "file") } ];
            variadic = false;
          }
      in
      let proto' = Genpool.mutate_proto ctx proto in
      Diff.func_changes proto proto' <> [])

(* property: statuses is deterministic and worst is stable *)
let qcheck_worst_dominates =
  QCheck.Test.make ~name:"worst status is at least as severe as members" ~count:200
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 5)
        (oneofl
           Report.
             [
               St_ok; St_absent; St_changed [ "x" ]; St_full_inline; St_selective_inline;
               St_transformed; St_duplicated; St_collision;
             ]))
    (fun statuses ->
      let w = Report.worst statuses in
      List.mem w statuses)

let suites =
  [
    ( "depsurf.surface",
      [
        Alcotest.test_case "identity" `Quick test_surface_identity;
        Alcotest.test_case "func entry" `Quick test_surface_func_entry;
        Alcotest.test_case "structs from BTF" `Quick test_surface_structs_from_btf;
        Alcotest.test_case "tracepoints" `Quick test_surface_tracepoints;
        Alcotest.test_case "syscalls per arch" `Quick test_surface_syscalls;
      ] );
    ( "depsurf.func_status",
      [
        Alcotest.test_case "inline classification" `Quick test_inline_classification;
        Alcotest.test_case "name classification" `Quick test_name_classification;
        Alcotest.test_case "censuses" `Quick test_censuses;
        Alcotest.test_case "cold only on gcc>=8" `Quick test_cold_only_on_gcc8;
      ] );
    ( "depsurf.diff",
      [
        Alcotest.test_case "func change kinds" `Quick test_func_changes_kinds;
        Alcotest.test_case "silent changes" `Quick test_change_is_silent;
        Alcotest.test_case "self diff empty" `Quick test_diff_self_empty;
        Alcotest.test_case "symmetry" `Quick test_diff_symmetry;
        Alcotest.test_case "scripted changes found" `Quick test_diff_finds_scripted_changes;
        Alcotest.test_case "tracepoint change found" `Quick test_diff_tracepoint_change;
        Alcotest.test_case "rates plausible" `Quick test_diff_rates_plausible;
        Alcotest.test_case "config diff normalizes ABI" `Quick test_config_diff_normalizes_abi;
        Alcotest.test_case "breakdown" `Quick test_breakdown;
      ] );
    ( "depsurf.report",
      [
        Alcotest.test_case "depset extraction" `Quick test_depset_extraction;
        Alcotest.test_case "biotop lineage statuses" `Quick test_statuses_biotop_lineage;
        Alcotest.test_case "field statuses" `Quick test_statuses_fields;
        Alcotest.test_case "matrix + summary" `Quick test_matrix_and_summary;
        Alcotest.test_case "clean program" `Quick test_clean_program;
        Alcotest.test_case "consequences taxonomy" `Quick test_consequences_taxonomy;
        QCheck_alcotest.to_alcotest qcheck_worst_dominates;
        QCheck_alcotest.to_alcotest qcheck_mutation_always_detected;
      ] );
  ]
