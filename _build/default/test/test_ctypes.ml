open Ds_ctypes

let tenv () =
  let env = Decl.empty_env ~ptr_size:8 in
  List.fold_left Decl.add_typedef env Decl.default_typedefs

let test_to_string () =
  Alcotest.(check string) "ptr" "struct file *" Ctype.(to_string (Ptr (Struct_ref "file")));
  Alcotest.(check string) "const ptr" "const char *" Ctype.(to_string (Ptr (Const char_)));
  Alcotest.(check string) "array" "int[4]" Ctype.(to_string (Array (int_, 4)));
  let proto =
    Ctype.
      {
        ret = int_;
        params =
          [
            { pname = "file"; ptype = Ptr (Struct_ref "file") };
            { pname = "datasync"; ptype = int_ };
          ];
        variadic = false;
      }
  in
  Alcotest.(check string) "proto" "int vfs_fsync(struct file * file, int datasync)"
    (Ctype.proto_to_string ~name:"vfs_fsync" proto)

let test_equal () =
  Alcotest.(check bool) "int = int" true Ctype.(equal int_ int_);
  Alcotest.(check bool) "int <> uint" false Ctype.(equal int_ uint);
  Alcotest.(check bool) "nested ptr" true Ctype.(equal (Ptr (Ptr Void)) (Ptr (Ptr Void)));
  Alcotest.(check bool) "array len matters" false Ctype.(equal (Array (int_, 3)) (Array (int_, 4)))

let test_compatible () =
  Alcotest.(check bool) "same" true Ctype.(compatible int_ int_);
  Alcotest.(check bool) "int/uint same width" true Ctype.(compatible int_ uint);
  Alcotest.(check bool) "cputime->u64 not (typedef vs typedef widths)" true
    Ctype.(compatible u64 ulong);
  Alcotest.(check bool) "int vs long" false Ctype.(compatible int_ long);
  Alcotest.(check bool) "const stripped" true Ctype.(compatible (Const int_) uint);
  Alcotest.(check bool) "ptr vs int" false Ctype.(compatible (Ptr Void) int_)

let test_strip_quals () =
  Alcotest.(check bool) "strip" true
    Ctype.(equal (strip_quals (Const (Volatile int_))) int_)

let test_size_align () =
  let env = tenv () in
  Alcotest.(check int) "int" 4 (Decl.size_of env Ctype.int_);
  Alcotest.(check int) "ptr" 8 (Decl.size_of env Ctype.void_ptr);
  Alcotest.(check int) "u64 typedef" 8 (Decl.size_of env Ctype.u64);
  Alcotest.(check int) "array" 16 (Decl.size_of env (Ctype.Array (Ctype.int_, 4)));
  Alcotest.(check int) "align int" 4 (Decl.align_of env Ctype.int_);
  Alcotest.(check int) "align char" 1 (Decl.align_of env Ctype.char_)

let test_layout_struct () =
  let env = tenv () in
  let s =
    Decl.layout_struct env ~name:"mix" ~kind:`Struct
      [ ("c", Ctype.char_); ("x", Ctype.u64); ("y", Ctype.int_) ]
  in
  let offs = List.map (fun (f : Decl.field) -> f.bits_offset) s.fields in
  Alcotest.(check (list int)) "offsets with padding" [ 0; 64; 128 ] offs;
  Alcotest.(check int) "size rounds to align" 24 s.byte_size

let test_layout_union () =
  let env = tenv () in
  let s =
    Decl.layout_struct env ~name:"u" ~kind:`Union
      [ ("a", Ctype.char_); ("b", Ctype.u64) ]
  in
  Alcotest.(check int) "size = max member" 8 s.byte_size;
  List.iter
    (fun (f : Decl.field) -> Alcotest.(check int) "all at 0" 0 f.bits_offset)
    s.fields

let test_layout_ptr32 () =
  (* arm32: pointers are 4 bytes, so layouts differ between architectures,
     which is what makes struct definitions config-dependent. *)
  let env32 = List.fold_left Decl.add_typedef (Decl.empty_env ~ptr_size:4) Decl.default_typedefs in
  let s =
    Decl.layout_struct env32 ~name:"p" ~kind:`Struct
      [ ("p", Ctype.void_ptr); ("q", Ctype.void_ptr) ]
  in
  Alcotest.(check int) "two 4-byte pointers" 8 s.byte_size

let test_nested_struct_size () =
  let env = tenv () in
  let inner =
    Decl.layout_struct env ~name:"inner" ~kind:`Struct
      [ ("a", Ctype.int_); ("b", Ctype.int_) ]
  in
  let env = Decl.add_struct env inner in
  let outer =
    Decl.layout_struct env ~name:"outer" ~kind:`Struct
      [ ("i", Ctype.Struct_ref "inner"); ("c", Ctype.char_) ]
  in
  Alcotest.(check int) "inner size" 8 inner.byte_size;
  Alcotest.(check int) "outer size" 12 outer.byte_size

let test_dangling_ref () =
  let env = tenv () in
  Alcotest.check_raises "dangling struct" Not_found (fun () ->
      ignore (Decl.size_of env (Ctype.Struct_ref "no_such")))

let test_env_lookup () =
  let env = tenv () in
  let s = Decl.layout_struct env ~name:"s" ~kind:`Struct [ ("x", Ctype.int_) ] in
  let env = Decl.add_struct env s in
  Alcotest.(check bool) "found" true (Decl.find_struct env "s" <> None);
  Alcotest.(check bool) "absent" true (Decl.find_struct env "t" = None);
  Alcotest.(check bool) "typedefs listed" true (List.length (Decl.typedefs env) > 10)

let test_equal_struct () =
  let env = tenv () in
  let a = Decl.layout_struct env ~name:"s" ~kind:`Struct [ ("x", Ctype.int_) ] in
  let b = Decl.layout_struct env ~name:"s" ~kind:`Struct [ ("x", Ctype.uint) ] in
  Alcotest.(check bool) "same" true (Decl.equal_struct a a);
  Alcotest.(check bool) "field type differs" false (Decl.equal_struct a b)

(* Random type generator for property tests. *)
let rec gen_ctype depth st =
  let open QCheck.Gen in
  if depth = 0 then
    oneofl
      Ctype.[ int_; uint; long; char_; u64; u32; Void; Struct_ref "task_struct" ]
      st
  else
    frequency
      [
        (3, map (fun t -> Ctype.Ptr t) (gen_ctype (depth - 1)));
        (1, map (fun t -> Ctype.Const t) (gen_ctype (depth - 1)));
        (1, map2 (fun t n -> Ctype.Array (t, n)) (gen_ctype (depth - 1)) (int_range 1 8));
        (3, gen_ctype 0);
      ]
      st

let arb_ctype = QCheck.make (gen_ctype 3) ~print:Ctype.to_string

let qcheck_equal_refl =
  QCheck.Test.make ~name:"ctype equal reflexive" ~count:200 arb_ctype (fun t ->
      Ctype.equal t t)

let qcheck_compat_refl =
  QCheck.Test.make ~name:"ctype compatible reflexive" ~count:200 arb_ctype (fun t ->
      Ctype.compatible t t)

let qcheck_layout_monotone =
  QCheck.Test.make ~name:"struct layout offsets strictly increase" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) arb_ctype)
    (fun types ->
      let env = tenv () in
      let env =
        Decl.add_struct env
          (Decl.layout_struct env ~name:"task_struct" ~kind:`Struct [ ("pid", Ctype.int_) ])
      in
      let members = List.mapi (fun i t -> (Printf.sprintf "f%d" i, t)) types in
      let s = Decl.layout_struct env ~name:"r" ~kind:`Struct members in
      let rec mono = function
        | (a : Decl.field) :: (b : Decl.field) :: rest ->
            a.bits_offset < b.bits_offset && mono (b :: rest)
        | _ -> true
      in
      mono s.fields
      && s.byte_size * 8
         >= List.fold_left
              (fun acc (f : Decl.field) ->
                max acc (f.bits_offset + (8 * Decl.size_of env f.ftype)))
              0 s.fields)

let suites =
  [
    ( "ctypes",
      [
        Alcotest.test_case "to_string" `Quick test_to_string;
        Alcotest.test_case "equal" `Quick test_equal;
        Alcotest.test_case "compatible" `Quick test_compatible;
        Alcotest.test_case "strip_quals" `Quick test_strip_quals;
        Alcotest.test_case "size/align" `Quick test_size_align;
        Alcotest.test_case "layout struct" `Quick test_layout_struct;
        Alcotest.test_case "layout union" `Quick test_layout_union;
        Alcotest.test_case "layout 32-bit" `Quick test_layout_ptr32;
        Alcotest.test_case "nested struct size" `Quick test_nested_struct_size;
        Alcotest.test_case "dangling ref" `Quick test_dangling_ref;
        Alcotest.test_case "env lookup" `Quick test_env_lookup;
        Alcotest.test_case "equal_struct" `Quick test_equal_struct;
        QCheck_alcotest.to_alcotest qcheck_equal_refl;
        QCheck_alcotest.to_alcotest qcheck_compat_refl;
        QCheck_alcotest.to_alcotest qcheck_layout_monotone;
      ] );
  ]
