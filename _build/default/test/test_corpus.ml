open Ds_corpus
open Ds_ksrc
open Depsurf

let ds = lazy (Dataset.build ~seed:Testenv.seed Calibration.test_scale)
let pools = lazy (Pools.compute (Lazy.force ds) ())

let test_table7_shape () =
  Alcotest.(check int) "53 programs" 53 (List.length Table7.programs);
  Alcotest.(check int) "9 clean programs" 9
    (List.length (List.filter (fun p -> p.Table7.pr_clean) Table7.programs));
  let tracee = Option.get (Table7.find "tracee") in
  let fn, _, _, _, _, _, _ = tracee.Table7.pr_counts.Table7.c_fn in
  Alcotest.(check int) "tracee 67 funcs" 67 fn;
  let sc, sc_absent = tracee.Table7.pr_counts.Table7.c_sc in
  Alcotest.(check int) "tracee 446 syscalls" 446 sc;
  Alcotest.(check int) "tracee 202 absent syscalls" 202 sc_absent;
  Alcotest.(check bool) "biotop present" true (Table7.find "biotop" <> None);
  Alcotest.(check bool) "unknown absent" true (Table7.find "nosuchtool" = None)

let test_pools_nonempty () =
  let sizes = Pools.pool_sizes (Lazy.force pools) in
  let get n = List.assoc n sizes in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " non-empty") true (get n > 0))
    [
      "fn_stable"; "fn_absent"; "fn_changed"; "fn_full"; "fn_selective"; "fn_transformed";
      "fld_stable"; "fld_absent"; "fld_changed"; "tp_stable"; "tp_absent"; "tp_changed";
      "sc_stable"; "sc_absent";
    ]

let test_pool_draws () =
  let p = Lazy.force pools in
  let a = Pools.take_funcs p `Stable 3 in
  let b = Pools.take_funcs p `Stable 3 in
  Alcotest.(check int) "draw size" 3 (List.length a);
  Alcotest.(check bool) "cursor advances" true (a <> b)

let test_spec_for_biotop () =
  let pr = Option.get (Table7.find "biotop") in
  let spec = Corpus.spec_for (Lazy.force pools) pr in
  let hook_names =
    List.filter_map
      (fun h -> Ds_bpf.Hook.target_function h.Ds_bpf.Progbuild.hs_hook)
      spec.Ds_bpf.Progbuild.sp_hooks
  in
  Alcotest.(check int) "5 kprobe hooks" 5 (List.length hook_names);
  Alcotest.(check bool) "pinned blk_account_io_start" true
    (List.mem "blk_account_io_start" hook_names);
  let tp_names =
    List.filter_map
      (fun h -> Ds_bpf.Hook.target_tracepoint h.Ds_bpf.Progbuild.hs_hook)
      spec.Ds_bpf.Progbuild.sp_hooks
  in
  Alcotest.(check (list string)) "pinned tracepoints" [ "block_io_start"; "block_io_done" ]
    tp_names

let built = lazy (Corpus.build_all (Lazy.force ds) ())

let test_build_all () =
  let objs = Lazy.force built in
  Alcotest.(check int) "53 objects" 53 (List.length objs);
  List.iter
    (fun ((pr : Table7.profile), (obj : Ds_bpf.Obj.t)) ->
      Alcotest.(check string) "name matches" pr.Table7.pr_name obj.Ds_bpf.Obj.o_name;
      Alcotest.(check bool) (pr.Table7.pr_name ^ " has programs") true
        (obj.Ds_bpf.Obj.o_progs <> []))
    objs

let test_depset_sizes_match_table7 () =
  (* dependency-set sizes should track the paper's Σ columns (pool
     exhaustion can cap very large draws at test scale) *)
  List.iter
    (fun ((pr : Table7.profile), obj) ->
      let t = Depset.totals (Depset.of_obj obj) in
      let fn, _, _, _, _, _, _ = pr.Table7.pr_counts.Table7.c_fn in
      let tp, _, _ = pr.Table7.pr_counts.Table7.c_tp in
      Alcotest.(check int) (pr.Table7.pr_name ^ " funcs") fn t.Depset.n_funcs;
      Alcotest.(check bool)
        (Printf.sprintf "%s tps (want %d got %d)" pr.Table7.pr_name tp t.Depset.n_tracepoints)
        true
        (t.Depset.n_tracepoints <= tp && t.Depset.n_tracepoints >= min tp 1 - 1))
    (Lazy.force built)

let test_verifier_accepts_corpus () =
  List.iter
    (fun ((pr : Table7.profile), (obj : Ds_bpf.Obj.t)) ->
      List.iter
        (fun (p : Ds_bpf.Obj.prog) ->
          match Ds_bpf.Verifier.verify p.Ds_bpf.Obj.p_insns with
          | Ok () -> ()
          | Error { Ds_bpf.Verifier.ve_insn; ve_msg } ->
              Alcotest.fail
                (Printf.sprintf "%s/%s: insn %d: %s" pr.Table7.pr_name p.Ds_bpf.Obj.p_name
                   ve_insn ve_msg))
        obj.Ds_bpf.Obj.o_progs)
    (Lazy.force built)

let test_analysis_shape () =
  let results = Corpus.analyze_all (Lazy.force ds) (Lazy.force built) in
  Alcotest.(check int) "53 analyzed" 53 (List.length results);
  (* clean programs must be clean; the overall impact rate should be high
     (the paper reports 83%) *)
  List.iter
    (fun ((pr : Table7.profile), summary) ->
      if pr.Table7.pr_clean then
        Alcotest.(check bool) (pr.Table7.pr_name ^ " clean") true (Report.clean summary))
    results;
  let impacted =
    List.length (List.filter (fun (_, s) -> not (Report.clean s)) results)
  in
  let pct = Ds_util.Stats.percent impacted 53 in
  Alcotest.(check bool) (Printf.sprintf "impact rate %.0f%% (paper: 83%%)" pct) true
    (pct > 60. && pct <= 92.);
  (* biotop reproduces its Figure 4 profile *)
  let _, biotop = List.find (fun ((pr : Table7.profile), _) -> pr.Table7.pr_name = "biotop") results in
  Alcotest.(check bool) "biotop sees full inline" true (biotop.Report.ms_full_inline >= 1);
  Alcotest.(check bool) "biotop sees absent tracepoints" true
    (biotop.Report.ms_absent.Depset.n_tracepoints >= 1)

let test_loader_never_crashes_on_corpus () =
  (* robustness sweep: all 53 objects x all 21 study images; the loader
     must always produce a Result, never an exception *)
  let d = Lazy.force ds in
  List.iter
    (fun ((pr : Table7.profile), obj) ->
      List.iter
        (fun (v, cfg) ->
          match Depsurf.Pipeline.load_on d v cfg obj with
          | Ok _ | Error _ -> ()
          | exception e ->
              Alcotest.fail
                (Printf.sprintf "%s on %s %s: %s" pr.Table7.pr_name (Version.to_string v)
                   (Config.to_string cfg) (Printexc.to_string e)))
        Depsurf.Dataset.fig4_images)
    (Lazy.force built)

let test_corpus_deterministic () =
  let d1 = Depsurf.Dataset.build ~seed:Testenv.seed Calibration.test_scale in
  let d2 = Depsurf.Dataset.build ~seed:Testenv.seed Calibration.test_scale in
  let bytes ds = List.map (fun (_, obj) -> Ds_bpf.Obj.write obj) (Corpus.build_all ds ()) in
  List.iter2
    (fun a b -> Alcotest.(check bool) "identical object bytes" true (String.equal a b))
    (bytes d1) (bytes d2)

let suites =
  [
    ( "corpus",
      [
        Alcotest.test_case "table7 shape" `Quick test_table7_shape;
        Alcotest.test_case "pools non-empty" `Quick test_pools_nonempty;
        Alcotest.test_case "pool draws" `Quick test_pool_draws;
        Alcotest.test_case "biotop spec" `Quick test_spec_for_biotop;
        Alcotest.test_case "build all 53" `Quick test_build_all;
        Alcotest.test_case "depset sizes" `Quick test_depset_sizes_match_table7;
        Alcotest.test_case "verifier accepts corpus" `Quick test_verifier_accepts_corpus;
        Alcotest.test_case "analysis shape" `Quick test_analysis_shape;
        Alcotest.test_case "loader robustness sweep" `Slow test_loader_never_crashes_on_corpus;
        Alcotest.test_case "deterministic corpus" `Quick test_corpus_deterministic;
      ] );
  ]
