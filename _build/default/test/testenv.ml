(* Shared, lazily-built fixtures so every suite reuses one kernel history
   and one set of compiled images. *)

open Ds_ksrc

let seed = 42L
let history = lazy (Evolution.build_history ~seed Calibration.test_scale)
let source_at v = List.assoc v (Lazy.force history)

let image_cache : (string, Ds_elf.Elf.t) Hashtbl.t = Hashtbl.create 16

let image ?(cfg = Config.x86_generic) v =
  let key = Version.to_string v ^ "/" ^ Config.to_string cfg in
  match Hashtbl.find_opt image_cache key with
  | Some img -> img
  | None ->
      let img = Ds_kcc.Emit.build_image (source_at v) cfg in
      Hashtbl.replace image_cache key img;
      img

let model_cache : (string, Ds_kcc.Compile.model) Hashtbl.t = Hashtbl.create 16

let model ?(cfg = Config.x86_generic) v =
  let key = Version.to_string v ^ "/" ^ Config.to_string cfg in
  match Hashtbl.find_opt model_cache key with
  | Some m -> m
  | None ->
      let m = Ds_kcc.Compile.compile (source_at v) cfg in
      Hashtbl.replace model_cache key m;
      m
