open Ds_ksrc
open Ds_ctypes
open Construct

let test_versions () =
  Alcotest.(check int) "17 versions" 17 (List.length Version.all);
  Alcotest.(check int) "5 LTS" 5 (List.length Version.lts);
  Alcotest.(check string) "to_string" "v5.4" (Version.to_string (Version.v 5 4));
  Alcotest.(check bool) "5.4 is LTS" true (Version.is_lts (Version.v 5 4));
  Alcotest.(check bool) "5.8 is not LTS" false (Version.is_lts (Version.v 5 8));
  Alcotest.(check int) "16 consecutive pairs" 16 (List.length (Version.pairs Version.all));
  Alcotest.(check int) "index of 4.4" 0 (Version.index (Version.v 4 4));
  let gccs = List.sort_uniq compare (List.map (fun v -> Version.gcc_of v) Version.all) in
  Alcotest.(check int) "14 distinct GCC versions" 14 (List.length gccs);
  Alcotest.(check string) "ubuntu" "24.04" (Version.ubuntu_of (Version.v 6 8))

let test_calibration_table () =
  Alcotest.(check int) "17 steps" 17 (List.length Calibration.steps);
  (* targets grow monotonically for functions *)
  let counts =
    List.map (fun s -> s.Calibration.s_fn.Calibration.r_count) Calibration.steps
  in
  let rec mono = function a :: (b :: _ as rest) -> a <= b && mono rest | _ -> true in
  Alcotest.(check bool) "function targets monotone" true (mono counts);
  Alcotest.(check int) "first is 36k" 36000 (List.hd counts);
  Alcotest.(check int) "last is 62k" 62000 (List.nth counts 16);
  (* tracepoint targets are NOT monotone: v5.13 shrank (Table 3) *)
  let tp = List.map (fun s -> s.Calibration.s_tp.Calibration.r_count) Calibration.steps in
  Alcotest.(check bool) "tp dip at 5.13" true (List.nth tp 11 < List.nth tp 10);
  (* scaled counts respect the multiplier *)
  let s44 = Calibration.step_for (Version.v 4 4) in
  Alcotest.(check int) "bench scale funcs" 1440
    (Calibration.scaled Calibration.bench_scale s44.Calibration.s_fn `Fn);
  Alcotest.check_raises "unknown version"
    (Invalid_argument "Calibration.step_for: unknown v9.9") (fun () ->
      ignore (Calibration.step_for (Version.v 9 9)))

let test_syscalls_stable_across_versions () =
  (* syscall tables effectively never shrink in our model (nor in the
     paper's study window) *)
  let h = Lazy.force Testenv.history in
  let at v = List.assoc v h in
  let names v =
    List.map (fun (s : syscall_def) -> s.sc_name) (Source.syscalls_in (at v) Config.x86_generic)
  in
  Alcotest.(check (list string)) "same x86 syscalls at 4.4 and 6.8" (names (Version.v 4 4))
    (names (Version.v 6 8))

let test_pinned_names_protected () =
  (* catalog constructs may only change through the scripted timeline:
     e.g. vfs_fsync's declaration is byte-identical at every version *)
  let h = Lazy.force Testenv.history in
  let protos =
    List.map
      (fun (_, src) ->
        match Source.find_func src ~id:"vfs_fsync@fs/sync.c" with
        | Some f -> f.fn_proto
        | None -> Alcotest.fail "vfs_fsync vanished")
      h
  in
  List.iter
    (fun p ->
      Alcotest.(check bool) "unchanged" true (Ds_ctypes.Ctype.equal_proto (List.hd protos) p))
    protos

let test_configs () =
  Alcotest.(check int) "9 study configs" 9 (List.length Config.study_configs);
  Alcotest.(check int) "arm32 ptr" 4 (Config.ptr_size Config.Arm32);
  Alcotest.(check bool) "numa off on riscv" false (Config.numa_enabled Config.Riscv);
  Alcotest.(check string) "to_string" "x86/generic" (Config.to_string Config.x86_generic)

let test_gates () =
  let g = gate_always in
  List.iter
    (fun cfg -> Alcotest.(check bool) (Config.to_string cfg) true (gate_admits g cfg))
    Config.study_configs;
  let arm_only = { gate_always with g_arches = [ Config.Arm64 ] } in
  Alcotest.(check bool) "arm only: x86 no" false (gate_admits arm_only Config.x86_generic);
  Alcotest.(check bool) "arm only: arm yes" true
    (gate_admits arm_only Config.{ arch = Arm64; flavor = Generic });
  let no_cloud = { gate_always with g_flavor_removed = [ Config.Aws; Config.Azure ] } in
  Alcotest.(check bool) "pruned in aws" false
    (gate_admits no_cloud Config.{ arch = X86; flavor = Aws });
  Alcotest.(check bool) "kept in gcp" true
    (gate_admits no_cloud Config.{ arch = X86; flavor = Gcp });
  let numa_off = { gate_always with g_numa = Numa_off } in
  Alcotest.(check bool) "numa-off twin absent on x86" false
    (gate_admits numa_off Config.x86_generic);
  Alcotest.(check bool) "numa-off twin present on arm32" true
    (gate_admits numa_off Config.{ arch = Arm32; flavor = Generic });
  let aws_only = { gate_always with g_flavor_only = [ Config.Aws ] } in
  Alcotest.(check bool) "aws-only absent from generic" false
    (gate_admits aws_only Config.x86_generic);
  Alcotest.(check bool) "aws-only present in aws" true
    (gate_admits aws_only Config.{ arch = X86; flavor = Aws })

let test_transform_suffix () =
  Alcotest.(check string) "isra" ".isra.0" (transform_suffix T_isra);
  Alcotest.(check (option pass)) "parse isra" (Some T_isra) (transform_of_suffix "isra");
  Alcotest.(check bool) "parse junk" true (transform_of_suffix "junk" = None)

let test_proto_for_variant () =
  let f =
    {
      fn_name = "f"; fn_file = "a.c"; fn_line = 1;
      fn_proto = Ctype.{ ret = void; params = []; variadic = false };
      fn_static = false; fn_declared_inline = false; fn_body_size = 50;
      fn_address_taken = false; fn_callers = []; fn_profile = P_never;
      fn_includers = []; fn_gate = gate_always; fn_kind = Regular;
      fn_transforms = []; fn_variant_arches = [ Config.Ppc ]; fn_variant_flavors = [];
    }
  in
  let p_x86 = proto_for f Config.x86_generic in
  let p_ppc = proto_for f Config.{ arch = Ppc; flavor = Generic } in
  Alcotest.(check int) "x86 unchanged" 0 (List.length p_x86.Ctype.params);
  Alcotest.(check int) "ppc has variant param" 1 (List.length p_ppc.Ctype.params)

let test_source_ops () =
  let src = Source.empty (Version.v 4 4) in
  let src = Catalog.install_genesis src in
  Alcotest.(check bool) "task_struct present" true (Source.find_struct src "task_struct" <> None);
  Alcotest.(check bool) "biotop dep present" true
    (Source.find_func src ~id:"blk_account_io_start@block/blk-core.c" <> None);
  Alcotest.(check int) "collisions are distinct defs" 3
    (List.length (Source.funcs_named src "destroy_inodecache"));
  (match Source.check_invariants src with
  | Ok cats -> Alcotest.(check bool) "some categories" true (List.length cats >= 3)
  | Error e -> Alcotest.fail e);
  (* add/remove/replace *)
  let f = List.hd (Source.funcs_named src "vfs_fsync") in
  Alcotest.check_raises "duplicate add rejected"
    (Invalid_argument "Source.add_func: duplicate id vfs_fsync@fs/sync.c") (fun () ->
      ignore (Source.add_func src f));
  let src' = Source.remove_func src ~id:(fn_id f) in
  Alcotest.(check bool) "removed" true (Source.find_func src' ~id:(fn_id f) = None);
  Alcotest.(check bool) "others kept" true (Source.find_func src' ~id:"vfs_read@fs/read_write.c" <> None)

let test_numa_twin () =
  let src = Catalog.install_genesis (Source.empty (Version.v 4 4)) in
  let defs = Source.funcs_named src "__page_cache_alloc" in
  Alcotest.(check int) "two twins" 2 (List.length defs);
  let on_x86 = Source.funcs_in src Config.x86_generic in
  let on_arm32 = Source.funcs_in src Config.{ arch = Arm32; flavor = Generic } in
  let count name l = List.length (List.filter (fun f -> f.fn_name = name) l) in
  Alcotest.(check int) "one on x86" 1 (count "__page_cache_alloc" on_x86);
  Alcotest.(check int) "one on arm32" 1 (count "__page_cache_alloc" on_arm32);
  let x86_def = List.find (fun f -> f.fn_name = "__page_cache_alloc") on_x86 in
  let arm_def = List.find (fun f -> f.fn_name = "__page_cache_alloc") on_arm32 in
  Alcotest.(check bool) "x86 twin is the .c global" false (fn_is_header x86_def);
  Alcotest.(check bool) "arm32 twin is header-defined" true (fn_is_header arm_def)

let test_members_for () =
  let src = Catalog.install_genesis (Source.empty (Version.v 4 4)) in
  let pt = Option.get (Source.find_struct src "pt_regs") in
  let x86_members = members_for pt Config.x86_generic in
  let arm64_members = members_for pt Config.{ arch = Arm64; flavor = Generic } in
  Alcotest.(check bool) "x86 has di" true (List.mem_assoc "di" x86_members);
  Alcotest.(check bool) "x86 lacks regs" false (List.mem_assoc "regs" x86_members);
  Alcotest.(check bool) "arm64 has regs" true (List.mem_assoc "regs" arm64_members)

let test_namegen_unique () =
  let ng = Namegen.create (Ds_util.Prng.create 5L) in
  Namegen.reserve ng "vfs_fsync";
  let seen = Hashtbl.create 64 in
  for _ = 1 to 500 do
    let n = Namegen.func_name ng ~subsys:"vfs" in
    Alcotest.(check bool) ("fresh " ^ n) false (Hashtbl.mem seen n || n = "vfs_fsync");
    Hashtbl.replace seen n ()
  done

let ctx () = Genpool.create ~seed:11L Calibration.test_scale

let test_genpool_func () =
  let c = ctx () in
  let f = Genpool.gen_func c ~x86:true () in
  Alcotest.(check bool) "x86 gate" true (gate_admits f.fn_gate Config.x86_generic);
  let f2 = Genpool.gen_func c ~x86:false () in
  Alcotest.(check bool) "only gate excludes x86 generic" false
    (gate_admits f2.fn_gate Config.x86_generic);
  (* profiles are realized consistently *)
  for _ = 1 to 200 do
    let f = Genpool.gen_func c ~x86:true () in
    match f.fn_profile with
    | P_full ->
        Alcotest.(check bool) "full => static" true f.fn_static;
        Alcotest.(check bool) "full => small" true (f.fn_body_size <= 25)
    | P_selective ->
        Alcotest.(check bool) "selective => global" false f.fn_static;
        Alcotest.(check bool) "selective => small" true (f.fn_body_size <= 25)
    | P_never -> ()
  done

let test_genpool_mutate_proto () =
  let c = ctx () in
  let p =
    Ctype.
      {
        ret = int_;
        params = [ { pname = "a"; ptype = int_ }; { pname = "b"; ptype = long } ];
        variadic = false;
      }
  in
  for _ = 1 to 100 do
    let p' = Genpool.mutate_proto c p in
    Alcotest.(check bool) "proto differs" false (Ctype.equal_proto p p')
  done

let test_genpool_mutate_members () =
  let c = ctx () in
  let members = [ ("a", Ctype.int_); ("b", Ctype.u64) ] in
  for _ = 1 to 100 do
    let m' = Genpool.mutate_members c members in
    Alcotest.(check bool) "members differ" false (m' = members);
    Alcotest.(check bool) "still has fields" true (List.length m' >= 1);
    let names = List.map fst m' in
    Alcotest.(check bool) "no dup fields" true
      (List.sort_uniq compare names = List.sort compare names)
  done

let test_syscalls () =
  let c = ctx () in
  let calls = Genpool.gen_syscalls c in
  let in_cfg arch =
    List.filter
      (fun s -> gate_admits s.sc_gate Config.{ arch; flavor = Generic })
      calls
  in
  let x86 = in_cfg Config.X86 and arm64 = in_cfg Config.Arm64 in
  Alcotest.(check bool) "x86 nonempty" true (List.length x86 > 10);
  let x86_names = List.map (fun s -> s.sc_name) x86 in
  let arm64_names = List.map (fun s -> s.sc_name) arm64 in
  Alcotest.(check bool) "open on x86" true (List.mem "open" x86_names);
  Alcotest.(check bool) "open dropped on arm64" false (List.mem "open" arm64_names);
  Alcotest.(check bool) "openat everywhere" true
    (List.mem "openat" x86_names && List.mem "openat" arm64_names)

let history = Testenv.history

let test_history_shape () =
  let h = Lazy.force history in
  Alcotest.(check int) "17 versions" 17 (List.length h);
  List.iter
    (fun (v, src) ->
      Alcotest.(check bool)
        (Version.to_string v ^ " invariants")
        true
        (match Source.check_invariants src with Ok _ -> true | Error _ -> false);
      Alcotest.(check bool)
        (Version.to_string v ^ " matches source version")
        true
        (Version.equal (Source.version src) v))
    h

let test_history_counts_grow () =
  let h = Lazy.force history in
  let count src = List.length (Source.funcs_in src Config.x86_generic) in
  let first = count (snd (List.hd h)) in
  let last = count (snd (List.nth h 16)) in
  (* paper: 36k -> 62k, i.e. ~1.7x growth *)
  let ratio = float_of_int last /. float_of_int first in
  Alcotest.(check bool)
    (Printf.sprintf "func growth ~1.7x (got %.2f)" ratio)
    true
    (ratio > 1.5 && ratio < 1.95)

let test_history_deterministic () =
  let h1 = Evolution.build_history ~seed:7L Calibration.test_scale in
  let h2 = Evolution.build_history ~seed:7L Calibration.test_scale in
  List.iter2
    (fun (v1, s1) (v2, s2) ->
      Alcotest.(check bool) "versions equal" true (Version.equal v1 v2);
      let names src = List.map (fun f -> fn_id f) (Source.funcs src) in
      Alcotest.(check (list string)) (Version.to_string v1 ^ " same funcs") (names s1) (names s2))
    h1 h2

let test_history_seed_matters () =
  let h1 = Evolution.build_history ~seed:7L Calibration.test_scale in
  let h2 = Evolution.build_history ~seed:8L Calibration.test_scale in
  let names h = List.map (fun f -> fn_id f) (Source.funcs (snd (List.nth h 3))) in
  Alcotest.(check bool) "different seeds differ" false (names h1 = names h2)

let test_scripted_biotop_lineage () =
  let h = Lazy.force history in
  let at v = List.assoc v (List.map (fun (a, b) -> (a, b)) h) in
  let src44 = at (Version.v 4 4) in
  let src58 = at (Version.v 5 8) in
  let src519 = at (Version.v 5 19) in
  let src65 = at (Version.v 6 5) in
  let f44 = Option.get (Source.find_func src44 ~id:"blk_account_io_start@block/blk-core.c") in
  Alcotest.(check int) "two params at 4.4" 2 (List.length f44.fn_proto.Ctype.params);
  let f58 = Option.get (Source.find_func src58 ~id:"blk_account_io_start@block/blk-core.c") in
  Alcotest.(check int) "one param at 5.8 (b5af37a)" 1 (List.length f58.fn_proto.Ctype.params);
  let f519 = Option.get (Source.find_func src519 ~id:"blk_account_io_start@block/blk-core.c") in
  Alcotest.(check bool) "static inline at 5.19 (be6bfe3)" true f519.fn_static;
  Alcotest.(check bool) "no block_io_start before 6.5" true
    (Source.find_tracepoint src519 "block_io_start" = None);
  Alcotest.(check bool) "block_io_start at 6.5 (5a80bd0)" true
    (Source.find_tracepoint src65 "block_io_start" <> None)

let test_scripted_readahead_lineage () =
  let h = Lazy.force history in
  let at v = List.assoc v h in
  let f418 =
    Option.get
      (Source.find_func (at (Version.v 4 18)) ~id:"__do_page_cache_readahead@mm/readahead.c")
  in
  Alcotest.(check bool) "ret is uint at 4.18" true (Ctype.equal f418.fn_proto.Ctype.ret Ctype.uint);
  Alcotest.(check bool) "renamed at 5.11" true
    (Source.find_func (at (Version.v 5 11)) ~id:"__do_page_cache_readahead@mm/readahead.c" = None);
  Alcotest.(check bool) "do_page_cache_ra exists at 5.11" true
    (Source.find_func (at (Version.v 5 11)) ~id:"do_page_cache_ra@mm/readahead.c" <> None);
  Alcotest.(check bool) "page_cache_ra_order at 5.19" true
    (Source.find_func (at (Version.v 5 19)) ~id:"page_cache_ra_order@mm/readahead.c" <> None)

let test_scripted_struct_lineage () =
  let h = Lazy.force history in
  let at v = List.assoc v h in
  let task v = Option.get (Source.find_struct (at v) "task_struct") in
  Alcotest.(check bool) "state at 5.13" true (List.mem_assoc "state" (task (Version.v 5 13)).st_members);
  Alcotest.(check bool) "__state at 5.15 (2f064a5)" true
    (List.mem_assoc "__state" (task (Version.v 5 15)).st_members);
  let req v = Option.get (Source.find_struct (at v) "request") in
  let rq v = Option.get (Source.find_struct (at v) "request_queue") in
  (* Fig 4: both rq_disk and request_queue::disk coexist at 5.15 *)
  Alcotest.(check bool) "rq_disk at 5.15" true (List.mem_assoc "rq_disk" (req (Version.v 5 15)).st_members);
  Alcotest.(check bool) "disk at 5.15" true (List.mem_assoc "disk" (rq (Version.v 5 15)).st_members);
  Alcotest.(check bool) "rq_disk gone at 5.19" false
    (List.mem_assoc "rq_disk" (req (Version.v 5 19)).st_members)

let test_per_release_rates_match_calibration () =
  (* end-to-end conformance: the emergent per-release removal/change
     fractions stay near the planted Table 3 rates *)
  let h = Lazy.force Testenv.history in
  List.iter
    (fun ((a, b) : Version.t * Version.t) ->
      let step = Calibration.step_for b in
      let src_a = List.assoc a h and src_b = List.assoc b h in
      let names src =
        List.sort_uniq compare
          (List.map (fun f -> f.fn_name) (Source.funcs_in src Config.x86_generic))
      in
      let na = names src_a and nb = names src_b in
      let removed = List.length (List.filter (fun n -> not (List.mem n nb)) na) in
      let measured = float_of_int removed /. float_of_int (List.length na) in
      let planted = step.Calibration.s_fn.Calibration.r_rm in
      Alcotest.(check bool)
        (Printf.sprintf "%s->%s removal %.3f vs planted %.3f"
           (Version.to_string a) (Version.to_string b) measured planted)
        true
        (Float.abs (measured -. planted) < 0.03))
    (Version.pairs Version.all)

let test_config_population_shape () =
  (* Table 5 shape at v5.4: arm64 should gain and lose functions relative
     to x86; cloud flavors mostly lose. *)
  let h = Lazy.force history in
  let src = List.assoc (Version.v 5 4) h in
  let names cfg =
    List.sort_uniq compare (List.map (fun f -> f.fn_name) (Source.funcs_in src cfg))
  in
  let x86 = names Config.x86_generic in
  let arm64 = names Config.{ arch = Arm64; flavor = Generic } in
  let azure = names Config.{ arch = X86; flavor = Azure } in
  let diff a b = List.length (List.filter (fun n -> not (List.mem n b)) a) in
  let added = diff arm64 x86 and removed = diff x86 arm64 in
  Alcotest.(check bool)
    (Printf.sprintf "arm64 adds (%d) and removes (%d)" added removed)
    true
    (added > 0 && removed > 0 && removed > added / 3);
  let az_removed = diff x86 azure and az_added = diff azure x86 in
  Alcotest.(check bool)
    (Printf.sprintf "azure prunes more than it adds (+%d -%d)" az_added az_removed)
    true (az_removed > az_added)

let suites =
  [
    ( "ksrc.model",
      [
        Alcotest.test_case "versions" `Quick test_versions;
        Alcotest.test_case "configs" `Quick test_configs;
        Alcotest.test_case "calibration table" `Quick test_calibration_table;
        Alcotest.test_case "gates" `Quick test_gates;
        Alcotest.test_case "transform suffix" `Quick test_transform_suffix;
        Alcotest.test_case "proto variants" `Quick test_proto_for_variant;
        Alcotest.test_case "source ops" `Quick test_source_ops;
        Alcotest.test_case "numa twin" `Quick test_numa_twin;
        Alcotest.test_case "members_for" `Quick test_members_for;
        Alcotest.test_case "namegen unique" `Quick test_namegen_unique;
      ] );
    ( "ksrc.genpool",
      [
        Alcotest.test_case "gen_func" `Quick test_genpool_func;
        Alcotest.test_case "mutate proto" `Quick test_genpool_mutate_proto;
        Alcotest.test_case "mutate members" `Quick test_genpool_mutate_members;
        Alcotest.test_case "syscalls" `Quick test_syscalls;
      ] );
    ( "ksrc.evolution",
      [
        Alcotest.test_case "history shape" `Quick test_history_shape;
        Alcotest.test_case "counts grow" `Quick test_history_counts_grow;
        Alcotest.test_case "deterministic" `Quick test_history_deterministic;
        Alcotest.test_case "seed matters" `Quick test_history_seed_matters;
        Alcotest.test_case "biotop lineage" `Quick test_scripted_biotop_lineage;
        Alcotest.test_case "readahead lineage" `Quick test_scripted_readahead_lineage;
        Alcotest.test_case "struct lineage" `Quick test_scripted_struct_lineage;
        Alcotest.test_case "per-release rates match calibration" `Quick
          test_per_release_rates_match_calibration;
        Alcotest.test_case "config population shape" `Quick test_config_population_shape;
        Alcotest.test_case "syscalls stable" `Quick test_syscalls_stable_across_versions;
        Alcotest.test_case "pinned names protected" `Quick test_pinned_names_protected;
      ] );
  ]
