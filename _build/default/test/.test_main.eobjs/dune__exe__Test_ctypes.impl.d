test/test_ctypes.ml: Alcotest Ctype Decl Ds_ctypes List Printf QCheck QCheck_alcotest
