test/test_elf.ml: Alcotest Bytesio Ds_elf Ds_util Elf Int64 List Option QCheck QCheck_alcotest String
