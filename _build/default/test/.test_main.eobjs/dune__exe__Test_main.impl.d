test/test_main.ml: Alcotest Test_bpf Test_btf Test_corpus Test_ctypes Test_depsurf Test_dwarf Test_elf Test_ext Test_kcc Test_ksrc Test_util
