test/test_ksrc.ml: Alcotest Calibration Catalog Config Construct Ctype Ds_ctypes Ds_ksrc Ds_util Evolution Float Genpool Hashtbl Lazy List Namegen Option Printf Source Testenv Version
