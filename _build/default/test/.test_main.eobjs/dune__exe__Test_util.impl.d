test/test_util.ml: Alcotest Bytesio Ds_util Fun List Printf Prng QCheck QCheck_alcotest Stats String Texttable
