test/test_corpus.ml: Alcotest Calibration Config Corpus Dataset Depset Depsurf Ds_bpf Ds_corpus Ds_ksrc Ds_util Lazy List Option Pools Printexc Printf Report String Table7 Testenv Version
