test/test_btf.ml: Alcotest Ctype Decl Ds_btf Ds_ctypes List Option Printf String
