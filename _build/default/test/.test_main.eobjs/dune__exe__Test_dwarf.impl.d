test/test_dwarf.ml: Alcotest Ctype Decl Die Ds_ctypes Ds_dwarf Info Int64 List Printf QCheck QCheck_alcotest
