test/test_kcc.ml: Alcotest Compile Config Construct Ds_btf Ds_ctypes Ds_dwarf Ds_elf Ds_kcc Ds_ksrc Ds_util Elf Fun Hashtbl Int64 List Option Printf String Testenv Version
