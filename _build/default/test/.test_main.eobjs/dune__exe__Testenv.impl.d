test/testenv.ml: Calibration Config Ds_elf Ds_kcc Ds_ksrc Evolution Hashtbl Lazy List Version
