lib/core/export.ml: Config Ctype Decl Depset Ds_ctypes Ds_elf Ds_ksrc Ds_util Func_status Int64 Json List Printf Report Surface Version
