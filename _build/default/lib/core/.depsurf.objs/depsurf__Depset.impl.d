lib/core/depset.ml: Ds_bpf Ds_btf Ds_ctypes Hook List Obj Printf
