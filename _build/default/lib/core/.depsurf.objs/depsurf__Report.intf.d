lib/core/report.mli: Config Dataset Depset Ds_bpf Ds_ksrc Surface Version
