lib/core/dataset.ml: Calibration Config Ds_bpf Ds_elf Ds_kcc Ds_ksrc Evolution Hashtbl List Source Surface Version
