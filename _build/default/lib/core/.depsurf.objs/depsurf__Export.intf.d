lib/core/export.mli: Ds_ctypes Ds_util Json Report Surface
