lib/core/compat.mli: Config Dataset Ds_bpf Ds_ksrc Surface Version
