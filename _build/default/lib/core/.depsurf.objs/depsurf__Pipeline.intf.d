lib/core/pipeline.mli: Calibration Config Dataset Ds_bpf Ds_ksrc Report Version
