lib/core/func_status.mli: Construct Ds_ksrc Surface
