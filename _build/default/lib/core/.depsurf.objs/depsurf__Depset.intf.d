lib/core/depset.mli: Ds_bpf
