lib/core/dataset.mli: Calibration Config Ds_bpf Ds_elf Ds_kcc Ds_ksrc Source Surface Version
