lib/core/func_status.ml: Construct Ds_elf Ds_ksrc List String Surface
