lib/core/report.ml: Config Ctype Dataset Decl Depset Diff Ds_bpf Ds_ctypes Ds_ksrc Ds_util Func_status List Printf Surface Version
