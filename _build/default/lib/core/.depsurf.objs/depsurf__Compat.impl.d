lib/core/compat.ml: Config Dataset Ds_bpf Ds_ksrc Func_status List Option Printf Surface Version
