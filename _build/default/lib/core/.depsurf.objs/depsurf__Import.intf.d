lib/core/import.mli: Ds_ctypes Ds_util Json Surface
