lib/core/import.ml: Config Ctype Decl Ds_ctypes Ds_elf Ds_ksrc Ds_util Int64 Json List Option String Surface Version
