lib/core/surface.mli: Config Ctype Decl Ds_bpf Ds_ctypes Ds_elf Ds_ksrc Version
