lib/core/pipeline.ml: Config Dataset Ds_bpf Ds_ksrc Report Version
