lib/core/diff.ml: Ctype Decl Ds_ctypes Ds_util Fun List Map Printf String Surface
