lib/core/diff.mli: Ctype Decl Ds_ctypes Surface
