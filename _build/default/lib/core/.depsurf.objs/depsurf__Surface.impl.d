lib/core/surface.ml: Config Ctype Decl Ds_bpf Ds_btf Ds_ctypes Ds_dwarf Ds_elf Ds_ksrc Elf Hashtbl List Map Option Printf String Version
