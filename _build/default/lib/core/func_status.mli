(** Classification of the compilation-induced function statuses DepSurf
    reports (paper §4.3): inline status, compiler transformations, and the
    duplication/collision taxonomy of Table 6, plus the censuses behind
    Figures 5–6. *)

open Ds_ksrc

type inline_status = Not_inlined | Fully_inlined | Selectively_inlined

type name_status =
  | Unique_global
  | Unique_static
  | Duplication  (** one definition (same file:line), several copies *)
  | Static_static_collision  (** distinct static definitions share a name *)
  | Static_global_collision

val inline_status : Surface.func_entry -> inline_status
val transforms : Surface.func_entry -> Construct.transform list
(** Distinct transformation kinds observed in the suffixed symbols. *)

val is_attachable : Surface.func_entry -> bool
(** At least one exact-name symbol exists. *)

val name_status : Surface.func_entry -> name_status

type inline_census = {
  ic_total : int;
  ic_full : int;
  ic_selective : int;
}

val inline_census : Surface.t -> inline_census

type transform_census = {
  tc_total : int;
  tc_isra : int;
  tc_constprop : int;
  tc_part : int;
  tc_cold : int;
  tc_multi : int;  (** functions with ≥ 2 distinct transformations *)
  tc_any : int;
}

val transform_census : Surface.t -> transform_census

type collision_census = {
  cc_unique_global : int;
  cc_unique_static : int;
  cc_duplication : int;
  cc_static_static : int;
  cc_static_global : int;
}

val collision_census : Surface.t -> collision_census

(** {2 Special kernel functions (paper §4.1)} *)

val is_lsm_hook : string -> bool
(** By the kernel's naming convention ([security_*]). *)

val is_kfunc : string -> bool
(** Kernel functions callable from eBPF ([bpf_*] in our model). *)

type special_census = { sp_lsm : int; sp_kfunc : int }

val special_census : Surface.t -> special_census
