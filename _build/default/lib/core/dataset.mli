(** The study's image matrix and its extracted surfaces, built once and
    memoized: 17 x86/generic versions plus 4 architectures and 4 flavors
    at v5.4 — 25 images (paper §3.2). *)

open Ds_ksrc

type t

val study_images : (Version.t * Config.t) list
(** All 25 (version, config) pairs. *)

val fig4_images : (Version.t * Config.t) list
(** The 21 images of Figure 4: 17 x86 versions + 4 arches at v5.4. *)

val build : seed:int64 -> Calibration.scale -> t
(** Generate the kernel history; images and surfaces materialize lazily
    on first access. *)

val seed : t -> int64
val scale : t -> Calibration.scale
val source : t -> Version.t -> Source.t
val image : t -> Version.t -> Config.t -> Ds_elf.Elf.t
val model : t -> Version.t -> Config.t -> Ds_kcc.Compile.model
val vmlinux : t -> Version.t -> Config.t -> Ds_bpf.Vmlinux.t
val surface : t -> Version.t -> Config.t -> Surface.t
val x86_series : t -> (Version.t * Surface.t) list
(** The 17 x86/generic surfaces in release order. *)

val warm : t -> unit
(** Force every study image/surface (useful before timing runs). *)
