open Ds_ksrc
module Hook = Ds_bpf.Hook

type candidate = {
  ca_hook : Hook.t;
  ca_since : Version.t option;
  ca_until : Version.t option;
}

type probe = { pb_name : string; pb_doc : string; pb_candidates : candidate list }

let c ?since ?until hook = { ca_hook = hook; ca_since = since; ca_until = until }

let default_registry =
  [
    {
      pb_name = "block:io_start";
      pb_doc = "an I/O request enters accounting (biotop's start edge)";
      pb_candidates =
        [
          c ~since:(Version.v 6 5) (Hook.Tracepoint { category = "block"; event = "block_io_start" });
          c (Hook.Kprobe "blk_account_io_start");
          c (Hook.Kprobe "__blk_account_io_start");
          c (Hook.Kprobe "blk_mq_start_request");
        ];
    };
    {
      pb_name = "block:io_done";
      pb_doc = "an I/O request completes (biotop's end edge)";
      pb_candidates =
        [
          c ~since:(Version.v 6 5) (Hook.Tracepoint { category = "block"; event = "block_io_done" });
          c (Hook.Kprobe "blk_account_io_done");
          c (Hook.Kprobe "__blk_account_io_done");
          c (Hook.Kprobe "blk_mq_end_request");
        ];
    };
    {
      pb_name = "mm:readahead";
      pb_doc = "page-cache readahead is issued (the readahead tool's probe)";
      pb_candidates =
        [
          c ~since:(Version.v 5 19) (Hook.Kprobe "page_cache_ra_order");
          c ~since:(Version.v 5 11) ~until:(Version.v 5 15) (Hook.Kprobe "do_page_cache_ra");
          c ~until:(Version.v 5 8) (Hook.Kprobe "__do_page_cache_readahead");
        ];
    };
    {
      pb_name = "vfs:unlink";
      pb_doc = "a file is being unlinked";
      pb_candidates = [ c (Hook.Kprobe "do_unlinkat") ];
    };
    {
      pb_name = "sched:switch";
      pb_doc = "context switch";
      pb_candidates = [ c (Hook.Tracepoint { category = "sched"; event = "sched_switch" }) ];
    };
  ]

let find_probe name = List.find_opt (fun p -> p.pb_name = name) default_registry

type resolution = {
  rs_probe : string;
  rs_hook : Hook.t option;
  rs_skipped : (Hook.t * string) list;
}

let candidate_ok (surface : Surface.t) cand =
  let v = surface.Surface.s_version in
  if (match cand.ca_since with Some s -> Version.compare v s < 0 | None -> false) then
    Error "candidate newer than this kernel"
  else if (match cand.ca_until with Some u -> Version.compare v u > 0 | None -> false) then
    Error "candidate retired before this kernel"
  else
    match Hook.target_function cand.ca_hook with
    | Some fn -> (
        match Surface.find_func surface fn with
        | None -> Error "function absent"
        | Some fe ->
            if Func_status.is_attachable fe then Ok ()
            else if Func_status.transforms fe <> [] then Error "function transformed"
            else Error "function fully inlined")
    | None -> (
        match Hook.target_tracepoint cand.ca_hook with
        | Some tp ->
            if Surface.find_tracepoint surface tp <> None then Ok ()
            else Error "tracepoint absent"
        | None -> (
            match Hook.target_syscall cand.ca_hook with
            | Some sc ->
                if Surface.has_syscall surface sc then Ok () else Error "syscall unavailable"
            | None -> Ok ()))

let resolve probe surface =
  let rec go skipped = function
    | [] -> { rs_probe = probe.pb_name; rs_hook = None; rs_skipped = List.rev skipped }
    | cand :: rest -> (
        match candidate_ok surface cand with
        | Ok () ->
            { rs_probe = probe.pb_name; rs_hook = Some cand.ca_hook; rs_skipped = List.rev skipped }
        | Error why -> go ((cand.ca_hook, why) :: skipped) rest)
  in
  go [] probe.pb_candidates

let coverage probe ds images =
  List.map
    (fun (v, cfg) ->
      let label = Printf.sprintf "%s/%s" (Version.to_string v) (Config.to_string cfg) in
      (label, resolve probe (Dataset.surface ds v cfg)))
    images

let spec_of_resolution ~tool res =
  Option.map
    (fun hook ->
      Ds_bpf.Progbuild.
        { sp_tool = tool; sp_hooks = [ { hs_hook = hook; hs_arg_indices = []; hs_kfuncs = []; hs_reads = [] } ] })
    res.rs_hook
