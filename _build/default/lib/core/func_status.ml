open Ds_ksrc
open Surface

type inline_status = Not_inlined | Fully_inlined | Selectively_inlined

type name_status =
  | Unique_global
  | Unique_static
  | Duplication
  | Static_static_collision
  | Static_global_collision

let inline_status fe =
  if fe.fe_inline_sites = [] then Not_inlined
  else if fe.fe_symbols = [] then Fully_inlined
  else Selectively_inlined

let transforms fe =
  let kinds =
    List.filter_map
      (fun (s : Ds_elf.Elf.symbol) ->
        match String.split_on_char '.' s.Ds_elf.Elf.sym_name with
        | _ :: suffix :: _ -> Construct.transform_of_suffix suffix
        | _ -> None)
      fe.fe_suffixed
  in
  List.sort_uniq compare kinds

let is_attachable fe = fe.fe_symbols <> []

let name_status fe =
  let origins =
    List.sort_uniq compare (List.map (fun d -> (d.di_file, d.di_line)) fe.fe_decls)
  in
  let any_external = List.exists (fun d -> d.di_external) fe.fe_decls in
  if List.length origins > 1 then
    if any_external then Static_global_collision else Static_static_collision
  else if List.length fe.fe_decls > 1 || List.length fe.fe_symbols > 1 then Duplication
  else if any_external then Unique_global
  else Unique_static

type inline_census = { ic_total : int; ic_full : int; ic_selective : int }

let inline_census surface =
  let total = List.length surface.s_funcs in
  let full = ref 0 and selective = ref 0 in
  List.iter
    (fun fe ->
      match inline_status fe with
      | Fully_inlined -> incr full
      | Selectively_inlined -> incr selective
      | Not_inlined -> ())
    surface.s_funcs;
  { ic_total = total; ic_full = !full; ic_selective = !selective }

type transform_census = {
  tc_total : int;
  tc_isra : int;
  tc_constprop : int;
  tc_part : int;
  tc_cold : int;
  tc_multi : int;
  tc_any : int;
}

let transform_census surface =
  (* the paper counts fractions of functions "in the symbol table" *)
  let in_symtab =
    List.filter (fun fe -> fe.fe_symbols <> [] || fe.fe_suffixed <> []) surface.s_funcs
  in
  let c = { tc_total = List.length in_symtab; tc_isra = 0; tc_constprop = 0;
            tc_part = 0; tc_cold = 0; tc_multi = 0; tc_any = 0 }
  in
  List.fold_left
    (fun c fe ->
      match transforms fe with
      | [] -> c
      | kinds ->
          let has k = List.mem k kinds in
          {
            c with
            tc_isra = (c.tc_isra + if has Construct.T_isra then 1 else 0);
            tc_constprop = (c.tc_constprop + if has Construct.T_constprop then 1 else 0);
            tc_part = (c.tc_part + if has Construct.T_part then 1 else 0);
            tc_cold = (c.tc_cold + if has Construct.T_cold then 1 else 0);
            tc_multi = (c.tc_multi + if List.length kinds >= 2 then 1 else 0);
            tc_any = c.tc_any + 1;
          })
    c in_symtab

type collision_census = {
  cc_unique_global : int;
  cc_unique_static : int;
  cc_duplication : int;
  cc_static_static : int;
  cc_static_global : int;
}

let collision_census surface =
  List.fold_left
    (fun c fe ->
      match name_status fe with
      | Unique_global -> { c with cc_unique_global = c.cc_unique_global + 1 }
      | Unique_static -> { c with cc_unique_static = c.cc_unique_static + 1 }
      | Duplication -> { c with cc_duplication = c.cc_duplication + 1 }
      | Static_static_collision -> { c with cc_static_static = c.cc_static_static + 1 }
      | Static_global_collision -> { c with cc_static_global = c.cc_static_global + 1 })
    {
      cc_unique_global = 0;
      cc_unique_static = 0;
      cc_duplication = 0;
      cc_static_static = 0;
      cc_static_global = 0;
    }
    surface.s_funcs


let is_lsm_hook name = String.starts_with ~prefix:"security_" name
let is_kfunc name = String.starts_with ~prefix:"bpf_" name

type special_census = { sp_lsm : int; sp_kfunc : int }

let special_census surface =
  List.fold_left
    (fun c fe ->
      {
        sp_lsm = (c.sp_lsm + if is_lsm_hook fe.fe_name then 1 else 0);
        sp_kfunc = (c.sp_kfunc + if is_kfunc fe.fe_name then 1 else 0);
      })
    { sp_lsm = 0; sp_kfunc = 0 }
    surface.s_funcs
