(** The inverse of {!Export}: load a published dataset-JSON surface back
    into a {!Surface.t}, so the analyses (diffing, dependency reports) run
    directly off the distributed dataset without the original kernel
    images — the workflow of the paper's DepSurf-dataset repository.

    Round-trip guarantees (tested): declarations, struct definitions,
    tracepoints, syscalls, inline/collision classification inputs
    (symbols, inline sites, decl locations) survive
    [import (export s) ≡ s] for every analysis this library performs. *)

open Ds_util

exception Bad_dataset of string

val ctype_of_json : Json.t -> Ds_ctypes.Ctype.t
(** Inverse of {!Export.json_of_ctype}. *)

val proto_of_json : Json.t -> Ds_ctypes.Ctype.proto
(** Parse a FUNC/FUNC_PROTO declaration document. *)

val struct_of_json : Json.t -> Ds_ctypes.Decl.struct_def

val surface_of_json : Json.t -> Surface.t
(** Parse a whole-surface document produced by {!Export.surface}. *)

val surface_of_string : string -> Surface.t
