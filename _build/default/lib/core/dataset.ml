open Ds_ksrc

type t = {
  seed : int64;
  scale : Calibration.scale;
  history : (Version.t * Source.t) list;
  models : (string, Ds_kcc.Compile.model) Hashtbl.t;
  images : (string, Ds_elf.Elf.t) Hashtbl.t;
  vmlinuxes : (string, Ds_bpf.Vmlinux.t) Hashtbl.t;
  surfaces : (string, Surface.t) Hashtbl.t;
}

let study_images =
  List.map (fun v -> (v, Config.x86_generic)) Version.all
  @ List.map
      (fun cfg -> (Version.v 5 4, cfg))
      (List.filter (fun c -> not (Config.equal c Config.x86_generic)) Config.study_configs)

let fig4_images =
  List.map (fun v -> (v, Config.x86_generic)) Version.all
  @ List.map
      (fun arch -> (Version.v 5 4, Config.{ arch; flavor = Generic }))
      [ Config.Arm64; Config.Arm32; Config.Ppc; Config.Riscv ]

let build ~seed scale =
  {
    seed;
    scale;
    history = Evolution.build_history ~seed scale;
    models = Hashtbl.create 32;
    images = Hashtbl.create 32;
    vmlinuxes = Hashtbl.create 32;
    surfaces = Hashtbl.create 32;
  }

let seed t = t.seed
let scale t = t.scale

let source t v =
  match List.find_opt (fun (v', _) -> Version.equal v v') t.history with
  | Some (_, src) -> src
  | None -> invalid_arg ("Dataset.source: unknown version " ^ Version.to_string v)

let key v cfg = Version.to_string v ^ "/" ^ Config.to_string cfg

let memo tbl k f =
  match Hashtbl.find_opt tbl k with
  | Some v -> v
  | None ->
      let v = f () in
      Hashtbl.replace tbl k v;
      v

let model t v cfg =
  memo t.models (key v cfg) (fun () -> Ds_kcc.Compile.compile (source t v) cfg)

let image t v cfg = memo t.images (key v cfg) (fun () -> Ds_kcc.Emit.emit (model t v cfg))

let vmlinux t v cfg =
  memo t.vmlinuxes (key v cfg) (fun () ->
      (* Serialize and re-parse: every analysis works on the bytes a real
         image would provide, not on in-memory structures. *)
      Ds_bpf.Vmlinux.load (Ds_elf.Elf.read (Ds_elf.Elf.write (image t v cfg))))

let surface t v cfg =
  memo t.surfaces (key v cfg) (fun () -> Surface.of_vmlinux (vmlinux t v cfg))

let x86_series t = List.map (fun v -> (v, surface t v Config.x86_generic)) Version.all

let warm t = List.iter (fun (v, cfg) -> ignore (surface t v cfg)) study_images
