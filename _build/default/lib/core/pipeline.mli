(** One-call drivers tying the whole system together: generate the kernel
    history, compile the image matrix, extract surfaces, and analyze
    programs — the workflow of the paper's Figure 3. *)

open Ds_ksrc

val default_seed : int64

val dataset : ?seed:int64 -> Calibration.scale -> Dataset.t

val analyze :
  Dataset.t ->
  ?images:(Version.t * Config.t) list ->
  ?baseline:Version.t * Config.t ->
  Ds_bpf.Obj.t ->
  Report.matrix
(** Defaults: the 21 Figure-4 images, baseline v5.4/x86. *)

val load_on :
  Dataset.t -> Version.t -> Config.t -> Ds_bpf.Obj.t ->
  (Ds_bpf.Loader.attachment list, Ds_bpf.Loader.error) result
(** Try to actually load+attach the object on one image (loader path). *)

val build_program :
  Dataset.t ->
  ?build : Version.t * Config.t ->
  Ds_bpf.Progbuild.spec ->
  Ds_bpf.Obj.t
(** "Compile" a program spec against a build kernel (default v5.4/x86),
    through the serialized object bytes so the depset analysis reads the
    same artifact a real toolchain would produce. *)
