(** A prototype of the paper's §6 "compatibility layer": a curated
    registry of {e stable probe names} that resolve, per target kernel,
    to whichever concrete hook actually works there — the DTrace-style
    stable-probe idea the eBPF community has discussed for years.

    A stable probe is an ordered list of candidate hooks. Resolution walks
    the list against a target surface and picks the first candidate that
    would attach cleanly (symbol present for kprobes, event present for
    tracepoints), so the maintenance knowledge DepSurf surfaces (Figure 4)
    is captured once, in data, instead of in every tool. *)

open Ds_ksrc

type candidate = {
  ca_hook : Ds_bpf.Hook.t;
  ca_since : Version.t option;  (** only meaningful from this version *)
  ca_until : Version.t option;  (** last version it should be used on *)
}

type probe = {
  pb_name : string;  (** stable name, e.g. ["block:io_start"] *)
  pb_doc : string;
  pb_candidates : candidate list;  (** in preference order *)
}

val default_registry : probe list
(** Probes for the case-study lineages: ["block:io_start"],
    ["block:io_done"], ["mm:readahead"], ["vfs:unlink"], ... *)

val find_probe : string -> probe option

type resolution = {
  rs_probe : string;
  rs_hook : Ds_bpf.Hook.t option;  (** [None] = nothing works on this kernel *)
  rs_skipped : (Ds_bpf.Hook.t * string) list;  (** rejected candidates + why *)
}

val resolve : probe -> Surface.t -> resolution
(** Pick the first candidate that attaches cleanly on the surface's
    kernel. A kprobe candidate is rejected when the function has no
    symbol (absent, fully inlined, or transformed); a tracepoint when the
    event is absent; a syscall when unavailable on the arch. *)

val coverage : probe -> Dataset.t -> (Version.t * Config.t) list -> (string * resolution) list
(** Resolve across an image list; the matrix a registry maintainer
    reviews. *)

val spec_of_resolution : tool:string -> resolution -> Ds_bpf.Progbuild.spec option
(** Turn a successful resolution into a one-hook program spec. *)
