(** Declaration diffs between two dependency surfaces, with the specific
    change reasons DepSurf records (paper §3.1): the machinery behind
    Tables 1, 3, 4 and 5. *)

open Ds_ctypes

type func_change =
  | Param_added of string
  | Param_removed of string
  | Param_reordered
  | Param_type_changed of string * Ctype.t * Ctype.t
  | Return_type_changed of Ctype.t * Ctype.t

type field_change =
  | Field_added of string
  | Field_removed of string
  | Field_type_changed of string * Ctype.t * Ctype.t

type tp_change = Event_struct_changed of field_change list | Tracing_func_changed of func_change list

type mode = Across_versions | Across_configs
(** [Across_configs] normalizes ABI-induced layout differences: struct
    comparison ignores member offsets and aggregate size (pointer width
    alone would otherwise flag every pointer-bearing struct). *)

type 'c item_diff = {
  d_common : int;  (** constructs present on both sides *)
  d_added : string list;  (** present only in the newer surface *)
  d_removed : string list;
  d_changed : (string * 'c list) list;
}

type t = {
  df_funcs : func_change item_diff;
  df_structs : field_change item_diff;
  df_tracepoints : tp_change item_diff;
  df_syscalls : unit item_diff;
}

val func_changes : Ctype.proto -> Ctype.proto -> func_change list
(** Empty when the prototypes agree. Insertion at the front reports both
    the addition and the reordering of the shifted parameters, matching
    the paper's counting of vfs_create (6521f89). *)

val field_changes : mode -> Decl.struct_def -> Decl.struct_def -> field_change list
val tp_changes : mode -> Surface.tp_entry -> Surface.tp_entry -> tp_change list

val compare_surfaces : mode -> Surface.t -> Surface.t -> t
(** [compare_surfaces mode old_s new_s]. *)

val change_is_silent : func_change -> bool
(** Whether the change yields a silent stray read rather than a
    compile/relocation error (compatible type change, reorder,
    add/remove shifting untyped registers). For kprobes every signature
    change is silent; this refines by severity for reporting. *)

val describe_func_change : func_change -> string
val describe_field_change : field_change -> string
val describe_tp_change : tp_change -> string

(** {2 Aggregate rows for the bench tables} *)

type rates = { t_count : int; t_added_pct : float; t_removed_pct : float; t_changed_pct : float }

type summary = { sum_funcs : rates; sum_structs : rates; sum_tracepoints : rates }

val summary : mode -> Surface.t -> Surface.t -> summary
(** Percentages relative to the {e old} surface's population, as in the
    paper's Table 3. *)

type func_breakdown = {
  fb_changed : int;
  fb_param_added : int;
  fb_param_removed : int;
  fb_param_reordered : int;
  fb_param_type : int;
  fb_ret_type : int;
}

type struct_breakdown = {
  sb_changed : int;
  sb_field_added : int;
  sb_field_removed : int;
  sb_field_type : int;
}

type tp_breakdown = { tb_changed : int; tb_event : int; tb_func : int }

val breakdown : t -> func_breakdown * struct_breakdown * tp_breakdown
(** Table 4: how many changed constructs exhibit each change kind. *)
