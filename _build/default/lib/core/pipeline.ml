open Ds_ksrc

let default_seed = 0xD5EED5EEDL

let dataset ?(seed = default_seed) scale = Dataset.build ~seed scale

let analyze ds ?(images = Dataset.fig4_images) ?(baseline = (Version.v 5 4, Config.x86_generic))
    obj =
  Report.matrix ds ~images ~baseline obj

let load_on ds v cfg obj = Ds_bpf.Loader.load_and_attach (Dataset.vmlinux ds v cfg) obj

let build_program ds ?(build = (Version.v 5 4, Config.x86_generic)) spec =
  let v, cfg = build in
  let k = Dataset.vmlinux ds v cfg in
  let obj =
    Ds_bpf.Progbuild.build ~build_btf:k.Ds_bpf.Vmlinux.v_btf ~build_arch:cfg.Config.arch
      ~tag:(Ds_bpf.Vmlinux.tag k) spec
  in
  (* round-trip through the wire format *)
  Ds_bpf.Obj.read (Ds_bpf.Obj.write obj)
