(** Dependency-set extraction from eBPF object files (paper §3.4): hooks
    from section names, struct/field dependencies from the CO-RE
    relocation records, with every intermediate link of a chained access
    recorded. *)

type dep =
  | Dep_func of string  (** kprobe/kretprobe/fentry/fexit/lsm target *)
  | Dep_struct of string
  | Dep_field of string * string
  | Dep_tracepoint of string
  | Dep_syscall of string

val compare_dep : dep -> dep -> int
val dep_to_string : dep -> string

val of_obj : Ds_bpf.Obj.t -> dep list
(** Deduplicated, ordered: functions, structs, fields, tracepoints,
    syscalls. *)

type totals = {
  n_funcs : int;
  n_structs : int;
  n_fields : int;
  n_tracepoints : int;
  n_syscalls : int;
}

val totals : dep list -> totals
