open Ds_ctypes

type func_change =
  | Param_added of string
  | Param_removed of string
  | Param_reordered
  | Param_type_changed of string * Ctype.t * Ctype.t
  | Return_type_changed of Ctype.t * Ctype.t

type field_change =
  | Field_added of string
  | Field_removed of string
  | Field_type_changed of string * Ctype.t * Ctype.t

type tp_change =
  | Event_struct_changed of field_change list
  | Tracing_func_changed of func_change list

type mode = Across_versions | Across_configs

type 'c item_diff = {
  d_common : int;
  d_added : string list;
  d_removed : string list;
  d_changed : (string * 'c list) list;
}

type t = {
  df_funcs : func_change item_diff;
  df_structs : field_change item_diff;
  df_tracepoints : tp_change item_diff;
  df_syscalls : unit item_diff;
}

let index_of name params =
  let rec go i = function
    | [] -> None
    | (p : Ctype.param) :: rest -> if p.pname = name then Some i else go (i + 1) rest
  in
  go 0 params

let func_changes (old_p : Ctype.proto) (new_p : Ctype.proto) =
  if Ctype.equal_proto old_p new_p then []
  else begin
    let changes = ref [] in
    let add c = changes := c :: !changes in
    List.iteri
      (fun _ (p : Ctype.param) ->
        if index_of p.pname old_p.params = None then add (Param_added p.pname))
      new_p.params;
    List.iter
      (fun (p : Ctype.param) ->
        if index_of p.pname new_p.params = None then add (Param_removed p.pname))
      old_p.params;
    let reordered =
      List.exists
        (fun (p : Ctype.param) ->
          match index_of p.pname old_p.params, index_of p.pname new_p.params with
          | Some i, Some j -> i <> j
          | _ -> false)
        old_p.params
    in
    if reordered then add Param_reordered;
    List.iter
      (fun (p : Ctype.param) ->
        match List.find_opt (fun (q : Ctype.param) -> q.pname = p.pname) new_p.params with
        | Some q when not (Ctype.equal p.ptype q.ptype) ->
            add (Param_type_changed (p.pname, p.ptype, q.ptype))
        | _ -> ())
      old_p.params;
    if not (Ctype.equal old_p.ret new_p.ret) then
      add (Return_type_changed (old_p.ret, new_p.ret));
    (* a real difference with no nameable cause (e.g. only variadicness):
       surface it as a reorder-class change *)
    if !changes = [] then add Param_reordered;
    List.rev !changes
  end

let field_changes mode (old_s : Decl.struct_def) (new_s : Decl.struct_def) =
  let changes = ref [] in
  let add c = changes := c :: !changes in
  let field_eq (a : Decl.field) (b : Decl.field) =
    match mode with
    | Across_versions -> Ctype.equal a.ftype b.ftype && a.bits_offset = b.bits_offset
    | Across_configs ->
        (* pointer width shifts every offset; compare shape only *)
        Ctype.to_string a.ftype = Ctype.to_string b.ftype
  in
  List.iter
    (fun (f : Decl.field) ->
      if not (List.exists (fun (g : Decl.field) -> g.fname = f.fname) old_s.fields) then
        add (Field_added f.fname))
    new_s.fields;
  List.iter
    (fun (f : Decl.field) ->
      match List.find_opt (fun (g : Decl.field) -> g.fname = f.fname) new_s.fields with
      | None -> add (Field_removed f.fname)
      | Some g ->
          if not (Ctype.equal f.ftype g.ftype) then
            add (Field_type_changed (f.fname, f.ftype, g.ftype))
          else if not (field_eq f g) && mode = Across_versions then
            (* same type, moved: layout change only — CO-RE absorbs it, so
               it is not a change for dependency purposes *)
            ())
    old_s.fields;
  List.rev !changes

let tp_changes mode (old_tp : Surface.tp_entry) (new_tp : Surface.tp_entry) =
  let changes = ref [] in
  (match old_tp.Surface.te_event_struct, new_tp.Surface.te_event_struct with
  | Some a, Some b ->
      let fc = field_changes mode a b in
      if fc <> [] then changes := Event_struct_changed fc :: !changes
  | None, None -> ()
  | Some _, None | None, Some _ ->
      changes := Event_struct_changed [] :: !changes);
  (match old_tp.Surface.te_func, new_tp.Surface.te_func with
  | Some a, Some b ->
      let fc = func_changes a.Decl.proto b.Decl.proto in
      if fc <> [] then changes := Tracing_func_changed fc :: !changes
  | None, None -> ()
  | Some _, None | None, Some _ -> changes := Tracing_func_changed [] :: !changes);
  List.rev !changes

let diff_assoc ~key ~changed old_items new_items =
  let module Smap = Map.Make (String) in
  let index items = List.fold_left (fun m x -> Smap.add (key x) x m) Smap.empty items in
  let old_m = index old_items and new_m = index new_items in
  let added =
    Smap.fold (fun k _ acc -> if Smap.mem k old_m then acc else k :: acc) new_m []
  in
  let removed =
    Smap.fold (fun k _ acc -> if Smap.mem k new_m then acc else k :: acc) old_m []
  in
  let common = ref 0 in
  let changes =
    Smap.fold
      (fun k ov acc ->
        match Smap.find_opt k new_m with
        | None -> acc
        | Some nv -> (
            incr common;
            match changed ov nv with [] -> acc | cs -> (k, cs) :: acc))
      old_m []
  in
  {
    d_common = !common;
    d_added = List.rev added;
    d_removed = List.rev removed;
    d_changed = List.rev changes;
  }

let compare_surfaces mode (old_s : Surface.t) (new_s : Surface.t) =
  let df_funcs =
    diff_assoc
      ~key:(fun (fe : Surface.func_entry) -> fe.fe_name)
      ~changed:(fun a b ->
        func_changes (Surface.representative_proto a) (Surface.representative_proto b))
      old_s.Surface.s_funcs new_s.Surface.s_funcs
  in
  let df_structs =
    diff_assoc
      ~key:(fun (s : Decl.struct_def) -> s.sname)
      ~changed:(fun a b -> field_changes mode a b)
      old_s.Surface.s_structs new_s.Surface.s_structs
  in
  let df_tracepoints =
    diff_assoc
      ~key:(fun (tp : Surface.tp_entry) -> tp.te_name)
      ~changed:(fun a b -> tp_changes mode a b)
      old_s.Surface.s_tracepoints new_s.Surface.s_tracepoints
  in
  let df_syscalls =
    diff_assoc
      ~key:Fun.id
      ~changed:(fun _ _ -> [])
      old_s.Surface.s_syscalls new_s.Surface.s_syscalls
  in
  { df_funcs; df_structs; df_tracepoints; df_syscalls }

let change_is_silent = function
  | Param_added _ | Param_removed _ | Param_reordered -> true
  | Param_type_changed (_, a, b) | Return_type_changed (a, b) -> Ctype.compatible a b

let describe_func_change = function
  | Param_added n -> Printf.sprintf "param %s added" n
  | Param_removed n -> Printf.sprintf "param %s removed" n
  | Param_reordered -> "params reordered"
  | Param_type_changed (n, a, b) ->
      Printf.sprintf "param %s: %s -> %s" n (Ctype.to_string a) (Ctype.to_string b)
  | Return_type_changed (a, b) ->
      Printf.sprintf "return: %s -> %s" (Ctype.to_string a) (Ctype.to_string b)

let describe_field_change = function
  | Field_added n -> Printf.sprintf "field %s added" n
  | Field_removed n -> Printf.sprintf "field %s removed" n
  | Field_type_changed (n, a, b) ->
      Printf.sprintf "field %s: %s -> %s" n (Ctype.to_string a) (Ctype.to_string b)

let describe_tp_change = function
  | Event_struct_changed [] -> "event struct added/removed"
  | Event_struct_changed fcs ->
      "event struct changed (" ^ String.concat "; " (List.map describe_field_change fcs) ^ ")"
  | Tracing_func_changed [] -> "tracing function added/removed"
  | Tracing_func_changed fcs ->
      "tracing function changed (" ^ String.concat "; " (List.map describe_func_change fcs) ^ ")"

type rates = { t_count : int; t_added_pct : float; t_removed_pct : float; t_changed_pct : float }
type summary = { sum_funcs : rates; sum_structs : rates; sum_tracepoints : rates }

let rates_of (d : 'c item_diff) ~old_count ~new_count =
  ignore new_count;
  {
    t_count = old_count;
    t_added_pct = Ds_util.Stats.percent (List.length d.d_added) old_count;
    t_removed_pct = Ds_util.Stats.percent (List.length d.d_removed) old_count;
    t_changed_pct = Ds_util.Stats.percent (List.length d.d_changed) old_count;
  }

let summary mode old_s new_s =
  let d = compare_surfaces mode old_s new_s in
  let fo, so, tpo, _ = Surface.counts old_s in
  let fn, sn, tpn, _ = Surface.counts new_s in
  {
    sum_funcs = rates_of d.df_funcs ~old_count:fo ~new_count:fn;
    sum_structs = rates_of d.df_structs ~old_count:so ~new_count:sn;
    sum_tracepoints = rates_of d.df_tracepoints ~old_count:tpo ~new_count:tpn;
  }

type func_breakdown = {
  fb_changed : int;
  fb_param_added : int;
  fb_param_removed : int;
  fb_param_reordered : int;
  fb_param_type : int;
  fb_ret_type : int;
}

type struct_breakdown = {
  sb_changed : int;
  sb_field_added : int;
  sb_field_removed : int;
  sb_field_type : int;
}

type tp_breakdown = { tb_changed : int; tb_event : int; tb_func : int }

let breakdown (d : t) =
  let fb =
    List.fold_left
      (fun fb (_, cs) ->
        let has p = List.exists p cs in
        {
          fb_changed = fb.fb_changed + 1;
          fb_param_added =
            (fb.fb_param_added + if has (function Param_added _ -> true | _ -> false) then 1 else 0);
          fb_param_removed =
            (fb.fb_param_removed
            + if has (function Param_removed _ -> true | _ -> false) then 1 else 0);
          fb_param_reordered =
            (fb.fb_param_reordered
            + if has (function Param_reordered -> true | _ -> false) then 1 else 0);
          fb_param_type =
            (fb.fb_param_type
            + if has (function Param_type_changed _ -> true | _ -> false) then 1 else 0);
          fb_ret_type =
            (fb.fb_ret_type
            + if has (function Return_type_changed _ -> true | _ -> false) then 1 else 0);
        })
      {
        fb_changed = 0;
        fb_param_added = 0;
        fb_param_removed = 0;
        fb_param_reordered = 0;
        fb_param_type = 0;
        fb_ret_type = 0;
      }
      d.df_funcs.d_changed
  in
  let sb =
    List.fold_left
      (fun sb (_, cs) ->
        let has p = List.exists p cs in
        {
          sb_changed = sb.sb_changed + 1;
          sb_field_added =
            (sb.sb_field_added + if has (function Field_added _ -> true | _ -> false) then 1 else 0);
          sb_field_removed =
            (sb.sb_field_removed
            + if has (function Field_removed _ -> true | _ -> false) then 1 else 0);
          sb_field_type =
            (sb.sb_field_type
            + if has (function Field_type_changed _ -> true | _ -> false) then 1 else 0);
        })
      { sb_changed = 0; sb_field_added = 0; sb_field_removed = 0; sb_field_type = 0 }
      d.df_structs.d_changed
  in
  let tb =
    List.fold_left
      (fun tb (_, cs) ->
        {
          tb_changed = tb.tb_changed + 1;
          tb_event =
            (tb.tb_event
            + if List.exists (function Event_struct_changed _ -> true | _ -> false) cs then 1 else 0);
          tb_func =
            (tb.tb_func
            + if List.exists (function Tracing_func_changed _ -> true | _ -> false) cs then 1 else 0);
        })
      { tb_changed = 0; tb_event = 0; tb_func = 0 }
      d.df_tracepoints.d_changed
  in
  (fb, sb, tb)
