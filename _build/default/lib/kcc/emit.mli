(** The compilation back half: serialize a compiled {!Compile.model} into
    a vmlinux-like ELF image.

    The image contains exactly what DepSurf's extractors consume:
    - [.symtab]/[.strtab]: function symbols (with transformation
      suffixes), tracing-function and syscall-stub symbols, plus the
      [__start_ftrace_events]/[__stop_ftrace_events] delimiters,
      [sys_call_table], and [linux_banner];
    - [.rodata]: the banner and tracepoint strings;
    - [.data]: the ftrace-events pointer array, one
      [trace_event_call]-like record per tracepoint, and the
      [sys_call_table] pointer array — all written with the target
      machine's endianness and pointer size;
    - [.debug_info]/[.debug_abbrev]: DWARF-lite compile units;
    - [.BTF]: types and function prototypes. *)

val banner : Compile.model -> string
(** ["Linux version 5.4.0 ... (gcc version 9.2.0) ..."] — the string
    stored at [linux_banner], from which DepSurf recovers the kernel and
    compiler versions. *)

val emit : Compile.model -> Ds_elf.Elf.t

val build_image : Ds_ksrc.Source.t -> Ds_ksrc.Config.t -> Ds_elf.Elf.t
(** [compile] + [emit]. *)

val image_bytes : Ds_ksrc.Source.t -> Ds_ksrc.Config.t -> string
(** [build_image] serialized with {!Ds_elf.Elf.write}. *)
