lib/kcc/compile.ml: Calibration Config Construct Ctype Decl Ds_ctypes Ds_ksrc Ds_util Fun Hashtbl Int64 List Prng Source String Version
