lib/kcc/compile.mli: Config Construct Ds_ctypes Ds_ksrc Source Version
