lib/kcc/emit.ml: Bytesio Compile Config Construct Ctype Decl Ds_btf Ds_ctypes Ds_dwarf Ds_elf Ds_ksrc Ds_util Elf Hashtbl Int64 List Printf String Version
