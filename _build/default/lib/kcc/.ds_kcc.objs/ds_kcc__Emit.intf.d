lib/kcc/emit.mli: Compile Ds_elf Ds_ksrc
