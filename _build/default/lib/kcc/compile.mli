(** The compilation front half: configure a source tree, decide inlining
    per call site, apply interprocedural transformations, lay out structs
    for the target ABI, and assign addresses. The output {!model} is what
    {!Emit} serializes into a vmlinux-like ELF image.

    Decision procedure (mirrors GCC's observable behaviour, paper §4.3):
    - a call site is inlined iff the callee's body is under the compiler
      version's threshold, its address is never taken, and its definition
      is visible in the calling TU (same file, or header-defined);
    - a {e static} function whose call sites were all inlined loses its
      symbol (full inline); a {e global} one always keeps its symbol, so
      same-TU inlining yields selective inline;
    - header-defined static functions are compiled once per including TU;
      non-inlined copies produce duplicate local symbols;
    - ISRA/constprop rename the symbol (original disappears); cold/part
      split it (original stays, a suffixed sibling appears). *)

open Ds_ksrc

type site = {
  sd_caller : string;
  sd_tu : string;  (** translation unit the call site lives in *)
  sd_line : int;
  sd_inlined : bool;
  sd_pc : int64;  (** address of the (inlined) call site *)
}

type instance = {
  i_func : Construct.func_def;
  i_tu : string;  (** TU this copy was compiled into *)
  i_symbols : (string * int64) list;
      (** emitted symbol names and addresses; empty = fully inlined copy.
          More than one when cold/part splitting applies. *)
  i_sites : site list;  (** call sites targeting this copy *)
}

type model = {
  m_source_version : Version.t;
  m_config : Config.t;
  m_gcc : int * int;
  m_env : Ds_ctypes.Decl.type_env;  (** structs laid out for the target ABI,
                                        including tracepoint event structs *)
  m_instances : instance list;
  m_tracepoints : Construct.tracepoint_def list;
  m_syscalls : (string * string * int64) list;
      (** (name, impl symbol, impl address), in syscall-number order *)
}

val trace_entry_struct : Ds_ctypes.Decl.struct_def
(** The common [trace_entry] header every event struct embeds. *)

val syscall_symbol : Config.arch -> string -> string
(** Symbol implementing a system call, e.g. x86 [openat] →
    ["__x64_sys_openat"]. *)

val syscall_of_symbol : Config.arch -> string -> string option
(** Inverse of {!syscall_symbol} (strip the arch prefix). *)

val text_base_for : Config.arch -> int64
(** Load address of [.text] (32-bit arches get a 32-bit address space so
    in-image pointers fit their pointer width). *)

val compile : ?inline_threshold:int -> Source.t -> Config.t -> model
(** Configure and compile. The GCC version is derived from the source
    version via {!Version.gcc_of}; [inline_threshold] overrides the
    compiler's size threshold (used by the Figure-5 sensitivity
    ablation). *)

val inline_jitter : tu:string -> fn:string -> bool
(** Deterministic per-TU tie-breaker for header-defined functions: some
    including TUs inline their copy, others keep a local symbol (this is
    what makes duplication and inlining coexist, as DepSurf observes for
    [__page_cache_alloc] on arm32/riscv). *)
