open Ds_ctypes

(* Render "TYPE NAME" with C's inside-out declarator syntax. *)
let rec ctype_decl (t : Ctype.t) name =
  match t with
  | Ctype.Array (elem, n) -> ctype_decl elem (Printf.sprintf "%s[%d]" name n)
  | Ctype.Ptr inner -> ctype_decl inner ("*" ^ name)
  | Ctype.Const inner -> (
      (* const binds to the pointee when wrapped inside a Ptr; at top
         level it prefixes the base type *)
      match inner with
      | Ctype.Ptr _ | Ctype.Array _ -> ctype_decl inner ("const " ^ name)
      | _ -> "const " ^ ctype_decl inner name)
  | Ctype.Volatile inner -> "volatile " ^ ctype_decl inner name
  | Ctype.Func_proto proto ->
      Printf.sprintf "%s (%s)(%s)"
        (Ctype.to_string proto.ret)
        name
        (String.concat ", " (List.map (fun (p : Ctype.param) -> Ctype.to_string p.ptype) proto.params))
  | Ctype.Void -> "void " ^ name
  | Ctype.Int { name = tn; _ } | Ctype.Float { name = tn; _ } -> tn ^ " " ^ name
  | Ctype.Struct_ref n -> Printf.sprintf "struct %s %s" n name
  | Ctype.Union_ref n -> Printf.sprintf "union %s %s" n name
  | Ctype.Enum_ref n -> Printf.sprintf "enum %s %s" n name
  | Ctype.Typedef_ref n -> n ^ " " ^ name

let struct_to_c (s : Decl.struct_def) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "%s %s {\n"
       (match s.skind with `Struct -> "struct" | `Union -> "union")
       s.sname);
  List.iter
    (fun (f : Decl.field) ->
      Buffer.add_string buf
        (Printf.sprintf "\t%s; /* offset %d */\n" (ctype_decl f.ftype f.fname)
           (f.bits_offset / 8)))
    s.fields;
  Buffer.add_string buf (Printf.sprintf "}; /* size %d */\n" s.byte_size);
  Buffer.contents buf

let vmlinux_h btf =
  let env, funcs = Btf.to_env ~ptr_size:8 btf in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "#ifndef __VMLINUX_H__\n#define __VMLINUX_H__\n\n";
  Buffer.add_string buf "/* generated from BTF; do not edit */\n\n";
  (* typedefs *)
  List.iter
    (fun (td : Decl.typedef_def) ->
      Buffer.add_string buf (Printf.sprintf "typedef %s;\n" (ctype_decl td.aliased td.tname)))
    (Decl.typedefs env);
  Buffer.add_char buf '\n';
  (* forward declarations: break every pointer cycle up front, like
     bpftool does *)
  List.iter
    (fun (s : Decl.struct_def) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s;\n"
           (match s.skind with `Struct -> "struct" | `Union -> "union")
           s.sname))
    (Decl.structs env);
  Buffer.add_char buf '\n';
  (* enums *)
  List.iter
    (fun (e : Decl.enum_def) ->
      Buffer.add_string buf (Printf.sprintf "enum %s {\n" e.ename);
      List.iter (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "\t%s = %d,\n" n v)) e.values;
      Buffer.add_string buf "};\n\n")
    (Decl.enums env);
  (* aggregates *)
  List.iter
    (fun s ->
      Buffer.add_string buf (struct_to_c s);
      Buffer.add_char buf '\n')
    (Decl.structs env);
  (* function prototypes *)
  List.iter
    (fun (f : Decl.func_decl) ->
      Buffer.add_string buf
        (Printf.sprintf "extern %s;\n" (Ctype.proto_to_string ~name:f.fname f.proto)))
    funcs;
  Buffer.add_string buf "\n#endif /* __VMLINUX_H__ */\n";
  Buffer.contents buf
