(** C-syntax rendering of a BTF table — `bpftool btf dump format c`, the
    mechanism that produces the `vmlinux.h` every CO-RE program includes.

    Output is deterministic: typedefs first, then struct/union/enum
    definitions in dependency order (forward declarations break pointer
    cycles), then function prototypes as extern declarations. *)

val ctype_decl : Ds_ctypes.Ctype.t -> string -> string
(** [ctype_decl ty name] renders a declarator, handling the C inside-out
    syntax for arrays and pointers: [ctype_decl (Array (char_, 16))
    "comm"] is ["char comm[16]"]. *)

val struct_to_c : Ds_ctypes.Decl.struct_def -> string
(** One aggregate definition with a trailing [";"] and offset comments. *)

val vmlinux_h : Btf.t -> string
(** The whole header. *)
