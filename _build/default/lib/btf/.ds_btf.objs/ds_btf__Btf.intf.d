lib/btf/btf.mli: Ds_ctypes
