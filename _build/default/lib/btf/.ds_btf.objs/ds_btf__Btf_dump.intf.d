lib/btf/btf_dump.mli: Btf Ds_ctypes
