lib/btf/btf_dump.ml: Btf Buffer Ctype Decl Ds_ctypes List Printf String
