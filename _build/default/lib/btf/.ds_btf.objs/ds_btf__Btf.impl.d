lib/btf/btf.ml: Array Buffer Bytesio Ctype Decl Ds_ctypes Ds_util Hashtbl List Printf String
