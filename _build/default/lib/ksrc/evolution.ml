open Ds_util
open Construct

let apply_event src = function
  | Catalog.Add_func f -> Source.add_func src f
  | Catalog.Remove_func id -> Source.remove_func src ~id
  | Catalog.Update_func (id, f) -> (
      match Source.find_func src ~id with
      | Some fd -> Source.replace_func src (f fd)
      | None -> invalid_arg ("scripted update of missing function " ^ id))
  | Catalog.Add_struct s -> Source.add_struct src s
  | Catalog.Remove_struct n -> Source.remove_struct src n
  | Catalog.Update_struct (n, f) -> (
      match Source.find_struct src n with
      | Some sd -> Source.replace_struct src (f sd)
      | None -> invalid_arg ("scripted update of missing struct " ^ n))
  | Catalog.Add_tracepoint tp -> Source.add_tracepoint src tp
  | Catalog.Remove_tracepoint n -> Source.remove_tracepoint src n
  | Catalog.Update_tracepoint (n, f) -> (
      match Source.find_tracepoint src n with
      | Some tp -> Source.replace_tracepoint src (f tp)
      | None -> invalid_arg ("scripted update of missing tracepoint " ^ n))

(* Additions: [n] x86-visible constructs plus a calibrated share of
   arch-/flavor-only ones. *)
let add_funcs ctx src n =
  let prng = Genpool.prng ctx in
  let w = Genpool.only_weight Calibration.func_config in
  let n_only = Prng.binomial prng n (min 1. w) in
  let ss = Calibration.p_collision_static_static in
  let sg = Calibration.p_collision_static_global in
  let add_one src ~x86 =
    let collide =
      if Prng.bool prng ss then `Static
      else if Prng.bool prng sg then `Global
      else `No
    in
    let f =
      match collide with
      | `No -> Genpool.gen_func ctx ~x86 ()
      | `Static | `Global -> (
          (* Reuse an existing name in a different file: static-static or
             static-global collision. Pick a random victim — but never a
             catalog name, whose symbol-count history is scripted. *)
          let funcs =
            List.filter (fun f -> not (Catalog.pinned f.fn_name)) (Source.funcs src)
          in
          match funcs with
          | [] -> Genpool.gen_func ctx ~x86 ()
          | _ -> (
              let victim = List.nth funcs (Prng.int prng (List.length funcs)) in
              let want_global_victim = collide = `Global in
              if want_global_victim && victim.fn_static then Genpool.gen_func ctx ~x86 ()
              else
                let f =
                  Genpool.gen_func ctx ~x86 ~forced_name:victim.fn_name ~forced_static:true ()
                in
                (* distinct file required for a distinct id *)
                if f.fn_file = victim.fn_file then { f with fn_file = "lib/lib-extra.c" }
                else f))
    in
    if Source.find_func src ~id:(fn_id f) <> None then src (* rare id clash: skip *)
    else Source.add_func src f
  in
  let src = ref src in
  for _ = 1 to n do
    src := add_one !src ~x86:true
  done;
  for _ = 1 to n_only do
    src := add_one !src ~x86:false
  done;
  !src

let add_structs ctx src n =
  let prng = Genpool.prng ctx in
  let w = Genpool.only_weight Calibration.struct_config in
  let n_only = Prng.binomial prng n w in
  let src = ref src in
  let add_one ~x86 =
    let s = Genpool.gen_struct ctx ~x86 in
    if Source.find_struct !src s.st_name = None then src := Source.add_struct !src s
  in
  for _ = 1 to n do
    add_one ~x86:true
  done;
  for _ = 1 to n_only do
    add_one ~x86:false
  done;
  !src

let add_tracepoints ctx src n =
  let prng = Genpool.prng ctx in
  let w = Genpool.only_weight Calibration.tracepoint_config in
  let n_only = Prng.binomial prng n w in
  let src = ref src in
  let add_one ~x86 =
    let tp = Genpool.gen_tracepoint ctx ~x86 in
    if Source.find_tracepoint !src tp.tp_name = None then
      src := Source.add_tracepoint !src tp
  in
  for _ = 1 to n do
    add_one ~x86:true
  done;
  for _ = 1 to n_only do
    add_one ~x86:false
  done;
  !src

let x86_count_fn src = List.length (Source.funcs_in src Config.x86_generic)
let x86_count_st src = List.length (Source.structs_in src Config.x86_generic)
let x86_count_tp src = List.length (Source.tracepoints_in src Config.x86_generic)

let genesis ctx =
  List.iter (Namegen.reserve (Genpool.names ctx)) Catalog.all_names;
  let src = Catalog.install_genesis (Source.empty (Version.v 4 4)) in
  List.iter
    (fun (s : struct_src) -> Genpool.note_struct ctx s.st_name)
    (Source.structs src);
  let step = Calibration.step_for (Version.v 4 4) in
  let scale = Genpool.scale ctx in
  let src =
    add_funcs ctx src (max 0 (Calibration.scaled scale step.s_fn `Fn - x86_count_fn src))
  in
  let src =
    add_structs ctx src (max 0 (Calibration.scaled scale step.s_st `St - x86_count_st src))
  in
  let src =
    add_tracepoints ctx src
      (max 0 (Calibration.scaled scale step.s_tp `Tp - x86_count_tp src))
  in
  List.fold_left Source.add_syscall src (Genpool.gen_syscalls ctx)

(* Pick [n] victims from [xs], preferring previously-changed ("hot")
   constructs with probability [p_hot_bias]; churn concentrates in hot
   code, which keeps multi-release change unions near the paper's LTS
   numbers. *)
let pick_victims prng ~n ~hot xs =
  let hots = List.filter hot xs in
  let colds = List.filter (fun x -> not (hot x)) xs in
  let n_hot =
    min (List.length hots)
      (int_of_float (Float.round (float_of_int n *. Calibration.p_hot_bias)))
  in
  let n_cold = min (List.length colds) (n - n_hot) in
  Prng.sample prng n_hot hots @ Prng.sample prng n_cold colds

let evolve ctx src (step : Calibration.step) =
  let prng = Genpool.prng ctx in
  let scale = Genpool.scale ctx in
  let src = Source.with_version src step.s_version in
  (* 1. scripted catalog history *)
  let src = List.fold_left apply_event src (Catalog.events_for step.s_version) in
  (* 2. removals *)
  let removable_funcs =
    List.filter (fun f -> not (Catalog.pinned f.fn_name)) (Source.funcs src)
  in
  let n_rm_fn =
    int_of_float (Float.round (float_of_int (List.length removable_funcs) *. step.s_fn.r_rm))
  in
  let src =
    List.fold_left
      (fun src f -> Source.remove_func src ~id:(fn_id f))
      src
      (Prng.sample prng n_rm_fn removable_funcs)
  in
  let removable_sts =
    List.filter (fun s -> not (Catalog.pinned s.st_name)) (Source.structs src)
  in
  let n_rm_st =
    int_of_float (Float.round (float_of_int (List.length removable_sts) *. step.s_st.r_rm))
  in
  let src =
    List.fold_left
      (fun src s -> Source.remove_struct src s.st_name)
      src
      (Prng.sample prng n_rm_st removable_sts)
  in
  let removable_tps =
    List.filter (fun x -> not (Catalog.pinned x.tp_name)) (Source.tracepoints src)
  in
  let n_rm_tp =
    int_of_float (Float.round (float_of_int (List.length removable_tps) *. step.s_tp.r_rm))
  in
  let src =
    List.fold_left
      (fun src x -> Source.remove_tracepoint src x.tp_name)
      src
      (Prng.sample prng n_rm_tp removable_tps)
  in
  (* 3. changes *)
  let changeable_funcs =
    List.filter (fun f -> not (Catalog.pinned f.fn_name)) (Source.funcs src)
  in
  let n_ch_fn =
    int_of_float (Float.round (float_of_int (List.length changeable_funcs) *. step.s_fn.r_ch))
  in
  let victims =
    pick_victims prng ~n:n_ch_fn ~hot:(fun f -> Genpool.hot_func ctx f.fn_name) changeable_funcs
  in
  let src =
    List.fold_left
      (fun src f ->
        Genpool.mark_hot_func ctx f.fn_name;
        Source.replace_func src { f with fn_proto = Genpool.mutate_proto ctx f.fn_proto })
      src victims
  in
  let changeable_sts =
    List.filter (fun s -> not (Catalog.pinned s.st_name)) (Source.structs src)
  in
  let n_ch_st =
    int_of_float (Float.round (float_of_int (List.length changeable_sts) *. step.s_st.r_ch))
  in
  let victims =
    pick_victims prng ~n:n_ch_st ~hot:(fun s -> Genpool.hot_struct ctx s.st_name) changeable_sts
  in
  let src =
    List.fold_left
      (fun src s ->
        Genpool.mark_hot_struct ctx s.st_name;
        Source.replace_struct src { s with st_members = Genpool.mutate_members ctx s.st_members })
      src victims
  in
  let changeable_tps =
    List.filter (fun x -> not (Catalog.pinned x.tp_name)) (Source.tracepoints src)
  in
  let n_ch_tp =
    int_of_float (Float.round (float_of_int (List.length changeable_tps) *. step.s_tp.r_ch))
  in
  let victims =
    pick_victims prng ~n:n_ch_tp ~hot:(fun x -> Genpool.hot_tp ctx x.tp_name) changeable_tps
  in
  let src =
    List.fold_left
      (fun src x ->
        Genpool.mark_hot_tp ctx x.tp_name;
        Source.replace_tracepoint src (Genpool.mutate_tracepoint ctx x))
      src victims
  in
  (* 4. additions up to the scaled Table 3 targets *)
  let src =
    add_funcs ctx src (max 0 (Calibration.scaled scale step.s_fn `Fn - x86_count_fn src))
  in
  let src =
    add_structs ctx src (max 0 (Calibration.scaled scale step.s_st `St - x86_count_st src))
  in
  let src =
    add_tracepoints ctx src
      (max 0 (Calibration.scaled scale step.s_tp `Tp - x86_count_tp src))
  in
  Source.prune_dangling_callers src

let build_history ~seed scale =
  let ctx = Genpool.create ~seed scale in
  let src0 = genesis ctx in
  let rec go src = function
    | [] -> []
    | step :: rest ->
        let src' = evolve ctx src step in
        (step.Calibration.s_version, src') :: go src' rest
  in
  (Version.v 4 4, src0) :: go src0 (List.tl Calibration.steps)
