type scale = {
  sc_funcs : float;
  sc_structs : float;
  sc_tracepoints : float;
  sc_syscalls : float;
}

let bench_scale =
  { sc_funcs = 0.04; sc_structs = 0.05; sc_tracepoints = 0.25; sc_syscalls = 1.0 }

let test_scale =
  { sc_funcs = 0.010; sc_structs = 0.02; sc_tracepoints = 0.08; sc_syscalls = 0.2 }

type rates = { r_count : int; r_rm : float; r_ch : float }
type step = { s_version : Version.t; s_fn : rates; s_st : rates; s_tp : rates }

let v = Version.v
let fn c rm ch = { r_count = c; r_rm = rm /. 100.; r_ch = ch /. 100. }

(* Table 3: per-release population targets and removal/change rates for
   the x86 population. Additions are derived (whatever reaches the
   target), matching the paper's "+%" columns to within rounding. *)
let steps =
  [
    { s_version = v 4 4; s_fn = fn 36000 0. 0.; s_st = fn 6200 0. 0.; s_tp = fn 502 0. 0. };
    { s_version = v 4 8; s_fn = fn 38000 3. 2.; s_st = fn 6600 2. 9.; s_tp = fn 539 1. 5. };
    { s_version = v 4 10; s_fn = fn 39000 2. 1.; s_st = fn 6800 1. 6.; s_tp = fn 559 2. 3. };
    { s_version = v 4 13; s_fn = fn 41000 3. 2.; s_st = fn 7100 1. 9.; s_tp = fn 635 3. 2. };
    { s_version = v 4 15; s_fn = fn 42000 1. 1.; s_st = fn 7300 2. 5.; s_tp = fn 675 0.4 3. };
    { s_version = v 4 18; s_fn = fn 44000 3. 2.; s_st = fn 7600 1. 7.; s_tp = fn 683 0.1 1. };
    { s_version = v 5 0; s_fn = fn 45000 3. 2.; s_st = fn 7800 1. 7.; s_tp = fn 704 2. 3. };
    { s_version = v 5 3; s_fn = fn 47000 2. 1.; s_st = fn 8200 3. 7.; s_tp = fn 737 1. 3. };
    { s_version = v 5 4; s_fn = fn 48000 1. 1.; s_st = fn 8400 2. 3.; s_tp = fn 752 2. 0.3 };
    { s_version = v 5 8; s_fn = fn 52000 6. 1.; s_st = fn 8600 1. 8.; s_tp = fn 785 0.5 7. };
    { s_version = v 5 11; s_fn = fn 53000 2. 2.; s_st = fn 9000 1. 7.; s_tp = fn 813 3. 3. };
    { s_version = v 5 13; s_fn = fn 53500 5. 2.; s_st = fn 9200 2. 4.; s_tp = fn 805 2. 2. };
    { s_version = v 5 15; s_fn = fn 54000 2. 1.; s_st = fn 9300 1. 5.; s_tp = fn 818 0.4 6. };
    { s_version = v 5 19; s_fn = fn 56000 3. 2.; s_st = fn 9600 2. 7.; s_tp = fn 843 1. 6. };
    { s_version = v 6 2; s_fn = fn 58000 3. 2.; s_st = fn 9800 1. 6.; s_tp = fn 871 0.1 4. };
    { s_version = v 6 5; s_fn = fn 60000 1. 2.; s_st = fn 10000 1. 6.; s_tp = fn 917 1. 5. };
    { s_version = v 6 8; s_fn = fn 62000 2. 1.; s_st = fn 10500 0.5 6.; s_tp = fn 932 0.1 2. };
  ]

let step_for version =
  match List.find_opt (fun s -> Version.equal s.s_version version) steps with
  | Some s -> s
  | None -> invalid_arg ("Calibration.step_for: unknown " ^ Version.to_string version)

let scaled scale rates which =
  let m =
    match which with
    | `Fn -> scale.sc_funcs
    | `St -> scale.sc_structs
    | `Tp -> scale.sc_tracepoints
  in
  max 1 (int_of_float (Float.round (float_of_int rates.r_count *. m)))

(* Table 4 change-kind probabilities. *)
let p_param_add = 0.52
let p_param_add_front = 0.10
let p_param_remove = 0.45
let p_param_swap = 0.05
let p_param_type = 0.30
let p_ret_type = 0.16
let p_field_add = 0.72
let p_field_remove = 0.40
let p_field_type = 0.34
let p_tp_event = 0.88
let p_tp_func = 0.45
let p_compatible_type_change = 0.5
let p_hot_bias = 0.35

type config_probs = {
  cp_present : (Config.arch * float) list;
  cp_only : (Config.arch * float) list;
  cp_variant : (Config.arch * float) list;
  cp_flavor_removed : (Config.flavor * float) list;
  cp_flavor_only : (Config.flavor * float) list;
  cp_flavor_variant : (Config.flavor * float) list;
  cp_numa : float;
}

open Config

(* Table 5, derived from the v5.4 row group: fractions of the x86/generic
   population (48k functions, 8.4k structs, 752 tracepoints). *)
let func_config =
  {
    cp_present = [ (Arm64, 0.835); (Arm32, 0.754); (Ppc, 0.780); (Riscv, 0.719) ];
    cp_only = [ (Arm64, 0.192); (Arm32, 0.2625); (Ppc, 0.1125); (Riscv, 0.0437) ];
    cp_variant = [ (Arm64, 0.0025); (Arm32, 0.0022); (Ppc, 0.00285); (Riscv, 0.0021) ];
    cp_flavor_removed =
      [ (Aws, 0.0375); (Azure, 0.0729); (Gcp, 0.0066); (Lowlatency, 0.00085) ];
    cp_flavor_only = [ (Aws, 0.0068); (Azure, 0.0207); (Gcp, 0.0094); (Lowlatency, 0.0012) ];
    cp_flavor_variant = [ (Aws, 0.00004); (Azure, 0.0002); (Gcp, 0.00002) ];
    cp_numa = 0.004;
  }

let struct_config =
  {
    cp_present = [ (Arm64, 0.881); (Arm32, 0.774); (Ppc, 0.810); (Riscv, 0.762) ];
    cp_only = [ (Arm64, 0.202); (Arm32, 0.238); (Ppc, 0.068); (Riscv, 0.019) ];
    cp_variant = [ (Arm64, 0.0096); (Arm32, 0.0183); (Ppc, 0.0138); (Riscv, 0.0117) ];
    cp_flavor_removed =
      [ (Aws, 0.0575); (Azure, 0.0991); (Gcp, 0.0146); (Lowlatency, 0.0001) ];
    cp_flavor_only = [ (Aws, 0.0099); (Azure, 0.0306); (Gcp, 0.0081); (Lowlatency, 0.0005) ];
    cp_flavor_variant =
      [ (Aws, 0.0023); (Azure, 0.0033); (Gcp, 0.0017); (Lowlatency, 0.0006) ];
    cp_numa = 0.002;
  }

let tracepoint_config =
  {
    cp_present = [ (Arm64, 0.851); (Arm32, 0.824); (Ppc, 0.828); (Riscv, 0.831) ];
    cp_only = [ (Arm64, 0.060); (Arm32, 0.093); (Ppc, 0.033); (Riscv, 0.0) ];
    cp_variant = [];
    cp_flavor_removed = [ (Aws, 0.012); (Azure, 0.052) ];
    cp_flavor_only = [ (Aws, 0.0053); (Azure, 0.0346) ];
    cp_flavor_variant = [];
    cp_numa = 0.0;
  }

let syscall_config =
  {
    cp_present = [ (Arm64, 0.868); (Arm32, 0.913); (Ppc, 0.973); (Riscv, 0.835) ];
    cp_only = [ (Arm64, 0.006); (Arm32, 0.222); (Ppc, 0.069); (Riscv, 0.006) ];
    cp_variant = [];
    cp_flavor_removed = [];
    cp_flavor_only = [];
    cp_flavor_variant = [];
    cp_numa = 0.0;
  }

let syscall_count = 333

(* Figure 5 / Figure 6 / Table 6 attribute rates. *)
let p_static = 0.66
let p_profile_full = 0.36
let p_profile_selective = 0.11
let p_header_defined = 0.09
let p_address_taken = 0.25
let p_transform =
  Construct.[ (T_isra, 0.10); (T_constprop, 0.08); (T_part, 0.03); (T_cold, 0.08) ]
let p_collision_static_static = 0.009
let p_collision_static_global = 0.0005
let p_lsm_fraction = 150. /. 48000.
let p_kfunc_fraction = 100. /. 62000.

let inline_threshold ~gcc:(major, _minor) =
  (* Newer compilers inline a bit more aggressively; the band 28..34 makes
     functions with borderline body sizes flip across kernel versions. *)
  if major <= 5 then 28
  else if major <= 7 then 30
  else if major <= 9 then 31
  else if major <= 11 then 32
  else 34

let transform_supported t ~gcc:(major, _minor) ~arch =
  match t with
  | Construct.T_cold -> major >= 8
  | Construct.T_isra -> arch <> Config.Arm32
  | Construct.T_constprop | Construct.T_part -> true
