type arch = X86 | Arm64 | Arm32 | Ppc | Riscv
type flavor = Generic | Lowlatency | Aws | Azure | Gcp
type t = { arch : arch; flavor : flavor }

let arches = [ X86; Arm64; Arm32; Ppc; Riscv ]
let flavors = [ Generic; Lowlatency; Aws; Azure; Gcp ]

let arch_to_string = function
  | X86 -> "x86"
  | Arm64 -> "arm64"
  | Arm32 -> "arm32"
  | Ppc -> "ppc"
  | Riscv -> "riscv"

let flavor_to_string = function
  | Generic -> "generic"
  | Lowlatency -> "lowlatency"
  | Aws -> "aws"
  | Azure -> "azure"
  | Gcp -> "gcp"

let to_string t = arch_to_string t.arch ^ "/" ^ flavor_to_string t.flavor
let equal a b = a.arch = b.arch && a.flavor = b.flavor
let x86_generic = { arch = X86; flavor = Generic }

let study_configs =
  x86_generic
  :: List.map (fun arch -> { arch; flavor = Generic }) [ Arm64; Arm32; Ppc; Riscv ]
  @ List.map (fun flavor -> { arch = X86; flavor }) [ Lowlatency; Aws; Azure; Gcp ]

let ptr_size = function Arm32 -> 4 | X86 | Arm64 | Ppc | Riscv -> 8

type gate =
  | Always
  | Arch_only of arch list
  | Arch_except of arch list
  | Flavor_except of flavor list
  | Config_numa

let numa_enabled = function Arm32 | Riscv -> false | X86 | Arm64 | Ppc -> true

let gate_admits gate t =
  match gate with
  | Always -> true
  | Arch_only archs -> List.mem t.arch archs
  | Arch_except archs -> not (List.mem t.arch archs)
  | Flavor_except fls -> not (List.mem t.flavor fls)
  | Config_numa -> numa_enabled t.arch

(* Table 5 "Config #" row. *)
let option_count t =
  match t.flavor, t.arch with
  | Generic, X86 -> 8800
  | Generic, Arm64 -> 9600
  | Generic, Arm32 -> 9600
  | Generic, Ppc -> 8100
  | Generic, Riscv -> 7600
  | Lowlatency, _ -> 8800
  | Aws, _ -> 6400
  | Azure, _ -> 5300
  | Gcp, _ -> 8600
