(** Kernel-flavoured identifier generation.

    Names are built from subsystem prefixes and verb/noun pools
    (["blk_mq_insert_request"], ["ext4_find_entry_locked"], ...) and
    deduplicated through a context that remembers every name ever issued,
    so a removed function's name is never recycled in a later version
    (which would corrupt add/remove accounting). *)

type t

val create : Ds_util.Prng.t -> t

val reserve : t -> string -> unit
(** Mark a hand-picked (catalog) name as taken. *)

val subsystems : string array
(** Subsystem keys, e.g. "blk", "vfs", "tcp". *)

val pick_subsystem : t -> string

val func_name : t -> subsys:string -> string
val struct_name : t -> subsys:string -> string
val tracepoint_name : t -> subsys:string -> string * string
(** (event name, class name): the class is shared-looking but unique. *)

val syscall_name : t -> string
val field_name : t -> int -> string
(** A field name for position [i] (deterministic pool + index). *)

val param_name : int -> string

val c_file : t -> subsys:string -> string
(** A translation unit for the subsystem, e.g. ["block/blk-mq.c"]; draws
    from a small per-subsystem pool so functions share files. *)

val header_file : subsys:string -> string
(** The subsystem's header, e.g. ["include/linux/blk.h"]. *)

val includer_pool : t -> subsys:string -> n:int -> string list
(** [n] distinct .c files (possibly from other subsystems) that include a
    header. *)
