(** The kernel version matrix of the study: 17 Ubuntu kernel versions from
    v4.4 (Ubuntu 16.04) to v6.8 (Ubuntu 24.04), and the GCC version each
    was built with. *)

type t = { major : int; minor : int }

val v : int -> int -> t
val to_string : t -> string
(** e.g. ["v5.4"]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val all : t list
(** All 17 versions in release order. *)

val lts : t list
(** The five LTS versions: 4.4, 4.15, 5.4, 5.15, 6.8. *)

val is_lts : t -> bool

val pairs : t list -> (t * t) list
(** Consecutive pairs of a version list. *)

val index : t -> int
(** Position in {!all}; raises [Not_found] for unknown versions. *)

val gcc_of : t -> int * int
(** GCC version used to build that kernel (e.g. v5.4 → (9, 4)). The 17
    kernels map onto 14 distinct compiler versions, as in the paper. *)

val ubuntu_of : t -> string
(** The Ubuntu release shipping this kernel (e.g. v5.4 → "20.04"). *)
