open Ds_ctypes

type numa_req = Numa_any | Numa_on | Numa_off

type gate = {
  g_arches : Config.arch list;
  g_flavor_only : Config.flavor list;
  g_flavor_removed : Config.flavor list;
  g_numa : numa_req;
}

let gate_always =
  { g_arches = Config.arches; g_flavor_only = []; g_flavor_removed = []; g_numa = Numa_any }

let gate_admits g (cfg : Config.t) =
  List.mem cfg.arch g.g_arches
  && (g.g_flavor_only = [] || List.mem cfg.flavor g.g_flavor_only)
  && (not (List.mem cfg.flavor g.g_flavor_removed))
  && (match g.g_numa with
     | Numa_any -> true
     | Numa_on -> Config.numa_enabled cfg.arch
     | Numa_off -> not (Config.numa_enabled cfg.arch))

type func_kind = Regular | Lsm_hook | Kfunc
type caller = { cl_func : string; cl_file : string }
type transform = T_isra | T_constprop | T_part | T_cold
type inline_profile = P_full | P_selective | P_never

let transform_suffix = function
  | T_isra -> ".isra.0"
  | T_constprop -> ".constprop.0"
  | T_part -> ".part.0"
  | T_cold -> ".cold"

let transform_of_suffix = function
  | "isra" -> Some T_isra
  | "constprop" -> Some T_constprop
  | "part" -> Some T_part
  | "cold" -> Some T_cold
  | _ -> None

type func_def = {
  fn_name : string;
  fn_file : string;
  fn_line : int;
  fn_proto : Ctype.proto;
  fn_static : bool;
  fn_declared_inline : bool;
  fn_body_size : int;
  fn_address_taken : bool;
  fn_callers : caller list;
  fn_profile : inline_profile;
  fn_includers : string list;
  fn_gate : gate;
  fn_kind : func_kind;
  fn_transforms : transform list;
  fn_variant_arches : Config.arch list;
  fn_variant_flavors : Config.flavor list;
}

let fn_id f = f.fn_name ^ "@" ^ f.fn_file
let fn_is_header f = Filename.check_suffix f.fn_file ".h"
let variant_param = Ctype.{ pname = "arch_flags"; ptype = ulong }

let proto_for f (cfg : Config.t) =
  if List.mem cfg.arch f.fn_variant_arches || List.mem cfg.flavor f.fn_variant_flavors
  then { f.fn_proto with Ctype.params = f.fn_proto.Ctype.params @ [ variant_param ] }
  else f.fn_proto

type struct_src = {
  st_name : string;
  st_kind : [ `Struct | `Union ];
  st_file : string;
  st_members : (string * Ctype.t) list;
  st_arch_members : (Config.arch * (string * Ctype.t)) list;
  st_flavor_members : (Config.flavor * (string * Ctype.t)) list;
  st_gate : gate;
}

let members_for s (cfg : Config.t) =
  s.st_members
  @ List.filter_map
      (fun (a, m) -> if a = cfg.arch then Some m else None)
      s.st_arch_members
  @ List.filter_map
      (fun (f, m) -> if f = cfg.flavor then Some m else None)
      s.st_flavor_members

type tracepoint_def = {
  tp_name : string;
  tp_class : string;
  tp_fields : (string * Ctype.t) list;
  tp_params : Ctype.param list;
  tp_gate : gate;
}

let tp_struct_name tp = "trace_event_raw_" ^ tp.tp_class
let tp_func_name tp = "trace_event_raw_event_" ^ tp.tp_class

type syscall_def = { sc_name : string; sc_gate : gate }

let compat_syscall_traceable = function
  | Config.Arm32 | Config.Ppc -> true
  | Config.X86 | Config.Arm64 | Config.Riscv -> false
