(** Source-level kernel constructs: what the synthetic kernel "source
    tree" contains before configuration and compilation.

    Every construct carries a {!gate} deciding in which configurations it
    is compiled (our model of Kconfig/[#ifdef]), and optionally per-arch
    definition variants (the [task_struct]-style [#ifdef] fields of paper
    §4.2). *)

open Ds_ctypes

(** {2 Gates} *)

type numa_req = Numa_any | Numa_on | Numa_off

type gate = {
  g_arches : Config.arch list;  (** architectures where the construct exists *)
  g_flavor_only : Config.flavor list;
      (** when non-empty, present {e only} in these flavors (flavor-specific
          additions, e.g. AWS-only paravirt helpers) *)
  g_flavor_removed : Config.flavor list;  (** flavors that prune it *)
  g_numa : numa_req;
      (** [Numa_on]: requires CONFIG_NUMA; [Numa_off]: only without it (the
          fallback definition of an [#ifdef CONFIG_NUMA]/[#else] pair) *)
}

val gate_always : gate
val gate_admits : gate -> Config.t -> bool

(** {2 Functions} *)

type func_kind = Regular | Lsm_hook | Kfunc

type caller = { cl_func : string; cl_file : string }
(** A call site: the calling function and the translation unit it lives
    in. The compiler's inline decision is per call site. *)

type transform = T_isra | T_constprop | T_part | T_cold

(** Planted inlining intent, realized by attribute choices and recovered by
    the mini compiler's real decision procedure:
    - [P_full]: static, small, all call sites in the defining TU;
    - [P_selective]: global and small, call sites both inside and outside
      the defining TU (the [vfs_fsync] pattern of paper Listing 4);
    - [P_never]: too large, address-taken, or otherwise uninlinable. *)
type inline_profile = P_full | P_selective | P_never

val transform_suffix : transform -> string
(** The symbol-name suffix the compiler appends: [".isra.0"] etc. *)

val transform_of_suffix : string -> transform option
(** Classify a dotted symbol suffix component (e.g. ["isra"]). *)

type func_def = {
  fn_name : string;
  fn_file : string;  (** defining file; a [.h] file means header-defined *)
  fn_line : int;
  fn_proto : Ctype.proto;
  fn_static : bool;
  fn_declared_inline : bool;
  fn_body_size : int;  (** abstract size units, compared to the compiler's
                           inline threshold *)
  fn_address_taken : bool;
  fn_callers : caller list;
      (** explicit call sites (catalog constructs); when empty, the
          compiler synthesizes call sites from [fn_profile] *)
  fn_profile : inline_profile;
  fn_includers : string list;
      (** for header-defined functions: the [.c] files that include the
          header (each gets its own copy — function duplication) *)
  fn_gate : gate;
  fn_kind : func_kind;
  fn_transforms : transform list;
      (** transformations the compiler applies when the function is
          eligible (static, out-of-line) *)
  fn_variant_arches : Config.arch list;
      (** arches where the signature differs (an extra trailing parameter
          under an arch [#ifdef]) *)
  fn_variant_flavors : Config.flavor list;
}

val fn_id : func_def -> string
(** Unique id: ["name@file"]. Name collisions (distinct functions sharing
    a name) are distinct ids. *)

val fn_is_header : func_def -> bool

val variant_param : Ctype.param
(** The canonical extra parameter appearing in per-arch signature
    variants. *)

val proto_for : func_def -> Config.t -> Ctype.proto
(** The function's prototype as compiled under a configuration (applies
    arch/flavor variants). *)

(** {2 Structs} *)

type struct_src = {
  st_name : string;
  st_kind : [ `Struct | `Union ];
  st_file : string;
  st_members : (string * Ctype.t) list;
  st_arch_members : (Config.arch * (string * Ctype.t)) list;
      (** extra members compiled only on the given arch *)
  st_flavor_members : (Config.flavor * (string * Ctype.t)) list;
  st_gate : gate;
}

val members_for : struct_src -> Config.t -> (string * Ctype.t) list

(** {2 Tracepoints} *)

type tracepoint_def = {
  tp_name : string;  (** event name, e.g. ["block_rq_issue"] *)
  tp_class : string;  (** event class, names the event struct *)
  tp_fields : (string * Ctype.t) list;  (** event-struct fields *)
  tp_params : Ctype.param list;  (** tracing-function parameters *)
  tp_gate : gate;
}

val tp_struct_name : tracepoint_def -> string
(** ["trace_event_raw_<class>"]. *)

val tp_func_name : tracepoint_def -> string
(** ["trace_event_raw_event_<class>"]. *)

(** {2 System calls} *)

type syscall_def = {
  sc_name : string;  (** without the [sys_] prefix, e.g. ["openat"] *)
  sc_gate : gate;
}

val compat_syscall_traceable : Config.arch -> bool
(** Whether 32-bit compat system calls can be traced natively on this
    architecture (false on x86, arm64 and riscv — the paper's blind
    spot). *)
