(** Random construct generation and mutation, shared by the genesis
    builder and the evolution engine. All randomness flows through the
    context's PRNG streams, so a seed fully determines the kernel
    history. *)

open Ds_ctypes

type ctx

val create : seed:int64 -> Calibration.scale -> ctx
val prng : ctx -> Ds_util.Prng.t
val names : ctx -> Namegen.t
val scale : ctx -> Calibration.scale

val note_struct : ctx -> string -> unit
(** Make a struct name available as a pointer target for generated types. *)

val mark_hot_func : ctx -> string -> unit
val mark_hot_struct : ctx -> string -> unit
val mark_hot_tp : ctx -> string -> unit
val hot_func : ctx -> string -> bool
val hot_struct : ctx -> string -> bool
val hot_tp : ctx -> string -> bool

val sample_type : ctx -> Ctype.t
(** A plausible kernel type: scalar, pointer-to-struct, string, ... *)

val sample_gate : ctx -> Calibration.config_probs -> x86:bool -> Construct.gate
(** For [x86:true], samples which other arches/flavors also carry the
    construct; for [x86:false], assigns it to exactly one arch-only or
    flavor-only slot chosen by the calibrated weights. *)

val sample_variants : ctx -> Calibration.config_probs -> Config.arch list * Config.flavor list
val only_weight : Calibration.config_probs -> float
(** Sum of arch-only and flavor-only fractions: how many non-x86 constructs
    to create per x86 construct. *)

val gen_func :
  ctx -> x86:bool -> ?forced_name:string -> ?forced_static:bool -> unit -> Construct.func_def
(** [forced_name] bypasses the uniqueness pool (used to plant name
    collisions); [forced_static] pins staticness (static-global vs
    static-static collisions). *)

val gen_struct : ctx -> x86:bool -> Construct.struct_src
val gen_tracepoint : ctx -> x86:bool -> Construct.tracepoint_def
val gen_syscalls : ctx -> Construct.syscall_def list
(** The full syscall population (genesis only): x86-native calls plus
    arch-only ones, with real legacy names ([open], [fork], ...) among the
    calls absent from newer architectures. *)

val mutate_proto : ctx -> Ctype.proto -> Ctype.proto
(** Apply ≥1 signature change sampled from the Table 4 distribution. *)

val mutate_members : ctx -> (string * Ctype.t) list -> (string * Ctype.t) list
(** Apply ≥1 field change (add/remove/retype). *)

val mutate_tracepoint : ctx -> Construct.tracepoint_def -> Construct.tracepoint_def
