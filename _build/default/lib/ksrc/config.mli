(** Kernel configurations: architecture × flavor, and the gates that make
    constructs conditionally present (our model of [#ifdef]/Kconfig).

    The study's matrix is 5 architectures at the generic flavor plus 4
    extra flavors on x86 (paper §3.2, Table 5). *)

type arch = X86 | Arm64 | Arm32 | Ppc | Riscv
type flavor = Generic | Lowlatency | Aws | Azure | Gcp

type t = { arch : arch; flavor : flavor }

val arches : arch list
val flavors : flavor list
val arch_to_string : arch -> string
val flavor_to_string : flavor -> string
val to_string : t -> string
val equal : t -> t -> bool

val x86_generic : t

val study_configs : t list
(** The 9 configurations of Table 5: x86/generic, 4 other arches
    (generic), and 4 other flavors (x86). *)

val ptr_size : arch -> int
(** 4 on arm32, 8 elsewhere. *)

(** A gate decides whether a construct is compiled into a configuration.
    [Config_numa] models CONFIG_NUMA, disabled on arm32 and riscv in our
    matrix (this drives the readahead case study). *)
type gate =
  | Always
  | Arch_only of arch list  (** present only on these architectures *)
  | Arch_except of arch list  (** present everywhere except these *)
  | Flavor_except of flavor list  (** pruned from these flavors *)
  | Config_numa

val numa_enabled : arch -> bool
val gate_admits : gate -> t -> bool

val option_count : t -> int
(** Number of Kconfig options in this configuration (Table 5 "Config #"
    row; informational). *)
