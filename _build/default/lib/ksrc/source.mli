(** One kernel version's source tree: every construct, indexed for the
    evolution engine and the compiler.

    Functions are keyed by {!Construct.fn_id} (name[@]file) because name
    collisions are real constructs of the study; structs, tracepoints and
    system calls are keyed by name. All listing functions return
    key-sorted lists, so iteration order is deterministic. *)

type t

val empty : Version.t -> t
val version : t -> Version.t
val with_version : t -> Version.t -> t

val funcs : t -> Construct.func_def list
val structs : t -> Construct.struct_src list
val tracepoints : t -> Construct.tracepoint_def list
val syscalls : t -> Construct.syscall_def list

val counts : t -> int * int * int * int
(** (functions, structs, tracepoints, syscalls). *)

val add_func : t -> Construct.func_def -> t
(** Raises [Invalid_argument] on duplicate id. *)

val remove_func : t -> id:string -> t
val replace_func : t -> Construct.func_def -> t
val find_func : t -> id:string -> Construct.func_def option
val funcs_named : t -> string -> Construct.func_def list
val has_func_name : t -> string -> bool

val prune_dangling_callers : t -> t
(** Drop call edges whose calling function no longer exists; run once per
    evolution step rather than per removal. *)

val add_struct : t -> Construct.struct_src -> t
val remove_struct : t -> string -> t
val replace_struct : t -> Construct.struct_src -> t
val find_struct : t -> string -> Construct.struct_src option

val add_tracepoint : t -> Construct.tracepoint_def -> t
val remove_tracepoint : t -> string -> t
val replace_tracepoint : t -> Construct.tracepoint_def -> t
val find_tracepoint : t -> string -> Construct.tracepoint_def option

val add_syscall : t -> Construct.syscall_def -> t
val find_syscall : t -> string -> Construct.syscall_def option

val funcs_in : t -> Config.t -> Construct.func_def list
val structs_in : t -> Config.t -> Construct.struct_src list
val tracepoints_in : t -> Config.t -> Construct.tracepoint_def list
val syscalls_in : t -> Config.t -> Construct.syscall_def list
(** Constructs admitted by the configuration's gates. *)

val check_invariants : t -> (string list, string) result
(** Sanity checks used by tests: call edges reference existing function
    names, header functions have includers, ids are well-formed. Returns
    the list of checked categories, or an error message. *)
