(** The hand-written part of the synthetic kernel: named constructs whose
    evolution follows real, documented kernel history. These drive the
    paper's case studies (biotop §2.5/Fig. 4-left, readahead Fig. 4-right)
    and give the eBPF corpus real names to depend on.

    Everything here is {e pinned}: the random evolution engine never
    removes or mutates catalog constructs; their changes come exclusively
    from the scripted {!events_for} timeline. *)

type event =
  | Add_func of Construct.func_def
  | Remove_func of string  (** by id (name[@]file) *)
  | Update_func of string * (Construct.func_def -> Construct.func_def)
  | Add_struct of Construct.struct_src
  | Remove_struct of string
  | Update_struct of string * (Construct.struct_src -> Construct.struct_src)
  | Add_tracepoint of Construct.tracepoint_def
  | Remove_tracepoint of string
  | Update_tracepoint of string * (Construct.tracepoint_def -> Construct.tracepoint_def)

val install_genesis : Source.t -> Source.t
(** Add the v4.4 catalog constructs to an (empty) source tree. *)

val events_for : Version.t -> event list
(** Scripted timeline entries to apply when evolving {e into} the given
    version. *)

val pinned : string -> bool
(** Whether a construct name is catalog-owned (protected from random
    mutation/removal). *)

val all_names : string list
(** Every name the catalog will ever introduce (reserved in the name
    generator so random constructs cannot collide with it). *)
