open Ds_ctypes
open Construct
module C = Ctype

type event =
  | Add_func of Construct.func_def
  | Remove_func of string
  | Update_func of string * (Construct.func_def -> Construct.func_def)
  | Add_struct of Construct.struct_src
  | Remove_struct of string
  | Update_struct of string * (Construct.struct_src -> Construct.struct_src)
  | Add_tracepoint of Construct.tracepoint_def
  | Remove_tracepoint of string
  | Update_tracepoint of string * (Construct.tracepoint_def -> Construct.tracepoint_def)

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let proto ?(variadic = false) ret params =
  C.{ ret; params = List.map (fun (pname, ptype) -> { pname; ptype }) params; variadic }

let sref n = C.Ptr (C.Struct_ref n)

let mk_fn ~name ~file ?(line = 100) ?(static = false) ?(inline = false) ?(size = 80)
    ?(addr_taken = false) ?(callers = []) ?(profile = P_never) ?(includers = [])
    ?(gate = gate_always) ?(kind = Regular) ?(transforms = []) p =
  {
    fn_name = name;
    fn_file = file;
    fn_line = line;
    fn_proto = p;
    fn_static = static;
    fn_declared_inline = inline;
    fn_body_size = size;
    fn_address_taken = addr_taken;
    fn_callers = List.map (fun (cl_func, cl_file) -> { cl_func; cl_file }) callers;
    fn_profile = profile;
    fn_includers = includers;
    fn_gate = gate;
    fn_kind = kind;
    fn_transforms = transforms;
    fn_variant_arches = [];
    fn_variant_flavors = [];
  }

let mk_struct ~name ~file ?(kind = `Struct) ?(arch_members = []) ?(gate = gate_always) members =
  {
    st_name = name;
    st_kind = kind;
    st_file = file;
    st_members = members;
    st_arch_members = arch_members;
    st_flavor_members = [];
    st_gate = gate;
  }

let mk_tp ~name ?(cls = "") ?(gate = gate_always) ~fields ~params () =
  {
    tp_name = name;
    tp_class = (if cls = "" then name else cls);
    tp_fields = fields;
    tp_params = List.map (fun (pname, ptype) -> C.{ pname; ptype }) params;
    tp_gate = gate;
  }

(* ------------------------------------------------------------------ *)
(* Structs (v4.4 baseline)                                             *)
(* ------------------------------------------------------------------ *)

let pt_regs =
  let reg = C.ulong in
  mk_struct ~name:"pt_regs" ~file:"arch/pt_regs.h"
    ~arch_members:
      Config.
        [
          (X86, ("r15", reg)); (X86, ("r14", reg)); (X86, ("r13", reg));
          (X86, ("r12", reg)); (X86, ("bp", reg)); (X86, ("bx", reg));
          (X86, ("r11", reg)); (X86, ("r10", reg)); (X86, ("r9", reg));
          (X86, ("r8", reg)); (X86, ("ax", reg)); (X86, ("cx", reg));
          (X86, ("dx", reg)); (X86, ("si", reg)); (X86, ("di", reg));
          (X86, ("orig_ax", reg)); (X86, ("ip", reg)); (X86, ("sp", reg));
          (Arm64, ("regs", C.Array (reg, 31))); (Arm64, ("sp", reg));
          (Arm64, ("pc", reg)); (Arm64, ("pstate", reg));
          (Arm32, ("uregs", C.Array (reg, 18)));
          (Ppc, ("gpr", C.Array (reg, 32))); (Ppc, ("nip", reg)); (Ppc, ("msr", reg));
          (Riscv, ("epc", reg)); (Riscv, ("ra", reg)); (Riscv, ("sp", reg));
          (Riscv, ("a0", reg)); (Riscv, ("a1", reg)); (Riscv, ("a2", reg));
          (Riscv, ("a3", reg)); (Riscv, ("a4", reg)); (Riscv, ("a5", reg));
        ]
    []

let task_struct =
  mk_struct ~name:"task_struct" ~file:"include/linux/sched.h"
    ~arch_members:
      Config.[ (Ppc, ("thread_fpu", C.ulong)); (Arm64, ("thread_cpu_context", C.ulong)) ]
    [
      ("state", C.long);
      ("stack", C.void_ptr);
      ("flags", C.uint);
      ("prio", C.int_);
      ("static_prio", C.int_);
      ("mm", sref "mm_struct");
      ("pid", C.Typedef_ref "pid_t");
      ("tgid", C.Typedef_ref "pid_t");
      ("parent", sref "task_struct");
      ("utime", C.Typedef_ref "cputime_t");
      ("stime", C.Typedef_ref "cputime_t");
      ("comm", C.Array (C.char_, 16));
      ("files", sref "files_struct");
      ("nvcsw", C.ulong);
      ("nivcsw", C.ulong);
    ]

let request =
  mk_struct ~name:"request" ~file:"include/linux/blkdev.h"
    [
      ("q", sref "request_queue");
      ("cmd_flags", C.uint);
      ("rq_flags", C.uint);
      ("__sector", C.Typedef_ref "sector_t");
      ("__data_len", C.uint);
      ("bio", sref "bio");
      ("rq_disk", sref "gendisk");
      ("start_time_ns", C.u64);
    ]

let request_queue =
  mk_struct ~name:"request_queue" ~file:"include/linux/blkdev.h"
    [
      ("queuedata", C.void_ptr);
      ("queue_flags", C.ulong);
      ("nr_requests", C.ulong);
    ]

let baseline_structs =
  [
    pt_regs;
    task_struct;
    request;
    request_queue;
    mk_struct ~name:"gendisk" ~file:"include/linux/genhd.h"
      [ ("major", C.int_); ("first_minor", C.int_); ("disk_name", C.Array (C.char_, 32)) ];
    mk_struct ~name:"bio" ~file:"include/linux/blk_types.h"
      [
        ("bi_next", sref "bio");
        ("bi_opf", C.uint);
        ("bi_flags", C.ushort);
        ("bi_iter_sector", C.Typedef_ref "sector_t");
        ("bi_size", C.uint);
      ];
    mk_struct ~name:"file" ~file:"include/linux/fs.h"
      [
        ("f_inode", sref "inode");
        ("f_flags", C.uint);
        ("f_mode", C.uint);
        ("f_pos", C.Typedef_ref "loff_t");
        ("f_count", C.u64);
      ];
    mk_struct ~name:"inode" ~file:"include/linux/fs.h"
      [
        ("i_mode", C.Typedef_ref "umode_t");
        ("i_ino", C.ulong);
        ("i_size", C.Typedef_ref "loff_t");
        ("i_sb", sref "super_block");
        ("i_rdev", C.Typedef_ref "dev_t");
      ];
    mk_struct ~name:"dentry" ~file:"include/linux/dcache.h"
      [ ("d_parent", sref "dentry"); ("d_inode", sref "inode"); ("d_iname", C.Array (C.char_, 32)) ];
    mk_struct ~name:"super_block" ~file:"include/linux/fs.h"
      [ ("s_dev", C.Typedef_ref "dev_t"); ("s_blocksize", C.ulong); ("s_magic", C.ulong) ];
    mk_struct ~name:"filename" ~file:"include/linux/fs.h"
      [ ("name", C.Ptr (C.Const C.char_)); ("uptr", C.Ptr (C.Const C.char_)); ("refcnt", C.int_) ];
    mk_struct ~name:"mm_struct" ~file:"include/linux/mm_types.h"
      [ ("mmap", sref "vm_area_struct"); ("total_vm", C.ulong); ("hiwater_rss", C.ulong) ];
    mk_struct ~name:"vm_area_struct" ~file:"include/linux/mm_types.h"
      [ ("vm_start", C.ulong); ("vm_end", C.ulong); ("vm_flags", C.ulong) ];
    mk_struct ~name:"page" ~file:"include/linux/mm_types.h"
      [ ("flags", C.ulong); ("_refcount", C.int_); ("mapping", sref "address_space") ];
    mk_struct ~name:"address_space" ~file:"include/linux/fs.h"
      [ ("host", sref "inode"); ("nrpages", C.ulong) ];
    mk_struct ~name:"sock" ~file:"include/net/sock.h"
      [
        ("sk_family", C.ushort);
        ("sk_state", C.uchar);
        ("sk_rcvbuf", C.int_);
        ("sk_sndbuf", C.int_);
        ("sk_max_ack_backlog", C.u32);
      ];
    mk_struct ~name:"sk_buff" ~file:"include/linux/skbuff.h"
      [ ("len", C.uint); ("data_len", C.uint); ("data", C.Ptr C.uchar); ("head", C.Ptr C.uchar) ];
    mk_struct ~name:"files_struct" ~file:"include/linux/fdtable.h"
      [ ("count", C.int_); ("next_fd", C.uint) ];
  ]

(* ------------------------------------------------------------------ *)
(* Functions (v4.4 baseline)                                           *)
(* ------------------------------------------------------------------ *)

let blk_core = "block/blk-core.c"
let blk_mq = "block/blk-mq.c"

let baseline_funcs =
  [
    (* -- biotop cluster ------------------------------------------------ *)
    mk_fn ~name:"blk_mq_start_request" ~file:blk_mq ~line:680
      (proto C.void [ ("rq", sref "request") ]);
    mk_fn ~name:"blk_mq_end_request" ~file:blk_mq ~line:520
      (proto C.void [ ("rq", sref "request"); ("error", C.int_) ]);
    mk_fn ~name:"blk_mq_bio_to_request" ~file:blk_mq ~line:1200 ~static:true ~size:60
      (proto C.void [ ("rq", sref "request"); ("bio", sref "bio") ]);
    mk_fn ~name:"blk_insert_cloned_request" ~file:blk_core ~line:1400
      (proto C.int_ [ ("q", sref "request_queue"); ("rq", sref "request") ]);
    mk_fn ~name:"blk_account_io_start" ~file:blk_core ~line:120 ~size:40
      ~callers:[ ("blk_mq_bio_to_request", blk_mq); ("blk_insert_cloned_request", blk_core) ]
      (proto C.void [ ("rq", sref "request"); ("new_io", C.bool_) ]);
    mk_fn ~name:"blk_account_io_done" ~file:blk_core ~line:160 ~size:40
      ~callers:[ ("blk_mq_end_request", blk_mq) ]
      (proto C.void [ ("rq", sref "request"); ("now", C.u64) ]);
    (* -- vfs / unlink / fsync ------------------------------------------ *)
    mk_fn ~name:"do_unlinkat" ~file:"fs/namei.c" ~line:4000
      (proto C.int_ [ ("dfd", C.int_); ("pathname", C.Ptr (C.Const C.char_)) ]);
    mk_fn ~name:"__x64_sys_fsync" ~file:"fs/sync.c" ~line:200
      (proto C.long [ ("fd", C.uint) ]);
    mk_fn ~name:"__x64_sys_fdatasync" ~file:"fs/sync.c" ~line:230
      (proto C.long [ ("fd", C.uint) ]);
    mk_fn ~name:"aio_fsync_work" ~file:"fs/aio.c" ~line:1560
      (proto C.void [ ("work", C.void_ptr) ]);
    mk_fn ~name:"loop_update_dio" ~file:"drivers/block/loop.c" ~line:660
      (proto C.void [ ("lo", C.void_ptr) ]);
    mk_fn ~name:"vfs_fsync" ~file:"fs/sync.c" ~line:213 ~size:12
      ~callers:
        [
          ("__x64_sys_fsync", "fs/sync.c");
          ("__x64_sys_fdatasync", "fs/sync.c");
          ("aio_fsync_work", "fs/aio.c");
          ("loop_update_dio", "drivers/block/loop.c");
        ]
      (proto C.int_ [ ("file", sref "file"); ("datasync", C.int_) ]);
    mk_fn ~name:"vfs_rename" ~file:"fs/namei.c" ~line:4400
      (proto C.int_
         [
           ("old_dir", sref "inode"); ("old_dentry", sref "dentry");
           ("new_dir", sref "inode"); ("new_dentry", sref "dentry");
           ("delegated_inode", C.Ptr (sref "inode")); ("flags", C.uint);
         ]);
    mk_fn ~name:"vfs_create" ~file:"fs/namei.c" ~line:3000
      (proto C.int_
         [
           ("dir", sref "inode"); ("dentry", sref "dentry");
           ("mode", C.Typedef_ref "umode_t"); ("want_excl", C.bool_);
         ]);
    mk_fn ~name:"vfs_read" ~file:"fs/read_write.c" ~line:450
      (proto (C.Typedef_ref "ssize_t")
         [
           ("file", sref "file"); ("buf", C.char_ptr);
           ("count", C.size_t); ("pos", C.Ptr (C.Typedef_ref "loff_t"));
         ]);
    mk_fn ~name:"vfs_write" ~file:"fs/read_write.c" ~line:550
      (proto (C.Typedef_ref "ssize_t")
         [
           ("file", sref "file"); ("buf", C.Ptr (C.Const C.char_));
           ("count", C.size_t); ("pos", C.Ptr (C.Typedef_ref "loff_t"));
         ]);
    mk_fn ~name:"do_sys_open" ~file:"fs/open.c" ~line:1050
      (proto C.long
         [
           ("dfd", C.int_); ("filename", C.Ptr (C.Const C.char_));
           ("flags", C.int_); ("mode", C.Typedef_ref "umode_t");
         ]);
    (* -- readahead cluster --------------------------------------------- *)
    mk_fn ~name:"ondemand_readahead" ~file:"mm/readahead.c" ~line:440 ~static:true ~size:90
      (proto C.ulong
         [ ("mapping", sref "address_space"); ("filp", sref "file"); ("req_size", C.ulong) ]);
    mk_fn ~name:"page_cache_sync_readahead" ~file:"mm/readahead.c" ~line:520
      (proto C.void
         [ ("mapping", sref "address_space"); ("filp", sref "file"); ("req_size", C.ulong) ]);
    mk_fn ~name:"__do_page_cache_readahead" ~file:"mm/readahead.c" ~line:150 ~size:70
      ~callers:[ ("ondemand_readahead", "mm/readahead.c") ]
      (proto C.ulong
         [
           ("mapping", sref "address_space"); ("filp", sref "file");
           ("offset", C.ulong); ("nr_to_read", C.ulong); ("lookahead_size", C.ulong);
         ]);
    (* NUMA twin pair: a normal global when CONFIG_NUMA=y, a header-defined
       static copy otherwise (drives the readahead D/F cells on arm32 and
       riscv). *)
    mk_fn ~name:"__page_cache_alloc" ~file:"mm/filemap.c" ~line:980 ~size:45
      ~gate:{ gate_always with g_numa = Numa_on }
      (proto (sref "page") [ ("gfp", C.Typedef_ref "gfp_t") ]);
    mk_fn ~name:"__page_cache_alloc" ~file:"include/linux/pagemap.h" ~line:280 ~static:true
      ~inline:true ~size:8
      ~includers:
        [ "mm/readahead.c"; "mm/filemap.c"; "fs/ext4-inode.c"; "fs/btrfs-file.c"; "fs/nfs-read.c" ]
      ~gate:{ gate_always with g_numa = Numa_off }
      (proto (sref "page") [ ("gfp", C.Typedef_ref "gfp_t") ]);
    (* -- scheduler / accounting ---------------------------------------- *)
    mk_fn ~name:"account_idle_time" ~file:"kernel/sched-cputime.c" ~line:220
      (proto C.void [ ("cputime", C.Typedef_ref "cputime_t") ]);
    mk_fn ~name:"account_process_tick" ~file:"kernel/sched-cputime.c" ~line:470
      (proto C.void [ ("p", sref "task_struct"); ("user_tick", C.int_) ]);
    mk_fn ~name:"finish_task_switch" ~file:"kernel/sched-core.c" ~line:2700 ~static:true ~size:90
      (proto (sref "task_struct") [ ("prev", sref "task_struct") ]);
    mk_fn ~name:"wake_up_new_task" ~file:"kernel/sched-core.c" ~line:2400
      (proto C.void [ ("p", sref "task_struct") ]);
    (* -- duplication / collision exhibits ------------------------------- *)
    mk_fn ~name:"get_order" ~file:"include/linux/getorder.h" ~line:30 ~static:true ~inline:true
      ~size:6
      ~includers:
        [
          "mm/mm-core.c"; "mm/mm-util.c"; "block/blk-core.c"; "net/net-core.c";
          "drivers/usb-core.c"; "fs/ext4-inode.c"; "kernel/sched-core.c"; "lib/lib-util.c";
        ]
      (proto C.int_ [ ("size", C.ulong) ]);
    mk_fn ~name:"destroy_inodecache" ~file:"fs/ext4-super.c" ~line:1100 ~static:true ~size:50
      (proto C.void []);
    mk_fn ~name:"destroy_inodecache" ~file:"fs/xfs-super.c" ~line:900 ~static:true ~size:48
      (proto C.void []);
    mk_fn ~name:"destroy_inodecache" ~file:"fs/btrfs-super.c" ~line:1300 ~static:true ~size:52
      (proto C.void []);
    mk_fn ~name:"do_readahead" ~file:"mm/readahead.c" ~line:600 ~static:true ~size:44
      (proto C.int_
         [ ("mapping", sref "address_space"); ("filp", sref "file"); ("nr", C.ulong) ]);
    mk_fn ~name:"do_readahead" ~file:"fs/jbd2-recovery.c" ~line:250 ~static:true ~size:61
      (proto C.int_ [ ("journal", C.void_ptr); ("start", C.ulong) ]);
    (* -- kfuncs (paper §4.1): callable from eBPF, no stable interface --- *)
    mk_fn ~name:"bpf_task_from_pid" ~file:"kernel/bpf-helpers.c" ~line:900 ~kind:Kfunc
      (proto (sref "task_struct") [ ("pid", C.int_) ]);
    (* -- LSM hooks ------------------------------------------------------ *)
    mk_fn ~name:"security_file_open" ~file:"security/security.c" ~line:1500 ~kind:Lsm_hook
      (proto C.int_ [ ("file", sref "file") ]);
    mk_fn ~name:"security_task_alloc" ~file:"security/security.c" ~line:1600 ~kind:Lsm_hook
      (proto C.int_ [ ("task", sref "task_struct"); ("clone_flags", C.ulong) ]);
    mk_fn ~name:"security_inode_create" ~file:"security/security.c" ~line:1200 ~kind:Lsm_hook
      (proto C.int_
         [ ("dir", sref "inode"); ("dentry", sref "dentry"); ("mode", C.Typedef_ref "umode_t") ]);
    mk_fn ~name:"security_socket_connect" ~file:"security/security.c" ~line:2000 ~kind:Lsm_hook
      (proto C.int_ [ ("sock", sref "sock"); ("addrlen", C.int_) ]);
    (* -- networking (tcp corpus deps) ----------------------------------- *)
    mk_fn ~name:"tcp_v4_connect" ~file:"net/tcp-core.c" ~line:200
      (proto C.int_ [ ("sk", sref "sock"); ("addr_len", C.int_) ]);
    mk_fn ~name:"tcp_v6_connect" ~file:"net/ipv6-core.c" ~line:180
      (proto C.int_ [ ("sk", sref "sock"); ("addr_len", C.int_) ]);
    mk_fn ~name:"tcp_rcv_state_process" ~file:"net/tcp-core.c" ~line:6100
      (proto C.int_ [ ("sk", sref "sock"); ("skb", sref "sk_buff") ]);
    mk_fn ~name:"tcp_rtt_estimator" ~file:"net/tcp-core.c" ~line:700 ~static:true ~size:20
      ~profile:P_full
      (proto C.void [ ("sk", sref "sock"); ("mrtt_us", C.long) ]);
  ]

(* ------------------------------------------------------------------ *)
(* Tracepoints (v4.4 baseline)                                         *)
(* ------------------------------------------------------------------ *)

let block_rq_fields =
  [
    ("dev", C.Typedef_ref "dev_t");
    ("sector", C.Typedef_ref "sector_t");
    ("nr_sector", C.uint);
    ("rwbs", C.Array (C.char_, 8));
    ("comm", C.Array (C.char_, 16));
  ]

let baseline_tracepoints =
  [
    mk_tp ~name:"block_rq_issue" ~cls:"block_rq" ~fields:block_rq_fields
      ~params:[ ("q", sref "request_queue"); ("rq", sref "request") ]
      ();
    mk_tp ~name:"block_rq_complete" ~cls:"block_rq_complete" ~fields:block_rq_fields
      ~params:[ ("rq", sref "request"); ("error", C.int_); ("nr_bytes", C.uint) ]
      ();
    mk_tp ~name:"block_rq_insert" ~cls:"block_rq_insert" ~fields:block_rq_fields
      ~params:[ ("q", sref "request_queue"); ("rq", sref "request") ]
      ();
    mk_tp ~name:"block_bio_queue" ~cls:"block_bio"
      ~fields:[ ("dev", C.Typedef_ref "dev_t"); ("sector", C.Typedef_ref "sector_t"); ("rwbs", C.Array (C.char_, 8)) ]
      ~params:[ ("q", sref "request_queue"); ("bio", sref "bio") ]
      ();
    mk_tp ~name:"sched_switch" ~cls:"sched_switch"
      ~fields:
        [
          ("prev_comm", C.Array (C.char_, 16));
          ("prev_pid", C.Typedef_ref "pid_t");
          ("prev_prio", C.int_);
          ("prev_state", C.long);
          ("next_comm", C.Array (C.char_, 16));
          ("next_pid", C.Typedef_ref "pid_t");
          ("next_prio", C.int_);
        ]
      ~params:[ ("prev", sref "task_struct"); ("next", sref "task_struct") ]
      ();
    mk_tp ~name:"sched_wakeup" ~cls:"sched_wakeup"
      ~fields:
        [
          ("comm", C.Array (C.char_, 16));
          ("pid", C.Typedef_ref "pid_t");
          ("prio", C.int_);
          ("target_cpu", C.int_);
        ]
      ~params:[ ("p", sref "task_struct") ]
      ();
    mk_tp ~name:"sched_process_exit" ~cls:"sched_process_template"
      ~fields:[ ("comm", C.Array (C.char_, 16)); ("pid", C.Typedef_ref "pid_t"); ("prio", C.int_) ]
      ~params:[ ("p", sref "task_struct") ]
      ();
    mk_tp ~name:"itimer_state" ~cls:"itimer_state"
      ~fields:
        [
          ("which", C.int_);
          ("expires", C.ulong);
          ("value_sec", C.long);
          ("value_usec", C.long);
        ]
      ~params:[ ("which", C.int_); ("expires", C.ulong) ]
      ();
    mk_tp ~name:"kmem_alloc" ~cls:"kmem_alloc"
      ~fields:
        [
          ("call_site", C.ulong);
          ("ptr", C.void_ptr);
          ("bytes_req", C.size_t);
          ("bytes_alloc", C.size_t);
        ]
      ~params:[ ("call_site", C.ulong); ("ptr", C.void_ptr) ]
      ();
    mk_tp ~name:"kmem_alloc_node" ~cls:"kmem_alloc_node"
      ~fields:
        [
          ("call_site", C.ulong);
          ("ptr", C.void_ptr);
          ("bytes_req", C.size_t);
          ("bytes_alloc", C.size_t);
          ("node", C.int_);
        ]
      ~params:[ ("call_site", C.ulong); ("ptr", C.void_ptr); ("node", C.int_) ]
      ();
    mk_tp ~name:"mm_vmscan_direct_reclaim_begin" ~cls:"mm_vmscan_direct_reclaim_begin"
      ~fields:[ ("order", C.int_); ("gfp_flags", C.uint) ]
      ~params:[ ("order", C.int_); ("gfp_flags", C.Typedef_ref "gfp_t") ]
      ();
    mk_tp ~name:"mm_vmscan_direct_reclaim_end" ~cls:"mm_vmscan_direct_reclaim_end"
      ~fields:[ ("nr_reclaimed", C.ulong) ]
      ~params:[ ("nr_reclaimed", C.ulong) ]
      ();
  ]

(* ------------------------------------------------------------------ *)
(* Scripted timeline                                                   *)
(* ------------------------------------------------------------------ *)

let set_proto p f = { f with fn_proto = p }

let drop_param name (f : func_def) =
  let params = List.filter (fun (q : C.param) -> q.pname <> name) f.fn_proto.C.params in
  { f with fn_proto = { f.fn_proto with C.params } }

let retype_param name ty (f : func_def) =
  let params =
    List.map
      (fun (q : C.param) -> if q.pname = name then { q with C.ptype = ty } else q)
      f.fn_proto.C.params
  in
  { f with fn_proto = { f.fn_proto with C.params } }

let retype_field name ty (s : struct_src) =
  {
    s with
    st_members = List.map (fun (n, t) -> if n = name then (n, ty) else (n, t)) s.st_members;
  }

let rename_field old_ new_ ?ty (s : struct_src) =
  {
    s with
    st_members =
      List.map
        (fun (n, t) -> if n = old_ then (new_, Option.value ~default:t ty) else (n, t))
        s.st_members;
  }

let add_field n ty (s : struct_src) = { s with st_members = s.st_members @ [ (n, ty) ] }
let drop_field n (s : struct_src) =
  { s with st_members = List.filter (fun (m, _) -> m <> n) s.st_members }

let timeline : (Version.t * event list) list =
  [
    ( Version.v 4 13,
      [
        (* 18b43a9-style: cputime_t becomes u64 nanoseconds. *)
        Update_func
          ( "account_idle_time@kernel/sched-cputime.c",
            fun f ->
              retype_param "cputime" C.u64
                { f with fn_proto = { f.fn_proto with C.params = f.fn_proto.C.params } } );
        Update_struct ("task_struct", retype_field "utime" C.u64);
        Update_struct ("task_struct", retype_field "stime" C.u64);
      ] );
    ( Version.v 4 15,
      [
        (* do_unlinkat takes struct filename* instead of char* — the
           Listing 1 / §2.3 stray-read example. *)
        Update_func
          ("do_unlinkat@fs/namei.c", retype_param "pathname" (sref "filename"));
      ] );
    ( Version.v 4 18,
      [
        (* c534aa3: __do_page_cache_readahead returns unsigned int. *)
        Update_func
          ( "__do_page_cache_readahead@mm/readahead.c",
            fun f -> set_proto { f.fn_proto with C.ret = C.uint } f );
      ] );
    ( Version.v 5 0,
      [
        (* bd40a17: itimer_state value_usec -> value_nsec. *)
        Update_tracepoint
          ( "itimer_state",
            fun tp ->
              {
                tp with
                tp_fields =
                  List.map
                    (fun (n, ty) -> if n = "value_usec" then ("value_nsec", ty) else (n, ty))
                    tp.tp_fields;
              } );
      ] );
    ( Version.v 5 8,
      [
        (* b5af37a: blk_account_io_start loses new_io. *)
        Update_func ("blk_account_io_start@block/blk-core.c", drop_param "new_io");
        (* 2c68423: refactor leads to selective inline: now small, called
           both from its own TU and from others. *)
        Update_func
          ( "__do_page_cache_readahead@mm/readahead.c",
            fun f ->
              {
                f with
                fn_body_size = 14;
                fn_callers =
                  [
                    { cl_func = "ondemand_readahead"; cl_file = "mm/readahead.c" };
                    { cl_func = "page_cache_sync_readahead"; cl_file = "mm/readahead.c" };
                    { cl_func = "do_sys_open"; cl_file = "fs/open.c" };
                  ];
              } );
      ] );
    ( Version.v 5 11,
      [
        (* 8238287: renamed to do_page_cache_ra. *)
        Remove_func "__do_page_cache_readahead@mm/readahead.c";
        Add_func
          (mk_fn ~name:"do_page_cache_ra" ~file:"mm/readahead.c" ~line:150 ~size:14
             ~callers:
               [
                 ("ondemand_readahead", "mm/readahead.c");
                 ("page_cache_sync_readahead", "mm/readahead.c");
                 ("do_sys_open", "fs/open.c");
               ]
             (proto C.void
                [
                  ("ractl", sref "readahead_control");
                  ("nr_to_read", C.ulong);
                  ("lookahead_size", C.ulong);
                ]));
        Add_struct
          (mk_struct ~name:"readahead_control" ~file:"include/linux/pagemap.h"
             [ ("file", sref "file"); ("mapping", sref "address_space"); ("_index", C.ulong) ]);
        (* a54895f: block_rq_issue loses the request_queue argument. *)
        Update_tracepoint
          ( "block_rq_issue",
            fun tp ->
              { tp with tp_params = List.filter (fun (p : C.param) -> p.pname <> "q") tp.tp_params }
          );
        Update_tracepoint
          ( "block_rq_insert",
            fun tp ->
              { tp with tp_params = List.filter (fun (p : C.param) -> p.pname <> "q") tp.tp_params }
          );
      ] );
    ( Version.v 5 13,
      [
        (* 9fe6145: vfs_rename takes a single renamedata. *)
        Add_struct
          (mk_struct ~name:"renamedata" ~file:"include/linux/fs.h"
             [
               ("old_dir", sref "inode"); ("old_dentry", sref "dentry");
               ("new_dir", sref "inode"); ("new_dentry", sref "dentry");
               ("delegated_inode", C.Ptr (sref "inode")); ("flags", C.uint);
             ]);
        Update_func
          ( "vfs_rename@fs/namei.c",
            set_proto (proto C.int_ [ ("rd", sref "renamedata") ]) );
        (* 6521f89: a user_namespace argument lands in front of vfs_create. *)
        Update_func
          ( "vfs_create@fs/namei.c",
            fun f ->
              set_proto
                (proto C.int_
                   (("mnt_userns", sref "user_namespace")
                   :: List.map
                        (fun (q : C.param) -> (q.pname, q.ptype))
                        f.fn_proto.C.params))
                f );
      ] );
    ( Version.v 5 15,
      [
        (* 2f064a5: task_struct.state becomes unsigned int __state. *)
        Update_struct ("task_struct", rename_field "state" "__state" ~ty:C.uint);
        (* request_queue gains disk; request.rq_disk still present —
           "both fields coexist in that version" (Fig. 4). *)
        Update_struct ("request_queue", add_field "disk" (sref "gendisk"));
      ] );
    ( Version.v 5 19,
      [
        (* kfuncs come and go without notice (f85671c, 6499fe6, d2dcc67) *)
        Add_func
          (mk_fn ~name:"bpf_task_acquire" ~file:"kernel/bpf-helpers.c" ~line:910 ~kind:Kfunc
             (proto (sref "task_struct") [ ("p", sref "task_struct") ]));
        Add_func
          (mk_fn ~name:"bpf_task_release" ~file:"kernel/bpf-helpers.c" ~line:920 ~kind:Kfunc
             (proto C.void [ ("p", sref "task_struct") ]));
        Add_func
          (mk_fn ~name:"bpf_ct_insert_entry" ~file:"net/nf-core.c" ~line:400 ~kind:Kfunc
             (proto C.int_ [ ("ct", C.void_ptr) ]));
        (* be6bfe3: blk_account_io_{start,done} become static inline
           wrappers — fully inlined, unattachable. *)
        Update_func
          ( "blk_account_io_start@block/blk-core.c",
            fun f ->
              {
                f with
                fn_static = true;
                fn_declared_inline = true;
                fn_body_size = 4;
                fn_callers = [ { cl_func = "blk_insert_cloned_request"; cl_file = blk_core } ];
              } );
        Update_func
          ( "blk_account_io_done@block/blk-core.c",
            fun f ->
              {
                f with
                fn_static = true;
                fn_declared_inline = true;
                fn_body_size = 4;
                fn_callers = [ { cl_func = "blk_insert_cloned_request"; cl_file = blk_core } ];
              } );
        (* ... and the real work moves to __blk_account_io_{start,done};
           the compiler happens to inline the start variant (the failed
           first fix of issue #4261). *)
        Add_func
          (mk_fn ~name:"__blk_account_io_start" ~file:blk_core ~line:125 ~static:true ~size:10
             ~callers:[ ("blk_insert_cloned_request", blk_core) ]
             (proto C.void [ ("rq", sref "request") ]));
        Add_func
          (mk_fn ~name:"__blk_account_io_done" ~file:blk_core ~line:170 ~size:40
             ~callers:[ ("blk_mq_end_request", blk_mq) ]
             (proto C.void [ ("rq", sref "request"); ("now", C.u64) ]));
        (* 56a4d67: do_page_cache_ra goes static (fully inlined);
           page_cache_ra_order is exposed instead. *)
        Update_func
          ( "do_page_cache_ra@mm/readahead.c",
            fun f ->
              {
                f with
                fn_static = true;
                fn_body_size = 10;
                fn_callers =
                  [
                    { cl_func = "ondemand_readahead"; cl_file = "mm/readahead.c" };
                    { cl_func = "page_cache_sync_readahead"; cl_file = "mm/readahead.c" };
                  ];
              } );
        Add_func
          (mk_fn ~name:"page_cache_ra_order" ~file:"mm/readahead.c" ~line:500
             (proto C.void
                [
                  ("ractl", sref "readahead_control");
                  ("ra", C.void_ptr);
                  ("new_order", C.uint);
                ]));
        (* bb3c579: __page_cache_alloc becomes a wrapper around
           filemap_alloc_folio and is fully inlined (NUMA side). *)
        Update_func
          ( "__page_cache_alloc@mm/filemap.c",
            fun f ->
              {
                f with
                fn_static = true;
                fn_declared_inline = true;
                fn_body_size = 3;
                fn_callers = [ { cl_func = "ondemand_readahead"; cl_file = "mm/readahead.c" } ];
              } );
        Add_func
          (mk_fn ~name:"filemap_alloc_folio" ~file:"mm/filemap.c" ~line:990
             (proto (sref "folio") [ ("gfp", C.Typedef_ref "gfp_t"); ("order", C.uint) ]));
        Add_struct
          (mk_struct ~name:"folio" ~file:"include/linux/mm_types.h"
             [ ("flags", C.ulong); ("_refcount", C.int_); ("mapping", sref "address_space") ]);
        (* rq_disk leaves struct request (request_queue::disk remains). *)
        Update_struct ("request", drop_field "rq_disk");
      ] );
    ( Version.v 6 2,
      [
        (* 11e9734: kmem_alloc removed; the node variant takes its place. *)
        Remove_tracepoint "kmem_alloc";
        Remove_tracepoint "kmem_alloc_node";
        Add_tracepoint
          (mk_tp ~name:"kmem_alloc" ~cls:"kmem_alloc2"
             ~fields:
               [
                 ("call_site", C.ulong);
                 ("ptr", C.void_ptr);
                 ("bytes_req", C.size_t);
                 ("bytes_alloc", C.size_t);
                 ("node", C.int_);
               ]
             ~params:[ ("call_site", C.ulong); ("ptr", C.void_ptr); ("node", C.int_) ]
             ());
      ] );
    ( Version.v 6 5,
      [
        (* ... and this one is removed again (the f85671c pattern) *)
        Remove_func "bpf_ct_insert_entry@net/nf-core.c";
        (* 5a80bd0: dedicated block_io_{start,done} tracepoints — the
           eventual biotop fix. *)
        Add_tracepoint
          (mk_tp ~name:"block_io_start" ~cls:"block_io_start" ~fields:block_rq_fields
             ~params:[ ("rq", sref "request") ]
             ());
        Add_tracepoint
          (mk_tp ~name:"block_io_done" ~cls:"block_io_done" ~fields:block_rq_fields
             ~params:[ ("rq", sref "request") ]
             ());
      ] );
  ]

let events_for version =
  match List.find_opt (fun (v, _) -> Version.equal v version) timeline with
  | Some (_, events) -> events
  | None -> []

(* ------------------------------------------------------------------ *)
(* Installation & pinning                                              *)
(* ------------------------------------------------------------------ *)

let install_genesis src =
  let src = List.fold_left Source.add_struct src baseline_structs in
  let src = List.fold_left Source.add_func src baseline_funcs in
  List.fold_left Source.add_tracepoint src baseline_tracepoints

let names_from_events =
  List.concat_map
    (fun (_, events) ->
      List.filter_map
        (function
          | Add_func f -> Some f.fn_name
          | Add_struct s -> Some s.st_name
          | Add_tracepoint tp -> Some tp.tp_name
          | Remove_func _ | Remove_struct _ | Remove_tracepoint _ | Update_func _
          | Update_struct _ | Update_tracepoint _ ->
              None)
        events)
    timeline

let all_names =
  List.map (fun f -> f.fn_name) baseline_funcs
  @ List.map (fun s -> s.st_name) baseline_structs
  @ List.concat_map (fun tp -> [ tp.tp_name; tp_struct_name tp; tp_func_name tp ]) baseline_tracepoints
  @ names_from_events
  (* caller names that appear only as call sites *)
  @ [ "user_namespace" ]

let pinned_tbl =
  let tbl = Hashtbl.create 128 in
  List.iter (fun n -> Hashtbl.replace tbl n ()) all_names;
  tbl

let pinned name = Hashtbl.mem pinned_tbl name
