open Ds_util
open Ds_ctypes
open Construct

type ctx = {
  g_prng : Prng.t;
  g_names : Namegen.t;
  g_scale : Calibration.scale;
  g_structs : string list ref;  (* recent struct names, pointer targets *)
  g_hot_funcs : (string, unit) Hashtbl.t;
  g_hot_structs : (string, unit) Hashtbl.t;
  g_hot_tps : (string, unit) Hashtbl.t;
}

let create ~seed scale =
  let root = Prng.create seed in
  {
    g_prng = Prng.split root "genpool";
    g_names = Namegen.create (Prng.split root "names");
    g_scale = scale;
    g_structs = ref [ "task_struct"; "file"; "inode"; "page" ];
    g_hot_funcs = Hashtbl.create 256;
    g_hot_structs = Hashtbl.create 256;
    g_hot_tps = Hashtbl.create 64;
  }

let prng t = t.g_prng
let names t = t.g_names
let scale t = t.g_scale

let note_struct t name =
  t.g_structs := name :: !(t.g_structs);
  if List.length !(t.g_structs) > 256 then
    t.g_structs := List.filteri (fun i _ -> i < 200) !(t.g_structs)

let mark_hot_func t n = Hashtbl.replace t.g_hot_funcs n ()
let mark_hot_struct t n = Hashtbl.replace t.g_hot_structs n ()
let mark_hot_tp t n = Hashtbl.replace t.g_hot_tps n ()
let hot_func t n = Hashtbl.mem t.g_hot_funcs n
let hot_struct t n = Hashtbl.mem t.g_hot_structs n
let hot_tp t n = Hashtbl.mem t.g_hot_tps n

let sample_type t =
  let r = Prng.float t.g_prng 1.0 in
  if r < 0.65 then Prng.pick t.g_prng Ctype.scalar_pool
  else if r < 0.85 then Ctype.Ptr (Ctype.Struct_ref (Prng.pick_list t.g_prng !(t.g_structs)))
  else if r < 0.92 then Ctype.Ptr (Ctype.Const Ctype.char_)
  else Ctype.void_ptr

(* ------------------------------------------------------------------ *)
(* Gates                                                               *)
(* ------------------------------------------------------------------ *)

let sample_variants t (cp : Calibration.config_probs) =
  let arches =
    List.filter_map
      (fun (a, p) -> if Prng.bool t.g_prng p then Some a else None)
      cp.cp_variant
  in
  let flavors =
    List.filter_map
      (fun (f, p) -> if Prng.bool t.g_prng p then Some f else None)
      cp.cp_flavor_variant
  in
  (arches, flavors)

let only_weight (cp : Calibration.config_probs) =
  List.fold_left (fun acc (_, p) -> acc +. p) 0. cp.cp_only
  +. List.fold_left (fun acc (_, p) -> acc +. p) 0. cp.cp_flavor_only

let sample_only_slot t (cp : Calibration.config_probs) =
  let total = only_weight cp in
  let r = Prng.float t.g_prng total in
  let rec pick acc = function
    | [] -> None
    | (x, p) :: rest -> if r < acc +. p then Some x else pick (acc +. p) rest
  in
  let arch_slots = List.map (fun (a, p) -> (`Arch a, p)) cp.cp_only in
  let flavor_slots = List.map (fun (f, p) -> (`Flavor f, p)) cp.cp_flavor_only in
  match pick 0. (arch_slots @ flavor_slots) with
  | Some slot -> slot
  | None -> ( (* numeric edge: fall back to the heaviest slot *)
      match arch_slots with (s, _) :: _ -> s | [] -> `Flavor Config.Generic)

let sample_gate t (cp : Calibration.config_probs) ~x86 =
  if x86 then begin
    let arches =
      Config.X86
      :: List.filter_map
           (fun (a, p) -> if Prng.bool t.g_prng p then Some a else None)
           cp.cp_present
    in
    let flavor_removed =
      List.filter_map
        (fun (f, p) -> if Prng.bool t.g_prng p then Some f else None)
        cp.cp_flavor_removed
    in
    let numa = if Prng.bool t.g_prng cp.cp_numa then Numa_on else Numa_any in
    { g_arches = arches; g_flavor_only = []; g_flavor_removed = flavor_removed; g_numa = numa }
  end
  else
    match sample_only_slot t cp with
    | `Arch a ->
        { g_arches = [ a ]; g_flavor_only = []; g_flavor_removed = []; g_numa = Numa_any }
    | `Flavor f ->
        {
          g_arches = [ Config.X86 ];
          g_flavor_only = [ f ];
          g_flavor_removed = [];
          g_numa = Numa_any;
        }

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)
(* ------------------------------------------------------------------ *)

let sample_ret t =
  let r = Prng.float t.g_prng 1.0 in
  if r < 0.40 then Ctype.void
  else if r < 0.70 then Ctype.int_
  else if r < 0.80 then Ctype.long
  else if r < 0.90 then Ctype.bool_
  else Ctype.Ptr (Ctype.Struct_ref (Prng.pick_list t.g_prng !(t.g_structs)))

let sample_params t =
  let n = Prng.int t.g_prng 5 in
  List.init n (fun i -> Ctype.{ pname = Namegen.param_name i; ptype = sample_type t })

let gen_func t ~x86 ?forced_name ?forced_static () =
  let subsys = Namegen.pick_subsystem t.g_names in
  let kind =
    if Prng.bool t.g_prng Calibration.p_lsm_fraction then Lsm_hook
    else if Prng.bool t.g_prng Calibration.p_kfunc_fraction then Kfunc
    else Regular
  in
  let name =
    match forced_name with
    | Some n -> n
    | None -> (
        match kind with
        | Lsm_hook -> "security_" ^ Namegen.func_name t.g_names ~subsys:"lsm"
        | Kfunc -> "bpf_" ^ Namegen.func_name t.g_names ~subsys
        | Regular -> Namegen.func_name t.g_names ~subsys)
  in
  let profile =
    let r = Prng.float t.g_prng 1.0 in
    if r < Calibration.p_profile_full then P_full
    else if r < Calibration.p_profile_full +. Calibration.p_profile_selective then P_selective
    else P_never
  in
  let static =
    match forced_static with
    | Some s -> s
    | None -> (
        match profile with
        | P_full -> true
        | P_selective -> false
        | P_never -> Prng.bool t.g_prng Calibration.p_static)
  in
  let header = static && Prng.bool t.g_prng Calibration.p_header_defined in
  let file =
    if header then Namegen.header_file ~subsys else Namegen.c_file t.g_names ~subsys
  in
  let body_size =
    match profile with
    | P_full | P_selective -> 5 + Prng.int t.g_prng 21 (* 5..25: under every threshold *)
    | P_never ->
        (* Mostly clearly large; a sliver sits in the 28..34 band where
           compiler versions disagree (Figure 5's small variation). *)
        if Prng.bool t.g_prng 0.08 then 28 + Prng.int t.g_prng 7
        else 40 + Prng.int t.g_prng 160
  in
  let address_taken = profile = P_never && Prng.bool t.g_prng Calibration.p_address_taken in
  let includers =
    if header then
      (* duplication: a header copy lands in each includer *)
      Namegen.includer_pool t.g_names ~subsys ~n:(2 + Prng.int t.g_prng 8)
    else []
  in
  let transforms =
    List.filter_map
      (fun (tr, p) -> if Prng.bool t.g_prng p then Some tr else None)
      Calibration.p_transform
  in
  let variant_arches, variant_flavors = sample_variants t Calibration.func_config in
  {
    fn_name = name;
    fn_file = file;
    fn_line = 10 + Prng.int t.g_prng 4000;
    fn_proto = Ctype.{ ret = sample_ret t; params = sample_params t; variadic = false };
    fn_static = static;
    fn_declared_inline = (profile = P_full && Prng.bool t.g_prng 0.5) || header;
    fn_body_size = body_size;
    fn_address_taken = address_taken;
    fn_callers = [];
    fn_profile = profile;
    fn_includers = includers;
    fn_gate = sample_gate t Calibration.func_config ~x86;
    fn_kind = kind;
    fn_transforms = transforms;
    fn_variant_arches = variant_arches;
    fn_variant_flavors = variant_flavors;
  }

(* ------------------------------------------------------------------ *)
(* Structs                                                             *)
(* ------------------------------------------------------------------ *)

let gen_struct t ~x86 =
  let subsys = Namegen.pick_subsystem t.g_names in
  let name = Namegen.struct_name t.g_names ~subsys in
  let n_fields = 2 + Prng.int t.g_prng 9 in
  let members = List.init n_fields (fun i -> (Namegen.field_name t.g_names i, sample_type t)) in
  let variant_arches, variant_flavors = sample_variants t Calibration.struct_config in
  let variant_field i = (Printf.sprintf "arch_private%d" i, Ctype.ulong) in
  note_struct t name;
  {
    st_name = name;
    st_kind = (if Prng.bool t.g_prng 0.06 then `Union else `Struct);
    st_file = Namegen.header_file ~subsys;
    st_members = members;
    st_arch_members = List.mapi (fun i a -> (a, variant_field i)) variant_arches;
    st_flavor_members = List.mapi (fun i f -> (f, variant_field (i + 8))) variant_flavors;
    st_gate = sample_gate t Calibration.struct_config ~x86;
  }

(* ------------------------------------------------------------------ *)
(* Tracepoints                                                         *)
(* ------------------------------------------------------------------ *)

let gen_tracepoint t ~x86 =
  let subsys = Namegen.pick_subsystem t.g_names in
  let event, cls = Namegen.tracepoint_name t.g_names ~subsys in
  let n_fields = 1 + Prng.int t.g_prng 5 in
  let fields =
    List.init n_fields (fun i ->
        (Namegen.field_name t.g_names i, Prng.pick t.g_prng Ctype.scalar_pool))
  in
  let n_params = 1 + Prng.int t.g_prng 3 in
  let params =
    List.init n_params (fun i -> Ctype.{ pname = Namegen.param_name i; ptype = sample_type t })
  in
  {
    tp_name = event;
    tp_class = cls;
    tp_fields = fields;
    tp_params = params;
    tp_gate = sample_gate t Calibration.tracepoint_config ~x86;
  }

(* ------------------------------------------------------------------ *)
(* Syscalls                                                            *)
(* ------------------------------------------------------------------ *)

(* Real names used for the syscalls newer architectures dropped in favour
   of *at/clone variants (paper §4.2). *)
let legacy_names =
  [
    "open"; "chmod"; "chown"; "lchown"; "link"; "unlink"; "mkdir"; "rmdir";
    "rename"; "symlink"; "readlink"; "stat"; "lstat"; "access"; "mknod";
    "fork"; "vfork"; "utime"; "utimes"; "futimesat"; "creat"; "pause";
    "getdents"; "select"; "poll"; "epoll_create"; "epoll_wait"; "inotify_init";
    "eventfd"; "signalfd"; "dup2"; "pipe"; "alarm"; "time"; "ustat"; "uselib";
    "sysfs"; "getpgrp"; "renameat"; "send"; "recv"; "bdflush"; "oldolduname"; "olduname";
  ]

let modern_names =
  [
    "read"; "write"; "close"; "openat"; "fstat"; "lseek"; "mmap"; "mprotect";
    "munmap"; "brk"; "ioctl"; "pread64"; "pwrite64"; "readv"; "writev";
    "pipe2"; "sched_yield"; "mremap"; "msync"; "madvise"; "dup"; "dup3";
    "nanosleep"; "getpid"; "socket"; "connect"; "accept"; "sendto"; "recvfrom";
    "bind"; "listen"; "clone"; "execve"; "exit"; "wait4"; "kill"; "uname";
    "fcntl"; "flock"; "fsync"; "fdatasync"; "truncate"; "ftruncate";
    "getcwd"; "chdir"; "fchdir"; "fchmod"; "fchown"; "umask"; "gettimeofday";
    "getuid"; "getgid"; "setuid"; "setgid"; "ptrace"; "statfs"; "fstatfs";
    "prctl"; "mount"; "umount2"; "reboot"; "sethostname"; "gettid"; "futex";
    "epoll_create1"; "epoll_ctl"; "epoll_pwait"; "unlinkat"; "mkdirat";
    "renameat2"; "faccessat"; "fchmodat"; "fchownat"; "newfstatat"; "readlinkat";
    "symlinkat"; "linkat"; "mknodat"; "utimensat"; "accept4"; "eventfd2";
    "signalfd4"; "inotify_init1"; "preadv"; "pwritev"; "perf_event_open";
    "recvmmsg"; "sendmmsg"; "getrandom"; "memfd_create"; "execveat"; "bpf";
    "statx"; "io_uring_setup"; "io_uring_enter"; "clone3"; "openat2";
    "pidfd_open"; "faccessat2"; "close_range"; "process_madvise";
  ]

let gen_syscalls t =
  let target =
    max 8
      (int_of_float
         (Float.round (float_of_int Calibration.syscall_count *. t.g_scale.sc_syscalls)))
  in
  let cp = Calibration.syscall_config in
  let legacy_frac = 0.165 (* riscv drops the most; the legacy set ⊆ that *) in
  let n_legacy = int_of_float (Float.round (float_of_int target *. legacy_frac)) in
  let mk_gate ~legacy =
    let arches =
      if legacy then
        (* Legacy calls (open, fork, ...) are absent from the arches whose
           ABI was defined after the *at/clone replacements existed. *)
        [ Config.X86; Config.Arm32; Config.Ppc ]
      else
        (* The remaining per-arch drops: 64-bit-only calls absent on
           arm32, a few ppc oddities. *)
        Config.X86 :: Config.Arm64 :: Config.Riscv
        :: List.concat
             [
               (if Prng.bool t.g_prng 0.087 then [] else [ Config.Arm32 ]);
               (if Prng.bool t.g_prng 0.027 then [] else [ Config.Ppc ]);
             ]
    in
    { g_arches = arches; g_flavor_only = []; g_flavor_removed = []; g_numa = Numa_any }
  in
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  let legacy = take n_legacy legacy_names in
  let n_modern = target - List.length legacy in
  let named_modern = take n_modern modern_names in
  let extra_modern =
    if n_modern > List.length named_modern then
      List.init (n_modern - List.length named_modern) (fun _ -> Namegen.syscall_name t.g_names)
    else []
  in
  let x86_calls =
    List.map (fun n -> { sc_name = n; sc_gate = mk_gate ~legacy:true }) legacy
    @ List.map (fun n -> { sc_name = n; sc_gate = mk_gate ~legacy:false }) (named_modern @ extra_modern)
  in
  (* Arch-only syscalls (OABI leftovers on arm32, ppc-specific calls...). *)
  let only_calls =
    List.concat_map
      (fun (arch, frac) ->
        let n = int_of_float (Float.round (float_of_int target *. frac)) in
        List.init n (fun _ ->
            {
              sc_name =
                Printf.sprintf "%s_%s" (Config.arch_to_string arch) (Namegen.syscall_name t.g_names);
              sc_gate =
                { g_arches = [ arch ]; g_flavor_only = []; g_flavor_removed = []; g_numa = Numa_any };
            }))
      cp.cp_only
  in
  x86_calls @ only_calls

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

let compatible_alternative t ty =
  let open Ctype in
  match strip_quals ty with
  | Int { bits = 32; signed = true; _ } -> uint
  | Int { bits = 32; signed = false; _ } -> if Prng.bool t.g_prng 0.5 then int_ else u32
  | Int { bits = 64; signed = true; _ } -> ulong
  | Int { bits = 64; signed = false; _ } -> if Prng.bool t.g_prng 0.5 then long else u64
  | Int { bits = 16; _ } -> ushort
  | Int { bits = 8; _ } -> uchar
  | Typedef_ref "u32" -> uint
  | Typedef_ref "u64" -> if Prng.bool t.g_prng 0.5 then ulong else Typedef_ref "size_t"
  | Typedef_ref "cputime_t" -> u64
  | Typedef_ref _ -> ulong
  | _ -> u64

let incompatible_alternative t ty =
  let open Ctype in
  match strip_quals ty with
  | Ptr _ -> long
  | Int { bits = 64; _ } | Typedef_ref _ -> int_
  | _ -> if Prng.bool t.g_prng 0.5 then Ptr (Struct_ref (Prng.pick_list t.g_prng !(t.g_structs))) else u64

let change_type t ty =
  if Prng.bool t.g_prng Calibration.p_compatible_type_change then compatible_alternative t ty
  else incompatible_alternative t ty

let fresh_param_name existing =
  let pool = [ "flags"; "mode"; "attr"; "opts"; "extra"; "nr"; "gfp"; "ctx" ] in
  let taken = List.map (fun (p : Ctype.param) -> p.pname) existing in
  match List.find_opt (fun n -> not (List.mem n taken)) pool with
  | Some n -> n
  | None -> "arg" ^ string_of_int (List.length existing)

let insert_at i x xs =
  let rec go i acc = function
    | rest when i = 0 -> List.rev_append acc (x :: rest)
    | [] -> List.rev (x :: acc)
    | y :: rest -> go (i - 1) (y :: acc) rest
  in
  go i [] xs

let remove_at i xs = List.filteri (fun j _ -> j <> i) xs

let rec mutate_proto t (proto : Ctype.proto) =
  let p = t.g_prng in
  let params = ref proto.params in
  let ret = ref proto.ret in
  let changed = ref false in
  if Prng.bool p Calibration.p_param_add then begin
    changed := true;
    let newp = Ctype.{ pname = fresh_param_name !params; ptype = sample_type t } in
    let pos =
      if Prng.bool p Calibration.p_param_add_front then 0
      else Prng.int p (List.length !params + 1)
    in
    params := insert_at pos newp !params
  end;
  if !params <> [] && Prng.bool p Calibration.p_param_remove then begin
    changed := true;
    params := remove_at (Prng.int p (List.length !params)) !params
  end;
  if List.length !params >= 2 && Prng.bool p Calibration.p_param_swap then begin
    changed := true;
    let n = List.length !params in
    let i = Prng.int p n in
    let j = (i + 1 + Prng.int p (n - 1)) mod n in
    let arr = Array.of_list !params in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp;
    params := Array.to_list arr
  end;
  if !params <> [] && Prng.bool p Calibration.p_param_type then begin
    changed := true;
    let i = Prng.int p (List.length !params) in
    params :=
      List.mapi
        (fun j (q : Ctype.param) ->
          if j = i then { q with ptype = change_type t q.ptype } else q)
        !params
  end;
  if Prng.bool p Calibration.p_ret_type then begin
    changed := true;
    ret := (match !ret with Ctype.Void -> Ctype.int_ | r -> change_type t r)
  end;
  if not !changed then begin
    let newp = Ctype.{ pname = fresh_param_name !params; ptype = sample_type t } in
    params := !params @ [ newp ]
  end;
  let result = { proto with Ctype.params = !params; ret = !ret } in
  (* An add followed by a remove of the same slot can cancel out; a change
     must be visible. *)
  if Ctype.equal_proto result proto then mutate_proto t proto else result

let fresh_field_name t existing =
  let taken = List.map fst existing in
  let rec go i =
    let cand = Namegen.field_name t.g_names i in
    if List.mem cand taken then go (i + 1) else cand
  in
  go (Prng.int t.g_prng 36)

let rec mutate_members t members =
  let p = t.g_prng in
  let fields = ref members in
  let changed = ref false in
  if Prng.bool p Calibration.p_field_add then begin
    changed := true;
    let f = (fresh_field_name t !fields, sample_type t) in
    fields := insert_at (Prng.int p (List.length !fields + 1)) f !fields
  end;
  if List.length !fields > 1 && Prng.bool p Calibration.p_field_remove then begin
    changed := true;
    fields := remove_at (Prng.int p (List.length !fields)) !fields
  end;
  if !fields <> [] && Prng.bool p Calibration.p_field_type then begin
    changed := true;
    let i = Prng.int p (List.length !fields) in
    fields :=
      List.mapi (fun j (n, ty) -> if j = i then (n, change_type t ty) else (n, ty)) !fields
  end;
  if not !changed then fields := (fresh_field_name t !fields, sample_type t) :: !fields;
  if !fields = members then mutate_members t members else !fields

let mutate_tracepoint t tp =
  let p = t.g_prng in
  let ev = Prng.bool p Calibration.p_tp_event in
  let fu = Prng.bool p Calibration.p_tp_func in
  let ev = ev || not fu in
  let tp = if ev then { tp with tp_fields = mutate_members t tp.tp_fields } else tp in
  if fu then
    let proto = Ctype.{ ret = void; params = tp.tp_params; variadic = false } in
    { tp with tp_params = (mutate_proto t proto).Ctype.params }
  else tp
