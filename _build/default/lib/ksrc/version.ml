type t = { major : int; minor : int }

let v major minor = { major; minor }
let to_string t = Printf.sprintf "v%d.%d" t.major t.minor
let compare a b = Stdlib.compare (a.major, a.minor) (b.major, b.minor)
let equal a b = compare a b = 0

let all =
  [
    v 4 4; v 4 8; v 4 10; v 4 13; v 4 15; v 4 18; v 5 0; v 5 3; v 5 4;
    v 5 8; v 5 11; v 5 13; v 5 15; v 5 19; v 6 2; v 6 5; v 6 8;
  ]

let lts = [ v 4 4; v 4 15; v 5 4; v 5 15; v 6 8 ]
let is_lts t = List.exists (equal t) lts

let pairs versions =
  let rec go = function a :: (b :: _ as rest) -> (a, b) :: go rest | _ -> [] in
  go versions

let index t =
  let rec go i = function
    | [] -> raise Not_found
    | x :: rest -> if equal x t then i else go (i + 1) rest
  in
  go 0 all

(* Compiler used by Ubuntu for each kernel: 17 kernels, 14 distinct GCC
   versions (4.18 and 5.0 share GCC 8.2; 5.3/5.4 share 9.2; 6.5/6.8 share
   13.2). *)
let gcc_table =
  [
    (v 4 4, (5, 4)); (v 4 8, (6, 2)); (v 4 10, (6, 3)); (v 4 13, (7, 2));
    (v 4 15, (7, 5)); (v 4 18, (8, 2)); (v 5 0, (8, 2)); (v 5 3, (9, 2));
    (v 5 4, (9, 2)); (v 5 8, (10, 2)); (v 5 11, (10, 3)); (v 5 13, (11, 1));
    (v 5 15, (11, 4)); (v 5 19, (12, 1)); (v 6 2, (12, 3)); (v 6 5, (13, 2));
    (v 6 8, (13, 2));
  ]

let gcc_of t =
  match List.find_opt (fun (x, _) -> equal x t) gcc_table with
  | Some (_, g) -> g
  | None -> raise Not_found

let ubuntu_table =
  [
    (v 4 4, "16.04"); (v 4 8, "16.10"); (v 4 10, "17.04"); (v 4 13, "17.10");
    (v 4 15, "18.04"); (v 4 18, "18.10"); (v 5 0, "19.04"); (v 5 3, "19.10");
    (v 5 4, "20.04"); (v 5 8, "20.10"); (v 5 11, "21.04"); (v 5 13, "21.10");
    (v 5 15, "22.04"); (v 5 19, "22.10"); (v 6 2, "23.04"); (v 6 5, "23.10");
    (v 6 8, "24.04");
  ]

let ubuntu_of t =
  match List.find_opt (fun (x, _) -> equal x t) ubuntu_table with
  | Some (_, u) -> u
  | None -> raise Not_found
