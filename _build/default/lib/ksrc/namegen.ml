open Ds_util

type t = { prng : Prng.t; used : (string, unit) Hashtbl.t; counter : int ref }

let create prng = { prng; used = Hashtbl.create 4096; counter = ref 0 }
let reserve t name = Hashtbl.replace t.used name ()

let subsystems =
  [|
    "vfs"; "blk"; "mm"; "tcp"; "udp"; "sched"; "ext4"; "xfs"; "btrfs"; "nfs";
    "net"; "dev"; "usb"; "pci"; "snd"; "kvm"; "irq"; "acpi"; "nvme"; "scsi";
    "cgroup"; "bpf"; "ftrace"; "rcu"; "sock"; "inet"; "ipv6"; "nf"; "xdp"; "io_uring";
  |]

let dir_of_subsys = function
  | "vfs" | "ext4" | "xfs" | "btrfs" | "nfs" | "io_uring" -> "fs"
  | "blk" | "nvme" -> "block"
  | "mm" -> "mm"
  | "tcp" | "udp" | "net" | "sock" | "inet" | "ipv6" | "nf" | "xdp" -> "net"
  | "sched" | "irq" | "rcu" | "bpf" | "ftrace" | "cgroup" -> "kernel"
  | "dev" | "usb" | "pci" | "snd" | "scsi" | "acpi" -> "drivers"
  | "kvm" -> "virt"
  | _ -> "lib"

let verbs =
  [|
    "alloc"; "free"; "init"; "exit"; "read"; "write"; "submit"; "queue"; "account";
    "lookup"; "insert"; "remove"; "start"; "done"; "update"; "get"; "put"; "set";
    "find"; "register"; "unregister"; "probe"; "handle"; "process"; "flush"; "sync";
    "map"; "unmap"; "attach"; "detach"; "open"; "release"; "prepare"; "commit";
    "charge"; "walk"; "scan"; "wait"; "wake"; "poll"; "send"; "recv"; "parse";
  |]

let nouns =
  [|
    "page"; "folio"; "request"; "bio"; "inode"; "dentry"; "file"; "sb"; "buffer";
    "entry"; "node"; "queue"; "list"; "tree"; "cache"; "pool"; "slab"; "skb";
    "packet"; "frame"; "sock"; "conn"; "route"; "table"; "group"; "task"; "thread";
    "timer"; "work"; "event"; "state"; "ctx"; "desc"; "region"; "zone"; "range";
    "extent"; "block"; "segment"; "cluster"; "bitmap"; "lock"; "ref"; "stats";
  |]

let suffixes =
  [| ""; ""; ""; ""; ""; "_locked"; "_nowait"; "_rcu"; "_fast"; "_slow"; "_one"; "_all"; "_atomic" |]

let pick_subsystem t = Prng.pick t.prng subsystems

let fresh t mk =
  let rec go attempts =
    let name = mk attempts in
    if Hashtbl.mem t.used name then go (attempts + 1)
    else begin
      Hashtbl.replace t.used name ();
      name
    end
  in
  go 0

let func_name t ~subsys =
  fresh t (fun attempts ->
      let verb = Prng.pick t.prng verbs in
      let noun = Prng.pick t.prng nouns in
      let suffix = Prng.pick t.prng suffixes in
      let core = Printf.sprintf "%s_%s_%s%s" subsys verb noun suffix in
      if attempts < 4 then core
      else begin
        incr t.counter;
        Printf.sprintf "%s_%d" core !(t.counter)
      end)

let struct_name t ~subsys =
  fresh t (fun attempts ->
      let noun = Prng.pick t.prng nouns in
      let core = Printf.sprintf "%s_%s" subsys noun in
      if attempts < 4 then core
      else begin
        incr t.counter;
        Printf.sprintf "%s_%d" core !(t.counter)
      end)

let tracepoint_name t ~subsys =
  let event =
    fresh t (fun attempts ->
        let noun = Prng.pick t.prng nouns in
        let verb = Prng.pick t.prng verbs in
        let core = Printf.sprintf "%s_%s_%s" subsys noun verb in
        if attempts < 4 then core
        else begin
          incr t.counter;
          Printf.sprintf "%s_%d" core !(t.counter)
        end)
  in
  (* Most events define their own class; a "class" groups similar events
     in the real kernel, but unique classes keep struct names 1:1. *)
  (event, event)

let syscall_name t =
  fresh t (fun attempts ->
      let verb = Prng.pick t.prng verbs in
      let noun = Prng.pick t.prng nouns in
      let core = Printf.sprintf "%s_%s" verb noun in
      if attempts < 4 then core
      else begin
        incr t.counter;
        Printf.sprintf "%s%d" core !(t.counter)
      end)

let field_pool =
  [|
    "flags"; "count"; "size"; "len"; "offset"; "start"; "end"; "time"; "nr";
    "id"; "mode"; "type"; "refcnt"; "owner"; "parent"; "next"; "prev"; "data";
    "priv"; "ops"; "lock"; "wait"; "bytes"; "sector"; "pid"; "uid"; "gid";
    "ino"; "dev"; "error"; "ret"; "order"; "mask"; "prio"; "weight"; "ticks";
  |]

let field_name _t i =
  let base = field_pool.(i mod Array.length field_pool) in
  if i < Array.length field_pool then base
  else Printf.sprintf "%s%d" base (i / Array.length field_pool)

let param_pool = [| "p"; "q"; "arg"; "val"; "n"; "flags"; "ptr"; "idx"; "mask"; "data" |]
let param_name i =
  if i < Array.length param_pool then param_pool.(i)
  else Printf.sprintf "arg%d" i

let file_stems = [| "core"; "main"; "util"; "ops"; "io"; "table"; "ctl"; "sysfs" |]

let c_file t ~subsys =
  let stem = Prng.pick t.prng file_stems in
  Printf.sprintf "%s/%s-%s.c" (dir_of_subsys subsys) subsys stem

let header_file ~subsys = Printf.sprintf "include/linux/%s.h" subsys

let includer_pool t ~subsys ~n =
  let rec go acc k guard =
    if k = 0 || guard = 0 then acc
    else
      let s = if Prng.bool t.prng 0.5 then subsys else pick_subsystem t in
      let f = c_file t ~subsys:s in
      if List.mem f acc then go acc k (guard - 1) else go (f :: acc) (k - 1) (guard - 1)
  in
  go [] n (n * 20)
