(** The evolution engine: grows the v4.4 genesis tree through the 17
    studied kernel versions, applying the scripted catalog timeline plus
    calibrated random churn (additions, removals and declaration changes
    at the paper's Table 3 rates). A seed fully determines the history. *)

val genesis : Genpool.ctx -> Source.t
(** Build the v4.4 source tree: catalog constructs plus random population
    up to the calibrated (scaled) counts, including non-x86 constructs,
    collisions and the full syscall table. *)

val evolve : Genpool.ctx -> Source.t -> Calibration.step -> Source.t
(** Evolve one release step: scripted events, removals, changes,
    additions. *)

val build_history : seed:int64 -> Calibration.scale -> (Version.t * Source.t) list
(** The full 17-version history, in release order. *)
