lib/ksrc/construct.mli: Config Ctype Ds_ctypes
