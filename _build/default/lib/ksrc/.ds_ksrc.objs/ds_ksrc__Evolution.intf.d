lib/ksrc/evolution.mli: Calibration Genpool Source Version
