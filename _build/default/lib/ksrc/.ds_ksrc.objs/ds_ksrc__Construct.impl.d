lib/ksrc/construct.ml: Config Ctype Ds_ctypes Filename List
