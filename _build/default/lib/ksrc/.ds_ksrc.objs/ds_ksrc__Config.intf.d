lib/ksrc/config.mli:
