lib/ksrc/genpool.ml: Array Calibration Config Construct Ctype Ds_ctypes Ds_util Float Hashtbl List Namegen Printf Prng
