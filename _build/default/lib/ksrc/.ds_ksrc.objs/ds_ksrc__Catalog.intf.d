lib/ksrc/catalog.mli: Construct Source Version
