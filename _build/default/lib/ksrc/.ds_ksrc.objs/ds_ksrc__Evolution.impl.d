lib/ksrc/evolution.ml: Calibration Catalog Config Construct Ds_util Float Genpool List Namegen Prng Source Version
