lib/ksrc/genpool.mli: Calibration Config Construct Ctype Ds_ctypes Ds_util Namegen
