lib/ksrc/version.ml: List Printf Stdlib
