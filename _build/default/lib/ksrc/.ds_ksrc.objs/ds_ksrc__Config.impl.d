lib/ksrc/config.ml: List
