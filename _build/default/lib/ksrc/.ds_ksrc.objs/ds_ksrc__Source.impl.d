lib/ksrc/source.ml: Construct List Map Option String Version
