lib/ksrc/version.mli:
