lib/ksrc/calibration.ml: Config Construct Float List Version
