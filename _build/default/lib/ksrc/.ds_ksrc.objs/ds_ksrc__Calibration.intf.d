lib/ksrc/calibration.mli: Config Construct Version
