lib/ksrc/namegen.mli: Ds_util
