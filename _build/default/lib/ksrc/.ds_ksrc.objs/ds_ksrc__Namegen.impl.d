lib/ksrc/namegen.ml: Array Ds_util Hashtbl List Printf Prng
