lib/ksrc/source.mli: Config Construct Version
