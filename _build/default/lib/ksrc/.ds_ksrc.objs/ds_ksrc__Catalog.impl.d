lib/ksrc/catalog.ml: Config Construct Ctype Ds_ctypes Hashtbl List Option Source Version
