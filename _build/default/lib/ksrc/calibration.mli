(** Calibration of the synthetic kernel's evolution, taken from the
    paper's measurements so that the generated image matrix reproduces the
    published *shape* of the dependency surface.

    Numbers are stored at paper magnitude (e.g. 36,000 functions in v4.4)
    and scaled by a {!scale} record; all percentages reported by DepSurf
    over the generated images are scale-invariant. *)

type scale = {
  sc_funcs : float;
  sc_structs : float;
  sc_tracepoints : float;
  sc_syscalls : float;
}

val bench_scale : scale
(** ~1.9–2.5k functions per image: seconds-scale full pipeline. *)

val test_scale : scale
(** ~400 functions: milliseconds-scale, for unit tests. *)

type rates = {
  r_count : int;  (** paper-magnitude x86 population target after this step *)
  r_rm : float;  (** fraction of the previous population removed *)
  r_ch : float;  (** fraction of surviving constructs changed *)
}

type step = { s_version : Version.t; s_fn : rates; s_st : rates; s_tp : rates }

val steps : step list
(** One entry per version of {!Version.all}, in order; the first entry's
    [r_rm]/[r_ch] are zero (genesis). Counts follow the paper's Table 3
    "#" columns. *)

val step_for : Version.t -> step

val scaled : scale -> rates -> [ `Fn | `St | `Tp ] -> int
(** Scaled population target. *)

(** {2 Change-kind probabilities (Table 4)} *)

val p_param_add : float

val p_param_add_front : float
(** given an add: insert at position 0 *)

val p_param_remove : float

val p_param_swap : float
(** explicit reorder *)

val p_param_type : float
val p_ret_type : float
val p_field_add : float
val p_field_remove : float
val p_field_type : float
val p_tp_event : float
val p_tp_func : float

val p_compatible_type_change : float
(** Probability that a type change picks a same-width (silently
    compatible) type — the stray-read case. *)

val p_hot_bias : float
(** Probability that a change targets a previously-changed construct
    (kernel churn concentrates in hot areas; this also keeps LTS-level
    change unions near the paper's numbers). *)

(** {2 Configuration probabilities (Table 5)} *)

type config_probs = {
  cp_present : (Config.arch * float) list;
      (** P(an x86 construct is also present on that arch) *)
  cp_only : (Config.arch * float) list;
      (** arch-only population as a fraction of the x86 population *)
  cp_variant : (Config.arch * float) list;
      (** P(definition differs on that arch) *)
  cp_flavor_removed : (Config.flavor * float) list;
  cp_flavor_only : (Config.flavor * float) list;
  cp_flavor_variant : (Config.flavor * float) list;
  cp_numa : float;  (** P(gated on CONFIG_NUMA) *)
}

val func_config : config_probs
val struct_config : config_probs
val tracepoint_config : config_probs
val syscall_config : config_probs

val syscall_count : int
(** 333 native x86 syscalls (Table 5). *)

(** {2 Function-attribute probabilities (Figures 5–6, Table 6)} *)

val p_static : float
val p_profile_full : float
val p_profile_selective : float
val p_header_defined : float
(** among static functions *)

val p_address_taken : float
(** among P_never functions *)

val p_transform : (Construct.transform * float) list
val p_collision_static_static : float
val p_collision_static_global : float
val p_lsm_fraction : float
(** ~150 LSM hooks / 48k functions, scaled *)

val p_kfunc_fraction : float

val inline_threshold : gcc:int * int -> int
(** Body-size threshold under which a call site is inlined; varies with
    the compiler version so some borderline functions flip across
    kernels, as in Figure 5. *)

val transform_supported : Construct.transform -> gcc:int * int -> arch:Config.arch -> bool
(** [T_cold] appears at GCC ≥ 8; ISRA is disabled on arm32 (paper §4.3,
    commit a077224). *)
