open Construct
module Smap = Map.Make (String)

type t = {
  version : Version.t;
  funcs : func_def Smap.t;  (* by fn_id *)
  by_name : int Smap.t;  (* name -> number of definitions *)
  structs : struct_src Smap.t;
  tracepoints : tracepoint_def Smap.t;
  syscalls : syscall_def Smap.t;
}

let empty version =
  {
    version;
    funcs = Smap.empty;
    by_name = Smap.empty;
    structs = Smap.empty;
    tracepoints = Smap.empty;
    syscalls = Smap.empty;
  }

let version t = t.version
let with_version t version = { t with version }
let funcs t = List.map snd (Smap.bindings t.funcs)
let structs t = List.map snd (Smap.bindings t.structs)
let tracepoints t = List.map snd (Smap.bindings t.tracepoints)
let syscalls t = List.map snd (Smap.bindings t.syscalls)

let counts t =
  (Smap.cardinal t.funcs, Smap.cardinal t.structs, Smap.cardinal t.tracepoints,
   Smap.cardinal t.syscalls)

let bump name delta m =
  let n = Option.value ~default:0 (Smap.find_opt name m) + delta in
  if n <= 0 then Smap.remove name m else Smap.add name n m

let add_func t f =
  let id = fn_id f in
  if Smap.mem id t.funcs then invalid_arg ("Source.add_func: duplicate id " ^ id);
  { t with funcs = Smap.add id f t.funcs; by_name = bump f.fn_name 1 t.by_name }

let remove_func t ~id =
  match Smap.find_opt id t.funcs with
  | None -> t
  | Some gone ->
      { t with funcs = Smap.remove id t.funcs; by_name = bump gone.fn_name (-1) t.by_name }

let replace_func t f =
  let id = fn_id f in
  if not (Smap.mem id t.funcs) then invalid_arg ("Source.replace_func: no such id " ^ id);
  { t with funcs = Smap.add id f t.funcs }

let find_func t ~id = Smap.find_opt id t.funcs

let funcs_named t name =
  Smap.fold (fun _ f acc -> if f.fn_name = name then f :: acc else acc) t.funcs []

let has_func_name t name = Smap.mem name t.by_name

let prune_dangling_callers t =
  let funcs =
    Smap.map
      (fun f ->
        let live = List.filter (fun c -> Smap.mem c.cl_func t.by_name) f.fn_callers in
        if List.length live = List.length f.fn_callers then f
        else { f with fn_callers = live })
      t.funcs
  in
  { t with funcs }

let add_struct t s =
  if Smap.mem s.st_name t.structs then
    invalid_arg ("Source.add_struct: duplicate " ^ s.st_name);
  { t with structs = Smap.add s.st_name s t.structs }

let remove_struct t name = { t with structs = Smap.remove name t.structs }
let replace_struct t s = { t with structs = Smap.add s.st_name s t.structs }
let find_struct t name = Smap.find_opt name t.structs

let add_tracepoint t tp =
  if Smap.mem tp.tp_name t.tracepoints then
    invalid_arg ("Source.add_tracepoint: duplicate " ^ tp.tp_name);
  { t with tracepoints = Smap.add tp.tp_name tp t.tracepoints }

let remove_tracepoint t name = { t with tracepoints = Smap.remove name t.tracepoints }
let replace_tracepoint t tp = { t with tracepoints = Smap.add tp.tp_name tp t.tracepoints }
let find_tracepoint t name = Smap.find_opt name t.tracepoints

let add_syscall t s =
  if Smap.mem s.sc_name t.syscalls then
    invalid_arg ("Source.add_syscall: duplicate " ^ s.sc_name);
  { t with syscalls = Smap.add s.sc_name s t.syscalls }

let find_syscall t name = Smap.find_opt name t.syscalls

let filter_list pred xs = List.filter pred xs

let funcs_in t cfg = filter_list (fun f -> gate_admits f.fn_gate cfg) (funcs t)
let structs_in t cfg = filter_list (fun s -> gate_admits s.st_gate cfg) (structs t)
let tracepoints_in t cfg = filter_list (fun x -> gate_admits x.tp_gate cfg) (tracepoints t)
let syscalls_in t cfg = filter_list (fun s -> gate_admits s.sc_gate cfg) (syscalls t)

let check_invariants t =
  let bad_edge =
    Smap.fold
      (fun _ f acc ->
        match acc with
        | Some _ -> acc
        | None ->
            List.find_map
              (fun c ->
                if Smap.mem c.cl_func t.by_name then None
                else Some (fn_id f ^ " has dangling caller " ^ c.cl_func))
              f.fn_callers)
      t.funcs None
  in
  match bad_edge with
  | Some msg -> Error msg
  | None -> (
      let bad_header =
        Smap.fold
          (fun _ f acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if fn_is_header f && f.fn_includers = [] then
                  Some (fn_id f ^ " is header-defined but has no includers")
                else if (not (fn_is_header f)) && f.fn_includers <> [] then
                  Some (fn_id f ^ " has includers but is not header-defined")
                else None)
          t.funcs None
      in
      match bad_header with
      | Some msg -> Error msg
      | None ->
          let bad_id =
            Smap.fold
              (fun id f acc ->
                match acc with
                | Some _ -> acc
                | None -> if id = fn_id f then None else Some ("key/id mismatch " ^ id))
              t.funcs None
          in
          (match bad_id with
          | Some msg -> Error msg
          | None -> Ok [ "edges"; "headers"; "ids" ]))
