(** Dependency pools: the study dataset's constructs, bucketed by the
    mismatch profile they exhibit across the Figure-4 image set. The
    corpus builder draws from these pools to give each regenerated tool a
    dependency set with the paper's per-program mismatch shape. *)

open Ds_ksrc

type t

val compute :
  Depsurf.Dataset.t ->
  ?baseline:Version.t * Config.t ->
  ?images:(Version.t * Config.t) list ->
  unit ->
  t
(** Defaults: baseline v5.4/x86, the 21 Figure-4 images. *)

type fn_bucket = [ `Stable | `Absent | `Changed | `Full | `Selective | `Transformed | `Duplicated ]
type field_bucket = [ `Stable | `Absent | `Changed ]
type tp_bucket = [ `Stable | `Absent | `Changed ]
type sc_bucket = [ `Stable | `Absent ]

val take_funcs : t -> fn_bucket -> int -> string list
(** Draw [n] function names from the bucket; a rotating cursor spreads
    consecutive draws over the pool (wrapping when exhausted, empty list
    when the pool is empty). *)

val take_fields : t -> field_bucket -> int -> (string * string) list
val take_tracepoints : t -> tp_bucket -> int -> string list
val take_syscalls : t -> sc_bucket -> int -> string list

val pool_sizes : t -> (string * int) list
(** Diagnostic: bucket name → size. *)
