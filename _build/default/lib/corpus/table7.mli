(** The 53 real-world eBPF programs of the paper's Table 7 (52 BCC
    libbpf-tools plus Tracee), with their published dependency-set sizes
    and mismatch counts. The corpus builder regenerates each one as a real
    object file whose dependency set has the same shape. *)

type counts7 = {
  (* functions: total, absent, changed, full-inline, selective, transformed, duplicated *)
  c_fn : int * int * int * int * int * int * int;
  c_st : int * int;  (** structs: total, absent *)
  c_fld : int * int * int;  (** fields: total, absent, changed *)
  c_tp : int * int * int;  (** tracepoints: total, absent, changed *)
  c_sc : int * int;  (** syscalls: total, absent *)
}

type profile = {
  pr_name : string;
  pr_subsystem : string;  (** CPU/memory/storage/network/security *)
  pr_counts : counts7;
  pr_clean : bool;  (** highlighted mismatch-free in the paper *)
}

val programs : profile list
(** All 53 rows, in the paper's order (Tracee first). *)

val find : string -> profile option
