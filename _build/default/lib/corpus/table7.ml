type counts7 = {
  c_fn : int * int * int * int * int * int * int;
  c_st : int * int;
  c_fld : int * int * int;
  c_tp : int * int * int;
  c_sc : int * int;
}

type profile = {
  pr_name : string;
  pr_subsystem : string;
  pr_counts : counts7;
  pr_clean : bool;
}

let p name subsystem ?(fn = (0, 0, 0, 0, 0, 0, 0)) ?(st = (0, 0)) ?(fld = (0, 0, 0))
    ?(tp = (0, 0, 0)) ?(sc = (0, 0)) ?(clean = false) () =
  {
    pr_name = name;
    pr_subsystem = subsystem;
    pr_counts = { c_fn = fn; c_st = st; c_fld = fld; c_tp = tp; c_sc = sc };
    pr_clean = clean;
  }

(* Table 7, row by row. Tuples: fn = (Σ, ∅, Δ, F, S, T, D);
   st = (Σ, ∅); fld = (Σ, ∅, Δ); tp = (Σ, ∅, Δ); sc = (Σ, ∅). *)
let programs =
  [
    p "tracee" "security"
      ~fn:(67, 14, 16, 5, 14, 14, 2)
      ~st:(98, 14) ~fld:(250, 53, 9) ~tp:(13, 3, 4) ~sc:(446, 202) ();
    p "klockstat" "cpu" ~fn:(14, 3, 0, 0, 4, 0, 0) ();
    p "vfsstat" "storage" ~fn:(8, 0, 5, 0, 6, 1, 0) ();
    p "biotop" "storage" ~fn:(5, 2, 2, 3, 2, 0, 0) ~st:(3, 0) ~fld:(7, 2, 1) ~tp:(2, 2, 0) ();
    p "cachestat" "memory" ~fn:(5, 2, 2, 0, 1, 0, 0) ~tp:(2, 2, 1) ();
    p "fsdist" "storage" ~fn:(5, 2, 1, 0, 2, 2, 0) ();
    p "tcptracer" "network" ~fn:(5, 0, 1, 0, 0, 3, 0) ~st:(6, 0) ~fld:(14, 0, 0) ();
    p "readahead" "memory" ~fn:(4, 3, 1, 2, 3, 1, 1) ~st:(2, 1) ~fld:(1, 1, 0) ();
    p "fsslower" "storage" ~fn:(4, 1, 0, 0, 2, 1, 0) ~st:(5, 0) ~fld:(6, 0, 0) ();
    p "filelife" "storage" ~fn:(4, 0, 3, 0, 2, 0, 0) ~st:(5, 1) ~fld:(6, 2, 0) ();
    p "biostacks" "storage" ~fn:(3, 1, 2, 2, 3, 0, 0) ~st:(3, 0) ~fld:(5, 2, 0) ~tp:(2, 2, 0) ();
    p "tcpconnlat" "network" ~fn:(3, 0, 0, 0, 0, 2, 0) ~st:(4, 1) ~fld:(11, 1, 0) ~tp:(1, 1, 1) ();
    p "numamove" "memory" ~fn:(2, 2, 0, 1, 0, 0, 0) ();
    p "biosnoop" "storage" ~fn:(2, 1, 1, 1, 2, 0, 0) ~st:(3, 0) ~fld:(9, 2, 1) ~tp:(4, 1, 3) ();
    p "filetop" "storage" ~fn:(2, 0, 0, 0, 2, 0, 0) ~st:(6, 0) ~fld:(10, 0, 0) ();
    p "tcpsynbl" "network" ~fn:(2, 0, 0, 0, 0, 2, 0) ~st:(1, 0) ~fld:(2, 0, 0) ();
    p "tcpconnect" "network" ~fn:(2, 0, 0, 0, 0, 1, 0) ~st:(3, 0) ~fld:(8, 0, 0) ();
    p "bindsnoop" "network" ~fn:(2, 0, 0, 0, 0, 0, 0) ~st:(5, 0) ~fld:(14, 4, 1) ();
    p "tcptop" "network" ~fn:(2, 0, 0, 0, 0, 0, 0) ~st:(3, 0) ~fld:(9, 0, 0) ~clean:true ();
    p "oomkill" "memory" ~fn:(1, 0, 1, 0, 1, 1, 0) ~st:(3, 1) ~fld:(4, 2, 0) ();
    p "capable" "security" ~fn:(1, 0, 1, 0, 1, 1, 0) ();
    p "tcprtt" "network" ~fn:(1, 0, 1, 0, 0, 1, 0) ~st:(6, 0) ~fld:(12, 0, 0) ();
    p "mdflush" "storage" ~fn:(1, 0, 1, 0, 0, 1, 0) ~st:(3, 0) ~fld:(4, 2, 0) ();
    p "solisten" "network" ~fn:(1, 0, 0, 0, 0, 1, 0) ~st:(1, 0) ~fld:(6, 0, 1) ();
    p "slabratetop" "memory" ~fn:(1, 0, 0, 0, 0, 0, 0) ~st:(1, 0) ~fld:(2, 0, 1) ();
    p "memleak" "memory" ~st:(11, 9) ~fld:(17, 14, 0) ~tp:(10, 4, 7) ();
    p "tcppktlat" "network" ~st:(1, 1) ~fld:(12, 0, 0) ~tp:(3, 3, 3) ();
    p "mountsnoop" "storage" ~st:(17, 1) ~fld:(6, 0, 0) ~sc:(2, 0) ();
    p "runqlat" "cpu" ~st:(5, 0) ~fld:(11, 3, 1) ~tp:(3, 0, 3) ();
    p "tcpstates" "network" ~st:(4, 1) ~fld:(13, 7, 1) ~tp:(1, 1, 1) ();
    p "runqlen" "cpu" ~st:(4, 0) ~fld:(5, 0, 0) ~clean:true ();
    p "biolatency" "storage" ~st:(3, 0) ~fld:(7, 2, 1) ~tp:(3, 0, 3) ();
    p "bitesize" "storage" ~st:(3, 0) ~fld:(6, 2, 0) ~tp:(1, 0, 1) ();
    p "sigsnoop" "cpu" ~st:(3, 0) ~fld:(5, 0, 0) ~tp:(1, 0, 1) ~sc:(3, 0) ();
    p "execsnoop" "cpu" ~st:(3, 0) ~fld:(4, 0, 0) ~sc:(1, 0) ~clean:true ();
    p "biopattern" "storage" ~st:(2, 2) ~fld:(6, 6, 0) ~tp:(1, 0, 1) ();
    p "tcplife" "network" ~st:(2, 1) ~fld:(12, 10, 1) ~tp:(1, 1, 1) ();
    p "syscount" "cpu" ~st:(2, 0) ~fld:(4, 0, 0) ~tp:(2, 0, 0) ~clean:true ();
    p "statsnoop" "storage" ~st:(2, 0) ~fld:(2, 0, 0) ~sc:(5, 4) ();
    p "opensnoop" "storage" ~st:(2, 0) ~fld:(2, 0, 0) ~sc:(2, 1) ();
    p "futexctn" "cpu" ~st:(2, 0) ~fld:(2, 0, 0) ~sc:(1, 0) ~clean:true ();
    p "profile" "cpu" ~st:(1, 1) ~fld:(1, 1, 1) ();
    p "llcstat" "cpu" ~st:(1, 1) ~fld:(1, 1, 0) ();
    p "offcputime" "cpu" ~st:(1, 0) ~fld:(6, 2, 0) ~tp:(1, 0, 1) ();
    p "runqslower" "cpu" ~st:(1, 0) ~fld:(5, 2, 0) ~tp:(3, 0, 3) ();
    p "cpudist" "cpu" ~st:(1, 0) ~fld:(5, 2, 0) ~tp:(1, 0, 1) ();
    p "wakeuptime" "cpu" ~st:(1, 0) ~fld:(4, 0, 0) ~tp:(2, 0, 2) ();
    p "exitsnoop" "cpu" ~st:(1, 0) ~fld:(4, 0, 0) ~tp:(1, 0, 0) ~clean:true ();
    p "hardirqs" "cpu" ~st:(1, 0) ~fld:(1, 0, 0) ~tp:(2, 0, 0) ~clean:true ();
    p "drsnoop" "memory" ~tp:(2, 0, 1) ();
    p "softirqs" "cpu" ~tp:(2, 0, 0) ~clean:true ();
    p "cpufreq" "cpu" ~tp:(1, 0, 0) ~clean:true ();
    p "syncsnoop" "storage" ~sc:(6, 1) ();
  ]

let find name = List.find_opt (fun pr -> pr.pr_name = name) programs
