open Ds_ksrc
open Depsurf

type pool = { items : string array; cursor : int ref }
type fpool = { fitems : (string * string) array; fcursor : int ref }

type t = {
  fn_stable : pool;
  fn_absent : pool;
  fn_changed : pool;
  fn_full : pool;
  fn_selective : pool;
  fn_transformed : pool;
  fn_duplicated : pool;
  fld_stable : fpool;
  fld_absent : fpool;
  fld_changed : fpool;
  tp_stable : pool;
  tp_absent : pool;
  tp_changed : pool;
  sc_stable : pool;
  sc_absent : pool;
}

type fn_bucket = [ `Stable | `Absent | `Changed | `Full | `Selective | `Transformed | `Duplicated ]
type field_bucket = [ `Stable | `Absent | `Changed ]
type tp_bucket = [ `Stable | `Absent | `Changed ]
type sc_bucket = [ `Stable | `Absent ]

let mk_pool items = { items = Array.of_list items; cursor = ref 0 }
let mk_fpool items = { fitems = Array.of_list items; fcursor = ref 0 }

let compute ds ?(baseline = (Version.v 5 4, Config.x86_generic))
    ?(images = Dataset.fig4_images) () =
  let bv, bc = baseline in
  let base = Dataset.surface ds bv bc in
  (* Bucket by behaviour over the x86 version series: the real tools
     depend on core-kernel constructs, which exist on every arch; had we
     bucketed over the arch images too, "absent somewhere" would swallow
     ~2/3 of the population (driver-ish constructs) and starve every
     other bucket. Arch-induced absences still show up in the reports,
     as they do in the paper's Σ∅ columns. *)
  let x86_images = List.filter (fun (_, cfg) -> Config.equal cfg Config.x86_generic) images in
  let x86_images = if x86_images = [] then images else x86_images in
  let targets = List.map (fun (v, cfg) -> Dataset.surface ds v cfg) x86_images in
  let all_targets = List.map (fun (v, cfg) -> Dataset.surface ds v cfg) images in
  let statuses_everywhere dep =
    List.concat_map (fun target -> Report.statuses ~baseline:base ~target dep) targets
  in
  (* syscall availability is an architecture story (paper §4.2), so the
     syscall buckets consider every image *)
  let statuses_all_images dep =
    List.concat_map (fun target -> Report.statuses ~baseline:base ~target dep) all_targets
  in
  let flags dep =
    let all = statuses_everywhere dep in
    let has p = List.exists p all in
    ( has (function Report.St_absent -> true | _ -> false),
      has (function Report.St_changed _ -> true | _ -> false),
      has (function Report.St_full_inline -> true | _ -> false),
      has (function Report.St_selective_inline -> true | _ -> false),
      has (function Report.St_transformed -> true | _ -> false),
      has (function Report.St_duplicated -> true | _ -> false) )
  in
  let clean_everywhere dep =
    List.for_all
      (function Report.St_ok -> true | _ -> false)
      (statuses_all_images dep)
  in
  (* Functions. *)
  let stable = ref []
  and absent = ref []
  and changed = ref []
  and full = ref []
  and selective = ref []
  and transformed = ref []
  and duplicated = ref [] in
  List.iter
    (fun (fe : Surface.func_entry) ->
      let name = fe.Surface.fe_name in
      let a, c, f, s, t, d = flags (Depset.Dep_func name) in
      (* exclusive buckets by priority: drawing "changed" functions must
         not smuggle in extra absences, or per-program mismatch profiles
         overshoot the paper's; transformation ranks right after absence
         because it is the rarest property *)
      if a then absent := name :: !absent
      else if t then transformed := name :: !transformed
      else if c then changed := name :: !changed
      else if f then full := name :: !full
      else if s then selective := name :: !selective
      else if d then duplicated := name :: !duplicated
      else if clean_everywhere (Depset.Dep_func name) then stable := name :: !stable
        (* constructs flaky only across arches fit no Table 7 column well:
           leave them out of the draw pools *))
    base.Surface.s_funcs;
  (* Fields: iterate baseline structs. *)
  let fld_stable = ref [] and fld_absent = ref [] and fld_changed = ref [] in
  List.iter
    (fun (st : Ds_ctypes.Decl.struct_def) ->
      List.iter
        (fun (fd : Ds_ctypes.Decl.field) ->
          let dep = Depset.Dep_field (st.sname, fd.fname) in
          let a, c, _, _, _, _ = flags dep in
          let item = (st.sname, fd.fname) in
          if a then fld_absent := item :: !fld_absent
          else if c then fld_changed := item :: !fld_changed
          else if clean_everywhere dep then fld_stable := item :: !fld_stable)
        st.Ds_ctypes.Decl.fields)
    base.Surface.s_structs;
  (* Tracepoints. *)
  let tp_stable = ref [] and tp_absent = ref [] and tp_changed = ref [] in
  List.iter
    (fun (tp : Surface.tp_entry) ->
      let name = tp.Surface.te_name in
      let a, c, _, _, _, _ = flags (Depset.Dep_tracepoint name) in
      if a then tp_absent := name :: !tp_absent
      else if c then tp_changed := name :: !tp_changed
      else if clean_everywhere (Depset.Dep_tracepoint name) then
        tp_stable := name :: !tp_stable)
    base.Surface.s_tracepoints;
  (* Syscalls. *)
  let sc_stable = ref [] and sc_absent = ref [] in
  List.iter
    (fun name ->
      let a =
        List.exists
          (function Report.St_absent -> true | _ -> false)
          (statuses_all_images (Depset.Dep_syscall name))
      in
      if a then sc_absent := name :: !sc_absent else sc_stable := name :: !sc_stable)
    base.Surface.s_syscalls;
  let sorted l = List.sort compare !l in
  {
    fn_stable = mk_pool (sorted stable);
    fn_absent = mk_pool (sorted absent);
    fn_changed = mk_pool (sorted changed);
    fn_full = mk_pool (sorted full);
    fn_selective = mk_pool (sorted selective);
    fn_transformed = mk_pool (sorted transformed);
    fn_duplicated = mk_pool (sorted duplicated);
    fld_stable = mk_fpool (sorted fld_stable);
    fld_absent = mk_fpool (sorted fld_absent);
    fld_changed = mk_fpool (sorted fld_changed);
    tp_stable = mk_pool (sorted tp_stable);
    tp_absent = mk_pool (sorted tp_absent);
    tp_changed = mk_pool (sorted tp_changed);
    sc_stable = mk_pool (sorted sc_stable);
    sc_absent = mk_pool (sorted sc_absent);
  }

let draw pool n =
  if Array.length pool.items = 0 then []
  else
    List.init (min n (Array.length pool.items)) (fun _ ->
        let i = !(pool.cursor) mod Array.length pool.items in
        pool.cursor := !(pool.cursor) + 1;
        pool.items.(i))

let fdraw pool n =
  if Array.length pool.fitems = 0 then []
  else
    List.init (min n (Array.length pool.fitems)) (fun _ ->
        let i = !(pool.fcursor) mod Array.length pool.fitems in
        pool.fcursor := !(pool.fcursor) + 1;
        pool.fitems.(i))

let take_funcs t bucket n =
  let pool =
    match bucket with
    | `Stable -> t.fn_stable
    | `Absent -> t.fn_absent
    | `Changed -> t.fn_changed
    | `Full -> t.fn_full
    | `Selective -> t.fn_selective
    | `Transformed -> t.fn_transformed
    | `Duplicated -> t.fn_duplicated
  in
  draw pool n

let take_fields t bucket n =
  let pool =
    match bucket with
    | `Stable -> t.fld_stable
    | `Absent -> t.fld_absent
    | `Changed -> t.fld_changed
  in
  fdraw pool n

let take_tracepoints t bucket n =
  let pool =
    match bucket with `Stable -> t.tp_stable | `Absent -> t.tp_absent | `Changed -> t.tp_changed
  in
  draw pool n

let take_syscalls t bucket n =
  let pool = match bucket with `Stable -> t.sc_stable | `Absent -> t.sc_absent in
  draw pool n

let pool_sizes t =
  [
    ("fn_stable", Array.length t.fn_stable.items);
    ("fn_absent", Array.length t.fn_absent.items);
    ("fn_changed", Array.length t.fn_changed.items);
    ("fn_full", Array.length t.fn_full.items);
    ("fn_selective", Array.length t.fn_selective.items);
    ("fn_transformed", Array.length t.fn_transformed.items);
    ("fn_duplicated", Array.length t.fn_duplicated.items);
    ("fld_stable", Array.length t.fld_stable.fitems);
    ("fld_absent", Array.length t.fld_absent.fitems);
    ("fld_changed", Array.length t.fld_changed.fitems);
    ("tp_stable", Array.length t.tp_stable.items);
    ("tp_absent", Array.length t.tp_absent.items);
    ("tp_changed", Array.length t.tp_changed.items);
    ("sc_stable", Array.length t.sc_stable.items);
    ("sc_absent", Array.length t.sc_absent.items);
  ]
