lib/corpus/table7.ml: List
