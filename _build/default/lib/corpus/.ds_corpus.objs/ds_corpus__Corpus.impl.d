lib/corpus/corpus.ml: Config Depsurf Ds_bpf Ds_ksrc Hashtbl Hook List Pools Progbuild String Table7 Version
