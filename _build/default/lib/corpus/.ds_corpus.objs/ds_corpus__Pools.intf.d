lib/corpus/pools.mli: Config Depsurf Ds_ksrc Version
