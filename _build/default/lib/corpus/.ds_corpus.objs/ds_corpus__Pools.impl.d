lib/corpus/pools.ml: Array Config Dataset Depset Depsurf Ds_ctypes Ds_ksrc List Report Surface Version
