lib/corpus/table7.mli:
