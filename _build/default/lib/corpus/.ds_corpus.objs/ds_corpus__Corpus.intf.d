lib/corpus/corpus.mli: Config Depsurf Ds_bpf Ds_ksrc Pools Table7 Version
