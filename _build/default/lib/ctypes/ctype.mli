(** Canonical model of C types as they appear in kernel debug info.

    This is the lingua franca of the repository: the synthetic kernel
    source model declares functions and structs in it, the mini compiler
    lowers it into DWARF DIEs and BTF records, and DepSurf raises the
    binary forms back into it to compare declarations across images.

    Named aggregates are represented by {e reference}: a [Struct_ref
    "task_struct"] node carries only the name, and the definition lives in
    a {!Decl.struct_def} looked up by name. This mirrors both DWARF
    (DW_AT_type references) and BTF (type ids) and keeps the graph acyclic
    at this level. *)

type t =
  | Void
  | Int of { name : string; bits : int; signed : bool }
  | Float of { name : string; bits : int }
  | Ptr of t
  | Array of t * int
  | Struct_ref of string
  | Union_ref of string
  | Enum_ref of string
  | Typedef_ref of string
  | Const of t
  | Volatile of t
  | Func_proto of proto

and param = { pname : string; ptype : t }
and proto = { ret : t; params : param list; variadic : bool }

val equal : t -> t -> bool
val compare : t -> t -> int
val equal_proto : proto -> proto -> bool

val strip_quals : t -> t
(** Remove leading [Const]/[Volatile] wrappers. *)

val to_string : t -> string
(** C-ish rendering, e.g. ["const struct file *"]. *)

val proto_to_string : name:string -> proto -> string
(** e.g. ["int vfs_fsync(struct file *file, int datasync)"]. *)

(** {2 Common scalar types} *)

val void : t
val bool_ : t
val char_ : t
val uchar : t
val short : t
val ushort : t
val int_ : t
val uint : t
val long : t
val ulong : t
val llong : t
val ullong : t
val u8 : t
val u16 : t
val u32 : t
val u64 : t
val s32 : t
val s64 : t
val size_t : t
val char_ptr : t
val void_ptr : t

val scalar_pool : t array
(** The scalars the synthetic generator draws from. *)

val compatible : t -> t -> bool
(** [compatible a b] is true when a register/memory read typed as [a]
    would not be rejected by the compiler if the producer used [b]: equal
    types, or integer types of the same bit width. A change between
    compatible types is precisely the kind that yields silent stray reads
    (paper, Takeaway 4). *)
