(** Declarations: named aggregates and function signatures.

    A {!type_env} holds every named definition of one kernel version; it is
    what the compiler lowers into debug info and what DepSurf reconstructs
    from an image. *)

type field = { fname : string; ftype : Ctype.t; bits_offset : int }

type struct_def = {
  sname : string;
  skind : [ `Struct | `Union ];
  byte_size : int;
  fields : field list;
}

type enum_def = { ename : string; values : (string * int) list }
type typedef_def = { tname : string; aliased : Ctype.t }
type func_decl = { fname : string; proto : Ctype.proto }

type type_env

val empty_env : ptr_size:int -> type_env
val ptr_size : type_env -> int
val add_struct : type_env -> struct_def -> type_env
val add_enum : type_env -> enum_def -> type_env
val add_typedef : type_env -> typedef_def -> type_env
val find_struct : type_env -> string -> struct_def option
val find_enum : type_env -> string -> enum_def option
val find_typedef : type_env -> string -> typedef_def option
val structs : type_env -> struct_def list
val enums : type_env -> enum_def list
val typedefs : type_env -> typedef_def list

val default_typedefs : typedef_def list
(** The kernel's scalar typedefs (u8..u64, size_t, ...). *)

val size_of : type_env -> Ctype.t -> int
(** Byte size of a type; struct/enum/typedef references are resolved
    through the environment. Raises [Not_found] on dangling references. *)

val align_of : type_env -> Ctype.t -> int
(** Natural alignment (power of two, at most the pointer size). *)

val layout_struct :
  type_env -> name:string -> kind:[ `Struct | `Union ] -> (string * Ctype.t) list -> struct_def
(** Compute bit offsets and total size by sequential natural-alignment
    packing (unions overlay at offset 0), the same rule the mini compiler
    uses; this is our stand-in for the real ABI layout. *)

val equal_field : field -> field -> bool
val equal_struct : struct_def -> struct_def -> bool
val equal_func : func_decl -> func_decl -> bool
