type t =
  | Void
  | Int of { name : string; bits : int; signed : bool }
  | Float of { name : string; bits : int }
  | Ptr of t
  | Array of t * int
  | Struct_ref of string
  | Union_ref of string
  | Enum_ref of string
  | Typedef_ref of string
  | Const of t
  | Volatile of t
  | Func_proto of proto

and param = { pname : string; ptype : t }
and proto = { ret : t; params : param list; variadic : bool }

let rec equal a b =
  match a, b with
  | Void, Void -> true
  | Int a, Int b -> a.name = b.name && a.bits = b.bits && a.signed = b.signed
  | Float a, Float b -> a.name = b.name && a.bits = b.bits
  | Ptr a, Ptr b -> equal a b
  | Array (a, n), Array (b, m) -> n = m && equal a b
  | Struct_ref a, Struct_ref b
  | Union_ref a, Union_ref b
  | Enum_ref a, Enum_ref b
  | Typedef_ref a, Typedef_ref b ->
      a = b
  | Const a, Const b | Volatile a, Volatile b -> equal a b
  | Func_proto a, Func_proto b -> equal_proto a b
  | ( ( Void | Int _ | Float _ | Ptr _ | Array _ | Struct_ref _ | Union_ref _
      | Enum_ref _ | Typedef_ref _ | Const _ | Volatile _ | Func_proto _ ),
      _ ) ->
      false

and equal_proto a b =
  a.variadic = b.variadic
  && equal a.ret b.ret
  && List.length a.params = List.length b.params
  && List.for_all2 (fun p q -> p.pname = q.pname && equal p.ptype q.ptype) a.params b.params

let compare = Stdlib.compare

let rec strip_quals = function
  | Const t | Volatile t -> strip_quals t
  | t -> t

let rec to_string = function
  | Void -> "void"
  | Int { name; _ } -> name
  | Float { name; _ } -> name
  | Ptr t -> to_string t ^ " *"
  | Array (t, n) -> Printf.sprintf "%s[%d]" (to_string t) n
  | Struct_ref n -> "struct " ^ n
  | Union_ref n -> "union " ^ n
  | Enum_ref n -> "enum " ^ n
  | Typedef_ref n -> n
  | Const t -> "const " ^ to_string t
  | Volatile t -> "volatile " ^ to_string t
  | Func_proto p -> proto_to_string ~name:"" p

and proto_to_string ~name p =
  let params =
    match p.params, p.variadic with
    | [], false -> "void"
    | params, variadic ->
        let ps = List.map (fun { pname; ptype } -> to_string ptype ^ " " ^ pname) params in
        String.concat ", " (if variadic then ps @ [ "..." ] else ps)
  in
  Printf.sprintf "%s %s(%s)" (to_string p.ret) name params

let void = Void
let mk name bits signed = Int { name; bits; signed }
let bool_ = mk "_Bool" 8 false
let char_ = mk "char" 8 true
let uchar = mk "unsigned char" 8 false
let short = mk "short int" 16 true
let ushort = mk "short unsigned int" 16 false
let int_ = mk "int" 32 true
let uint = mk "unsigned int" 32 false
let long = mk "long int" 64 true
let ulong = mk "long unsigned int" 64 false
let llong = mk "long long int" 64 true
let ullong = mk "long long unsigned int" 64 false
let u8 = Typedef_ref "u8"
let u16 = Typedef_ref "u16"
let u32 = Typedef_ref "u32"
let u64 = Typedef_ref "u64"
let s32 = Typedef_ref "s32"
let s64 = Typedef_ref "s64"
let size_t = Typedef_ref "size_t"
let char_ptr = Ptr char_
let void_ptr = Ptr Void

let scalar_pool =
  [| bool_; char_; uchar; short; ushort; int_; uint; long; ulong; u8; u16; u32; u64; s32; s64; size_t |]

let bits_of = function
  | Int { bits; _ } -> Some bits
  | Typedef_ref ("u8" | "s8") -> Some 8
  | Typedef_ref ("u16" | "s16") -> Some 16
  | Typedef_ref ("u32" | "s32") -> Some 32
  | Typedef_ref ("u64" | "s64" | "size_t" | "ssize_t") -> Some 64
  | _ -> None

(* qualifiers never change what a register read sees, at any depth *)
let rec strip_deep = function
  | Const t | Volatile t -> strip_deep t
  | Ptr t -> Ptr (strip_deep t)
  | Array (t, n) -> Array (strip_deep t, n)
  | t -> t

let compatible a b =
  let a = strip_deep a and b = strip_deep b in
  equal a b
  ||
  match bits_of a, bits_of b with
  | Some x, Some y -> x = y
  | _ -> false
