module Smap = Map.Make (String)

type field = { fname : string; ftype : Ctype.t; bits_offset : int }

type struct_def = {
  sname : string;
  skind : [ `Struct | `Union ];
  byte_size : int;
  fields : field list;
}

type enum_def = { ename : string; values : (string * int) list }
type typedef_def = { tname : string; aliased : Ctype.t }
type func_decl = { fname : string; proto : Ctype.proto }

type type_env = {
  ptr_size : int;
  structs : struct_def Smap.t;
  enums : enum_def Smap.t;
  typedefs : typedef_def Smap.t;
}

let empty_env ~ptr_size =
  { ptr_size; structs = Smap.empty; enums = Smap.empty; typedefs = Smap.empty }

let ptr_size env = env.ptr_size
let add_struct env s = { env with structs = Smap.add s.sname s env.structs }
let add_enum env e = { env with enums = Smap.add e.ename e env.enums }
let add_typedef env t = { env with typedefs = Smap.add t.tname t env.typedefs }
let find_struct env n = Smap.find_opt n env.structs
let find_enum env n = Smap.find_opt n env.enums
let find_typedef env n = Smap.find_opt n env.typedefs
let structs env = List.map snd (Smap.bindings env.structs)
let enums env = List.map snd (Smap.bindings env.enums)
let typedefs env = List.map snd (Smap.bindings env.typedefs)

let default_typedefs =
  let itd name base = { tname = name; aliased = base } in
  [
    itd "u8" Ctype.uchar;
    itd "s8" Ctype.char_;
    itd "u16" Ctype.ushort;
    itd "s16" Ctype.short;
    itd "u32" Ctype.uint;
    itd "s32" Ctype.int_;
    itd "u64" Ctype.ullong;
    itd "s64" Ctype.llong;
    itd "size_t" Ctype.ulong;
    itd "ssize_t" Ctype.long;
    itd "pid_t" Ctype.int_;
    itd "gfp_t" Ctype.uint;
    itd "umode_t" Ctype.ushort;
    itd "loff_t" Ctype.llong;
    itd "sector_t" Ctype.ulong;
    itd "dev_t" Ctype.uint;
    itd "cputime_t" Ctype.ulong;
  ]

let rec size_of env (t : Ctype.t) =
  match t with
  | Void -> 1
  | Int { bits; _ } | Float { bits; _ } -> bits / 8
  | Ptr _ | Func_proto _ -> env.ptr_size
  | Array (t, n) -> size_of env t * n
  | Const t | Volatile t -> size_of env t
  | Struct_ref n | Union_ref n -> (
      match find_struct env n with Some s -> s.byte_size | None -> raise Not_found)
  | Enum_ref n ->
      if Smap.mem n env.enums then 4 else raise Not_found
  | Typedef_ref n -> (
      match find_typedef env n with
      | Some td -> size_of env td.aliased
      | None -> raise Not_found)

let rec align_of env (t : Ctype.t) =
  match t with
  | Void -> 1
  | Int { bits; _ } | Float { bits; _ } -> min (bits / 8) env.ptr_size
  | Ptr _ | Func_proto _ -> env.ptr_size
  | Array (t, _) | Const t | Volatile t -> align_of env t
  | Struct_ref n | Union_ref n -> (
      match find_struct env n with
      | Some { fields = []; _ } -> 1
      | Some s ->
          List.fold_left (fun acc f -> max acc (align_of env f.ftype)) 1 s.fields
      | None -> raise Not_found)
  | Enum_ref _ -> 4
  | Typedef_ref n -> (
      match find_typedef env n with
      | Some td -> align_of env td.aliased
      | None -> raise Not_found)

let round_up v a = (v + a - 1) / a * a

let layout_struct env ~name ~kind members =
  match kind with
  | `Union ->
      let fields =
        List.map (fun (fname, ftype) -> { fname; ftype; bits_offset = 0 }) members
      in
      let byte_size =
        List.fold_left (fun acc (_, t) -> max acc (size_of env t)) 0 members
      in
      let align =
        List.fold_left (fun acc (_, t) -> max acc (align_of env t)) 1 members
      in
      { sname = name; skind = `Union; byte_size = round_up byte_size align; fields }
  | `Struct ->
      let off = ref 0 in
      let max_align = ref 1 in
      let fields =
        List.map
          (fun (fname, ftype) ->
            let a = align_of env ftype in
            max_align := max !max_align a;
            off := round_up !off a;
            let f = { fname; ftype; bits_offset = !off * 8 } in
            off := !off + size_of env ftype;
            f)
          members
      in
      { sname = name; skind = `Struct; byte_size = round_up !off !max_align; fields }

let equal_field (a : field) (b : field) =
  a.fname = b.fname && a.bits_offset = b.bits_offset && Ctype.equal a.ftype b.ftype

let equal_struct a b =
  a.sname = b.sname && a.skind = b.skind && a.byte_size = b.byte_size
  && List.length a.fields = List.length b.fields
  && List.for_all2 equal_field a.fields b.fields

let equal_func (a : func_decl) (b : func_decl) =
  a.fname = b.fname && Ctype.equal_proto a.proto b.proto
