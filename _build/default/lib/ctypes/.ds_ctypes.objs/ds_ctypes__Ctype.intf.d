lib/ctypes/ctype.mli:
