lib/ctypes/decl.mli: Ctype
