lib/ctypes/decl.ml: Ctype List Map String
