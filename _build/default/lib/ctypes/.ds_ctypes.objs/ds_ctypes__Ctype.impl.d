lib/ctypes/ctype.ml: List Printf Stdlib String
