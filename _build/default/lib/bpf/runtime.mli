(** Execution simulation: replay a synthetic kernel workload against
    attached programs and measure what the paper calls silent failures.

    The workload is derived from a compiled kernel model: every call site
    of every function fires, tagged with whether that site was inlined;
    every tracepoint and system call fires. An attached kprobe observes
    only non-inlined calls that hit the exact symbol address it attached
    to — so selective inlining yields {e incomplete} results and
    duplication misses the copies that were not attached (Table 2,
    "Missing Invocation").

    Stray reads are modelled by comparing, per observed kprobe hit, the
    argument type the program expects at each register slot against the
    type the running kernel actually passes there (Table 2, "Incorrect
    Result"). *)

type expectation = {
  ex_prog : string;  (** program name (within the object) *)
  ex_arg : int;  (** 0-based argument index; [-1] (or any kretprobe/fexit
                     hook) means the return value *)
  ex_type : Ds_ctypes.Ctype.t;  (** type assumed at build time *)
}

type prog_stats = {
  ps_prog : string;
  ps_hook : Hook.t;
  ps_logical : int;  (** times the hooked construct logically ran *)
  ps_observed : int;  (** times the program actually fired *)
  ps_stray_reads : int;  (** observed hits that read a misinterpreted arg *)
}

type report = { r_rounds : int; r_per_prog : prog_stats list }

val simulate :
  ?events_map:Maps.t ->
  Ds_kcc.Compile.model ->
  attachments:Loader.attachment list ->
  expectations:expectation list ->
  rounds:int ->
  report
(** When [events_map] is given (the object's results map, from
    {!Loader.instantiate_maps}), every observed hit bumps the per-program
    slot, the way real tools accumulate counters for their userspace
    frontend to read. *)

val missing_invocations : prog_stats -> int
val pp_report : Format.formatter -> report -> unit
