(** A small but genuine eBPF verifier: abstract interpretation of register
    states over the instruction stream.

    Checked properties (a practical subset of the kernel verifier's):
    - R1 enters as the context pointer, R10 as the stack frame pointer;
    - reads go through known-safe pointers: loads are allowed only from
      the context (bounded offset) or the stack; scalars must flow through
      [bpf_probe_read] to be dereferenced;
    - stores only to the stack, within the 512-byte frame;
    - helpers must exist; calls clobber R1–R5 and define R0 (kfunc calls
      are accepted here and name-checked against kernel BTF at load);
    - only forward jumps (no loops), bounded program size; branches fork
      the abstract state and {e both} paths must verify;
    - every path ends with [Exit] and R0 initialized there. *)

type reg_state = Uninit | Scalar | Ctx | Stack

type error = {
  ve_insn : int;  (** offending instruction index, -1 for whole-program *)
  ve_msg : string;
}

val max_insns : int
val ctx_limit : int
(** Maximum context offset a load may use. *)

val verify : Insn.t list -> (unit, error) result
