open Ds_ksrc
open Ds_kcc
open Construct

type expectation = { ex_prog : string; ex_arg : int; ex_type : Ds_ctypes.Ctype.t }

type prog_stats = {
  ps_prog : string;
  ps_hook : Hook.t;
  ps_logical : int;
  ps_observed : int;
  ps_stray_reads : int;
}

type report = { r_rounds : int; r_per_prog : prog_stats list }

let missing_invocations ps = ps.ps_logical - ps.ps_observed

let simulate ?events_map (model : Compile.model) ~attachments ~expectations ~rounds =
  (* Index kernel facts once. *)
  let sites_by_fn : (string, (int64 option * bool) list ref) Hashtbl.t = Hashtbl.create 256 in
  (* per function name: one entry per call site: (address of the copy
     serving this site if out-of-line, inlined?) *)
  let proto_by_fn : (string, Ds_ctypes.Ctype.proto) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (i : Compile.instance) ->
      let f = i.Compile.i_func in
      if not (Hashtbl.mem proto_by_fn f.fn_name) then
        Hashtbl.replace proto_by_fn f.fn_name (proto_for f model.Compile.m_config);
      let cell =
        match Hashtbl.find_opt sites_by_fn f.fn_name with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.add sites_by_fn f.fn_name c;
            c
      in
      let copy_addr = match i.Compile.i_symbols with (_, a) :: _ -> Some a | [] -> None in
      List.iter
        (fun (s : Compile.site) -> cell := (copy_addr, s.Compile.sd_inlined) :: !cell)
        i.Compile.i_sites;
      (* a function with a symbol but no recorded sites still runs (called
         from elsewhere): give it one synthetic site *)
      if i.Compile.i_sites = [] && copy_addr <> None then cell := (copy_addr, false) :: !cell)
    model.Compile.m_instances;
  let stats a =
    let prog = a.Loader.at_prog in
    let expect = List.filter (fun e -> e.ex_prog = prog) expectations in
    let is_return = match a.Loader.at_hook with
      | Hook.Kretprobe _ | Hook.Fexit _ -> true
      | _ -> false
    in
    match a.Loader.at_hook with
    | Hook.Kprobe fn | Hook.Kretprobe fn | Hook.Fentry fn | Hook.Fexit fn ->
        let sites = match Hashtbl.find_opt sites_by_fn fn with Some c -> !c | None -> [] in
        let logical = rounds * List.length sites in
        let observed_sites =
          List.filter
            (fun (addr, inlined) ->
              (not inlined)
              && match addr with Some a' -> List.mem a' a.Loader.at_addrs | None -> false)
            sites
        in
        let observed = rounds * List.length observed_sites in
        (* stray reads: for each observed hit, compare expected arg types
           against the function's current signature *)
        let current = Hashtbl.find_opt proto_by_fn fn in
        let stray_per_hit =
          List.length
            (List.filter
               (fun e ->
                 match current with
                 | None -> false
                 | Some proto ->
                     if e.ex_arg < 0 || is_return then
                       (* return-value expectation (kretprobe/fexit) *)
                       not (Ds_ctypes.Ctype.compatible proto.Ds_ctypes.Ctype.ret e.ex_type)
                     else (
                       match List.nth_opt proto.Ds_ctypes.Ctype.params e.ex_arg with
                       | None -> true (* argument vanished: reads garbage *)
                       | Some p ->
                           not (Ds_ctypes.Ctype.compatible p.Ds_ctypes.Ctype.ptype e.ex_type)))
               expect)
        in
        {
          ps_prog = prog;
          ps_hook = a.Loader.at_hook;
          ps_logical = logical;
          ps_observed = observed;
          ps_stray_reads = observed * stray_per_hit;
        }
    | Hook.Lsm hook ->
        let fn = "security_" ^ hook in
        let sites = match Hashtbl.find_opt sites_by_fn fn with Some c -> !c | None -> [] in
        let n = max 1 (List.length sites) in
        {
          ps_prog = prog;
          ps_hook = a.Loader.at_hook;
          ps_logical = rounds * n;
          ps_observed = rounds * n;
          ps_stray_reads = 0;
        }
    | Hook.Tracepoint _ | Hook.Raw_tracepoint _ ->
        (* static instrumentation: fires exactly as often as it should *)
        {
          ps_prog = prog;
          ps_hook = a.Loader.at_hook;
          ps_logical = rounds;
          ps_observed = rounds;
          ps_stray_reads = 0;
        }
    | Hook.Syscall_enter _ | Hook.Syscall_exit _ | Hook.Perf_event ->
        {
          ps_prog = prog;
          ps_hook = a.Loader.at_hook;
          ps_logical = rounds;
          ps_observed = rounds;
          ps_stray_reads = 0;
        }
  in
  let per_prog = List.map stats attachments in
  (match events_map with
  | Some m ->
      List.iteri
        (fun i ps ->
          if ps.ps_observed > 0 then Maps.bump m (Maps.key_of_int m i) ps.ps_observed)
        per_prog
  | None -> ());
  { r_rounds = rounds; r_per_prog = per_prog }

let pp_report fmt r =
  Format.fprintf fmt "workload: %d rounds@." r.r_rounds;
  List.iter
    (fun ps ->
      Format.fprintf fmt "  %-40s %-30s logical=%-6d observed=%-6d missing=%-6d stray=%d@."
        ps.ps_prog
        (Hook.to_string ps.ps_hook)
        ps.ps_logical ps.ps_observed (missing_invocations ps) ps.ps_stray_reads)
    r.r_per_prog
