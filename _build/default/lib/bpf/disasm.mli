(** eBPF disassembler: `bpftool prog dump xlated`-style text for programs
    and whole objects, with CO-RE relocation annotations. *)

val insn_to_string : Insn.t -> string
(** One instruction, e.g. ["r7 = *(u64 *)(r6 + 112)"]. *)

val prog : ?obj:Obj.t -> Obj.prog -> string
(** Numbered listing; when [obj] is given, instructions carrying CO-RE
    relocations are annotated with the resolved struct::field path. *)

val obj : Obj.t -> string
(** Full object dump: maps, then every program. *)
