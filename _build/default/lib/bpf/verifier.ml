type reg_state = Uninit | Scalar | Ctx | Stack

type error = { ve_insn : int; ve_msg : string }

let max_insns = 4096
let ctx_limit = 4096

(* Path-sensitive exploration: jumps fork the register state and both
   paths must verify, like the kernel verifier's DFS over the CFG. The
   ISA only has forward jumps (back-edges are rejected), so exploration
   terminates; a visited set on (pc, state) bounds the blow-up on
   diamond-heavy programs. *)
let verify insns =
  let n = List.length insns in
  if n = 0 then Error { ve_insn = -1; ve_msg = "empty program" }
  else if n > max_insns then Error { ve_insn = -1; ve_msg = "program too large" }
  else begin
    let code = Array.of_list insns in
    let err i msg = Error { ve_insn = i; ve_msg = msg } in
    let visited : (int * reg_state array, unit) Hashtbl.t = Hashtbl.create 64 in
    let rec go i regs =
      if i = n then Error { ve_insn = n - 1; ve_msg = "program does not end with exit" }
      else if Hashtbl.mem visited (i, regs) then Ok ()
      else begin
        Hashtbl.replace visited (i, Array.copy regs) ();
        let continue () = go (i + 1) regs in
        let check_reg r k =
          if r < 0 || r > 10 then err i (Printf.sprintf "invalid register r%d" r) else k ()
        in
        let require_init r k =
          check_reg r (fun () ->
              if regs.(r) = Uninit then err i (Printf.sprintf "r%d is uninitialized" r) else k ())
        in
        let writable r k = if r = 10 then err i "cannot write r10" else k () in
        match code.(i) with
        | Insn.Mov_imm { dst; _ } ->
            check_reg dst (fun () ->
                writable dst (fun () ->
                    let regs = Array.copy regs in
                    regs.(dst) <- Scalar;
                    go (i + 1) regs))
        | Insn.Mov_reg { dst; src } ->
            require_init src (fun () ->
                writable dst (fun () ->
                    let regs' = Array.copy regs in
                    regs'.(dst) <- regs.(src);
                    go (i + 1) regs'))
        | Insn.Add_imm { dst; _ } ->
            require_init dst (fun () -> writable dst (fun () -> continue ()))
        | Insn.Ldx { dst; src; off; _ } ->
            require_init src (fun () ->
                match regs.(src) with
                | Ctx ->
                    if off < 0 || off >= ctx_limit then
                      err i (Printf.sprintf "ctx access out of bounds at off %d" off)
                    else begin
                      let regs = Array.copy regs in
                      regs.(dst) <- Scalar;
                      go (i + 1) regs
                    end
                | Stack ->
                    if off < -512 || off >= 0 then err i "stack read out of frame"
                    else begin
                      let regs = Array.copy regs in
                      regs.(dst) <- Scalar;
                      go (i + 1) regs
                    end
                | Scalar -> err i (Printf.sprintf "r%d invalid mem access 'scalar'" src)
                | Uninit -> err i (Printf.sprintf "r%d is uninitialized" src))
        | Insn.Stx { dst; src; off; _ } ->
            require_init src (fun () ->
                match regs.(dst) with
                | Stack ->
                    if off < -512 || off >= 0 then err i "stack write out of frame"
                    else continue ()
                | Ctx -> err i "cannot write into ctx"
                | Scalar | Uninit -> err i (Printf.sprintf "r%d invalid store target" dst))
        | Insn.Call helper ->
            if not (Insn.helper_known helper) then
              err i (Printf.sprintf "unknown func id %d" helper)
            else begin
              let regs = Array.copy regs in
              for r = 1 to 5 do
                regs.(r) <- Uninit
              done;
              regs.(0) <- Scalar;
              go (i + 1) regs
            end
        | Insn.Kfunc_call _ ->
            (* name resolution happens at load time against kernel BTF *)
            let regs = Array.copy regs in
            for r = 1 to 5 do
              regs.(r) <- Uninit
            done;
            regs.(0) <- Scalar;
            go (i + 1) regs
        | Insn.Jeq_imm { reg; target; _ } ->
            require_init reg (fun () ->
                if target < 0 then err i "back-edge (loop) not allowed"
                else if i + 1 + target > n then err i "jump out of range"
                else
                  (* both outcomes must verify *)
                  match go (i + 1) (Array.copy regs) with
                  | Error e -> Error e
                  | Ok () -> go (i + 1 + target) (Array.copy regs))
        | Insn.Exit ->
            if regs.(0) = Uninit then err i "R0 !read_ok: exit with uninitialized R0" else Ok ()
      end
    in
    let regs = Array.make 11 Uninit in
    regs.(1) <- Ctx;
    regs.(10) <- Stack;
    go 0 regs
  end
