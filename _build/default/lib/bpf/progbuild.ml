open Ds_ctypes
open Ds_ksrc
module Btf = Ds_btf.Btf

type read = { rd_struct : string; rd_path : string list; rd_exists_check : bool }

type hook_spec = {
  hs_hook : Hook.t;
  hs_arg_indices : int list;
  hs_reads : read list;
  hs_kfuncs : string list;
}
type spec = { sp_tool : string; sp_hooks : hook_spec list }

let arg_register arch i =
  match arch, i with
  | Config.X86, 0 -> Some "di"
  | Config.X86, 1 -> Some "si"
  | Config.X86, 2 -> Some "dx"
  | Config.X86, 3 -> Some "cx"
  | Config.X86, 4 -> Some "r8"
  | Config.X86, 5 -> Some "r9"
  | Config.Arm64, i when i < 8 -> Some "regs"
  | Config.Arm32, i when i < 4 -> Some "uregs"
  | Config.Ppc, i when i < 8 -> Some "gpr"
  | Config.Riscv, 0 -> Some "a0"
  | Config.Riscv, 1 -> Some "a1"
  | Config.Riscv, 2 -> Some "a2"
  | Config.Riscv, 3 -> Some "a3"
  | Config.Riscv, 4 -> Some "a4"
  | Config.Riscv, 5 -> Some "a5"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Local type environment: the program's own BTF                       *)
(* ------------------------------------------------------------------ *)

(* Collect the struct definitions a read chain touches, resolving
   intermediate links against the build environment; synthesize structs
   the build kernel does not know (a program compiled against an older
   vmlinux.h carries the old layout). *)
let local_env build_env arch (specs : hook_spec list) =
  let ptr_size = Config.ptr_size arch in
  let out = ref (List.fold_left Decl.add_typedef (Decl.empty_env ~ptr_size) Decl.default_typedefs) in
  let have name = Decl.find_struct !out name <> None in
  let add_def (d : Decl.struct_def) = out := Decl.add_struct !out d in
  let synth name fields =
    (* invented layout for a struct the build kernel lacks *)
    let members = List.map (fun f -> (f, Ctype.u64)) fields in
    Decl.layout_struct !out ~name ~kind:`Struct members
  in
  let import name fallback_fields =
    if not (have name) then
      match Decl.find_struct build_env name with
      | Some d -> add_def d
      | None -> add_def (synth name fallback_fields)
  in
  let rec chain struct_name path =
    match path with
    | [] -> ()
    | f :: rest -> (
        import struct_name [ f ];
        (* if the build kernel's struct lacks the expected field, extend
           the local copy: the program still "remembers" it *)
        (match Decl.find_struct !out struct_name with
        | Some d when not (List.exists (fun (fd : Decl.field) -> fd.fname = f) d.fields) ->
            let members =
              List.map (fun (fd : Decl.field) -> (fd.fname, fd.ftype)) d.fields @ [ (f, Ctype.u64) ]
            in
            add_def (Decl.layout_struct !out ~name:struct_name ~kind:d.skind members)
        | _ -> ());
        if rest <> [] then begin
          (* follow the link to the next struct *)
          match Decl.find_struct !out struct_name with
          | Some d -> (
              match List.find_opt (fun (fd : Decl.field) -> fd.fname = f) d.fields with
              | Some fd -> (
                  match Ctype.strip_quals fd.ftype with
                  | Ctype.Ptr inner | inner -> (
                      match Ctype.strip_quals inner with
                      | Ctype.Struct_ref n | Ctype.Union_ref n -> chain n rest
                      | _ ->
                          (* field is not aggregate-typed in the build
                             kernel; synthesize the next link *)
                          chain (struct_name ^ "__" ^ f) rest))
              | None -> ())
          | None -> ()
        end)
  in
  List.iter
    (fun hs ->
      if hs.hs_arg_indices <> [] then import "pt_regs" [];
      List.iter (fun r -> chain r.rd_struct r.rd_path) hs.hs_reads)
    specs;
  !out

(* ------------------------------------------------------------------ *)
(* Code generation                                                     *)
(* ------------------------------------------------------------------ *)

let member_index env struct_name field =
  match Decl.find_struct env struct_name with
  | None -> None
  | Some d ->
      let rec go i = function
        | [] -> None
        | (fd : Decl.field) :: rest -> if fd.fname = field then Some i else go (i + 1) rest
      in
      go 0 d.fields

(* Access indices along a chain: CO-RE's "0:i:j" form (first 0 = pointer
   deref of the root). *)
let access_indices env struct_name path =
  let rec go s acc = function
    | [] -> Some (List.rev acc)
    | f :: rest -> (
        match member_index env s f with
        | None -> None
        | Some i -> (
            match rest with
            | [] -> Some (List.rev (i :: acc))
            | _ -> (
                match Decl.find_struct env s with
                | None -> None
                | Some d -> (
                    let fd = List.nth d.fields i in
                    match Ctype.strip_quals fd.Decl.ftype with
                    | Ctype.Ptr inner -> (
                        match Ctype.strip_quals inner with
                        | Ctype.Struct_ref n | Ctype.Union_ref n -> go n (i :: acc) rest
                        | _ -> None)
                    | Ctype.Struct_ref n | Ctype.Union_ref n -> go n (i :: acc) rest
                    | _ -> None))))
  in
  Option.map (fun idxs -> 0 :: idxs) (go struct_name [] path)

let sanitize s =
  String.map (fun c -> if c = '/' || c = '-' || c = '.' then '_' else c) s

let build ~build_btf ~build_arch ~tag spec =
  (* drop duplicate hooks: two programs cannot share a section *)
  let spec =
    let seen = Hashtbl.create 8 in
    {
      spec with
      sp_hooks =
        List.filter
          (fun hs ->
            let sec = Hook.to_section hs.hs_hook in
            if Hashtbl.mem seen sec then false
            else begin
              Hashtbl.replace seen sec ();
              true
            end)
          spec.sp_hooks;
    }
  in
  let build_env, _ = Btf.to_env ~ptr_size:(Config.ptr_size build_arch) build_btf in
  let env = local_env build_env build_arch spec.sp_hooks in
  let btf = Btf.of_env env [] in
  let type_id name =
    match Btf.find_struct btf name with Some (id, _) -> id | None -> 0
  in
  let build_prog hs =
    let insns = ref [] in
    let relocs = ref [] in
    let n = ref 0 in
    let emit i =
      insns := i :: !insns;
      incr n
    in
    let emit_reloc ~root ~access ~kind =
      relocs :=
        Obj.{ cr_insn = !n; cr_type_id = type_id root; cr_access = access; cr_kind = kind }
        :: !relocs
    in
    (* save ctx *)
    emit (Insn.Mov_reg { dst = 6; src = 1 });
    (* fetch arguments via pt_regs register fields (kprobe-style) *)
    let is_kprobe =
      match hs.hs_hook with Hook.Kprobe _ | Hook.Kretprobe _ -> true | _ -> false
    in
    List.iter
      (fun i ->
        match arg_register build_arch i with
        | Some reg when is_kprobe -> (
            match access_indices env "pt_regs" [ reg ] with
            | Some access ->
                emit_reloc ~root:"pt_regs" ~access ~kind:Obj.Field_byte_offset;
                emit (Insn.Ldx { dst = 7; src = 6; off = 0; size = Insn.DW })
            | None -> ())
        | Some _ | None ->
            (* non-kprobe hooks read positional ctx slots (typed args) *)
            emit (Insn.Ldx { dst = 7; src = 6; off = 8 * i; size = Insn.DW }))
      hs.hs_arg_indices;
    (* struct-field reads *)
    let needs_ptr =
      List.exists (fun r -> not r.rd_exists_check) hs.hs_reads && hs.hs_arg_indices = []
    in
    let is_tracepoint =
      match hs.hs_hook with
      | Hook.Tracepoint _ | Hook.Raw_tracepoint _ | Hook.Syscall_enter _ | Hook.Syscall_exit _ ->
          true
      | _ -> false
    in
    let is_plain = match hs.hs_hook with Hook.Kprobe _ | Hook.Kretprobe _ | Hook.Fentry _ | Hook.Fexit _ | Hook.Lsm _ | Hook.Perf_event -> true | _ -> false in
    if needs_ptr && is_plain && not is_tracepoint then
      (* no argument was fetched: take the first ctx word as the pointer *)
      emit (Insn.Ldx { dst = 7; src = 6; off = 0; size = Insn.DW });
    List.iter
      (fun r ->
        match access_indices env r.rd_struct r.rd_path with
        | None -> ()
        | Some access ->
            if r.rd_exists_check then begin
              emit_reloc ~root:r.rd_struct ~access ~kind:Obj.Field_exists;
              emit (Insn.Mov_imm { dst = 8; imm = 0 });
              emit (Insn.Jeq_imm { reg = 8; imm = 0; target = 1 });
              emit (Insn.Mov_imm { dst = 9; imm = 1 })
            end
            else if is_tracepoint then begin
              (* event structs are read directly from ctx *)
              emit_reloc ~root:r.rd_struct ~access ~kind:Obj.Field_byte_offset;
              emit (Insn.Ldx { dst = 8; src = 6; off = 0; size = Insn.DW })
            end
            else begin
              (* kernel memory: bpf_probe_read(stack_buf, 8, ptr + off) *)
              emit (Insn.Mov_reg { dst = 3; src = 7 });
              emit_reloc ~root:r.rd_struct ~access ~kind:Obj.Field_byte_offset;
              emit (Insn.Add_imm { dst = 3; imm = 0 });
              emit (Insn.Mov_imm { dst = 2; imm = 8 });
              emit (Insn.Mov_reg { dst = 1; src = 10 });
              emit (Insn.Add_imm { dst = 1; imm = -16 });
              emit (Insn.Call Insn.helper_probe_read)
            end)
      hs.hs_reads;
    (* kfunc calls *)
    List.iteri
      (fun i _name ->
        emit (Insn.Mov_reg { dst = 1; src = 6 });
        emit (Insn.Kfunc_call i))
      hs.hs_kfuncs;
    emit (Insn.Mov_imm { dst = 0; imm = 0 });
    emit Insn.Exit;
    let section = Hook.to_section hs.hs_hook in
    Obj.
      {
        p_name = spec.sp_tool ^ "__" ^ sanitize section;
        p_section = section;
        p_insns = List.rev !insns;
        p_relocs = List.rev !relocs;
        p_kfuncs = hs.hs_kfuncs;
      }
  in
  Obj.
    {
      o_name = spec.sp_tool;
      o_built_for = tag;
      o_progs = List.map build_prog spec.sp_hooks;
      o_maps =
        [
          (* every libbpf tool carries at least its results map *)
          Maps.
            {
              md_name = "events";
              md_type = Maps.Hash;
              md_key_size = 4;
              md_value_size = 8;
              md_max_entries = 10240;
            };
        ];
      o_btf = btf;
    }
