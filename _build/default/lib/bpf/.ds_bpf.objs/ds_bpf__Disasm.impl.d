lib/bpf/disasm.ml: Buffer Insn List Maps Obj Printf String
