lib/bpf/hook.ml: Option Printf String
