lib/bpf/loader.ml: Ds_btf Ds_elf Ds_ksrc Hook Insn List Maps Obj Printf String Verifier Version Vmlinux
