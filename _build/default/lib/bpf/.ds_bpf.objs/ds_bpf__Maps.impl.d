lib/bpf/maps.ml: Array Bytes Char Hashtbl Int32 Option Printf String
