lib/bpf/insn.mli:
