lib/bpf/progbuild.ml: Config Ctype Decl Ds_btf Ds_ctypes Ds_ksrc Hashtbl Hook Insn List Maps Obj Option String
