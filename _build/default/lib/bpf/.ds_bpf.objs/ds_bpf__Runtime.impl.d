lib/bpf/runtime.ml: Compile Construct Ds_ctypes Ds_kcc Ds_ksrc Format Hashtbl Hook List Loader Maps
