lib/bpf/obj.ml: Buffer Bytesio Ds_btf Ds_elf Ds_util Elf Hashtbl Hook Insn List Maps Option Printf String
