lib/bpf/verifier.mli: Insn
