lib/bpf/maps.mli:
