lib/bpf/insn.ml: Bytesio Ds_util List Printf String
