lib/bpf/runtime.mli: Ds_ctypes Ds_kcc Format Hook Loader Maps
