lib/bpf/loader.mli: Ds_btf Hook Insn Maps Obj Vmlinux
