lib/bpf/vmlinux.mli: Config Ds_btf Ds_elf Ds_ksrc Version
