lib/bpf/obj.mli: Ds_btf Hook Insn Maps
