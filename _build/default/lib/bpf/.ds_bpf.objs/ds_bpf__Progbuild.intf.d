lib/bpf/progbuild.mli: Config Ds_btf Ds_ksrc Hook Obj
