lib/bpf/disasm.mli: Insn Obj
