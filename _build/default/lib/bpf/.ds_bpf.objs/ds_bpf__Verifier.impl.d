lib/bpf/verifier.ml: Array Hashtbl Insn List Printf
