lib/bpf/hook.mli:
