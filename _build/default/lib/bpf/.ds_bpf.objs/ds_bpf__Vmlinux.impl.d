lib/bpf/vmlinux.ml: Config Ds_btf Ds_elf Ds_ksrc Elf Int64 List Printf Scanf String Version
