(** High-level construction of eBPF object files: the "clang + libbpf"
    stand-in. A {!spec} names the hooks a tool attaches to, the struct
    fields it reads, and the function arguments it fetches through
    [pt_regs]; [build] compiles that into real bytecode with CO-RE
    relocation records, plus a program-local BTF cut down from the build
    kernel's types (what clang distills from [vmlinux.h]). *)

open Ds_ksrc

type read = {
  rd_struct : string;
  rd_path : string list;  (** field chain within the struct *)
  rd_exists_check : bool;  (** emit a [bpf_core_field_exists]-style guard
                               instead of a direct access *)
}

type hook_spec = {
  hs_hook : Hook.t;
  hs_arg_indices : int list;
      (** for kprobes: which arguments (0-based) to fetch via the build
          arch's [pt_regs] register fields — the non-portable
          PT_REGS_PARM pattern of paper §4.2 *)
  hs_reads : read list;
  hs_kfuncs : string list;
      (** kernel functions the program calls (paper §4.1): resolved
          against the target kernel's BTF at load time *)
}

type spec = { sp_tool : string; sp_hooks : hook_spec list }

val arg_register : Config.arch -> int -> string option
(** The [pt_regs] field holding argument [i] under that architecture's
    calling convention (e.g. x86 arg 0 → ["di"], arm64 arg 0 → ["regs"]). *)

val build : build_btf:Ds_btf.Btf.t -> build_arch:Config.arch -> tag:string -> spec -> Obj.t
(** Compile a spec against a build kernel's BTF. The object's local BTF
    contains only the types the program touches. Unknown structs/fields
    are included as the program expects them (compilation against an old
    [vmlinux.h] is exactly how version skew happens). *)
