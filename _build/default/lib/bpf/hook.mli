(** Hook descriptors: where an eBPF program attaches. *)

type t =
  | Kprobe of string
  | Kretprobe of string
  | Fentry of string
  | Fexit of string
  | Tracepoint of { category : string; event : string }
  | Raw_tracepoint of string
  | Lsm of string  (** hook name without the [security_] prefix *)
  | Syscall_enter of string
  | Syscall_exit of string
  | Perf_event  (** sampling programs (SEC("perf_event")); always attachable *)

val to_section : t -> string
(** libbpf-style section name, e.g. [Kprobe "f"] → ["kprobe/f"],
    [Syscall_enter "open"] → ["tracepoint/syscalls/sys_enter_open"]. *)

val of_section : string -> t option
val to_string : t -> string

val target_function : t -> string option
(** The kernel function the hook needs, when it is function-shaped
    (kprobe/kretprobe/fentry/fexit/lsm). *)

val target_tracepoint : t -> string option
val target_syscall : t -> string option
