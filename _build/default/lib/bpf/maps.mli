(** eBPF maps: the kernel-side key/value stores every real tool uses to
    accumulate results (biotop's per-device counters, runqlat's latency
    histogram, ...).

    Three of the classic map types are modelled — [Hash], [Array] and
    [Percpu_array] — with fixed key/value sizes, bounded capacity and the
    kernel's update semantics ([bpf_map_update_elem] flags). The runtime
    gives attached programs access to their object's maps, and examples
    read the maps afterwards, exactly like a userspace frontend. *)

type map_type = Hash | Array | Percpu_array of int  (** cpu count *)

type def = {
  md_name : string;
  md_type : map_type;
  md_key_size : int;  (** bytes *)
  md_value_size : int;
  md_max_entries : int;
}

type t
(** A live map instance. *)

type update_flag = Any | Noexist | Exist
(** BPF_ANY / BPF_NOEXIST / BPF_EXIST. *)

exception Map_error of string

val create : def -> t
val def : t -> def
val entries : t -> int

val lookup : t -> string -> string option
(** [lookup m key] — key must be exactly [md_key_size] bytes. For percpu
    maps, returns the cpu-0 slot (use {!lookup_percpu}). *)

val lookup_percpu : t -> string -> string list option

val update : ?cpu:int -> ?flag:update_flag -> t -> string -> string -> (unit, string) result
(** Kernel semantics: [Noexist] fails on present keys, [Exist] on absent
    ones; hash maps reject inserts at capacity ([E2BIG]); array maps
    reject out-of-range indices. *)

val delete : t -> string -> (unit, string) result
val fold : t -> init:'a -> f:(string -> string -> 'a -> 'a) -> 'a
(** Iterate key/value pairs (cpu-0 view for percpu maps). *)

(** {2 Helpers for numeric maps} *)

val key_of_int : t -> int -> string
(** Encode an int as a little-endian key of the map's key size. *)

val value_to_int : string -> int
(** Decode a little-endian value (up to 8 bytes). *)

val bump : t -> string -> int -> unit
(** [bump m key delta]: the ubiquitous lookup-or-init + add pattern. *)
