(** eBPF instructions: a practical subset of the ISA with the real 8-byte
    wire encoding (opcode, dst/src register nibbles, 16-bit offset, 32-bit
    immediate). *)

type size = B | H | W | DW

type t =
  | Mov_imm of { dst : int; imm : int }
  | Mov_reg of { dst : int; src : int }
  | Add_imm of { dst : int; imm : int }
  | Ldx of { dst : int; src : int; off : int; size : size }
      (** load from memory: [dst = *(src + off)] — the instruction CO-RE
          patches *)
  | Stx of { dst : int; src : int; off : int; size : size }
  | Jeq_imm of { reg : int; imm : int; target : int }
      (** relative jump: skip [target] instructions when equal *)
  | Call of int  (** helper id *)
  | Kfunc_call of int
      (** call into a kernel function: the immediate indexes the object's
          kfunc name table, resolved against the target kernel's BTF at
          load time (the real ISA marks these with src_reg =
          BPF_PSEUDO_KFUNC_CALL) *)
  | Exit

val encode : t list -> string
val decode : string -> t list

exception Bad_insn of string

(** {2 Helper functions} (ids from the real UAPI) *)

val helper_map_lookup_elem : int
val helper_ktime_get_ns : int
val helper_trace_printk : int
val helper_get_current_pid_tgid : int
val helper_get_current_comm : int
val helper_probe_read : int
val helper_perf_event_output : int
val helper_probe_read_str : int
val helper_known : int -> bool
val helper_name : int -> string option
