(** The loader: verify → CO-RE relocate → attach, against a {!Vmlinux}
    view of the target kernel. Each stage produces the paper's explicit
    error classes (Table 2): verifier rejection, relocation error,
    attachment error. *)

type error =
  | Verifier_error of { prog : string; insn : int; msg : string }
  | Relocation_error of { prog : string; type_name : string; path : string list; msg : string }
  | Attachment_error of { prog : string; hook : Hook.t; reason : string }

val error_to_string : error -> string

type attachment = {
  at_prog : string;
  at_hook : Hook.t;
  at_insns : Insn.t list;  (** relocated instructions *)
  at_addrs : int64 list;
      (** resolved hook addresses (kprobe-style hooks); before v6.6, a
          name with several symbols silently attaches to the first one
          (paper §6, commit b022f0c made it an error) *)
  at_field_offsets : (string * string list * int) list;
      (** (struct, path, resolved byte offset) per relocated field access *)
}

val load_and_attach : Vmlinux.t -> Obj.t -> (attachment list, error) result
(** All programs of the object, or the first error. *)

val instantiate_maps : Obj.t -> (string * Maps.t) list
(** Create the object's maps (what BPF_MAP_CREATE does at load time). *)

val load_prog : Vmlinux.t -> Obj.t -> Obj.prog -> (attachment, error) result

val resolve_field :
  Ds_btf.Btf.t -> struct_name:string -> path:string list -> (int, string) result
(** Walk a field path against a (target) BTF: returns the byte offset of
    the final field within its containing aggregate, following pointer
    and typedef indirection between links. *)
