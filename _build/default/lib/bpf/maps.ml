type map_type = Hash | Array | Percpu_array of int

type def = {
  md_name : string;
  md_type : map_type;
  md_key_size : int;
  md_value_size : int;
  md_max_entries : int;
}

type t = { d : def; tbl : (string, string array) Hashtbl.t }

type update_flag = Any | Noexist | Exist

exception Map_error of string

let ncpus d = match d.md_type with Percpu_array n -> max 1 n | Hash | Array -> 1

let create d =
  if d.md_key_size <= 0 || d.md_value_size <= 0 || d.md_max_entries <= 0 then
    raise (Map_error "invalid map definition");
  let t = { d; tbl = Hashtbl.create 64 } in
  (* array maps are pre-populated with zero values, like the kernel *)
  (match d.md_type with
  | Array | Percpu_array _ ->
      for i = 0 to d.md_max_entries - 1 do
        let key = Bytes.make d.md_key_size '\000' in
        Bytes.set_int32_le key 0 (Int32.of_int i);
        Hashtbl.replace t.tbl (Bytes.to_string key)
          (Array.make (ncpus d) (String.make d.md_value_size '\000'))
      done
  | Hash -> ());
  t

let def t = t.d
let entries t = Hashtbl.length t.tbl

let check_key t key =
  if String.length key <> t.d.md_key_size then
    raise (Map_error (Printf.sprintf "%s: key size %d, want %d" t.d.md_name (String.length key) t.d.md_key_size))

let check_value t v =
  if String.length v <> t.d.md_value_size then
    raise (Map_error (Printf.sprintf "%s: value size %d, want %d" t.d.md_name (String.length v) t.d.md_value_size))

let lookup t key =
  check_key t key;
  Option.map (fun slots -> slots.(0)) (Hashtbl.find_opt t.tbl key)

let lookup_percpu t key =
  check_key t key;
  Option.map Array.to_list (Hashtbl.find_opt t.tbl key)

let update ?(cpu = 0) ?(flag = Any) t key value =
  check_key t key;
  check_value t value;
  let exists = Hashtbl.mem t.tbl key in
  match t.d.md_type, flag, exists with
  | Hash, Noexist, true -> Error "EEXIST"
  | Hash, Exist, false -> Error "ENOENT"
  | Hash, _, false when Hashtbl.length t.tbl >= t.d.md_max_entries -> Error "E2BIG"
  | (Array | Percpu_array _), _, false -> Error "E2BIG" (* out-of-range index *)
  | _ ->
      let slots =
        match Hashtbl.find_opt t.tbl key with
        | Some s -> s
        | None -> Array.make (ncpus t.d) (String.make t.d.md_value_size '\000')
      in
      let cpu = if cpu < 0 || cpu >= Array.length slots then 0 else cpu in
      slots.(cpu) <- value;
      Hashtbl.replace t.tbl key slots;
      Ok ()

let delete t key =
  check_key t key;
  match t.d.md_type with
  | Array | Percpu_array _ -> Error "EINVAL" (* array entries cannot be deleted *)
  | Hash ->
      if Hashtbl.mem t.tbl key then begin
        Hashtbl.remove t.tbl key;
        Ok ()
      end
      else Error "ENOENT"

let fold t ~init ~f = Hashtbl.fold (fun k slots acc -> f k slots.(0) acc) t.tbl init

let key_of_int t i =
  let b = Bytes.make t.d.md_key_size '\000' in
  let n = min t.d.md_key_size 8 in
  for j = 0 to n - 1 do
    Bytes.set b j (Char.chr ((i lsr (8 * j)) land 0xFF))
  done;
  Bytes.to_string b

let value_to_int v =
  let n = min (String.length v) 8 in
  let acc = ref 0 in
  for j = n - 1 downto 0 do
    acc := (!acc lsl 8) lor Char.code v.[j]
  done;
  !acc

let int_to_value size i =
  let b = Bytes.make size '\000' in
  let n = min size 8 in
  for j = 0 to n - 1 do
    Bytes.set b j (Char.chr ((i lsr (8 * j)) land 0xFF))
  done;
  Bytes.to_string b

let bump t key delta =
  check_key t key;
  let current = match lookup t key with Some v -> value_to_int v | None -> 0 in
  match update t key (int_to_value t.d.md_value_size (current + delta)) with
  | Ok () -> ()
  | Error e -> raise (Map_error (t.d.md_name ^ ": bump: " ^ e))
