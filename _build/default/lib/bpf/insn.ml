open Ds_util

type size = B | H | W | DW

type t =
  | Mov_imm of { dst : int; imm : int }
  | Mov_reg of { dst : int; src : int }
  | Add_imm of { dst : int; imm : int }
  | Ldx of { dst : int; src : int; off : int; size : size }
  | Stx of { dst : int; src : int; off : int; size : size }
  | Jeq_imm of { reg : int; imm : int; target : int }
  | Call of int
  | Kfunc_call of int
  | Exit

exception Bad_insn of string

(* Real opcode bytes: class | size | mode for LDX/STX, class | op | source
   for ALU/JMP. *)
let op_mov_imm = 0xb7
let op_mov_reg = 0xbf
let op_add_imm = 0x07
let op_call = 0x85
let op_exit = 0x95
let op_jeq_imm = 0x15

let ldx_op = function W -> 0x61 | H -> 0x69 | B -> 0x71 | DW -> 0x79
let stx_op = function W -> 0x63 | H -> 0x6b | B -> 0x73 | DW -> 0x7b

let size_of_ldx = function
  | 0x61 -> Some W
  | 0x69 -> Some H
  | 0x71 -> Some B
  | 0x79 -> Some DW
  | _ -> None

let size_of_stx = function
  | 0x63 -> Some W
  | 0x6b -> Some H
  | 0x73 -> Some B
  | 0x7b -> Some DW
  | _ -> None

let encode insns =
  let w = Bytesio.Writer.create () in
  let emit op ~dst ~src ~off ~imm =
    Bytesio.Writer.u8 w op;
    Bytesio.Writer.u8 w ((src lsl 4) lor (dst land 0xF));
    Bytesio.Writer.u16 w (off land 0xFFFF);
    Bytesio.Writer.u32 w (imm land 0xFFFFFFFF)
  in
  List.iter
    (fun i ->
      match i with
      | Mov_imm { dst; imm } -> emit op_mov_imm ~dst ~src:0 ~off:0 ~imm
      | Mov_reg { dst; src } -> emit op_mov_reg ~dst ~src ~off:0 ~imm:0
      | Add_imm { dst; imm } -> emit op_add_imm ~dst ~src:0 ~off:0 ~imm
      | Ldx { dst; src; off; size } -> emit (ldx_op size) ~dst ~src ~off ~imm:0
      | Stx { dst; src; off; size } -> emit (stx_op size) ~dst ~src ~off ~imm:0
      | Jeq_imm { reg; imm; target } -> emit op_jeq_imm ~dst:reg ~src:0 ~off:target ~imm
      | Call helper -> emit op_call ~dst:0 ~src:0 ~off:0 ~imm:helper
      | Kfunc_call idx -> emit op_call ~dst:0 ~src:2 (* BPF_PSEUDO_KFUNC_CALL *) ~off:0 ~imm:idx
      | Exit -> emit op_exit ~dst:0 ~src:0 ~off:0 ~imm:0)
    insns;
  Bytesio.Writer.contents w

let sign16 v = if v land 0x8000 <> 0 then v - 0x10000 else v
let sign32 v = if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let decode data =
  if String.length data mod 8 <> 0 then raise (Bad_insn "instruction stream not 8-aligned");
  let r = Bytesio.Reader.of_string data in
  let rec go acc =
    if Bytesio.Reader.eof r then List.rev acc
    else begin
      let op = Bytesio.Reader.u8 r in
      let regs = Bytesio.Reader.u8 r in
      let dst = regs land 0xF and src = regs lsr 4 in
      let off = sign16 (Bytesio.Reader.u16 r) in
      let imm = sign32 (Bytesio.Reader.u32 r) in
      let insn =
        if op = op_mov_imm then Mov_imm { dst; imm }
        else if op = op_mov_reg then Mov_reg { dst; src }
        else if op = op_add_imm then Add_imm { dst; imm }
        else if op = op_call then (if src = 2 then Kfunc_call imm else Call imm)
        else if op = op_exit then Exit
        else if op = op_jeq_imm then Jeq_imm { reg = dst; imm; target = off }
        else
          match size_of_ldx op with
          | Some size -> Ldx { dst; src; off; size }
          | None -> (
              match size_of_stx op with
              | Some size -> Stx { dst; src; off; size }
              | None -> raise (Bad_insn (Printf.sprintf "unknown opcode 0x%02x" op)))
      in
      go (insn :: acc)
    end
  in
  go []

let helper_map_lookup_elem = 1
let helper_probe_read = 4
let helper_ktime_get_ns = 5
let helper_trace_printk = 6
let helper_get_current_pid_tgid = 14
let helper_get_current_comm = 16
let helper_perf_event_output = 25
let helper_probe_read_str = 45

let helper_table =
  [
    (helper_map_lookup_elem, "bpf_map_lookup_elem");
    (helper_probe_read, "bpf_probe_read");
    (helper_ktime_get_ns, "bpf_ktime_get_ns");
    (helper_trace_printk, "bpf_trace_printk");
    (helper_get_current_pid_tgid, "bpf_get_current_pid_tgid");
    (helper_get_current_comm, "bpf_get_current_comm");
    (helper_perf_event_output, "bpf_perf_event_output");
    (helper_probe_read_str, "bpf_probe_read_str");
  ]

let helper_known id = List.mem_assoc id helper_table
let helper_name id = List.assoc_opt id helper_table
