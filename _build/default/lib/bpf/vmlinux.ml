open Ds_elf
open Ds_ksrc

type tracepoint = {
  vtp_event : string;
  vtp_class : string;
  vtp_func : string option;
  vtp_fmt : string;
}

type t = {
  v_img : Elf.t;
  v_version : Version.t;
  v_flavor : Config.flavor;
  v_gcc : int * int;
  v_arch : Config.arch;
  v_btf : Ds_btf.Btf.t;
  v_tracepoints : tracepoint list;
  v_syscalls : string list;
}

exception Bad_vmlinux of string

let arch_of_machine = function
  | Elf.X86_64 -> Config.X86
  | Elf.Aarch64 -> Config.Arm64
  | Elf.Arm -> Config.Arm32
  | Elf.Ppc64 -> Config.Ppc
  | Elf.Riscv64 -> Config.Riscv
  | Elf.Bpf -> raise (Bad_vmlinux "BPF object is not a kernel image")

(* "Linux version 5.4.0-generic (...) (gcc version 9.2.0 (Ubuntu)) ..." *)
let parse_banner s =
  let fail () = raise (Bad_vmlinux ("unparsable banner: " ^ s)) in
  let version, flavor =
    try
      Scanf.sscanf s "Linux version %d.%d.%d-%s@ " (fun major minor _patch rest ->
          (Version.v major minor, rest))
    with Scanf.Scan_failure _ | End_of_file -> fail ()
  in
  let flavor =
    match
      List.find_opt (fun f -> Config.flavor_to_string f = flavor) Config.flavors
    with
    | Some f -> f
    | None -> fail ()
  in
  let gcc =
    let marker = "gcc version " in
    let rec find i =
      if i + String.length marker > String.length s then fail ()
      else if String.sub s i (String.length marker) = marker then i + String.length marker
      else find (i + 1)
    in
    let at = find 0 in
    try
      Scanf.sscanf
        (String.sub s at (String.length s - at))
        "%d.%d" (fun a b -> (a, b))
    with Scanf.Scan_failure _ | End_of_file -> fail ()
  in
  (version, flavor, gcc)

let required_symbol img name =
  match Elf.find_symbol img name with
  | Some s -> s
  | None -> raise (Bad_vmlinux ("missing symbol " ^ name))

(* strip the per-arch syscall stub prefix *)
let strip_syscall_prefix arch sym =
  let prefixes =
    match arch with
    | Config.X86 -> [ "__x64_sys_" ]
    | Config.Arm64 -> [ "__arm64_sys_" ]
    | Config.Arm32 | Config.Ppc -> [ "sys_" ]
    | Config.Riscv -> [ "__riscv_sys_" ]
  in
  match
    List.find_map
      (fun p ->
        if String.starts_with ~prefix:p sym then
          Some (String.sub sym (String.length p) (String.length sym - String.length p))
        else None)
      prefixes
  with
  | Some n -> n
  | None -> sym

let load img =
  let deref = Elf.Deref.make img in
  let banner_sym = required_symbol img "linux_banner" in
  let v_version, v_flavor, v_gcc =
    parse_banner (Elf.Deref.read_cstring deref banner_sym.Elf.sym_value)
  in
  let v_arch = arch_of_machine img.Elf.machine in
  let btf_data =
    match Elf.find_section img ".BTF" with
    | Some s -> s.Elf.sec_data
    | None -> raise (Bad_vmlinux "missing .BTF section")
  in
  let v_btf =
    try Ds_btf.Btf.decode btf_data
    with Ds_btf.Btf.Bad_btf m -> raise (Bad_vmlinux (".BTF: " ^ m))
  in
  let ptr = Elf.Deref.ptr_size deref in
  (* ftrace events: pointer array between the two markers; each slot
     points at a trace_event_call-like record of four pointers. *)
  let start = (required_symbol img "__start_ftrace_events").Elf.sym_value in
  let stop = (required_symbol img "__stop_ftrace_events").Elf.sym_value in
  let n_events = Int64.to_int (Int64.sub stop start) / ptr in
  let v_tracepoints =
    List.init n_events (fun i ->
        let slot = Int64.add start (Int64.of_int (i * ptr)) in
        let record = Elf.Deref.read_ptr deref slot in
        let field k = Elf.Deref.read_ptr deref (Int64.add record (Int64.of_int (k * ptr))) in
        let vtp_event = Elf.Deref.read_cstring deref (field 0) in
        let vtp_class = Elf.Deref.read_cstring deref (field 1) in
        let func_addr = field 2 in
        let vtp_func =
          match Elf.symbols_at img func_addr with
          | s :: _ -> Some s.Elf.sym_name
          | [] -> None
        in
        let vtp_fmt = Elf.Deref.read_cstring deref (field 3) in
        { vtp_event; vtp_class; vtp_func; vtp_fmt })
  in
  (* syscall table *)
  let table = required_symbol img "sys_call_table" in
  let n_sys = table.Elf.sym_size / ptr in
  let v_syscalls =
    List.init n_sys (fun i ->
        let slot = Int64.add table.Elf.sym_value (Int64.of_int (i * ptr)) in
        let addr = Elf.Deref.read_ptr deref slot in
        match Elf.symbols_at img addr with
        | s :: _ -> strip_syscall_prefix v_arch s.Elf.sym_name
        | [] -> raise (Bad_vmlinux (Printf.sprintf "sys_call_table slot %d unresolvable" i)))
  in
  { v_img = img; v_version; v_flavor; v_gcc; v_arch; v_btf; v_tracepoints; v_syscalls }

let symbols_named t name =
  List.filter (fun s -> s.Elf.sym_name = name) t.v_img.Elf.symbols

let suffixed_symbols t name =
  let prefix = name ^ "." in
  List.filter (fun s -> String.starts_with ~prefix s.Elf.sym_name) t.v_img.Elf.symbols

let has_tracepoint t name = List.exists (fun tp -> tp.vtp_event = name) t.v_tracepoints
let find_tracepoint t name = List.find_opt (fun tp -> tp.vtp_event = name) t.v_tracepoints
let has_syscall t name = List.mem name t.v_syscalls

let tag t =
  Printf.sprintf "%s/%s/%s"
    (Version.to_string t.v_version)
    (Config.arch_to_string t.v_arch)
    (Config.flavor_to_string t.v_flavor)
