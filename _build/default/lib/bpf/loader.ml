module Btf = Ds_btf.Btf
open Ds_ksrc

type error =
  | Verifier_error of { prog : string; insn : int; msg : string }
  | Relocation_error of { prog : string; type_name : string; path : string list; msg : string }
  | Attachment_error of { prog : string; hook : Hook.t; reason : string }

let error_to_string = function
  | Verifier_error { prog; insn; msg } ->
      Printf.sprintf "%s: verifier: insn %d: %s" prog insn msg
  | Relocation_error { prog; type_name; path; msg } ->
      Printf.sprintf "%s: relocation: %s::%s: %s" prog type_name (String.concat "." path) msg
  | Attachment_error { prog; hook; reason } ->
      Printf.sprintf "%s: attach %s: %s" prog (Hook.to_string hook) reason

type attachment = {
  at_prog : string;
  at_hook : Hook.t;
  at_insns : Insn.t list;
  at_addrs : int64 list;
  at_field_offsets : (string * string list * int) list;
}

let rec skip_mods btf id =
  match Btf.get btf id with
  | Btf.Ptr i | Btf.Const i | Btf.Volatile i | Btf.Restrict i -> skip_mods btf i
  | Btf.Typedef { typ; _ } -> skip_mods btf typ
  | k -> k

let resolve_field btf ~struct_name ~path =
  let rec walk kind path =
    match path with
    | [] -> Error "empty access path"
    | [ last ] -> (
        match kind with
        | Btf.Struct { members; _ } | Btf.Union { members; _ } -> (
            match List.find_opt (fun m -> m.Btf.m_name = last) members with
            | Some m -> Ok (m.Btf.m_offset_bits / 8)
            | None -> Error (Printf.sprintf "no field %s" last))
        | _ -> Error "not an aggregate")
    | first :: rest -> (
        match kind with
        | Btf.Struct { members; _ } | Btf.Union { members; _ } -> (
            match List.find_opt (fun m -> m.Btf.m_name = first) members with
            | Some m -> walk (skip_mods btf m.Btf.m_type) rest
            | None -> Error (Printf.sprintf "no field %s" first))
        | _ -> Error "not an aggregate")
  in
  match Btf.find_struct btf struct_name with
  | None -> Error (Printf.sprintf "no struct %s in target BTF" struct_name)
  | Some (_, kind) -> walk kind path

let field_exists btf ~struct_name ~path =
  match resolve_field btf ~struct_name ~path with Ok _ -> true | Error _ -> false

let patch_insn prog_name insns idx value =
  let patched = ref false in
  let out =
    List.mapi
      (fun i insn ->
        if i <> idx then insn
        else begin
          patched := true;
          match insn with
          | Insn.Ldx l -> Insn.Ldx { l with off = value }
          | Insn.Stx s -> Insn.Stx { s with off = value }
          | Insn.Add_imm a -> Insn.Add_imm { a with imm = value }
          | Insn.Mov_imm m -> Insn.Mov_imm { m with imm = value }
          | Insn.Mov_reg _ | Insn.Jeq_imm _ | Insn.Call _ | Insn.Kfunc_call _ | Insn.Exit ->
              raise
                (Invalid_argument
                   (Printf.sprintf "%s: CO-RE reloc targets unpatchable insn %d" prog_name i))
        end)
      insns
  in
  if not !patched then
    raise (Invalid_argument (Printf.sprintf "%s: CO-RE reloc beyond program end" prog_name));
  out

let relocate kernel obj (prog : Obj.prog) =
  let target = kernel.Vmlinux.v_btf in
  let rec go insns offsets = function
    | [] -> Ok (insns, List.rev offsets)
    | (r : Obj.core_reloc) :: rest -> (
        match Obj.access_path obj r.Obj.cr_type_id r.Obj.cr_access with
        | None ->
            Error
              (Relocation_error
                 {
                   prog = prog.Obj.p_name;
                   type_name = Printf.sprintf "<type %d>" r.Obj.cr_type_id;
                   path = [];
                   msg = "invalid access string against program BTF";
                 })
        | Some (struct_name, path) -> (
            match r.Obj.cr_kind with
            | Obj.Field_exists ->
                let v = if field_exists target ~struct_name ~path then 1 else 0 in
                go (patch_insn prog.Obj.p_name insns r.Obj.cr_insn v) offsets rest
            | Obj.Field_byte_offset -> (
                match resolve_field target ~struct_name ~path with
                | Ok off ->
                    go
                      (patch_insn prog.Obj.p_name insns r.Obj.cr_insn off)
                      ((struct_name, path, off) :: offsets)
                      rest
                | Error msg ->
                    Error
                      (Relocation_error
                         { prog = prog.Obj.p_name; type_name = struct_name; path; msg }))))
  in
  go prog.Obj.p_insns [] prog.Obj.p_relocs

(* Symbol lookup policy for function hooks; see paper §6 (b022f0c). *)
let resolve_function kernel prog hook name =
  let text_syms =
    List.filter
      (fun s -> s.Ds_elf.Elf.sym_section = ".text")
      (Vmlinux.symbols_named kernel name)
  in
  match text_syms with
  | [] ->
      let reason =
        if Vmlinux.suffixed_symbols kernel name <> [] then
          "no symbol (transformed by compiler; suffixed variants exist)"
        else "no symbol (absent or fully inlined)"
      in
      Error (Attachment_error { prog; hook; reason })
  | [ s ] -> Ok [ s.Ds_elf.Elf.sym_value ]
  | many ->
      if Version.compare kernel.Vmlinux.v_version (Version.v 6 6) >= 0 then
        Error
          (Attachment_error
             { prog; hook; reason = Printf.sprintf "%d symbols with this name" (List.length many) })
      else
        (* pre-6.6: silently attach to the first copy only *)
        Ok [ (List.hd many).Ds_elf.Elf.sym_value ]

let attach kernel (prog : Obj.prog) =
  let name = prog.Obj.p_name in
  match Hook.of_section prog.Obj.p_section with
  | None ->
      Error
        (Attachment_error
           {
             prog = name;
             hook = Hook.Kprobe "?";
             reason = "unrecognized section " ^ prog.Obj.p_section;
           })
  | Some hook -> (
      match Hook.target_function hook with
      | Some fn -> (
          match resolve_function kernel name hook fn with
          | Ok addrs -> Ok (hook, addrs)
          | Error e -> Error e)
      | None -> (
          match Hook.target_tracepoint hook with
          | Some tp ->
              if Vmlinux.has_tracepoint kernel tp then Ok (hook, [])
              else Error (Attachment_error { prog = name; hook; reason = "no such tracepoint" })
          | None -> (
              match Hook.target_syscall hook with
              | Some sc ->
                  if Vmlinux.has_syscall kernel sc then Ok (hook, [])
                  else
                    Error
                      (Attachment_error
                         { prog = name; hook; reason = "syscall unavailable on this kernel" })
              | None -> Ok (hook, []))))

(* kfunc resolution: every Kfunc_call's name must exist in the target
   kernel's BTF — the verifier's kfunc registry check (paper §4.1). *)
let resolve_kfuncs kernel (prog : Obj.prog) =
  let rec check i = function
    | [] -> Ok ()
    | Insn.Kfunc_call idx :: rest -> (
        match List.nth_opt prog.Obj.p_kfuncs idx with
        | None ->
            Error
              (Verifier_error
                 { prog = prog.Obj.p_name; insn = i; msg = "kfunc index out of range" })
        | Some name ->
            if Btf.find_func kernel.Vmlinux.v_btf name <> None then check (i + 1) rest
            else
              Error
                (Verifier_error
                   {
                     prog = prog.Obj.p_name;
                     insn = i;
                     msg = Printf.sprintf "calling kernel function %s is not allowed" name;
                   }))
    | _ :: rest -> check (i + 1) rest
  in
  check 0 prog.Obj.p_insns

let load_prog kernel obj (prog : Obj.prog) =
  match Verifier.verify prog.Obj.p_insns with
  | Error { Verifier.ve_insn; ve_msg } ->
      Error (Verifier_error { prog = prog.Obj.p_name; insn = ve_insn; msg = ve_msg })
  | Ok () -> (
      match resolve_kfuncs kernel prog with
      | Error e -> Error e
      | Ok () -> (
      match relocate kernel obj prog with
      | Error e -> Error e
      | Ok (insns, offsets) -> (
          match attach kernel prog with
          | Error e -> Error e
          | Ok (hook, addrs) ->
              Ok
                {
                  at_prog = prog.Obj.p_name;
                  at_hook = hook;
                  at_insns = insns;
                  at_addrs = addrs;
                  at_field_offsets = offsets;
                })))

let instantiate_maps obj =
  List.map (fun (d : Maps.def) -> (d.Maps.md_name, Maps.create d)) obj.Obj.o_maps

let load_and_attach kernel obj =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match load_prog kernel obj p with
        | Ok a -> go (a :: acc) rest
        | Error e -> Error e)
  in
  go [] obj.Obj.o_progs
