lib/dwarf/die.ml: Array Bytesio Ds_util Hashtbl List Printf String
