lib/dwarf/info.mli: Ctype Decl Ds_ctypes
