lib/dwarf/info.ml: Builder Ctype Decl Die Ds_ctypes Dw Hashtbl List Option Printf
