lib/dwarf/die.mli:
