(** Small numeric helpers shared by the diff summaries and the bench
    harness. *)

val percent : int -> int -> float
(** [percent part whole] is [100 * part / whole], or [0.] when [whole = 0]. *)

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val ratio_scaled : int -> float -> int
(** [ratio_scaled n rate] is [round (n * rate)], clamped to [>= 0]. Used to
    turn calibrated rates into integer counts. *)
