lib/util/bytesio.mli:
