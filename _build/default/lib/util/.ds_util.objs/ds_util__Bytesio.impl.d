lib/util/bytesio.ml: Buffer Char Int32 Int64 Printf String
