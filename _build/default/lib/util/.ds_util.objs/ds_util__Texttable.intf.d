lib/util/texttable.mli:
