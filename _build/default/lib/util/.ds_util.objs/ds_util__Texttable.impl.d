lib/util/texttable.ml: Array Buffer Float List Printf String
