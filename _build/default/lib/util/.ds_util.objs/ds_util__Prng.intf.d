lib/util/prng.mli:
