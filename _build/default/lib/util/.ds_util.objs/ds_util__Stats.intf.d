lib/util/stats.mli:
