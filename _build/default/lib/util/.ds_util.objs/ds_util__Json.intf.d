lib/util/json.mli:
