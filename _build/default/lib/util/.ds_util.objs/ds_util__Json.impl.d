lib/util/json.ml: Buffer Char List Printf String
