(** Aligned plain-text tables for the benchmark harness.

    The bench binary regenerates every table of the paper as text; this
    module handles column sizing, alignment and optional proportional bars
    (the paper renders in-cell bars in Tables 3 and 5). *)

type align = L | R

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title headers] starts a table with the given column headers. *)

val row : t -> string list -> unit
(** Append a row; must have as many cells as there are headers. *)

val sep : t -> unit
(** Append a horizontal separator row. *)

val render : t -> string

val bar : float -> max:float -> string
(** [bar v ~max] is a small proportional bar (up to 8 cells) used to mimic
    the paper's in-table bars. Empty when [max <= 0.]. *)

val pct : float -> string
(** Format a percentage the way the paper does: ["0.3"] below 1, integers
    above (["24"]), ["-"] for exact zero. *)

val count : int -> string
(** Format counts in the paper's compact style: 36k, 6.2k, 502. *)
