let percent part whole =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let ratio_scaled n rate =
  let v = int_of_float (Float.round (float_of_int n *. rate)) in
  if v < 0 then 0 else v
