(** A small JSON library (values, printer, parser) for the dataset-export
    format of the paper's artifact appendix. No external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?indent:int -> t -> string
(** Pretty-print; [indent] spaces per level (default 2). *)

val of_string : string -> t
(** Parse. Raises {!Parse_error} on malformed input. Numbers without [.],
    [e] or [E] parse as [Int]. *)

val member : string -> t -> t option
(** Object field lookup. *)

val to_int : t -> int
val to_str : t -> string
(** Raise [Parse_error] when the value has the wrong shape. *)
