(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic decision in the synthetic kernel model flows through a
    [Prng.t] so that a given seed reproduces the exact same image matrix,
    byte for byte. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator. Generators are mutable. *)

val of_string : string -> t
(** [of_string label] seeds a generator from the FNV-1a hash of [label]. *)

val split : t -> string -> t
(** [split t label] derives an independent child generator. The child
    depends only on [t]'s seed and [label], not on how much of [t] has been
    consumed, so unrelated subsystems cannot perturb each other. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements of [xs],
    preserving their original relative order. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val binomial : t -> int -> float -> int
(** [binomial t n p] counts successes among [n] Bernoulli([p]) trials.
    Used to turn a calibrated rate into an integer count that still has
    realistic run-to-run texture across seeds. *)
