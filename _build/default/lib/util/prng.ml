type t = { seed : int64; mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { seed; state = seed }

let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let of_string label = create (fnv1a label)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(* Children derive from the original seed, not the consumed state, so a
   subsystem's stream is immune to how much its siblings have drawn. *)
let split t label = create (mix64 (Int64.logxor t.seed (fnv1a label)))

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t p = float t 1.0 < p
let pick t arr = arr.(int t (Array.length arr))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick_list: empty"
  | _ -> List.nth xs (int t (List.length xs))

(* Mark k distinct indices, then filter: preserves input order. *)
let sample t k xs =
  let n = List.length xs in
  let k = min k n in
  if k = n then xs
  else begin
    let chosen = Array.make n false in
    let remaining = ref k in
    while !remaining > 0 do
      let i = int t n in
      if not chosen.(i) then begin
        chosen.(i) <- true;
        decr remaining
      end
    done;
    List.filteri (fun i _ -> chosen.(i)) xs
  end

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let binomial t n p =
  (* Exact counting is fine at our scales (n is at most a few thousand). *)
  let count = ref 0 in
  for _ = 1 to n do
    if bool t p then incr count
  done;
  !count
