type align = L | R

type line = Row of string list | Sep

type t = {
  title : string option;
  headers : (string * align) list;
  mutable lines : line list; (* reversed *)
}

let create ?title headers = { title; headers; lines = [] }

let row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Texttable.row: arity mismatch";
  t.lines <- Row cells :: t.lines

let sep t = t.lines <- Sep :: t.lines

let render t =
  let lines = List.rev t.lines in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure (List.map fst t.headers);
  List.iter (function Row cells -> measure cells | Sep -> ()) lines;
  let buf = Buffer.create 1024 in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with L -> s ^ fill | R -> fill ^ s
  in
  let emit_row cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        let _, align = List.nth t.headers i in
        Buffer.add_string buf (pad align widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  let emit_sep () =
    Buffer.add_string buf (String.make total_width '-');
    Buffer.add_char buf '\n'
  in
  emit_row (List.map fst t.headers);
  emit_sep ();
  List.iter (function Row cells -> emit_row cells | Sep -> emit_sep ()) lines;
  Buffer.contents buf

let bar v ~max =
  if max <= 0. || v <= 0. then ""
  else begin
    let cells = 8 in
    let n = int_of_float (Float.round (v /. max *. float_of_int cells)) in
    let n = if n < 1 then 1 else if n > cells then cells else n in
    String.make n '#'
  end

let pct v =
  if v = 0. then "-"
  else if Float.abs v < 1. then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.0f" v

let count n =
  if n >= 10_000 then Printf.sprintf "%dk" (int_of_float (Float.round (float_of_int n /. 1000.)))
  else if n >= 1_000 then Printf.sprintf "%.1fk" (float_of_int n /. 1000.)
  else string_of_int n
