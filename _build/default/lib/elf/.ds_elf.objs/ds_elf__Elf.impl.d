lib/elf/elf.ml: Array Buffer Bytesio Ds_util Int64 List Option Printf String
