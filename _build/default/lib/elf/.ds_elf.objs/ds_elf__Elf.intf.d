lib/elf/elf.mli: Ds_util
