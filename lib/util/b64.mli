(** RFC 4648 base64 (standard alphabet, padded) — used by the API's
    mutation envelope to carry binary bodies (BPF objects, kernel
    images) inside JSON. Hand-rolled: the serve tier takes no
    dependencies beyond the stdlib. *)

val encode : string -> string

val decode : string -> string option
(** [None] on characters outside the alphabet, bad padding, or a length
    that is not a multiple of 4. Embedded whitespace is rejected too:
    envelope producers are expected to emit canonical unwrapped
    base64. *)
