type severity = Warning | Degraded | Fatal

let severity_to_string = function
  | Warning -> "warning"
  | Degraded -> "degraded"
  | Fatal -> "fatal"

let severity_rank = function Warning -> 0 | Degraded -> 1 | Fatal -> 2
let severity_compare a b = compare (severity_rank a) (severity_rank b)

type t = {
  d_severity : severity;
  d_component : string;
  d_context : string option;
  d_offset : int option;
  d_message : string;
}

let v ?context ?offset severity ~component message =
  {
    d_severity = severity;
    d_component = component;
    d_context = context;
    d_offset = offset;
    d_message = message;
  }

let to_string d =
  let off = match d.d_offset with None -> "" | Some o -> Printf.sprintf "@%d" o in
  let ctx = match d.d_context with None -> "" | Some c -> Printf.sprintf " (%s)" c in
  Printf.sprintf "%-8s %s%s%s: %s" (severity_to_string d.d_severity) d.d_component off ctx
    d.d_message

let demote d = match d.d_severity with Fatal -> { d with d_severity = Degraded } | _ -> d

let worst = function
  | [] -> None
  | ds ->
      Some
        (List.fold_left
           (fun acc d -> if severity_compare d.d_severity acc > 0 then d.d_severity else acc)
           Warning ds)

let is_degraded ds =
  match worst ds with Some (Degraded | Fatal) -> true | Some Warning | None -> false

let exit_code ds =
  match worst ds with Some Fatal -> 1 | Some Degraded -> 2 | Some Warning | None -> 0

type mode = [ `Strict | `Lenient ]

type 'a outcome = { ok : 'a; diags : t list }

let outcome ?(diags = []) ok = { ok; diags }
let ok o = o.ok
let diags o = o.diags

module Collector = struct
  type diag = t

  type t = {
    mutex : Mutex.t;
    limit : int;
    mutable rev : diag list;  (** retained, newest first *)
    mutable kept : int;
    mutable total : int;
  }

  let create ?(limit = 128) () = { mutex = Mutex.create (); limit; rev = []; kept = 0; total = 0 }

  let emit t d =
    Mutex.lock t.mutex;
    t.total <- t.total + 1;
    if t.kept < t.limit then begin
      t.rev <- d :: t.rev;
      t.kept <- t.kept + 1
    end;
    Mutex.unlock t.mutex

  let count t =
    Mutex.lock t.mutex;
    let n = t.total in
    Mutex.unlock t.mutex;
    n

  let diags t =
    Mutex.lock t.mutex;
    let kept = List.rev t.rev in
    let dropped = t.total - t.kept in
    Mutex.unlock t.mutex;
    if dropped = 0 then kept
    else
      kept
      @ [
          v Warning ~component:"diag"
            (Printf.sprintf "%d further diagnostics suppressed" dropped);
        ]
end
