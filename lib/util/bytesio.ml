type endian = Little | Big

exception Truncated of string

module Slice = struct
  type t = { data : string; off : int; len : int }

  let of_string data = { data; off = 0; len = String.length data }

  let make data ~pos ~len =
    if pos < 0 || len < 0 || pos > String.length data - len then
      invalid_arg "Bytesio.Slice.make";
    { data; off = pos; len }

  let length t = t.len
  let is_empty t = t.len = 0

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Bytesio.Slice.get";
    String.unsafe_get t.data (t.off + i)

  let sub t ~pos ~len =
    if pos < 0 || len < 0 || pos > t.len - len then invalid_arg "Bytesio.Slice.sub";
    { data = t.data; off = t.off + pos; len }

  let to_string t = String.sub t.data t.off t.len

  let index_opt t c =
    match String.index_from_opt t.data t.off c with
    | Some i when i < t.off + t.len -> Some (i - t.off)
    | _ -> None

  let is_ws c = c = ' ' || c = '\t' || c = '\r' || c = '\n'

  let trim t =
    let lo = ref 0 and hi = ref t.len in
    while !lo < !hi && is_ws (String.unsafe_get t.data (t.off + !lo)) do incr lo done;
    while !hi > !lo && is_ws (String.unsafe_get t.data (t.off + !hi - 1)) do decr hi done;
    { t with off = t.off + !lo; len = !hi - !lo }

  let lowercase_string t =
    String.init t.len (fun i -> Char.lowercase_ascii (String.unsafe_get t.data (t.off + i)))

  let equal_string t s =
    t.len = String.length s
    &&
    let rec go i =
      i >= t.len
      || (String.unsafe_get t.data (t.off + i) = String.unsafe_get s i && go (i + 1))
    in
    go 0

  let equal_caseless_string t s =
    t.len = String.length s
    &&
    let rec go i =
      i >= t.len
      || Char.lowercase_ascii (String.unsafe_get t.data (t.off + i))
         = Char.lowercase_ascii (String.unsafe_get s i)
         && go (i + 1)
    in
    go 0
end

module Writer = struct
  type t = { buf : Buffer.t; endian : endian }

  let create ?(endian = Little) () = { buf = Buffer.create 1024; endian }
  let endian t = t.endian
  let pos t = Buffer.length t.buf
  let u8 t v = Buffer.add_char t.buf (Char.chr (v land 0xFF))

  let u16 t v =
    match t.endian with
    | Little -> Buffer.add_uint16_le t.buf (v land 0xFFFF)
    | Big -> Buffer.add_uint16_be t.buf (v land 0xFFFF)

  let u32 t v =
    let v32 = Int32.of_int (v land 0xFFFFFFFF) in
    match t.endian with
    | Little -> Buffer.add_int32_le t.buf v32
    | Big -> Buffer.add_int32_be t.buf v32

  let u64 t v =
    match t.endian with
    | Little -> Buffer.add_int64_le t.buf v
    | Big -> Buffer.add_int64_be t.buf v

  let uint t v = u64 t (Int64.of_int v)

  let uleb128 t v =
    assert (v >= 0);
    let rec go v =
      let byte = v land 0x7F in
      let rest = v lsr 7 in
      if rest = 0 then u8 t byte
      else begin
        u8 t (byte lor 0x80);
        go rest
      end
    in
    go v

  let sleb128 t v =
    let rec go v =
      let byte = v land 0x7F in
      let rest = v asr 7 in
      let done_ = (rest = 0 && byte land 0x40 = 0) || (rest = -1 && byte land 0x40 <> 0) in
      if done_ then u8 t byte
      else begin
        u8 t (byte lor 0x80);
        go rest
      end
    in
    go v

  let bytes t s = Buffer.add_string t.buf s

  let cstring t s =
    assert (not (String.contains s '\000'));
    Buffer.add_string t.buf s;
    Buffer.add_char t.buf '\000'

  let align t n =
    while Buffer.length t.buf mod n <> 0 do
      Buffer.add_char t.buf '\000'
    done

  let contents t = Buffer.contents t.buf
end

module Reader = struct
  type t = { data : string; base : int; len : int; endian : endian; mutable off : int }

  let of_string ?(endian = Little) data =
    { data; base = 0; len = String.length data; endian; off = 0 }

  let sub t ~pos ~len =
    if pos < 0 || len < 0 || pos + len > t.len then raise (Truncated "sub");
    { data = t.data; base = t.base + pos; len; endian = t.endian; off = 0 }

  let endian t = t.endian
  let pos t = t.off
  let length t = t.len
  let eof t = t.off >= t.len

  let seek t p =
    if p < 0 || p > t.len then raise (Truncated "seek");
    t.off <- p

  let need t n = if t.off + n > t.len then raise (Truncated (Printf.sprintf "need %d at %d/%d" n t.off t.len))

  let u8 t =
    need t 1;
    let v = Char.code t.data.[t.base + t.off] in
    t.off <- t.off + 1;
    v

  let u16 t =
    need t 2;
    let v =
      match t.endian with
      | Little -> String.get_uint16_le t.data (t.base + t.off)
      | Big -> String.get_uint16_be t.data (t.base + t.off)
    in
    t.off <- t.off + 2;
    v

  let u32 t =
    need t 4;
    let v32 =
      match t.endian with
      | Little -> String.get_int32_le t.data (t.base + t.off)
      | Big -> String.get_int32_be t.data (t.base + t.off)
    in
    t.off <- t.off + 4;
    Int32.to_int v32 land 0xFFFFFFFF

  let u64 t =
    need t 8;
    let v =
      match t.endian with
      | Little -> String.get_int64_le t.data (t.base + t.off)
      | Big -> String.get_int64_be t.data (t.base + t.off)
    in
    t.off <- t.off + 8;
    v

  let uint t =
    let v = u64 t in
    if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
      raise (Truncated "uint out of range");
    Int64.to_int v

  let uleb128 t =
    let rec go shift acc =
      let b = u8 t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0

  let sleb128 t =
    let rec go shift acc =
      let b = u8 t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      let shift = shift + 7 in
      if b land 0x80 <> 0 then go shift acc
      else if b land 0x40 <> 0 && shift < 63 then acc lor (-1 lsl shift)
      else acc
    in
    go 0 0

  let bytes t n =
    need t n;
    let s = String.sub t.data (t.base + t.off) n in
    t.off <- t.off + n;
    s

  (* non-copying variant of [bytes]: a view into the backing string.
     The slice pins the whole backing buffer alive — convert with
     [Slice.to_string] before retaining it in a long-lived structure. *)
  let slice t n =
    need t n;
    let s = Slice.make t.data ~pos:(t.base + t.off) ~len:n in
    t.off <- t.off + n;
    s

  (* positional magic-bytes check: no allocation, unlike reading via
     [bytes] and comparing the copy *)
  let expect t s =
    let n = String.length s in
    need t n;
    let rec eq i =
      i >= n
      || (String.unsafe_get t.data (t.base + t.off + i) = String.unsafe_get s i
          && eq (i + 1))
    in
    let ok = eq 0 in
    if ok then t.off <- t.off + n;
    ok

  let cstring t =
    let start = t.off in
    let rec find i = if i >= t.len then raise (Truncated "cstring") else if t.data.[t.base + i] = '\000' then i else find (i + 1) in
    let stop = find start in
    t.off <- stop + 1;
    String.sub t.data (t.base + start) (stop - start)

  let cstring_at t p =
    let saved = t.off in
    seek t p;
    let s = cstring t in
    t.off <- saved;
    s
end
