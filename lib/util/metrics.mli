(** Domain-safe operational metrics for the query server (and any other
    long-running component): named monotonic counters plus per-label
    latency histograms backed by {!Stats.Reservoir}, so p50/p95/p99 stay
    O(capacity) in memory under unbounded request streams.

    One mutex guards the registry; counter bumps and latency records are
    a few instructions under the lock, so worker domains of a
    {!Par.pool} can share a single [t]. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a named counter (created at zero on first use). *)

val counter : t -> string -> int
(** Current value; [0] for a counter never bumped. *)

val counters : t -> (string * int) list
(** Every counter, sorted by name. *)

val record : t -> string -> float -> unit
(** [record t label seconds]: add one latency observation to [label]'s
    histogram (created on first use). *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, {!record} its wall-clock duration under [label] and
    bump the [label ^ ".count"] counter. The duration is recorded (and
    the exception re-raised) when the thunk fails. *)

type latency = {
  l_count : int;  (** observations recorded *)
  l_mean_ms : float;
  l_p50_ms : float;
  l_p95_ms : float;
  l_p99_ms : float;
  l_max_ms : float;
}

val latency : t -> string -> latency option
(** [None] for a label with no observations. *)

val latencies : t -> (string * latency) list
(** Every histogram, sorted by label. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "latency_ms": {label: {count, mean, p50, p95,
    p99, max}}}] — the [/metrics] document, stable key order. *)
