let cut ~on s =
  match String.index_opt s on with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let prefix_before ~on ~default s =
  match String.index_opt s on with None -> default | Some i -> String.sub s 0 i

let find_sub ?(from = 0) s ~sub =
  let n = String.length s and m = String.length sub in
  if from < 0 then invalid_arg "Strutil.find_sub";
  if m = 0 then if from <= n then Some from else None
  else begin
    let rec at i j =
      j >= m || (String.unsafe_get s (i + j) = String.unsafe_get sub j && at i (j + 1))
    in
    let rec go i = if i > n - m then None else if at i 0 then Some i else go (i + 1) in
    go from
  end
