type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
  f_pool : pool;
}

and task = Task : 'a future * (unit -> 'a) -> task

and pool = {
  p_jobs : int;
  p_mutex : Mutex.t;
  p_pending : Condition.t;
  p_queue : task Queue.t;
  mutable p_down : bool;
  mutable p_workers : unit Domain.t list;
  (* Execution throttle: number of tasks running right now, and the cap
     every claim path respects before picking up new work. On a host
     with fewer cores than [p_jobs], domains crunching simultaneously
     only fight over the cores and the minor-GC stop-the-world
     rendezvous, so the cap is the core count. Claiming (queue pop +
     active increment) is atomic under [p_mutex], so the cap cannot be
     raced past. Two deliberate exemptions keep the pool deadlock-free:
     a domain already running a pool task (nested [await]/[drain_one],
     tracked per-domain by [exec_depth]) always pops — its inline
     execution is the only guaranteed progress — and [shutdown]'s final
     drain always pops. A throttled [await] caller instead waits on
     [p_pending], which every task completion broadcasts. Long-lived
     tasks (e.g. a server accept loop) pin a slot for their lifetime:
     do not mix [map_list] from outside the pool with such a task on a
     1-core host. *)
  mutable p_active : int;
  p_max_active : int;
}

type task_wrap = { ctx_wrap : 'a. (unit -> 'a) -> 'a }

let identity_wrap = { ctx_wrap = (fun f -> f ()) }

(* Capture function, consulted once per [submit] on the submitting
   thread; the resulting wrap runs around the task body on whichever
   worker picks it up. Lets a tracing layer thread its ambient context
   (e.g. the current span id) across the pool handoff without Par
   depending on it. *)
let task_context : (unit -> task_wrap) Atomic.t = Atomic.make (fun () -> identity_wrap)

let set_task_context capture =
  Atomic.set task_context (match capture with None -> fun () -> identity_wrap | Some c -> c)

let default_jobs () =
  match Option.bind (Sys.getenv_opt "DEPSURF_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> Domain.recommended_domain_count ()

let jobs p = p.p_jobs

let finish (Task (fut, f)) =
  let result =
    try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock fut.f_mutex;
  fut.f_state <- result;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_mutex

(* how many pool tasks the current domain is executing right now; > 0
   means we are inside a task body and inline progress trumps the cap *)
let exec_depth : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(* run a task whose slot was already claimed (p_active incremented) *)
let run_claimed p t =
  let depth = Domain.DLS.get exec_depth in
  incr depth;
  Fun.protect
    ~finally:(fun () ->
      decr depth;
      Mutex.lock p.p_mutex;
      p.p_active <- p.p_active - 1;
      (* a slot freed up — and maybe a future completed: wake every
         throttled worker and waiting caller to re-check (signal would
         wake only one and can strand an [await]er) *)
      Condition.broadcast p.p_pending;
      Mutex.unlock p.p_mutex)
    (fun () -> finish t)

(* atomically pop a task and take an execution slot; [force] ignores
   the cap (nested execution, shutdown drain) *)
let claim ?(force = false) p =
  Mutex.lock p.p_mutex;
  let t =
    if force || p.p_active < p.p_max_active then (
      match Queue.take_opt p.p_queue with
      | Some t ->
          p.p_active <- p.p_active + 1;
          Some t
      | None -> None)
    else None
  in
  Mutex.unlock p.p_mutex;
  t

let rec worker p =
  Mutex.lock p.p_mutex;
  while (Queue.is_empty p.p_queue || p.p_active >= p.p_max_active) && not p.p_down do
    Condition.wait p.p_pending p.p_mutex
  done;
  (* when shut down, drain regardless of the cap *)
  let t =
    if p.p_down || p.p_active < p.p_max_active then (
      match Queue.take_opt p.p_queue with
      | Some t ->
          p.p_active <- p.p_active + 1;
          Some t
      | None -> None)
    else None
  in
  let down = p.p_down in
  Mutex.unlock p.p_mutex;
  match t with
  | Some t ->
      run_claimed p t;
      worker p
  | None ->
      (* a helper raced us to the task; keep serving unless shut down *)
      if not down then worker p

let create ?jobs () =
  let n = match jobs with Some n when n >= 1 -> n | Some _ | None -> default_jobs () in
  let p =
    {
      p_jobs = n;
      p_mutex = Mutex.create ();
      p_pending = Condition.create ();
      p_queue = Queue.create ();
      p_down = false;
      p_workers = [];
      p_active = 0;
      p_max_active = max 1 (min n (Domain.recommended_domain_count ()));
    }
  in
  (* The caller counts as one executor (it runs tasks inside [await]),
     so only [p_max_active - 1] worker domains are spawned. In
     particular a 1-core host gets zero workers regardless of [jobs]:
     an idle domain parked in [Condition.wait] still joins every
     stop-the-world minor-GC rendezvous, which alone costs 15-70% on
     allocation-heavy work — the pool must not pay that for domains
     that could never run anyway. *)
  p.p_workers <-
    List.init (p.p_max_active - 1) (fun _ -> Domain.spawn (fun () -> worker p));
  p

let submit p f =
  let fut = { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending; f_pool = p } in
  let wrap = (Atomic.get task_context) () in
  (* the submitter's cooperative deadline travels with the task: a
     request's compute budget keeps applying on whichever worker runs
     the fan-out (see Deadline) *)
  let dl = Deadline.capture () in
  Mutex.lock p.p_mutex;
  if p.p_down then begin
    Mutex.unlock p.p_mutex;
    invalid_arg "Par.submit: pool is shut down"
  end;
  Queue.push
    (Task (fut, fun () -> Deadline.with_ambient dl (fun () -> wrap.ctx_wrap f)))
    p.p_queue;
  Condition.signal p.p_pending;
  Mutex.unlock p.p_mutex;
  fut

let rec await fut =
  Mutex.lock fut.f_mutex;
  let st = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> (
      (* help: run queued tasks instead of blocking, so a 1-domain pool
         makes progress and larger pools keep the caller busy — but
         honour the execution cap unless we are already inside a task
         (where inline progress is the only deadlock-safe choice) *)
      let p = fut.f_pool in
      let nested = !(Domain.DLS.get exec_depth) > 0 in
      match claim ~force:nested p with
      | Some t ->
          run_claimed p t;
          await fut
      | None ->
          let throttled = ref false in
          if not nested then begin
            (* tasks may be queued with the cores saturated: wait for a
               slot (every completion broadcasts p_pending), then retry *)
            Mutex.lock p.p_mutex;
            if p.p_active >= p.p_max_active && not (Queue.is_empty p.p_queue) then begin
              Condition.wait p.p_pending p.p_mutex;
              throttled := true
            end;
            Mutex.unlock p.p_mutex
          end;
          if !throttled then await fut
          else begin
            let pending f = match f.f_state with Pending -> true | _ -> false in
            Mutex.lock fut.f_mutex;
            while pending fut do
              Condition.wait fut.f_cond fut.f_mutex
            done;
            Mutex.unlock fut.f_mutex;
            await fut
          end)

(* inline progress for a domain that must not block (e.g. the serve
   accept loop between selects): always pops, ignoring the cap *)
let drain_one p =
  match claim ~force:true p with
  | Some t ->
      run_claimed p t;
      true
  | None -> false

let map_list p f xs = List.map await (List.map (fun x -> submit p (fun () -> f x)) xs)

(* split [xs] into runs of [chunk] elements, preserving order *)
let chunks_of chunk xs =
  let rec take k acc rest =
    if k = 0 then (List.rev acc, rest)
    else match rest with [] -> (List.rev acc, []) | x :: tl -> take (k - 1) (x :: acc) tl
  in
  let rec go xs = match xs with [] -> [] | _ -> let c, rest = take chunk [] xs in c :: go rest in
  go xs

let map_list_chunked ?chunk p f xs =
  let n = List.length xs in
  let chunk =
    match chunk with
    | Some c when c >= 1 -> c
    | Some _ -> invalid_arg "Par.map_list_chunked: chunk must be >= 1"
    | None -> max 1 (n / (p.p_jobs * 4))
  in
  (* Edge guards: an empty input and a chunk covering the whole list
     would each submit at most one task whose await runs it inline
     anyway — skip the queue entirely so neither touches the pool
     (both work even on a shut-down pool). *)
  if n = 0 then []
  else if chunk >= n then List.map f xs
  else if chunk <= 1 then map_list p f xs
  else
    chunks_of chunk xs
    |> List.map (fun c -> submit p (fun () -> List.map f c))
    |> List.concat_map await

let map_reduce p ~map ~reduce ~init xs =
  List.fold_left reduce init (map_list p map xs)

let shutdown p =
  Mutex.lock p.p_mutex;
  p.p_down <- true;
  Condition.broadcast p.p_pending;
  Mutex.unlock p.p_mutex;
  (* drain whatever the workers leave behind, then join them *)
  let rec drain () =
    match claim ~force:true p with
    | Some t ->
        run_claimed p t;
        drain ()
    | None -> ()
  in
  drain ();
  List.iter Domain.join p.p_workers;
  p.p_workers <- []

let run ?jobs f =
  let p = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

module Memo = struct
  type 'v cell_state =
    | In_progress
    | Ready of 'v
    | Broken of exn * Printexc.raw_backtrace

  type 'v cell = {
    c_mutex : Mutex.t;
    c_cond : Condition.t;
    mutable c_state : 'v cell_state;
  }

  type ('k, 'v) t = { m_mutex : Mutex.t; m_tbl : ('k, 'v cell) Hashtbl.t }

  let create n = { m_mutex = Mutex.create (); m_tbl = Hashtbl.create n }

  let in_progress cell = match cell.c_state with In_progress -> true | _ -> false

  let read cell =
    Mutex.lock cell.c_mutex;
    while in_progress cell do
      Condition.wait cell.c_cond cell.c_mutex
    done;
    let st = cell.c_state in
    Mutex.unlock cell.c_mutex;
    match st with
    | Ready v -> v
    | Broken (e, bt) -> Printexc.raise_with_backtrace e bt
    | In_progress -> assert false

  let fill cell st =
    Mutex.lock cell.c_mutex;
    cell.c_state <- st;
    Condition.broadcast cell.c_cond;
    Mutex.unlock cell.c_mutex

  let find_or_compute t k f =
    Mutex.lock t.m_mutex;
    match Hashtbl.find_opt t.m_tbl k with
    | Some cell ->
        Mutex.unlock t.m_mutex;
        read cell
    | None ->
        (* claim the key, then compute outside the table lock so other
           keys stay computable in parallel *)
        let cell =
          { c_mutex = Mutex.create (); c_cond = Condition.create (); c_state = In_progress }
        in
        Hashtbl.replace t.m_tbl k cell;
        Mutex.unlock t.m_mutex;
        (match f () with
        | v ->
            fill cell (Ready v);
            v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            fill cell (Broken (e, bt));
            (* broadcast the failure to everyone already waiting on this
               cell, but evict it so the next lookup retries: a transient
               failure (an expired request deadline, an I/O hiccup) must
               not poison the key until process restart *)
            Mutex.lock t.m_mutex;
            (match Hashtbl.find_opt t.m_tbl k with
            | Some c when c == cell -> Hashtbl.remove t.m_tbl k
            | _ -> ());
            Mutex.unlock t.m_mutex;
            Printexc.raise_with_backtrace e bt)

  let find_opt t k =
    Mutex.lock t.m_mutex;
    let cell = Hashtbl.find_opt t.m_tbl k in
    Mutex.unlock t.m_mutex;
    match cell with
    | None -> None
    | Some cell -> (
        Mutex.lock cell.c_mutex;
        let st = cell.c_state in
        Mutex.unlock cell.c_mutex;
        match st with Ready v -> Some v | In_progress | Broken _ -> None)

  let length t =
    Mutex.lock t.m_mutex;
    let n =
      Hashtbl.fold
        (fun _ cell acc ->
          Mutex.lock cell.c_mutex;
          let st = cell.c_state in
          Mutex.unlock cell.c_mutex;
          match st with Ready _ -> acc + 1 | _ -> acc)
        t.m_tbl 0
    in
    Mutex.unlock t.m_mutex;
    n
end
