type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
  f_pool : pool;
}

and task = Task : 'a future * (unit -> 'a) -> task

and pool = {
  p_jobs : int;
  p_mutex : Mutex.t;
  p_pending : Condition.t;
  p_queue : task Queue.t;
  mutable p_down : bool;
  mutable p_workers : unit Domain.t list;
}

type task_wrap = { ctx_wrap : 'a. (unit -> 'a) -> 'a }

let identity_wrap = { ctx_wrap = (fun f -> f ()) }

(* Capture function, consulted once per [submit] on the submitting
   thread; the resulting wrap runs around the task body on whichever
   worker picks it up. Lets a tracing layer thread its ambient context
   (e.g. the current span id) across the pool handoff without Par
   depending on it. *)
let task_context : (unit -> task_wrap) Atomic.t = Atomic.make (fun () -> identity_wrap)

let set_task_context capture =
  Atomic.set task_context (match capture with None -> fun () -> identity_wrap | Some c -> c)

let default_jobs () =
  match Option.bind (Sys.getenv_opt "DEPSURF_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> Domain.recommended_domain_count ()

let jobs p = p.p_jobs

let finish (Task (fut, f)) =
  let result =
    try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock fut.f_mutex;
  fut.f_state <- result;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_mutex

let try_pop p =
  Mutex.lock p.p_mutex;
  let t = Queue.take_opt p.p_queue in
  Mutex.unlock p.p_mutex;
  t

let rec worker p =
  Mutex.lock p.p_mutex;
  while Queue.is_empty p.p_queue && not p.p_down do
    Condition.wait p.p_pending p.p_mutex
  done;
  match Queue.take_opt p.p_queue with
  | None ->
      (* shut down with an empty queue *)
      Mutex.unlock p.p_mutex
  | Some t ->
      Mutex.unlock p.p_mutex;
      finish t;
      worker p

let create ?jobs () =
  let n = match jobs with Some n when n >= 1 -> n | Some _ | None -> default_jobs () in
  let p =
    {
      p_jobs = n;
      p_mutex = Mutex.create ();
      p_pending = Condition.create ();
      p_queue = Queue.create ();
      p_down = false;
      p_workers = [];
    }
  in
  (* the caller is the n-th worker: it executes tasks inside [await] *)
  p.p_workers <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker p));
  p

let submit p f =
  let fut = { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending; f_pool = p } in
  let wrap = (Atomic.get task_context) () in
  Mutex.lock p.p_mutex;
  if p.p_down then begin
    Mutex.unlock p.p_mutex;
    invalid_arg "Par.submit: pool is shut down"
  end;
  Queue.push (Task (fut, fun () -> wrap.ctx_wrap f)) p.p_queue;
  Condition.signal p.p_pending;
  Mutex.unlock p.p_mutex;
  fut

let rec await fut =
  Mutex.lock fut.f_mutex;
  let st = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> (
      (* help: run queued tasks instead of blocking, so a 1-domain pool
         makes progress and larger pools keep the caller busy *)
      match try_pop fut.f_pool with
      | Some t ->
          finish t;
          await fut
      | None ->
          let pending f = match f.f_state with Pending -> true | _ -> false in
          Mutex.lock fut.f_mutex;
          while pending fut do
            Condition.wait fut.f_cond fut.f_mutex
          done;
          Mutex.unlock fut.f_mutex;
          await fut)

let drain_one p = match try_pop p with Some t -> finish t; true | None -> false

let map_list p f xs = List.map await (List.map (fun x -> submit p (fun () -> f x)) xs)

let map_reduce p ~map ~reduce ~init xs =
  List.fold_left reduce init (map_list p map xs)

let shutdown p =
  Mutex.lock p.p_mutex;
  p.p_down <- true;
  Condition.broadcast p.p_pending;
  Mutex.unlock p.p_mutex;
  (* drain whatever the workers leave behind, then join them *)
  let rec drain () = match try_pop p with Some t -> finish t; drain () | None -> () in
  drain ();
  List.iter Domain.join p.p_workers;
  p.p_workers <- []

let run ?jobs f =
  let p = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

module Memo = struct
  type 'v cell_state =
    | In_progress
    | Ready of 'v
    | Broken of exn * Printexc.raw_backtrace

  type 'v cell = {
    c_mutex : Mutex.t;
    c_cond : Condition.t;
    mutable c_state : 'v cell_state;
  }

  type ('k, 'v) t = { m_mutex : Mutex.t; m_tbl : ('k, 'v cell) Hashtbl.t }

  let create n = { m_mutex = Mutex.create (); m_tbl = Hashtbl.create n }

  let in_progress cell = match cell.c_state with In_progress -> true | _ -> false

  let read cell =
    Mutex.lock cell.c_mutex;
    while in_progress cell do
      Condition.wait cell.c_cond cell.c_mutex
    done;
    let st = cell.c_state in
    Mutex.unlock cell.c_mutex;
    match st with
    | Ready v -> v
    | Broken (e, bt) -> Printexc.raise_with_backtrace e bt
    | In_progress -> assert false

  let fill cell st =
    Mutex.lock cell.c_mutex;
    cell.c_state <- st;
    Condition.broadcast cell.c_cond;
    Mutex.unlock cell.c_mutex

  let find_or_compute t k f =
    Mutex.lock t.m_mutex;
    match Hashtbl.find_opt t.m_tbl k with
    | Some cell ->
        Mutex.unlock t.m_mutex;
        read cell
    | None ->
        (* claim the key, then compute outside the table lock so other
           keys stay computable in parallel *)
        let cell =
          { c_mutex = Mutex.create (); c_cond = Condition.create (); c_state = In_progress }
        in
        Hashtbl.replace t.m_tbl k cell;
        Mutex.unlock t.m_mutex;
        (match f () with
        | v ->
            fill cell (Ready v);
            v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            fill cell (Broken (e, bt));
            Printexc.raise_with_backtrace e bt)

  let find_opt t k =
    Mutex.lock t.m_mutex;
    let cell = Hashtbl.find_opt t.m_tbl k in
    Mutex.unlock t.m_mutex;
    match cell with
    | None -> None
    | Some cell -> (
        Mutex.lock cell.c_mutex;
        let st = cell.c_state in
        Mutex.unlock cell.c_mutex;
        match st with Ready v -> Some v | In_progress | Broken _ -> None)

  let length t =
    Mutex.lock t.m_mutex;
    let n =
      Hashtbl.fold
        (fun _ cell acc ->
          Mutex.lock cell.c_mutex;
          let st = cell.c_state in
          Mutex.unlock cell.c_mutex;
          match st with Ready _ -> acc + 1 | _ -> acc)
        t.m_tbl 0
    in
    Mutex.unlock t.m_mutex;
    n
end
