(** Numeric statistics shared by the diff summaries, the bench harness
    and the {!Metrics} latency histograms: means, spreads, quantiles, and
    a bounded sampling reservoir for unbounded measurement streams. *)

val percent : int -> int -> float
(** [percent part whole] is [100 * part / whole], or [0.] when [whole = 0]. *)

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; [0.] on fewer than two samples. *)

val quantile : float -> float list -> float
(** [quantile q xs] for [q] in [[0, 1]]: the linearly-interpolated
    q-quantile of the samples (so [quantile 0.5] is the median and
    [quantile 1.] the maximum). [0.] on the empty list; [q] is clamped
    to [[0, 1]]. *)

val max_over : ('a -> float) -> 'a list -> float
(** Largest [f x] over the list; [0.] on the empty list. *)

val ratio_scaled : int -> float -> int
(** [ratio_scaled n rate] is [round (n * rate)], clamped to [>= 0]. Used to
    turn calibrated rates into integer counts. *)

(** A fixed-capacity sampling reservoir (algorithm R with the repo's
    deterministic {!Prng}): feed it any number of samples, read back an
    unbiased bounded subset plus exact count/mean. Latency histograms keep
    one reservoir per endpoint so memory stays O(capacity) under
    arbitrarily long request streams. Not domain-safe on its own —
    {!Metrics} adds the locking. *)
module Reservoir : sig
  type t

  val create : ?capacity:int -> ?seed:int64 -> unit -> t
  (** [capacity] defaults to 512 samples; [seed] (default 0) makes the
      subsampling deterministic for tests. *)

  val add : t -> float -> unit

  val count : t -> int
  (** Total samples offered, including any no longer retained. *)

  val kept : t -> int
  (** Samples currently retained ([min count capacity]). *)

  val values : t -> float list
  (** The retained samples (unordered). *)

  val mean : t -> float
  (** Exact mean over {e all} samples ever offered (running sum), not
      just the retained subset. *)

  val max_seen : t -> float
  (** Exact maximum over all samples ever offered; [0.] when empty. *)

  val stddev : t -> float
  (** Standard deviation of the retained subset. *)

  val quantile : t -> float -> float
  (** Quantile of the retained subset (exact until [count > capacity]). *)
end
