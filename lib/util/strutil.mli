(** Small string-splitting helpers shared by the parsers and the HTTP
    front-end, consolidating the [String.index_opt] + [String.sub]
    pattern that used to be re-implemented at each call site. *)

val cut : on:char -> string -> (string * string) option
(** [cut ~on s] splits [s] at the {e first} occurrence of [on]:
    [Some (before, after)], neither part containing that occurrence;
    [None] when [on] does not occur. *)

val prefix_before : on:char -> default:string -> string -> string
(** [prefix_before ~on ~default s] is everything before the first
    occurrence of [on], or [default] when [on] does not occur. *)

val find_sub : ?from:int -> string -> sub:string -> int option
(** Index of the first occurrence of [sub] at or after [from]
    (default 0), by positional comparison — no per-position allocation.
    The empty [sub] matches at [from]. *)
