(** Structured diagnostics for best-effort binary ingestion.

    The four binary parsers (ELF, DWARF, BTF, BPF object) can run in two
    modes: strict (the historical behaviour — raise a typed exception on
    the first malformed byte) and lenient (extract whatever parses
    cleanly and describe the rest as a list of diagnostics). A diagnostic
    records what was lost, where, and how bad it is:

    - [Fatal]: nothing usable could be extracted from the artifact
      (e.g. not an ELF file at all).
    - [Degraded]: the artifact was read, but part of the analysis surface
      is missing or unreliable (e.g. a truncated [.BTF] section).
    - [Warning]: cosmetic or informational; the analysis is unaffected.

    The severity lattice is [Warning < Degraded < Fatal]; the health of a
    run is the worst severity it emitted, and maps onto process exit
    codes ([0] clean, [1] fatal, [2] degraded — see {!exit_code}). *)

type severity = Warning | Degraded | Fatal

val severity_to_string : severity -> string

val severity_compare : severity -> severity -> int
(** Orders [Warning < Degraded < Fatal]. *)

type t = {
  d_severity : severity;
  d_component : string;
      (** Which parser/stage emitted it: ["elf"], ["btf"], ["dwarf"],
          ["obj"], ["vmlinux"], ["surface"]. *)
  d_context : string option;
      (** Optional finer location: a section or symbol name, or a tag
          such as ["Unknown_machine"]. *)
  d_offset : int option;  (** Byte offset into the component's input. *)
  d_message : string;
}

val v : ?context:string -> ?offset:int -> severity -> component:string -> string -> t

val to_string : t -> string
(** One line: [severity component[@offset] (context): message]. *)

val demote : t -> t
(** [Fatal] becomes [Degraded]; used when a sub-parser's total failure
    (fatal for that component) only degrades the enclosing artifact. *)

val worst : t list -> severity option
(** [None] on the empty list (a clean run). *)

val is_degraded : t list -> bool
(** True when any diagnostic is [Degraded] or [Fatal]. *)

val exit_code : t list -> int
(** [0] clean (no diagnostics, or warnings only), [1] fatal, [2] degraded. *)

type mode = [ `Strict | `Lenient ]
(** Parsing mode shared by every binary parser's unified entrypoint.
    [`Strict] preserves the historical behaviour: raise the parser's
    typed exception on the first malformed byte. [`Lenient] extracts
    whatever parses cleanly and reports the rest as diagnostics. *)

type 'a outcome = { ok : 'a; diags : t list }
(** The shared result shape of the unified [read ?mode] entrypoints:
    the extracted value plus the diagnostics describing what was lost
    along the way ([diags = []] in strict mode — strict raises
    instead of degrading). *)

val outcome : ?diags:t list -> 'a -> 'a outcome
val ok : 'a outcome -> 'a
val diags : 'a outcome -> t list

(** A bounded, domain-safe diagnostic sink. Parsers running under
    [Par] pool workers may share one collector; emission order is
    preserved and the total is capped (a corrupt 64k-section header
    table should not produce 64k diagnostics — the tail is summarized
    by a final suppression notice). *)
module Collector : sig
  type diag = t
  type t

  val create : ?limit:int -> unit -> t
  (** [limit] (default 128) caps the retained diagnostics. *)

  val emit : t -> diag -> unit
  val count : t -> int
  (** Total emitted, including any dropped past the limit. *)

  val diags : t -> diag list
  (** Retained diagnostics in emission order, plus a trailing
      [Warning] notice when any were suppressed. *)
end
