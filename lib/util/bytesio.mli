(** Binary readers and writers with explicit endianness.

    All on-disk artifacts in this project (ELF images, DWARF sections, BTF
    blobs, eBPF object files) are produced by {!Writer} and re-parsed by
    {!Reader}; both support little- and big-endian byte order and 4- or
    8-byte pointers so that the ppc (big-endian in our model) and arm32
    images exercise the same architecture-specific handling the paper's
    data-section parser needed. *)

type endian = Little | Big

exception Truncated of string
(** Raised by {!Reader} on reads past the end of the buffer. *)

(** A non-copying view of a region of a string: offset + length over the
    backing buffer, no [Bigstringaf] (or any C stubs) involved. Used by
    the binary parsers and the HTTP front-end to scan, compare and split
    without the per-record [String.sub] copies.

    Safety rules: a slice {e pins the entire backing string} alive, so
    convert with {!to_string} before storing a slice in a long-lived
    structure (an index entry, a parsed record); and slices are only
    valid views of immutable strings — never wrap a [Bytes.t] that is
    still being mutated. *)
module Slice : sig
  type t

  val of_string : string -> t
  val make : string -> pos:int -> len:int -> t
  (** Raises [Invalid_argument] when the region is out of bounds. *)

  val length : t -> int
  val is_empty : t -> bool

  val get : t -> int -> char
  (** Raises [Invalid_argument] out of bounds. *)

  val sub : t -> pos:int -> len:int -> t
  (** A sub-view; no copy. *)

  val to_string : t -> string
  (** The one explicit copy. *)

  val index_opt : t -> char -> int option
  val trim : t -> t
  (** Drop ASCII whitespace from both ends; no copy. *)

  val lowercase_string : t -> string
  (** ASCII-lowercased contents, in a single allocation. *)

  val equal_string : t -> string -> bool
  (** Positional comparison; no allocation. *)

  val equal_caseless_string : t -> string -> bool
end

module Writer : sig
  type t

  val create : ?endian:endian -> unit -> t
  val endian : t -> endian
  val pos : t -> int

  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit
  val uint : t -> int -> unit
  (** [uint w v] writes [v] (assumed non-negative, < 2^63) as a u64. *)

  val uleb128 : t -> int -> unit
  val sleb128 : t -> int -> unit
  val bytes : t -> string -> unit
  val cstring : t -> string -> unit
  (** NUL-terminated string. The string itself must not contain NUL. *)

  val align : t -> int -> unit
  (** Pad with zero bytes to the given alignment. *)

  val contents : t -> string
end

module Reader : sig
  type t

  val of_string : ?endian:endian -> string -> t
  val sub : t -> pos:int -> len:int -> t
  (** A sub-reader over [len] bytes starting at absolute [pos]; inherits
      endianness. *)

  val endian : t -> endian
  val pos : t -> int
  val length : t -> int
  val eof : t -> bool
  val seek : t -> int -> unit

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64
  val uint : t -> int
  (** Reads a u64 and converts to [int]; raises [Truncated] if it does not
      fit in an OCaml int. *)

  val uleb128 : t -> int
  val sleb128 : t -> int
  val bytes : t -> int -> string

  val slice : t -> int -> Slice.t
  (** Like {!bytes} but returns a non-copying view of the backing
      string (which it pins alive — see the {!Slice} safety rules). *)

  val expect : t -> string -> bool
  (** [expect r magic] compares the next bytes against [magic] without
      allocating; consumes them and returns [true] on a match, leaves
      the cursor in place and returns [false] otherwise. Raises
      [Truncated] when fewer than [String.length magic] bytes remain. *)

  val cstring : t -> string
  (** Reads up to (and consumes) the next NUL byte. *)

  val cstring_at : t -> int -> string
  (** [cstring_at r pos] reads a NUL-terminated string at absolute [pos]
      without moving the cursor. Used for string-table lookups. *)
end
