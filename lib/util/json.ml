type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad depth = String.make (depth * indent) ' ' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (Printf.sprintf "%g" f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (pad (depth + 1));
            go (depth + 1) item)
          items;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (pad depth);
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (pad (depth + 1));
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (depth + 1) v)
          fields;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (pad depth);
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

let fail msg = raise (Parse_error msg)
let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None
let advance p = p.pos <- p.pos + 1

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> fail (Printf.sprintf "expected %c at %d, got %c" c p.pos c')
  | None -> fail (Printf.sprintf "expected %c at %d, got EOF" c p.pos)

let literal p word value =
  let n = String.length word in
  let rec matches i =
    i >= n || (String.unsafe_get p.src (p.pos + i) = String.unsafe_get word i && matches (i + 1))
  in
  if p.pos + n <= String.length p.src && matches 0 then begin
    p.pos <- p.pos + n;
    value
  end
  else fail (Printf.sprintf "bad literal at %d" p.pos)

let parse_string_body p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
        advance p;
        match peek p with
        | Some 'n' -> advance p; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance p; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance p; Buffer.add_char buf '\r'; go ()
        | Some '"' -> advance p; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance p; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance p; Buffer.add_char buf '/'; go ()
        | Some 'u' ->
            advance p;
            if p.pos + 4 > String.length p.src then fail "bad \\u escape";
            let hex_digit c =
              match c with
              | '0' .. '9' -> Char.code c - Char.code '0'
              | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
              | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
              | _ -> fail "bad \\u escape"
            in
            let code =
              (hex_digit p.src.[p.pos] lsl 12)
              lor (hex_digit p.src.[p.pos + 1] lsl 8)
              lor (hex_digit p.src.[p.pos + 2] lsl 4)
              lor hex_digit p.src.[p.pos + 3]
            in
            p.pos <- p.pos + 4;
            (* BMP only; enough for our own output *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
            go ()
        | _ -> fail "bad escape")
    | Some c ->
        advance p;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  (* classify while scanning: one [String.sub] for the conversion itself,
     no extra copy + [String.contains] re-scans *)
  let is_float = ref false in
  while (match peek p with Some c when is_num_char c -> true | _ -> false) do
    (match p.src.[p.pos] with '.' | 'e' | 'E' -> is_float := true | _ -> ());
    advance p
  done;
  let s = String.sub p.src start (p.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail ("bad number " ^ s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail ("bad number " ^ s)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail "unexpected EOF"
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then begin
        advance p;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws p;
          let k = parse_string_body p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance p;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then begin
        advance p;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              items (v :: acc)
          | Some ']' ->
              advance p;
              List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string_body p)
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some _ -> parse_number p

let of_string s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail "trailing garbage";
  v

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Int i -> i | _ -> fail "expected int"
let to_str = function String s -> s | _ -> fail "expected string"
