type hist = { h_mutex : Mutex.t; h_res : Stats.Reservoir.t }

type t = {
  m_mutex : Mutex.t;  (** guards the two registries *)
  m_counters : (string, int ref) Hashtbl.t;
  m_hists : (string, hist) Hashtbl.t;
}

let create () =
  { m_mutex = Mutex.create (); m_counters = Hashtbl.create 16; m_hists = Hashtbl.create 16 }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let incr ?(by = 1) t name =
  with_lock t.m_mutex (fun () ->
      match Hashtbl.find_opt t.m_counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace t.m_counters name (ref by))

let counter t name =
  with_lock t.m_mutex (fun () ->
      match Hashtbl.find_opt t.m_counters name with Some r -> !r | None -> 0)

let counters t =
  with_lock t.m_mutex (fun () ->
      List.sort compare (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.m_counters []))

(* per-label histogram seeded from the label so the subsampling is
   deterministic across runs *)
let hist_of t label =
  with_lock t.m_mutex (fun () ->
      match Hashtbl.find_opt t.m_hists label with
      | Some h -> h
      | None ->
          let seed =
            String.fold_left (fun acc c -> Int64.add (Int64.mul acc 31L) (Int64.of_int (Char.code c))) 7L label
          in
          let h = { h_mutex = Mutex.create (); h_res = Stats.Reservoir.create ~seed () } in
          Hashtbl.replace t.m_hists label h;
          h)

let record t label seconds =
  let h = hist_of t label in
  with_lock h.h_mutex (fun () -> Stats.Reservoir.add h.h_res seconds)

let time t label f =
  let t0 = Unix.gettimeofday () in
  let finally () =
    record t label (Unix.gettimeofday () -. t0);
    incr t (label ^ ".count")
  in
  Fun.protect ~finally f

type latency = {
  l_count : int;
  l_mean_ms : float;
  l_p50_ms : float;
  l_p95_ms : float;
  l_p99_ms : float;
  l_max_ms : float;
}

let snapshot_hist h =
  with_lock h.h_mutex (fun () ->
      let r = h.h_res in
      if Stats.Reservoir.count r = 0 then None
      else
        let ms v = v *. 1000. in
        Some
          {
            l_count = Stats.Reservoir.count r;
            l_mean_ms = ms (Stats.Reservoir.mean r);
            l_p50_ms = ms (Stats.Reservoir.quantile r 0.5);
            l_p95_ms = ms (Stats.Reservoir.quantile r 0.95);
            l_p99_ms = ms (Stats.Reservoir.quantile r 0.99);
            l_max_ms = ms (Stats.Reservoir.max_seen r);
          })

let latency t label =
  let h = with_lock t.m_mutex (fun () -> Hashtbl.find_opt t.m_hists label) in
  Option.bind h snapshot_hist

let latencies t =
  let hs =
    with_lock t.m_mutex (fun () ->
        List.sort compare (Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.m_hists []))
  in
  List.filter_map (fun (k, h) -> Option.map (fun l -> (k, l)) (snapshot_hist h)) hs

let to_json t =
  let counters_json = List.map (fun (k, v) -> (k, Json.Int v)) (counters t) in
  let lat_json =
    List.map
      (fun (k, l) ->
        ( k,
          Json.Obj
            [
              ("count", Json.Int l.l_count);
              ("mean", Json.Float l.l_mean_ms);
              ("p50", Json.Float l.l_p50_ms);
              ("p95", Json.Float l.l_p95_ms);
              ("p99", Json.Float l.l_p99_ms);
              ("max", Json.Float l.l_max_ms);
            ] ))
      (latencies t)
  in
  Json.Obj [ ("counters", Json.Obj counters_json); ("latency_ms", Json.Obj lat_json) ]
