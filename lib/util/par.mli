(** A fixed-size domain work-pool with futures, for the embarrassingly
    parallel fan-outs of the pipeline (per-image compile/parse/surface
    chains, pairwise diffs, per-program report matrices).

    Determinism contract: {!map_list}, {!map_list_chunked} and
    {!map_reduce} preserve input order, so parallel runs produce
    byte-identical tables and figures as long as the mapped function is
    pure. A pool of size 1 degrades to plain sequential execution in the
    calling domain — no worker domains are spawned.

    Oversubscription throttle: at most
    [min jobs (Domain.recommended_domain_count ())] tasks execute at
    once, and the pool only spawns that many executors in the first
    place (the caller counts as one). On a host with fewer cores than
    [jobs] the surplus domains are never created: even an idle domain
    parked in [Condition.wait] joins every stop-the-world minor-GC
    rendezvous, which used to make [jobs=4] on one core up to twice as
    slow as sequential on allocation-heavy stages. A caller blocked in
    {!await} helps only while a slot is free; a domain already inside a
    pool task (nested {!await}, {!drain_one}) always pops — inline
    progress there is the deadlock-safe path. The semantics of [jobs]
    are unchanged, only the scheduling. *)

type pool
type 'a future

val default_jobs : unit -> int
(** [DEPSURF_JOBS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> pool
(** Create a pool admitting [jobs] concurrent tasks, spawning
    [min jobs (Domain.recommended_domain_count ()) - 1] worker domains
    (the calling domain executes queued tasks while it waits in
    {!await}, so it counts as one executor). Default: {!default_jobs}. *)

val jobs : pool -> int

val submit : pool -> (unit -> 'a) -> 'a future
(** Enqueue a task. Raises [Invalid_argument] after {!shutdown}. The
    submitting domain's ambient {!Deadline} (if armed) is captured and
    re-installed around the task body on the executing worker, so a
    cooperative request budget follows its fan-out across the pool. *)

type task_wrap = { ctx_wrap : 'a. (unit -> 'a) -> 'a }
(** A polymorphic wrapper run around a task's body on the worker that
    executes it. *)

val set_task_context : (unit -> task_wrap) option -> unit
(** Install a context-capture hook. The capture function is called once
    per {!submit}, on the submitting thread, and the wrap it returns
    runs around the task body on whichever domain executes it — letting
    an observability layer (e.g. [Ds_trace]) propagate ambient state
    such as the current span id across the pool handoff. [None]
    restores the identity wrap. Process-global; intended to be set once
    at startup. *)

val await : 'a future -> 'a
(** Block until the task finishes, executing other queued tasks of the
    same pool while waiting. Re-raises the task's exception (with its
    backtrace) if it failed. *)

val drain_one : pool -> bool
(** Pop one queued task and run it on the calling thread; [false] when
    the queue is empty. Lets a long-lived task that occupies a worker
    (e.g. a server's accept loop) keep the rest of the queue moving on
    a small pool instead of starving it. *)

val map_list : pool -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map]; results are in input order. The first failing
    element's exception (in input order) is re-raised. *)

val map_list_chunked : ?chunk:int -> pool -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_list} with one pool task per {e chunk} of consecutive elements
    instead of one per element, cutting the per-element future/queue/lock
    cost on fine-grained fan-outs. [chunk] defaults to
    [max 1 (n / (jobs * 4))] — 4 chunks per worker for load balance,
    degenerating to {!map_list} for small [n]. Same determinism and
    exception contract as {!map_list} (a chunk maps its elements
    left-to-right, so the first failing element in input order still
    wins). An empty input returns [[]] and a [chunk] covering the whole
    list maps in the calling domain — neither submits a pool task, so
    both work even against a shut-down pool. Raises [Invalid_argument]
    when [chunk < 1]. *)

val map_reduce : pool -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** [map] runs in parallel; the fold runs left-to-right in input order in
    the calling domain, so the result is deterministic even for
    non-commutative [reduce]. *)

val shutdown : pool -> unit
(** Drain the queue, stop and join every worker domain. Idempotent.
    After shutdown no domains are left running. *)

val run : ?jobs:int -> (pool -> 'a) -> 'a
(** [run f] = create a pool, apply [f], shut the pool down (also on
    exception), return [f]'s result. *)

(** A mutex-protected memo table with an exactly-once guarantee: when
    several domains request the same absent key concurrently, one of them
    computes while the others block until the value is ready. Used by
    [Dataset] so each (version, config) model/image/vmlinux/surface is
    built once no matter how many domains ask for it. *)
module Memo : sig
  type ('k, 'v) t

  val create : int -> ('k, 'v) t
  (** [create n]: initial capacity hint, as for [Hashtbl.create]. *)

  val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
  (** Return the memoized value for the key, computing it with the
      supplied thunk at most once at a time across all domains. If the
      computing thunk raises, the same exception is re-raised for every
      waiter of that in-flight computation and the key is evicted, so
      the next lookup retries — a transient failure (e.g. an expired
      request deadline during the fill) never poisons the key. *)

  val find_opt : ('k, 'v) t -> 'k -> 'v option
  (** [Some v] only for keys whose computation already finished. *)

  val length : ('k, 'v) t -> int
  (** Number of completed entries. *)
end
