let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let byte i = Char.code s.[i] in
  let emit v = Buffer.add_char out alphabet.[v land 63] in
  let i = ref 0 in
  while !i + 2 < n do
    let b0 = byte !i and b1 = byte (!i + 1) and b2 = byte (!i + 2) in
    emit (b0 lsr 2);
    emit ((b0 lsl 4) lor (b1 lsr 4));
    emit ((b1 lsl 2) lor (b2 lsr 6));
    emit b2;
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let b0 = byte !i in
      emit (b0 lsr 2);
      emit (b0 lsl 4);
      Buffer.add_string out "=="
  | 2 ->
      let b0 = byte !i and b1 = byte (!i + 1) in
      emit (b0 lsr 2);
      emit ((b0 lsl 4) lor (b1 lsr 4));
      emit (b1 lsl 2);
      Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

let rev_table =
  lazy
    (let t = Array.make 256 (-1) in
     String.iteri (fun i c -> t.(Char.code c) <- i) alphabet;
     t)

let decode s =
  let t = Lazy.force rev_table in
  let n = String.length s in
  if n mod 4 <> 0 then None
  else if n = 0 then Some ""
  else
    let pad =
      if s.[n - 1] = '=' then if n >= 2 && s.[n - 2] = '=' then 2 else 1 else 0
    in
    let out = Buffer.create (n / 4 * 3) in
    let exception Bad in
    let sextet i =
      (* '=' is only legal in the final [pad] positions *)
      if s.[i] = '=' then if i >= n - pad then 0 else raise Bad
      else
        match t.(Char.code s.[i]) with -1 -> raise Bad | v -> v
    in
    match
      let i = ref 0 in
      while !i < n do
        let v0 = sextet !i and v1 = sextet (!i + 1) in
        let v2 = sextet (!i + 2) and v3 = sextet (!i + 3) in
        if (s.[!i] = '=' || s.[!i + 1] = '=') && !i + 4 <= n then
          (* padding may start at position 2 of the last quantum only *)
          raise Bad;
        if (s.[!i + 2] = '=' || s.[!i + 3] = '=') && !i + 4 < n then raise Bad;
        Buffer.add_char out (Char.chr ((v0 lsl 2) lor (v1 lsr 4)));
        if s.[!i + 2] <> '=' then Buffer.add_char out (Char.chr (((v1 lsl 4) lor (v2 lsr 2)) land 255));
        if s.[!i + 3] <> '=' then Buffer.add_char out (Char.chr (((v2 lsl 6) lor v3) land 255));
        i := !i + 4
      done
    with
    | () -> Some (Buffer.contents out)
    | exception Bad -> None
