(* A cooperative deadline carried in domain-local storage. The serving
   layer arms one per request; compute code calls [check] at loop
   boundaries; [Par.submit] captures the submitter's ambient deadline
   and re-installs it around the task body, so a request's budget
   follows its work across the pool. *)

type ctx = { dl_at : float; dl_label : string }

exception Expired of string * float

let () =
  Printexc.register_printer (function
    | Expired (label, over) ->
        Some (Printf.sprintf "Deadline.Expired(%s, %.3fs over)" label over)
    | _ -> None)

(* one mutable slot per domain; nesting saves/restores around the scope *)
let key : ctx option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

type ambient = ctx option

let capture () = !(Domain.DLS.get key)

let with_ambient amb f =
  let slot = Domain.DLS.get key in
  let saved = !slot in
  slot := amb;
  Fun.protect ~finally:(fun () -> slot := saved) f

let with_deadline ?(label = "deadline") at f =
  (* nested deadlines tighten, never loosen: the effective deadline is
     the innermost minimum *)
  let eff =
    match capture () with
    | Some outer when outer.dl_at <= at -> Some outer
    | _ -> Some { dl_at = at; dl_label = label }
  in
  with_ambient eff f

let with_timeout ?label seconds f =
  with_deadline ?label (Unix.gettimeofday () +. seconds) f

let remaining () =
  match capture () with
  | None -> infinity
  | Some c -> c.dl_at -. Unix.gettimeofday ()

let armed () = capture () <> None
let expired () = remaining () < 0.

let check () =
  match capture () with
  | None -> ()
  | Some c ->
      let over = Unix.gettimeofday () -. c.dl_at in
      if over > 0. then raise (Expired (c.dl_label, over))
