let percent part whole =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.) xs))

let quantile q = function
  | [] -> 0.
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let q = Float.max 0. (Float.min 1. q) in
      let rank = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then a.(lo) else a.(lo) +. ((rank -. float_of_int lo) *. (a.(hi) -. a.(lo)))

let max_over f = List.fold_left (fun acc x -> Float.max acc (f x)) 0.

let ratio_scaled n rate =
  let v = int_of_float (Float.round (float_of_int n *. rate)) in
  if v < 0 then 0 else v

module Reservoir = struct
  type t = {
    r_samples : float array;
    r_prng : Prng.t;
    mutable r_count : int;
    mutable r_sum : float;
    mutable r_max : float;
  }

  let create ?(capacity = 512) ?(seed = 0L) () =
    if capacity < 1 then invalid_arg "Stats.Reservoir.create: capacity < 1";
    {
      r_samples = Array.make capacity 0.;
      r_prng = Prng.create seed;
      r_count = 0;
      r_sum = 0.;
      r_max = 0.;
    }

  let add t x =
    let cap = Array.length t.r_samples in
    (if t.r_count < cap then t.r_samples.(t.r_count) <- x
     else
       (* algorithm R: keep each sample with probability cap / count *)
       let j = Prng.int t.r_prng (t.r_count + 1) in
       if j < cap then t.r_samples.(j) <- x);
    t.r_count <- t.r_count + 1;
    t.r_sum <- t.r_sum +. x;
    t.r_max <- if t.r_count = 1 then x else Float.max t.r_max x

  let count t = t.r_count
  let kept t = min t.r_count (Array.length t.r_samples)
  let values t = Array.to_list (Array.sub t.r_samples 0 (kept t))
  let mean t = if t.r_count = 0 then 0. else t.r_sum /. float_of_int t.r_count
  let max_seen t = if t.r_count = 0 then 0. else t.r_max
  let stddev t = stddev (values t)
  let quantile t q = quantile q (values t)
end
