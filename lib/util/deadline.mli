(** Cooperative per-task deadlines, carried in domain-local storage.

    A server arms a deadline around a request handler with
    {!with_timeout}; long-running compute calls {!check} at its loop
    boundaries and is cut short with {!Expired} the moment the budget
    is gone — the worker is released instead of burning to completion
    for a caller that has already been answered.

    {!Par.submit} captures the submitting domain's ambient deadline and
    re-installs it around the task body on whichever worker runs it, so
    a request's budget follows its fan-out across the pool. Deadlines
    nest by tightening: an inner {!with_timeout} can only shorten the
    effective deadline, never extend the outer one. *)

exception Expired of string * float
(** [(label, seconds_over)]: raised by {!check} once the innermost
    deadline has passed. *)

val with_deadline : ?label:string -> float -> (unit -> 'a) -> 'a
(** [with_deadline at f] runs [f] with an absolute deadline (epoch
    seconds, as {!Unix.gettimeofday}). Restores the previous ambient
    deadline on exit, also on exception. *)

val with_timeout : ?label:string -> float -> (unit -> 'a) -> 'a
(** [with_timeout seconds f]: {!with_deadline} at [now + seconds]. *)

val check : unit -> unit
(** Raise {!Expired} when the ambient deadline has passed; no-op when
    none is armed or time remains. Cheap enough for inner loops (one
    DLS read + one [gettimeofday]). *)

val remaining : unit -> float
(** Seconds until the ambient deadline; [infinity] when none armed. *)

val armed : unit -> bool
val expired : unit -> bool

(**/**)

type ambient
(** Opaque captured deadline state, for context propagation across
    domain handoffs (used by {!Par.submit}). *)

val capture : unit -> ambient
val with_ambient : ambient -> (unit -> 'a) -> 'a
