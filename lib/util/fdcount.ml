(* File-descriptor accounting via /proc/self/fd, for the leak
   assertions shared by the socket chaos suite and the overload bench:
   count before, run the storm, count after, demand no growth. *)

let count () =
  match Sys.readdir "/proc/self/fd" with
  | entries ->
      (* the readdir itself holds one fd on the directory; exclude it so
         two back-to-back counts agree *)
      max 0 (Array.length entries - 1)
  | exception Sys_error _ -> -1

let supported () = count () >= 0

let no_growth ?(slack = 0) ~before ~after () =
  (* unknown counts (no /proc) never fail the assertion *)
  before < 0 || after < 0 || after <= before + slack
