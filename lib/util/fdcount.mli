(** Open file-descriptor accounting for leak assertions.

    Linux-only by mechanism ([/proc/self/fd]); on hosts without procfs
    every count is [-1] and {!no_growth} passes vacuously, so suites
    using it degrade to a no-op instead of a false failure. *)

val count : unit -> int
(** Number of open descriptors (excluding the one used to read the
    listing), or [-1] when [/proc/self/fd] is unavailable. *)

val supported : unit -> bool

val no_growth : ?slack:int -> before:int -> after:int -> unit -> bool
(** [after <= before + slack] (default slack 0), or either count is
    unknown. *)
