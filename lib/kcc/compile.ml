open Ds_util
open Ds_ctypes
open Ds_ksrc
open Construct

type site = {
  sd_caller : string;
  sd_tu : string;
  sd_line : int;
  sd_inlined : bool;
  sd_pc : int64;
}

type instance = {
  i_func : Construct.func_def;
  i_tu : string;
  i_symbols : (string * int64) list;
  i_sites : site list;
}

type model = {
  m_source_version : Version.t;
  m_config : Config.t;
  m_gcc : int * int;
  m_env : Decl.type_env;
  m_instances : instance list;
  m_tracepoints : Construct.tracepoint_def list;
  m_syscalls : (string * string * int64) list;
}

let trace_entry_struct =
  Decl.
    {
      sname = "trace_entry";
      skind = `Struct;
      byte_size = 8;
      fields =
        [
          { fname = "type"; ftype = Ctype.ushort; bits_offset = 0 };
          { fname = "flags"; ftype = Ctype.uchar; bits_offset = 16 };
          { fname = "preempt_count"; ftype = Ctype.uchar; bits_offset = 24 };
          { fname = "pid"; ftype = Ctype.int_; bits_offset = 32 };
        ];
    }

let syscall_prefix = function
  | Config.X86 -> "__x64_sys_"
  | Config.Arm64 -> "__arm64_sys_"
  | Config.Arm32 -> "sys_"
  | Config.Ppc -> "sys_"
  | Config.Riscv -> "__riscv_sys_"

let syscall_symbol arch name = syscall_prefix arch ^ name

let syscall_of_symbol arch sym =
  let prefix = syscall_prefix arch in
  if String.length sym > String.length prefix && String.starts_with ~prefix sym then
    Some (String.sub sym (String.length prefix) (String.length sym - String.length prefix))
  else None

let inline_jitter ~tu ~fn =
  (* 80% of header copies inline; stable across versions/configs. *)
  let h = Prng.next_int64 (Prng.of_string ("jitter:" ^ tu ^ ":" ^ fn)) in
  Int64.rem (Int64.logand h Int64.max_int) 10L < 8L

(* ------------------------------------------------------------------ *)
(* Struct layout                                                       *)
(* ------------------------------------------------------------------ *)

(* Lay out every configured struct. Direct struct-typed members require
   the inner struct to be laid out first, so iterate to a fixpoint;
   pointer members only need the pointer size. *)
let build_env src cfg =
  let env0 =
    List.fold_left Decl.add_typedef
      (Decl.empty_env ~ptr_size:(Config.ptr_size cfg.Config.arch))
      Decl.default_typedefs
  in
  let env0 = Decl.add_struct env0 trace_entry_struct in
  let pending = ref (Source.structs_in src cfg) in
  let env = ref env0 in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun (s : struct_src) ->
        match
          Decl.layout_struct !env ~name:s.st_name ~kind:s.st_kind (members_for s cfg)
        with
        | def ->
            env := Decl.add_struct !env def;
            progress := true
        | exception Not_found -> still := s :: !still)
      !pending;
    pending := List.rev !still
  done;
  (* Anything left refers (directly, by value) to a struct this config
     doesn't have; treat the unresolved members as opaque words, which is
     what an #ifdef'd placeholder would produce. *)
  List.iter
    (fun (s : struct_src) ->
      let members =
        List.map
          (fun (n, ty) ->
            match Decl.size_of !env ty with
            | _ -> (n, ty)
            | exception Not_found -> (n, Ctype.ulong))
          (members_for s cfg)
      in
      env := Decl.add_struct !env (Decl.layout_struct !env ~name:s.st_name ~kind:s.st_kind members))
    !pending;
  (* Event structs for configured tracepoints. *)
  List.iter
    (fun tp ->
      let members =
        ("ent", Ctype.Struct_ref "trace_entry")
        :: List.map
             (fun (n, ty) ->
               match Decl.size_of !env ty with
               | _ -> (n, ty)
               | exception Not_found -> (n, Ctype.ulong))
             tp.tp_fields
      in
      env :=
        Decl.add_struct !env
          (Decl.layout_struct !env ~name:(tp_struct_name tp) ~kind:`Struct members))
    (Source.tracepoints_in src cfg);
  !env

(* ------------------------------------------------------------------ *)
(* Call-site synthesis                                                 *)
(* ------------------------------------------------------------------ *)

(* TU index: file -> names of functions whose primary copy lives there. *)
let build_tu_index funcs =
  let tbl : (string, string list ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun f ->
      if not (fn_is_header f) then begin
        let cell =
          match Hashtbl.find_opt tbl f.fn_file with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.add tbl f.fn_file c;
              c
        in
        cell := f.fn_name :: !cell
      end)
    funcs;
  tbl

let pick_callers prng tu_index ~tu ~self n =
  match Hashtbl.find_opt tu_index tu with
  | None -> []
  | Some names ->
      let candidates = List.filter (fun c -> c <> self) !names in
      Prng.sample prng n candidates

(* Synthesize call sites for a function without explicit ones. Seeded by
   the function name only, so sites are stable across versions. *)
let synth_sites prng_for tu_index (f : func_def) ~tus =
  let prng = prng_for f.fn_name in
  match tus with
  | `Header includers ->
      List.concat_map
        (fun tu ->
          List.map
            (fun caller -> { cl_func = caller; cl_file = tu })
            (pick_callers prng tu_index ~tu ~self:f.fn_name (1 + Prng.int prng 2)))
        includers
  | `Single tu -> (
      match f.fn_profile with
      | P_full ->
          List.map
            (fun c -> { cl_func = c; cl_file = tu })
            (pick_callers prng tu_index ~tu ~self:f.fn_name (1 + Prng.int prng 3))
      | P_selective ->
          let same =
            List.map
              (fun c -> { cl_func = c; cl_file = tu })
              (pick_callers prng tu_index ~tu ~self:f.fn_name (1 + Prng.int prng 2))
          in
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tu_index [] in
          let keys = List.sort compare (List.filter (fun k -> k <> tu) keys) in
          let other =
            if keys = [] then []
            else
              let otu = List.nth keys (Prng.int prng (List.length keys)) in
              List.map
                (fun c -> { cl_func = c; cl_file = otu })
                (pick_callers prng tu_index ~tu:otu ~self:f.fn_name (1 + Prng.int prng 2))
          in
          same @ other
      | P_never ->
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tu_index [] in
          let keys = List.sort compare keys in
          if keys = [] then []
          else
            List.init
              (1 + Prng.int prng 3)
              (fun _ ->
                let otu = List.nth keys (Prng.int prng (List.length keys)) in
                match pick_callers prng tu_index ~tu:otu ~self:f.fn_name 1 with
                | [ c ] -> Some { cl_func = c; cl_file = otu }
                | _ -> None)
            |> List.filter_map Fun.id)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let text_base_for arch =
  if Config.ptr_size arch = 4 then 0xc0008000L else 0xffffffff81000000L

let compile ?inline_threshold src cfg =
  Ds_trace.Trace.span ~name:"kcc.compile"
    ~attrs:
      [
        ("version", Version.to_string (Source.version src));
        ("config", Config.to_string cfg);
      ]
  @@ fun () ->
  let gcc = Version.gcc_of (Source.version src) in
  let arch = cfg.Config.arch in
  let text_base = text_base_for arch in
  let inline_pc_base = if Config.ptr_size arch = 4 then 0xc8000000L else 0xffffffff89000000L in
  let threshold =
    match inline_threshold with
    | Some t -> t
    | None -> Calibration.inline_threshold ~gcc
  in
  let funcs = Source.funcs_in src cfg in
  let tu_index = build_tu_index funcs in
  let name_set = Hashtbl.create 512 in
  List.iter (fun f -> Hashtbl.replace name_set f.fn_name ()) funcs;
  let prng_for name = Prng.of_string ("sites:" ^ name) in
  (* Address allocator. *)
  let next_addr = ref text_base in
  let alloc size =
    let a = !next_addr in
    next_addr := Int64.add a (Int64.of_int ((size + 15) / 16 * 16));
    a
  in
  (* Per-function compilation. *)
  let compile_func (f : func_def) =
    let explicit =
      List.filter (fun c -> Hashtbl.mem name_set c.cl_func) f.fn_callers
    in
    let copies =
      if fn_is_header f then `Header f.fn_includers else `Single f.fn_file
    in
    let sites =
      if explicit <> [] then explicit else synth_sites prng_for tu_index f ~tus:copies
    in
    let inlinable = f.fn_body_size <= threshold && not f.fn_address_taken in
    let decide_site ~copy_tu (c : caller) =
      (* visibility: the body is visible at the call site iff the call is
         in the TU holding this copy (header copies live in each
         includer). Global functions can also be inlined intra-TU. *)
      let visible = c.cl_file = copy_tu in
      let jitter = if fn_is_header f then inline_jitter ~tu:copy_tu ~fn:f.fn_name else true in
      visible && inlinable && jitter
    in
    let transforms =
      (* ISRA/constprop need internal linkage; cold/part splitting applies
         to globals too *)
      List.filter
        (fun t ->
          Calibration.transform_supported t ~gcc ~arch
          && (f.fn_static || t = T_cold || t = T_part))
        f.fn_transforms
    in
    let symbols_for base_kept =
      (* base symbol possibly renamed by isra/constprop; cold/part add
         siblings. *)
      let renames =
        List.filter (fun t -> t = T_isra || t = T_constprop) transforms
      in
      let splits = List.filter (fun t -> t = T_cold || t = T_part) transforms in
      let base_name =
        List.fold_left (fun n t -> n ^ transform_suffix t) f.fn_name renames
      in
      if not base_kept then []
      else
        (base_name, alloc f.fn_body_size)
        :: List.map (fun t -> (f.fn_name ^ transform_suffix t, alloc (max 8 (f.fn_body_size / 3)))) splits
    in
    match copies with
    | `Single tu ->
        let decided =
          List.map
            (fun (c : caller) ->
              let inlined = decide_site ~copy_tu:tu c in
              (c, inlined))
            sites
        in
        let all_inlined =
          decided <> [] && List.for_all snd decided
        in
        let keep_symbol = (not f.fn_static) || not all_inlined in
        let symbols = symbols_for keep_symbol in
        let base_addr = match symbols with (_, a) :: _ -> a | [] -> 0L in
        let mk_site i ((c : caller), inlined) =
          {
            sd_caller = c.cl_func;
            sd_tu = c.cl_file;
            sd_line = f.fn_line + 1000 + i;
            sd_inlined = inlined;
            sd_pc =
              (if inlined then Int64.add inline_pc_base (Int64.of_int (Prng.int (prng_for f.fn_name) 1000000 * 16))
               else Int64.add base_addr 0L);
          }
        in
        [ { i_func = f; i_tu = tu; i_symbols = symbols; i_sites = List.mapi mk_site decided } ]
    | `Header includers ->
        List.map
          (fun tu ->
            let tu_sites = List.filter (fun (c : caller) -> c.cl_file = tu) sites in
            let decided =
              List.map (fun c -> (c, decide_site ~copy_tu:tu c)) tu_sites
            in
            let all_inlined = decided <> [] && List.for_all snd decided in
            let keep_symbol = not all_inlined in
            let symbols =
              if keep_symbol then [ (f.fn_name, alloc f.fn_body_size) ] else []
            in
            let base_addr = match symbols with (_, a) :: _ -> a | [] -> 0L in
            let mk_site i ((c : caller), inlined) =
              {
                sd_caller = c.cl_func;
                sd_tu = c.cl_file;
                sd_line = f.fn_line + 1000 + i;
                sd_inlined = inlined;
                sd_pc =
                  (if inlined then
                     Int64.add inline_pc_base
                       (Int64.of_int (Prng.int (prng_for (f.fn_name ^ tu)) 1000000 * 16))
                   else base_addr);
              }
            in
            { i_func = f; i_tu = tu; i_symbols = symbols; i_sites = List.mapi mk_site decided })
          includers
  in
  let instances =
    Ds_trace.Trace.span ~name:"kcc.compile.instances"
      ~attrs:[ ("funcs", string_of_int (List.length funcs)) ]
      (fun () -> List.concat_map compile_func funcs)
  in
  let syscalls =
    List.map
      (fun (s : syscall_def) ->
        let sym = syscall_symbol arch s.sc_name in
        (s.sc_name, sym, alloc 64))
      (Source.syscalls_in src cfg)
  in
  {
    m_source_version = Source.version src;
    m_config = cfg;
    m_gcc = gcc;
    m_env = Ds_trace.Trace.span ~name:"kcc.compile.env" (fun () -> build_env src cfg);
    m_instances = instances;
    m_tracepoints = Source.tracepoints_in src cfg;
    m_syscalls = syscalls;
  }
