open Ds_util
open Ds_ctypes
open Ds_elf
open Ds_ksrc
open Construct
open Compile

let rodata_base_for arch =
  if Ds_ksrc.Config.ptr_size arch = 4 then 0xc4000000L else 0xffffffff82000000L

let data_base_for arch =
  if Ds_ksrc.Config.ptr_size arch = 4 then 0xc6000000L else 0xffffffff83000000L

let banner m =
  let major, minor = (m.m_source_version.Version.major, m.m_source_version.Version.minor) in
  let gmaj, gmin = m.m_gcc in
  Printf.sprintf
    "Linux version %d.%d.0-%s (buildd@lcy02-amd64-021) (gcc version %d.%d.0 (Ubuntu)) #1 SMP %s"
    major minor
    (Config.flavor_to_string m.m_config.Config.flavor)
    gmaj gmin
    (Config.arch_to_string m.m_config.Config.arch)

let tp_func_proto tp =
  Ctype.
    {
      ret = void;
      params = { pname = "__data"; ptype = void_ptr } :: tp.tp_params;
      variadic = false;
    }

let syscall_impl_proto =
  Ctype.
    {
      ret = long;
      params = [ { pname = "regs"; ptype = Ptr (Const (Struct_ref "pt_regs")) } ];
      variadic = false;
    }

let emit m =
  Ds_trace.Trace.span ~name:"kcc.emit"
    ~attrs:
      [
        ("version", Version.to_string m.m_source_version);
        ("config", Config.to_string m.m_config);
      ]
  @@ fun () ->
  let endian = Elf.machine_endian (match m.m_config.Config.arch with
    | Config.X86 -> Elf.X86_64
    | Config.Arm64 -> Elf.Aarch64
    | Config.Arm32 -> Elf.Arm
    | Config.Ppc -> Elf.Ppc64
    | Config.Riscv -> Elf.Riscv64)
  in
  let machine =
    match m.m_config.Config.arch with
    | Config.X86 -> Elf.X86_64
    | Config.Arm64 -> Elf.Aarch64
    | Config.Arm32 -> Elf.Arm
    | Config.Ppc -> Elf.Ppc64
    | Config.Riscv -> Elf.Riscv64
  in
  let ptr_size = Config.ptr_size m.m_config.Config.arch in
  let rodata_base = rodata_base_for m.m_config.Config.arch in
  let data_base = data_base_for m.m_config.Config.arch in
  let text_base = Compile.text_base_for m.m_config.Config.arch in
  (* --- address bookkeeping ------------------------------------------- *)
  let text_end = ref text_base in
  let bump addr size =
    let e = Int64.add addr (Int64.of_int size) in
    if Int64.compare e !text_end > 0 then text_end := e
  in
  List.iter
    (fun i -> List.iter (fun (_, a) -> bump a i.i_func.fn_body_size) i.i_symbols)
    m.m_instances;
  List.iter (fun (_, _, a) -> bump a 64) m.m_syscalls;
  (* tracing-function addresses continue after everything else *)
  let tp_funcs =
    List.map
      (fun tp ->
        let addr = !text_end in
        text_end := Int64.add !text_end 64L;
        (tp, addr))
      m.m_tracepoints
  in
  (* --- .rodata -------------------------------------------------------- *)
  let ro = Bytesio.Writer.create ~endian () in
  let ro_string s =
    let off = Bytesio.Writer.pos ro in
    Bytesio.Writer.cstring ro s;
    Int64.add rodata_base (Int64.of_int off)
  in
  let banner_addr = ro_string (banner m) in
  let tp_strings =
    List.map
      (fun (tp, faddr) ->
        let name_addr = ro_string tp.tp_name in
        let class_addr = ro_string tp.tp_class in
        let fmt =
          String.concat ", "
            (List.map (fun (f, _) -> Printf.sprintf "%s=%%lu" f) tp.tp_fields)
        in
        let fmt_addr = ro_string ("\"" ^ fmt ^ "\"") in
        (tp, faddr, name_addr, class_addr, fmt_addr))
      tp_funcs
  in
  (* --- .data ----------------------------------------------------------- *)
  let data = Bytesio.Writer.create ~endian () in
  let wptr v =
    if ptr_size = 8 then Bytesio.Writer.u64 data v
    else Bytesio.Writer.u32 data (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
  in
  (* trace_event_call records first *)
  let call_records =
    List.map
      (fun (tp, faddr, name_addr, class_addr, fmt_addr) ->
        Bytesio.Writer.align data ptr_size;
        let rec_addr = Int64.add data_base (Int64.of_int (Bytesio.Writer.pos data)) in
        wptr name_addr;
        wptr class_addr;
        wptr faddr;
        wptr fmt_addr;
        ignore tp;
        rec_addr)
      tp_strings
  in
  (* ftrace events pointer array *)
  Bytesio.Writer.align data ptr_size;
  let ftrace_start = Int64.add data_base (Int64.of_int (Bytesio.Writer.pos data)) in
  List.iter wptr call_records;
  let ftrace_stop = Int64.add data_base (Int64.of_int (Bytesio.Writer.pos data)) in
  (* sys_call_table *)
  Bytesio.Writer.align data ptr_size;
  let sys_table_addr = Int64.add data_base (Int64.of_int (Bytesio.Writer.pos data)) in
  List.iter (fun (_, _, addr) -> wptr addr) m.m_syscalls;
  let sys_table_size = List.length m.m_syscalls * ptr_size in
  (* --- symbols ---------------------------------------------------------- *)
  let text_size = Int64.to_int (Int64.sub !text_end text_base) in
  let func_symbols =
    List.concat_map
      (fun i ->
        List.map
          (fun (name, addr) ->
            Elf.
              {
                sym_name = name;
                sym_value = addr;
                sym_size = i.i_func.fn_body_size;
                sym_bind = (if i.i_func.fn_static then Elf.Local else Elf.Global);
                sym_section = ".text";
              })
          i.i_symbols)
      m.m_instances
  in
  let syscall_symbols =
    List.map
      (fun (_, sym, addr) ->
        Elf.
          {
            sym_name = sym;
            sym_value = addr;
            sym_size = 64;
            sym_bind = Elf.Global;
            sym_section = ".text";
          })
      m.m_syscalls
  in
  let tp_symbols =
    List.map
      (fun (tp, addr) ->
        Elf.
          {
            sym_name = tp_func_name tp;
            sym_value = addr;
            sym_size = 64;
            sym_bind = Elf.Local;
            sym_section = ".text";
          })
      tp_funcs
  in
  let marker_symbols =
    Elf.
      [
        {
          sym_name = "linux_banner";
          sym_value = banner_addr;
          sym_size = String.length (banner m) + 1;
          sym_bind = Elf.Global;
          sym_section = ".rodata";
        };
        {
          sym_name = "__start_ftrace_events";
          sym_value = ftrace_start;
          sym_size = 0;
          sym_bind = Elf.Global;
          sym_section = ".data";
        };
        {
          sym_name = "__stop_ftrace_events";
          sym_value = ftrace_stop;
          sym_size = 0;
          sym_bind = Elf.Global;
          sym_section = ".data";
        };
        {
          sym_name = "sys_call_table";
          sym_value = sys_table_addr;
          sym_size = sys_table_size;
          sym_bind = Elf.Global;
          sym_section = ".data";
        };
      ]
  in
  (* --- DWARF ------------------------------------------------------------ *)
  (* caller-side records: (tu, caller) -> inlined calls / direct calls *)
  let inlined_into : (string * string, Ds_dwarf.Info.inlined_call list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let calls_into : (string * string, string list ref) Hashtbl.t = Hashtbl.create 256 in
  let push tbl key v =
    let cell =
      match Hashtbl.find_opt tbl key with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add tbl key c;
          c
    in
    cell := v :: !cell
  in
  List.iter
    (fun i ->
      List.iter
        (fun s ->
          if s.sd_inlined then
            push inlined_into (s.sd_tu, s.sd_caller)
              Ds_dwarf.Info.
                { ic_callee = i.i_func.fn_name; ic_pc = s.sd_pc; ic_call_line = s.sd_line }
          else push calls_into (s.sd_tu, s.sd_caller) i.i_func.fn_name)
        i.i_sites)
    m.m_instances;
  let tu_map : (string, Ds_dwarf.Info.subprogram list ref) Hashtbl.t = Hashtbl.create 128 in
  let add_sp tu sp = push tu_map tu sp in
  List.iter
    (fun i ->
      let f = i.i_func in
      let sp =
        Ds_dwarf.Info.
          {
            sp_name = f.fn_name;
            sp_proto = proto_for f m.m_config;
            sp_file = f.fn_file;
            sp_line = f.fn_line;
            sp_external = not f.fn_static;
            sp_declared_inline = f.fn_declared_inline;
            sp_low_pc = (match i.i_symbols with (_, a) :: _ -> Some a | [] -> None);
            sp_inlined =
              (match Hashtbl.find_opt inlined_into (i.i_tu, f.fn_name) with
              | Some c -> List.rev !c
              | None -> []);
            sp_calls =
              (match Hashtbl.find_opt calls_into (i.i_tu, f.fn_name) with
              | Some c -> List.sort_uniq compare !c
              | None -> []);
          }
      in
      add_sp i.i_tu sp)
    m.m_instances;
  (* tracing functions live in one synthetic trace-events unit *)
  List.iter
    (fun (tp, addr) ->
      add_sp "kernel/trace-events.c"
        Ds_dwarf.Info.
          {
            sp_name = tp_func_name tp;
            sp_proto = tp_func_proto tp;
            sp_file = "kernel/trace-events.c";
            sp_line = 1;
            sp_external = false;
            sp_declared_inline = false;
            sp_low_pc = Some addr;
            sp_inlined = [];
            sp_calls = [];
          })
    tp_funcs;
  let cus =
    (* one types unit with every aggregate, then one unit per TU *)
    Ds_dwarf.Info.
      {
        cu_name = "__vmlinux_types__";
        cu_subprograms = [];
        cu_structs = Decl.structs m.m_env;
        cu_enums = Decl.enums m.m_env;
        cu_typedefs = Decl.typedefs m.m_env;
      }
    :: (Hashtbl.fold (fun tu sps acc -> (tu, sps) :: acc) tu_map []
       |> List.sort (fun (a, _) (b, _) -> compare a b)
       |> List.map (fun (tu, sps) ->
              Ds_dwarf.Info.
                {
                  cu_name = tu;
                  cu_subprograms =
                    List.sort (fun a b -> compare a.sp_name b.sp_name) (List.rev !sps);
                  cu_structs = [];
                  cu_enums = [];
                  cu_typedefs = [];
                }))
  in
  let debug_info, debug_abbrev =
    Ds_trace.Trace.span ~name:"kcc.emit.dwarf" (fun () -> Ds_dwarf.Info.encode cus)
  in
  (* --- BTF --------------------------------------------------------------- *)
  let seen = Hashtbl.create 512 in
  let plain_symbol_funcs =
    List.filter_map
      (fun i ->
        let f = i.i_func in
        if Hashtbl.mem seen f.fn_name then None
        else if List.exists (fun (n, _) -> n = f.fn_name) i.i_symbols then begin
          Hashtbl.replace seen f.fn_name ();
          Some Decl.{ fname = f.fn_name; proto = proto_for f m.m_config }
        end
        else None)
      m.m_instances
  in
  let btf_funcs =
    plain_symbol_funcs
    @ List.map
        (fun (tp, _) -> Decl.{ fname = tp_func_name tp; proto = tp_func_proto tp })
        tp_funcs
    @ List.map (fun (_, sym, _) -> Decl.{ fname = sym; proto = syscall_impl_proto }) m.m_syscalls
  in
  let btf =
    Ds_trace.Trace.span ~name:"kcc.emit.btf" (fun () ->
        Ds_btf.Btf.encode (Ds_btf.Btf.of_env m.m_env btf_funcs))
  in
  (* --- assemble ---------------------------------------------------------- *)
  Elf.
    {
      machine;
      sections =
        [
          { sec_name = ".text"; sec_addr = text_base; sec_data = String.make text_size '\x00' };
          { sec_name = ".rodata"; sec_addr = rodata_base; sec_data = Bytesio.Writer.contents ro };
          { sec_name = ".data"; sec_addr = data_base; sec_data = Bytesio.Writer.contents data };
          { sec_name = ".debug_info"; sec_addr = 0L; sec_data = debug_info };
          { sec_name = ".debug_abbrev"; sec_addr = 0L; sec_data = debug_abbrev };
          { sec_name = ".BTF"; sec_addr = 0L; sec_data = btf };
        ];
      symbols = func_symbols @ syscall_symbols @ tp_symbols @ marker_symbols;
    }

let build_image src cfg = emit (compile src cfg)
let image_bytes src cfg = Elf.write (build_image src cfg)
