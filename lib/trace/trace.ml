open Ds_util

type span = {
  sp_id : int;
  sp_parent : int;  (** [0] = no parent (root span) *)
  sp_name : string;
  mutable sp_attrs : (string * string) list;
  sp_start : float;
  mutable sp_stop : float;
  sp_domain : int;
}

(* One ring per domain, written only by its owning domain: [record] is a
   plain slot store + count bump, no lock, no CAS. Cross-domain readers
   (exports, the serve /trace/recent endpoint) take a racy snapshot; the
   OCaml memory model makes such reads stale-at-worst, never torn, which
   is the right trade for an observability path that must not perturb
   the code it measures. *)
type ring = {
  rg_domain : int;
  rg_cap : int;
  rg_slots : span option array;
  mutable rg_count : int;  (** total spans ever recorded; grows past [rg_cap] *)
}

type frame = {
  fr_id : int;
  fr_span : span option;
      (** [None] for context frames inherited across a [Par] task handoff
          or installed with [with_parent]: they parent new spans but have
          no local span to finish or attribute to. *)
}

type dstate = { ds_ring : ring; mutable ds_stack : frame list }

let default_capacity = 16384

let capacity =
  match Option.bind (Sys.getenv_opt "DEPSURF_TRACE_CAP") int_of_string_opt with
  | Some n when n >= 16 -> n
  | _ -> default_capacity

let enabled_flag = Atomic.make false
let next_id = Atomic.make 1
let registry_mutex = Mutex.create ()
let registry : ring list ref = ref []

let dls_key =
  Domain.DLS.new_key (fun () ->
      let rg =
        {
          rg_domain = (Domain.self () :> int);
          rg_cap = capacity;
          rg_slots = Array.make capacity None;
          rg_count = 0;
        }
      in
      Mutex.lock registry_mutex;
      registry := rg :: !registry;
      Mutex.unlock registry_mutex;
      { ds_ring = rg; ds_stack = [] })

let enabled () = Atomic.get enabled_flag

let now = Unix.gettimeofday

let record rg sp =
  rg.rg_slots.(rg.rg_count mod rg.rg_cap) <- Some sp;
  rg.rg_count <- rg.rg_count + 1

(* Because spans finish LIFO within a domain, an outermost span is
   recorded after all its children: under drop-oldest pressure the roots
   and near-root phases survive and the leaf spam is what gets evicted. *)
let span ?(attrs = []) ~name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let ds = Domain.DLS.get dls_key in
    let parent = match ds.ds_stack with [] -> 0 | fr :: _ -> fr.fr_id in
    let sp =
      {
        sp_id = Atomic.fetch_and_add next_id 1;
        sp_parent = parent;
        sp_name = name;
        sp_attrs = attrs;
        sp_start = now ();
        sp_stop = 0.;
        sp_domain = ds.ds_ring.rg_domain;
      }
    in
    ds.ds_stack <- { fr_id = sp.sp_id; fr_span = Some sp } :: ds.ds_stack;
    let finish () =
      sp.sp_stop <- now ();
      (match ds.ds_stack with _ :: tl -> ds.ds_stack <- tl | [] -> ());
      record ds.ds_ring sp
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        sp.sp_attrs <- ("error", Printexc.to_string e) :: sp.sp_attrs;
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let with_parent parent f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let ds = Domain.DLS.get dls_key in
    let saved = ds.ds_stack in
    ds.ds_stack <- { fr_id = parent; fr_span = None } :: saved;
    Fun.protect ~finally:(fun () -> ds.ds_stack <- saved) f
  end

let current_id () =
  if not (Atomic.get enabled_flag) then 0
  else match (Domain.DLS.get dls_key).ds_stack with [] -> 0 | fr :: _ -> fr.fr_id

let set_attr k v =
  if Atomic.get enabled_flag then
    let ds = Domain.DLS.get dls_key in
    let rec innermost_span = function
      | [] -> ()
      | { fr_span = Some sp; _ } :: _ -> sp.sp_attrs <- (k, v) :: sp.sp_attrs
      | { fr_span = None; _ } :: tl -> innermost_span tl
    in
    innermost_span ds.ds_stack

let capture_context () =
  let parent = current_id () in
  { Par.ctx_wrap = (fun f -> with_parent parent f) }

let enable () =
  Atomic.set enabled_flag true;
  Par.set_task_context (Some capture_context)

let disable () = Atomic.set enabled_flag false

let rings () =
  Mutex.lock registry_mutex;
  let rs = !registry in
  Mutex.unlock registry_mutex;
  rs

let drops () =
  List.fold_left (fun acc rg -> acc + max 0 (rg.rg_count - rg.rg_cap)) 0 (rings ())

let spans () =
  let acc = ref [] in
  List.iter
    (fun rg ->
      Array.iter (function Some sp -> acc := sp :: !acc | None -> ()) rg.rg_slots)
    (rings ());
  List.sort (fun a b -> compare (a.sp_start, a.sp_id) (b.sp_start, b.sp_id)) !acc

(* Quiescent use only (between bench iterations, in tests): resetting a
   ring races with its owning domain if that domain is mid-span. *)
let clear () =
  List.iter
    (fun rg ->
      Array.fill rg.rg_slots 0 rg.rg_cap None;
      rg.rg_count <- 0)
    (rings ())

let recent ?(limit = 100) () =
  let by_stop = List.sort (fun a b -> compare (b.sp_stop, b.sp_id) (a.sp_stop, a.sp_id)) (spans ()) in
  List.filteri (fun i _ -> i < limit) by_stop

(* ---- analysis ------------------------------------------------------- *)

let dur_us sp = max 0 (int_of_float (sp.sp_stop *. 1e6) - int_of_float (sp.sp_start *. 1e6))

(* Self time = own duration minus the summed durations of direct
   children, clamped at zero: children that ran in parallel on other
   domains can overlap in wall time and oversubtract. *)
let self_us_by_id sps =
  let self = Hashtbl.create 256 in
  List.iter (fun sp -> Hashtbl.replace self sp.sp_id (dur_us sp)) sps;
  List.iter
    (fun sp ->
      if sp.sp_parent <> 0 then
        match Hashtbl.find_opt self sp.sp_parent with
        | Some s -> Hashtbl.replace self sp.sp_parent (s - dur_us sp)
        | None -> ())
    sps;
  Hashtbl.iter (fun id s -> if s < 0 then Hashtbl.replace self id 0) self;
  self

let top sps =
  let self = self_us_by_id sps in
  let agg = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      let s = match Hashtbl.find_opt self sp.sp_id with Some s -> s | None -> 0 in
      let count, total, slf =
        match Hashtbl.find_opt agg sp.sp_name with Some x -> x | None -> (0, 0, 0)
      in
      Hashtbl.replace agg sp.sp_name (count + 1, total + dur_us sp, slf + s))
    sps;
  Hashtbl.fold (fun name (c, t, s) acc -> (name, c, t, s) :: acc) agg []
  |> List.sort (fun (na, _, _, sa) (nb, _, _, sb) -> compare (sb, na) (sa, nb))

let top_table sps =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-40s %8s %12s %12s\n" "span" "count" "total_us" "self_us");
  List.iter
    (fun (name, count, total, self) ->
      Buffer.add_string buf (Printf.sprintf "%-40s %8d %12d %12d\n" name count total self))
    (top sps);
  Buffer.contents buf

let path_of by_id sp =
  let rec up acc sp depth =
    if depth > 64 then acc
    else
      match Hashtbl.find_opt by_id sp.sp_parent with
      | Some p -> up (p.sp_name :: acc) p (depth + 1)
      | None -> acc
  in
  String.concat ";" (up [ sp.sp_name ] sp 0)

let collapsed sps =
  let by_id = Hashtbl.create 256 in
  List.iter (fun sp -> Hashtbl.replace by_id sp.sp_id sp) sps;
  let self = self_us_by_id sps in
  let agg = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      let s = match Hashtbl.find_opt self sp.sp_id with Some s -> s | None -> 0 in
      let p = path_of by_id sp in
      Hashtbl.replace agg p (s + match Hashtbl.find_opt agg p with Some x -> x | None -> 0))
    sps;
  Hashtbl.fold (fun p s acc -> (p, s) :: acc) agg []
  |> List.sort compare
  |> List.map (fun (p, s) -> Printf.sprintf "%s %d" p s)
  |> fun lines -> String.concat "\n" lines ^ "\n"

let root_of sps =
  let roots = List.filter (fun sp -> sp.sp_parent = 0) sps in
  match roots with
  | [] -> None
  | _ ->
      Some (List.fold_left (fun acc sp -> if dur_us sp > dur_us acc then sp else acc)
              (List.hd roots) roots)

let coverage sps =
  match root_of sps with
  | None -> 0.
  | Some root ->
      let d = dur_us root in
      if d = 0 then 1.
      else
        let self = self_us_by_id sps in
        let root_self = match Hashtbl.find_opt self root.sp_id with Some s -> s | None -> d in
        1. -. (float_of_int root_self /. float_of_int d)

let well_nested sps =
  let by_id = Hashtbl.create 256 in
  List.iter (fun sp -> Hashtbl.replace by_id sp.sp_id sp) sps;
  let bad = ref None in
  List.iter
    (fun sp ->
      if !bad = None && sp.sp_parent <> 0 then
        match Hashtbl.find_opt by_id sp.sp_parent with
        | None -> ()
        | Some p ->
            (* only same-domain nesting is a timing invariant: a child
               handed to another domain can outlive its logical parent's
               phase boundaries by scheduling jitter *)
            if
              sp.sp_domain = p.sp_domain
              && (sp.sp_start < p.sp_start -. 1e-9 || sp.sp_stop > p.sp_stop +. 1e-9)
            then bad := Some (sp.sp_id, p.sp_id))
    sps;
  !bad

(* ---- exports -------------------------------------------------------- *)

(* Chrome trace_event "X" (complete) events. Timestamps are emitted as
   integer microseconds relative to the earliest span start: Json.Float
   prints with %g (6 significant digits), which would destroy
   epoch-microsecond precision. Flooring each endpoint through the same
   monotone rebase preserves well-nestedness. *)
let chrome_json sps =
  let t0 = List.fold_left (fun acc sp -> Float.min acc sp.sp_start) infinity sps in
  let t0 = if sps = [] then 0. else t0 in
  let us t = int_of_float ((t -. t0) *. 1e6) in
  let events =
    List.map
      (fun sp ->
        let ts = us sp.sp_start in
        let dur = max 0 (us sp.sp_stop - ts) in
        Json.Obj
          [
            ("name", Json.String sp.sp_name);
            ("cat", Json.String "depsurf");
            ("ph", Json.String "X");
            ("ts", Json.Int ts);
            ("dur", Json.Int dur);
            ("pid", Json.Int 1);
            ("tid", Json.Int sp.sp_domain);
            ( "args",
              Json.Obj
                (("id", Json.Int sp.sp_id)
                :: ("parent", Json.Int sp.sp_parent)
                :: List.rev_map (fun (k, v) -> (k, Json.String v)) sp.sp_attrs) );
          ])
      sps
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
      ("otherData", Json.Obj [ ("dropped", Json.Int (drops ())) ]);
    ]

let span_json sp =
  Json.Obj
    [
      ("id", Json.Int sp.sp_id);
      ("parent", Json.Int sp.sp_parent);
      ("name", Json.String sp.sp_name);
      ("start_us", Json.Int (int_of_float (sp.sp_start *. 1e6)));
      ("dur_us", Json.Int (dur_us sp));
      ("domain", Json.Int sp.sp_domain);
      ("attrs", Json.Obj (List.rev_map (fun (k, v) -> (k, Json.String v)) sp.sp_attrs));
    ]

exception Bad_trace of string

let of_chrome j =
  let fail msg = raise (Bad_trace msg) in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.List es) -> es
    | _ -> fail "missing traceEvents array"
  in
  List.map
    (fun ev ->
      let geti k =
        match Json.member k ev with
        | Some (Json.Int n) -> n
        | _ -> fail (Printf.sprintf "event field %S missing or not an integer" k)
      in
      let name =
        match Json.member "name" ev with Some (Json.String s) -> s | _ -> fail "event has no name"
      in
      let args = match Json.member "args" ev with Some a -> a | None -> Json.Obj [] in
      let arg_int k = match Json.member k args with Some (Json.Int n) -> n | _ -> 0 in
      let attrs =
        match args with
        | Json.Obj kvs ->
            List.filter_map
              (function
                | ("id", _) | ("parent", _) -> None
                | k, Json.String v -> Some (k, v)
                | _ -> None)
              kvs
        | _ -> []
      in
      let ts = geti "ts" and dur = geti "dur" in
      {
        sp_id = arg_int "id";
        sp_parent = arg_int "parent";
        sp_name = name;
        sp_attrs = attrs;
        sp_start = float_of_int ts /. 1e6;
        sp_stop = float_of_int (ts + dur) /. 1e6;
        sp_domain = geti "tid";
      })
    events
