(** Hierarchical span tracing for the whole pipeline.

    {2 Span model}

    A span is one timed, named region of execution with string
    attributes and a parent link; spans form trees rooted at parentless
    spans ([sp_parent = 0]). {!span} opens a child of the innermost
    span (or inherited context) on the calling domain's stack, runs the
    thunk, and records the finished span — including on exception,
    adding an ["error"] attribute and re-raising.

    {2 Ring buffers}

    Each domain owns one bounded ring (capacity {!default_capacity},
    override with [DEPSURF_TRACE_CAP]); recording is a lock-free
    single-writer slot store that overwrites the oldest span when full.
    Spans finish LIFO, so roots and phase spans are recorded after — and
    therefore survive — their leaf children under drop pressure. The
    total overwritten count is exposed by {!drops}. Cross-domain reads
    (exports, the serve endpoint) are racy-by-design snapshots: stale at
    worst, never torn.

    {2 Cross-domain parenting}

    [Trace] installs a [Par.set_task_context] hook on {!enable}: the
    submitting thread's current span id is captured at [Par.submit] time
    and re-installed (as a context frame, not a span) around the task
    body on whichever worker executes it, so pool fan-outs keep their
    logical parent even though they run on another domain's stack.

    When disabled (the default), every entrypoint is a near-free no-op —
    one atomic load on the {!span} fast path. *)

type span = {
  sp_id : int;
  sp_parent : int;  (** [0] = root (no parent) *)
  sp_name : string;
  mutable sp_attrs : (string * string) list;
  sp_start : float;  (** [Unix.gettimeofday] seconds *)
  mutable sp_stop : float;
  sp_domain : int;
}

val default_capacity : int
(** Per-domain ring capacity (16384) unless [DEPSURF_TRACE_CAP] is set. *)

val enable : unit -> unit
(** Turn tracing on and install the [Par] task-context hook. *)

val disable : unit -> unit
val enabled : unit -> bool

val span : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** [span ~name f] runs [f] inside a new span. When tracing is
    disabled this is just [f ()]. *)

val with_parent : int -> (unit -> 'a) -> 'a
(** Run a thunk with the given span id as ambient parent (a context
    frame): new spans opened inside become its children. Used for
    cross-domain handoff; id [0] makes new spans roots. *)

val current_id : unit -> int
(** Innermost span (or context) id on this domain, [0] if none or
    tracing is disabled. *)

val set_attr : string -> string -> unit
(** Attach an attribute to the innermost {e local} open span (skipping
    inherited context frames). No-op when disabled or no span is open. *)

val drops : unit -> int
(** Total spans overwritten (drop-oldest) across all rings. *)

val spans : unit -> span list
(** Snapshot of all recorded spans across all domain rings, ordered by
    start time. Racy-but-safe when other domains are still recording. *)

val recent : ?limit:int -> unit -> span list
(** Most recently finished spans, newest first (default limit 100). *)

val clear : unit -> unit
(** Reset all rings. Only meaningful when no domain is mid-span
    (between bench iterations, in tests). *)

(** {2 Analysis} *)

val dur_us : span -> int

val self_us_by_id : span list -> (int, int) Hashtbl.t
(** Self time per span id: own duration minus direct children's summed
    durations, clamped at [0] (parallel children overlap wall time). *)

val top : span list -> (string * int * int * int) list
(** Aggregate by span name: [(name, count, total_us, self_us)], sorted
    by self time descending. *)

val top_table : span list -> string
(** {!top} rendered as an aligned text table. *)

val collapsed : span list -> string
(** Collapsed-stack flamegraph text: one [root;...;leaf self_us] line
    per distinct path, sorted, newline-terminated. *)

val coverage : span list -> float
(** Fraction of the root span's wall time attributed to descendants
    ([1.0] = no unexplained gaps). Root = parentless span with the
    longest duration; [0.] when there is none. *)

val well_nested : span list -> (int * int) option
(** [Some (child_id, parent_id)] for the first same-domain child whose
    interval escapes its parent's, [None] when properly nested. *)

(** {2 Exports} *)

val chrome_json : span list -> Ds_util.Json.t
(** Chrome [trace_event] document (["X"] complete events, integer
    microseconds rebased to the earliest start, one [tid] per domain,
    span/parent ids under [args], drop count under [otherData]). *)

val span_json : span -> Ds_util.Json.t
(** One span as a flat JSON object (serve wire view). *)

exception Bad_trace of string

val of_chrome : Ds_util.Json.t -> span list
(** Parse a {!chrome_json} document back into spans (for [depsurf trace
    top|flame|validate FILE]). Raises {!Bad_trace} on malformed input. *)
