(** A content-addressed, checksummed, atomically-written on-disk artifact
    store, making the pipeline incremental {e across} process runs (the
    paper persists every extracted surface so analyses run off the
    published dataset rather than re-extracting 25 vmlinux images, §3.4).

    Artifacts are keyed by a SplitMix64-based hash of their {e inputs}
    (evolution seed, scale record, version/config, codec version), grouped
    into namespaces ([surface], [image], [diff], [obj], [matrix]), and
    written as framed binary files — magic, format version, namespace,
    payload checksum — via temp-file + rename, so a crashed writer can
    never leave a half-frame behind.

    Robustness is a first-class contract: a corrupt, truncated or
    schema-mismatched entry is detected by the frame check, logged via
    [Logs] (source ["ds_store"]), evicted from disk, and transparently
    recomputed. A damaged cache can cost time, never correctness. *)

(** Incremental hasher for deriving artifact keys from their inputs.
    Two independent FNV-1a lanes finished by the SplitMix64 mixer; every
    field is length- or width-delimited, so ["ab"+"c"] and ["a"+"bc"]
    hash differently. *)
module Hash : sig
  type t

  val create : unit -> t
  val string : t -> string -> unit
  val int : t -> int -> unit
  val int64 : t -> int64 -> unit
  val float : t -> float -> unit

  val hex : t -> string
  (** 32-hex-char digest of everything fed so far. *)
end

(** The on-disk frame around each payload; exposed for property tests
    ("flip any byte → [Corrupt], never a wrong value"). *)
module Frame : sig
  type result = Ok of string | Corrupt of string

  val encode : ns:string -> string -> string
  val decode : ns:string -> string -> result
  (** [decode ~ns data] returns the payload only if the magic, format
      version, namespace, length and payload checksum all verify and no
      trailing bytes follow; anything else is [Corrupt reason]. *)

  val checksum : string -> int64
end

type t
(** A handle on one store directory, with in-process counters. Handles are
    domain-safe: the pipeline's worker domains share one handle. *)

type counters = {
  c_hits : int;
  c_misses : int;
  c_evictions : int;  (** corrupt entries deleted on read *)
  c_writes : int;
  c_bytes_read : int;
  c_bytes_written : int;
}

val zero_counters : counters
val add_counters : counters -> counters -> counters

val open_ : dir:string -> unit -> t
(** Open (creating directories as needed) a store rooted at [dir]. *)

val dir : t -> string

val find : t -> ns:string -> key:string -> decode:(string -> 'a) -> 'a option
(** Cache lookup. [None] on a missing entry, and on a corrupt or
    undecodable one (which is logged and evicted first). Counts one hit,
    miss or eviction. *)

val add : t -> ns:string -> key:string -> string -> unit
(** Frame and persist a payload (temp file + atomic rename). *)

val memo :
  ?cache_if:('a -> bool) ->
  t option ->
  ns:string ->
  key:string ->
  encode:('a -> string) ->
  decode:(string -> 'a) ->
  (unit -> 'a) ->
  'a
(** [memo store ~ns ~key ~encode ~decode compute]: the persistent tier.
    With [None] it is just [compute ()]; with [Some s] it returns the
    decoded cached artifact when present and intact, otherwise computes,
    stores and returns. All failure modes degrade to recomputation.
    [cache_if] (default: always) gates persisting a freshly computed
    value — e.g. a surface extracted from a degraded image should be
    recomputed, not cached. *)

val stats : t -> counters
(** This handle's in-process counters. *)

val save_counters : t -> unit
(** Merge the counters accumulated since the last save into
    [<dir>/stats.json] (atomically), so `depsurf cache stats` can report
    lifetime totals across runs. Best-effort under concurrent writers. *)

val lifetime : dir:string -> counters
(** The accumulated counters from [<dir>/stats.json] ({!zero_counters}
    when absent or unreadable). *)

(** {2 Maintenance (the [depsurf cache] subcommand)} *)

type entry = { e_ns : string; e_key : string; e_bytes : int; e_mtime : float }

val entries : dir:string -> entry list
(** Every entry on disk, newest first. *)

val verify : dir:string -> int * int
(** Re-check every frame; evict the broken ones. [(ok, evicted)]. Also
    sweeps leftover temp files. *)

val gc : dir:string -> max_bytes:int -> int
(** Evict oldest-first (by mtime) until the store fits in [max_bytes];
    returns the number of entries evicted. *)

val clear : dir:string -> int
(** Delete every entry (and the persisted counters); returns the number
    of entries deleted. *)

val maintenance_generation : dir:string -> int
(** A monotonic counter ([<dir>/maintgen], [0] when absent) bumped by
    every maintenance operation that deletes something: always by
    {!clear}, and by {!verify}/{!gc} when they evicted at least one
    entry. A live server caching responses hydrated from this directory
    compares it against its last-seen value to drop stale bytes (see
    [Ds_serve.Serve.revalidate_store]); the file is written {e after}
    the deletions, so observing a new generation implies the mutated
    directory is already visible. *)
