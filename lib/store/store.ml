open Ds_util

let log_src = Logs.Src.create "ds_store" ~doc:"DepSurf content-addressed artifact store"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* SplitMix64 finalizer: the same mixer Prng uses, applied here to hash
   states so single-byte differences avalanche across the whole digest. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let fnv_prime = 0x100000001B3L

module Hash = struct
  type t = { mutable a : int64; mutable b : int64 }

  let create () = { a = 0xCBF29CE484222325L; b = 0x84222325CBF29CE4L }

  let byte t c =
    t.a <- Int64.mul (Int64.logxor t.a (Int64.of_int c)) fnv_prime;
    t.b <- Int64.mul (Int64.logxor t.b (Int64.of_int (c lxor 0x5A))) fnv_prime

  let int64 t v =
    for i = 0 to 7 do
      byte t (Int64.to_int (Int64.shift_right_logical v (i * 8)) land 0xFF)
    done

  let int t v = int64 t (Int64.of_int v)

  let string t s =
    (* length-delimited so adjacent fields cannot alias *)
    int t (String.length s);
    String.iter (fun c -> byte t (Char.code c)) s

  let float t f = int64 t (Int64.bits_of_float f)
  let hex t = Printf.sprintf "%016Lx%016Lx" (mix64 t.a) (mix64 t.b)
end

module Frame = struct
  let magic = "DSAR"
  let format_version = 1

  (* FNV-1a over the payload, SplitMix64-finished. FNV's odd-prime
     multiply is injective mod 2^64, so two equal-length payloads that
     differ in any single byte are *guaranteed* to checksum differently —
     the property the byte-flip tests pin down. *)
  let checksum s =
    let h = ref 0xCBF29CE484222325L in
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h fnv_prime)
      s;
    mix64 !h

  type result = Ok of string | Corrupt of string

  let encode ~ns payload =
    let w = Bytesio.Writer.create () in
    Bytesio.Writer.bytes w magic;
    Bytesio.Writer.u16 w format_version;
    Bytesio.Writer.cstring w ns;
    Bytesio.Writer.u64 w (checksum payload);
    Bytesio.Writer.uint w (String.length payload);
    Bytesio.Writer.bytes w payload;
    Bytesio.Writer.contents w

  let decode ~ns data =
    match
      let r = Bytesio.Reader.of_string data in
      if not (Bytesio.Reader.expect r magic) then Corrupt "bad magic"
      else
        let v = Bytesio.Reader.u16 r in
        if v <> format_version then Corrupt (Printf.sprintf "format version %d" v)
        else
          let frame_ns = Bytesio.Reader.cstring r in
          if frame_ns <> ns then Corrupt ("namespace mismatch: " ^ frame_ns)
          else
            let sum = Bytesio.Reader.u64 r in
            let len = Bytesio.Reader.uint r in
            let payload = Bytesio.Reader.bytes r len in
            if not (Bytesio.Reader.eof r) then Corrupt "trailing bytes"
            else if checksum payload <> sum then Corrupt "payload checksum mismatch"
            else Ok payload
    with
    | res -> res
    | exception Bytesio.Truncated _ -> Corrupt "truncated frame"
end

type counters = {
  c_hits : int;
  c_misses : int;
  c_evictions : int;
  c_writes : int;
  c_bytes_read : int;
  c_bytes_written : int;
}

let zero_counters =
  { c_hits = 0; c_misses = 0; c_evictions = 0; c_writes = 0; c_bytes_read = 0; c_bytes_written = 0 }

let add_counters a b =
  {
    c_hits = a.c_hits + b.c_hits;
    c_misses = a.c_misses + b.c_misses;
    c_evictions = a.c_evictions + b.c_evictions;
    c_writes = a.c_writes + b.c_writes;
    c_bytes_read = a.c_bytes_read + b.c_bytes_read;
    c_bytes_written = a.c_bytes_written + b.c_bytes_written;
  }

type t = {
  t_dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  writes : int Atomic.t;
  bytes_read : int Atomic.t;
  bytes_written : int Atomic.t;
  save_lock : Mutex.t;
  mutable last_saved : counters;
}

let entry_suffix = ".dsa"
let stats_file dir = Filename.concat dir "stats.json"

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
    end
  in
  go dir

let open_ ~dir () =
  mkdir_p dir;
  {
    t_dir = dir;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    writes = Atomic.make 0;
    bytes_read = Atomic.make 0;
    bytes_written = Atomic.make 0;
    save_lock = Mutex.create ();
    last_saved = zero_counters;
  }

let dir t = t.t_dir

(* Keys become file names: keep the readable label, fence everything
   else. The trailing hash component makes sanitized collisions moot. *)
let sanitize key =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c | _ -> '-')
    key

let entry_path dir ~ns ~key = Filename.concat (Filename.concat dir (sanitize ns)) (sanitize key ^ entry_suffix)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* temp file in the destination directory + rename: atomic on POSIX, so
   readers only ever see complete frames *)
let write_atomic path data =
  let dir = Filename.dirname path in
  mkdir_p dir;
  let tmp = Filename.temp_file ~temp_dir:dir "tmp-" ".part" in
  let oc = open_out_bin tmp in
  (match output_string oc data with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

let evict t ~ns ~key ~reason path =
  Log.warn (fun m -> m "evicting corrupt cache entry %s/%s: %s" ns key reason);
  remove_quiet path;
  Atomic.incr t.evictions

let find t ~ns ~key ~decode =
  Ds_trace.Trace.span ~name:"store.find" ~attrs:[ ("ns", ns); ("key", key) ]
  @@ fun () ->
  let path = entry_path t.t_dir ~ns ~key in
  match read_file path with
  | exception Sys_error _ ->
      Atomic.incr t.misses;
      Ds_trace.Trace.set_attr "outcome" "miss";
      None
  | data -> (
      match Frame.decode ~ns data with
      | Frame.Corrupt reason ->
          evict t ~ns ~key ~reason path;
          Ds_trace.Trace.set_attr "outcome" "evict";
          None
      | Frame.Ok payload -> (
          match decode payload with
          | v ->
              Atomic.incr t.hits;
              ignore (Atomic.fetch_and_add t.bytes_read (String.length data));
              Ds_trace.Trace.set_attr "outcome" "hit";
              Ds_trace.Trace.set_attr "bytes" (string_of_int (String.length data));
              Some v
          | exception e ->
              (* intact frame, undecodable payload: stale codec *)
              evict t ~ns ~key ~reason:("decode: " ^ Printexc.to_string e) path;
              Ds_trace.Trace.set_attr "outcome" "evict";
              None))

let add t ~ns ~key payload =
  Ds_trace.Trace.span ~name:"store.add"
    ~attrs:[ ("ns", ns); ("key", key); ("bytes", string_of_int (String.length payload)) ]
  @@ fun () ->
  let frame = Frame.encode ~ns payload in
  (match write_atomic (entry_path t.t_dir ~ns ~key) frame with
  | () ->
      Atomic.incr t.writes;
      ignore (Atomic.fetch_and_add t.bytes_written (String.length frame))
  | exception Sys_error reason ->
      (* a read-only or full cache dir degrades the cache, not the run *)
      Log.warn (fun m -> m "cannot persist cache entry %s/%s: %s" ns key reason))

let memo ?(cache_if = fun _ -> true) store ~ns ~key ~encode ~decode compute =
  match store with
  | None -> compute ()
  | Some t -> (
      match find t ~ns ~key ~decode with
      | Some v -> v
      | None ->
          let v = compute () in
          if cache_if v then add t ~ns ~key (encode v);
          v)

let stats t =
  {
    c_hits = Atomic.get t.hits;
    c_misses = Atomic.get t.misses;
    c_evictions = Atomic.get t.evictions;
    c_writes = Atomic.get t.writes;
    c_bytes_read = Atomic.get t.bytes_read;
    c_bytes_written = Atomic.get t.bytes_written;
  }

(* -------------------- persisted lifetime counters -------------------- *)

let counters_of_json j =
  let get name = match Json.member name j with Some (Json.Int i) -> i | _ -> 0 in
  {
    c_hits = get "hits";
    c_misses = get "misses";
    c_evictions = get "evictions";
    c_writes = get "writes";
    c_bytes_read = get "bytes_read";
    c_bytes_written = get "bytes_written";
  }

let json_of_counters c =
  Json.Obj
    [
      ("hits", Json.Int c.c_hits);
      ("misses", Json.Int c.c_misses);
      ("evictions", Json.Int c.c_evictions);
      ("writes", Json.Int c.c_writes);
      ("bytes_read", Json.Int c.c_bytes_read);
      ("bytes_written", Json.Int c.c_bytes_written);
    ]

let lifetime ~dir =
  match read_file (stats_file dir) with
  | exception Sys_error _ -> zero_counters
  | data -> ( match Json.of_string data with j -> counters_of_json j | exception _ -> zero_counters)

let sub_counters a b =
  {
    c_hits = a.c_hits - b.c_hits;
    c_misses = a.c_misses - b.c_misses;
    c_evictions = a.c_evictions - b.c_evictions;
    c_writes = a.c_writes - b.c_writes;
    c_bytes_read = a.c_bytes_read - b.c_bytes_read;
    c_bytes_written = a.c_bytes_written - b.c_bytes_written;
  }

let save_counters t =
  Mutex.lock t.save_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.save_lock)
    (fun () ->
      let now = stats t in
      let delta = sub_counters now t.last_saved in
      let merged = add_counters (lifetime ~dir:t.t_dir) delta in
      (match write_atomic (stats_file t.t_dir) (Json.to_string (json_of_counters merged) ^ "\n") with
      | () -> t.last_saved <- now
      | exception Sys_error reason ->
          Log.warn (fun m -> m "cannot persist cache counters: %s" reason)))

(* ------------------------- maintenance ------------------------------- *)

type entry = { e_ns : string; e_key : string; e_bytes : int; e_mtime : float }

let list_dir d = match Sys.readdir d with files -> Array.to_list files | exception Sys_error _ -> []

let namespaces dir =
  List.filter (fun f -> Sys.is_directory (Filename.concat dir f)) (list_dir dir)

let entries ~dir =
  let all =
    List.concat_map
      (fun ns ->
        List.filter_map
          (fun f ->
            if Filename.check_suffix f entry_suffix then
              let path = Filename.concat (Filename.concat dir ns) f in
              match (Unix.stat path : Unix.stats) with
              | st ->
                  Some
                    {
                      e_ns = ns;
                      e_key = Filename.chop_suffix f entry_suffix;
                      e_bytes = st.Unix.st_size;
                      e_mtime = st.Unix.st_mtime;
                    }
              | exception Unix.Unix_error _ -> None
            else None)
          (list_dir (Filename.concat dir ns)))
      (namespaces dir)
  in
  List.sort (fun a b -> compare b.e_mtime a.e_mtime) all

let sweep_parts dir =
  List.iter
    (fun ns ->
      List.iter
        (fun f ->
          if Filename.check_suffix f ".part" then
            remove_quiet (Filename.concat (Filename.concat dir ns) f))
        (list_dir (Filename.concat dir ns)))
    (namespaces dir)

(* Maintenance generation: a monotonic counter persisted next to the
   entries, bumped whenever maintenance deletes something. A live
   server whose hot index hydrates from this directory polls it to
   invalidate its response-byte cache ({!Ds_serve.Serve}) — without it,
   `depsurf cache clear`/`gc` against a running server's cache dir
   would leave the server returning bytes for entries that no longer
   exist. The file survives {!clear} (it is not an entry), so the
   counter never restarts at a value a watcher has already seen. *)
let maintgen_file dir = Filename.concat dir "maintgen"

let maintenance_generation ~dir =
  match read_file (maintgen_file dir) with
  | data -> ( match int_of_string_opt (String.trim data) with Some n -> n | None -> 0)
  | exception Sys_error _ -> 0

let bump_maintgen dir =
  let next = maintenance_generation ~dir + 1 in
  match write_atomic (maintgen_file dir) (string_of_int next ^ "\n") with
  | () -> ()
  | exception Sys_error reason ->
      Log.warn (fun m -> m "cannot bump maintenance generation: %s" reason)

let verify ~dir =
  Ds_trace.Trace.span ~name:"store.verify" @@ fun () ->
  sweep_parts dir;
  let ok, bad =
    List.fold_left
      (fun (ok, bad) e ->
        let path = Filename.concat (Filename.concat dir e.e_ns) (e.e_key ^ entry_suffix) in
        match read_file path with
        | exception Sys_error _ -> (ok, bad)
        | data -> (
            match Frame.decode ~ns:e.e_ns data with
            | Frame.Ok _ -> (ok + 1, bad)
            | Frame.Corrupt reason ->
                Log.warn (fun m ->
                    m "evicting corrupt cache entry %s/%s: %s" e.e_ns e.e_key reason);
                remove_quiet path;
                (ok, bad + 1)))
      (0, 0) (entries ~dir)
  in
  if bad > 0 then bump_maintgen dir;
  (ok, bad)

let gc ~dir ~max_bytes =
  sweep_parts dir;
  (* entries come newest-first: keep from the front, evict the tail *)
  let _, evicted =
    List.fold_left
      (fun (kept_bytes, evicted) e ->
        if kept_bytes + e.e_bytes <= max_bytes then (kept_bytes + e.e_bytes, evicted)
        else begin
          remove_quiet (Filename.concat (Filename.concat dir e.e_ns) (e.e_key ^ entry_suffix));
          (kept_bytes, evicted + 1)
        end)
      (0, 0) (entries ~dir)
  in
  if evicted > 0 then bump_maintgen dir;
  evicted

let clear ~dir =
  sweep_parts dir;
  let es = entries ~dir in
  List.iter
    (fun e -> remove_quiet (Filename.concat (Filename.concat dir e.e_ns) (e.e_key ^ entry_suffix)))
    es;
  remove_quiet (stats_file dir);
  (* unconditional: even an already-empty dir signals "maintenance ran
     here", and the bump after the deletions means a watcher that sees
     the new generation also sees the emptied directory *)
  bump_maintgen dir;
  List.length es
