(** Kernel-side view of a vmlinux image: the interfaces a loader (libbpf)
    and DepSurf both consume — kallsyms-style symbol lookup, the BTF blob,
    the ftrace events registry read straight out of the data sections, and
    the system-call table.

    This module performs the paper's §3.4 static extraction: it never
    "boots" anything; tracepoints come from dereferencing the pointer
    array between [__start_ftrace_events] and [__stop_ftrace_events], and
    system calls from [sys_call_table] plus reverse symbol lookup, with
    pointer size and byte order taken from the image's machine. *)

open Ds_ksrc

type tracepoint = {
  vtp_event : string;
  vtp_class : string;
  vtp_func : string option;  (** tracing function symbol, if resolvable *)
  vtp_fmt : string;
}

type t = {
  v_img : Ds_elf.Elf.t;
  v_version : Version.t;
  v_flavor : Config.flavor;
  v_gcc : int * int;
  v_arch : Config.arch;
  v_btf : Ds_btf.Btf.t;
  v_tracepoints : tracepoint list;
  v_syscalls : string list;  (** names, in table order *)
}

exception Bad_vmlinux of string

val parse_banner : string -> Version.t * Config.flavor * (int * int)
(** Parse ["Linux version 5.4.0-generic ... (gcc version 9.2.0 ..."]. *)

val load : Ds_elf.Elf.t -> t
(** Strict load: raises [Bad_vmlinux] on the first problem, including
    bad derefs that previously leaked as raw [Elf.Bad_elf] or
    [Bytesio.Truncated]. *)

type load_result = { k_kernel : t; k_diags : Ds_util.Diag.t list }

val load_lenient : Ds_elf.Elf.t -> load_result
(** Best-effort load: never raises. Whatever cannot be recovered —
    banner, BTF, tracepoint slots, syscall slots — is replaced by an
    empty fallback and recorded as a diagnostic. *)

val symbols_named : t -> string -> Ds_elf.Elf.symbol list
(** All symbols with exactly that name (text symbols first). *)

val suffixed_symbols : t -> string -> Ds_elf.Elf.symbol list
(** Symbols of the form ["name.suffix..."] (transformed copies). *)

val has_tracepoint : t -> string -> bool
val find_tracepoint : t -> string -> tracepoint option
val has_syscall : t -> string -> bool
val tag : t -> string
(** e.g. ["v5.4/x86/generic"]. *)
