open Ds_util
open Ds_elf
module Btf = Ds_btf.Btf

type reloc_kind = Field_byte_offset | Field_exists

type core_reloc = {
  cr_insn : int;
  cr_type_id : int;
  cr_access : int list;
  cr_kind : reloc_kind;
}

type prog = {
  p_name : string;
  p_section : string;
  p_insns : Insn.t list;
  p_relocs : core_reloc list;
  p_kfuncs : string list;
}

type t = {
  o_name : string;
  o_built_for : string;
  o_progs : prog list;
  o_maps : Maps.def list;
  o_btf : Btf.t;
}

exception Bad_obj of string

let kind_code = function Field_byte_offset -> 0 | Field_exists -> 2

let kind_of_code = function
  | 0 -> Field_byte_offset
  | 2 -> Field_exists
  | c -> raise (Bad_obj (Printf.sprintf "bad reloc kind %d" c))

(* ".maps" section: count u32, then per map: name cstring, type u8
   (0=hash 1=array 2=percpu), ncpu u16, key u32, value u32, max u32 *)
let encode_maps maps =
  let w = Bytesio.Writer.create () in
  Bytesio.Writer.u32 w (List.length maps);
  List.iter
    (fun (d : Maps.def) ->
      Bytesio.Writer.cstring w d.Maps.md_name;
      (match d.Maps.md_type with
      | Maps.Hash ->
          Bytesio.Writer.u8 w 0;
          Bytesio.Writer.u16 w 1
      | Maps.Array ->
          Bytesio.Writer.u8 w 1;
          Bytesio.Writer.u16 w 1
      | Maps.Percpu_array n ->
          Bytesio.Writer.u8 w 2;
          Bytesio.Writer.u16 w n);
      Bytesio.Writer.u32 w d.Maps.md_key_size;
      Bytesio.Writer.u32 w d.Maps.md_value_size;
      Bytesio.Writer.u32 w d.Maps.md_max_entries)
    maps;
  Bytesio.Writer.contents w

let decode_maps data =
  let r = Bytesio.Reader.of_string data in
  try
    let n = Bytesio.Reader.u32 r in
    List.init n (fun _ ->
        let md_name = Bytesio.Reader.cstring r in
        let ty = Bytesio.Reader.u8 r in
        let ncpu = Bytesio.Reader.u16 r in
        let md_type =
          match ty with
          | 0 -> Maps.Hash
          | 1 -> Maps.Array
          | 2 -> Maps.Percpu_array ncpu
          | t -> raise (Bad_obj (Printf.sprintf ".maps: bad type %d" t))
        in
        let md_key_size = Bytesio.Reader.u32 r in
        let md_value_size = Bytesio.Reader.u32 r in
        let md_max_entries = Bytesio.Reader.u32 r in
        Maps.{ md_name; md_type; md_key_size; md_value_size; md_max_entries })
  with Bytesio.Truncated _ -> raise (Bad_obj ".maps: truncated")

(* ".depsurf.kfuncs": count u32, then per prog: section cstring, count
   u32, names. *)
let encode_kfuncs progs =
  let w = Bytesio.Writer.create () in
  let with_kfuncs = List.filter (fun p -> p.p_kfuncs <> []) progs in
  Bytesio.Writer.u32 w (List.length with_kfuncs);
  List.iter
    (fun p ->
      Bytesio.Writer.cstring w p.p_section;
      Bytesio.Writer.u32 w (List.length p.p_kfuncs);
      List.iter (Bytesio.Writer.cstring w) p.p_kfuncs)
    with_kfuncs;
  Bytesio.Writer.contents w

let decode_kfuncs data =
  let r = Bytesio.Reader.of_string data in
  try
    let n = Bytesio.Reader.u32 r in
    List.init n (fun _ ->
        let section = Bytesio.Reader.cstring r in
        let k = Bytesio.Reader.u32 r in
        (section, List.init k (fun _ -> Bytesio.Reader.cstring r)))
  with Bytesio.Truncated _ -> raise (Bad_obj ".depsurf.kfuncs: truncated")

let btf_ext_magic = 0xEB9F

(* .BTF.ext layout (self-contained string blob variant):
   header: magic u16, version u8, flags u8, hdr_len u32 (=16),
           core_relo_off u32, core_relo_len u32  (offsets past header)
   core_relo: record_size u32, then per-section blocks:
     sec_name_off u32, num_info u32,
     records: insn_off u32, type_id u32, access_str_off u32, kind u32
   strings: NUL-separated blob after core_relo. *)
let encode_btf_ext progs =
  let strings = Buffer.create 128 in
  Buffer.add_char strings '\000';
  let str_cache = Hashtbl.create 16 in
  let add_string s =
    match Hashtbl.find_opt str_cache s with
    | Some off -> off
    | None ->
        let off = Buffer.length strings in
        Buffer.add_string strings s;
        Buffer.add_char strings '\000';
        Hashtbl.replace str_cache s off;
        off
  in
  let body = Bytesio.Writer.create () in
  Bytesio.Writer.u32 body 16 (* record size *);
  List.iter
    (fun p ->
      if p.p_relocs <> [] then begin
        Bytesio.Writer.u32 body (add_string p.p_section);
        Bytesio.Writer.u32 body (List.length p.p_relocs);
        List.iter
          (fun r ->
            Bytesio.Writer.u32 body r.cr_insn;
            Bytesio.Writer.u32 body r.cr_type_id;
            Bytesio.Writer.u32 body
              (add_string (String.concat ":" (List.map string_of_int r.cr_access)));
            Bytesio.Writer.u32 body (kind_code r.cr_kind))
          p.p_relocs
      end)
    progs;
  let out = Bytesio.Writer.create () in
  Bytesio.Writer.u16 out btf_ext_magic;
  Bytesio.Writer.u8 out 1;
  Bytesio.Writer.u8 out 0;
  Bytesio.Writer.u32 out 16 (* hdr_len *);
  Bytesio.Writer.u32 out 0 (* core_relo_off *);
  Bytesio.Writer.u32 out (Bytesio.Writer.pos body) (* core_relo_len *);
  Bytesio.Writer.bytes out (Bytesio.Writer.contents body);
  Bytesio.Writer.bytes out (Buffer.contents strings);
  Bytesio.Writer.contents out

let decode_btf_ext data =
  let r = Bytesio.Reader.of_string data in
  let fail m = raise (Bad_obj m) in
  (try
     if Bytesio.Reader.u16 r <> btf_ext_magic then fail ".BTF.ext: bad magic"
   with Bytesio.Truncated _ -> fail ".BTF.ext: truncated");
  let _version = Bytesio.Reader.u8 r in
  let _flags = Bytesio.Reader.u8 r in
  let hdr_len = Bytesio.Reader.u32 r in
  let relo_off = Bytesio.Reader.u32 r in
  let relo_len = Bytesio.Reader.u32 r in
  let strings_start = hdr_len + relo_off + relo_len in
  let str off =
    try Bytesio.Reader.cstring_at r (strings_start + off)
    with Bytesio.Truncated _ -> fail ".BTF.ext: bad string offset"
  in
  let body =
    try Bytesio.Reader.sub r ~pos:(hdr_len + relo_off) ~len:relo_len
    with Bytesio.Truncated _ -> fail ".BTF.ext: bad core_relo bounds"
  in
  try
    let record_size = Bytesio.Reader.u32 body in
    if record_size <> 16 then fail ".BTF.ext: unsupported record size";
    let out = ref [] in
    while not (Bytesio.Reader.eof body) do
      let section = str (Bytesio.Reader.u32 body) in
      let n = Bytesio.Reader.u32 body in
      let relocs =
        List.init n (fun _ ->
            let cr_insn = Bytesio.Reader.u32 body in
            let cr_type_id = Bytesio.Reader.u32 body in
            let access = str (Bytesio.Reader.u32 body) in
            let cr_kind = kind_of_code (Bytesio.Reader.u32 body) in
            let cr_access =
              if access = "" then []
              else List.map int_of_string (String.split_on_char ':' access)
            in
            { cr_insn; cr_type_id; cr_access; cr_kind })
      in
      out := (section, relocs) :: !out
    done;
    List.rev !out
  with Bytesio.Truncated _ | Failure _ -> fail ".BTF.ext: truncated records"

let write t =
  (* one program per section: the section name is the object's key for
     relocations and kfunc tables *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.p_section then
        raise (Bad_obj ("duplicate program section " ^ p.p_section));
      Hashtbl.replace seen p.p_section ())
    t.o_progs;
  let prog_sections =
    List.map
      (fun p -> Elf.{ sec_name = p.p_section; sec_addr = 0L; sec_data = Insn.encode p.p_insns })
      t.o_progs
  in
  let symbols =
    List.map
      (fun p ->
        Elf.
          {
            sym_name = p.p_name;
            sym_value = 0L;
            sym_size = 8 * List.length p.p_insns;
            sym_bind = Elf.Global;
            sym_section = p.p_section;
          })
      t.o_progs
  in
  let meta = t.o_name ^ "\000" ^ t.o_built_for in
  Elf.write
    Elf.
      {
        machine = Elf.Bpf;
        sections =
          prog_sections
          @ [
              { sec_name = ".maps"; sec_addr = 0L; sec_data = encode_maps t.o_maps };
              {
                sec_name = ".depsurf.kfuncs";
                sec_addr = 0L;
                sec_data = encode_kfuncs t.o_progs;
              };
              { sec_name = ".BTF"; sec_addr = 0L; sec_data = Btf.encode t.o_btf };
              { sec_name = ".BTF.ext"; sec_addr = 0L; sec_data = encode_btf_ext t.o_progs };
              { sec_name = ".depsurf.meta"; sec_addr = 0L; sec_data = meta };
            ];
        symbols;
      }

let read_strict data =
  let elf = try Diag.ok (Elf.read data) with Elf.Bad_elf m -> raise (Bad_obj m) in
  if elf.Elf.machine <> Elf.Bpf then raise (Bad_obj "not a BPF object");
  let section name =
    match Elf.find_section elf name with
    | Some s -> s.Elf.sec_data
    | None -> raise (Bad_obj ("missing section " ^ name))
  in
  let btf =
    try Diag.ok (Btf.decode (section ".BTF")) with Ds_btf.Btf.Bad_btf m -> raise (Bad_obj m)
  in
  let maps =
    match Elf.find_section elf ".maps" with
    | Some s -> decode_maps s.Elf.sec_data
    | None -> []
  in
  let kfuncs =
    match Elf.find_section elf ".depsurf.kfuncs" with
    | Some s -> decode_kfuncs s.Elf.sec_data
    | None -> []
  in
  let relocs = decode_btf_ext (section ".BTF.ext") in
  let o_name, o_built_for =
    match String.split_on_char '\000' (section ".depsurf.meta") with
    | [ a; b ] -> (a, b)
    | _ -> raise (Bad_obj "bad meta section")
  in
  let progs =
    List.filter_map
      (fun (s : Elf.section) ->
        if
          s.Elf.sec_name = ".BTF" || s.Elf.sec_name = ".BTF.ext"
          || s.Elf.sec_name = ".depsurf.meta" || s.Elf.sec_name = ".maps"
          || s.Elf.sec_name = ".depsurf.kfuncs"
        then None
        else begin
          let name =
            match
              List.find_opt (fun sym -> sym.Elf.sym_section = s.Elf.sec_name) elf.Elf.symbols
            with
            | Some sym -> sym.Elf.sym_name
            | None -> s.Elf.sec_name
          in
          let insns = try Insn.decode s.Elf.sec_data with Insn.Bad_insn m -> raise (Bad_obj m) in
          Some
            {
              p_name = name;
              p_section = s.Elf.sec_name;
              p_insns = insns;
              p_relocs = Option.value ~default:[] (List.assoc_opt s.Elf.sec_name relocs);
              p_kfuncs = Option.value ~default:[] (List.assoc_opt s.Elf.sec_name kfuncs);
            }
        end)
      elf.Elf.sections
  in
  { o_name; o_built_for; o_progs = progs; o_maps = maps; o_btf = btf }

type read_result = { o_obj : t; o_diags : Diag.t list }

let empty_obj =
  { o_name = "unknown"; o_built_for = ""; o_progs = []; o_maps = []; o_btf = Btf.create () }

let meta_section_names =
  [ ".BTF"; ".BTF.ext"; ".depsurf.meta"; ".maps"; ".depsurf.kfuncs" ]

let read_lenient_impl data =
  let collector = Diag.Collector.create () in
  let emit ?context severity msg =
    Diag.Collector.emit collector (Diag.v ?context severity ~component:"bpf_obj" msg)
  in
  let o = Elf.read ~mode:`Lenient data in
  let elf = Diag.ok o and r_diags = Diag.diags o in
  List.iter (Diag.Collector.emit collector) r_diags;
  if Diag.worst r_diags = Some Diag.Fatal then
    (* not even an ELF container: nothing downstream to salvage *)
    { o_obj = empty_obj; o_diags = Diag.Collector.diags collector }
  else if elf.Elf.machine <> Elf.Bpf then begin
    emit Diag.Fatal "not a BPF object";
    { o_obj = empty_obj; o_diags = Diag.Collector.diags collector }
  end
  else begin
    let o_btf =
      match Elf.find_section elf ".BTF" with
      | None ->
          emit Diag.Degraded "missing section .BTF";
          Btf.create ()
      | Some s ->
          let bo = Btf.decode ~mode:`Lenient s.Elf.sec_data in
          List.iter (fun d -> Diag.Collector.emit collector (Diag.demote d)) (Diag.diags bo);
          Diag.ok bo
    in
    let o_maps =
      match Elf.find_section elf ".maps" with
      | None -> []
      | Some s -> (
          match decode_maps s.Elf.sec_data with
          | maps -> maps
          | exception Bad_obj m ->
              emit ~context:".maps" Diag.Degraded m;
              [])
    in
    let kfuncs =
      match Elf.find_section elf ".depsurf.kfuncs" with
      | None -> []
      | Some s -> (
          match decode_kfuncs s.Elf.sec_data with
          | k -> k
          | exception Bad_obj m ->
              emit ~context:".depsurf.kfuncs" Diag.Degraded m;
              [])
    in
    let relocs =
      match Elf.find_section elf ".BTF.ext" with
      | None ->
          emit Diag.Degraded "missing section .BTF.ext";
          []
      | Some s -> (
          match decode_btf_ext s.Elf.sec_data with
          | r -> r
          | exception Bad_obj m ->
              emit ~context:".BTF.ext" Diag.Degraded m;
              []
          | exception Bytesio.Truncated what ->
              emit ~context:".BTF.ext" Diag.Degraded ("truncated: " ^ what);
              [])
    in
    let o_name, o_built_for =
      match Elf.find_section elf ".depsurf.meta" with
      | None ->
          emit Diag.Degraded "missing section .depsurf.meta";
          ("unknown", "")
      | Some s -> (
          match String.split_on_char '\000' s.Elf.sec_data with
          | [ a; b ] -> (a, b)
          | _ ->
              emit Diag.Degraded "bad meta section";
              ("unknown", ""))
    in
    let bad_progs = ref 0 in
    let progs =
      List.filter_map
        (fun (s : Elf.section) ->
          if List.mem s.Elf.sec_name meta_section_names then None
          else begin
            let name =
              match
                List.find_opt (fun sym -> sym.Elf.sym_section = s.Elf.sec_name) elf.Elf.symbols
              with
              | Some sym -> sym.Elf.sym_name
              | None -> s.Elf.sec_name
            in
            match Insn.decode s.Elf.sec_data with
            | insns ->
                Some
                  {
                    p_name = name;
                    p_section = s.Elf.sec_name;
                    p_insns = insns;
                    p_relocs = Option.value ~default:[] (List.assoc_opt s.Elf.sec_name relocs);
                    p_kfuncs = Option.value ~default:[] (List.assoc_opt s.Elf.sec_name kfuncs);
                  }
            | exception Insn.Bad_insn _ | (exception Bytesio.Truncated _) ->
                incr bad_progs;
                None
          end)
        elf.Elf.sections
    in
    if !bad_progs > 0 then
      emit Diag.Degraded (Printf.sprintf "%d program sections undecodable (skipped)" !bad_progs);
    {
      o_obj = { o_name; o_built_for; o_progs = progs; o_maps = o_maps; o_btf };
      o_diags = Diag.Collector.diags collector;
    }
  end

(* The .BTF.ext header reads and the per-prog instruction decodes used to
   leak raw [Bytesio.Truncated]; map every escape to [Bad_obj]. *)
let read ?(mode = `Strict) data =
  Ds_trace.Trace.span ~name:"obj.read"
    ~attrs:[ ("bytes", string_of_int (String.length data)) ]
    (fun () ->
      match mode with
      | `Strict ->
          let obj =
            try read_strict data
            with Bytesio.Truncated what -> raise (Bad_obj ("truncated: " ^ what))
          in
          Diag.outcome obj
      | `Lenient ->
          let r = read_lenient_impl data in
          Diag.outcome ~diags:r.o_diags r.o_obj)

let read_lenient data =
  let o = read ~mode:`Lenient data in
  { o_obj = Diag.ok o; o_diags = Diag.diags o }

(* Resolve an access chain against the object's own BTF, skipping
   modifiers and following pointers, as libbpf does. The first access
   index selects the pointed-to object (almost always 0); subsequent
   indices select members. *)
let access_path t root_id access =
  let btf = t.o_btf in
  let rec resolve id =
    match Btf.get btf id with
    | Btf.Ptr inner | Btf.Const inner | Btf.Volatile inner | Btf.Restrict inner ->
        resolve inner
    | Btf.Typedef { typ; _ } -> resolve typ
    | k -> (id, k)
  in
  match access with
  | [] | [ _ ] -> (
      match resolve root_id with
      | _, (Btf.Struct { name; _ } | Btf.Union { name; _ } | Btf.Fwd { name; _ }) ->
          Some (name, [])
      | _ -> None)
  | _first :: members -> (
      match resolve root_id with
      | _, (Btf.Struct { name = root; _ } | Btf.Union { name = root; _ }) ->
          let rec walk kind idxs acc =
            match idxs with
            | [] -> Some (root, List.rev acc)
            | i :: rest -> (
                match kind with
                | Btf.Struct { members; _ } | Btf.Union { members; _ } -> (
                    match List.nth_opt members i with
                    | None -> None
                    | Some m -> (
                        match rest with
                        | [] -> Some (root, List.rev (m.Btf.m_name :: acc))
                        | _ ->
                            let _, k = resolve m.Btf.m_type in
                            walk k rest (m.Btf.m_name :: acc)))
                | _ -> None)
          in
          let _, k = resolve root_id in
          walk k members []
      | _ -> None)

let hook_of_section = Hook.of_section
