(** eBPF disassembler: `bpftool prog dump xlated`-style text for programs
    and whole objects, with CO-RE relocation annotations. *)

val insn_to_string : Insn.t -> string
(** One instruction, e.g. ["r7 = *(u64 *)(r6 + 112)"]. *)

val line : int -> Insn.t -> string
(** One numbered listing line, ["%4d: <insn>"] — the unit {!prog} and
    the {!Ds_verify} disassembly windows are built from. *)

val prog : ?obj:Obj.t -> Obj.prog -> string
(** Numbered listing; when [obj] is given, instructions carrying CO-RE
    relocations are annotated with the resolved struct::field path. *)

val obj : Obj.t -> string
(** Full object dump: maps, then every program. *)
