type reg_state = Uninit | Scalar | Ctx | Stack

type rule =
  | Empty_program
  | Size_cap
  | No_exit
  | Invalid_register
  | Uninit_register
  | Write_r10
  | Ctx_oob
  | Stack_oob_read
  | Stack_oob_write
  | Scalar_deref
  | Ctx_write
  | Bad_store_target
  | Unknown_helper
  | Backward_jump
  | Jump_oob
  | Uninit_r0_exit
  | Path_explosion

type error = { ve_insn : int; ve_msg : string }

type rejection = {
  rj_rule : rule;
  rj_insn : int;
  rj_msg : string;
  rj_regs : reg_state array option;
  rj_trail : (int * bool) list;
}

let max_insns = 4096
let ctx_limit = 4096
let max_states = 65536

(* Path-sensitive exploration: jumps fork the register state and both
   paths must verify, like the kernel verifier's DFS over the CFG. The
   ISA only has forward jumps (back-edges are rejected), so exploration
   terminates; a visited set on (pc, state) bounds the blow-up on
   diamond-heavy programs, and a state budget turns the residual
   blow-up into a structured rejection (the kernel's 1M-insn cap). *)
let verify_full insns =
  let n = List.length insns in
  let whole rule msg = Error { rj_rule = rule; rj_insn = -1; rj_msg = msg; rj_regs = None; rj_trail = [] } in
  if n = 0 then whole Empty_program "empty program"
  else if n > max_insns then whole Size_cap "program too large"
  else begin
    let code = Array.of_list insns in
    let visited : (int * reg_state array, unit) Hashtbl.t = Hashtbl.create 64 in
    let states = ref 0 in
    let rec go i regs trail =
      if i = n then
        Error
          {
            rj_rule = No_exit;
            rj_insn = n - 1;
            rj_msg = "program does not end with exit";
            rj_regs = Some (Array.copy regs);
            rj_trail = List.rev trail;
          }
      else if Hashtbl.mem visited (i, regs) then Ok ()
      else begin
        incr states;
        let err rule msg =
          Error
            {
              rj_rule = rule;
              rj_insn = i;
              rj_msg = msg;
              rj_regs = Some (Array.copy regs);
              rj_trail = List.rev trail;
            }
        in
        if !states > max_states then err Path_explosion "too many forked states (path explosion)"
        else begin
          Hashtbl.replace visited (i, Array.copy regs) ();
          let continue () = go (i + 1) regs trail in
          let check_reg r k =
            if r < 0 || r > 10 then err Invalid_register (Printf.sprintf "invalid register r%d" r)
            else k ()
          in
          let require_init r k =
            check_reg r (fun () ->
                if regs.(r) = Uninit then
                  err Uninit_register (Printf.sprintf "r%d is uninitialized" r)
                else k ())
          in
          let writable r k = if r = 10 then err Write_r10 "cannot write r10" else k () in
          match code.(i) with
          | Insn.Mov_imm { dst; _ } ->
              check_reg dst (fun () ->
                  writable dst (fun () ->
                      let regs = Array.copy regs in
                      regs.(dst) <- Scalar;
                      go (i + 1) regs trail))
          | Insn.Mov_reg { dst; src } ->
              require_init src (fun () ->
                  check_reg dst (fun () ->
                  writable dst (fun () ->
                      let regs' = Array.copy regs in
                      regs'.(dst) <- regs.(src);
                      go (i + 1) regs' trail)))
          | Insn.Add_imm { dst; _ } ->
              require_init dst (fun () -> writable dst (fun () -> continue ()))
          | Insn.Ldx { dst; src; off; _ } ->
              require_init src (fun () ->
                  check_reg dst (fun () ->
                  writable dst (fun () ->
                  match regs.(src) with
                  | Ctx ->
                      if off < 0 || off >= ctx_limit then
                        err Ctx_oob (Printf.sprintf "ctx access out of bounds at off %d" off)
                      else begin
                        let regs = Array.copy regs in
                        regs.(dst) <- Scalar;
                        go (i + 1) regs trail
                      end
                  | Stack ->
                      if off < -512 || off >= 0 then err Stack_oob_read "stack read out of frame"
                      else begin
                        let regs = Array.copy regs in
                        regs.(dst) <- Scalar;
                        go (i + 1) regs trail
                      end
                  | Scalar ->
                      err Scalar_deref (Printf.sprintf "r%d invalid mem access 'scalar'" src)
                  | Uninit -> err Uninit_register (Printf.sprintf "r%d is uninitialized" src))))
          | Insn.Stx { dst; src; off; _ } ->
              require_init src (fun () ->
                  check_reg dst (fun () ->
                  match regs.(dst) with
                  | Stack ->
                      if off < -512 || off >= 0 then err Stack_oob_write "stack write out of frame"
                      else continue ()
                  | Ctx -> err Ctx_write "cannot write into ctx"
                  | Scalar | Uninit ->
                      err Bad_store_target (Printf.sprintf "r%d invalid store target" dst)))
          | Insn.Call helper ->
              if not (Insn.helper_known helper) then
                err Unknown_helper (Printf.sprintf "unknown func id %d" helper)
              else begin
                let regs = Array.copy regs in
                for r = 1 to 5 do
                  regs.(r) <- Uninit
                done;
                regs.(0) <- Scalar;
                go (i + 1) regs trail
              end
          | Insn.Kfunc_call _ ->
              (* name resolution happens at load time against kernel BTF *)
              let regs = Array.copy regs in
              for r = 1 to 5 do
                regs.(r) <- Uninit
              done;
              regs.(0) <- Scalar;
              go (i + 1) regs trail
          | Insn.Jeq_imm { reg; target; _ } ->
              require_init reg (fun () ->
                  if target < 0 then err Backward_jump "back-edge (loop) not allowed"
                  else if i + 1 + target > n then err Jump_oob "jump out of range"
                  else
                    (* both outcomes must verify *)
                    match go (i + 1) (Array.copy regs) ((i, false) :: trail) with
                    | Error e -> Error e
                    | Ok () -> go (i + 1 + target) (Array.copy regs) ((i, true) :: trail))
          | Insn.Exit ->
              if regs.(0) = Uninit then
                err Uninit_r0_exit "R0 !read_ok: exit with uninitialized R0"
              else Ok ()
        end
      end
    in
    let regs = Array.make 11 Uninit in
    regs.(1) <- Ctx;
    regs.(10) <- Stack;
    go 0 regs []
  end

let verify insns =
  match verify_full insns with
  | Ok () -> Ok ()
  | Error r -> Error { ve_insn = r.rj_insn; ve_msg = r.rj_msg }
