(** eBPF object files.

    An object is an ELF relocatable carrying one program per section (the
    libbpf [SEC("kprobe/do_unlinkat")] convention), a [.BTF] section with
    the types the program was compiled against, and a [.BTF.ext] section
    whose CO-RE relocation records describe every struct-field access by
    (local type id, member-index access string, relocation kind) — the
    format libbpf resolves at load time (paper §7).

    Deviation from the real format, documented: [.BTF.ext] records
    reference their strings in a trailing blob inside [.BTF.ext] itself
    rather than in [.BTF]'s string table, keeping the two codecs
    independent. *)

type reloc_kind = Field_byte_offset | Field_exists

type core_reloc = {
  cr_insn : int;  (** index of the instruction to patch *)
  cr_type_id : int;  (** root type in the {e program's} BTF *)
  cr_access : int list;  (** member indices along the access chain,
                             e.g. [[0; 2]] = 1st deref, member 2 *)
  cr_kind : reloc_kind;
}

type prog = {
  p_name : string;
  p_section : string;  (** e.g. ["kprobe/do_unlinkat"],
                           ["tracepoint/block/block_rq_issue"] *)
  p_insns : Insn.t list;
  p_relocs : core_reloc list;
  p_kfuncs : string list;
      (** kfunc name table; [Kfunc_call i] indexes into it *)
}

type t = {
  o_name : string;
  o_built_for : string;  (** banner-style tag of the build kernel, e.g.
                             ["v5.4/x86"] — informational *)
  o_progs : prog list;
  o_maps : Maps.def list;  (** map definitions (the ".maps" section) *)
  o_btf : Ds_btf.Btf.t;
}

exception Bad_obj of string

val write : t -> string
(** Serialize as an ELF object (machine [Bpf]). Raises [Bad_obj] when two
    programs share a section name (the section is the object's key for
    relocation and kfunc tables). *)

val read : ?mode:Ds_util.Diag.mode -> string -> t Ds_util.Diag.outcome
(** Unified entrypoint. [`Strict] (the default) raises [Bad_obj] on any
    malformed byte (raw [Bytesio.Truncated] escapes are wrapped) and
    returns empty [diags]. [`Lenient] never raises: undecodable pieces
    (BTF, maps, relocations, individual program sections) are dropped
    and recorded as diagnostics; a non-ELF or non-BPF input yields an
    empty object with a [Fatal] diagnostic. *)

type read_result = { o_obj : t; o_diags : Ds_util.Diag.t list }

val read_lenient : string -> read_result
[@@ocaml.deprecated "use Obj.read ~mode:`Lenient"]
(** @deprecated Thin wrapper over [read ~mode:`Lenient]. *)

val access_path : t -> int -> int list -> (string * string list) option
(** [access_path obj type_id access] resolves a CO-RE access chain against
    the object's own BTF: returns the root struct name and the field-name
    path, following pointers/typedefs as libbpf does. [None] when the ids
    are invalid. *)

val hook_of_section : string -> Hook.t option
(** Parse a section name into a hook descriptor. *)
